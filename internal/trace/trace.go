// Package trace collects and serializes fault-propagation data: the
// tainted-memory access log (eip, virtual address, physical address, taint
// mask, current value — the exact fields Chaser logs for post analysis),
// per-rank tainted read/write counts, and the tainted-bytes-over-time
// timeline sampled every 100K instructions (paper Figs. 7-9).
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Event is one tainted-memory access.
type Event struct {
	Rank     int    `json:"rank"`
	Write    bool   `json:"write"`
	EIP      uint64 `json:"eip"`
	VAddr    uint64 `json:"vaddr"`
	PAddr    uint64 `json:"paddr"`
	Value    uint64 `json:"value"`
	Mask     uint64 `json:"mask"`
	InstrNum uint64 `json:"instr"`
	Size     int    `json:"size"`
	Region   string `json:"region,omitempty"`
}

// TimelinePoint is one tainted-bytes sample.
type TimelinePoint struct {
	Rank         int    `json:"rank"`
	Instrs       uint64 `json:"instrs"`
	TaintedBytes int64  `json:"tainted_bytes"`
}

// DefaultMaxEvents bounds the in-memory event log; accesses beyond the cap
// are counted but not stored.
const DefaultMaxEvents = 1 << 16

// Collector accumulates propagation data for one run. It is safe for
// concurrent use by multiple rank goroutines.
type Collector struct {
	mu        sync.Mutex
	maxEvents int
	events    []Event
	dropped   uint64
	timeline  []TimelinePoint
	reads     map[int]uint64
	writes    map[int]uint64
	regions   map[string]*RegionCounts
	crossRank []CrossRankRecord
	sends     []SendRecord
	outputs   []OutputRecord
}

// RegionCounts tallies tainted accesses per memory region.
type RegionCounts struct {
	Reads  uint64
	Writes uint64
}

// CrossRankRecord notes a tainted MPI message observed crossing ranks.
// Meta marks metadata propagation: the message envelope (count, destination,
// tag) was computed from tainted values even though the payload bytes were
// clean — the corruption still crosses the process boundary through the
// message's effect on the receiver.
//
// EIP/InstrNum/Buf/Len locate the receive in the destination rank's
// execution (the poll side of the TaintHub pair); they key the receive node
// of the provenance graph. Zero values mean the record predates provenance
// support.
type CrossRankRecord struct {
	Src, Dst, Tag int
	Seq           uint64
	TaintedBytes  int
	Meta          bool
	EIP           uint64 `json:",omitempty"`
	InstrNum      uint64 `json:",omitempty"`
	Buf           uint64 `json:",omitempty"`
	Len           int    `json:",omitempty"`
}

// SendRecord is the publish side of a TaintHub pair: a tainted MPI send
// observed on the source rank. Together with the matching CrossRankRecord
// (same Src/Dst/Tag/Seq) it stitches the cross-rank edge of the provenance
// graph.
type SendRecord struct {
	Src, Dst, Tag int
	Seq           uint64
	Buf           uint64
	Len           int
	TaintedBytes  int
	EIP           uint64
	InstrNum      uint64
}

// OutputRecord notes tainted bytes reaching the guest's output file — the
// sink where a propagated fault becomes observable corruption (SDC). Offset
// and Len locate the written range in the output file; Masks are the
// per-byte taint masks of the written bytes; Buf is the guest source buffer
// for out_bytes writes (0 when the source was a register).
type OutputRecord struct {
	Rank     int
	Offset   int
	Len      int
	Buf      uint64 `json:",omitempty"`
	Masks    []uint8
	EIP      uint64
	InstrNum uint64
}

// TaintedBytes counts the non-zero per-byte masks of the written range.
func (o *OutputRecord) TaintedBytes() int {
	n := 0
	for _, m := range o.Masks {
		if m != 0 {
			n++
		}
	}
	return n
}

// NewCollector creates a collector with the default event cap.
func NewCollector() *Collector { return NewCollectorCap(DefaultMaxEvents) }

// NewCollectorCap creates a collector storing at most maxEvents events.
func NewCollectorCap(maxEvents int) *Collector {
	return &Collector{
		maxEvents: maxEvents,
		reads:     make(map[int]uint64),
		writes:    make(map[int]uint64),
		regions:   make(map[string]*RegionCounts),
	}
}

// AddEvent records one tainted-memory access.
func (c *Collector) AddEvent(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ev.Write {
		c.writes[ev.Rank]++
	} else {
		c.reads[ev.Rank]++
	}
	if ev.Region != "" {
		rc := c.regions[ev.Region]
		if rc == nil {
			rc = &RegionCounts{}
			c.regions[ev.Region] = rc
		}
		if ev.Write {
			rc.Writes++
		} else {
			rc.Reads++
		}
	}
	if len(c.events) >= c.maxEvents {
		c.dropped++
		return
	}
	c.events = append(c.events, ev)
}

// AddSample records one tainted-bytes timeline point.
func (c *Collector) AddSample(p TimelinePoint) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeline = append(c.timeline, p)
}

// AddCrossRank records a tainted message crossing rank boundaries.
func (c *Collector) AddCrossRank(r CrossRankRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crossRank = append(c.crossRank, r)
}

// AddSend records the publish side of a tainted MPI send.
func (c *Collector) AddSend(r SendRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sends = append(c.sends, r)
}

// AddOutput records tainted bytes written to the guest output file.
func (c *Collector) AddOutput(r OutputRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.outputs = append(c.outputs, r)
}

// Events returns a copy of the stored events.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Dropped returns how many events exceeded the cap.
func (c *Collector) Dropped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Timeline returns a copy of the tainted-bytes samples.
func (c *Collector) Timeline() []TimelinePoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]TimelinePoint(nil), c.timeline...)
}

// CrossRank returns a copy of the cross-rank records.
func (c *Collector) CrossRank() []CrossRankRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]CrossRankRecord(nil), c.crossRank...)
}

// Sends returns a copy of the tainted-send records.
func (c *Collector) Sends() []SendRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]SendRecord(nil), c.sends...)
}

// Outputs returns a copy of the tainted-output records.
func (c *Collector) Outputs() []OutputRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]OutputRecord(nil), c.outputs...)
}

// Regions returns a copy of the per-region tainted access counts: where in
// guest memory (heap / stack / data) the fault footprint lives.
func (c *Collector) Regions() map[string]RegionCounts {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]RegionCounts, len(c.regions))
	for k, v := range c.regions {
		out[k] = *v
	}
	return out
}

// Reads returns the total tainted-read count of one rank.
func (c *Collector) Reads(rank int) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reads[rank]
}

// Writes returns the total tainted-write count of one rank.
func (c *Collector) Writes(rank int) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes[rank]
}

// TotalReads sums tainted reads across all ranks.
func (c *Collector) TotalReads() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n uint64
	for _, v := range c.reads {
		n += v
	}
	return n
}

// TotalWrites sums tainted writes across all ranks.
func (c *Collector) TotalWrites() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n uint64
	for _, v := range c.writes {
		n += v
	}
	return n
}

// Propagated reports whether any taint crossed a rank boundary.
func (c *Collector) Propagated() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.crossRank) > 0
}

// MetaRecord is the log header: how many events were stored and how many
// exceeded the in-memory cap. Without it, a truncated log is
// indistinguishable from a complete one.
type MetaRecord struct {
	Stored  int    `json:"stored"`
	Dropped uint64 `json:"dropped"`
}

// TruncationRecord is the explicit truncation marker written at the cap
// boundary of the event stream: everything before it is the complete prefix,
// Dropped events past it were counted but not stored. Readers that only
// stream events (and never see the header again) still learn the log is
// incomplete the moment they cross the boundary.
type TruncationRecord struct {
	Dropped uint64 `json:"dropped"`
}

// record is the JSON-lines on-disk format.
type record struct {
	Kind   string            `json:"kind"` // "meta", "event", "trunc", "sample", "cross", "send", "output"
	Meta   *MetaRecord       `json:"meta,omitempty"`
	Event  *Event            `json:"event,omitempty"`
	Trunc  *TruncationRecord `json:"trunc,omitempty"`
	Sample *TimelinePoint    `json:"sample,omitempty"`
	Cross  *CrossRankRecord  `json:"cross,omitempty"`
	Send   *SendRecord       `json:"send,omitempty"`
	Output *OutputRecord     `json:"output,omitempty"`
}

// WriteTo serializes the collected data as JSON lines, starting with a meta
// record carrying the stored/dropped event counts. When events were dropped
// at the in-memory cap, an explicit truncation marker follows the last
// stored event.
func (c *Collector) WriteTo(w io.Writer) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	bw := bufio.NewWriter(w)
	var n int64
	enc := json.NewEncoder(bw)
	write := func(r record) error { return enc.Encode(r) }
	if err := write(record{Kind: "meta", Meta: &MetaRecord{Stored: len(c.events), Dropped: c.dropped}}); err != nil {
		return n, err
	}
	for i := range c.events {
		if err := write(record{Kind: "event", Event: &c.events[i]}); err != nil {
			return n, err
		}
	}
	if c.dropped > 0 {
		if err := write(record{Kind: "trunc", Trunc: &TruncationRecord{Dropped: c.dropped}}); err != nil {
			return n, err
		}
	}
	for i := range c.timeline {
		if err := write(record{Kind: "sample", Sample: &c.timeline[i]}); err != nil {
			return n, err
		}
	}
	for i := range c.crossRank {
		if err := write(record{Kind: "cross", Cross: &c.crossRank[i]}); err != nil {
			return n, err
		}
	}
	for i := range c.sends {
		if err := write(record{Kind: "send", Send: &c.sends[i]}); err != nil {
			return n, err
		}
	}
	for i := range c.outputs {
		if err := write(record{Kind: "output", Output: &c.outputs[i]}); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read parses a JSON-lines propagation log back into a collector. The
// writer's declared drop count (meta header and truncation marker) is added
// to any drops the reading collector incurs itself, so Dropped() round-trips
// even when the reader's cap is smaller than the writer's.
func Read(r io.Reader) (*Collector, error) {
	c := NewCollector()
	var declared uint64
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var rec record
		err := dec.Decode(&rec)
		if err == io.EOF {
			c.mu.Lock()
			if declared > 0 {
				c.dropped += declared
			}
			c.mu.Unlock()
			return c, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: parse: %w", err)
		}
		switch rec.Kind {
		case "meta":
			if rec.Meta != nil && rec.Meta.Dropped > declared {
				declared = rec.Meta.Dropped
			}
		case "trunc":
			if rec.Trunc != nil && rec.Trunc.Dropped > declared {
				declared = rec.Trunc.Dropped
			}
		case "event":
			if rec.Event != nil {
				c.AddEvent(*rec.Event)
			}
		case "sample":
			if rec.Sample != nil {
				c.AddSample(*rec.Sample)
			}
		case "cross":
			if rec.Cross != nil {
				c.AddCrossRank(*rec.Cross)
			}
		case "send":
			if rec.Send != nil {
				c.AddSend(*rec.Send)
			}
		case "output":
			if rec.Output != nil {
				c.AddOutput(*rec.Output)
			}
		default:
			return nil, fmt.Errorf("trace: unknown record kind %q", rec.Kind)
		}
	}
}
