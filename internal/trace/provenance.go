// Provenance turns the flat propagation log into a DAG answering the
// accountability question the paper poses: exactly how did a soft error born
// at one instruction reach a corrupted output byte? Nodes are taint events —
// the injection itself, tainted memory reads and writes, tainted MPI sends
// and receives, and tainted output writes — keyed by (rank, eip, instruction
// count, location). Intra-rank edges follow the dataflow implied by the
// read/write taint callbacks (a read draws from the last tainted writer of
// its bytes, a write draws from the most recent tainted value source);
// cross-rank edges are stitched from TaintHub publish/poll pairs matched on
// (src, dst, tag, seq).
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// InjectionSite is the provenance root: where and when a fault was placed.
// It mirrors core.InjectionRecord without importing core (core imports
// trace). MemAddr is non-zero when the corruption hit a memory word rather
// than a register.
type InjectionSite struct {
	Rank      int    `json:"rank"`
	PC        uint64 `json:"pc"`
	InstrNum  uint64 `json:"instr"`
	ExecCount uint64 `json:"exec_count,omitempty"`
	Op        string `json:"op,omitempty"`
	Mask      uint64 `json:"mask,omitempty"`
	Target    string `json:"target,omitempty"`
	MemAddr   uint64 `json:"mem_addr,omitempty"`
}

// NodeKind classifies provenance nodes.
type NodeKind int

// Node kinds, in causal-priority order: when several items share one
// instruction count, the smaller kind happened first (an injection precedes
// the reads of the instruction it armed, a receive precedes the reads of the
// buffer it filled, a send/output follows the accesses that fed it).
const (
	KindInjection NodeKind = iota + 1
	KindRecv
	KindRead
	KindWrite
	KindSend
	KindOutput
)

// String returns the kind name used in JSON and DOT exports.
func (k NodeKind) String() string {
	switch k {
	case KindInjection:
		return "injection"
	case KindRecv:
		return "recv"
	case KindRead:
		return "read"
	case KindWrite:
		return "write"
	case KindSend:
		return "send"
	case KindOutput:
		return "output"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Node is one taint event in the provenance DAG.
type Node struct {
	ID   int    `json:"id"`
	Kind string `json:"kind"`
	Rank int    `json:"rank"`
	// EIP is the guest instruction pointer of the event; InstrNum its
	// position in the rank's retired-instruction stream.
	EIP      uint64 `json:"eip"`
	InstrNum uint64 `json:"instr"`
	// Addr locates the data: the virtual address for memory events, the
	// message buffer for send/recv, the output-file byte offset for output
	// nodes, the corrupted register/word for the injection.
	Addr uint64 `json:"addr"`
	Size int    `json:"size,omitempty"`
	Mask uint64 `json:"mask,omitempty"`
	// Label carries kind-specific detail (the injected op and target, the
	// message (src->dst tag) triple, ...).
	Label string `json:"label,omitempty"`

	kind NodeKind
}

// NodeKindOf returns the typed kind (the JSON export carries the string).
func (n *Node) NodeKindOf() NodeKind { return n.kind }

// Edge is one provenance edge. Kind is "data" for intra-rank dataflow and
// "message" for cross-rank edges stitched from TaintHub pairs.
type Edge struct {
	From int    `json:"from"`
	To   int    `json:"to"`
	Kind string `json:"kind"`
}

// Graph is a fault-propagation provenance DAG.
type Graph struct {
	Nodes []Node `json:"nodes"`
	Edges []Edge `json:"edges"`
	// Truncated is set when the source collector dropped events at its cap
	// or the builder hit its node budget: the DAG is a correct prefix, not
	// the complete propagation history.
	Truncated bool `json:"truncated,omitempty"`
	// CrossRankEdges counts the stitched message edges.
	CrossRankEdges int `json:"cross_rank_edges"`

	parents map[int][]int
}

// DefaultMaxGraphNodes bounds graph construction; a pathological run with a
// full 64K-event log would otherwise build a graph nobody can render.
const DefaultMaxGraphNodes = 100_000

// BuildGraph builds the provenance DAG from a run's propagation log and its
// injection records, with the default node budget.
func BuildGraph(c *Collector, sites []InjectionSite) *Graph {
	return BuildGraphCap(c, sites, DefaultMaxGraphNodes)
}

// item is one per-rank stream entry during construction.
type item struct {
	instr uint64
	kind  NodeKind
	idx   int // index into the per-kind source slice
}

type sendKey struct {
	src, dst, tag int
	seq           uint64
}

// BuildGraphCap is BuildGraph with an explicit node budget (<=0 means
// unlimited). Construction is deterministic: the same collector contents
// yield the same node IDs and edges.
func BuildGraphCap(c *Collector, sites []InjectionSite, maxNodes int) *Graph {
	g := &Graph{parents: make(map[int][]int)}
	if c == nil {
		return g
	}
	events := c.Events()
	sends := c.Sends()
	crosses := c.CrossRank()
	outputs := c.Outputs()
	if c.Dropped() > 0 {
		g.Truncated = true
	}

	// Group the streams by rank, preserving per-rank order (collectors
	// append per rank in execution order; the slices interleave ranks).
	perRank := map[int][]item{}
	push := func(rank int, it item) { perRank[rank] = append(perRank[rank], it) }
	for i := range sites {
		push(sites[i].Rank, item{instr: sites[i].InstrNum, kind: KindInjection, idx: i})
	}
	for i := range events {
		k := KindRead
		if events[i].Write {
			k = KindWrite
		}
		push(events[i].Rank, item{instr: events[i].InstrNum, kind: k, idx: i})
	}
	for i := range sends {
		push(sends[i].Src, item{instr: sends[i].InstrNum, kind: KindSend, idx: i})
	}
	for i := range crosses {
		if crosses[i].Meta {
			// Envelope-only propagation has no payload bytes to chain from;
			// represent it as a sender-side send node below via its record.
			push(crosses[i].Src, item{instr: crosses[i].InstrNum, kind: KindSend, idx: -1 - i})
			continue
		}
		push(crosses[i].Dst, item{instr: crosses[i].InstrNum, kind: KindRecv, idx: i})
	}
	for i := range outputs {
		push(outputs[i].Rank, item{instr: outputs[i].InstrNum, kind: KindOutput, idx: i})
	}

	ranks := make([]int, 0, len(perRank))
	for r := range perRank {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)

	addNode := func(n Node) int {
		if maxNodes > 0 && len(g.Nodes) >= maxNodes {
			g.Truncated = true
			return -1
		}
		n.ID = len(g.Nodes)
		g.Nodes = append(g.Nodes, n)
		return n.ID
	}
	addEdge := func(from, to int, kind string) {
		if from < 0 || to < 0 || from == to {
			return
		}
		g.Edges = append(g.Edges, Edge{From: from, To: to, Kind: kind})
		g.parents[to] = append(g.parents[to], from)
	}

	sendNodes := map[sendKey]int{} // filled on rank passes, resolved after
	recvNodes := map[sendKey]int{} // pending message-edge endpoints
	for _, rank := range ranks {
		items := perRank[rank]
		// Stable sort by (instr, causal kind priority): per-rank append
		// order already agrees with execution order, the sort only
		// interleaves the different record streams correctly.
		sort.SliceStable(items, func(i, j int) bool {
			if items[i].instr != items[j].instr {
				return items[i].instr < items[j].instr
			}
			return items[i].kind < items[j].kind
		})

		byteWriter := map[uint64]int{} // guest byte address -> writing node
		cursor := -1                   // most recent tainted value source on this rank

		// byteParents collects the deduped writer nodes of a byte range.
		byteParents := func(addr uint64, size int) []int {
			var out []int
			seen := map[int]bool{}
			for b := uint64(0); b < uint64(size); b++ {
				if id, ok := byteWriter[addr+b]; ok && !seen[id] {
					seen[id] = true
					out = append(out, id)
				}
			}
			return out
		}
		setWriter := func(addr uint64, size, id int) {
			for b := uint64(0); b < uint64(size); b++ {
				byteWriter[addr+b] = id
			}
		}

		for _, it := range items {
			switch it.kind {
			case KindInjection:
				s := sites[it.idx]
				id := addNode(Node{
					kind: KindInjection, Kind: KindInjection.String(),
					Rank: rank, EIP: s.PC, InstrNum: s.InstrNum,
					Addr: s.MemAddr, Mask: s.Mask,
					Label: fmt.Sprintf("%s %s exec#%d", s.Op, s.Target, s.ExecCount),
				})
				if id < 0 {
					continue
				}
				cursor = id
				if s.MemAddr != 0 {
					setWriter(s.MemAddr, 8, id)
				}

			case KindRead:
				ev := events[it.idx]
				id := addNode(Node{
					kind: KindRead, Kind: KindRead.String(),
					Rank: rank, EIP: ev.EIP, InstrNum: ev.InstrNum,
					Addr: ev.VAddr, Size: ev.Size, Mask: ev.Mask,
					Label: ev.Region,
				})
				if id < 0 {
					continue
				}
				parents := byteParents(ev.VAddr, ev.Size)
				if len(parents) == 0 && cursor >= 0 {
					parents = []int{cursor}
				}
				for _, p := range parents {
					addEdge(p, id, "data")
				}
				cursor = id

			case KindWrite:
				ev := events[it.idx]
				id := addNode(Node{
					kind: KindWrite, Kind: KindWrite.String(),
					Rank: rank, EIP: ev.EIP, InstrNum: ev.InstrNum,
					Addr: ev.VAddr, Size: ev.Size, Mask: ev.Mask,
					Label: ev.Region,
				})
				if id < 0 {
					continue
				}
				if cursor >= 0 {
					addEdge(cursor, id, "data")
				}
				setWriter(ev.VAddr, ev.Size, id)

			case KindSend:
				var n Node
				var parents []int
				var key sendKey
				if it.idx < 0 {
					// Envelope-metadata propagation (tainted count/dest/tag,
					// clean payload).
					cr := crosses[-1-it.idx]
					n = Node{
						kind: KindSend, Kind: KindSend.String(),
						Rank: rank, EIP: cr.EIP, InstrNum: cr.InstrNum,
						Label: fmt.Sprintf("meta %d->%d tag %d", cr.Src, cr.Dst, cr.Tag),
					}
					if cursor >= 0 {
						parents = []int{cursor}
					}
				} else {
					sr := sends[it.idx]
					n = Node{
						kind: KindSend, Kind: KindSend.String(),
						Rank: rank, EIP: sr.EIP, InstrNum: sr.InstrNum,
						Addr: sr.Buf, Size: sr.Len,
						Label: fmt.Sprintf("%d->%d tag %d seq %d", sr.Src, sr.Dst, sr.Tag, sr.Seq),
					}
					parents = byteParents(sr.Buf, sr.Len)
					if len(parents) == 0 && cursor >= 0 {
						parents = []int{cursor}
					}
					key = sendKey{src: sr.Src, dst: sr.Dst, tag: sr.Tag, seq: sr.Seq}
				}
				id := addNode(n)
				if id < 0 {
					continue
				}
				for _, p := range parents {
					addEdge(p, id, "data")
				}
				if it.idx >= 0 {
					sendNodes[key] = id
				}

			case KindRecv:
				cr := crosses[it.idx]
				id := addNode(Node{
					kind: KindRecv, Kind: KindRecv.String(),
					Rank: rank, EIP: cr.EIP, InstrNum: cr.InstrNum,
					Addr: cr.Buf, Size: cr.Len,
					Label: fmt.Sprintf("%d->%d tag %d seq %d", cr.Src, cr.Dst, cr.Tag, cr.Seq),
				})
				if id < 0 {
					continue
				}
				recvNodes[sendKey{src: cr.Src, dst: cr.Dst, tag: cr.Tag, seq: cr.Seq}] = id
				if cr.Buf != 0 && cr.Len > 0 {
					setWriter(cr.Buf, cr.Len, id)
				}
				cursor = id

			case KindOutput:
				or := outputs[it.idx]
				id := addNode(Node{
					kind: KindOutput, Kind: KindOutput.String(),
					Rank: rank, EIP: or.EIP, InstrNum: or.InstrNum,
					Addr: uint64(or.Offset), Size: or.Len,
					Label: fmt.Sprintf("output[%d:%d]", or.Offset, or.Offset+or.Len),
				})
				if id < 0 {
					continue
				}
				var parents []int
				if or.Buf != 0 {
					parents = byteParents(or.Buf, or.Len)
				}
				if len(parents) == 0 && cursor >= 0 {
					parents = []int{cursor}
				}
				for _, p := range parents {
					addEdge(p, id, "data")
				}
			}
		}
	}

	// Stitch the cross-rank edges from matched publish/poll pairs.
	for key, recvID := range recvNodes {
		if sendID, ok := sendNodes[key]; ok {
			addEdge(sendID, recvID, "message")
			g.CrossRankEdges++
		}
	}
	return g
}

// rebuildParents restores the adjacency index after JSON decoding.
func (g *Graph) rebuildParents() {
	g.parents = make(map[int][]int, len(g.Nodes))
	for _, e := range g.Edges {
		g.parents[e.To] = append(g.parents[e.To], e.From)
	}
	for i := range g.Nodes {
		for k := KindInjection; k <= KindOutput; k++ {
			if g.Nodes[i].Kind == k.String() {
				g.Nodes[i].kind = k
			}
		}
	}
}

// BlamePath answers the accountability query: given a corrupted byte of one
// rank's output file, walk the DAG backwards to the fault that caused it.
// The returned path runs injection-first, output-last. ok is false when no
// output node covers the offset or the walk does not terminate at an
// injection node (e.g. a truncated log).
func (g *Graph) BlamePath(rank, outputOffset int) (path []Node, ok bool) {
	// Find the output node covering the offset (output files are
	// append-only, so at most one does).
	start := -1
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if n.kind == KindOutput && n.Rank == rank &&
			uint64(outputOffset) >= n.Addr && outputOffset < int(n.Addr)+n.Size {
			start = n.ID
			break
		}
	}
	if start < 0 {
		return nil, false
	}
	return g.PathFrom(start)
}

// PathFrom walks backwards from one node to its provenance root, choosing at
// each step the parent with the greatest instruction count (the most recent
// dataflow into the node). The path is returned root-first; ok reports
// whether the root is an injection node.
func (g *Graph) PathFrom(id int) ([]Node, bool) {
	if g.parents == nil {
		g.rebuildParents()
	}
	var rev []Node
	visited := map[int]bool{}
	for id >= 0 && !visited[id] {
		visited[id] = true
		rev = append(rev, g.Nodes[id])
		parents := g.parents[id]
		if len(parents) == 0 {
			break
		}
		best := parents[0]
		for _, p := range parents[1:] {
			if g.Nodes[p].InstrNum > g.Nodes[best].InstrNum {
				best = p
			}
		}
		id = best
	}
	// Reverse to root-first order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, len(rev) > 0 && rev[0].kind == KindInjection
}

// OutputNodes returns the output-sink nodes of one rank (all ranks when rank
// is negative), in instruction order.
func (g *Graph) OutputNodes(rank int) []Node {
	var out []Node
	for i := range g.Nodes {
		if g.Nodes[i].kind == KindOutput && (rank < 0 || g.Nodes[i].Rank == rank) {
			out = append(out, g.Nodes[i])
		}
	}
	return out
}

// WriteJSON serializes the graph. Empty node/edge sets serialize as [] (not
// null) so dashboard consumers can iterate without null checks.
func (g *Graph) WriteJSON(w io.Writer) error {
	out := *g
	if out.Nodes == nil {
		out.Nodes = []Node{}
	}
	if out.Edges == nil {
		out.Edges = []Edge{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}

// ReadGraph parses a JSON graph back, restoring the query index.
func ReadGraph(r io.Reader) (*Graph, error) {
	var g Graph
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("trace: parse graph: %w", err)
	}
	g.rebuildParents()
	return &g, nil
}

// WriteDOT renders the graph in Graphviz DOT: one cluster per rank, node
// shapes per kind, message edges dashed.
func (g *Graph) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "digraph provenance {")
	fmt.Fprintln(bw, "  rankdir=TB;")
	fmt.Fprintln(bw, "  node [fontsize=9];")
	byRank := map[int][]Node{}
	var ranks []int
	for _, n := range g.Nodes {
		if _, ok := byRank[n.Rank]; !ok {
			ranks = append(ranks, n.Rank)
		}
		byRank[n.Rank] = append(byRank[n.Rank], n)
	}
	sort.Ints(ranks)
	shape := func(k string) string {
		switch k {
		case "injection":
			return "doubleoctagon"
		case "send", "recv":
			return "diamond"
		case "output":
			return "note"
		case "write":
			return "box"
		}
		return "ellipse"
	}
	for _, r := range ranks {
		fmt.Fprintf(bw, "  subgraph cluster_rank_%d {\n    label=\"rank %d\";\n", r, r)
		for _, n := range byRank[r] {
			label := fmt.Sprintf("%s\\neip=%#x instr=%d", n.Kind, n.EIP, n.InstrNum)
			if n.Label != "" {
				label += "\\n" + n.Label
			}
			fmt.Fprintf(bw, "    n%d [label=\"%s\" shape=%s];\n", n.ID, label, shape(n.Kind))
		}
		fmt.Fprintln(bw, "  }")
	}
	for _, e := range g.Edges {
		style := ""
		if e.Kind == "message" {
			style = " [style=dashed color=red constraint=false]"
		}
		fmt.Fprintf(bw, "  n%d -> n%d%s;\n", e.From, e.To, style)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
