package trace

import (
	"bytes"
	"strings"
	"testing"
)

// twoRankCollector builds a synthetic propagation log mimicking the paper's
// canonical scenario: a fault injected into rank 0's FADD result is stored,
// reloaded, sent to rank 1 over MPI, used in a multiply there, and written to
// rank 1's output file.
func twoRankCollector() (*Collector, []InjectionSite) {
	c := NewCollector()
	sites := []InjectionSite{{
		Rank: 0, PC: 0x400100, InstrNum: 50, ExecCount: 3,
		Op: "fadd", Mask: 1 << 12, Target: "reg f2",
	}}
	// Rank 0: the corrupted register is spilled, reloaded, and sent.
	c.AddEvent(Event{Rank: 0, Write: true, EIP: 0x400104, VAddr: 0x2000, Size: 8, Mask: 1 << 12, InstrNum: 51, Region: "stack"})
	c.AddEvent(Event{Rank: 0, Write: false, EIP: 0x400120, VAddr: 0x2000, Size: 8, Mask: 1 << 12, InstrNum: 60, Region: "stack"})
	c.AddEvent(Event{Rank: 0, Write: true, EIP: 0x400124, VAddr: 0x3000, Size: 8, Mask: 1 << 12, InstrNum: 61, Region: "heap"})
	c.AddSend(SendRecord{Src: 0, Dst: 1, Tag: 3, Seq: 0, Buf: 0x3000, Len: 8,
		TaintedBytes: 8, EIP: 0x400130, InstrNum: 70})
	// Rank 1: receive, compute, emit output bytes 8..16 of its file.
	c.AddCrossRank(CrossRankRecord{Src: 0, Dst: 1, Tag: 3, Seq: 0, TaintedBytes: 8,
		EIP: 0x400200, InstrNum: 40, Buf: 0x5000, Len: 8})
	c.AddEvent(Event{Rank: 1, Write: false, EIP: 0x400210, VAddr: 0x5000, Size: 8, Mask: 1 << 12, InstrNum: 45, Region: "heap"})
	c.AddEvent(Event{Rank: 1, Write: true, EIP: 0x400214, VAddr: 0x5008, Size: 8, Mask: 1 << 12, InstrNum: 46, Region: "heap"})
	c.AddOutput(OutputRecord{Rank: 1, Offset: 8, Len: 8, Buf: 0x5008,
		Masks: []uint8{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		EIP:   0x400220, InstrNum: 50})
	return c, sites
}

func TestBuildGraphTwoRanks(t *testing.T) {
	c, sites := twoRankCollector()
	g := BuildGraph(c, sites)
	if g.Truncated {
		t.Error("graph marked truncated without drops")
	}
	// 1 injection + 5 mem events + 1 send + 1 recv + 1 output.
	if len(g.Nodes) != 9 {
		t.Fatalf("nodes = %d, want 9", len(g.Nodes))
	}
	if g.CrossRankEdges != 1 {
		t.Fatalf("cross-rank edges = %d, want 1", g.CrossRankEdges)
	}
	var msg *Edge
	for i := range g.Edges {
		if g.Edges[i].Kind == "message" {
			msg = &g.Edges[i]
		}
	}
	if msg == nil {
		t.Fatal("no message edge")
	}
	if g.Nodes[msg.From].Kind != "send" || g.Nodes[msg.From].Rank != 0 {
		t.Errorf("message edge source = %+v", g.Nodes[msg.From])
	}
	if g.Nodes[msg.To].Kind != "recv" || g.Nodes[msg.To].Rank != 1 {
		t.Errorf("message edge target = %+v", g.Nodes[msg.To])
	}
}

func TestBlamePathReachesInjection(t *testing.T) {
	c, sites := twoRankCollector()
	g := BuildGraph(c, sites)
	// Corrupted byte 10 of rank 1's output lies inside output[8:16].
	path, ok := g.BlamePath(1, 10)
	if !ok {
		t.Fatalf("blame path did not reach the injection: %+v", path)
	}
	if path[0].Kind != "injection" || path[0].Rank != 0 || path[0].EIP != 0x400100 {
		t.Errorf("path root = %+v, want the rank-0 injection", path[0])
	}
	if last := path[len(path)-1]; last.Kind != "output" || last.Rank != 1 {
		t.Errorf("path tail = %+v, want the rank-1 output", last)
	}
	// The walk must traverse the message boundary: both a send and a recv
	// node appear in order.
	sendAt, recvAt := -1, -1
	for i, n := range path {
		switch n.Kind {
		case "send":
			sendAt = i
		case "recv":
			recvAt = i
		}
	}
	if sendAt < 0 || recvAt < 0 || sendAt > recvAt {
		t.Errorf("path does not cross ranks via send->recv: %+v", path)
	}
	// A byte nothing wrote has no blame path.
	if _, ok := g.BlamePath(1, 999); ok {
		t.Error("blame path for an unwritten byte")
	}
	if _, ok := g.BlamePath(0, 10); ok {
		t.Error("blame path on a rank without output nodes")
	}
}

func TestGraphJSONRoundTrip(t *testing.T) {
	c, sites := twoRankCollector()
	g := BuildGraph(c, sites)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Nodes) != len(g.Nodes) || len(back.Edges) != len(g.Edges) {
		t.Fatalf("round trip lost shape: %d/%d nodes, %d/%d edges",
			len(back.Nodes), len(g.Nodes), len(back.Edges), len(g.Edges))
	}
	// The query index is rebuilt after decoding.
	path, ok := back.BlamePath(1, 10)
	if !ok || path[0].Kind != "injection" {
		t.Errorf("blame path after round trip: ok=%v path=%+v", ok, path)
	}
}

func TestGraphDOT(t *testing.T) {
	c, sites := twoRankCollector()
	g := BuildGraph(c, sites)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	dot := buf.String()
	for _, want := range []string{
		"digraph provenance {",
		"subgraph cluster_rank_0",
		"subgraph cluster_rank_1",
		"doubleoctagon", // injection node shape
		"style=dashed",  // the cross-rank message edge
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestBuildGraphNodeCap(t *testing.T) {
	c, sites := twoRankCollector()
	g := BuildGraphCap(c, sites, 3)
	if !g.Truncated {
		t.Error("capped graph not marked truncated")
	}
	if len(g.Nodes) != 3 {
		t.Errorf("nodes = %d, want cap 3", len(g.Nodes))
	}
}

func TestBuildGraphTruncatedCollector(t *testing.T) {
	c := NewCollectorCap(1)
	c.AddEvent(Event{Rank: 0, Write: true, VAddr: 0x100, Size: 4, InstrNum: 1})
	c.AddEvent(Event{Rank: 0, Write: true, VAddr: 0x200, Size: 4, InstrNum: 2}) // dropped
	g := BuildGraph(c, nil)
	if !g.Truncated {
		t.Error("graph from a collector with drops must be marked truncated")
	}
}

func TestBuildGraphMetaSend(t *testing.T) {
	// Envelope-only propagation: a meta cross-rank record becomes a send node
	// fed by the sender's taint cursor, with no message edge (no payload poll
	// pair to stitch).
	c := NewCollector()
	sites := []InjectionSite{{Rank: 0, PC: 0x400000, InstrNum: 5, Op: "add", Target: "reg r3"}}
	c.AddEvent(Event{Rank: 0, Write: false, EIP: 0x400010, VAddr: 0x100, Size: 4, InstrNum: 8})
	c.AddCrossRank(CrossRankRecord{Src: 0, Dst: 2, Tag: 1, Seq: 0, Meta: true, EIP: 0x400020, InstrNum: 9})
	g := BuildGraph(c, sites)
	var send *Node
	for i := range g.Nodes {
		if g.Nodes[i].Kind == "send" {
			send = &g.Nodes[i]
		}
	}
	if send == nil || !strings.Contains(send.Label, "meta") {
		t.Fatalf("meta send node missing: %+v", g.Nodes)
	}
	if g.CrossRankEdges != 0 {
		t.Errorf("meta record produced %d message edges", g.CrossRankEdges)
	}
	path, ok := g.PathFrom(send.ID)
	if !ok || path[0].Kind != "injection" {
		t.Errorf("meta send not rooted at injection: ok=%v %+v", ok, path)
	}
}

func TestBuildGraphNilAndEmpty(t *testing.T) {
	g := BuildGraph(nil, nil)
	if len(g.Nodes) != 0 || len(g.Edges) != 0 || g.Truncated {
		t.Errorf("nil collector graph = %+v", g)
	}
	if _, ok := g.BlamePath(0, 0); ok {
		t.Error("blame path on empty graph")
	}
	g = BuildGraph(NewCollector(), nil)
	if len(g.Nodes) != 0 {
		t.Errorf("empty collector graph has %d nodes", len(g.Nodes))
	}
}

func TestMemoryInjectionSeedsByteWriters(t *testing.T) {
	// A memory-target injection must seed the byte-writer map so the first
	// read of the corrupted word chains to the injection, not the cursor.
	c := NewCollector()
	sites := []InjectionSite{{Rank: 0, PC: 0x400000, InstrNum: 10,
		Op: "load", Target: "mem 0x2000", MemAddr: 0x2000, Mask: 0xff}}
	c.AddEvent(Event{Rank: 0, Write: false, EIP: 0x400050, VAddr: 0x2000, Size: 8, InstrNum: 20})
	c.AddOutput(OutputRecord{Rank: 0, Offset: 0, Len: 8, Masks: []uint8{1, 1, 1, 1, 1, 1, 1, 1},
		EIP: 0x400060, InstrNum: 30})
	g := BuildGraph(c, sites)
	path, ok := g.BlamePath(0, 0)
	if !ok {
		t.Fatalf("no blame path: %+v", g)
	}
	if len(path) != 3 || path[0].Kind != "injection" || path[1].Kind != "read" || path[2].Kind != "output" {
		t.Errorf("path = %+v, want injection->read->output", path)
	}
}

func TestOutputRecordTaintedBytes(t *testing.T) {
	o := OutputRecord{Masks: []uint8{0, 1, 0, 0xff}}
	if got := o.TaintedBytes(); got != 2 {
		t.Errorf("TaintedBytes = %d, want 2", got)
	}
}
