package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCollectorCounts(t *testing.T) {
	c := NewCollector()
	c.AddEvent(Event{Rank: 0, Write: false, EIP: 1, Mask: 1})
	c.AddEvent(Event{Rank: 0, Write: true, EIP: 2, Mask: 2})
	c.AddEvent(Event{Rank: 1, Write: false, EIP: 3, Mask: 4})
	if c.Reads(0) != 1 || c.Writes(0) != 1 || c.Reads(1) != 1 || c.Writes(1) != 0 {
		t.Errorf("per-rank counts wrong: r0=%d/%d r1=%d/%d",
			c.Reads(0), c.Writes(0), c.Reads(1), c.Writes(1))
	}
	if c.TotalReads() != 2 || c.TotalWrites() != 1 {
		t.Errorf("totals = %d/%d", c.TotalReads(), c.TotalWrites())
	}
	if len(c.Events()) != 3 {
		t.Errorf("events = %d", len(c.Events()))
	}
}

func TestCollectorCap(t *testing.T) {
	c := NewCollectorCap(2)
	for i := 0; i < 5; i++ {
		c.AddEvent(Event{Rank: 0, EIP: uint64(i)})
	}
	if len(c.Events()) != 2 {
		t.Errorf("stored = %d, want 2", len(c.Events()))
	}
	if c.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", c.Dropped())
	}
	// Counts still reflect every event.
	if c.TotalReads() != 5 {
		t.Errorf("total reads = %d, want 5", c.TotalReads())
	}
}

func TestCollectorTimelineAndCrossRank(t *testing.T) {
	c := NewCollector()
	c.AddSample(TimelinePoint{Rank: 0, Instrs: 100000, TaintedBytes: 16})
	c.AddSample(TimelinePoint{Rank: 0, Instrs: 200000, TaintedBytes: 0})
	if len(c.Timeline()) != 2 {
		t.Error("timeline size wrong")
	}
	if c.Propagated() {
		t.Error("propagated without cross-rank records")
	}
	c.AddCrossRank(CrossRankRecord{Src: 0, Dst: 3, Tag: 7, Seq: 2, TaintedBytes: 8})
	if !c.Propagated() {
		t.Error("not propagated after cross-rank record")
	}
	if got := c.CrossRank(); len(got) != 1 || got[0].Dst != 3 {
		t.Errorf("cross = %+v", got)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := NewCollector()
	c.AddEvent(Event{Rank: 1, Write: true, EIP: 0x400010, VAddr: 0x2000_0000,
		PAddr: 0x5000, Value: 42, Mask: 0xff, InstrNum: 1234, Size: 8})
	c.AddEvent(Event{Rank: 0, Write: false, EIP: 0x400020, Mask: 1, Size: 1})
	c.AddSample(TimelinePoint{Rank: 1, Instrs: 100000, TaintedBytes: 77})
	c.AddCrossRank(CrossRankRecord{Src: 0, Dst: 1, Tag: 5, Seq: 3, TaintedBytes: 24})

	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	evs := back.Events()
	if len(evs) != 2 || evs[0].VAddr != 0x2000_0000 || evs[0].PAddr != 0x5000 {
		t.Errorf("events = %+v", evs)
	}
	if tl := back.Timeline(); len(tl) != 1 || tl[0].TaintedBytes != 77 {
		t.Errorf("timeline = %+v", tl)
	}
	if cr := back.CrossRank(); len(cr) != 1 || cr[0].TaintedBytes != 24 {
		t.Errorf("cross = %+v", cr)
	}
	if back.TotalWrites() != 1 || back.TotalReads() != 1 {
		t.Error("counts not rebuilt")
	}
}

// TestWriteReadPreservesDropped checks that the log header records cap
// overflow and survives a round trip: a consumer must be able to tell a
// truncated log from a complete one.
func TestWriteReadPreservesDropped(t *testing.T) {
	c := NewCollectorCap(2)
	for i := 0; i < 5; i++ {
		c.AddEvent(Event{Rank: 0, EIP: uint64(i)})
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	if !strings.Contains(first, `"kind":"meta"`) || !strings.Contains(first, `"dropped":3`) {
		t.Errorf("first record is not the meta header: %s", first)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Dropped() != 3 {
		t.Errorf("dropped after round trip = %d, want 3", back.Dropped())
	}
	if len(back.Events()) != 2 {
		t.Errorf("events after round trip = %d, want 2", len(back.Events()))
	}
}

// TestTruncationMarker checks the explicit cap-boundary marker: a truncated
// log carries a "trunc" record after the last stored event, a complete log
// carries none, and the declared drop count round-trips through Read even
// when a consumer streams past the header.
func TestTruncationMarker(t *testing.T) {
	c := NewCollectorCap(2)
	for i := 0; i < 7; i++ {
		c.AddEvent(Event{Rank: 0, EIP: uint64(i)})
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// meta, 2 events, trunc.
	if len(lines) != 4 {
		t.Fatalf("log has %d records, want 4:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[3], `"kind":"trunc"`) || !strings.Contains(lines[3], `"dropped":5`) {
		t.Errorf("last record is not the truncation marker: %s", lines[3])
	}
	back, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Dropped() != 5 {
		t.Errorf("Dropped after round trip = %d, want 5", back.Dropped())
	}

	// A complete log must not carry the marker.
	var clean bytes.Buffer
	c2 := NewCollector()
	c2.AddEvent(Event{Rank: 0})
	if _, err := c2.WriteTo(&clean); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(clean.String(), `"kind":"trunc"`) {
		t.Errorf("complete log carries a truncation marker:\n%s", clean.String())
	}
}

// TestReadAccumulatesReaderDrops checks the drop count when the reading
// collector's own cap is smaller than the log: writer-declared drops and
// reader-side drops add up, so Dropped() never understates truncation.
func TestReadAccumulatesReaderDrops(t *testing.T) {
	c := NewCollectorCap(3)
	for i := 0; i < 5; i++ { // 3 stored, 2 dropped at the writer
		c.AddEvent(Event{Rank: 0, EIP: uint64(i)})
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Read with a tighter cap so 1 of the 3 stored events is dropped again.
	readBack := func(r *bytes.Reader) *Collector {
		t.Helper()
		back := NewCollectorCap(2)
		dec := json.NewDecoder(r)
		for {
			var rec record
			if err := dec.Decode(&rec); err != nil {
				break
			}
			switch rec.Kind {
			case "event":
				back.AddEvent(*rec.Event)
			case "meta":
				back.mu.Lock()
				back.dropped += rec.Meta.Dropped
				back.mu.Unlock()
			}
		}
		return back
	}
	back := readBack(bytes.NewReader(buf.Bytes()))
	if back.Dropped() != 3 { // 2 declared + 1 reader-side
		t.Errorf("accumulated drops = %d, want 3", back.Dropped())
	}
}

func TestSendOutputRoundTrip(t *testing.T) {
	c := NewCollector()
	c.AddSend(SendRecord{Src: 0, Dst: 1, Tag: 9, Seq: 4, Buf: 0x7000, Len: 16,
		TaintedBytes: 4, EIP: 0x400abc, InstrNum: 9001})
	c.AddOutput(OutputRecord{Rank: 1, Offset: 24, Len: 4, Buf: 0x8000,
		Masks: []uint8{0, 0xff, 0, 1}, EIP: 0x400def, InstrNum: 9100})
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s := back.Sends(); len(s) != 1 || s[0].Buf != 0x7000 || s[0].InstrNum != 9001 {
		t.Errorf("sends = %+v", s)
	}
	o := back.Outputs()
	if len(o) != 1 || o[0].Offset != 24 || o[0].TaintedBytes() != 2 {
		t.Errorf("outputs = %+v", o)
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("{not json")); err == nil {
		t.Error("bad json accepted")
	}
	if _, err := Read(bytes.NewBufferString(`{"kind":"zap"}` + "\n")); err == nil {
		t.Error("unknown kind accepted")
	}
	c, err := Read(bytes.NewBufferString(""))
	if err != nil || c == nil {
		t.Error("empty log should parse")
	}
}

func TestCollectorConcurrency(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.AddEvent(Event{Rank: r, Write: i%2 == 0})
				if i%100 == 0 {
					c.AddSample(TimelinePoint{Rank: r, Instrs: uint64(i)})
				}
			}
		}(r)
	}
	wg.Wait()
	if c.TotalReads()+c.TotalWrites() != 4000 {
		t.Errorf("total events = %d", c.TotalReads()+c.TotalWrites())
	}
}

func TestRegionCounts(t *testing.T) {
	c := NewCollector()
	c.AddEvent(Event{Rank: 0, Write: false, Region: "heap"})
	c.AddEvent(Event{Rank: 0, Write: true, Region: "heap"})
	c.AddEvent(Event{Rank: 0, Write: false, Region: "stack"})
	c.AddEvent(Event{Rank: 0, Write: false}) // regionless events are allowed
	regions := c.Regions()
	if regions["heap"].Reads != 1 || regions["heap"].Writes != 1 {
		t.Errorf("heap = %+v", regions["heap"])
	}
	if regions["stack"].Reads != 1 || regions["stack"].Writes != 0 {
		t.Errorf("stack = %+v", regions["stack"])
	}
	if _, ok := regions[""]; ok {
		t.Error("empty region counted")
	}
	// Returned map is a copy.
	regions["heap"] = RegionCounts{Reads: 99}
	if c.Regions()["heap"].Reads == 99 {
		t.Error("Regions() aliases internal state")
	}
}
