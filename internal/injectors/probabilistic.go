// Package injectors contains the three example fault injectors of the
// paper's Table II, each implemented in its own file purely against the
// interfaces exported by the core package (Condition, Injector,
// CorruptRegister / CorruptMemory). They demonstrate the "flexible" design
// goal: a new fault model is ~100 lines of code and needs no knowledge of
// the translation or taint machinery. The Table II harness measures the
// line counts of these files.
package injectors

import (
	"fmt"
	"math/rand"

	"chaser/internal/core"
	"chaser/internal/isa"
)

// ProbabilisticInjector implements the F-SEFI-style probabilistic injector:
// every execution of a targeted instruction flips bits in one of its
// operand registers with a fixed probability. Because the trigger is
// memoryless, the fault location follows the instruction's dynamic
// execution distribution, which is the model the paper uses for its
// statistical campaigns.
type ProbabilisticInjector struct {
	// P is the per-execution injection probability in [0, 1].
	P float64
	// Bits is the number of bits to flip per injection.
	Bits int
	// MaxFaults bounds the total number of injections (0 = exactly one).
	MaxFaults int
}

// Validate checks the configuration.
func (p ProbabilisticInjector) Validate() error {
	if p.P < 0 || p.P > 1 {
		return fmt.Errorf("injectors: probability %v out of [0,1]", p.P)
	}
	if p.Bits < 0 || p.Bits > 64 {
		return fmt.Errorf("injectors: bit count %d out of [0,64]", p.Bits)
	}
	return nil
}

// Spec assembles a complete injection command for the given target
// application and instruction set. The returned spec can be handed straight
// to core.Run or a campaign.
func (p ProbabilisticInjector) Spec(target string, ops []isa.Op, seed int64, trace bool) (*core.Spec, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	maxFaults := p.MaxFaults
	if maxFaults == 0 {
		maxFaults = 1
	}
	return &core.Spec{
		Target:        target,
		Ops:           ops,
		TargetRank:    -1,
		Cond:          core.Probabilistic{P: p.P},
		Inj:           p,
		Bits:          p.Bits,
		MaxInjections: maxFaults,
		Seed:          seed,
		Trace:         trace,
	}, nil
}

// Inject implements core.Injector: flip Bits random bits in a random
// operand register of the triggering instruction.
func (p ProbabilisticInjector) Inject(ctx *core.Context) (core.InjectionRecord, error) {
	return core.OperandInjector{Bits: p.Bits}.Inject(ctx)
}

// Expectation returns the expected number of injections for a run that
// executes the targeted instructions n times — useful when calibrating P so
// that roughly one fault lands per run.
func (p ProbabilisticInjector) Expectation(n uint64) float64 {
	return p.P * float64(n)
}

// CalibrateP returns the probability that yields one expected injection
// over n executions of the target instruction.
func CalibrateP(n uint64) float64 {
	if n == 0 {
		return 1
	}
	return 1 / float64(n)
}

// SampleInjectionCount simulates how many faults a run of n executions
// would receive (for unit tests and documentation examples).
func (p ProbabilisticInjector) SampleInjectionCount(n uint64, rng *rand.Rand) int {
	count := 0
	for i := uint64(0); i < n; i++ {
		if rng.Float64() < p.P {
			count++
		}
	}
	return count
}
