package injectors

import (
	_ "embed"
	"strings"
)

// Table II of the paper reports the lines of code needed to develop each
// injector against Chaser's exported interfaces. The sources are embedded
// so the Table II harness measures the real, shipping files.

//go:embed probabilistic.go
var probabilisticSrc string

//go:embed deterministic.go
var deterministicSrc string

//go:embed group.go
var groupSrc string

// LOC describes one injector's measured size.
type LOC struct {
	Name  string
	Lines int // non-blank, non-comment-only lines
	Raw   int // total lines
}

// countLines counts non-blank, non-comment-only source lines.
func countLines(src string) (code, raw int) {
	inBlock := false
	for _, line := range strings.Split(src, "\n") {
		raw++
		s := strings.TrimSpace(line)
		if inBlock {
			if strings.Contains(s, "*/") {
				inBlock = false
			}
			continue
		}
		switch {
		case s == "":
		case strings.HasPrefix(s, "//"):
		case strings.HasPrefix(s, "/*"):
			if !strings.Contains(s, "*/") {
				inBlock = true
			}
		default:
			code++
		}
	}
	return code, raw
}

// Table2 measures the three injectors' lines of code, reproducing the
// paper's Table II.
func Table2() []LOC {
	out := make([]LOC, 0, 3)
	for _, e := range []struct {
		name string
		src  string
	}{
		{"Probabilistic Injector", probabilisticSrc},
		{"Deterministic Injector", deterministicSrc},
		{"Group Injector", groupSrc},
	} {
		code, raw := countLines(e.src)
		out = append(out, LOC{Name: e.name, Lines: code, Raw: raw})
	}
	return out
}
