package injectors

import (
	"math/rand"
	"testing"

	"chaser/internal/apps"
	"chaser/internal/core"
	"chaser/internal/isa"
	"chaser/internal/tcg"
	"chaser/internal/vm"
)

func TestProbabilisticInjector(t *testing.T) {
	p := ProbabilisticInjector{P: 0.001, Bits: 1}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (ProbabilisticInjector{P: 2}).Validate(); err == nil {
		t.Error("bad probability accepted")
	}
	if err := (ProbabilisticInjector{P: 0.5, Bits: 99}).Validate(); err == nil {
		t.Error("bad bit count accepted")
	}
	spec, err := p.Spec("kmeans", []isa.Op{isa.OpFAdd}, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Target != "kmeans" || spec.MaxInjections != 1 {
		t.Errorf("spec = %+v", spec)
	}
	if got := p.Expectation(3000); got != 3.0 {
		t.Errorf("Expectation = %v", got)
	}
	if got := CalibrateP(2000); got != 0.0005 {
		t.Errorf("CalibrateP = %v", got)
	}
	if CalibrateP(0) != 1 {
		t.Error("CalibrateP(0) != 1")
	}
	rng := rand.New(rand.NewSource(1))
	n := ProbabilisticInjector{P: 0.5}.SampleInjectionCount(1000, rng)
	if n < 400 || n > 600 {
		t.Errorf("sample count = %d, want ~500", n)
	}
}

func TestProbabilisticInjectorEndToEnd(t *testing.T) {
	app, err := apps.ByName("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	// Calibrate so we expect ~1 injection over the app's fadd executions.
	golden, err := core.Golden(app.Prog, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, op := range app.DefaultOps {
		total += golden.Counters[0].PerOp[op]
	}
	inj := ProbabilisticInjector{P: CalibrateP(total / 2), Bits: 1}
	spec, err := inj.Spec(app.Name, app.DefaultOps, 99, false)
	if err != nil {
		t.Fatal(err)
	}
	spec.TargetRank = 0
	res, err := core.Run(core.RunConfig{Prog: app.Prog, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Injected() {
		t.Error("probabilistic injector with ~2 expected faults never fired")
	}
}

func TestDeterministicInjector(t *testing.T) {
	if err := (DeterministicInjector{N: 0, Bits: 1}).Validate(); err == nil {
		t.Error("zero execution count accepted")
	}
	if err := (DeterministicInjector{N: 1}).Validate(); err == nil {
		t.Error("missing mask and bits accepted")
	}
	reg := tcg.FPR(isa.F3)
	addr := uint64(0x2000_0000)
	if err := (DeterministicInjector{N: 1, Bits: 1, Register: &reg, Address: &addr}).Validate(); err == nil {
		t.Error("register+address accepted")
	}
	d := DeterministicInjector{N: 5, Mask: 1 << 52}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	spec, err := d.Spec("clamr", []isa.Op{isa.OpFAdd}, 0, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := spec.Cond.(core.Deterministic); !ok || c.N != 5 {
		t.Errorf("cond = %+v", spec.Cond)
	}
}

func TestDeterministicPinnedRegisterEndToEnd(t *testing.T) {
	app, err := apps.ByName("clamr")
	if err != nil {
		t.Fatal(err)
	}
	reg := tcg.FPR(isa.F1)
	d := DeterministicInjector{N: 10, Mask: 1 << 3, Register: &reg}
	spec, err := d.Spec(app.Name, app.DefaultOps, 0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(core.RunConfig{Prog: app.Prog, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("records = %d", len(res.Records))
	}
	rec := res.Records[0]
	if rec.Mask != 1<<3 || rec.Target != "reg f1" || rec.ExecCount != 10 {
		t.Errorf("record = %+v", rec)
	}
	if rec.Before^rec.After != 1<<3 {
		t.Error("pinned mask not applied")
	}
}

func TestDeterministicMemoryTarget(t *testing.T) {
	app, err := apps.ByName("clamr")
	if err != nil {
		t.Fatal(err)
	}
	addr := isa.HeapBase // first heap allocation (h array)
	d := DeterministicInjector{N: 50, Mask: 0xff, Address: &addr}
	spec, err := d.Spec(app.Name, app.DefaultOps, 0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(core.RunConfig{Prog: app.Prog, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("records = %+v", res.Records)
	}
	if res.Records[0].Target != "mem 0x20000000" {
		t.Errorf("target = %q", res.Records[0].Target)
	}
}

func TestGroupInjector(t *testing.T) {
	if err := (GroupInjector{Bits: 0}).Validate(); err == nil {
		t.Error("zero bits accepted")
	}
	if err := (GroupInjector{Bits: 1, Count: -1}).Validate(); err == nil {
		t.Error("negative count accepted")
	}
	g := GroupInjector{Start: 10, Every: 5, Count: 3, Bits: 1}
	if got := g.PlannedFaults(9); got != 0 {
		t.Errorf("PlannedFaults(9) = %d", got)
	}
	if got := g.PlannedFaults(10); got != 1 {
		t.Errorf("PlannedFaults(10) = %d", got)
	}
	if got := g.PlannedFaults(21); got != 3 {
		t.Errorf("PlannedFaults(21) = %d", got)
	}
	if got := g.PlannedFaults(1000); got != 3 {
		t.Errorf("PlannedFaults capped = %d", got)
	}
	if got := (GroupInjector{Bits: 1}).PlannedFaults(7); got != 7 {
		t.Errorf("dense PlannedFaults = %d", got)
	}
}

func TestGroupInjectorEndToEnd(t *testing.T) {
	app, err := apps.ByName("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	g := GroupInjector{Start: 100, Every: 500, Count: 4, Bits: 1}
	spec, err := g.Spec(app.Name, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	spec.TargetRank = 0
	res, err := core.Run(core.RunConfig{Prog: app.Prog, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	// Multiple faults were planted (the run may crash before all 4 land).
	if len(res.Records) == 0 {
		t.Fatal("group injector never fired")
	}
	if len(res.Records) > 4 {
		t.Errorf("more records than Count: %d", len(res.Records))
	}
	if res.Terms[0].Reason == vm.ReasonBudget {
		t.Error("group run hung")
	}
}

func TestTable2LOC(t *testing.T) {
	rows := Table2()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		// The paper's Table II reports ~100 lines per injector; ours must
		// stay in the same ballpark to support the flexibility claim.
		if row.Lines < 40 || row.Lines > 160 {
			t.Errorf("%s: %d code lines, outside the ~100-line ballpark", row.Name, row.Lines)
		}
		if row.Raw < row.Lines {
			t.Errorf("%s: raw %d < code %d", row.Name, row.Raw, row.Lines)
		}
		t.Logf("%s: %d code lines (%d raw)", row.Name, row.Lines, row.Raw)
	}
}

func TestCountLines(t *testing.T) {
	src := "package x\n\n// comment\n/* block\nstill block\n*/\ncode1\ncode2 // trailing\n"
	code, raw := countLines(src)
	if code != 3 { // package x, code1, code2
		t.Errorf("code = %d, want 3", code)
	}
	if raw != 9 {
		t.Errorf("raw = %d, want 9", raw)
	}
}
