package injectors

import (
	"fmt"

	"chaser/internal/core"
	"chaser/internal/isa"
	"chaser/internal/tcg"
)

// DeterministicInjector implements the F-SEFI-style deterministic injector:
// the fault fires at an exact, predefined execution of the targeted
// instruction ("inject a fault into fadd after it is executed 1000 times").
// It optionally pins the corruption to a specific register or memory word
// instead of a random operand, which makes single-fault experiments exactly
// reproducible bit for bit.
type DeterministicInjector struct {
	// N is the 1-based execution count at which the fault fires.
	N uint64
	// Bits is the number of random bits flipped when Mask is zero.
	Bits int
	// Mask, when non-zero, is the exact XOR pattern to apply.
	Mask uint64
	// Register, when non-nil, pins the corruption to this micro-register.
	Register *tcg.MReg
	// Address, when non-nil, corrupts the 64-bit word at this guest
	// virtual address instead of a register.
	Address *uint64
}

// Validate checks the configuration.
func (d DeterministicInjector) Validate() error {
	if d.N == 0 {
		return fmt.Errorf("injectors: execution count must be >= 1")
	}
	if d.Register != nil && d.Address != nil {
		return fmt.Errorf("injectors: register and address targets are exclusive")
	}
	if d.Mask == 0 && (d.Bits < 1 || d.Bits > 64) {
		return fmt.Errorf("injectors: need a mask or a bit count in [1,64]")
	}
	return nil
}

// Spec assembles a complete injection command.
func (d DeterministicInjector) Spec(target string, ops []isa.Op, rank int, seed int64, trace bool) (*core.Spec, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &core.Spec{
		Target:     target,
		Ops:        ops,
		TargetRank: rank,
		Cond:       core.Deterministic{N: d.N},
		Inj:        d,
		Bits:       d.Bits,
		Seed:       seed,
		Trace:      trace,
	}, nil
}

// Inject implements core.Injector.
func (d DeterministicInjector) Inject(ctx *core.Context) (core.InjectionRecord, error) {
	mask := d.Mask
	if mask == 0 {
		mask = core.RandomBitMask(d.Bits, ctx.Rng)
	}
	switch {
	case d.Address != nil:
		before, after, err := core.CorruptMemory(ctx.Machine, *d.Address, mask, ctx.Trace)
		if err != nil {
			return core.InjectionRecord{}, err
		}
		return core.InjectionRecord{
			Rank:      ctx.Machine.Rank,
			PC:        ctx.Op.GuestPC,
			GuestOp:   ctx.Instr.Op,
			GuestOpS:  ctx.Instr.Op.String(),
			ExecCount: ctx.ExecCount,
			Target:    fmt.Sprintf("mem %#x", *d.Address),
			Mask:      mask,
			Before:    before,
			After:     after,
		}, nil
	case d.Register != nil:
		before, after := core.CorruptRegister(ctx.Machine, *d.Register, mask, ctx.Trace)
		return core.InjectionRecord{
			Rank:      ctx.Machine.Rank,
			PC:        ctx.Op.GuestPC,
			GuestOp:   ctx.Instr.Op,
			GuestOpS:  ctx.Instr.Op.String(),
			ExecCount: ctx.ExecCount,
			Target:    "reg " + d.Register.String(),
			Mask:      mask,
			Before:    before,
			After:     after,
		}, nil
	default:
		if d.Mask == 0 {
			return core.OperandInjector{Bits: d.Bits}.Inject(ctx)
		}
		// A pinned mask with no pinned target: apply the exact mask to one
		// of the triggering instruction's operand registers.
		srcs := core.OperandRegs(ctx.Instr)
		if len(srcs) == 0 {
			return core.InjectionRecord{}, core.ErrDeclined
		}
		reg := srcs[ctx.Rng.Intn(len(srcs))]
		before, after := core.CorruptRegister(ctx.Machine, reg, mask, ctx.Trace)
		return core.InjectionRecord{
			Rank:      ctx.Machine.Rank,
			PC:        ctx.Op.GuestPC,
			GuestOp:   ctx.Instr.Op,
			GuestOpS:  ctx.Instr.Op.String(),
			ExecCount: ctx.ExecCount,
			Target:    "reg " + reg.String(),
			Mask:      mask,
			Before:    before,
			After:     after,
		}, nil
	}
}
