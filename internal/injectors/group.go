package injectors

import (
	"fmt"

	"chaser/internal/core"
	"chaser/internal/isa"
)

// FloatOps is the instruction set the paper's group injector targets: all
// floating-point arithmetic of the guest ISA.
var FloatOps = []isa.Op{
	isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv, isa.OpFNeg, isa.OpFMov,
}

// GroupInjector implements the F-SEFI-style group injector: multiple faults
// are injected across all floating-point instructions of the target — one
// fault every Every executions, starting at Start, up to Count faults.
// Group injection models burst upsets and high-flux environments where a
// single-fault-per-run assumption does not hold.
type GroupInjector struct {
	// Start is the first targeted execution (1-based; 0 means 1).
	Start uint64
	// Every is the injection period in executions (0 or 1 = every one).
	Every uint64
	// Count bounds the total number of faults (0 = unbounded, until the
	// program ends).
	Count int
	// Bits is the number of bits flipped per fault.
	Bits int
}

// Validate checks the configuration.
func (g GroupInjector) Validate() error {
	if g.Bits < 1 || g.Bits > 64 {
		return fmt.Errorf("injectors: bit count %d out of [1,64]", g.Bits)
	}
	if g.Count < 0 {
		return fmt.Errorf("injectors: negative fault count")
	}
	return nil
}

// Spec assembles a complete injection command against all floating-point
// instructions of the target application.
func (g GroupInjector) Spec(target string, seed int64, trace bool) (*core.Spec, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	start := g.Start
	if start == 0 {
		start = 1
	}
	maxInj := g.Count
	if maxInj == 0 {
		maxInj = 1 << 30
	}
	return &core.Spec{
		Target:        target,
		Ops:           FloatOps,
		TargetRank:    -1,
		Cond:          core.Group{Start: start, Every: g.Every},
		Inj:           g,
		Bits:          g.Bits,
		MaxInjections: maxInj,
		Seed:          seed,
		Trace:         trace,
	}, nil
}

// Inject implements core.Injector: each firing flips bits in an operand of
// whichever floating-point instruction is about to execute.
func (g GroupInjector) Inject(ctx *core.Context) (core.InjectionRecord, error) {
	return core.OperandInjector{Bits: g.Bits}.Inject(ctx)
}

// PlannedFaults returns how many faults the group model would place in a
// run executing the targeted instructions n times.
func (g GroupInjector) PlannedFaults(n uint64) int {
	start := g.Start
	if start == 0 {
		start = 1
	}
	if n < start {
		return 0
	}
	every := g.Every
	if every <= 1 {
		every = 1
	}
	planned := int((n-start)/every) + 1
	if g.Count > 0 && planned > g.Count {
		return g.Count
	}
	return planned
}
