package mpi

import "chaser/internal/obs"

// worldObs bundles the world's live instruments. The pointer is nil when no
// registry is attached, so an uninstrumented world pays one predictable
// branch per MPI operation and nothing else. Wait-time histograms are
// observed only on the blocked slow paths — the eager fast paths never call
// time.Now.
type worldObs struct {
	messages     *obs.Counter
	payloadBytes *obs.Counter
	aborts       *obs.Counter
	deadlocks    *obs.Counter
	sendWait     *obs.Histogram
	recvWait     *obs.Histogram
	barrierWait  *obs.Histogram
}

func newWorldObs(reg *obs.Registry) *worldObs {
	if reg == nil {
		return nil
	}
	return &worldObs{
		messages:     reg.Counter("mpi_messages_total"),
		payloadBytes: reg.Counter("mpi_payload_bytes_total"),
		aborts:       reg.Counter("mpi_aborts_total"),
		deadlocks:    reg.Counter("mpi_deadlocks_total"),
		sendWait:     reg.Histogram("mpi_send_wait_seconds", obs.LatencyBuckets...),
		recvWait:     reg.Histogram("mpi_recv_wait_seconds", obs.LatencyBuckets...),
		barrierWait:  reg.Histogram("mpi_barrier_wait_seconds", obs.LatencyBuckets...),
	}
}

// sent records one delivered message with its payload size.
func (o *worldObs) sent(payload int) {
	if o == nil {
		return
	}
	o.messages.Inc()
	o.payloadBytes.Add(uint64(payload))
}
