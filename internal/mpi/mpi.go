// Package mpi implements a simulated MPI runtime for guest programs: one
// virtual machine per rank, message passing with tag/source matching,
// collectives (barrier, broadcast, reduce), argument validation that raises
// MPI runtime errors, peer-failure propagation (mpirun-style abort), and
// deadlock detection.
//
// The runtime plays the role of the MPI library plus mpirun in the paper's
// testbed. Chaser does not modify it: cross-rank taint coordination happens
// in syscall hooks installed on each machine, exactly as the original hooks
// MPI_Send/MPI_Recv inside the guest.
package mpi

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"chaser/internal/isa"
	"chaser/internal/obs"
	"chaser/internal/vm"
)

// MaxTag is the largest user tag accepted by the runtime; reserved internal
// tags for collectives sit above it.
const MaxTag = 1 << 20

// Reserved internal tags for collective operations.
const (
	tagBcast     = MaxTag + 1
	tagReduce    = MaxTag + 2
	tagAllreduce = MaxTag + 3
)

// mailboxCap bounds per-rank in-flight messages (eager-send buffering).
const mailboxCap = 1024

// Message is one in-flight MPI message.
type Message struct {
	Src, Dst, Tag int
	Dtype         isa.Datatype
	Count         int64
	Data          []byte
}

// World is a set of ranks executing the same guest program (SPMD).
type World struct {
	size  int
	ranks []*rankState

	// delivered counts messages handed to mailboxes; the deadlock watchdog
	// uses it as a progress indicator.
	delivered atomic.Uint64

	barrier *barrier

	abortOnce sync.Once
	aborted   atomic.Bool

	// pausing is set when the abort in flight is a fork-point pause rather
	// than a failure; pauseDirty is raised by any rank whose in-progress MPI
	// call had already made externally visible progress (a delivered message
	// or a consumed match) when the pause landed — rewinding such a call
	// would replay the progress, so the snapshot is rejected and the
	// campaign falls back to a from-scratch run.
	pausing    atomic.Bool
	pauseDirty atomic.Bool

	obs    *worldObs
	tracer *obs.Tracer
	events *obs.Sink
}

type rankState struct {
	id      int
	m       *vm.Machine
	mailbox chan Message
	pending []Message // received but not yet matched
	blocked atomic.Bool
	done    atomic.Bool
	term    vm.Termination
	abortCh chan struct{}
}

// Config parameterizes world construction.
type Config struct {
	// Size is the number of ranks (required, >= 1).
	Size int
	// Machine returns the vm.Config for a rank. Rank/WorldSize/MPI fields
	// are overwritten by the world. Nil uses defaults.
	Machine func(rank int) vm.Config
	// NewMachine, when non-nil, constructs the rank's machine instead of
	// vm.New — the fork path uses it to resume machines from snapshots. The
	// supplied config already has Rank/WorldSize/MPI filled in.
	NewMachine func(rank int, mc vm.Config) *vm.Machine
	// Mailboxes and Pendings, when non-nil, preload each rank's undelivered
	// message queues (restoring a paused world's in-flight state). Indexed
	// by rank; Message.Data is shared read-only with the snapshot, so
	// callers pass per-fork copies of the slice headers only.
	Mailboxes [][]Message
	Pendings  [][]Message
	// Setup runs after each machine is created and before it starts; Chaser
	// instruments target ranks here (the VMI process-creation event).
	Setup func(rank int, m *vm.Machine)
	// Obs, when non-nil, receives runtime telemetry (message counts, wait
	// times, aborts). Nil disables it.
	Obs *obs.Registry
	// Tracer, when non-nil, records one span per rank execution (thread id =
	// rank, so traces render as per-rank swimlanes).
	Tracer *obs.Tracer
	// Events, when non-nil, receives world-lifecycle events (aborts,
	// deadlocks, interrupts). Nil disables them.
	Events *obs.Sink
}

// NewWorld creates a world of cfg.Size ranks all running prog.
func NewWorld(prog *isa.Program, cfg Config) (*World, error) {
	if cfg.Size < 1 {
		return nil, fmt.Errorf("mpi: world size %d < 1", cfg.Size)
	}
	w := &World{
		size:    cfg.Size,
		barrier: newBarrier(cfg.Size),
		obs:     newWorldObs(cfg.Obs),
		tracer:  cfg.Tracer,
		events:  cfg.Events,
	}
	for r := 0; r < cfg.Size; r++ {
		var mc vm.Config
		if cfg.Machine != nil {
			mc = cfg.Machine(r)
		}
		mc.Rank = r
		mc.WorldSize = cfg.Size
		rs := &rankState{
			id:      r,
			mailbox: make(chan Message, mailboxCap),
			abortCh: make(chan struct{}),
		}
		mc.MPI = &env{w: w, rs: rs}
		if cfg.NewMachine != nil {
			rs.m = cfg.NewMachine(r, mc)
		} else {
			rs.m = vm.New(prog, mc)
		}
		rs.m.PID = 1000 + r
		if cfg.Mailboxes != nil {
			for _, msg := range cfg.Mailboxes[r] {
				rs.mailbox <- msg
			}
		}
		if cfg.Pendings != nil {
			rs.pending = append([]Message(nil), cfg.Pendings[r]...)
		}
		w.ranks = append(w.ranks, rs)
	}
	if cfg.Setup != nil {
		for _, rs := range w.ranks {
			cfg.Setup(rs.id, rs.m)
		}
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Machine returns the virtual machine of one rank.
func (w *World) Machine(rank int) *vm.Machine { return w.ranks[rank].m }

// Run executes all ranks to completion and returns their terminations
// indexed by rank. If any rank terminates abnormally the remaining ranks
// are aborted, as mpirun does.
//
// A panic inside a rank goroutine (a simulator bug, not a guest fault) is
// captured, the remaining ranks are aborted so nothing blocks forever, and
// the panic is re-raised on the caller's goroutine once every rank has
// drained — campaign workers isolate it there without losing the process.
func (w *World) Run() []vm.Termination {
	var wg sync.WaitGroup
	stopWatch := make(chan struct{})
	var panicMu sync.Mutex
	var panicMsg string
	for _, rs := range w.ranks {
		// A rank restored from a snapshot may already have terminated in the
		// prefix (clean exit before the fork point): record it and skip the
		// goroutine entirely.
		if t := rs.m.Terminated(); t != nil {
			rs.term = *t
			rs.done.Store(true)
			continue
		}
		wg.Add(1)
		go func(rs *rankState) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicMsg == "" {
						panicMsg = fmt.Sprintf("rank %d: %v\n%s", rs.id, r, debug.Stack())
					}
					panicMu.Unlock()
					rs.done.Store(true)
					w.abortPeers(rs.id, vm.Termination{
						Reason: vm.ReasonMPIError,
						Msg:    fmt.Sprintf("peer rank %d terminated: simulator panic", rs.id),
					})
				}
			}()
			sp := w.tracer.StartSpanTID("rank.run", rs.id)
			term := rs.m.Run()
			sp.SetArg("reason", term.Reason.String())
			sp.End()
			rs.term = term
			rs.done.Store(true)
			switch {
			case term.Reason == vm.ReasonPaused:
				// A fork-point pause initiated by this rank: suspend the
				// whole world at this quiescent boundary instead of treating
				// the stop as a failure.
				w.Pause(term)
			case term.Abnormal():
				w.abortPeers(rs.id, term)
			}
		}(rs)
	}
	go w.watchdog(stopWatch)
	wg.Wait()
	close(stopWatch)
	if panicMsg != "" {
		panic("mpi: " + panicMsg)
	}
	out := make([]vm.Termination, w.size)
	for i, rs := range w.ranks {
		out[i] = rs.term
	}
	return out
}

// Interrupt force-terminates every rank with the given termination. The
// per-run wall-clock watchdog uses it to enforce deadlines: like an mpirun
// kill, running ranks observe the abort at their next block boundary and
// ranks blocked in MPI waits are woken immediately.
func (w *World) Interrupt(t vm.Termination) {
	w.abortOnce.Do(func() {
		w.aborted.Store(true)
		if w.obs != nil {
			w.obs.aborts.Inc()
		}
		w.tracer.Instant("mpi.interrupt", 0)
		w.events.Emit("world_interrupt", -1, -1, uint64(t.Reason), 0, t.Msg)
		for _, rs := range w.ranks {
			rs.m.Abort(t)
			close(rs.abortCh)
		}
		w.barrier.abort()
	})
}

// Pause suspends every rank with a ReasonPaused termination for a
// fork-point snapshot. Running ranks stop at their next block boundary (a
// resumable pc); ranks blocked in MPI waits are woken and rewound to the
// blocking syscall instruction (see vm.Machine.Snapshot). Pause shares
// abortOnce with the failure aborts, so a pause racing a real abort loses
// cleanly — the prefix run then fails validation and the caller falls back.
func (w *World) Pause(t vm.Termination) {
	w.pausing.Store(true)
	w.abortOnce.Do(func() {
		w.tracer.Instant("mpi.pause", 0)
		w.events.Emit("world_pause", -1, -1, uint64(t.Reason), 0, t.Msg)
		for _, rs := range w.ranks {
			rs.m.Abort(t)
			close(rs.abortCh)
		}
		w.barrier.abort()
	})
}

// PauseDirty reports whether any rank's interrupted MPI call had made
// externally visible progress, making the pause point non-resumable.
func (w *World) PauseDirty() bool { return w.pauseDirty.Load() }

// QueueSnapshot captures every rank's undelivered messages: the mailbox
// contents (in delivery order) and the received-but-unmatched pending list.
// It drains the mailboxes destructively, so it is only legal on a world that
// has fully stopped (after Run returns).
func (w *World) QueueSnapshot() (mailboxes, pendings [][]Message) {
	mailboxes = make([][]Message, w.size)
	pendings = make([][]Message, w.size)
	for i, rs := range w.ranks {
	drain:
		for {
			select {
			case msg := <-rs.mailbox:
				mailboxes[i] = append(mailboxes[i], msg)
			default:
				break drain
			}
		}
		pendings[i] = append([]Message(nil), rs.pending...)
	}
	return mailboxes, pendings
}

// abortPeers kills all other ranks after rank `from` failed.
func (w *World) abortPeers(from int, cause vm.Termination) {
	w.abortOnce.Do(func() {
		w.aborted.Store(true)
		if w.obs != nil {
			w.obs.aborts.Inc()
		}
		w.tracer.Instant("mpi.abort_peers", from)
		w.events.Emit("world_abort", -1, from, uint64(cause.Reason), 0, cause.Msg)
		for _, rs := range w.ranks {
			if rs.id == from {
				continue
			}
			rs.m.Abort(vm.Termination{
				Reason: vm.ReasonMPIError,
				Msg:    fmt.Sprintf("peer rank %d terminated: %s", from, cause),
			})
			close(rs.abortCh)
		}
		w.barrier.abort()
	})
}

// abortAll kills every rank (deadlock detected).
func (w *World) abortAll(msg string) {
	w.abortOnce.Do(func() {
		w.aborted.Store(true)
		if w.obs != nil {
			w.obs.aborts.Inc()
		}
		w.events.Emit("world_deadlock", -1, -1, 0, 0, msg)
		for _, rs := range w.ranks {
			rs.m.Abort(vm.Termination{Reason: vm.ReasonMPIError, Msg: msg})
			close(rs.abortCh)
		}
		w.barrier.abort()
	})
}

// watchdog aborts the world when every live rank is blocked in MPI and no
// message has been delivered between two consecutive polls — i.e. deadlock,
// typically fault-induced (a sender crashed out of its send, or control
// flow skipped a matching send).
func (w *World) watchdog(stop <-chan struct{}) {
	// A world is declared deadlocked when, over a sustained window, every
	// live rank sits in a blocked MPI wait, every mailbox is empty (no
	// receiver has undrained input), and no message was delivered. The
	// window is generous because under parallel campaigns whole worlds can
	// be descheduled for milliseconds; fault-induced deadlocks are
	// permanent, so detection latency only costs wall-clock, never
	// correctness.
	const (
		poll         = 200 * time.Microsecond
		stableNeeded = 25 // 5ms of provable no-progress
	)
	var lastDelivered uint64
	stable := 0
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		allIdle := true
		anyBlocked := false
		mailboxesEmpty := true
		for _, rs := range w.ranks {
			if rs.done.Load() {
				continue
			}
			if rs.blocked.Load() {
				anyBlocked = true
			} else {
				allIdle = false
			}
			if len(rs.mailbox) > 0 {
				mailboxesEmpty = false
			}
		}
		d := w.delivered.Load()
		if allIdle && anyBlocked && mailboxesEmpty && d == lastDelivered {
			stable++
			if stable >= stableNeeded {
				if w.obs != nil {
					w.obs.deadlocks.Inc()
				}
				w.tracer.Instant("mpi.deadlock", 0)
				w.abortAll("deadlock detected: all live ranks blocked in MPI")
				return
			}
		} else {
			stable = 0
		}
		lastDelivered = d
	}
}

// barrier is an abortable N-party barrier usable repeatedly.
type barrier struct {
	mu      sync.Mutex
	n       int
	arrived int
	gen     int
	release chan struct{}
	broken  bool
}

func newBarrier(n int) *barrier {
	return &barrier{n: n, release: make(chan struct{})}
}

// wait blocks until all n parties arrive or the barrier is aborted; it
// returns false when aborted.
func (b *barrier) wait(abortCh <-chan struct{}) bool {
	b.mu.Lock()
	if b.broken {
		b.mu.Unlock()
		return false
	}
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		close(b.release)
		b.release = make(chan struct{})
		b.mu.Unlock()
		return true
	}
	release := b.release
	myGen := b.gen
	b.mu.Unlock()
	select {
	case <-release:
		b.mu.Lock()
		// The generation check distinguishes a completion that raced an
		// abort from a pure abort: if the generation advanced past ours, all
		// n parties arrived and this waiter was released legitimately — the
		// barrier completed even if the world was broken immediately after.
		completed := b.gen > myGen
		broken := b.broken
		b.mu.Unlock()
		return completed || !broken
	case <-abortCh:
		return false
	}
}

func (b *barrier) abort() {
	b.mu.Lock()
	b.broken = true
	close(b.release)
	b.release = make(chan struct{})
	// Keep future waiters from blocking.
	b.mu.Unlock()
}
