package mpi

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"
	"time"

	"chaser/internal/isa"
	"chaser/internal/lang"
	"chaser/internal/vm"
)

func compile(t *testing.T, p *lang.Program) *isa.Program {
	t.Helper()
	prog, err := lang.Compile(p)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func runWorld(t *testing.T, prog *isa.Program, size int) (*World, []vm.Termination) {
	t.Helper()
	w, err := NewWorld(prog, Config{Size: size})
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	return w, w.Run()
}

// Shorthand AST helpers.
var (
	I  = lang.I
	V  = lang.V
	B  = lang.Block
	Ad = lang.Add
)

func TestRankAndSize(t *testing.T) {
	prog := compile(t, &lang.Program{Name: "ranks", Funcs: []*lang.Func{{
		Name: "main",
		Body: B(
			lang.OutInt{E: lang.RankExpr{}},
			lang.OutInt{E: lang.SizeExpr{}},
		),
	}}})
	w, terms := runWorld(t, prog, 4)
	for r, term := range terms {
		if term.Reason != vm.ReasonExited || term.Code != 0 {
			t.Fatalf("rank %d: %v", r, term)
		}
		out := w.Machine(r).Output()
		if got := int64(binary.LittleEndian.Uint64(out)); got != int64(r) {
			t.Errorf("rank %d reported rank %d", r, got)
		}
		if got := int64(binary.LittleEndian.Uint64(out[8:])); got != 4 {
			t.Errorf("rank %d reported size %d", r, got)
		}
	}
}

// pingProg: rank 0 sends [v, v*2, v*3] to rank 1; rank 1 echoes the sum back.
func pingProg(t *testing.T) *isa.Program {
	return compile(t, &lang.Program{Name: "ping", Funcs: []*lang.Func{{
		Name: "main",
		Body: B(
			lang.Let("buf", lang.Alloc(I(3))),
			lang.If{
				Cond: lang.Eq(lang.RankExpr{}, I(0)),
				Then: B(
					lang.SetAt(V("buf"), I(0), I(7)),
					lang.SetAt(V("buf"), I(1), I(14)),
					lang.SetAt(V("buf"), I(2), I(21)),
					lang.MPISend{Buf: V("buf"), Count: I(3), Dtype: int64(isa.TypeInt64), Dest: I(1), Tag: I(5)},
					lang.MPIRecv{Buf: V("buf"), Count: I(1), Dtype: int64(isa.TypeInt64), Source: I(1), Tag: I(6)},
					lang.OutInt{E: lang.At(V("buf"), I(0))},
				),
				Else: B(
					lang.MPIRecv{Buf: V("buf"), Count: I(3), Dtype: int64(isa.TypeInt64), Source: I(0), Tag: I(5)},
					lang.Let("sum", Ad(Ad(lang.At(V("buf"), I(0)), lang.At(V("buf"), I(1))), lang.At(V("buf"), I(2)))),
					lang.SetAt(V("buf"), I(0), V("sum")),
					lang.MPISend{Buf: V("buf"), Count: I(1), Dtype: int64(isa.TypeInt64), Dest: I(0), Tag: I(6)},
				),
			},
		),
	}}})
}

func TestSendRecvPingPong(t *testing.T) {
	w, terms := runWorld(t, pingProg(t), 2)
	for r, term := range terms {
		if term.Reason != vm.ReasonExited {
			t.Fatalf("rank %d: %v", r, term)
		}
	}
	out := w.Machine(0).Output()
	if got := int64(binary.LittleEndian.Uint64(out)); got != 42 {
		t.Errorf("echoed sum = %d, want 42", got)
	}
}

func TestBarrierAndBcast(t *testing.T) {
	prog := compile(t, &lang.Program{Name: "bcast", Funcs: []*lang.Func{{
		Name: "main",
		Body: B(
			lang.Let("buf", lang.Alloc(I(2))),
			lang.If{
				Cond: lang.Eq(lang.RankExpr{}, I(0)),
				Then: B(
					lang.SetAt(V("buf"), I(0), I(11)),
					lang.SetAt(V("buf"), I(1), I(22)),
				),
			},
			lang.Barrier{},
			lang.Bcast{Buf: V("buf"), Count: I(2), Dtype: int64(isa.TypeInt64), Root: I(0)},
			lang.Barrier{},
			lang.OutInt{E: Ad(lang.At(V("buf"), I(0)), lang.At(V("buf"), I(1)))},
		),
	}}})
	w, terms := runWorld(t, prog, 4)
	for r, term := range terms {
		if term.Reason != vm.ReasonExited {
			t.Fatalf("rank %d: %v", r, term)
		}
		out := w.Machine(r).Output()
		if got := int64(binary.LittleEndian.Uint64(out)); got != 33 {
			t.Errorf("rank %d got %d, want 33", r, got)
		}
	}
}

func TestReduceSum(t *testing.T) {
	prog := compile(t, &lang.Program{Name: "reduce", Funcs: []*lang.Func{{
		Name: "main",
		Body: B(
			lang.Let("send", lang.Alloc(I(2))),
			lang.Let("recv", lang.Alloc(I(2))),
			lang.SetAt(V("send"), I(0), Ad(lang.RankExpr{}, I(1))), // 1,2,3,4
			lang.SetAt(V("send"), I(1), lang.Mul(lang.RankExpr{}, I(10))),
			lang.Reduce{SendBuf: V("send"), RecvBuf: V("recv"), Count: I(2),
				Dtype: int64(isa.TypeInt64), ReduceOp: int64(isa.ReduceSum), Root: I(0)},
			lang.If{Cond: lang.Eq(lang.RankExpr{}, I(0)), Then: B(
				lang.OutInt{E: lang.At(V("recv"), I(0))}, // 10
				lang.OutInt{E: lang.At(V("recv"), I(1))}, // 0+10+20+30=60
			)},
		),
	}}})
	w, terms := runWorld(t, prog, 4)
	for r, term := range terms {
		if term.Reason != vm.ReasonExited {
			t.Fatalf("rank %d: %v", r, term)
		}
	}
	out := w.Machine(0).Output()
	if got := int64(binary.LittleEndian.Uint64(out)); got != 10 {
		t.Errorf("reduce[0] = %d, want 10", got)
	}
	if got := int64(binary.LittleEndian.Uint64(out[8:])); got != 60 {
		t.Errorf("reduce[1] = %d, want 60", got)
	}
}

func TestReduceFloatMaxMin(t *testing.T) {
	mk := func(op int64) *isa.Program {
		return compile(t, &lang.Program{Name: "reducef", Funcs: []*lang.Func{{
			Name: "main",
			Body: B(
				lang.Let("send", lang.Alloc(I(1))),
				lang.Let("recv", lang.Alloc(I(1))),
				lang.SetAt(V("send"), I(0), lang.ToFloat(lang.RankExpr{})),
				lang.Reduce{SendBuf: V("send"), RecvBuf: V("recv"), Count: I(1),
					Dtype: int64(isa.TypeFloat64), ReduceOp: op, Root: I(0)},
				lang.If{Cond: lang.Eq(lang.RankExpr{}, I(0)), Then: B(
					lang.OutFloat{E: lang.AtF(V("recv"), I(0))},
				)},
			),
		}}})
	}
	for _, tt := range []struct {
		op   isa.ReduceOp
		want float64
	}{{isa.ReduceMax, 3}, {isa.ReduceMin, 0}, {isa.ReduceSum, 6}} {
		w, terms := runWorld(t, mk(int64(tt.op)), 4)
		for r, term := range terms {
			if term.Reason != vm.ReasonExited {
				t.Fatalf("%v rank %d: %v", tt.op, r, term)
			}
		}
		out := w.Machine(0).Output()
		bits := binary.LittleEndian.Uint64(out)
		if got := float64frombits(bits); got != tt.want {
			t.Errorf("%v = %v, want %v", tt.op, got, tt.want)
		}
	}
}

func float64frombits(b uint64) float64 {
	return mathFloat64frombits(b)
}

func TestInvalidArgsAreMPIErrors(t *testing.T) {
	tests := []struct {
		name string
		send lang.Stmt
		sub  string
	}{
		{"bad dest", lang.MPISend{Buf: V("buf"), Count: I(1), Dtype: 1, Dest: I(99), Tag: I(0)}, "invalid rank"},
		{"negative dest", lang.MPISend{Buf: V("buf"), Count: I(1), Dtype: 1, Dest: I(-2), Tag: I(0)}, "invalid rank"},
		{"bad count", lang.MPISend{Buf: V("buf"), Count: I(-1), Dtype: 1, Dest: I(1), Tag: I(0)}, "invalid count"},
		{"bad dtype", lang.MPISend{Buf: V("buf"), Count: I(1), Dtype: 9, Dest: I(1), Tag: I(0)}, "invalid datatype"},
		{"bad tag", lang.MPISend{Buf: V("buf"), Count: I(1), Dtype: 1, Dest: I(1), Tag: I(-3)}, "invalid tag"},
		{"send self", lang.MPISend{Buf: V("buf"), Count: I(1), Dtype: 1, Dest: I(0), Tag: I(0)}, "send to self"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			prog := compile(t, &lang.Program{Name: "bad", Funcs: []*lang.Func{{
				Name: "main",
				Body: B(
					lang.Let("buf", lang.Alloc(I(1))),
					lang.If{Cond: lang.Eq(lang.RankExpr{}, I(0)), Then: B(tt.send)},
				),
			}}})
			_, terms := runWorld(t, prog, 2)
			if terms[0].Reason != vm.ReasonMPIError {
				t.Fatalf("rank 0: %v, want mpi-error", terms[0])
			}
			if !strings.Contains(terms[0].Msg, tt.sub) {
				t.Errorf("msg %q missing %q", terms[0].Msg, tt.sub)
			}
		})
	}
}

func TestCorruptedBufferIsSegfault(t *testing.T) {
	prog := compile(t, &lang.Program{Name: "segv", Funcs: []*lang.Func{{
		Name: "main",
		Body: B(
			lang.If{Cond: lang.Eq(lang.RankExpr{}, I(0)), Then: B(
				// Send from a wild pointer.
				lang.MPISend{Buf: I(0x50), Count: I(4), Dtype: 1, Dest: I(1), Tag: I(0)},
			), Else: B(
				lang.Let("buf", lang.Alloc(I(4))),
				lang.MPIRecv{Buf: V("buf"), Count: I(4), Dtype: 1, Source: I(0), Tag: I(0)},
			)},
		),
	}}})
	_, terms := runWorld(t, prog, 2)
	if terms[0].Reason != vm.ReasonSignal || terms[0].Signal != vm.SIGSEGV {
		t.Fatalf("rank 0: %v, want SIGSEGV", terms[0])
	}
	// Rank 1 is aborted by the supervisor with an MPI error.
	if terms[1].Reason != vm.ReasonMPIError {
		t.Fatalf("rank 1: %v, want mpi-error (peer abort)", terms[1])
	}
	if !strings.Contains(terms[1].Msg, "peer rank 0") {
		t.Errorf("rank 1 msg = %q", terms[1].Msg)
	}
}

func TestTruncationError(t *testing.T) {
	prog := compile(t, &lang.Program{Name: "trunc", Funcs: []*lang.Func{{
		Name: "main",
		Body: B(
			lang.Let("buf", lang.Alloc(I(8))),
			lang.If{Cond: lang.Eq(lang.RankExpr{}, I(0)), Then: B(
				lang.MPISend{Buf: V("buf"), Count: I(8), Dtype: 1, Dest: I(1), Tag: I(0)},
			), Else: B(
				lang.MPIRecv{Buf: V("buf"), Count: I(2), Dtype: 1, Source: I(0), Tag: I(0)},
			)},
		),
	}}})
	_, terms := runWorld(t, prog, 2)
	if terms[1].Reason != vm.ReasonMPIError || !strings.Contains(terms[1].Msg, "truncated") {
		t.Fatalf("rank 1: %v, want truncation mpi-error", terms[1])
	}
}

func TestDeadlockDetection(t *testing.T) {
	// Both ranks recv first: classic deadlock; the watchdog must fire.
	prog := compile(t, &lang.Program{Name: "deadlock", Funcs: []*lang.Func{{
		Name: "main",
		Body: B(
			lang.Let("buf", lang.Alloc(I(1))),
			lang.MPIRecv{Buf: V("buf"), Count: I(1), Dtype: 1,
				Source: lang.Sub(I(1), lang.RankExpr{}), Tag: I(0)},
		),
	}}})
	_, terms := runWorld(t, prog, 2)
	for r, term := range terms {
		if term.Reason != vm.ReasonMPIError {
			t.Fatalf("rank %d: %v, want mpi-error (deadlock)", r, term)
		}
	}
}

func TestTagMatching(t *testing.T) {
	// Rank 0 sends tag 2 then tag 1; rank 1 receives tag 1 first.
	prog := compile(t, &lang.Program{Name: "tags", Funcs: []*lang.Func{{
		Name: "main",
		Body: B(
			lang.Let("a", lang.Alloc(I(1))),
			lang.Let("b", lang.Alloc(I(1))),
			lang.If{Cond: lang.Eq(lang.RankExpr{}, I(0)), Then: B(
				lang.SetAt(V("a"), I(0), I(200)),
				lang.SetAt(V("b"), I(0), I(100)),
				lang.MPISend{Buf: V("a"), Count: I(1), Dtype: 1, Dest: I(1), Tag: I(2)},
				lang.MPISend{Buf: V("b"), Count: I(1), Dtype: 1, Dest: I(1), Tag: I(1)},
			), Else: B(
				lang.MPIRecv{Buf: V("a"), Count: I(1), Dtype: 1, Source: I(0), Tag: I(1)},
				lang.MPIRecv{Buf: V("b"), Count: I(1), Dtype: 1, Source: I(0), Tag: I(2)},
				lang.OutInt{E: lang.At(V("a"), I(0))}, // 100 (tag 1)
				lang.OutInt{E: lang.At(V("b"), I(0))}, // 200 (tag 2)
			)},
		),
	}}})
	w, terms := runWorld(t, prog, 2)
	for r, term := range terms {
		if term.Reason != vm.ReasonExited {
			t.Fatalf("rank %d: %v", r, term)
		}
	}
	out := w.Machine(1).Output()
	if got := int64(binary.LittleEndian.Uint64(out)); got != 100 {
		t.Errorf("tag-1 payload = %d, want 100", got)
	}
	if got := int64(binary.LittleEndian.Uint64(out[8:])); got != 200 {
		t.Errorf("tag-2 payload = %d, want 200", got)
	}
}

func TestWorldConfigErrors(t *testing.T) {
	if _, err := NewWorld(&isa.Program{}, Config{Size: 0}); err == nil {
		t.Error("size 0 accepted")
	}
}

func TestSetupHookRuns(t *testing.T) {
	prog := pingProg(t)
	seen := map[int]bool{}
	w, err := NewWorld(prog, Config{Size: 2, Setup: func(rank int, m *vm.Machine) {
		seen[rank] = true
		if m.Rank != rank || m.WorldSize != 2 {
			t.Errorf("machine identity wrong: rank %d size %d", m.Rank, m.WorldSize)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !seen[0] || !seen[1] {
		t.Error("setup hook not run for all ranks")
	}
	terms := w.Run()
	for r, term := range terms {
		if term.Reason != vm.ReasonExited {
			t.Fatalf("rank %d: %v", r, term)
		}
	}
}

func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }

func TestAllreduce(t *testing.T) {
	prog := compile(t, &lang.Program{Name: "allred", Funcs: []*lang.Func{{
		Name: "main",
		Body: B(
			lang.Let("send", lang.Alloc(I(2))),
			lang.Let("recv", lang.Alloc(I(2))),
			lang.SetAt(V("send"), I(0), Ad(lang.RankExpr{}, I(1))), // 1..4
			lang.SetAt(V("send"), I(1), lang.Mul(lang.RankExpr{}, lang.RankExpr{})),
			lang.Allreduce{SendBuf: V("send"), RecvBuf: V("recv"), Count: I(2),
				Dtype: int64(isa.TypeInt64), ReduceOp: int64(isa.ReduceSum)},
			lang.OutInt{E: lang.At(V("recv"), I(0))}, // 10 on every rank
			lang.OutInt{E: lang.At(V("recv"), I(1))}, // 0+1+4+9 = 14
		),
	}}})
	w, terms := runWorld(t, prog, 4)
	for r, term := range terms {
		if term.Reason != vm.ReasonExited {
			t.Fatalf("rank %d: %v", r, term)
		}
		out := w.Machine(r).Output()
		if got := int64(binary.LittleEndian.Uint64(out)); got != 10 {
			t.Errorf("rank %d allreduce[0] = %d, want 10", r, got)
		}
		if got := int64(binary.LittleEndian.Uint64(out[8:])); got != 14 {
			t.Errorf("rank %d allreduce[1] = %d, want 14", r, got)
		}
	}
}

func TestAllreduceFloatMax(t *testing.T) {
	prog := compile(t, &lang.Program{Name: "allredf", Funcs: []*lang.Func{{
		Name: "main",
		Body: B(
			lang.Let("send", lang.Alloc(I(1))),
			lang.Let("recv", lang.Alloc(I(1))),
			lang.SetAt(V("send"), I(0), lang.ToFloat(lang.Mul(lang.RankExpr{}, I(3)))),
			lang.Allreduce{SendBuf: V("send"), RecvBuf: V("recv"), Count: I(1),
				Dtype: int64(isa.TypeFloat64), ReduceOp: int64(isa.ReduceMax)},
			lang.OutFloat{E: lang.AtF(V("recv"), I(0))},
		),
	}}})
	w, terms := runWorld(t, prog, 3)
	for r, term := range terms {
		if term.Reason != vm.ReasonExited {
			t.Fatalf("rank %d: %v", r, term)
		}
		out := w.Machine(r).Output()
		if got := math.Float64frombits(binary.LittleEndian.Uint64(out)); got != 6 {
			t.Errorf("rank %d allreduce max = %v, want 6", r, got)
		}
	}
}

func TestCollectiveValidationErrors(t *testing.T) {
	mk := func(body ...lang.Stmt) *isa.Program {
		return compile(t, &lang.Program{Name: "colerr", Funcs: []*lang.Func{{
			Name: "main",
			Body: append(B(lang.Let("buf", lang.Alloc(I(2)))), body...),
		}}})
	}
	tests := []struct {
		name string
		body []lang.Stmt
		sub  string
	}{
		{"bcast bad root", B(
			lang.Bcast{Buf: V("buf"), Count: I(2), Dtype: 1, Root: I(9)},
		), "invalid rank"},
		{"reduce bad op", B(
			lang.Reduce{SendBuf: V("buf"), RecvBuf: V("buf"), Count: I(2),
				Dtype: 1, ReduceOp: 9, Root: I(0)},
		), "invalid reduce op"},
		{"reduce byte dtype", B(
			lang.Reduce{SendBuf: V("buf"), RecvBuf: V("buf"), Count: I(2),
				Dtype: int64(isa.TypeByte), ReduceOp: 1, Root: I(0)},
		), "byte reduction"},
		{"allreduce bad op", B(
			lang.Allreduce{SendBuf: V("buf"), RecvBuf: V("buf"), Count: I(2),
				Dtype: 1, ReduceOp: 0},
		), "invalid reduce op"},
		{"allreduce byte dtype", B(
			lang.Allreduce{SendBuf: V("buf"), RecvBuf: V("buf"), Count: I(2),
				Dtype: int64(isa.TypeByte), ReduceOp: 1},
		), "byte reduction"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, terms := runWorld(t, mk(tt.body...), 2)
			if terms[0].Reason != vm.ReasonMPIError {
				t.Fatalf("rank 0: %v", terms[0])
			}
			if !strings.Contains(terms[0].Msg, tt.sub) {
				t.Errorf("msg %q missing %q", terms[0].Msg, tt.sub)
			}
		})
	}
}

func TestBcastFromNonzeroRoot(t *testing.T) {
	prog := compile(t, &lang.Program{Name: "bcast2", Funcs: []*lang.Func{{
		Name: "main",
		Body: B(
			lang.Let("buf", lang.Alloc(I(1))),
			lang.If{Cond: lang.Eq(lang.RankExpr{}, I(2)), Then: B(
				lang.SetAt(V("buf"), I(0), I(777)),
			)},
			lang.Bcast{Buf: V("buf"), Count: I(1), Dtype: 1, Root: I(2)},
			lang.OutInt{E: lang.At(V("buf"), I(0))},
		),
	}}})
	w, terms := runWorld(t, prog, 3)
	for r, term := range terms {
		if term.Reason != vm.ReasonExited {
			t.Fatalf("rank %d: %v", r, term)
		}
		out := w.Machine(r).Output()
		if got := int64(binary.LittleEndian.Uint64(out)); got != 777 {
			t.Errorf("rank %d bcast value = %d", r, got)
		}
	}
}

func TestMixedTagAndCollectiveInterleaving(t *testing.T) {
	// Point-to-point traffic interleaved with collectives must not
	// cross-match (reserved internal tags).
	prog := compile(t, &lang.Program{Name: "mixed", Funcs: []*lang.Func{{
		Name: "main",
		Body: B(
			lang.Let("buf", lang.Alloc(I(1))),
			lang.Let("col", lang.Alloc(I(1))),
			lang.If{Cond: lang.Eq(lang.RankExpr{}, I(0)), Then: B(
				lang.SetAt(V("buf"), I(0), I(5)),
				lang.SetAt(V("col"), I(0), I(100)),
				lang.MPISend{Buf: V("buf"), Count: I(1), Dtype: 1, Dest: I(1), Tag: I(0)},
				lang.Bcast{Buf: V("col"), Count: I(1), Dtype: 1, Root: I(0)},
			), Else: B(
				lang.Bcast{Buf: V("col"), Count: I(1), Dtype: 1, Root: I(0)},
				lang.MPIRecv{Buf: V("buf"), Count: I(1), Dtype: 1, Source: I(0), Tag: I(0)},
				lang.OutInt{E: lang.Add(lang.At(V("buf"), I(0)), lang.At(V("col"), I(0)))},
			)},
		),
	}}})
	w, terms := runWorld(t, prog, 2)
	for r, term := range terms {
		if term.Reason != vm.ReasonExited {
			t.Fatalf("rank %d: %v", r, term)
		}
	}
	out := w.Machine(1).Output()
	if got := int64(binary.LittleEndian.Uint64(out)); got != 105 {
		t.Errorf("mixed result = %d, want 105", got)
	}
}

// TestWorldInterrupt verifies the run-watchdog primitive: Interrupt must
// terminate a spinning rank at its next block boundary AND wake a rank
// blocked inside an MPI wait, tagging every rank with the given
// termination. A second Interrupt must be a harmless no-op.
func TestWorldInterrupt(t *testing.T) {
	// Rank 0 blocks in a recv that will never be satisfied; rank 1 spins in
	// a long compute loop (so the deadlock detector never trips: one rank
	// is always live).
	prog := compile(t, &lang.Program{Name: "stall", Funcs: []*lang.Func{{
		Name: "main",
		Body: B(
			lang.Let("buf", lang.Alloc(I(1))),
			lang.If{
				Cond: lang.Eq(lang.RankExpr{}, I(0)),
				Then: B(lang.MPIRecv{Buf: V("buf"), Count: I(1), Dtype: 1,
					Source: I(1), Tag: I(9)}),
				Else: B(
					lang.Let("s", I(0)),
					lang.For{Var: "i", From: I(0), To: I(1 << 40), Body: B(
						lang.Set("s", Ad(V("s"), I(1))),
					)},
				),
			},
		),
	}}})
	w, err := NewWorld(prog, Config{
		Size: 2,
		Machine: func(int) vm.Config {
			return vm.Config{MaxInstructions: 1 << 40} // never budget-kill
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan []vm.Termination, 1)
	go func() { done <- w.Run() }()
	time.Sleep(5 * time.Millisecond) // let rank 0 block and rank 1 spin
	cause := vm.Termination{Reason: vm.ReasonTimeout, Msg: "wall-clock deadline 5ms exceeded"}
	w.Interrupt(cause)
	w.Interrupt(cause) // idempotent
	var terms []vm.Termination
	select {
	case terms = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("world did not stop after Interrupt")
	}
	for r, term := range terms {
		if term.Reason != vm.ReasonTimeout {
			t.Errorf("rank %d: reason = %v, want timeout (%v)", r, term.Reason, term)
		}
		if !term.Abnormal() {
			t.Errorf("rank %d: timeout not abnormal", r)
		}
	}
}
