package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"chaser/internal/isa"
	"chaser/internal/vm"
)

// env implements vm.MPIEnv for one rank.
type env struct {
	w  *World
	rs *rankState
	// progress counts externally visible effects of the current Call — a
	// message delivered to a peer's mailbox or a match consumed from the
	// local queues. A fork-point pause that interrupts a call with
	// progress > 0 cannot rewind it (re-execution would replay the effects),
	// so abortErr marks the world's pause dirty. Draining the mailbox into
	// pending is NOT progress: pending is part of the snapshot and the
	// re-executed receive rescans it.
	progress int
}

var _ vm.MPIEnv = (*env)(nil)

// Call dispatches one MPI syscall for machine m. Argument registers follow
// the guest ABI documented in package isa.
func (e *env) Call(m *vm.Machine, sys isa.Sys) error {
	e.progress = 0
	switch sys {
	case isa.SysMPIRank:
		m.SetGPR(isa.R0, uint64(e.rs.id))
		return nil
	case isa.SysMPISize:
		m.SetGPR(isa.R0, uint64(e.w.size))
		return nil
	case isa.SysMPISend:
		return e.send(m,
			m.GPR(isa.R1), int64(m.GPR(isa.R2)), isa.Datatype(m.GPR(isa.R3)),
			int(int64(m.GPR(isa.R4))), int(int64(m.GPR(isa.R5))))
	case isa.SysMPIRecv:
		return e.recv(m,
			m.GPR(isa.R1), int64(m.GPR(isa.R2)), isa.Datatype(m.GPR(isa.R3)),
			int(int64(m.GPR(isa.R4))), int(int64(m.GPR(isa.R5))))
	case isa.SysMPIBarrier:
		// The barrier is an inherent synchronization point, so timing it live
		// costs nothing measurable relative to the wait itself.
		var t0 time.Time
		if e.w.obs != nil {
			t0 = time.Now()
		}
		ok := e.w.barrier.wait(e.rs.abortCh)
		if e.w.obs != nil {
			e.w.obs.barrierWait.Observe(time.Since(t0).Seconds())
		}
		if !ok {
			return e.abortErr("MPI_Barrier")
		}
		return nil
	case isa.SysMPIBcast:
		return e.bcast(m,
			m.GPR(isa.R1), int64(m.GPR(isa.R2)), isa.Datatype(m.GPR(isa.R3)),
			int(int64(m.GPR(isa.R4))))
	case isa.SysMPIReduce:
		return e.reduce(m,
			m.GPR(isa.R1), m.GPR(isa.R2), int64(m.GPR(isa.R3)),
			isa.Datatype(m.GPR(isa.R4)), isa.ReduceOp(m.GPR(isa.R5)),
			int(int64(m.GPR(isa.R6))))
	case isa.SysMPIAllreduce:
		return e.allreduce(m,
			m.GPR(isa.R1), m.GPR(isa.R2), int64(m.GPR(isa.R3)),
			isa.Datatype(m.GPR(isa.R4)), isa.ReduceOp(m.GPR(isa.R5)))
	}
	return &vm.MPIRuntimeError{Op: sys.String(), Msg: "unknown MPI operation"}
}

// abortErr builds the MPI error reported by an operation interrupted by a
// world abort, carrying the root cause (peer failure or deadlock) so outcome
// classification can distinguish secondary aborts from local errors.
func (e *env) abortErr(op string) error {
	if e.w.pausing.Load() && e.progress > 0 {
		e.w.pauseDirty.Store(true)
	}
	if t := e.rs.m.Aborted(); t != nil {
		// Adopt the abort's own termination: a peer failure stays an MPI
		// error carrying the root cause, a watchdog kill stays a timeout.
		return &vm.AbortedError{Term: *t}
	}
	return &vm.MPIRuntimeError{Op: op, Msg: "aborted"}
}

// validate checks the common (count, dtype, peer, tag) argument tuple; a
// fault that corrupted any of them is detected here, producing the paper's
// "MPI error detected" termination class.
func (e *env) validate(op string, count int64, dtype isa.Datatype, peer, tag int, internalTag bool) error {
	if count < 0 || count > mailboxCap*4096 {
		return &vm.MPIRuntimeError{Op: op, Msg: fmt.Sprintf("invalid count %d", count)}
	}
	if !dtype.Valid() {
		return &vm.MPIRuntimeError{Op: op, Msg: fmt.Sprintf("invalid datatype %d", int64(dtype))}
	}
	if peer < 0 || peer >= e.w.size {
		return &vm.MPIRuntimeError{Op: op, Msg: fmt.Sprintf("invalid rank %d (world size %d)", peer, e.w.size)}
	}
	if !internalTag && (tag < 0 || tag > MaxTag) {
		return &vm.MPIRuntimeError{Op: op, Msg: fmt.Sprintf("invalid tag %d", tag)}
	}
	return nil
}

func (e *env) send(m *vm.Machine, buf uint64, count int64, dtype isa.Datatype, dest, tag int) error {
	return e.sendTag(m, buf, count, dtype, dest, tag, false)
}

func (e *env) sendTag(m *vm.Machine, buf uint64, count int64, dtype isa.Datatype, dest, tag int, internal bool) error {
	if err := e.validate("MPI_Send", count, dtype, dest, tag, internal); err != nil {
		return err
	}
	if dest == e.rs.id {
		return &vm.MPIRuntimeError{Op: "MPI_Send", Msg: "send to self unsupported"}
	}
	n := uint64(count) * uint64(dtype.Size())
	data, err := m.Mem.ReadBytes(buf, n)
	if err != nil {
		return err // SegFault: the runtime touched a corrupted user buffer
	}
	msg := Message{Src: e.rs.id, Dst: dest, Tag: tag, Dtype: dtype, Count: count, Data: data}
	dst := e.w.ranks[dest]
	// Fast path: eager-buffered delivery without entering the blocked state
	// (keeps the deadlock watchdog free of false positives).
	select {
	case dst.mailbox <- msg:
		e.w.delivered.Add(1)
		e.progress++
		e.w.obs.sent(len(data))
		return nil
	default:
	}
	e.rs.blocked.Store(true)
	defer e.rs.blocked.Store(false)
	var t0 time.Time
	if e.w.obs != nil {
		t0 = time.Now()
	}
	select {
	case dst.mailbox <- msg:
		e.w.delivered.Add(1)
		e.progress++
		if e.w.obs != nil {
			e.w.obs.sendWait.Observe(time.Since(t0).Seconds())
		}
		e.w.obs.sent(len(data))
		return nil
	case <-e.rs.abortCh:
		return e.abortErr("MPI_Send")
	}
}

func (e *env) recv(m *vm.Machine, buf uint64, count int64, dtype isa.Datatype, source, tag int) error {
	return e.recvTag(m, buf, count, dtype, source, tag, false)
}

func (e *env) recvTag(m *vm.Machine, buf uint64, count int64, dtype isa.Datatype, source, tag int, internal bool) error {
	if err := e.validate("MPI_Recv", count, dtype, source, tag, internal); err != nil {
		return err
	}
	msg, err := e.match(source, tag)
	if err != nil {
		return err
	}
	if msg.Count > count || msg.Dtype != dtype {
		return &vm.MPIRuntimeError{
			Op:  "MPI_Recv",
			Msg: fmt.Sprintf("message truncated: got %d×%s, want <= %d×%s", msg.Count, msg.Dtype, count, dtype),
		}
	}
	if err := m.Mem.WriteBytes(buf, msg.Data); err != nil {
		return err
	}
	return nil
}

// match blocks until a message with the given source and tag is available.
func (e *env) match(source, tag int) (Message, error) {
	for i, p := range e.rs.pending {
		if p.Src == source && p.Tag == tag {
			e.rs.pending = append(e.rs.pending[:i], e.rs.pending[i+1:]...)
			e.progress++
			return p, nil
		}
	}
	// Fast path: drain already-delivered messages without entering the
	// blocked state.
	for {
		select {
		case msg := <-e.rs.mailbox:
			if msg.Src == source && msg.Tag == tag {
				e.progress++
				return msg, nil
			}
			e.rs.pending = append(e.rs.pending, msg)
			continue
		default:
		}
		break
	}
	e.rs.blocked.Store(true)
	defer e.rs.blocked.Store(false)
	var t0 time.Time
	if e.w.obs != nil {
		t0 = time.Now()
	}
	for {
		select {
		case msg := <-e.rs.mailbox:
			if msg.Src == source && msg.Tag == tag {
				e.progress++
				if e.w.obs != nil {
					e.w.obs.recvWait.Observe(time.Since(t0).Seconds())
				}
				return msg, nil
			}
			e.rs.pending = append(e.rs.pending, msg)
		case <-e.rs.abortCh:
			return Message{}, e.abortErr("MPI_Recv")
		}
	}
}

func (e *env) bcast(m *vm.Machine, buf uint64, count int64, dtype isa.Datatype, root int) error {
	if err := e.validate("MPI_Bcast", count, dtype, root, 0, true); err != nil {
		return err
	}
	if e.rs.id == root {
		for r := 0; r < e.w.size; r++ {
			if r == root {
				continue
			}
			if err := e.sendTag(m, buf, count, dtype, r, tagBcast, true); err != nil {
				return err
			}
		}
		return nil
	}
	return e.recvTag(m, buf, count, dtype, root, tagBcast, true)
}

func (e *env) reduce(m *vm.Machine, sendBuf, recvBuf uint64, count int64, dtype isa.Datatype, op isa.ReduceOp, root int) error {
	if err := e.validate("MPI_Reduce", count, dtype, root, 0, true); err != nil {
		return err
	}
	if !op.Valid() {
		return &vm.MPIRuntimeError{Op: "MPI_Reduce", Msg: fmt.Sprintf("invalid reduce op %d", int64(op))}
	}
	if dtype == isa.TypeByte {
		return &vm.MPIRuntimeError{Op: "MPI_Reduce", Msg: "byte reduction unsupported"}
	}
	if e.rs.id != root {
		return e.sendTag(m, sendBuf, count, dtype, root, tagReduce, true)
	}
	n := uint64(count) * uint64(dtype.Size())
	acc, err := m.Mem.ReadBytes(sendBuf, n)
	if err != nil {
		return err
	}
	for r := 0; r < e.w.size; r++ {
		if r == root {
			continue
		}
		msg, err := e.match(r, tagReduce)
		if err != nil {
			return err
		}
		if msg.Count != count || msg.Dtype != dtype {
			return &vm.MPIRuntimeError{Op: "MPI_Reduce", Msg: "mismatched contribution"}
		}
		combine(acc, msg.Data, dtype, op)
	}
	return m.Mem.WriteBytes(recvBuf, acc)
}

// allreduce reduces into rank 0 and rebroadcasts the result, so every rank
// receives the combined value.
func (e *env) allreduce(m *vm.Machine, sendBuf, recvBuf uint64, count int64, dtype isa.Datatype, op isa.ReduceOp) error {
	if err := e.validate("MPI_Allreduce", count, dtype, 0, 0, true); err != nil {
		return err
	}
	if !op.Valid() {
		return &vm.MPIRuntimeError{Op: "MPI_Allreduce", Msg: fmt.Sprintf("invalid reduce op %d", int64(op))}
	}
	if dtype == isa.TypeByte {
		return &vm.MPIRuntimeError{Op: "MPI_Allreduce", Msg: "byte reduction unsupported"}
	}
	n := uint64(count) * uint64(dtype.Size())
	if e.rs.id != 0 {
		if err := e.sendTag(m, sendBuf, count, dtype, 0, tagAllreduce, true); err != nil {
			return err
		}
		return e.recvTag(m, recvBuf, count, dtype, 0, tagAllreduce, true)
	}
	acc, err := m.Mem.ReadBytes(sendBuf, n)
	if err != nil {
		return err
	}
	for r := 1; r < e.w.size; r++ {
		msg, err := e.match(r, tagAllreduce)
		if err != nil {
			return err
		}
		if msg.Count != count || msg.Dtype != dtype {
			return &vm.MPIRuntimeError{Op: "MPI_Allreduce", Msg: "mismatched contribution"}
		}
		combine(acc, msg.Data, dtype, op)
	}
	if err := m.Mem.WriteBytes(recvBuf, acc); err != nil {
		return err
	}
	for r := 1; r < e.w.size; r++ {
		if err := e.sendTag(m, recvBuf, count, dtype, r, tagAllreduce, true); err != nil {
			return err
		}
	}
	return nil
}

// combine folds contribution b into accumulator a element-wise.
func combine(a, b []byte, dtype isa.Datatype, op isa.ReduceOp) {
	for off := 0; off+8 <= len(a) && off+8 <= len(b); off += 8 {
		av := binary.LittleEndian.Uint64(a[off:])
		bv := binary.LittleEndian.Uint64(b[off:])
		var out uint64
		if dtype == isa.TypeFloat64 {
			af, bf := math.Float64frombits(av), math.Float64frombits(bv)
			var rf float64
			switch op {
			case isa.ReduceSum:
				rf = af + bf
			case isa.ReduceMax:
				rf = math.Max(af, bf)
			case isa.ReduceMin:
				rf = math.Min(af, bf)
			}
			out = math.Float64bits(rf)
		} else {
			ai, bi := int64(av), int64(bv)
			var ri int64
			switch op {
			case isa.ReduceSum:
				ri = ai + bi
			case isa.ReduceMax:
				ri = max(ai, bi)
			case isa.ReduceMin:
				ri = min(ai, bi)
			}
			out = uint64(ri)
		}
		binary.LittleEndian.PutUint64(a[off:], out)
	}
}
