package apps

import (
	"encoding/binary"
	"math"
	"testing"

	"chaser/internal/core"
	"chaser/internal/lang"
	"chaser/internal/vm"
)

// lcg mirrors the in-guest generator so tests can recompute expected inputs.
type lcg struct{ seed uint64 }

func (l *lcg) next(bound int64) int64 {
	l.seed = l.seed*6364136223846793005 + 1442695040888963407
	return int64(l.seed>>33) % bound
}

func golden(t *testing.T, name string) (*core.RunResult, App) {
	t.Helper()
	app, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Golden(app.Prog, app.WorldSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res, app
}

func ints(t *testing.T, b []byte) []int64 {
	t.Helper()
	if len(b)%8 != 0 {
		t.Fatalf("output len %d", len(b))
	}
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func floats(t *testing.T, b []byte) []float64 {
	t.Helper()
	if len(b)%8 != 0 {
		t.Fatalf("output len %d", len(b))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"bfs", "clamr", "clamr_mpi", "kmeans", "lud", "matvec"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("unknown app accepted")
	}
	all := All()
	if len(all) != len(want) {
		t.Errorf("All() = %d apps", len(all))
	}
	for _, app := range all {
		if app.Prog == nil || app.WorldSize < 1 || len(app.DefaultOps) == 0 {
			t.Errorf("app %q incomplete: %+v", app.Name, app)
		}
	}
}

func TestMatvecMatchesReference(t *testing.T) {
	res, app := golden(t, "matvec")
	for r, term := range res.Terms {
		if term.Reason != vm.ReasonExited || term.Code != 0 {
			t.Fatalf("rank %d: %v", r, term)
		}
	}
	// Recompute b = A*x with the same generator and summation order.
	n := int64(DefaultMatvecN)
	g := &lcg{seed: 20200651}
	x := make([]float64, n)
	a := make([][]float64, n)
	for i := int64(0); i < n; i++ {
		x[i] = float64(g.next(1000)) / 100
		a[i] = make([]float64, n)
		for j := int64(0); j < n; j++ {
			a[i][j] = float64(g.next(1000)) / 100
		}
	}
	want := make([]float64, n)
	for i := int64(0); i < n; i++ {
		acc := 0.0
		for j := int64(0); j < n; j++ {
			acc += a[i][j] * x[j]
		}
		want[i] = acc
	}
	got := floats(t, res.Outputs[0])
	if len(got) != int(n) {
		t.Fatalf("output = %d values, want %d", len(got), n)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("b[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if app.WorldSize != 4 {
		t.Errorf("world size = %d", app.WorldSize)
	}
}

func TestBFSMatchesReference(t *testing.T) {
	res, _ := golden(t, "bfs")
	if res.Terms[0].Reason != vm.ReasonExited {
		t.Fatalf("term = %v", res.Terms[0])
	}
	// Rebuild the graph with the same generator and run a reference BFS.
	n, deg := int64(DefaultBFSNodes), int64(DefaultBFSDegree)
	g := &lcg{seed: 987654321}
	edges := make([][]int64, n)
	for i := int64(0); i < n; i++ {
		edges[i] = make([]int64, deg)
		for k := int64(0); k < deg; k++ {
			edges[i][k] = g.next(n)
		}
	}
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	queue := []int64{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range edges[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	reached := int64(0)
	for _, d := range dist {
		if d != -1 {
			reached++
		}
	}
	got := ints(t, res.Outputs[0])
	if len(got) != int(n)+1 {
		t.Fatalf("output = %d values, want %d", len(got), n+1)
	}
	for i := int64(0); i < n; i++ {
		if got[i] != dist[i] {
			t.Errorf("dist[%d] = %d, want %d", i, got[i], dist[i])
		}
	}
	if got[n] != reached {
		t.Errorf("reached = %d, want %d", got[n], reached)
	}
	if reached < n/2 {
		t.Errorf("graph too disconnected: reached %d of %d", reached, n)
	}
}

func TestKMeansProducesSaneClustering(t *testing.T) {
	res, _ := golden(t, "kmeans")
	if res.Terms[0].Reason != vm.ReasonExited {
		t.Fatalf("term = %v", res.Terms[0])
	}
	out := res.Outputs[0]
	k, np := int64(DefaultKMeansK), int64(DefaultKMeansPoints)
	if int64(len(out)) != (2*k+np)*8 {
		t.Fatalf("output size = %d, want %d", len(out), (2*k+np)*8)
	}
	cents := floats(t, out[:2*k*8])
	for i, c := range cents {
		if c < 0 || c >= 10 {
			t.Errorf("centroid coord %d = %v out of range", i, c)
		}
	}
	assigns := ints(t, out[2*k*8:])
	seen := map[int64]int{}
	for i, a := range assigns {
		if a < 0 || a >= k {
			t.Fatalf("assignment %d = %d out of range", i, a)
		}
		seen[a]++
	}
	if len(seen) < 2 {
		t.Errorf("all points in %d cluster(s)", len(seen))
	}
}

func TestLUDFactorizationResidual(t *testing.T) {
	res, _ := golden(t, "lud")
	if res.Terms[0].Reason != vm.ReasonExited {
		t.Fatalf("term = %v", res.Terms[0])
	}
	vals := floats(t, res.Outputs[0])
	n := int64(DefaultLUDN)
	if int64(len(vals)) != n*n+1 {
		t.Fatalf("output = %d values, want %d", len(vals), n*n+1)
	}
	residual := vals[len(vals)-1]
	if residual < 0 || residual > 1e-9 {
		t.Errorf("reconstruction residual = %v, want tiny", residual)
	}
	// Diagonal of U must be strongly positive (diagonally dominant input).
	for i := int64(0); i < n; i++ {
		if u := vals[i*n+i]; u < 1 {
			t.Errorf("U[%d][%d] = %v, want >= 1", i, i, u)
		}
	}
}

func TestCLAMRConservesMassAndOutputs(t *testing.T) {
	res, _ := golden(t, "clamr")
	if res.Terms[0].Reason != vm.ReasonExited || res.Terms[0].Code != 0 {
		t.Fatalf("term = %v (mass checker must pass on golden run)", res.Terms[0])
	}
	vals := floats(t, res.Outputs[0])
	cells, steps := int64(DefaultCLAMRCells), int64(DefaultCLAMRSteps)
	checkpoints := (steps + clamrCheckpointEvery - 1) / clamrCheckpointEvery
	wantLen := checkpoints*3 + cells
	if int64(len(vals)) != wantLen {
		t.Fatalf("output = %d values, want %d", len(vals), wantLen)
	}
	// Initial mass: n/3 cells at 4.0 (the middle third) and the rest at 1.0.
	high := cells/3*2 - cells/3
	mass0 := float64(high)*4 + float64(cells-high)*1
	// Every checkpoint mass equals mass0 within the checker tolerance.
	for c := int64(0); c < checkpoints; c++ {
		mass := vals[c*3+1]
		if math.Abs(mass-mass0) > 1e-9*mass0 {
			t.Errorf("checkpoint %d mass = %v, want %v", c, mass, mass0)
		}
	}
	// Refinement fires at the dam-break fronts.
	foundRefined := false
	for c := int64(0); c < checkpoints; c++ {
		if nref := int64(math.Float64bits(vals[c*3+2])); nref != 0 {
			foundRefined = true
		}
	}
	if !foundRefined {
		t.Error("no refined cells at any checkpoint (AMR never triggered)")
	}
	// Final heights positive and summing to mass0.
	var sum float64
	for _, h := range vals[checkpoints*3:] {
		if h <= 0 {
			t.Errorf("non-positive height %v", h)
		}
		sum += h
	}
	if math.Abs(sum-mass0) > 1e-9*mass0 {
		t.Errorf("final mass = %v, want %v", sum, mass0)
	}
}

func TestCLAMRDetectsMassViolation(t *testing.T) {
	// Corrupting heights by a large amount must trip the in-guest checker
	// (ReasonAssert = "detected" in the paper's classification).
	app, err := ByName("clamr")
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(core.RunConfig{
		Prog: app.Prog,
		Spec: &core.Spec{
			Target: "clamr",
			Ops:    app.DefaultOps,
			Cond:   core.Deterministic{N: 500},
			Bits:   1,
			Seed:   3, // chosen so the flip lands in the exponent
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Injected() {
		t.Fatal("no injection")
	}
	// A high-bit FP flip typically produces assert, signal, or SDC — never
	// silently hang. Accept any abnormal or exited outcome but require the
	// run to have completed.
	if res.Terms[0].Reason == vm.ReasonBudget {
		t.Errorf("run hung: %v", res.Terms[0])
	}
}

func TestAppInstructionBudgets(t *testing.T) {
	// Campaigns run thousands of executions; keep each app within a few
	// million instructions per rank.
	const budget = 3_000_000
	for _, app := range All() {
		res, err := core.Golden(app.Prog, app.WorldSize, budget)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		for r, term := range res.Terms {
			if term.Reason != vm.ReasonExited {
				t.Errorf("%s rank %d: %v", app.Name, r, term)
			}
		}
		var total uint64
		for _, c := range res.Counters {
			total += c.Instructions
		}
		t.Logf("%s: %d instructions total across %d rank(s)", app.Name, total, app.WorldSize)
		if total > budget {
			t.Errorf("%s uses %d instructions, over budget %d", app.Name, total, budget)
		}
	}
}

func TestAppsExecuteTheirTargetOps(t *testing.T) {
	// Each app must actually execute its default injection targets, or
	// campaigns would never fire.
	for _, app := range All() {
		res, err := core.Golden(app.Prog, app.WorldSize, 0)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		rank := app.TargetRank
		if rank < 0 {
			rank = 0
		}
		for _, op := range app.DefaultOps {
			if res.Counters[rank].PerOp[op] == 0 {
				t.Errorf("%s rank %d never executes %v", app.Name, rank, op)
			}
		}
	}
}

func TestLCGHelperMatchesGuest(t *testing.T) {
	// Sanity: the Go-side lcg replica matches a minimal guest program using
	// lcgNext.
	prog, err := lang.Compile(&lang.Program{Name: "lcgtest", Funcs: []*lang.Func{{
		Name: "main",
		Body: cat(
			lang.Block(lang.Let("seed", lang.I(20200651)), lang.Let("r", lang.I(0))),
			lcgNext("seed", "r", 1000),
			lang.Block(lang.OutInt{E: lang.V("r")}),
			lcgNext("seed", "r", 1000),
			lang.Block(lang.OutInt{E: lang.V("r")}),
		),
	}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Golden(prog, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := ints(t, res.Outputs[0])
	g := &lcg{seed: 20200651}
	if got[0] != g.next(1000) || got[1] != g.next(1000) {
		t.Errorf("guest lcg %v diverges from reference", got)
	}
}

func TestStdlibFunctions(t *testing.T) {
	I, F, V, B := lang.I, lang.F, lang.V, lang.Block
	prog, err := lang.Compile(&lang.Program{
		Name: "stdlib",
		Funcs: append([]*lang.Func{
			{
				Name: "main",
				Body: B(
					lang.OutFloat{E: lang.Call("sqrt", F(2))},
					lang.OutFloat{E: lang.Call("sqrt", F(0))},
					lang.OutFloat{E: lang.Call("sqrt", F(144))},
					lang.OutFloat{E: lang.Call("fabs", F(-3.5))},
					lang.OutFloat{E: lang.Call("fabs", F(3.5))},
					lang.OutFloat{E: lang.Call("fmin", F(2), F(7))},
					lang.OutFloat{E: lang.Call("fmax", F(2), F(7))},
				),
			},
			SqrtFunc(), AbsFunc(),
		}, MinMaxFuncs()...),
	})
	_ = I
	_ = V
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Golden(prog, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := floats(t, res.Outputs[0])
	want := []float64{math.Sqrt(2), 0, 12, 3.5, 3.5, 2, 7}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("stdlib[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
