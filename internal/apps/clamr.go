package apps

import "chaser/internal/lang"

// Default CLAMR parameters (a scaled-down "-n 48 -t 24 -i 8" configuration).
const (
	DefaultCLAMRCells = 48
	DefaultCLAMRSteps = 24
	// clamrCheckpointEvery is the checkpoint frequency in steps.
	clamrCheckpointEvery = 8
)

// CLAMRProgram builds a cell-based adaptive-mesh-refinement shallow-water
// mini-app modelled on the DOE CLAMR proxy application:
//
//   - state: water height h and momentum hu on a periodic 1-D mesh;
//   - initialization: a dam-break column in the middle of the domain;
//   - time stepping: a conservative Lax-Friedrichs scheme with a CFL-derived
//     time step (the wave speed uses an in-guest Newton square root);
//   - refinement: cells whose height gradient exceeds a threshold are
//     marked refined each step and receive a conservative sub-cell
//     correction exchange, modelling the extra resolution AMR grants steep
//     regions; the refined-cell count is part of the checkpoint output;
//   - correctness checker: CLAMR's domain-specific mass-conservation
//     criterion — the total mass must match the initial mass to a relative
//     tolerance at every checkpoint and at completion, asserted in-guest.
//     A violated assertion terminates the run, which campaigns classify as
//     "detected" (paper Section IV-B);
//   - output: checkpoint records (step, mass, refined count) and the final
//     height field, compared bit-wise against the golden run for SDC.
func CLAMRProgram(cells, steps int64) *lang.Program {
	I, F, V, B := lang.I, lang.F, lang.V, lang.Block
	// mod n for periodic neighbors.
	wrap := func(e lang.Expr) lang.Expr {
		return lang.Mod(lang.Add(e, V("n")), V("n"))
	}

	sqrtFn := SqrtFunc()

	main := &lang.Func{
		Name: "main",
		Body: B(
			lang.Let("n", I(cells)),
			lang.Let("steps", I(steps)),
			lang.Let("h", lang.Alloc(V("n"))),
			lang.Let("hu", lang.Alloc(V("n"))),
			lang.Let("hn", lang.Alloc(V("n"))),
			lang.Let("hun", lang.Alloc(V("n"))),
			lang.Let("refined", lang.Alloc(V("n"))),
			lang.Let("g", F(9.8)),
			lang.Let("dx", F(1.0)),

			// Dam break: a tall column in the middle third of the domain.
			lang.For{Var: "i", From: I(0), To: V("n"), Body: B(
				lang.Let("hv", F(1.0)),
				lang.If{
					Cond: lang.Bin{Op: lang.OpAnd,
						L: lang.Ge(V("i"), lang.Div(V("n"), I(3))),
						R: lang.Lt(V("i"), lang.Mul(lang.Div(V("n"), I(3)), I(2)))},
					Then: B(lang.Set("hv", F(4.0))),
				},
				lang.SetAt(V("h"), V("i"), V("hv")),
				lang.SetAt(V("hu"), V("i"), F(0)),
			)},

			// Initial mass, momentum, and the CFL time step from the
			// maximum wave speed.
			lang.Let("mass0", F(0)),
			lang.Let("mom0", F(0)),
			lang.Let("hmax", F(0)),
			lang.For{Var: "i", From: I(0), To: V("n"), Body: B(
				lang.Set("mass0", lang.Add(V("mass0"), lang.Mul(lang.AtF(V("h"), V("i")), V("dx")))),
				lang.Set("mom0", lang.Add(V("mom0"), lang.Mul(lang.AtF(V("hu"), V("i")), V("dx")))),
				lang.If{Cond: lang.Gt(lang.AtF(V("h"), V("i")), V("hmax")), Then: B(
					lang.Set("hmax", lang.AtF(V("h"), V("i"))),
				)},
			)},
			lang.Let("cmax", lang.Call("sqrt", lang.Mul(V("g"), V("hmax")))),
			lang.Let("dt", lang.Div(lang.Mul(F(0.4), V("dx")), lang.Add(V("cmax"), F(0.001)))),
			lang.Let("lam", lang.Div(V("dt"), lang.Mul(F(2.0), V("dx")))),

			lang.For{Var: "t", From: I(0), To: V("steps"), Body: B(
				// Lax-Friedrichs update on the base mesh (periodic).
				lang.For{Var: "i", From: I(0), To: V("n"), Body: B(
					lang.Let("im", wrap(lang.Sub(V("i"), I(1)))),
					lang.Let("ip", wrap(lang.Add(V("i"), I(1)))),
					lang.Let("hm", lang.AtF(V("h"), V("im"))),
					lang.Let("hp", lang.AtF(V("h"), V("ip"))),
					lang.Let("qm", lang.AtF(V("hu"), V("im"))),
					lang.Let("qp", lang.AtF(V("hu"), V("ip"))),
					// Momentum flux F = hu^2/h + g*h^2/2 at the neighbors.
					lang.Let("fm", lang.Add(lang.Div(lang.Mul(V("qm"), V("qm")), V("hm")),
						lang.Mul(lang.Mul(F(0.5), V("g")), lang.Mul(V("hm"), V("hm"))))),
					lang.Let("fp", lang.Add(lang.Div(lang.Mul(V("qp"), V("qp")), V("hp")),
						lang.Mul(lang.Mul(F(0.5), V("g")), lang.Mul(V("hp"), V("hp"))))),
					lang.SetAt(V("hn"), V("i"),
						lang.Sub(lang.Mul(F(0.5), lang.Add(V("hm"), V("hp"))),
							lang.Mul(V("lam"), lang.Sub(V("qp"), V("qm"))))),
					lang.SetAt(V("hun"), V("i"),
						lang.Sub(lang.Mul(F(0.5), lang.Add(V("qm"), V("qp"))),
							lang.Mul(V("lam"), lang.Sub(V("fp"), V("fm"))))),
				)},
				// Regrid: mark cells whose height gradient is steep.
				lang.Let("nref", I(0)),
				lang.For{Var: "i", From: I(0), To: V("n"), Body: B(
					lang.Let("ip", wrap(lang.Add(V("i"), I(1)))),
					lang.Let("grad", lang.Sub(lang.AtF(V("hn"), V("ip")), lang.AtF(V("hn"), V("i")))),
					lang.If{Cond: lang.Lt(V("grad"), F(0)), Then: B(
						lang.Set("grad", lang.Neg{E: V("grad")}),
					)},
					lang.If{
						Cond: lang.Gt(V("grad"), F(0.15)),
						Then: B(
							lang.SetAt(V("refined"), V("i"), I(1)),
							lang.Set("nref", lang.Add(V("nref"), I(1))),
						),
						Else: B(lang.SetAt(V("refined"), V("i"), I(0))),
					},
				)},
				// Refined cells exchange a conservative sub-cell correction
				// with their right neighbor (total mass unchanged).
				lang.For{Var: "i", From: I(0), To: V("n"), Body: B(
					lang.If{Cond: lang.Eq(lang.At(V("refined"), V("i")), I(1)), Then: B(
						lang.Let("ip", wrap(lang.Add(V("i"), I(1)))),
						lang.Let("corr", lang.Mul(F(0.05),
							lang.Sub(lang.AtF(V("hn"), V("ip")), lang.AtF(V("hn"), V("i"))))),
						lang.SetAt(V("hn"), V("i"), lang.Add(lang.AtF(V("hn"), V("i")), V("corr"))),
						lang.SetAt(V("hn"), V("ip"), lang.Sub(lang.AtF(V("hn"), V("ip")), V("corr"))),
					)},
				)},
				// Commit the step.
				lang.For{Var: "i", From: I(0), To: V("n"), Body: B(
					lang.SetAt(V("h"), V("i"), lang.AtF(V("hn"), V("i"))),
					lang.SetAt(V("hu"), V("i"), lang.AtF(V("hun"), V("i"))),
				)},
				// Checkpoint with the conservation correctness checks
				// (CLAMR verifies the conservation laws of mass and
				// momentum).
				lang.If{Cond: lang.Eq(lang.Mod(V("t"), I(clamrCheckpointEvery)), I(0)), Then: B(
					lang.Let("mass", F(0)),
					lang.Let("mom", F(0)),
					lang.For{Var: "i", From: I(0), To: V("n"), Body: B(
						lang.Set("mass", lang.Add(V("mass"), lang.Mul(lang.AtF(V("h"), V("i")), V("dx")))),
						lang.Set("mom", lang.Add(V("mom"), lang.Mul(lang.AtF(V("hu"), V("i")), V("dx")))),
					)},
					lang.Let("err", lang.Sub(V("mass"), V("mass0"))),
					lang.If{Cond: lang.Lt(V("err"), F(0)), Then: B(lang.Set("err", lang.Neg{E: V("err")}))},
					lang.Assert{Cond: lang.Lt(V("err"), lang.Mul(F(1e-11), V("mass0"))), Code: 200},
					lang.Let("merr", lang.Sub(V("mom"), V("mom0"))),
					lang.If{Cond: lang.Lt(V("merr"), F(0)), Then: B(lang.Set("merr", lang.Neg{E: V("merr")}))},
					lang.Assert{Cond: lang.Lt(V("merr"), lang.Mul(F(1e-11), V("mass0"))), Code: 202},
					lang.OutInt{E: V("t")},
					lang.OutFloat{E: V("mass")},
					lang.OutInt{E: V("nref")},
				)},
			)},

			// Final conservation checks and result output.
			lang.Let("massF", F(0)),
			lang.Let("momF", F(0)),
			lang.For{Var: "i", From: I(0), To: V("n"), Body: B(
				lang.Set("massF", lang.Add(V("massF"), lang.Mul(lang.AtF(V("h"), V("i")), V("dx")))),
				lang.Set("momF", lang.Add(V("momF"), lang.Mul(lang.AtF(V("hu"), V("i")), V("dx")))),
			)},
			lang.Let("errF", lang.Sub(V("massF"), V("mass0"))),
			lang.If{Cond: lang.Lt(V("errF"), F(0)), Then: B(lang.Set("errF", lang.Neg{E: V("errF")}))},
			lang.Assert{Cond: lang.Lt(V("errF"), lang.Mul(F(1e-11), V("mass0"))), Code: 201},
			lang.Let("merrF", lang.Sub(V("momF"), V("mom0"))),
			lang.If{Cond: lang.Lt(V("merrF"), F(0)), Then: B(lang.Set("merrF", lang.Neg{E: V("merrF")}))},
			lang.Assert{Cond: lang.Lt(V("merrF"), lang.Mul(F(1e-11), V("mass0"))), Code: 203},
			lang.For{Var: "i", From: I(0), To: V("n"), Body: B(
				lang.OutFloat{E: lang.AtF(V("h"), V("i"))},
			)},
		),
	}

	return &lang.Program{Name: "clamr", Funcs: []*lang.Func{main, sqrtFn}}
}
