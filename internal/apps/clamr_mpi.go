package apps

import (
	"chaser/internal/isa"
	"chaser/internal/lang"
)

// Default parallel-CLAMR parameters: 4 ranks each owning 16 cells.
const (
	DefaultCLAMRMPIRanks = 4
	DefaultCLAMRMPICells = 64 // total, divided evenly across ranks
	DefaultCLAMRMPISteps = 24
)

// CLAMRMPIProgram builds the MPI-parallel variant of the CLAMR mini-app:
// the periodic 1-D shallow-water mesh is block-decomposed across the ranks
// of the world, each step exchanges one-cell halos with both neighbours
// (ring topology), and the mass/momentum conservation checker runs over
// MPI_Allreduce-combined global sums — so the checker itself exercises the
// collective path and a fault anywhere shows up on every rank.
//
// This is the configuration the paper's cross-rank propagation study needs:
// an injected fault contaminates a halo cell, rides an MPI message to the
// neighbour rank through the TaintHub, and keeps propagating there.
//
// totalCells must be divisible by the world size; each rank asserts this.
func CLAMRMPIProgram(totalCells, steps int64) *lang.Program {
	I, F, V, B := lang.I, lang.F, lang.V, lang.Block
	dtF := int64(isa.TypeFloat64)
	const (
		tagLeft  = 11 // message travelling leftwards (my left edge -> left neighbour)
		tagRight = 12 // message travelling rightwards
	)
	// Local arrays hold n local cells in slots 1..n with ghosts at 0 and n+1.
	ghost := func(arr string, idx lang.Expr) lang.Expr { return lang.AtF(V(arr), idx) }

	sqrtFn := SqrtFunc()

	// exchange sends this rank's edge cells to both neighbours and fills
	// the ghost cells from their replies. Send-first/receive-second works
	// because sends are eagerly buffered by the runtime.
	exchange := func(arr string) []lang.Stmt {
		return B(
			// Left edge (slot 1) travels to the left neighbour's right ghost.
			lang.MPISend{Buf: lang.Add(V(arr), I(8)), Count: I(1), Dtype: dtF,
				Dest: V("left"), Tag: I(tagLeft)},
			// Right edge (slot n) travels to the right neighbour's left ghost.
			lang.MPISend{Buf: lang.Add(V(arr), lang.Mul(V("n"), I(8))), Count: I(1), Dtype: dtF,
				Dest: V("right"), Tag: I(tagRight)},
			// Right ghost (slot n+1) comes from the right neighbour's left edge.
			lang.MPIRecv{Buf: lang.Add(V(arr), lang.Mul(lang.Add(V("n"), I(1)), I(8))),
				Count: I(1), Dtype: dtF, Source: V("right"), Tag: I(tagLeft)},
			// Left ghost (slot 0) comes from the left neighbour's right edge.
			lang.MPIRecv{Buf: V(arr), Count: I(1), Dtype: dtF,
				Source: V("left"), Tag: I(tagRight)},
		)
	}

	// localSums computes this rank's mass and momentum into the two-element
	// scratch array "loc".
	localSums := B(
		lang.SetAt(V("loc"), I(0), F(0)),
		lang.SetAt(V("loc"), I(1), F(0)),
		lang.For{Var: "i", From: I(1), To: lang.Add(V("n"), I(1)), Body: B(
			lang.SetAt(V("loc"), I(0), lang.Add(lang.AtF(V("loc"), I(0)),
				lang.Mul(ghost("h", V("i")), V("dx")))),
			lang.SetAt(V("loc"), I(1), lang.Add(lang.AtF(V("loc"), I(1)),
				lang.Mul(ghost("hu", V("i")), V("dx")))),
		)},
	)

	main := &lang.Func{
		Name: "main",
		Body: cat(
			B(
				lang.Let("total", I(totalCells)),
				lang.Let("steps", I(steps)),
				lang.Let("rank", lang.RankExpr{}),
				lang.Let("size", lang.SizeExpr{}),
				lang.Assert{Cond: lang.Eq(lang.Mod(V("total"), V("size")), I(0)), Code: 210},
				lang.Let("n", lang.Div(V("total"), V("size"))),
				lang.Let("left", lang.Mod(lang.Add(lang.Sub(V("rank"), I(1)), V("size")), V("size"))),
				lang.Let("right", lang.Mod(lang.Add(V("rank"), I(1)), V("size"))),
				// n locals + 2 ghosts per field.
				lang.Let("h", lang.Alloc(lang.Add(V("n"), I(2)))),
				lang.Let("hu", lang.Alloc(lang.Add(V("n"), I(2)))),
				lang.Let("hn", lang.Alloc(lang.Add(V("n"), I(2)))),
				lang.Let("hun", lang.Alloc(lang.Add(V("n"), I(2)))),
				lang.Let("loc", lang.Alloc(I(2))),
				lang.Let("glob", lang.Alloc(I(2))),
				lang.Let("g", F(9.8)),
				lang.Let("dx", F(1.0)),

				// Dam break over the global domain: global cells in
				// [total/3, 2*total/3) start at height 4.
				lang.For{Var: "i", From: I(1), To: lang.Add(V("n"), I(1)), Body: B(
					lang.Let("gi", lang.Add(lang.Mul(V("rank"), V("n")), lang.Sub(V("i"), I(1)))),
					lang.Let("hv", F(1.0)),
					lang.If{
						Cond: lang.Bin{Op: lang.OpAnd,
							L: lang.Ge(V("gi"), lang.Div(V("total"), I(3))),
							R: lang.Lt(V("gi"), lang.Mul(lang.Div(V("total"), I(3)), I(2)))},
						Then: B(lang.Set("hv", F(4.0))),
					},
					lang.SetAt(V("h"), V("i"), V("hv")),
					lang.SetAt(V("hu"), V("i"), F(0)),
				)},
			),
			// Global initial mass/momentum via allreduce.
			localSums,
			B(
				lang.Allreduce{SendBuf: V("loc"), RecvBuf: V("glob"), Count: I(2),
					Dtype: dtF, ReduceOp: int64(isa.ReduceSum)},
				lang.Let("mass0", lang.AtF(V("glob"), I(0))),
				lang.Let("mom0", lang.AtF(V("glob"), I(1))),
				// CFL time step from the global maximum height (4.0 by
				// construction, but computed honestly via allreduce-max).
				lang.SetAt(V("loc"), I(0), F(0)),
				lang.For{Var: "i", From: I(1), To: lang.Add(V("n"), I(1)), Body: B(
					lang.If{Cond: lang.Gt(ghost("h", V("i")), lang.AtF(V("loc"), I(0))), Then: B(
						lang.SetAt(V("loc"), I(0), ghost("h", V("i"))),
					)},
				)},
				lang.Allreduce{SendBuf: V("loc"), RecvBuf: V("glob"), Count: I(1),
					Dtype: dtF, ReduceOp: int64(isa.ReduceMax)},
				lang.Let("cmax", lang.Call("sqrt", lang.Mul(V("g"), lang.AtF(V("glob"), I(0))))),
				lang.Let("dt", lang.Div(lang.Mul(F(0.4), V("dx")), lang.Add(V("cmax"), F(0.001)))),
				lang.Let("lam", lang.Div(V("dt"), lang.Mul(F(2.0), V("dx")))),

				lang.For{Var: "t", From: I(0), To: V("steps"), Body: cat(
					exchange("h"),
					exchange("hu"),
					B(
						// Lax-Friedrichs over local cells using ghosts.
						lang.For{Var: "i", From: I(1), To: lang.Add(V("n"), I(1)), Body: B(
							lang.Let("hm", ghost("h", lang.Sub(V("i"), I(1)))),
							lang.Let("hp", ghost("h", lang.Add(V("i"), I(1)))),
							lang.Let("qm", ghost("hu", lang.Sub(V("i"), I(1)))),
							lang.Let("qp", ghost("hu", lang.Add(V("i"), I(1)))),
							lang.Let("fm", lang.Add(lang.Div(lang.Mul(V("qm"), V("qm")), V("hm")),
								lang.Mul(lang.Mul(F(0.5), V("g")), lang.Mul(V("hm"), V("hm"))))),
							lang.Let("fp", lang.Add(lang.Div(lang.Mul(V("qp"), V("qp")), V("hp")),
								lang.Mul(lang.Mul(F(0.5), V("g")), lang.Mul(V("hp"), V("hp"))))),
							lang.SetAt(V("hn"), V("i"),
								lang.Sub(lang.Mul(F(0.5), lang.Add(V("hm"), V("hp"))),
									lang.Mul(V("lam"), lang.Sub(V("qp"), V("qm"))))),
							lang.SetAt(V("hun"), V("i"),
								lang.Sub(lang.Mul(F(0.5), lang.Add(V("qm"), V("qp"))),
									lang.Mul(V("lam"), lang.Sub(V("fp"), V("fm"))))),
						)},
						// Commit.
						lang.For{Var: "i", From: I(1), To: lang.Add(V("n"), I(1)), Body: B(
							lang.SetAt(V("h"), V("i"), lang.AtF(V("hn"), V("i"))),
							lang.SetAt(V("hu"), V("i"), lang.AtF(V("hun"), V("i"))),
						)},
					),
					// Checkpoint: global conservation via allreduce.
					B(lang.If{Cond: lang.Eq(lang.Mod(V("t"), I(clamrCheckpointEvery)), I(0)), Then: cat(
						localSums,
						B(
							lang.Allreduce{SendBuf: V("loc"), RecvBuf: V("glob"), Count: I(2),
								Dtype: dtF, ReduceOp: int64(isa.ReduceSum)},
							lang.Let("err", lang.Sub(lang.AtF(V("glob"), I(0)), V("mass0"))),
							lang.If{Cond: lang.Lt(V("err"), F(0)), Then: B(lang.Set("err", lang.Neg{E: V("err")}))},
							lang.Assert{Cond: lang.Lt(V("err"), lang.Mul(F(1e-11), V("mass0"))), Code: 211},
							lang.Let("merr", lang.Sub(lang.AtF(V("glob"), I(1)), V("mom0"))),
							lang.If{Cond: lang.Lt(V("merr"), F(0)), Then: B(lang.Set("merr", lang.Neg{E: V("merr")}))},
							lang.Assert{Cond: lang.Lt(V("merr"), lang.Mul(F(1e-11), V("mass0"))), Code: 212},
						),
					)}),
				)},

				// Output the local field for SDC comparison.
				lang.For{Var: "i", From: I(1), To: lang.Add(V("n"), I(1)), Body: B(
					lang.OutFloat{E: ghost("h", V("i"))},
				)},
			),
		),
	}

	return &lang.Program{Name: "clamr_mpi", Funcs: []*lang.Func{main, sqrtFn}}
}
