package apps

import (
	"chaser/internal/isa"
	"chaser/internal/lang"
)

// DefaultMatvecN is the default matrix dimension (divisible by the number of
// worker ranks, world size - 1).
const DefaultMatvecN = 24

// MatvecProgram builds the MPI matrix-vector product b = A*x after the
// classic master/slave matvec_mpi.c the paper evaluates:
//
//   - rank 0 (master) generates A (n×n) and x, broadcasts x, and sends each
//     worker a work header [start, rows] followed by that block of rows;
//   - workers trust the header: they allocate from it, receive the block,
//     compute their partial products, and send them back;
//   - the master assembles b and writes it to the output file.
//
// The unvalidated header is the realistic control-metadata path of
// master/worker codes: a fault that corrupts start/rows in the master's
// memory propagates to a worker and can kill it there (a huge allocation,
// a truncated receive), producing the paper's rare "slave node failed"
// termination class.
//
// n must be divisible by (world size - 1); the master asserts this.
func MatvecProgram(n int64) *lang.Program {
	I, F, V, B := lang.I, lang.F, lang.V, lang.Block
	const (
		tagHdr    = 1
		tagRows   = 2
		tagResult = 3
	)
	dtI := int64(isa.TypeInt64)
	dtF := int64(isa.TypeFloat64)

	return &lang.Program{
		Name: "matvec",
		Funcs: []*lang.Func{{
			Name: "main",
			Body: B(
				lang.Let("n", I(n)),
				lang.Let("rank", lang.RankExpr{}),
				lang.Let("size", lang.SizeExpr{}),
				lang.Let("workers", lang.Sub(V("size"), I(1))),
				lang.Let("x", lang.Alloc(V("n"))),

				lang.If{
					Cond: lang.Eq(V("rank"), I(0)),
					Then: B(
						// The master requires at least one worker and an even
						// row split.
						lang.Assert{Cond: lang.Gt(V("workers"), I(0)), Code: 100},
						lang.Assert{Cond: lang.Eq(lang.Mod(V("n"), V("workers")), I(0)), Code: 101},
						lang.Let("rows", lang.Div(V("n"), V("workers"))),
						lang.Let("a", lang.Alloc(lang.Mul(V("n"), V("n")))),
						lang.Let("b", lang.Alloc(V("n"))),
						lang.Let("hdr", lang.Alloc(I(2))),
						lang.Let("seed", I(20200651)),
						lang.Let("r", I(0)),
						// Generate A and x deterministically.
						lang.For{Var: "i", From: I(0), To: V("n"), Body: cat(
							lcgNext("seed", "r", 1000),
							B(lang.SetAt(V("x"), V("i"),
								lang.Div(lang.ToFloat(V("r")), F(100)))),
							B(lang.For{Var: "j", From: I(0), To: V("n"), Body: cat(
								lcgNext("seed", "r", 1000),
								B(lang.SetAt(V("a"), lang.Add(lang.Mul(V("i"), V("n")), V("j")),
									lang.Div(lang.ToFloat(V("r")), F(100)))),
							)}),
						)},
						// Broadcast x, then send each worker its header and
						// row block.
						lang.Bcast{Buf: V("x"), Count: V("n"), Dtype: dtF, Root: I(0)},
						lang.For{Var: "w", From: I(1), To: V("size"), Body: B(
							lang.Let("start", lang.Mul(lang.Sub(V("w"), I(1)), V("rows"))),
							lang.SetAt(V("hdr"), I(0), V("start")),
							lang.SetAt(V("hdr"), I(1), V("rows")),
							lang.MPISend{Buf: V("hdr"), Count: I(2), Dtype: dtI,
								Dest: V("w"), Tag: I(tagHdr)},
							lang.MPISend{
								Buf:   lang.Add(V("a"), lang.Mul(lang.Mul(V("start"), V("n")), I(8))),
								Count: lang.Mul(V("rows"), V("n")), Dtype: dtF,
								Dest: V("w"), Tag: I(tagRows),
							},
						)},
						// Collect partial results in worker order.
						lang.For{Var: "w", From: I(1), To: V("size"), Body: B(
							lang.Let("off", lang.Mul(lang.Sub(V("w"), I(1)), V("rows"))),
							lang.MPIRecv{
								Buf:   lang.Add(V("b"), lang.Mul(V("off"), I(8))),
								Count: V("rows"), Dtype: dtF,
								Source: V("w"), Tag: I(tagResult),
							},
						)},
						// Output b for SDC comparison.
						lang.For{Var: "i", From: I(0), To: V("n"), Body: B(
							lang.OutFloat{E: lang.AtF(V("b"), V("i"))},
						)},
					),
					Else: B(
						lang.Bcast{Buf: V("x"), Count: V("n"), Dtype: dtF, Root: I(0)},
						// Receive and trust the work header.
						lang.Let("hdr", lang.Alloc(I(2))),
						lang.MPIRecv{Buf: V("hdr"), Count: I(2), Dtype: dtI,
							Source: I(0), Tag: I(tagHdr)},
						lang.Let("myrows", lang.At(V("hdr"), I(1))),
						lang.Let("block", lang.Alloc(lang.Mul(V("myrows"), V("n")))),
						lang.Let("part", lang.Alloc(V("myrows"))),
						lang.MPIRecv{Buf: V("block"), Count: lang.Mul(V("myrows"), V("n")),
							Dtype: dtF, Source: I(0), Tag: I(tagRows)},
						lang.For{Var: "i", From: I(0), To: V("myrows"), Body: B(
							lang.Let("acc", F(0)),
							lang.For{Var: "j", From: I(0), To: V("n"), Body: B(
								lang.Set("acc", lang.Add(V("acc"), lang.Mul(
									lang.AtF(V("block"), lang.Add(lang.Mul(V("i"), V("n")), V("j"))),
									lang.AtF(V("x"), V("j")),
								))),
							)},
							lang.SetAt(V("part"), V("i"), V("acc")),
						)},
						lang.MPISend{Buf: V("part"), Count: V("myrows"), Dtype: dtF,
							Dest: I(0), Tag: I(tagResult)},
					),
				},
			),
		}},
	}
}
