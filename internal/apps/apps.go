// Package apps contains the guest applications used in the paper's
// evaluation, authored in the internal/lang mini-language and compiled to
// the guest ISA:
//
//   - matvec: the MPI matrix-vector product b = A*x (master/slave, 4 ranks);
//     the paper injects faults into the master's mov instructions.
//   - bfs: Rodinia-style breadth-first search (cmp-heavy).
//   - kmeans: Rodinia-style k-means clustering (floating-point kernel).
//   - lud: Rodinia-style LU decomposition (floating point + cmp).
//   - clamr: a cell-based AMR shallow-water mini-app with a mass-conservation
//     correctness checker, checkpoints, and result output.
//
// Every app writes its result to the guest output file so campaigns can
// classify silent data corruption by bit-wise comparison with the golden
// run, exactly as the paper does.
package apps

import (
	"fmt"
	"sort"

	"chaser/internal/isa"
	"chaser/internal/lang"
)

// App is a runnable guest workload plus its campaign defaults.
type App struct {
	Name        string
	Description string
	Prog        *isa.Program
	// WorldSize is the number of MPI ranks the app expects (1 = serial).
	WorldSize int
	// DefaultOps are the instruction opcodes the paper targets for this app.
	DefaultOps []isa.Op
	// TargetRank is the rank the paper injects into (-1 = any).
	TargetRank int
}

var registry = map[string]func() App{
	"matvec": func() App {
		return App{
			Name:        "matvec",
			Description: "MPI matrix-vector product b=A*x, master/slave over 4 ranks",
			Prog:        lang.MustCompile(MatvecProgram(DefaultMatvecN)),
			WorldSize:   4,
			// The paper targets x86 "mov", which covers register moves,
			// integer loads/stores, and SSE moves (movsd) alike; the
			// equivalent data-movement class in this RISC-style guest ISA
			// is {mov, ld, st, fld, fst}.
			DefaultOps: []isa.Op{isa.OpMov, isa.OpLd, isa.OpSt, isa.OpFLd, isa.OpFSt},
			TargetRank: 0,
		}
	},
	"bfs": func() App {
		return App{
			Name:        "bfs",
			Description: "breadth-first search over a synthetic graph (cmp faults)",
			Prog:        lang.MustCompile(BFSProgram(DefaultBFSNodes, DefaultBFSDegree)),
			WorldSize:   1,
			// cmp is bfs's distinctive target; the mov class (ld/st) is
			// included per the paper's common Rodinia methodology of
			// injecting into "the operands (fadd, fmul and mov)".
			DefaultOps: []isa.Op{isa.OpCmp, isa.OpMov, isa.OpLd, isa.OpSt},
			TargetRank: -1,
		}
	},
	"kmeans": func() App {
		return App{
			Name:        "kmeans",
			Description: "k-means clustering, floating-point distance kernel",
			Prog:        lang.MustCompile(KMeansProgram(DefaultKMeansPoints, DefaultKMeansK, DefaultKMeansIters)),
			WorldSize:   1,
			DefaultOps:  []isa.Op{isa.OpFAdd, isa.OpFMul, isa.OpFSub, isa.OpLd, isa.OpSt},
			TargetRank:  -1,
		}
	},
	"lud": func() App {
		return App{
			Name:        "lud",
			Description: "LU decomposition, combined floating-point and cmp faults",
			Prog:        lang.MustCompile(LUDProgram(DefaultLUDN)),
			WorldSize:   1,
			DefaultOps:  []isa.Op{isa.OpFAdd, isa.OpFMul, isa.OpFSub, isa.OpFDiv, isa.OpCmp, isa.OpLd, isa.OpSt},
			TargetRank:  -1,
		}
	},
	"clamr_mpi": func() App {
		return App{
			Name:        "clamr_mpi",
			Description: "MPI-parallel CLAMR: block-decomposed mesh, halo exchange, allreduce conservation checks",
			Prog:        lang.MustCompile(CLAMRMPIProgram(DefaultCLAMRMPICells, DefaultCLAMRMPISteps)),
			WorldSize:   DefaultCLAMRMPIRanks,
			DefaultOps:  []isa.Op{isa.OpFAdd, isa.OpFMul, isa.OpFSub, isa.OpFDiv},
			TargetRank:  0,
		}
	},
	"clamr": func() App {
		return App{
			Name:        "clamr",
			Description: "cell-based AMR shallow-water mini-app with mass-conservation checker",
			Prog:        lang.MustCompile(CLAMRProgram(DefaultCLAMRCells, DefaultCLAMRSteps)),
			WorldSize:   1,
			DefaultOps:  []isa.Op{isa.OpFAdd, isa.OpFMul, isa.OpFSub, isa.OpFDiv},
			TargetRank:  -1,
		}
	},
}

// Names lists the registered applications in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByName builds the named application with its default parameters.
func ByName(name string) (App, error) {
	mk, ok := registry[name]
	if !ok {
		return App{}, fmt.Errorf("apps: unknown application %q (have %v)", name, Names())
	}
	return mk(), nil
}

// All builds every registered application.
func All() []App {
	out := make([]App, 0, len(registry))
	for _, n := range Names() {
		app, _ := ByName(n)
		out = append(out, app)
	}
	return out
}

// cat concatenates statement lists; used to splice generator snippets into
// loop bodies.
func cat(lists ...[]lang.Stmt) []lang.Stmt {
	var out []lang.Stmt
	for _, l := range lists {
		out = append(out, l...)
	}
	return out
}

// lcgNext emits statements advancing the in-guest linear congruential
// generator stored in variable seed, leaving a non-negative pseudo-random
// int in variable dst (0 <= dst < bound).
//
// The guest apps generate their own deterministic inputs this way, like the
// benchmark generators in the Rodinia suite.
func lcgNext(seed, dst string, bound int64) []lang.Stmt {
	return lang.Block(
		lang.Set(seed, lang.Add(lang.Mul(lang.V(seed), lang.I(6364136223846793005)), lang.I(1442695040888963407))),
		lang.Set(dst, lang.Mod(lang.Bin{Op: lang.OpShr, L: lang.V(seed), R: lang.I(33)}, lang.I(bound))),
	)
}
