package apps

import "chaser/internal/lang"

// Default k-means parameters.
const (
	DefaultKMeansPoints = 128
	DefaultKMeansK      = 4
	DefaultKMeansIters  = 5
)

// KMeansProgram builds a 2-D k-means clustering kernel in the style of
// Rodinia's kmeans: `points` samples, `k` clusters, a fixed number of
// Lloyd iterations. The distance computation (fsub/fmul/fadd) dominates,
// matching the paper's floating-point injection target for kmeans.
//
// Output: the final centroid coordinates and every point's assignment.
func KMeansProgram(points, k, iters int64) *lang.Program {
	I, F, V, B := lang.I, lang.F, lang.V, lang.Block

	return &lang.Program{
		Name: "kmeans",
		Funcs: []*lang.Func{{
			Name: "main",
			Body: B(
				lang.Let("np", I(points)),
				lang.Let("k", I(k)),
				lang.Let("px", lang.Alloc(V("np"))),
				lang.Let("py", lang.Alloc(V("np"))),
				lang.Let("cx", lang.Alloc(V("k"))),
				lang.Let("cy", lang.Alloc(V("k"))),
				lang.Let("sumx", lang.Alloc(V("k"))),
				lang.Let("sumy", lang.Alloc(V("k"))),
				lang.Let("cnt", lang.Alloc(V("k"))),
				lang.Let("assign", lang.Alloc(V("np"))),
				lang.Let("seed", I(13579)),
				lang.Let("r", I(0)),
				// Generate points in [0, 10) x [0, 10).
				lang.For{Var: "i", From: I(0), To: V("np"), Body: cat(
					lcgNext("seed", "r", 1000),
					B(lang.SetAt(V("px"), V("i"), lang.Div(lang.ToFloat(V("r")), F(100)))),
					lcgNext("seed", "r", 1000),
					B(lang.SetAt(V("py"), V("i"), lang.Div(lang.ToFloat(V("r")), F(100)))),
				)},
				// Initial centroids: the first k points.
				lang.For{Var: "c", From: I(0), To: V("k"), Body: B(
					lang.SetAt(V("cx"), V("c"), lang.AtF(V("px"), V("c"))),
					lang.SetAt(V("cy"), V("c"), lang.AtF(V("py"), V("c"))),
				)},
				lang.For{Var: "it", From: I(0), To: I(iters), Body: B(
					lang.For{Var: "c", From: I(0), To: V("k"), Body: B(
						lang.SetAt(V("sumx"), V("c"), F(0)),
						lang.SetAt(V("sumy"), V("c"), F(0)),
						lang.SetAt(V("cnt"), V("c"), I(0)),
					)},
					// Assignment step: nearest centroid by squared distance.
					lang.For{Var: "i", From: I(0), To: V("np"), Body: B(
						lang.Let("bestd", F(1e30)),
						lang.Let("best", I(0)),
						lang.For{Var: "c", From: I(0), To: V("k"), Body: B(
							lang.Let("dx", lang.Sub(lang.AtF(V("px"), V("i")), lang.AtF(V("cx"), V("c")))),
							lang.Let("dy", lang.Sub(lang.AtF(V("py"), V("i")), lang.AtF(V("cy"), V("c")))),
							lang.Let("d", lang.Add(lang.Mul(V("dx"), V("dx")), lang.Mul(V("dy"), V("dy")))),
							lang.If{Cond: lang.Lt(V("d"), V("bestd")), Then: B(
								lang.Set("bestd", V("d")),
								lang.Set("best", V("c")),
							)},
						)},
						lang.SetAt(V("assign"), V("i"), V("best")),
						lang.SetAt(V("sumx"), V("best"),
							lang.Add(lang.AtF(V("sumx"), V("best")), lang.AtF(V("px"), V("i")))),
						lang.SetAt(V("sumy"), V("best"),
							lang.Add(lang.AtF(V("sumy"), V("best")), lang.AtF(V("py"), V("i")))),
						lang.SetAt(V("cnt"), V("best"),
							lang.Add(lang.At(V("cnt"), V("best")), I(1))),
					)},
					// Update step.
					lang.For{Var: "c", From: I(0), To: V("k"), Body: B(
						lang.If{Cond: lang.Gt(lang.At(V("cnt"), V("c")), I(0)), Then: B(
							lang.Let("m", lang.ToFloat(lang.At(V("cnt"), V("c")))),
							lang.SetAt(V("cx"), V("c"), lang.Div(lang.AtF(V("sumx"), V("c")), V("m"))),
							lang.SetAt(V("cy"), V("c"), lang.Div(lang.AtF(V("sumy"), V("c")), V("m"))),
						)},
					)},
				)},
				// Output centroids and assignments.
				lang.For{Var: "c", From: I(0), To: V("k"), Body: B(
					lang.OutFloat{E: lang.AtF(V("cx"), V("c"))},
					lang.OutFloat{E: lang.AtF(V("cy"), V("c"))},
				)},
				lang.For{Var: "i", From: I(0), To: V("np"), Body: B(
					lang.OutInt{E: lang.At(V("assign"), V("i"))},
				)},
			),
		}},
	}
}
