package apps

import (
	"math"
	"testing"

	"chaser/internal/campaign"
	"chaser/internal/core"
	"chaser/internal/injectors"
	"chaser/internal/isa"
	"chaser/internal/vm"
)

func TestCLAMRMPIGoldenConservation(t *testing.T) {
	res, _ := golden(t, "clamr_mpi")
	for r, term := range res.Terms {
		if term.Reason != vm.ReasonExited || term.Code != 0 {
			t.Fatalf("rank %d: %v (conservation must hold on golden run)", r, term)
		}
	}
	// The concatenated per-rank fields must sum to the initial global mass.
	total := int64(DefaultCLAMRMPICells)
	high := total/3*2 - total/3
	mass0 := float64(high)*4 + float64(total-high)
	var sum float64
	cells := 0
	for r := range res.Outputs {
		for _, h := range floats(t, res.Outputs[r]) {
			if h <= 0 {
				t.Errorf("rank %d has non-positive height %v", r, h)
			}
			sum += h
			cells++
		}
	}
	if cells != int(total) {
		t.Fatalf("output cells = %d, want %d", cells, total)
	}
	if math.Abs(sum-mass0) > 1e-9*mass0 {
		t.Errorf("global mass = %v, want %v", sum, mass0)
	}
}

func TestCLAMRMPIGoldenMatchesSerialPhysics(t *testing.T) {
	// The decomposed solver must produce the same physical field as a
	// serial run of the same global mesh (identical scheme, identical
	// float ordering per cell update).
	mpiRes, _ := golden(t, "clamr_mpi")
	var parallel []float64
	for r := range mpiRes.Outputs {
		parallel = append(parallel, floats(t, mpiRes.Outputs[r])...)
	}

	// Serial reference on the same mesh size/steps: CLAMRProgram has an
	// extra refinement pass, so compute the reference directly in Go.
	n := int64(DefaultCLAMRMPICells)
	steps := int64(DefaultCLAMRMPISteps)
	h := make([]float64, n)
	hu := make([]float64, n)
	for i := int64(0); i < n; i++ {
		h[i] = 1.0
		if i >= n/3 && i < n/3*2 {
			h[i] = 4.0
		}
	}
	g, dx := 9.8, 1.0
	// sqrt via the same 8-iteration Newton the guest uses.
	sqrt := func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		y := x
		if y < 1 {
			y = 1
		}
		for i := 0; i < 8; i++ {
			y = 0.5 * (y + x/y)
		}
		return y
	}
	cmax := sqrt(g * 4.0)
	dt := 0.4 * dx / (cmax + 0.001)
	lam := dt / (2 * dx)
	hn := make([]float64, n)
	hun := make([]float64, n)
	for t2 := int64(0); t2 < steps; t2++ {
		for i := int64(0); i < n; i++ {
			im, ip := (i-1+n)%n, (i+1)%n
			hm, hp := h[im], h[ip]
			qm, qp := hu[im], hu[ip]
			fm := qm*qm/hm + 0.5*g*hm*hm
			fp := qp*qp/hp + 0.5*g*hp*hp
			hn[i] = 0.5*(hm+hp) - lam*(qp-qm)
			hun[i] = 0.5*(qm+qp) - lam*(fp-fm)
		}
		copy(h, hn)
		copy(hu, hun)
	}
	if len(parallel) != int(n) {
		t.Fatalf("parallel cells = %d", len(parallel))
	}
	for i := int64(0); i < n; i++ {
		if math.Abs(parallel[i]-h[i]) > 1e-12 {
			t.Errorf("cell %d: parallel %v vs serial %v", i, parallel[i], h[i])
		}
	}
}

func TestCLAMRMPIHaloPropagation(t *testing.T) {
	// A fault injected on rank 0 must cross into neighbour ranks through
	// the halo exchange, coordinated by the TaintHub.
	app, err := ByName("clamr_mpi")
	if err != nil {
		t.Fatal(err)
	}
	// Pin the corruption to rank 0's hn[1] (the update buffer's first local
	// cell): the end-of-step commit copies it into h[1], and the next halo
	// exchange ships that cell to the left neighbour. Layout: h and hu are
	// the first two allocations of n+2 = 18 slots each, so hn starts at
	// HeapBase + 2*18*8 and hn[1] is one slot further.
	perField := uint64(DefaultCLAMRMPICells/DefaultCLAMRMPIRanks+2) * 8
	edgeCell := isa.HeapBase + 2*perField + 8
	res, err := core.Run(core.RunConfig{
		Prog:      app.Prog,
		WorldSize: app.WorldSize,
		Spec: &core.Spec{
			Target: app.Name, Ops: app.DefaultOps,
			TargetRank: 0,
			Cond:       core.Deterministic{N: 2000},
			Inj:        injectors.DeterministicInjector{N: 2000, Mask: 1 << 20, Address: &edgeCell},
			Seed:       12, Trace: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Injected() {
		t.Fatal("no injection")
	}
	if !res.Trace.Propagated() {
		t.Fatal("taint never crossed a rank boundary")
	}
	// Neighbour ranks (1 and/or 3 in the ring) must show local taint
	// activity after receiving the contaminated halo.
	if res.Trace.Reads(1)+res.Trace.Reads(3) == 0 {
		t.Error("no tainted reads on neighbour ranks")
	}
	if res.HubStats.Published == 0 || res.HubStats.Hits == 0 {
		t.Errorf("hub unused: %+v", res.HubStats)
	}
}

func TestCLAMRMPICampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rank campaign")
	}
	app, err := ByName("clamr_mpi")
	if err != nil {
		t.Fatal(err)
	}
	sum, err := campaign.Run(campaign.Config{
		Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
		Ops: app.DefaultOps, TargetRank: 0,
		Runs: 60, Bits: 1, Seed: 77, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Detected == 0 {
		t.Errorf("allreduce-based checker never fired: %+v", sum)
	}
	if sum.PropagatedRuns == 0 {
		t.Error("no run propagated taint across ranks")
	}
}
