package apps

import "chaser/internal/lang"

// This file holds the small guest "standard library": routines shared by
// the application programs, each returning a lang.Func to splice into a
// program's function list.

// SqrtFunc returns the in-guest Newton square root used by the CLAMR
// variants for wave-speed computation: 8 Newton iterations from a clamped
// initial guess, accurate to ~1 ulp over the solvers' operating range.
func SqrtFunc() *lang.Func {
	I, F, V, B := lang.I, lang.F, lang.V, lang.Block
	return &lang.Func{
		Name:   "sqrt",
		Params: []lang.Param{{Name: "x", Type: lang.TFloat}},
		Ret:    lang.TFloat,
		Body: B(
			lang.If{Cond: lang.Le(V("x"), F(0)), Then: B(lang.Return{E: F(0)})},
			lang.Let("y", V("x")),
			lang.If{Cond: lang.Lt(V("y"), F(1)), Then: B(lang.Set("y", F(1)))},
			lang.For{Var: "i", From: I(0), To: I(8), Body: B(
				lang.Set("y", lang.Mul(F(0.5), lang.Add(V("y"), lang.Div(V("x"), V("y"))))),
			)},
			lang.Return{E: V("y")},
		),
	}
}

// AbsFunc returns |x| for floats.
func AbsFunc() *lang.Func {
	F, V, B := lang.F, lang.V, lang.Block
	return &lang.Func{
		Name:   "fabs",
		Params: []lang.Param{{Name: "x", Type: lang.TFloat}},
		Ret:    lang.TFloat,
		Body: B(
			lang.If{Cond: lang.Lt(V("x"), F(0)), Then: B(lang.Return{E: lang.Neg{E: V("x")}})},
			lang.Return{E: V("x")},
		),
	}
}

// MinMaxFuncs returns float min and max helpers.
func MinMaxFuncs() []*lang.Func {
	V, B := lang.V, lang.Block
	params := []lang.Param{{Name: "a", Type: lang.TFloat}, {Name: "b", Type: lang.TFloat}}
	return []*lang.Func{
		{
			Name: "fmin", Params: params, Ret: lang.TFloat,
			Body: B(
				lang.If{Cond: lang.Lt(V("a"), V("b")), Then: B(lang.Return{E: V("a")})},
				lang.Return{E: V("b")},
			),
		},
		{
			Name: "fmax", Params: params, Ret: lang.TFloat,
			Body: B(
				lang.If{Cond: lang.Gt(V("a"), V("b")), Then: B(lang.Return{E: V("a")})},
				lang.Return{E: V("b")},
			),
		},
	}
}
