package apps

import "chaser/internal/lang"

// Default BFS parameters.
const (
	DefaultBFSNodes  = 256
	DefaultBFSDegree = 4
)

// BFSProgram builds a breadth-first search over a synthetic directed graph,
// in the style of Rodinia's bfs benchmark. The graph has `nodes` vertices,
// each with `degree` out-edges drawn from an in-guest LCG. BFS runs
// frontier-by-frontier from vertex 0 using an explicit queue and a visited
// array, which makes the kernel dominated by comparison instructions —
// matching the paper's choice of cmp as the injection target for bfs.
//
// Output: the distance of every vertex (or -1 if unreachable), then the
// number of reached vertices.
func BFSProgram(nodes, degree int64) *lang.Program {
	I, V, B := lang.I, lang.V, lang.Block

	return &lang.Program{
		Name: "bfs",
		Funcs: []*lang.Func{{
			Name: "main",
			Body: B(
				lang.Let("n", I(nodes)),
				lang.Let("deg", I(degree)),
				// Edge list: edges[i*deg + k] is the k-th successor of i.
				lang.Let("edges", lang.Alloc(lang.Mul(V("n"), V("deg")))),
				lang.Let("dist", lang.Alloc(V("n"))),
				lang.Let("queue", lang.Alloc(V("n"))),
				lang.Let("seed", I(987654321)),
				lang.Let("r", I(0)),
				lang.For{Var: "i", From: I(0), To: V("n"), Body: cat(
					B(lang.SetAt(V("dist"), V("i"), I(-1))),
					B(lang.For{Var: "k", From: I(0), To: V("deg"), Body: cat(
						lcgNext("seed", "r", nodes),
						B(lang.SetAt(V("edges"),
							lang.Add(lang.Mul(V("i"), V("deg")), V("k")), V("r"))),
					)}),
				)},
				// BFS from vertex 0.
				lang.SetAt(V("dist"), I(0), I(0)),
				lang.SetAt(V("queue"), I(0), I(0)),
				lang.Let("head", I(0)),
				lang.Let("tail", I(1)),
				lang.While{Cond: lang.Lt(V("head"), V("tail")), Body: B(
					lang.Let("u", lang.At(V("queue"), V("head"))),
					lang.Set("head", lang.Add(V("head"), I(1))),
					lang.Let("du", lang.At(V("dist"), V("u"))),
					lang.For{Var: "k", From: I(0), To: V("deg"), Body: B(
						lang.Let("v", lang.At(V("edges"),
							lang.Add(lang.Mul(V("u"), V("deg")), V("k")))),
						lang.If{Cond: lang.Eq(lang.At(V("dist"), V("v")), I(-1)), Then: B(
							lang.SetAt(V("dist"), V("v"), lang.Add(V("du"), I(1))),
							lang.SetAt(V("queue"), V("tail"), V("v")),
							lang.Set("tail", lang.Add(V("tail"), I(1))),
						)},
					)},
				)},
				// Output distances and the reached count.
				lang.Let("reached", I(0)),
				lang.For{Var: "i", From: I(0), To: V("n"), Body: B(
					lang.OutInt{E: lang.At(V("dist"), V("i"))},
					lang.If{Cond: lang.Ne(lang.At(V("dist"), V("i")), I(-1)), Then: B(
						lang.Set("reached", lang.Add(V("reached"), I(1))),
					)},
				)},
				lang.OutInt{E: V("reached")},
			),
		}},
	}
}
