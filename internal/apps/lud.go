package apps

import "chaser/internal/lang"

// DefaultLUDN is the default LU decomposition dimension.
const DefaultLUDN = 24

// LUDProgram builds an in-place LU decomposition (Doolittle, no pivoting)
// of a diagonally dominant n×n matrix, in the style of Rodinia's lud. The
// kernel mixes floating-point arithmetic with loop-bound comparisons, which
// is why the paper uses a combined floating-point + cmp fault target for
// lud.
//
// Output: the factored matrix (L below the diagonal, U on and above it) and
// a reconstruction residual computed against the original matrix.
func LUDProgram(n int64) *lang.Program {
	I, F, V, B := lang.I, lang.F, lang.V, lang.Block
	idx := func(i, j lang.Expr) lang.Expr { return lang.Add(lang.Mul(i, V("n")), j) }

	return &lang.Program{
		Name: "lud",
		Funcs: []*lang.Func{{
			Name: "main",
			Body: B(
				lang.Let("n", I(n)),
				lang.Let("a", lang.Alloc(lang.Mul(V("n"), V("n")))),
				lang.Let("orig", lang.Alloc(lang.Mul(V("n"), V("n")))),
				lang.Let("seed", I(424242)),
				lang.Let("r", I(0)),
				// Generate a diagonally dominant matrix so the factorization
				// is stable without pivoting.
				lang.For{Var: "i", From: I(0), To: V("n"), Body: B(
					lang.For{Var: "j", From: I(0), To: V("n"), Body: cat(
						lcgNext("seed", "r", 200),
						B(
							lang.Let("v", lang.Div(lang.ToFloat(V("r")), F(100))),
							lang.If{Cond: lang.Eq(V("i"), V("j")), Then: B(
								lang.Set("v", lang.Add(V("v"), lang.ToFloat(V("n")))),
							)},
							lang.SetAt(V("a"), idx(V("i"), V("j")), V("v")),
							lang.SetAt(V("orig"), idx(V("i"), V("j")), V("v")),
						),
					)},
				)},
				// Doolittle factorization, in place.
				lang.For{Var: "kk", From: I(0), To: V("n"), Body: B(
					lang.Let("pivot", lang.AtF(V("a"), idx(V("kk"), V("kk")))),
					lang.For{Var: "i", From: lang.Add(V("kk"), I(1)), To: V("n"), Body: B(
						lang.Let("f", lang.Div(lang.AtF(V("a"), idx(V("i"), V("kk"))), V("pivot"))),
						lang.SetAt(V("a"), idx(V("i"), V("kk")), V("f")),
						lang.For{Var: "j", From: lang.Add(V("kk"), I(1)), To: V("n"), Body: B(
							lang.SetAt(V("a"), idx(V("i"), V("j")),
								lang.Sub(lang.AtF(V("a"), idx(V("i"), V("j"))),
									lang.Mul(V("f"), lang.AtF(V("a"), idx(V("kk"), V("j")))))),
						)},
					)},
				)},
				// Residual: max |(L*U)[i][j] - orig[i][j]| over a sampled set
				// of entries (every row, three columns) to keep the check
				// cheap but sensitive.
				lang.Let("maxerr", F(0)),
				lang.For{Var: "i", From: I(0), To: V("n"), Body: B(
					lang.For{Var: "js", From: I(0), To: I(3), Body: B(
						lang.Let("j", lang.Mod(lang.Add(lang.Mul(V("js"), I(11)), V("i")), V("n"))),
						// (L*U)[i][j] = sum_m L[i][m]*U[m][j], with L unit
						// lower triangular.
						lang.Let("acc", F(0)),
						lang.Let("lim", V("i")),
						lang.If{Cond: lang.Gt(V("lim"), V("j")), Then: B(lang.Set("lim", V("j")))},
						lang.For{Var: "m", From: I(0), To: V("lim"), Body: B(
							lang.Set("acc", lang.Add(V("acc"), lang.Mul(
								lang.AtF(V("a"), idx(V("i"), V("m"))),
								lang.AtF(V("a"), idx(V("m"), V("j")))))),
						)},
						// Diagonal contribution: L[i][i] = 1 when i <= j,
						// else U[j][j] factor via L[i][j].
						lang.If{
							Cond: lang.Le(V("i"), V("j")),
							Then: B(lang.Set("acc", lang.Add(V("acc"),
								lang.AtF(V("a"), idx(V("i"), V("j")))))),
							Else: B(lang.Set("acc", lang.Add(V("acc"), lang.Mul(
								lang.AtF(V("a"), idx(V("i"), V("j"))),
								lang.AtF(V("a"), idx(V("j"), V("j"))))))),
						},
						lang.Let("diff", lang.Sub(V("acc"), lang.AtF(V("orig"), idx(V("i"), V("j"))))),
						lang.If{Cond: lang.Lt(V("diff"), F(0)), Then: B(
							lang.Set("diff", lang.Neg{E: V("diff")}),
						)},
						lang.If{Cond: lang.Gt(V("diff"), V("maxerr")), Then: B(
							lang.Set("maxerr", V("diff")),
						)},
					)},
				)},
				// Output the factored matrix and the residual.
				lang.For{Var: "i", From: I(0), To: lang.Mul(V("n"), V("n")), Body: B(
					lang.OutFloat{E: lang.AtF(V("a"), V("i"))},
				)},
				lang.OutFloat{E: V("maxerr")},
			),
		}},
	}
}
