package lang

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"chaser/internal/isa"
	"chaser/internal/vm"
)

// compileRun compiles a program, runs it on a fresh machine, and returns the
// machine and termination.
func compileRun(t *testing.T, p *Program) (*vm.Machine, vm.Termination) {
	t.Helper()
	prog, err := Compile(p)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	m := vm.New(prog, vm.Config{})
	term := m.Run()
	return m, term
}

func mainProg(ret Type, body ...Stmt) *Program {
	return &Program{
		Name:  "test",
		Funcs: []*Func{{Name: "main", Ret: ret, Body: body}},
	}
}

func wantExit(t *testing.T, term vm.Termination, code int64) {
	t.Helper()
	if term.Reason != vm.ReasonExited || term.Code != code {
		t.Fatalf("term = %v, want exited(%d)", term, code)
	}
}

func outFloats(t *testing.T, m *vm.Machine) []float64 {
	t.Helper()
	out := m.Output()
	if len(out)%8 != 0 {
		t.Fatalf("output length %d not multiple of 8", len(out))
	}
	vals := make([]float64, len(out)/8)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(out[i*8:]))
	}
	return vals
}

func outInts(t *testing.T, m *vm.Machine) []int64 {
	t.Helper()
	out := m.Output()
	if len(out)%8 != 0 {
		t.Fatalf("output length %d not multiple of 8", len(out))
	}
	vals := make([]int64, len(out)/8)
	for i := range vals {
		vals[i] = int64(binary.LittleEndian.Uint64(out[i*8:]))
	}
	return vals
}

func TestReturnConstant(t *testing.T) {
	_, term := compileRun(t, mainProg(TInt, Return{E: I(7)}))
	wantExit(t, term, 7)
}

func TestArithmetic(t *testing.T) {
	// (3+4)*5 - 36/6 + 17%5 = 35 - 6 + 2 = 31
	e := Add(Sub(Mul(Add(I(3), I(4)), I(5)), Div(I(36), I(6))), Mod(I(17), I(5)))
	_, term := compileRun(t, mainProg(TInt, Return{E: e}))
	wantExit(t, term, 31)
}

func TestBitwise(t *testing.T) {
	// ((0xF0 | 0x0F) ^ 0xFF) + (1<<4) + (256>>4) = 0 + 16 + 16
	e := Add(Add(
		Bin{Op: OpXor, L: Bin{Op: OpOr, L: I(0xF0), R: I(0x0F)}, R: I(0xFF)},
		Bin{Op: OpShl, L: I(1), R: I(4)}),
		Bin{Op: OpShr, L: I(256), R: I(4)})
	_, term := compileRun(t, mainProg(TInt, Return{E: e}))
	wantExit(t, term, 32)
}

func TestFloatArithmetic(t *testing.T) {
	m, term := compileRun(t, mainProg(0,
		Let("x", F(1.5)),
		Let("y", F(2.5)),
		OutFloat{E: Add(Mul(V("x"), V("y")), Div(V("y"), F(0.5)))}, // 3.75+5
		OutFloat{E: Neg{E: V("x")}},
		OutFloat{E: Sub(V("y"), V("x"))},
	))
	wantExit(t, term, 0)
	vals := outFloats(t, m)
	if vals[0] != 8.75 || vals[1] != -1.5 || vals[2] != 1.0 {
		t.Errorf("outputs = %v", vals)
	}
}

func TestCasts(t *testing.T) {
	m, term := compileRun(t, mainProg(0,
		Let("i", I(7)),
		Let("f", ToFloat(V("i"))),
		OutFloat{E: Div(V("f"), F(2))},
		OutInt{E: ToInt(F(3.9))},
		OutInt{E: ToInt(Neg{E: F(3.9)})},
	))
	wantExit(t, term, 0)
	out := m.Output()
	if got := math.Float64frombits(binary.LittleEndian.Uint64(out)); got != 3.5 {
		t.Errorf("7/2.0 = %v", got)
	}
	if got := int64(binary.LittleEndian.Uint64(out[8:])); got != 3 {
		t.Errorf("int(3.9) = %d", got)
	}
	if got := int64(binary.LittleEndian.Uint64(out[16:])); got != -3 {
		t.Errorf("int(-3.9) = %d", got)
	}
}

func TestComparisonsAndIf(t *testing.T) {
	tests := []struct {
		e    Expr
		want int64
	}{
		{Eq(I(3), I(3)), 1}, {Eq(I(3), I(4)), 0},
		{Ne(I(3), I(4)), 1}, {Lt(I(3), I(4)), 1},
		{Le(I(4), I(4)), 1}, {Gt(I(4), I(3)), 1},
		{Ge(I(3), I(4)), 0},
		{Lt(F(1.5), F(2.5)), 1}, {Gt(F(1.5), F(2.5)), 0},
		{Eq(F(2.5), F(2.5)), 1},
	}
	for i, tt := range tests {
		_, term := compileRun(t, mainProg(TInt,
			If{Cond: tt.e, Then: Block(Return{E: I(1)}), Else: Block(Return{E: I(0)})},
		))
		if term.Code != tt.want {
			t.Errorf("case %d: got %d, want %d", i, term.Code, tt.want)
		}
	}
}

func TestIfWithoutElse(t *testing.T) {
	_, term := compileRun(t, mainProg(TInt,
		Let("x", I(0)),
		If{Cond: Gt(I(5), I(3)), Then: Block(Set("x", I(9)))},
		Return{E: V("x")},
	))
	wantExit(t, term, 9)
}

func TestWhileLoop(t *testing.T) {
	// Compute 2^10 by repeated doubling.
	_, term := compileRun(t, mainProg(TInt,
		Let("v", I(1)),
		Let("i", I(0)),
		While{Cond: Lt(V("i"), I(10)), Body: Block(
			Set("v", Mul(V("v"), I(2))),
			Set("i", Add(V("i"), I(1))),
		)},
		Return{E: V("v")},
	))
	wantExit(t, term, 1024)
}

func TestForLoop(t *testing.T) {
	// Sum 0..99 = 4950.
	_, term := compileRun(t, mainProg(TInt,
		Let("sum", I(0)),
		For{Var: "i", From: I(0), To: I(100), Body: Block(
			Set("sum", Add(V("sum"), V("i"))),
		)},
		Return{E: V("sum")},
	))
	wantExit(t, term, 4950)
}

func TestNestedForLoops(t *testing.T) {
	// 10x10 multiplication-table sum = (0+..+9)^2 = 2025.
	_, term := compileRun(t, mainProg(TInt,
		Let("sum", I(0)),
		For{Var: "i", From: I(0), To: I(10), Body: Block(
			For{Var: "j", From: I(0), To: I(10), Body: Block(
				Set("sum", Add(V("sum"), Mul(V("i"), V("j")))),
			)},
		)},
		Return{E: V("sum")},
	))
	wantExit(t, term, 2025)
}

func TestArrays(t *testing.T) {
	m, term := compileRun(t, mainProg(0,
		Let("a", Alloc(I(10))),
		For{Var: "i", From: I(0), To: I(10), Body: Block(
			SetAt(V("a"), V("i"), Mul(V("i"), V("i"))),
		)},
		Let("sum", I(0)),
		For{Var: "i", From: I(0), To: I(10), Body: Block(
			Set("sum", Add(V("sum"), At(V("a"), V("i")))),
		)},
		OutInt{E: V("sum")}, // 285
	))
	wantExit(t, term, 0)
	if got := outInts(t, m); got[0] != 285 {
		t.Errorf("sum of squares = %d, want 285", got[0])
	}
}

func TestFloatArrays(t *testing.T) {
	m, term := compileRun(t, mainProg(0,
		Let("a", Alloc(I(4))),
		For{Var: "i", From: I(0), To: I(4), Body: Block(
			SetAt(V("a"), V("i"), Mul(ToFloat(V("i")), F(0.5))),
		)},
		Let("s", F(0)),
		For{Var: "i", From: I(0), To: I(4), Body: Block(
			Set("s", Add(V("s"), AtF(V("a"), V("i")))),
		)},
		OutFloat{E: V("s")}, // 0+0.5+1+1.5 = 3
	))
	wantExit(t, term, 0)
	if got := outFloats(t, m); got[0] != 3 {
		t.Errorf("float array sum = %v, want 3", got[0])
	}
}

func TestFunctionCalls(t *testing.T) {
	p := &Program{
		Name: "t",
		Funcs: []*Func{
			{
				Name: "main", Ret: TInt,
				Body: Block(Return{E: Call("fib", I(10))}),
			},
			{
				Name: "fib", Ret: TInt, Params: []Param{{Name: "n", Type: TInt}},
				Body: Block(
					If{Cond: Lt(V("n"), I(2)), Then: Block(Return{E: V("n")})},
					Return{E: Add(
						Call("fib", Sub(V("n"), I(1))),
						Call("fib", Sub(V("n"), I(2))),
					)},
				),
			},
		},
	}
	_, term := compileRun(t, p)
	wantExit(t, term, 55)
}

func TestFloatFunctionCall(t *testing.T) {
	p := &Program{
		Name: "t",
		Funcs: []*Func{
			{
				Name: "main",
				Body: Block(OutFloat{E: Call("hypot2", F(3), F(4))}),
			},
			{
				Name: "hypot2", Ret: TFloat,
				Params: []Param{{Name: "a", Type: TFloat}, {Name: "b", Type: TFloat}},
				Body: Block(Return{E: Add(
					Mul(V("a"), V("a")), Mul(V("b"), V("b")),
				)}),
			},
		},
	}
	m, term := compileRun(t, p)
	wantExit(t, term, 0)
	if got := outFloats(t, m); got[0] != 25 {
		t.Errorf("hypot2 = %v, want 25", got[0])
	}
}

func TestCallSpillsLiveRegisters(t *testing.T) {
	// The outer expression holds live values across the call.
	p := &Program{
		Name: "t",
		Funcs: []*Func{
			{
				Name: "main", Ret: TInt,
				// 100 + clobber() + 10, where clobber scrambles eval regs.
				Body: Block(Return{E: Add(Add(I(100), Call("clobber")), I(10))}),
			},
			{
				Name: "clobber", Ret: TInt,
				Body: Block(
					Let("a", I(1)), Let("b", I(2)), Let("c", I(3)),
					Return{E: Add(Add(Mul(V("a"), V("b")), V("c")), I(-4))}, // 1
				),
			},
		},
	}
	_, term := compileRun(t, p)
	wantExit(t, term, 111)
}

func TestVoidFunction(t *testing.T) {
	p := &Program{
		Name: "t",
		Funcs: []*Func{
			{
				Name: "main", Ret: TInt,
				Body: Block(
					CallStmt{Name: "emit", Args: []Expr{I(5)}},
					CallStmt{Name: "emit", Args: []Expr{I(6)}},
					Return{E: I(0)},
				),
			},
			{
				Name: "emit", Params: []Param{{Name: "v", Type: TInt}},
				Body: Block(OutInt{E: Mul(V("v"), I(2))}),
			},
		},
	}
	m, term := compileRun(t, p)
	wantExit(t, term, 0)
	got := outInts(t, m)
	if len(got) != 2 || got[0] != 10 || got[1] != 12 {
		t.Errorf("outputs = %v", got)
	}
}

func TestPrintAndAssert(t *testing.T) {
	m, term := compileRun(t, mainProg(0,
		PrintInt{E: I(42)},
		PrintFloat{E: F(1.25)},
		Assert{Cond: Eq(I(1), I(1)), Code: 1},
	))
	wantExit(t, term, 0)
	if got := m.Console(); got != "42\n1.25\n" {
		t.Errorf("console = %q", got)
	}
}

func TestAssertFailure(t *testing.T) {
	_, term := compileRun(t, mainProg(0,
		Assert{Cond: Eq(I(1), I(2)), Code: 77},
	))
	if term.Reason != vm.ReasonAssert || term.Code != 77 {
		t.Fatalf("term = %v, want assert(77)", term)
	}
}

func TestExitStmt(t *testing.T) {
	_, term := compileRun(t, mainProg(0,
		Exit{Code: I(3)},
		OutInt{E: I(9)}, // unreachable
	))
	wantExit(t, term, 3)
}

func TestDeepExpression(t *testing.T) {
	// A right-leaning tree close to the depth limit still compiles.
	e := I(1)
	for i := 0; i < 10; i++ {
		e = Add(I(1), e)
	}
	_, term := compileRun(t, mainProg(TInt, Return{E: e}))
	wantExit(t, term, 11)
}

func TestCompileErrors(t *testing.T) {
	tests := []struct {
		name string
		prog *Program
		sub  string
	}{
		{"no main", &Program{Name: "t", Funcs: []*Func{{Name: "f"}}}, "missing main"},
		{"main with params", &Program{Name: "t", Funcs: []*Func{{
			Name: "main", Params: []Param{{Name: "x", Type: TInt}},
		}}}, "no parameters"},
		{"dup function", &Program{Name: "t", Funcs: []*Func{
			{Name: "main"}, {Name: "f"}, {Name: "f"},
		}}, "duplicate function"},
		{"undefined var", mainProg(0, Set("x", I(1))), "undefined variable"},
		{"redeclare type change", mainProg(0, Let("x", I(1)), Let("x", F(2))), "redeclaration"},
		{"type mismatch assign", mainProg(0, Let("x", I(1)), Set("x", F(2))), "assigning float"},
		{"mixed bin", mainProg(0, Let("x", Add(I(1), F(2)))), "applied to int and float"},
		{"float mod", mainProg(0, Let("x", Mod(F(1), F(2)))), "not defined for float"},
		{"mixed cmp", mainProg(0, Let("x", Lt(I(1), F(2)))), "comparison"},
		{"undef call", mainProg(0, CallStmt{Name: "nope"}), "undefined function"},
		{"void in expr", &Program{Name: "t", Funcs: []*Func{
			{Name: "main", Body: Block(Let("x", Call("v")))},
			{Name: "v"},
		}}, "void function"},
		{"arity", &Program{Name: "t", Funcs: []*Func{
			{Name: "main", Body: Block(CallStmt{Name: "f", Args: []Expr{I(1)}})},
			{Name: "f"},
		}}, "with 1 args"},
		{"arg type", &Program{Name: "t", Funcs: []*Func{
			{Name: "main", Body: Block(CallStmt{Name: "f", Args: []Expr{F(1)}})},
			{Name: "f", Params: []Param{{Name: "x", Type: TInt}}},
		}}, "arg 0 is float"},
		{"return type", mainProg(TInt, Return{E: F(1)}), "returning float"},
		{"bare return typed", mainProg(TInt, Return{}), "return without value"},
		{"cond type", mainProg(0, If{Cond: F(1), Then: Block()}), "condition must be int"},
		{"float index", mainProg(0, Let("x", At(I(1), F(0)))), "index must be int"},
		{"float base", mainProg(0, Let("x", At(F(1), I(0)))), "base must be int"},
		{"alloc float", mainProg(0, Let("x", Alloc(F(1)))), "alloc size must be int"},
		{"for float bound", mainProg(0, For{Var: "i", From: F(0), To: I(3)}), "bound must be int"},
		{"assert float", mainProg(0, Assert{Cond: F(1)}), "condition must be int"},
		{"print type", mainProg(0, PrintInt{E: F(1)}), "expected int"},
		{"printf type", mainProg(0, PrintFloat{E: I(1)}), "expected float"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Compile(tt.prog)
			if err == nil {
				t.Fatal("expected compile error")
			}
			if !strings.Contains(err.Error(), tt.sub) {
				t.Errorf("error %q missing %q", err, tt.sub)
			}
		})
	}
}

func TestTooDeepExpression(t *testing.T) {
	e := I(1)
	for i := 0; i < 20; i++ {
		e = Add(e, I(1)) // left-leaning would stay shallow; make it right-leaning
	}
	// Right-leaning tree forces depth growth.
	e = I(1)
	for i := 0; i < 20; i++ {
		e = Add(I(1), e)
	}
	_, err := Compile(mainProg(TInt, Return{E: e}))
	if err == nil || !strings.Contains(err.Error(), "too deep") {
		t.Errorf("err = %v, want depth error", err)
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile did not panic on bad program")
		}
	}()
	MustCompile(&Program{Name: "bad"})
}

func TestDivByZeroFault(t *testing.T) {
	_, term := compileRun(t, mainProg(TInt,
		Let("z", I(0)),
		Return{E: Div(I(5), V("z"))},
	))
	if term.Reason != vm.ReasonSignal || term.Signal != vm.SIGFPE {
		t.Fatalf("term = %v, want SIGFPE", term)
	}
}

func TestGeneratedProgramValidates(t *testing.T) {
	prog, err := Compile(mainProg(TInt,
		Let("x", I(2)),
		For{Var: "i", From: I(0), To: I(3), Body: Block(Set("x", Mul(V("x"), V("x"))))},
		Return{E: Mod(V("x"), I(1000))},
	))
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if prog.Entry != isa.CodeBase {
		t.Errorf("entry = %#x", prog.Entry)
	}
	// 2^8 = 256 mod 1000
	m := vm.New(prog, vm.Config{})
	if term := m.Run(); term.Code != 256 {
		t.Errorf("result = %d, want 256", term.Code)
	}
}

func TestBreakStatement(t *testing.T) {
	// Sum i from 0 upward, break when i == 5: 0+1+2+3+4+5 = 15.
	_, term := compileRun(t, mainProg(TInt,
		Let("sum", I(0)),
		For{Var: "i", From: I(0), To: I(100), Body: Block(
			Set("sum", Add(V("sum"), V("i"))),
			If{Cond: Eq(V("i"), I(5)), Then: Block(Break{})},
		)},
		Return{E: V("sum")},
	))
	wantExit(t, term, 15)
}

func TestContinueStatement(t *testing.T) {
	// Sum even i in [0,10): 0+2+4+6+8 = 20.
	_, term := compileRun(t, mainProg(TInt,
		Let("sum", I(0)),
		For{Var: "i", From: I(0), To: I(10), Body: Block(
			If{Cond: Eq(Mod(V("i"), I(2)), I(1)), Then: Block(Continue{})},
			Set("sum", Add(V("sum"), V("i"))),
		)},
		Return{E: V("sum")},
	))
	wantExit(t, term, 20)
}

func TestBreakContinueInWhile(t *testing.T) {
	// While with continue skipping odd values and break at 8: 0+2+4+6 = 12.
	_, term := compileRun(t, mainProg(TInt,
		Let("sum", I(0)),
		Let("i", I(-1)),
		While{Cond: I(1), Body: Block(
			Set("i", Add(V("i"), I(1))),
			If{Cond: Eq(V("i"), I(8)), Then: Block(Break{})},
			If{Cond: Eq(Mod(V("i"), I(2)), I(1)), Then: Block(Continue{})},
			Set("sum", Add(V("sum"), V("i"))),
		)},
		Return{E: V("sum")},
	))
	wantExit(t, term, 12)
}

func TestNestedLoopBreak(t *testing.T) {
	// Inner break must only exit the inner loop: outer runs 3 times, inner
	// adds 2 each time before breaking -> 3 * (0+1) = 3.
	_, term := compileRun(t, mainProg(TInt,
		Let("sum", I(0)),
		For{Var: "i", From: I(0), To: I(3), Body: Block(
			For{Var: "j", From: I(0), To: I(100), Body: Block(
				If{Cond: Eq(V("j"), I(2)), Then: Block(Break{})},
				Set("sum", Add(V("sum"), V("j"))),
			)},
		)},
		Return{E: V("sum")},
	))
	wantExit(t, term, 3)
}

func TestBreakOutsideLoop(t *testing.T) {
	_, err := Compile(mainProg(0, Break{}))
	if err == nil || !strings.Contains(err.Error(), "break outside loop") {
		t.Errorf("err = %v", err)
	}
	_, err = Compile(mainProg(0, Continue{}))
	if err == nil || !strings.Contains(err.Error(), "continue outside loop") {
		t.Errorf("err = %v", err)
	}
}

func TestMPIStatementsCompile(t *testing.T) {
	// The MPI marshalling paths; executed end-to-end in the mpi package,
	// compiled here. Running without an MPI env yields an MPI error.
	p := mainProg(0,
		Let("buf", Alloc(I(4))),
		MPISend{Buf: V("buf"), Count: I(4), Dtype: 1, Dest: I(1), Tag: I(2)},
		MPIRecv{Buf: V("buf"), Count: I(4), Dtype: 1, Source: I(1), Tag: I(2)},
		Barrier{},
		Bcast{Buf: V("buf"), Count: I(4), Dtype: 1, Root: I(0)},
		Reduce{SendBuf: V("buf"), RecvBuf: V("buf"), Count: I(4), Dtype: 1, ReduceOp: 1, Root: I(0)},
		Allreduce{SendBuf: V("buf"), RecvBuf: V("buf"), Count: I(4), Dtype: 1, ReduceOp: 1},
	)
	_, term := compileRun(t, p)
	if term.Reason != vm.ReasonMPIError {
		t.Fatalf("term = %v, want mpi-error without an MPI environment", term)
	}
	// Type errors in MPI arguments are compile errors.
	bad := mainProg(0,
		Let("buf", Alloc(I(1))),
		MPISend{Buf: V("buf"), Count: F(1), Dtype: 1, Dest: I(1), Tag: I(0)},
	)
	if _, err := Compile(bad); err == nil || !strings.Contains(err.Error(), "expected int") {
		t.Errorf("float MPI count accepted: %v", err)
	}
}

func TestVoidCallInExpressionViaStmt(t *testing.T) {
	// CallStmt on an int-returning function discards the value cleanly.
	p := &Program{Name: "t", Funcs: []*Func{
		{Name: "main", Ret: TInt, Body: Block(
			CallStmt{Name: "f"},
			Return{E: I(5)},
		)},
		{Name: "f", Ret: TInt, Body: Block(Return{E: I(9)})},
	}}
	_, term := compileRun(t, p)
	wantExit(t, term, 5)
}

func TestFloatParamAndReturnSpill(t *testing.T) {
	// Mixed int/float live values across a call exercise both spill paths.
	p := &Program{Name: "t", Funcs: []*Func{
		{Name: "main", Body: Block(
			OutFloat{E: Add(Mul(F(2), Call("half", F(5))), Add(F(1), Call("half", F(3))))},
		)},
		{Name: "half", Ret: TFloat, Params: []Param{{Name: "x", Type: TFloat}},
			Body: Block(Return{E: Div(V("x"), F(2))})},
	}}
	m, term := compileRun(t, p)
	wantExit(t, term, 0)
	if got := outFloats(t, m); got[0] != 2*2.5+1+1.5 {
		t.Errorf("result = %v", got[0])
	}
}
