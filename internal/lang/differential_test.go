package lang

import (
	"math/rand"
	"testing"

	"chaser/internal/vm"
)

// The compiler differential test: random integer expression trees are
// compiled and executed on the VM, and the result is compared against a
// direct Go evaluation of the same tree. Division, modulo, and shifts are
// constrained to avoid traps and Go/guest semantic edge cases by
// construction (those paths have dedicated unit tests).

type exprGen struct {
	rng  *rand.Rand
	vars map[string]int64
}

// gen builds a random int expression of the given depth and returns the
// node together with its reference value.
func (g *exprGen) gen(depth int) (Expr, int64) {
	if depth == 0 || g.rng.Intn(4) == 0 {
		// Leaf: literal or variable.
		if len(g.vars) > 0 && g.rng.Intn(2) == 0 {
			names := make([]string, 0, len(g.vars))
			for n := range g.vars {
				names = append(names, n)
			}
			// Deterministic order for reproducibility.
			name := names[g.rng.Intn(len(names))]
			_ = name
			// Map iteration order is random; re-pick deterministically.
			name = pickDeterministic(names, g.rng)
			return V(name), g.vars[name]
		}
		v := g.rng.Int63n(2001) - 1000
		return I(v), v
	}
	l, lv := g.gen(depth - 1)
	r, rv := g.gen(depth - 1)
	switch g.rng.Intn(8) {
	case 0:
		return Add(l, r), lv + rv
	case 1:
		return Sub(l, r), lv - rv
	case 2:
		return Mul(l, r), lv * rv
	case 3:
		return Bin{Op: OpAnd, L: l, R: r}, lv & rv
	case 4:
		return Bin{Op: OpOr, L: l, R: r}, lv | rv
	case 5:
		return Bin{Op: OpXor, L: l, R: r}, lv ^ rv
	case 6:
		// Comparison yields 0/1.
		if lv < rv {
			return Lt(l, r), 1
		}
		return Lt(l, r), 0
	default:
		// Conditional-ish: (l == r) as 0/1.
		if lv == rv {
			return Eq(l, r), 1
		}
		return Eq(l, r), 0
	}
}

func pickDeterministic(names []string, rng *rand.Rand) string {
	// Sort-free deterministic pick: names are "v0".."v3".
	return names[0]
}

func TestCompilerMatchesGoEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 150; trial++ {
		g := &exprGen{rng: rng, vars: map[string]int64{"v0": rng.Int63n(1000) - 500}}
		body := []Stmt{Let("v0", I(g.vars["v0"]))}
		// A few statements building on each other.
		want := int64(0)
		for s := 0; s < 4; s++ {
			e, v := g.gen(3)
			name := "r" + string(rune('0'+s))
			body = append(body, Let(name, e))
			g.vars[name] = v
			want += v
		}
		sum := Expr(I(0))
		for s := 0; s < 4; s++ {
			sum = Add(sum, V("r"+string(rune('0'+s))))
		}
		body = append(body, Return{E: sum})

		prog, err := Compile(mainProg(TInt, body...))
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		m := vm.New(prog, vm.Config{})
		term := m.Run()
		if term.Reason != vm.ReasonExited {
			t.Fatalf("trial %d: %v", trial, term)
		}
		if term.Code != want {
			t.Fatalf("trial %d: got %d, want %d", trial, term.Code, want)
		}
	}
}

func TestCompilerDeepNesting(t *testing.T) {
	// Deeply nested control flow (not expressions): 6 levels of loops and
	// conditionals around a counter.
	inner := Block(Set("n", Add(V("n"), I(1))))
	body := inner
	for level := 0; level < 6; level++ {
		body = Block(
			For{Var: "i" + string(rune('0'+level)), From: I(0), To: I(2), Body: body},
		)
	}
	stmts := append([]Stmt{Let("n", I(0))}, body...)
	stmts = append(stmts, Return{E: V("n")})
	_, term := compileRun(t, mainProg(TInt, stmts...))
	wantExit(t, term, 64) // 2^6 iterations
}

func TestCompilerManyLocals(t *testing.T) {
	// Dozens of locals exercise frame layout.
	var stmts []Stmt
	sum := Expr(I(0))
	for i := 0; i < 40; i++ {
		name := "x" + itoa10(i)
		stmts = append(stmts, Let(name, I(int64(i))))
		sum = Add(sum, V(name))
	}
	stmts = append(stmts, Return{E: sum})
	_, term := compileRun(t, mainProg(TInt, stmts...))
	wantExit(t, term, 780) // 0+..+39
}
