package lang

import (
	"strings"
	"testing"

	"chaser/internal/vm"
)

func parseRun(t *testing.T, src string) (*vm.Machine, vm.Termination) {
	t.Helper()
	prog, err := ParseAndCompile("test", src)
	if err != nil {
		t.Fatalf("ParseAndCompile: %v", err)
	}
	m := vm.New(prog, vm.Config{})
	return m, m.Run()
}

func TestParseHelloArithmetic(t *testing.T) {
	_, term := parseRun(t, `
// compute (3+4)*5 - 36/6 + 17%5
func main() int {
	return (3+4)*5 - 36/6 + 17%5
}
`)
	wantExit(t, term, 31)
}

func TestParseVariablesAndLoops(t *testing.T) {
	_, term := parseRun(t, `
func main() int {
	sum := 0
	for i := 0; i < 100; i = i + 1 {
		sum = sum + i
	}
	return sum
}
`)
	wantExit(t, term, 4950)
}

func TestParseWhileForm(t *testing.T) {
	_, term := parseRun(t, `
func main() int {
	v := 1
	i := 0
	for i < 10 {
		v = v * 2
		i = i + 1
	}
	return v
}
`)
	wantExit(t, term, 1024)
}

func TestParseIfElseChain(t *testing.T) {
	src := `
func classify(x int) int {
	if x < 0 {
		return 0
	} else if x == 0 {
		return 1
	} else {
		return 2
	}
}
func main() int {
	return classify(-5)*100 + classify(0)*10 + classify(9)
}
`
	_, term := parseRun(t, src)
	wantExit(t, term, 12)
}

func TestParseArraysAndFloats(t *testing.T) {
	m, term := parseRun(t, `
func main() {
	a := allocf(4)
	for i := 0; i < 4; i = i + 1 {
		a[i] = float(i) * 0.5
	}
	s := 0.0
	for i := 0; i < 4; i = i + 1 {
		s = s + a[i]
	}
	out(s)
	b := alloci(3)
	b[0] = 7
	b[1] = b[0] * 2
	b[2] = b[0] + b[1]
	out(b[2])
}
`)
	wantExit(t, term, 0)
	vals := outFloats(t, m)
	if vals[0] != 3.0 {
		t.Errorf("float array sum = %v", vals[0])
	}
	if got := outInts(t, m); got[1] != 21 {
		t.Errorf("int array value = %d", got[1])
	}
}

func TestParseFunctionsAndRecursion(t *testing.T) {
	_, term := parseRun(t, `
func fib(n int) int {
	if n < 2 {
		return n
	}
	return fib(n-1) + fib(n-2)
}
func main() int {
	return fib(10)
}
`)
	wantExit(t, term, 55)
}

func TestParseFloatFunctions(t *testing.T) {
	m, term := parseRun(t, `
func avg(a float, b float) float {
	return (a + b) / 2.0
}
func main() {
	out(avg(3.0, 5.0))
	print(avg(1.0, 2.0))
}
`)
	wantExit(t, term, 0)
	if got := outFloats(t, m); got[0] != 4.0 {
		t.Errorf("avg = %v", got[0])
	}
	if !strings.Contains(m.Console(), "1.5") {
		t.Errorf("console = %q", m.Console())
	}
}

func TestParseArrayParams(t *testing.T) {
	m, term := parseRun(t, `
func fill(a []float, n int) {
	for i := 0; i < n; i = i + 1 {
		a[i] = float(i * i)
	}
}
func total(a []float, n int) float {
	s := 0.0
	for i := 0; i < n; i = i + 1 {
		s = s + a[i]
	}
	return s
}
func main() {
	a := allocf(5)
	fill(a, 5)
	out(total(a, 5))
}
`)
	wantExit(t, term, 0)
	if got := outFloats(t, m); got[0] != 30 { // 0+1+4+9+16
		t.Errorf("total = %v", got[0])
	}
}

func TestParseLogicalAndUnary(t *testing.T) {
	_, term := parseRun(t, `
func main() int {
	a := 5
	b := -a
	ok := (a > 0 && b < 0) || a == 99
	bad := !(a == 5)
	return ok*10 + bad
}
`)
	wantExit(t, term, 10)
}

func TestParseBitwise(t *testing.T) {
	_, term := parseRun(t, `
func main() int {
	x := 0xF0 | 0x0F
	y := x ^ 0xFF
	z := (1 << 4) + (256 >> 4)
	return y + z
}
`)
	wantExit(t, term, 32)
}

func TestParseBreakContinue(t *testing.T) {
	_, term := parseRun(t, `
func main() int {
	sum := 0
	i := -1
	for 1 == 1 {
		i = i + 1
		if i == 8 {
			break
		}
		if i % 2 == 1 {
			continue
		}
		sum = sum + i
	}
	return sum
}
`)
	wantExit(t, term, 12) // 0+2+4+6
}

func TestParseAssertAndExit(t *testing.T) {
	_, term := parseRun(t, `
func main() {
	assert(1 == 1, 5)
	assert(2 == 3, 77)
}
`)
	if term.Reason != vm.ReasonAssert || term.Code != 77 {
		t.Fatalf("term = %v", term)
	}
	_, term = parseRun(t, `
func main() {
	exit(9)
	out(1)
}
`)
	wantExit(t, term, 9)
}

func TestParseSemicolonsOptional(t *testing.T) {
	_, term := parseRun(t, `
func main() int { x := 3; y := 4; return x*x + y*y }
`)
	wantExit(t, term, 25)
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name, src, sub string
	}{
		{"undefined var", `func main() { x = 1 }`, "undeclared"},
		{"undefined var expr", `func main() int { return zap }`, "undefined variable"},
		{"undefined func", `func main() { zap() }`, "undefined function"},
		{"type mismatch", `func main() int { return 1 + 2.0 }`, "applied to int and float"},
		{"redeclare type", "func main() {\n x := 1\n x := 2.0\n}", "redeclared"},
		{"not array", `func main() { x := 1; y := x[0] }`, "not an array"},
		{"float index", `func main() { a := alloci(3); b := a[1.5] }`, "index must be int"},
		{"store type", `func main() { a := alloci(3); a[0] = 1.5 }`, "storing float"},
		{"if cond type", `func main() { if 1.5 { } }`, "condition must be int"},
		{"bad char", "func main() { @ }", "unexpected character"},
		{"missing brace", "func main() {", "unexpected end of input"},
		{"void in expr", "func v() {}\nfunc main() int { return v() }", "void function"},
		{"assert literal", `func main() { c := 3; assert(1 == 1, c) }`, "integer literal"},
		{"dup func", "func f() {}\nfunc f() {}\nfunc main() {}", "duplicate function"},
		{"continue in 3-clause", `func main() { for i := 0; i < 3; i = i + 1 { continue } }`, "continue is not supported"},
		{"bad type", `func f(x string) {} func main() {}`, "expected a type"},
		{"assign void", `func v() {} func main() { x := v() }`, "void"},
		{"send scalar", `func main() { x := 1; send(x, 1, 0, 0) }`, "buffer must be an array"},
		{"reduce op", `func main() { a := allocf(1); b := allocf(1); allreduce(a, b, 1, 7) }`, "sum, max or min"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseAndCompile("t", tt.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tt.sub) {
				t.Errorf("error %q missing %q", err, tt.sub)
			}
		})
	}
}

func TestParseErrorLineNumbers(t *testing.T) {
	_, err := ParseAndCompile("t", "func main() {\n x := 1\n y = 2\n}")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("err = %T (%v)", err, err)
	}
	if pe.Line != 3 {
		t.Errorf("line = %d, want 3", pe.Line)
	}
}

func TestParseHexAndBigLiterals(t *testing.T) {
	_, term := parseRun(t, `
func main() int {
	a := 0xff
	b := 9223372036854775807
	if b > 0 {
		return a
	}
	return 0
}
`)
	wantExit(t, term, 255)
}

// TestParsedTextEquivalentToBuilderAST compiles the same program through
// both front ends and compares guest outputs bit for bit.
func TestParsedTextEquivalentToBuilderAST(t *testing.T) {
	src := `
func main() {
	n := 16
	a := allocf(n)
	seed := 42
	for i := 0; i < n; i = i + 1 {
		seed = seed * 1103515245 + 12345
		a[i] = float(seed % 1000) / 10.0
	}
	s := 0.0
	for i := 0; i < n; i = i + 1 {
		s = s + a[i] * a[i]
	}
	out(s)
}
`
	textProg, err := ParseAndCompile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	ast := mainProg(0,
		Let("n", I(16)),
		Let("a", Alloc(V("n"))),
		Let("seed", I(42)),
		For{Var: "i", From: I(0), To: V("n"), Body: Block(
			Set("seed", Add(Mul(V("seed"), I(1103515245)), I(12345))),
			SetAt(V("a"), V("i"), Div(ToFloat(Mod(V("seed"), I(1000))), F(10))),
		)},
		Let("s", F(0)),
		For{Var: "i", From: I(0), To: V("n"), Body: Block(
			Set("s", Add(V("s"), Mul(AtF(V("a"), V("i")), AtF(V("a"), V("i"))))),
		)},
		OutFloat{E: V("s")},
	)
	astProg, err := Compile(ast)
	if err != nil {
		t.Fatal(err)
	}
	m1 := vm.New(textProg, vm.Config{})
	m2 := vm.New(astProg, vm.Config{})
	t1, t2 := m1.Run(), m2.Run()
	if t1.Reason != vm.ReasonExited || t2.Reason != vm.ReasonExited {
		t.Fatalf("terms: %v / %v", t1, t2)
	}
	if string(m1.Output()) != string(m2.Output()) {
		t.Errorf("outputs differ: % x vs % x", m1.Output(), m2.Output())
	}
}

func TestParseMPIProgramText(t *testing.T) {
	// Full MPI surface from source text, executed on a 3-rank world via the
	// apps-level test below; here we verify it parses and compiles.
	src := `
func main() {
	data := allocf(2)
	red := allocf(2)
	me := rank()
	data[0] = float(me)
	data[1] = float(me * 10)
	barrier()
	bcast(data, 2, 0)
	reduce(data, red, 2, sum, 0)
	allreduce(data, red, 2, max)
	idata := alloci(1)
	idata[0] = me
	if me == 0 {
		recv(idata, 1, 1, 3)
		out(idata[0])
	}
	if me == 1 {
		send(idata, 1, 0, 3)
	}
}
`
	if _, err := ParseAndCompile("mpitext", src); err != nil {
		t.Fatal(err)
	}
}

func TestParseUnaryAndCasts(t *testing.T) {
	m, term := parseRun(t, `
func main() {
	x := 7
	out(-x)
	out(float(-x))
	out(int(2.9))
	out(int(3.0) + int(float(4)))
	y := 2.5
	out(-y)
	out(!(1 == 1))
	out(!(1 == 2))
}
`)
	wantExit(t, term, 0)
	got := outInts(t, m)
	if got[0] != -7 {
		t.Errorf("-x = %d", got[0])
	}
	if got[2] != 2 || got[3] != 7 {
		t.Errorf("casts = %d, %d", got[2], got[3])
	}
	if got[5] != 0 || got[6] != 1 {
		t.Errorf("negation = %d, %d", got[5], got[6])
	}
}

func TestParseNestedContinueScoping(t *testing.T) {
	// A continue inside a nested condition-only loop within a three-clause
	// for is fine; the restriction only applies to the three-clause body's
	// own level.
	_, term := parseRun(t, `
func main() int {
	total := 0
	for i := 0; i < 3; i = i + 1 {
		j := 0
		for j < 5 {
			j = j + 1
			if j % 2 == 0 {
				continue
			}
			total = total + 1
		}
	}
	return total
}
`)
	wantExit(t, term, 9) // 3 outer iterations x 3 odd js
}

func TestParseMoreErrors(t *testing.T) {
	tests := []struct {
		name, src, sub string
	}{
		{"bad array elem type", `func f(a []string) {} func main() {}`, "expected int or float"},
		{"print argc", `func main() { print(1, 2) }`, "takes 1 arguments"},
		{"assert argc", `func main() { assert(1) }`, "takes 2 arguments"},
		{"barrier argc", `func main() { barrier(1) }`, "takes 0 arguments"},
		{"send argc", `func main() { a := alloci(1); send(a, 1, 0) }`, "takes 4 arguments"},
		{"cast argc", `func main() { x := int(1, 2) }`, "takes 1 argument"},
		{"alloc arg", `func main() { a := alloci(1.5) }`, "one int argument"},
		{"for cond type", `func main() { for 1.5 { } }`, "condition must be int"},
		{"3clause cond type", `func main() { for i := 0; 2.5; i = i + 1 { } }`, "condition must be int"},
		{"store into scalar", `func main() { x := 1; x[0] = 2 }`, "not an array"},
		{"unary bang float", `func main() { x := !1.5 }`, "needs an int operand"},
		{"missing paren", `func main() { x := (1 + 2 }`, `expected ")"`},
		{"stray punct", `func main() { ; } func f() } {`, "expected"},
		{"garbage top level", `zap()`, "expected func"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseAndCompile("t", tt.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tt.sub) {
				t.Errorf("error %q missing %q", err, tt.sub)
			}
		})
	}
}

func TestParseTypeStrings(t *testing.T) {
	for pt, want := range map[parseType]string{
		ptVoid: "void", ptInt: "int", ptFloat: "float",
		ptIntArr: "[]int", ptFloatArr: "[]float",
	} {
		if pt.String() != want {
			t.Errorf("parseType(%d) = %q, want %q", pt, pt.String(), want)
		}
	}
	if parseType(99).String() != "?" {
		t.Error("unknown parse type")
	}
}

func TestLexEdgeCases(t *testing.T) {
	toks, err := lex("a 0x1F 2.5e3 1e-2 // trailing comment\nb")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokKind{tokIdent, tokInt, tokFloat, tokFloat, tokIdent, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("toks = %+v", toks)
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("tok %d = %+v, want kind %d", i, toks[i], k)
		}
	}
	if toks[4].line != 2 {
		t.Errorf("line tracking: %+v", toks[4])
	}
	if _, err := lex("a $ b"); err == nil {
		t.Error("bad character accepted")
	}
}
