package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// The text front-end: a lexer and recursive-descent parser producing the
// same AST the Go builder API produces, so guest programs can be written as
// source files (see Parse). The grammar is a small C/Go hybrid:
//
//	func main() {
//	    n := 10
//	    s := 0.0
//	    a := allocf(n)
//	    for i := 0; i < n; i = i + 1 {
//	        a[i] = float(i) * 0.5
//	        s = s + a[i]
//	    }
//	    out(s)
//	}
//
// Variables are int or float by inference; arrays are declared with
// alloci(n) / allocf(n) and indexed with a[i] (the parser tracks element
// types). Builtins: print, out, assert, exit, int, float, alloci, allocf,
// rank, size, send, recv, barrier, bcast, reduce, allreduce.

type tokKind int

const (
	tokEOF tokKind = iota + 1
	tokIdent
	tokInt
	tokFloat
	tokPunct // operators and delimiters
)

type token struct {
	kind tokKind
	text string
	line int
}

// ParseError reports a syntax or type error with its source line.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("lang: line %d: %s", e.Line, e.Msg)
}

// lex splits source text into tokens. Comments run from // to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], line})
			i = j
		case unicode.IsDigit(rune(c)):
			j := i
			isFloat := false
			if src[j] == '0' && j+1 < n && (src[j+1] == 'x' || src[j+1] == 'X') {
				j += 2
				for j < n && isHexDigit(src[j]) {
					j++
				}
			} else {
				for j < n && (unicode.IsDigit(rune(src[j])) || src[j] == '.' || src[j] == 'e' || src[j] == 'E' ||
					((src[j] == '+' || src[j] == '-') && (src[j-1] == 'e' || src[j-1] == 'E'))) {
					if src[j] == '.' || src[j] == 'e' || src[j] == 'E' {
						isFloat = true
					}
					j++
				}
			}
			kind := tokInt
			if isFloat {
				kind = tokFloat
			}
			toks = append(toks, token{kind, src[i:j], line})
			i = j
		default:
			// Multi-character operators first.
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case ":=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>":
				toks = append(toks, token{tokPunct, two, line})
				i += 2
				continue
			}
			if strings.ContainsRune("+-*/%()[]{},;<>=!&|^", rune(c)) {
				toks = append(toks, token{tokPunct, string(c), line})
				i++
				continue
			}
			return nil, &ParseError{Line: line, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}

func isHexDigit(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
