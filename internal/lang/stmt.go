package lang

import (
	"chaser/internal/isa"
)

func (f *fnCtx) stmts(list []Stmt) error {
	for _, s := range list {
		if err := f.stmt(s); err != nil {
			return err
		}
		if f.iDepth != 0 || f.fDepth != 0 {
			return f.errf("internal: unbalanced evaluation stack after %T", s)
		}
	}
	return nil
}

//nolint:gocyclo // one case per statement kind.
func (f *fnCtx) stmt(s Stmt) error {
	c := f.c
	switch x := s.(type) {
	case blockStmt:
		// Statement splice from the parser's three-clause for lowering.
		return f.stmts(x.stmts)

	case Decl:
		t, err := f.expr(x.Init)
		if err != nil {
			return err
		}
		// Variables are function-scoped; a re-declaration with the same
		// type reuses the slot (so loop bodies can Let the same temps),
		// while a type change is an error.
		vi, exists := f.vars[x.Name]
		if exists {
			if vi.typ != t {
				return f.errf("redeclaration of %q as %s (was %s)", x.Name, t, vi.typ)
			}
		} else {
			vi, err = f.newLocal(x.Name, t)
			if err != nil {
				return err
			}
		}
		f.storeVar(vi, t)
		return nil

	case Assign:
		vi, ok := f.vars[x.Name]
		if !ok {
			return f.errf("assignment to undefined variable %q", x.Name)
		}
		t, err := f.expr(x.E)
		if err != nil {
			return err
		}
		if t != vi.typ {
			return f.errf("assigning %s to %s variable %q", t, vi.typ, x.Name)
		}
		f.storeVar(vi, t)
		return nil

	case Store:
		addr, err := f.arrayAddr(x.Base, x.Idx)
		if err != nil {
			return err
		}
		t, err := f.expr(x.Val)
		if err != nil {
			return err
		}
		if t == TFloat {
			c.emit(isa.Instr{Op: isa.OpFSt, Rs1: addr, Rs2: f.topFloat()})
			f.popFloat()
		} else {
			c.emit(isa.Instr{Op: isa.OpSt, Rs1: addr, Rs2: f.topInt()})
			f.popInt()
		}
		f.popInt() // address
		return nil

	case If:
		elseL := c.freshLabel("else")
		endL := c.freshLabel("endif")
		if err := f.cond(x.Cond, elseL); err != nil {
			return err
		}
		if err := f.stmts(x.Then); err != nil {
			return err
		}
		if len(x.Else) > 0 {
			c.emitRef(isa.Instr{Op: isa.OpJmp}, endL)
		}
		c.bind(elseL)
		if len(x.Else) > 0 {
			if err := f.stmts(x.Else); err != nil {
				return err
			}
			c.bind(endL)
		}
		return nil

	case While:
		loopL := c.freshLabel("while")
		endL := c.freshLabel("endwhile")
		c.bind(loopL)
		if err := f.cond(x.Cond, endL); err != nil {
			return err
		}
		f.loops = append(f.loops, loopLabels{breakL: endL, continueL: loopL})
		err := f.stmts(x.Body)
		f.loops = f.loops[:len(f.loops)-1]
		if err != nil {
			return err
		}
		c.emitRef(isa.Instr{Op: isa.OpJmp}, loopL)
		c.bind(endL)
		return nil

	case Break:
		if len(f.loops) == 0 {
			return f.errf("break outside loop")
		}
		c.emitRef(isa.Instr{Op: isa.OpJmp}, f.loops[len(f.loops)-1].breakL)
		return nil

	case Continue:
		if len(f.loops) == 0 {
			return f.errf("continue outside loop")
		}
		c.emitRef(isa.Instr{Op: isa.OpJmp}, f.loops[len(f.loops)-1].continueL)
		return nil

	case For:
		return f.forStmt(x)

	case Return:
		if x.E == nil {
			if f.fn.Ret != 0 {
				return f.errf("return without value in %s function", f.fn.Ret)
			}
		} else {
			t, err := f.expr(x.E)
			if err != nil {
				return err
			}
			if t != f.fn.Ret {
				return f.errf("returning %s from %s function", t, f.fn.Ret)
			}
			if t == TFloat {
				c.emit(isa.Instr{Op: isa.OpFMov, Rd: isa.F0, Rs1: f.topFloat()})
				f.popFloat()
			} else {
				c.emit(isa.Instr{Op: isa.OpMov, Rd: isa.R0, Rs1: f.topInt()})
				f.popInt()
			}
		}
		c.emitRef(isa.Instr{Op: isa.OpJmp}, f.retLbl)
		return nil

	case CallStmt:
		callee, ok := c.sigs[x.Name]
		if !ok {
			return f.errf("call to undefined function %q", x.Name)
		}
		return f.emitCall(callee, x.Args)

	case PrintInt:
		return f.sysInt1(x.E, isa.SysPrintInt)
	case OutInt:
		return f.sysInt1(x.E, isa.SysOutInt)
	case PrintFloat:
		return f.sysFloat1(x.E, isa.SysPrintFloat)
	case OutFloat:
		return f.sysFloat1(x.E, isa.SysOutFloat)

	case Assert:
		t, err := f.expr(x.Cond)
		if err != nil {
			return err
		}
		if t != TInt {
			return f.errf("assert condition must be int")
		}
		c.emit(isa.Instr{Op: isa.OpMovI, Rd: isa.R2, Imm: x.Code})
		c.emit(isa.Instr{Op: isa.OpSyscall, Imm: int64(isa.SysAssert)})
		f.popInt()
		return nil

	case Exit:
		return f.sysInt1(x.Code, isa.SysExit)

	case MPISend:
		return f.mpiSendRecv(isa.SysMPISend, x.Buf, x.Count, x.Dtype, x.Dest, x.Tag)
	case MPIRecv:
		return f.mpiSendRecv(isa.SysMPIRecv, x.Buf, x.Count, x.Dtype, x.Source, x.Tag)

	case Barrier:
		c.emit(isa.Instr{Op: isa.OpSyscall, Imm: int64(isa.SysMPIBarrier)})
		return nil

	case Bcast:
		// Args: buf R1, count R2, dtype R3, root R4.
		for _, e := range []Expr{x.Buf, x.Count, x.Root} {
			if err := f.intArg(e); err != nil {
				return err
			}
		}
		// Stack now holds buf@R1, count@R2, root@R3; shuffle for dtype.
		c.emit(isa.Instr{Op: isa.OpMov, Rd: isa.R4, Rs1: isa.R3})
		c.emit(isa.Instr{Op: isa.OpMovI, Rd: isa.R3, Imm: x.Dtype})
		c.emit(isa.Instr{Op: isa.OpSyscall, Imm: int64(isa.SysMPIBcast)})
		f.iDepth = 0
		return nil

	case Reduce:
		// Args: sendbuf R1, recvbuf R2, count R3, dtype R4, op R5, root R6.
		for _, e := range []Expr{x.SendBuf, x.RecvBuf, x.Count, x.Root} {
			if err := f.intArg(e); err != nil {
				return err
			}
		}
		// Stack: send@R1 recv@R2 count@R3 root@R4.
		c.emit(isa.Instr{Op: isa.OpMov, Rd: isa.R6, Rs1: isa.R4})
		c.emit(isa.Instr{Op: isa.OpMovI, Rd: isa.R4, Imm: x.Dtype})
		c.emit(isa.Instr{Op: isa.OpMovI, Rd: isa.R5, Imm: x.ReduceOp})
		c.emit(isa.Instr{Op: isa.OpSyscall, Imm: int64(isa.SysMPIReduce)})
		f.iDepth = 0
		return nil

	case Allreduce:
		// Args: sendbuf R1, recvbuf R2, count R3, dtype R4, op R5.
		for _, e := range []Expr{x.SendBuf, x.RecvBuf, x.Count} {
			if err := f.intArg(e); err != nil {
				return err
			}
		}
		c.emit(isa.Instr{Op: isa.OpMovI, Rd: isa.R4, Imm: x.Dtype})
		c.emit(isa.Instr{Op: isa.OpMovI, Rd: isa.R5, Imm: x.ReduceOp})
		c.emit(isa.Instr{Op: isa.OpSyscall, Imm: int64(isa.SysMPIAllreduce)})
		f.iDepth = 0
		return nil
	}
	return f.errf("unsupported statement %T", s)
}

func (f *fnCtx) storeVar(vi varInfo, t Type) {
	if t == TFloat {
		f.c.emit(isa.Instr{Op: isa.OpFSt, Rs1: isa.FP, Rs2: f.topFloat(), Imm: vi.off})
		f.popFloat()
	} else {
		f.c.emit(isa.Instr{Op: isa.OpSt, Rs1: isa.FP, Rs2: f.topInt(), Imm: vi.off})
		f.popInt()
	}
}

// cond evaluates an int condition and branches to elseL when it is zero.
func (f *fnCtx) cond(e Expr, elseL string) error {
	t, err := f.expr(e)
	if err != nil {
		return err
	}
	if t != TInt {
		return f.errf("condition must be int, got %s", t)
	}
	r := f.topInt()
	f.popInt()
	f.c.emit(isa.Instr{Op: isa.OpCmpI, Rs1: r, Imm: 0})
	f.c.emitRef(isa.Instr{Op: isa.OpJe}, elseL)
	return nil
}

func (f *fnCtx) forStmt(x For) error {
	c := f.c
	// Loop variables may be reused by later loops in the same function.
	vi, exists := f.vars[x.Var]
	if exists {
		if vi.typ != TInt {
			return f.errf("for variable %q is %s, want int", x.Var, vi.typ)
		}
	} else {
		var err error
		vi, err = f.newLocal(x.Var, TInt)
		if err != nil {
			return err
		}
	}
	f.forSeq++
	end, err := f.newLocal(hiddenForName(f.forSeq), TInt)
	if err != nil {
		return err
	}
	// var = From
	if t, err := f.expr(x.From); err != nil {
		return err
	} else if t != TInt {
		return f.errf("for %q: bound must be int", x.Var)
	}
	f.storeVar(vi, TInt)
	// $end = To
	if t, err := f.expr(x.To); err != nil {
		return err
	} else if t != TInt {
		return f.errf("for %q: bound must be int", x.Var)
	}
	f.storeVar(end, TInt)

	loopL := c.freshLabel("for")
	incrL := c.freshLabel("forinc")
	endL := c.freshLabel("endfor")
	c.bind(loopL)
	c.emit(isa.Instr{Op: isa.OpLd, Rd: isa.R13, Rs1: isa.FP, Imm: vi.off})
	c.emit(isa.Instr{Op: isa.OpLd, Rd: isa.R12, Rs1: isa.FP, Imm: end.off})
	c.emit(isa.Instr{Op: isa.OpCmp, Rs1: isa.R13, Rs2: isa.R12})
	c.emitRef(isa.Instr{Op: isa.OpJge}, endL)
	f.loops = append(f.loops, loopLabels{breakL: endL, continueL: incrL})
	bodyErr := f.stmts(x.Body)
	f.loops = f.loops[:len(f.loops)-1]
	if bodyErr != nil {
		return bodyErr
	}
	c.bind(incrL)
	c.emit(isa.Instr{Op: isa.OpLd, Rd: isa.R13, Rs1: isa.FP, Imm: vi.off})
	c.emit(isa.Instr{Op: isa.OpAddI, Rd: isa.R13, Rs1: isa.R13, Imm: 1})
	c.emit(isa.Instr{Op: isa.OpSt, Rs1: isa.FP, Rs2: isa.R13, Imm: vi.off})
	c.emitRef(isa.Instr{Op: isa.OpJmp}, loopL)
	c.bind(endL)
	return nil
}

func hiddenForName(seq int) string {
	return "$for_" + itoa10(seq)
}

func itoa10(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// sysInt1 evaluates an int expression into R1 and issues the syscall.
func (f *fnCtx) sysInt1(e Expr, sys isa.Sys) error {
	if err := f.intArg(e); err != nil {
		return err
	}
	f.c.emit(isa.Instr{Op: isa.OpSyscall, Imm: int64(sys)})
	f.popInt()
	return nil
}

// sysFloat1 evaluates a float expression into F1 and issues the syscall.
func (f *fnCtx) sysFloat1(e Expr, sys isa.Sys) error {
	t, err := f.expr(e)
	if err != nil {
		return err
	}
	if t != TFloat {
		return f.errf("expected float argument, got %s", t)
	}
	f.c.emit(isa.Instr{Op: isa.OpSyscall, Imm: int64(sys)})
	f.popFloat()
	return nil
}

// intArg evaluates an int expression onto the int stack (used to marshal
// syscall arguments into R1..R6 positionally).
func (f *fnCtx) intArg(e Expr) error {
	t, err := f.expr(e)
	if err != nil {
		return err
	}
	if t != TInt {
		return f.errf("expected int argument, got %s", t)
	}
	return nil
}

// mpiSendRecv marshals buf/count/peer/tag into R1..R5 with the datatype
// constant in R3 and issues the syscall.
func (f *fnCtx) mpiSendRecv(sys isa.Sys, buf, count Expr, dtype int64, peer, tag Expr) error {
	c := f.c
	for _, e := range []Expr{buf, count, peer, tag} {
		if err := f.intArg(e); err != nil {
			return err
		}
	}
	// Stack: buf@R1 count@R2 peer@R3 tag@R4; want dtype@R3 peer@R4 tag@R5.
	c.emit(isa.Instr{Op: isa.OpMov, Rd: isa.R5, Rs1: isa.R4})
	c.emit(isa.Instr{Op: isa.OpMov, Rd: isa.R4, Rs1: isa.R3})
	c.emit(isa.Instr{Op: isa.OpMovI, Rd: isa.R3, Imm: dtype})
	c.emit(isa.Instr{Op: isa.OpSyscall, Imm: int64(sys)})
	f.iDepth = 0
	return nil
}
