package lang

import (
	"fmt"
	"math"
	"strconv"

	"chaser/internal/isa"
)

// parseType is the parser's static view of a value: scalars plus array
// references (which carry their element type so indexing and MPI datatypes
// resolve without annotations).
type parseType int

const (
	ptVoid parseType = iota
	ptInt
	ptFloat
	ptIntArr
	ptFloatArr
)

func (t parseType) String() string {
	switch t {
	case ptVoid:
		return "void"
	case ptInt:
		return "int"
	case ptFloat:
		return "float"
	case ptIntArr:
		return "[]int"
	case ptFloatArr:
		return "[]float"
	}
	return "?"
}

func (t parseType) scalar() Type {
	if t == ptFloat {
		return TFloat
	}
	return TInt
}

func (t parseType) elem() parseType {
	switch t {
	case ptIntArr:
		return ptInt
	case ptFloatArr:
		return ptFloat
	}
	return ptVoid
}

type funcSig struct {
	params []parseType
	ret    parseType
}

type parser struct {
	toks []token
	pos  int
	sigs map[string]funcSig
	vars map[string]parseType
}

// Parse compiles guest-language source text into a Program AST. The
// language is described in lex.go's package comment; Parse+Compile is the
// text pipeline, while the exported AST constructors are the Go-embedded
// pipeline.
func Parse(name, src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, sigs: make(map[string]funcSig)}
	if err := p.collectSignatures(); err != nil {
		return nil, err
	}
	prog := &Program{Name: name}
	for !p.at(tokEOF, "") {
		fn, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		prog.Funcs = append(prog.Funcs, fn)
	}
	return prog, nil
}

// ParseAndCompile parses source and compiles it to a guest program.
func ParseAndCompile(name, src string) (*isa.Program, error) {
	prog, err := Parse(name, src)
	if err != nil {
		return nil, err
	}
	return Compile(prog)
}

// collectSignatures pre-scans for function headers so calls can be typed
// regardless of declaration order.
func (p *parser) collectSignatures() error {
	save := p.pos
	defer func() { p.pos = save }()
	for !p.at(tokEOF, "") {
		if !p.at(tokIdent, "func") {
			p.pos++
			continue
		}
		p.pos++
		name := p.cur().text
		p.pos++
		if !p.accept("(") {
			return p.errf("expected ( after func %s", name)
		}
		var sig funcSig
		for !p.accept(")") {
			if len(sig.params) > 0 && !p.accept(",") {
				return p.errf("expected , in parameter list of %s", name)
			}
			p.pos++ // param name
			t, err := p.parseType()
			if err != nil {
				return err
			}
			sig.params = append(sig.params, t)
		}
		if !p.at(tokPunct, "{") {
			t, err := p.parseType()
			if err != nil {
				return err
			}
			sig.ret = t
		}
		if _, dup := p.sigs[name]; dup {
			return p.errf("duplicate function %q", name)
		}
		p.sigs[name] = sig
		// Skip the body.
		if !p.accept("{") {
			return p.errf("expected { after func %s header", name)
		}
		depth := 1
		for depth > 0 && !p.at(tokEOF, "") {
			if p.at(tokPunct, "{") {
				depth++
			}
			if p.at(tokPunct, "}") {
				depth--
			}
			p.pos++
		}
	}
	return nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) line() int   { return p.cur().line }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(punct string) bool {
	if p.at(tokPunct, punct) || (p.cur().kind == tokIdent && p.cur().text == punct) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(punct string) error {
	if !p.accept(punct) {
		return p.errf("expected %q, got %q", punct, p.cur().text)
	}
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line(), Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parseType() (parseType, error) {
	if p.accept("[") {
		if err := p.expect("]"); err != nil {
			return 0, err
		}
		switch {
		case p.accept("int"):
			return ptIntArr, nil
		case p.accept("float"):
			return ptFloatArr, nil
		}
		return 0, p.errf("expected int or float after []")
	}
	switch {
	case p.accept("int"):
		return ptInt, nil
	case p.accept("float"):
		return ptFloat, nil
	}
	return 0, p.errf("expected a type, got %q", p.cur().text)
}

func (p *parser) parseFunc() (*Func, error) {
	if !p.accept("func") {
		return nil, p.errf("expected func, got %q", p.cur().text)
	}
	if p.cur().kind != tokIdent {
		return nil, p.errf("expected function name")
	}
	name := p.next().text
	fn := &Func{Name: name}
	p.vars = make(map[string]parseType)
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for !p.accept(")") {
		if len(fn.Params) > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		if p.cur().kind != tokIdent {
			return nil, p.errf("expected parameter name")
		}
		pname := p.next().text
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		p.vars[pname] = t
		fn.Params = append(fn.Params, Param{Name: pname, Type: t.scalar()})
	}
	if !p.at(tokPunct, "{") {
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fn.Ret = t.scalar()
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.accept("}") {
		if p.at(tokEOF, "") {
			return nil, p.errf("unexpected end of input in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			out = append(out, s)
		}
		p.accept(";")
	}
	return out, nil
}

//nolint:gocyclo // one arm per statement form.
func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.at(tokIdent, "if"):
		return p.parseIf()
	case p.at(tokIdent, "for"):
		return p.parseFor()
	case p.at(tokIdent, "return"):
		p.pos++
		if p.at(tokPunct, "}") || p.at(tokPunct, ";") {
			return Return{}, nil
		}
		e, _, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return Return{E: e}, nil
	case p.at(tokIdent, "break"):
		p.pos++
		return Break{}, nil
	case p.at(tokIdent, "continue"):
		p.pos++
		return Continue{}, nil
	}
	return p.parseSimpleStmt()
}

// parseSimpleStmt handles := / = / a[i]= / call statements.
func (p *parser) parseSimpleStmt() (Stmt, error) {
	if p.cur().kind != tokIdent {
		return nil, p.errf("unexpected token %q", p.cur().text)
	}
	name := p.cur().text
	nxt := p.toks[p.pos+1]

	switch {
	case nxt.kind == tokPunct && nxt.text == ":=":
		p.pos += 2
		e, t, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if t == ptVoid {
			return nil, p.errf("cannot assign a void value to %q", name)
		}
		if old, exists := p.vars[name]; exists && old != t {
			return nil, p.errf("%q redeclared as %s (was %s)", name, t, old)
		}
		p.vars[name] = t
		return Decl{Name: name, Init: e}, nil

	case nxt.kind == tokPunct && nxt.text == "=":
		nameLine := p.line()
		p.pos += 2
		e, t, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		vt, ok := p.vars[name]
		if !ok {
			return nil, &ParseError{Line: nameLine, Msg: fmt.Sprintf("assignment to undeclared variable %q", name)}
		}
		if vt.scalar() != t.scalar() {
			return nil, p.errf("assigning %s to %s variable %q", t, vt, name)
		}
		return Assign{Name: name, E: e}, nil

	case nxt.kind == tokPunct && nxt.text == "[":
		// a[i] = v
		arrType, ok := p.vars[name]
		if !ok || arrType.elem() == ptVoid {
			return nil, p.errf("%q is not an array", name)
		}
		p.pos += 2
		idx, it, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if it != ptInt {
			return nil, p.errf("array index must be int")
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		val, vt, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if vt.scalar() != arrType.elem().scalar() {
			return nil, p.errf("storing %s into %s array", vt, arrType)
		}
		return Store{Base: V(name), Idx: idx, Val: val}, nil

	case nxt.kind == tokPunct && nxt.text == "(":
		p.pos++ // consume the callee name; parseCallStmt expects "(" next
		return p.parseCallStmt(name)
	}
	return nil, p.errf("unexpected statement starting with %q", name)
}

func (p *parser) parseIf() (Stmt, error) {
	p.pos++ // if
	cond, t, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if t != ptInt {
		return nil, p.errf("if condition must be int")
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	var els []Stmt
	if p.accept("else") {
		if p.at(tokIdent, "if") {
			s, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			els = []Stmt{s}
		} else {
			els, err = p.parseBlock()
			if err != nil {
				return nil, err
			}
		}
	}
	return If{Cond: cond, Then: then, Else: els}, nil
}

// parseFor accepts `for cond { }` and `for init; cond; post { }`.
func (p *parser) parseFor() (Stmt, error) {
	p.pos++ // for
	// Try the three-clause form by looking for the first ';' before '{'.
	hasInit := false
	for i := p.pos; i < len(p.toks); i++ {
		if p.toks[i].kind == tokPunct && p.toks[i].text == "{" {
			break
		}
		if p.toks[i].kind == tokPunct && p.toks[i].text == ";" {
			hasInit = true
			break
		}
	}
	if !hasInit {
		cond, t, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if t != ptInt {
			return nil, p.errf("for condition must be int")
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return While{Cond: cond, Body: body}, nil
	}

	initStmt, err := p.parseSimpleStmt()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	cond, t, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if t != ptInt {
		return nil, p.errf("for condition must be int")
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	post, err := p.parseSimpleStmt()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	// Lower to: init; while cond { body; post }. `continue` would skip the
	// post statement, so it is rejected inside three-clause for bodies.
	if containsContinue(body) {
		return nil, p.errf("continue is not supported inside three-clause for loops (use a condition-only for)")
	}
	loop := While{Cond: cond, Body: append(body, post)}
	return blockStmt{stmts: []Stmt{initStmt, loop}}, nil
}

// blockStmt splices several statements where one is expected (used by the
// three-clause for lowering). The compiler flattens it.
type blockStmt struct{ stmts []Stmt }

func (blockStmt) isStmt() {}

func containsContinue(stmts []Stmt) bool {
	for _, s := range stmts {
		switch x := s.(type) {
		case Continue:
			return true
		case If:
			if containsContinue(x.Then) || containsContinue(x.Else) {
				return true
			}
		case blockStmt:
			if containsContinue(x.stmts) {
				return true
			}
			// Nested loops own their continues; do not descend into While/For.
		}
	}
	return false
}

var reduceOps = map[string]int64{
	"sum": int64(isa.ReduceSum),
	"max": int64(isa.ReduceMax),
	"min": int64(isa.ReduceMin),
}

// parseCallStmt handles statement-position calls: builtins with side
// effects and user functions.
//
//nolint:gocyclo // one arm per builtin.
func (p *parser) parseCallStmt(name string) (Stmt, error) {
	args, types, err := p.parseArgs(name)
	if err != nil {
		return nil, err
	}
	argc := func(n int) error {
		if len(args) != n {
			return p.errf("%s takes %d arguments, got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "print":
		if err := argc(1); err != nil {
			return nil, err
		}
		if types[0] == ptFloat {
			return PrintFloat{E: args[0]}, nil
		}
		return PrintInt{E: args[0]}, nil
	case "out":
		if err := argc(1); err != nil {
			return nil, err
		}
		if types[0] == ptFloat {
			return OutFloat{E: args[0]}, nil
		}
		return OutInt{E: args[0]}, nil
	case "assert":
		if err := argc(2); err != nil {
			return nil, err
		}
		code, ok := args[1].(IntLit)
		if !ok {
			return nil, p.errf("assert code must be an integer literal")
		}
		return Assert{Cond: args[0], Code: code.V}, nil
	case "exit":
		if err := argc(1); err != nil {
			return nil, err
		}
		return Exit{Code: args[0]}, nil
	case "barrier":
		if err := argc(0); err != nil {
			return nil, err
		}
		return Barrier{}, nil
	case "send", "recv":
		if err := argc(4); err != nil {
			return nil, err
		}
		dt, err := p.mpiDtype(name, types[0])
		if err != nil {
			return nil, err
		}
		if name == "send" {
			return MPISend{Buf: args[0], Count: args[1], Dtype: dt, Dest: args[2], Tag: args[3]}, nil
		}
		return MPIRecv{Buf: args[0], Count: args[1], Dtype: dt, Source: args[2], Tag: args[3]}, nil
	case "bcast":
		if err := argc(3); err != nil {
			return nil, err
		}
		dt, err := p.mpiDtype(name, types[0])
		if err != nil {
			return nil, err
		}
		return Bcast{Buf: args[0], Count: args[1], Dtype: dt, Root: args[2]}, nil
	case "reduce", "allreduce":
		want := 5
		if name == "allreduce" {
			want = 4
		}
		if err := argc(want); err != nil {
			return nil, err
		}
		dt, err := p.mpiDtype(name, types[0])
		if err != nil {
			return nil, err
		}
		opLit, ok := args[3].(reduceOpExpr)
		if !ok {
			return nil, p.errf("%s operator must be sum, max or min", name)
		}
		if name == "allreduce" {
			return Allreduce{SendBuf: args[0], RecvBuf: args[1], Count: args[2],
				Dtype: dt, ReduceOp: opLit.op}, nil
		}
		return Reduce{SendBuf: args[0], RecvBuf: args[1], Count: args[2],
			Dtype: dt, ReduceOp: opLit.op, Root: args[4]}, nil
	}
	if _, ok := p.sigs[name]; !ok {
		return nil, p.errf("call to undefined function %q", name)
	}
	return CallStmt{Name: name, Args: args}, nil
}

func (p *parser) mpiDtype(op string, buf parseType) (int64, error) {
	switch buf.elem() {
	case ptInt:
		return int64(isa.TypeInt64), nil
	case ptFloat:
		return int64(isa.TypeFloat64), nil
	}
	return 0, p.errf("%s buffer must be an array", op)
}

// reduceOpExpr is a parser-internal marker for sum/max/min arguments.
type reduceOpExpr struct{ op int64 }

func (reduceOpExpr) isExpr() {}

// parseArgs parses "(expr, ...)" returning expressions and their types.
func (p *parser) parseArgs(callee string) ([]Expr, []parseType, error) {
	if err := p.expect("("); err != nil {
		return nil, nil, err
	}
	var args []Expr
	var types []parseType
	for !p.accept(")") {
		if len(args) > 0 {
			if err := p.expect(","); err != nil {
				return nil, nil, err
			}
		}
		// Reduction operator names parse as markers, not variables.
		if (callee == "reduce" || callee == "allreduce") && p.cur().kind == tokIdent {
			if op, ok := reduceOps[p.cur().text]; ok && len(args) == 3 {
				p.pos++
				args = append(args, reduceOpExpr{op: op})
				types = append(types, ptInt)
				continue
			}
		}
		e, t, err := p.parseExpr()
		if err != nil {
			return nil, nil, err
		}
		args = append(args, e)
		types = append(types, t)
	}
	return args, types, nil
}

// Expression parsing with precedence climbing. Types are tracked to
// dispatch builtins and array element widths; full type checking happens in
// Compile.

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
	"+": 4, "-": 4, "|": 4, "^": 4,
	"*": 5, "/": 5, "%": 5, "&": 5, "<<": 5, ">>": 5,
}

var binOps = map[string]BinOp{
	"+": OpAdd, "-": OpSub, "*": OpMul, "/": OpDiv, "%": OpMod,
	"&": OpAnd, "|": OpOr, "^": OpXor, "<<": OpShl, ">>": OpShr,
	"&&": OpAnd, "||": OpOr,
}

var cmpOps = map[string]CmpOp{
	"==": CmpEq, "!=": CmpNe, "<": CmpLt, "<=": CmpLe, ">": CmpGt, ">=": CmpGe,
}

func (p *parser) parseExpr() (Expr, parseType, error) {
	return p.parseBinary(1)
}

func (p *parser) parseBinary(minPrec int) (Expr, parseType, error) {
	left, lt, err := p.parseUnary()
	if err != nil {
		return nil, 0, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			break
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			break
		}
		p.pos++
		right, rt, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, 0, err
		}
		if lt.scalar() != rt.scalar() {
			return nil, 0, p.errf("operator %s applied to %s and %s", t.text, lt, rt)
		}
		if cmp, ok := cmpOps[t.text]; ok {
			left, lt = Cmp{Op: cmp, L: left, R: right}, ptInt
			continue
		}
		left = Bin{Op: binOps[t.text], L: left, R: right}
		lt = lt.scalar().toParse()
	}
	return left, lt, nil
}

func (t Type) toParse() parseType {
	if t == TFloat {
		return ptFloat
	}
	return ptInt
}

//nolint:gocyclo // one arm per primary form.
func (p *parser) parseUnary() (Expr, parseType, error) {
	switch {
	case p.accept("-"):
		e, t, err := p.parseUnary()
		if err != nil {
			return nil, 0, err
		}
		return Neg{E: e}, t, nil
	case p.accept("!"):
		e, t, err := p.parseUnary()
		if err != nil {
			return nil, 0, err
		}
		if t != ptInt {
			return nil, 0, p.errf("! needs an int operand")
		}
		return Eq(e, I(0)), ptInt, nil
	case p.accept("("):
		e, t, err := p.parseExpr()
		if err != nil {
			return nil, 0, err
		}
		if err := p.expect(")"); err != nil {
			return nil, 0, err
		}
		return e, t, nil
	}

	t := p.cur()
	switch t.kind {
	case tokInt:
		p.pos++
		v, err := strconv.ParseInt(t.text, 0, 64)
		if err != nil {
			// Out-of-range decimal: parse as unsigned for full 64-bit range.
			u, uerr := strconv.ParseUint(t.text, 0, 64)
			if uerr != nil {
				return nil, 0, p.errf("bad integer literal %q", t.text)
			}
			v = int64(u)
		}
		return I(v), ptInt, nil
	case tokFloat:
		p.pos++
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil || math.IsInf(v, 0) {
			return nil, 0, p.errf("bad float literal %q", t.text)
		}
		return F(v), ptFloat, nil
	case tokIdent:
		return p.parsePrimaryIdent()
	}
	return nil, 0, p.errf("unexpected token %q in expression", t.text)
}

//nolint:gocyclo // builtin dispatch.
func (p *parser) parsePrimaryIdent() (Expr, parseType, error) {
	name := p.next().text
	// Call?
	if p.at(tokPunct, "(") {
		switch name {
		case "int", "float":
			args, types, err := p.parseArgs(name)
			if err != nil {
				return nil, 0, err
			}
			if len(args) != 1 {
				return nil, 0, p.errf("%s takes 1 argument", name)
			}
			if name == "int" {
				if types[0] == ptInt {
					return args[0], ptInt, nil
				}
				return ToInt(args[0]), ptInt, nil
			}
			if types[0] == ptFloat {
				return args[0], ptFloat, nil
			}
			return ToFloat(args[0]), ptFloat, nil
		case "alloci", "allocf":
			args, types, err := p.parseArgs(name)
			if err != nil {
				return nil, 0, err
			}
			if len(args) != 1 || types[0] != ptInt {
				return nil, 0, p.errf("%s takes one int argument", name)
			}
			pt := ptIntArr
			if name == "allocf" {
				pt = ptFloatArr
			}
			return Alloc(args[0]), pt, nil
		case "rank":
			if _, _, err := p.parseArgs(name); err != nil {
				return nil, 0, err
			}
			return RankExpr{}, ptInt, nil
		case "size":
			if _, _, err := p.parseArgs(name); err != nil {
				return nil, 0, err
			}
			return SizeExpr{}, ptInt, nil
		}
		sig, ok := p.sigs[name]
		if !ok {
			return nil, 0, p.errf("call to undefined function %q", name)
		}
		if sig.ret == ptVoid {
			return nil, 0, p.errf("void function %q used in expression", name)
		}
		args, _, err := p.parseArgs(name)
		if err != nil {
			return nil, 0, err
		}
		return Call(name, args...), sig.ret, nil
	}
	// Index?
	if p.at(tokPunct, "[") {
		arrType, ok := p.vars[name]
		if !ok || arrType.elem() == ptVoid {
			return nil, 0, p.errf("%q is not an array", name)
		}
		p.pos++
		idx, it, err := p.parseExpr()
		if err != nil {
			return nil, 0, err
		}
		if it != ptInt {
			return nil, 0, p.errf("array index must be int")
		}
		if err := p.expect("]"); err != nil {
			return nil, 0, err
		}
		return Index{Base: V(name), Idx: idx, Elem: arrType.elem().scalar()}, arrType.elem(), nil
	}
	// Plain variable.
	vt, ok := p.vars[name]
	if !ok {
		return nil, 0, p.errf("undefined variable %q", name)
	}
	return V(name), vt, nil
}
