package lang

import (
	"fmt"
	"math"

	"chaser/internal/isa"
)

// Register conventions used by generated code:
//
//	R0 / F0     return values (and syscall results)
//	R1..R12     integer expression-evaluation stack
//	F1..F12     floating-point expression-evaluation stack
//	R13         scratch
//	R14 (FP)    frame pointer
//	R15 (SP)    stack pointer
//
// Arguments are pushed left-to-right, so argument i of n lives at
// FP + 16 + 8*(n-1-i); locals live at FP - 8*(slot+1). There are no
// callee-saved registers: callers spill their live evaluation registers
// around calls.
const maxEvalDepth = 12

// CompileError reports a semantic error with its function context.
type CompileError struct {
	Func string
	Msg  string
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("lang: function %q: %s", e.Func, e.Msg)
}

// Compile translates a program into a loadable guest program.
func Compile(p *Program) (*isa.Program, error) {
	c := &compiler{
		sigs:   make(map[string]*Func, len(p.Funcs)),
		labels: make(map[string]int),
	}
	for _, fn := range p.Funcs {
		if _, dup := c.sigs[fn.Name]; dup {
			return nil, &CompileError{Func: fn.Name, Msg: "duplicate function"}
		}
		c.sigs[fn.Name] = fn
	}
	main, ok := c.sigs["main"]
	if !ok {
		return nil, &CompileError{Func: "main", Msg: "missing main function"}
	}
	if len(main.Params) != 0 {
		return nil, &CompileError{Func: "main", Msg: "main must take no parameters"}
	}

	// Entry stub: call main, exit with its return value (0 for void main).
	c.emitRef(isa.Instr{Op: isa.OpCall}, "fn_main")
	if main.Ret == TInt {
		c.emit(isa.Instr{Op: isa.OpMov, Rd: isa.R1, Rs1: isa.R0})
	} else {
		c.emit(isa.Instr{Op: isa.OpMovI, Rd: isa.R1, Imm: 0})
	}
	c.emit(isa.Instr{Op: isa.OpSyscall, Imm: int64(isa.SysExit)})

	for _, fn := range p.Funcs {
		if err := c.compileFunc(fn); err != nil {
			return nil, err
		}
	}
	code, err := c.finish()
	if err != nil {
		return nil, err
	}
	prog := &isa.Program{Name: p.Name, Entry: isa.CodeBase, Code: code}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("lang: generated program invalid: %w", err)
	}
	return prog, nil
}

// MustCompile compiles or panics; intended for package-level app
// definitions whose correctness is covered by tests.
func MustCompile(p *Program) *isa.Program {
	prog, err := Compile(p)
	if err != nil {
		panic(err)
	}
	return prog
}

type compiler struct {
	code      []isa.Instr
	labels    map[string]int // label -> instruction index
	refs      []labelRef
	sigs      map[string]*Func
	nextLabel int
}

type labelRef struct {
	instr int
	label string
}

func (c *compiler) emit(ins isa.Instr) int {
	c.code = append(c.code, ins)
	return len(c.code) - 1
}

func (c *compiler) emitRef(ins isa.Instr, label string) {
	idx := c.emit(ins)
	c.refs = append(c.refs, labelRef{instr: idx, label: label})
}

func (c *compiler) freshLabel(hint string) string {
	c.nextLabel++
	return fmt.Sprintf(".%s%d", hint, c.nextLabel)
}

func (c *compiler) bind(label string) {
	c.labels[label] = len(c.code)
}

func (c *compiler) finish() ([]isa.Instr, error) {
	for _, r := range c.refs {
		idx, ok := c.labels[r.label]
		if !ok {
			return nil, fmt.Errorf("lang: unresolved label %q", r.label)
		}
		c.code[r.instr].Imm = int64(isa.CodeBase + uint64(idx)*isa.InstrSize)
	}
	return c.code, nil
}

type varInfo struct {
	off int64 // FP-relative
	typ Type
}

type fnCtx struct {
	c       *compiler
	fn      *Func
	vars    map[string]varInfo
	slots   int
	iDepth  int // live int eval registers (R1..R(iDepth))
	fDepth  int // live float eval registers
	retLbl  string
	forSeq  int
	reserve int // index of the prologue sp-adjust instruction to patch
	// loops is the stack of enclosing loop labels for break/continue.
	loops []loopLabels
}

type loopLabels struct {
	breakL    string
	continueL string
}

func (c *compiler) compileFunc(fn *Func) error {
	f := &fnCtx{c: c, fn: fn, vars: make(map[string]varInfo), retLbl: c.freshLabel("ret")}
	c.bind("fn_" + fn.Name)
	n := len(fn.Params)
	for i, p := range fn.Params {
		if p.Type != TInt && p.Type != TFloat {
			return f.errf("parameter %q has invalid type", p.Name)
		}
		if _, dup := f.vars[p.Name]; dup {
			return f.errf("duplicate parameter %q", p.Name)
		}
		f.vars[p.Name] = varInfo{off: 16 + 8*int64(n-1-i), typ: p.Type}
	}
	// Prologue.
	c.emit(isa.Instr{Op: isa.OpPush, Rs1: isa.FP})
	c.emit(isa.Instr{Op: isa.OpMov, Rd: isa.FP, Rs1: isa.SP})
	f.reserve = c.emit(isa.Instr{Op: isa.OpAddI, Rd: isa.SP, Rs1: isa.SP, Imm: 0})

	if err := f.stmts(fn.Body); err != nil {
		return err
	}
	// Fall-through return (value 0 for int functions).
	c.emit(isa.Instr{Op: isa.OpMovI, Rd: isa.R0, Imm: 0})
	c.bind(f.retLbl)
	c.emit(isa.Instr{Op: isa.OpMov, Rd: isa.SP, Rs1: isa.FP})
	c.emit(isa.Instr{Op: isa.OpPop, Rd: isa.FP})
	c.emit(isa.Instr{Op: isa.OpRet})

	c.code[f.reserve].Imm = -8 * int64(f.slots)
	return nil
}

func (f *fnCtx) errf(format string, args ...any) error {
	return &CompileError{Func: f.fn.Name, Msg: fmt.Sprintf(format, args...)}
}

func (f *fnCtx) newLocal(name string, typ Type) (varInfo, error) {
	if _, dup := f.vars[name]; dup {
		return varInfo{}, f.errf("redeclaration of %q", name)
	}
	vi := varInfo{off: -8 * int64(f.slots+1), typ: typ}
	f.vars[name] = vi
	f.slots++
	return vi, nil
}

// Integer and float evaluation-stack registers.

func (f *fnCtx) pushInt() (isa.Reg, error) {
	if f.iDepth >= maxEvalDepth {
		return 0, f.errf("integer expression too deep")
	}
	f.iDepth++
	return isa.Reg(f.iDepth), nil
}

func (f *fnCtx) pushFloat() (isa.Reg, error) {
	if f.fDepth >= maxEvalDepth {
		return 0, f.errf("float expression too deep")
	}
	f.fDepth++
	return isa.Reg(f.fDepth), nil
}

func (f *fnCtx) topInt() isa.Reg   { return isa.Reg(f.iDepth) }
func (f *fnCtx) topFloat() isa.Reg { return isa.Reg(f.fDepth) }
func (f *fnCtx) popInt()           { f.iDepth-- }
func (f *fnCtx) popFloat()         { f.fDepth-- }

// expr compiles e, leaving the result in the next free register of the
// appropriate evaluation stack, and returns its type.
func (f *fnCtx) expr(e Expr) (Type, error) {
	c := f.c
	switch x := e.(type) {
	case IntLit:
		r, err := f.pushInt()
		if err != nil {
			return 0, err
		}
		c.emit(isa.Instr{Op: isa.OpMovI, Rd: r, Imm: x.V})
		return TInt, nil

	case FloatLit:
		r, err := f.pushFloat()
		if err != nil {
			return 0, err
		}
		c.emit(isa.Instr{Op: isa.OpFMovI, Rd: r, Imm: int64(math.Float64bits(x.V))})
		return TFloat, nil

	case VarRef:
		vi, ok := f.vars[x.Name]
		if !ok {
			return 0, f.errf("undefined variable %q", x.Name)
		}
		if vi.typ == TFloat {
			r, err := f.pushFloat()
			if err != nil {
				return 0, err
			}
			c.emit(isa.Instr{Op: isa.OpFLd, Rd: r, Rs1: isa.FP, Imm: vi.off})
			return TFloat, nil
		}
		r, err := f.pushInt()
		if err != nil {
			return 0, err
		}
		c.emit(isa.Instr{Op: isa.OpLd, Rd: r, Rs1: isa.FP, Imm: vi.off})
		return TInt, nil

	case Bin:
		return f.binExpr(x)

	case Cmp:
		return f.cmpExpr(x)

	case Neg:
		t, err := f.expr(x.E)
		if err != nil {
			return 0, err
		}
		if t == TFloat {
			r := f.topFloat()
			c.emit(isa.Instr{Op: isa.OpFNeg, Rd: r, Rs1: r})
			return TFloat, nil
		}
		r := f.topInt()
		c.emit(isa.Instr{Op: isa.OpMovI, Rd: isa.R13, Imm: 0})
		c.emit(isa.Instr{Op: isa.OpSub, Rd: r, Rs1: isa.R13, Rs2: r})
		return TInt, nil

	case Cast:
		t, err := f.expr(x.E)
		if err != nil {
			return 0, err
		}
		if t == x.To {
			return t, nil
		}
		if x.To == TFloat {
			src := f.topInt()
			f.popInt()
			dst, err := f.pushFloat()
			if err != nil {
				return 0, err
			}
			c.emit(isa.Instr{Op: isa.OpCvtIF, Rd: dst, Rs1: src})
			return TFloat, nil
		}
		src := f.topFloat()
		f.popFloat()
		dst, err := f.pushInt()
		if err != nil {
			return 0, err
		}
		c.emit(isa.Instr{Op: isa.OpCvtFI, Rd: dst, Rs1: src})
		return TInt, nil

	case Index:
		addr, err := f.arrayAddr(x.Base, x.Idx)
		if err != nil {
			return 0, err
		}
		if x.Elem == TFloat {
			f.popInt() // consume address
			dst, err := f.pushFloat()
			if err != nil {
				return 0, err
			}
			c.emit(isa.Instr{Op: isa.OpFLd, Rd: dst, Rs1: addr})
			return TFloat, nil
		}
		c.emit(isa.Instr{Op: isa.OpLd, Rd: addr, Rs1: addr})
		return TInt, nil

	case CallExpr:
		callee, ok := f.c.sigs[x.Name]
		if !ok {
			return 0, f.errf("call to undefined function %q", x.Name)
		}
		if callee.Ret == 0 {
			return 0, f.errf("void function %q used in expression", x.Name)
		}
		if err := f.emitCall(callee, x.Args); err != nil {
			return 0, err
		}
		if callee.Ret == TFloat {
			dst, err := f.pushFloat()
			if err != nil {
				return 0, err
			}
			c.emit(isa.Instr{Op: isa.OpFMov, Rd: dst, Rs1: isa.F0})
			return TFloat, nil
		}
		dst, err := f.pushInt()
		if err != nil {
			return 0, err
		}
		c.emit(isa.Instr{Op: isa.OpMov, Rd: dst, Rs1: isa.R0})
		return TInt, nil

	case RankExpr, SizeExpr:
		sys := isa.SysMPIRank
		if _, isSize := e.(SizeExpr); isSize {
			sys = isa.SysMPISize
		}
		dst, err := f.pushInt()
		if err != nil {
			return 0, err
		}
		c.emit(isa.Instr{Op: isa.OpSyscall, Imm: int64(sys)})
		c.emit(isa.Instr{Op: isa.OpMov, Rd: dst, Rs1: isa.R0})
		return TInt, nil

	case AllocExpr:
		t, err := f.expr(x.N)
		if err != nil {
			return 0, err
		}
		if t != TInt {
			return 0, f.errf("alloc size must be int")
		}
		r := f.topInt()
		c.emit(isa.Instr{Op: isa.OpMulI, Rd: r, Rs1: r, Imm: 8})
		if r != isa.R1 {
			c.emit(isa.Instr{Op: isa.OpPush, Rs1: isa.R1})
			c.emit(isa.Instr{Op: isa.OpMov, Rd: isa.R1, Rs1: r})
		}
		c.emit(isa.Instr{Op: isa.OpSyscall, Imm: int64(isa.SysAlloc)})
		c.emit(isa.Instr{Op: isa.OpMov, Rd: r, Rs1: isa.R0})
		if r != isa.R1 {
			c.emit(isa.Instr{Op: isa.OpPop, Rd: isa.R1})
		}
		return TInt, nil
	}
	return 0, f.errf("unsupported expression %T", e)
}

// arrayAddr evaluates base and idx and leaves base+8*idx in the top int
// register, which is returned (still on the int stack).
func (f *fnCtx) arrayAddr(base, idx Expr) (isa.Reg, error) {
	t, err := f.expr(base)
	if err != nil {
		return 0, err
	}
	if t != TInt {
		return 0, f.errf("array base must be int address")
	}
	bt, err := f.expr(idx)
	if err != nil {
		return 0, err
	}
	if bt != TInt {
		return 0, f.errf("array index must be int")
	}
	ri := f.topInt()
	f.popInt()
	rb := f.topInt()
	f.c.emit(isa.Instr{Op: isa.OpMulI, Rd: ri, Rs1: ri, Imm: 8})
	f.c.emit(isa.Instr{Op: isa.OpAdd, Rd: rb, Rs1: rb, Rs2: ri})
	return rb, nil
}

var intBinOps = map[BinOp]isa.Op{
	OpAdd: isa.OpAdd, OpSub: isa.OpSub, OpMul: isa.OpMul, OpDiv: isa.OpDiv,
	OpMod: isa.OpMod, OpAnd: isa.OpAnd, OpOr: isa.OpOr, OpXor: isa.OpXor,
	OpShl: isa.OpShl, OpShr: isa.OpShr,
}

var floatBinOps = map[BinOp]isa.Op{
	OpAdd: isa.OpFAdd, OpSub: isa.OpFSub, OpMul: isa.OpFMul, OpDiv: isa.OpFDiv,
}

func (f *fnCtx) binExpr(x Bin) (Type, error) {
	lt, err := f.expr(x.L)
	if err != nil {
		return 0, err
	}
	rt, err := f.expr(x.R)
	if err != nil {
		return 0, err
	}
	if lt != rt {
		return 0, f.errf("operator %s applied to %s and %s", x.Op, lt, rt)
	}
	if lt == TFloat {
		op, ok := floatBinOps[x.Op]
		if !ok {
			return 0, f.errf("operator %s not defined for float", x.Op)
		}
		rr := f.topFloat()
		f.popFloat()
		rl := f.topFloat()
		f.c.emit(isa.Instr{Op: op, Rd: rl, Rs1: rl, Rs2: rr})
		return TFloat, nil
	}
	op := intBinOps[x.Op]
	rr := f.topInt()
	f.popInt()
	rl := f.topInt()
	f.c.emit(isa.Instr{Op: op, Rd: rl, Rs1: rl, Rs2: rr})
	return TInt, nil
}

var cmpBranch = map[CmpOp]isa.Op{
	CmpEq: isa.OpJe, CmpNe: isa.OpJne, CmpLt: isa.OpJl,
	CmpLe: isa.OpJle, CmpGt: isa.OpJg, CmpGe: isa.OpJge,
}

func (f *fnCtx) cmpExpr(x Cmp) (Type, error) {
	c := f.c
	lt, err := f.expr(x.L)
	if err != nil {
		return 0, err
	}
	rt, err := f.expr(x.R)
	if err != nil {
		return 0, err
	}
	if lt != rt {
		return 0, f.errf("comparison %s applied to %s and %s", x.Op, lt, rt)
	}
	var dst isa.Reg
	if lt == TFloat {
		rr := f.topFloat()
		f.popFloat()
		rl := f.topFloat()
		f.popFloat()
		c.emit(isa.Instr{Op: isa.OpFCmp, Rs1: rl, Rs2: rr})
		dst, err = f.pushInt()
		if err != nil {
			return 0, err
		}
	} else {
		rr := f.topInt()
		f.popInt()
		rl := f.topInt()
		c.emit(isa.Instr{Op: isa.OpCmp, Rs1: rl, Rs2: rr})
		dst = rl // reuse
	}
	trueL := c.freshLabel("ct")
	endL := c.freshLabel("ce")
	c.emitRef(isa.Instr{Op: cmpBranch[x.Op]}, trueL)
	c.emit(isa.Instr{Op: isa.OpMovI, Rd: dst, Imm: 0})
	c.emitRef(isa.Instr{Op: isa.OpJmp}, endL)
	c.bind(trueL)
	c.emit(isa.Instr{Op: isa.OpMovI, Rd: dst, Imm: 1})
	c.bind(endL)
	return TInt, nil
}

// emitCall evaluates the arguments, spills live evaluation registers, and
// emits the call. On return the stack is balanced and R0/F0 holds the
// result; evaluation depths are restored to their pre-call values.
func (f *fnCtx) emitCall(callee *Func, args []Expr) error {
	c := f.c
	if len(args) != len(callee.Params) {
		return f.errf("call to %q with %d args, want %d", callee.Name, len(args), len(callee.Params))
	}
	// Spill live evaluation registers.
	savedI, savedF := f.iDepth, f.fDepth
	for i := 1; i <= savedI; i++ {
		c.emit(isa.Instr{Op: isa.OpPush, Rs1: isa.Reg(i)})
	}
	for i := 1; i <= savedF; i++ {
		c.emit(isa.Instr{Op: isa.OpFPush, Rs1: isa.Reg(i)})
	}
	f.iDepth, f.fDepth = 0, 0
	// Evaluate and push arguments left-to-right.
	for i, a := range args {
		t, err := f.expr(a)
		if err != nil {
			return err
		}
		want := callee.Params[i].Type
		if t != want {
			return f.errf("call to %q: arg %d is %s, want %s", callee.Name, i, t, want)
		}
		if t == TFloat {
			c.emit(isa.Instr{Op: isa.OpFPush, Rs1: f.topFloat()})
			f.popFloat()
		} else {
			c.emit(isa.Instr{Op: isa.OpPush, Rs1: f.topInt()})
			f.popInt()
		}
	}
	c.emitRef(isa.Instr{Op: isa.OpCall}, "fn_"+callee.Name)
	if n := len(args); n > 0 {
		c.emit(isa.Instr{Op: isa.OpAddI, Rd: isa.SP, Rs1: isa.SP, Imm: 8 * int64(n)})
	}
	// Restore spilled registers in reverse order.
	for i := savedF; i >= 1; i-- {
		c.emit(isa.Instr{Op: isa.OpFPop, Rd: isa.Reg(i)})
	}
	for i := savedI; i >= 1; i-- {
		c.emit(isa.Instr{Op: isa.OpPop, Rd: isa.Reg(i)})
	}
	f.iDepth, f.fDepth = savedI, savedF
	return nil
}
