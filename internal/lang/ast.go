// Package lang implements a small structured language and compiler targeting
// the guest ISA. The guest applications of the paper's evaluation (Matvec,
// the Rodinia-style kernels, and the CLAMR mini-app) are authored as ASTs
// built with this package's constructor functions and compiled to guest
// programs; writing them in raw assembler would be impractical.
//
// The language has int64 and float64 scalars, heap arrays of 8-byte
// elements, functions with by-value parameters, loops, conditionals, and
// intrinsics for the guest syscall surface (console/output/assert/MPI).
package lang

import "fmt"

// Type is a scalar value type.
type Type int

// Value types. Arrays are represented as TInt base addresses.
const (
	TInt Type = iota + 1
	TFloat
)

// String returns the type name.
func (t Type) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	}
	return fmt.Sprintf("type(%d)", int(t))
}

// BinOp is a binary arithmetic operator.
type BinOp int

// Binary operators. Arithmetic operators apply to both int and float
// operands; bitwise operators require ints.
const (
	OpAdd BinOp = iota + 1
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
)

var binNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpShl: "<<", OpShr: ">>",
}

// String returns the operator symbol.
func (o BinOp) String() string { return binNames[o] }

// CmpOp is a comparison operator; comparisons yield int 0 or 1.
type CmpOp int

// Comparison operators.
const (
	CmpEq CmpOp = iota + 1
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

var cmpNames = map[CmpOp]string{
	CmpEq: "==", CmpNe: "!=", CmpLt: "<", CmpLe: "<=", CmpGt: ">", CmpGe: ">=",
}

// String returns the operator symbol.
func (o CmpOp) String() string { return cmpNames[o] }

// Expr is an expression node.
type Expr interface{ isExpr() }

type (
	// IntLit is an int64 literal.
	IntLit struct{ V int64 }
	// FloatLit is a float64 literal.
	FloatLit struct{ V float64 }
	// VarRef reads a local variable or parameter.
	VarRef struct{ Name string }
	// Bin applies a binary operator to two operands of the same type.
	Bin struct {
		Op   BinOp
		L, R Expr
	}
	// Cmp compares two operands of the same type, yielding int 0/1.
	Cmp struct {
		Op   CmpOp
		L, R Expr
	}
	// Neg negates its operand.
	Neg struct{ E Expr }
	// Cast converts between int and float.
	Cast struct {
		To Type
		E  Expr
	}
	// Index reads element Idx of the array at Base (8-byte elements of
	// type Elem).
	Index struct {
		Base Expr
		Idx  Expr
		Elem Type
	}
	// CallExpr invokes a function and yields its return value.
	CallExpr struct {
		Name string
		Args []Expr
	}
	// RankExpr yields the caller's MPI rank.
	RankExpr struct{}
	// SizeExpr yields the MPI world size.
	SizeExpr struct{}
	// AllocExpr allocates N 8-byte elements on the guest heap and yields
	// the base address.
	AllocExpr struct{ N Expr }
)

func (IntLit) isExpr()    {}
func (FloatLit) isExpr()  {}
func (VarRef) isExpr()    {}
func (Bin) isExpr()       {}
func (Cmp) isExpr()       {}
func (Neg) isExpr()       {}
func (Cast) isExpr()      {}
func (Index) isExpr()     {}
func (CallExpr) isExpr()  {}
func (RankExpr) isExpr()  {}
func (SizeExpr) isExpr()  {}
func (AllocExpr) isExpr() {}

// Stmt is a statement node.
type Stmt interface{ isStmt() }

type (
	// Decl declares a new local initialized from Init; the variable's type
	// is the expression's type.
	Decl struct {
		Name string
		Init Expr
	}
	// Assign stores into an existing local.
	Assign struct {
		Name string
		E    Expr
	}
	// Store writes Val into element Idx of the array at Base.
	Store struct {
		Base Expr
		Idx  Expr
		Val  Expr
	}
	// If branches on an int condition (non-zero is true).
	If struct {
		Cond Expr
		Then []Stmt
		Else []Stmt
	}
	// While loops while the int condition is non-zero.
	While struct {
		Cond Expr
		Body []Stmt
	}
	// For runs Var from From to To-1 inclusive, step +1. To is evaluated
	// once on entry.
	For struct {
		Var  string
		From Expr
		To   Expr
		Body []Stmt
	}
	// Return exits the function, optionally with a value.
	Return struct{ E Expr }
	// Break exits the innermost enclosing loop.
	Break struct{}
	// Continue jumps to the next iteration of the innermost enclosing
	// loop (for For loops, the increment still runs).
	Continue struct{}
	// CallStmt invokes a function for effect, discarding any result.
	CallStmt struct {
		Name string
		Args []Expr
	}
	// PrintInt prints an int to the console.
	PrintInt struct{ E Expr }
	// PrintFloat prints a float to the console.
	PrintFloat struct{ E Expr }
	// OutInt appends an int to the output file (SDC comparison artifact).
	OutInt struct{ E Expr }
	// OutFloat appends a float to the output file.
	OutFloat struct{ E Expr }
	// Assert terminates with an assertion failure when Cond is zero.
	Assert struct {
		Cond Expr
		Code int64
	}
	// Exit terminates the process with the given code.
	Exit struct{ Code Expr }
	// MPISend sends Count elements of the given datatype from Buf to Dest
	// with Tag. The datatype is 1 (int64) or 2 (float64) per isa.Datatype.
	MPISend struct {
		Buf, Count Expr
		Dtype      int64
		Dest, Tag  Expr
	}
	// MPIRecv receives into Buf from Source with Tag.
	MPIRecv struct {
		Buf, Count  Expr
		Dtype       int64
		Source, Tag Expr
	}
	// Barrier blocks until all ranks arrive.
	Barrier struct{}
	// Bcast broadcasts Buf from Root.
	Bcast struct {
		Buf, Count Expr
		Dtype      int64
		Root       Expr
	}
	// Reduce reduces SendBuf into RecvBuf at Root with the given operator
	// (isa.ReduceOp numbering).
	Reduce struct {
		SendBuf, RecvBuf, Count Expr
		Dtype                   int64
		ReduceOp                int64
		Root                    Expr
	}
	// Allreduce reduces SendBuf into RecvBuf on every rank.
	Allreduce struct {
		SendBuf, RecvBuf, Count Expr
		Dtype                   int64
		ReduceOp                int64
	}
)

func (Decl) isStmt()       {}
func (Break) isStmt()      {}
func (Continue) isStmt()   {}
func (Assign) isStmt()     {}
func (Store) isStmt()      {}
func (If) isStmt()         {}
func (While) isStmt()      {}
func (For) isStmt()        {}
func (Return) isStmt()     {}
func (CallStmt) isStmt()   {}
func (PrintInt) isStmt()   {}
func (PrintFloat) isStmt() {}
func (OutInt) isStmt()     {}
func (OutFloat) isStmt()   {}
func (Assert) isStmt()     {}
func (Exit) isStmt()       {}
func (MPISend) isStmt()    {}
func (MPIRecv) isStmt()    {}
func (Barrier) isStmt()    {}
func (Bcast) isStmt()      {}
func (Reduce) isStmt()     {}
func (Allreduce) isStmt()  {}

// Param is a function parameter.
type Param struct {
	Name string
	Type Type
}

// Func is a function definition. Ret is 0 for void functions.
type Func struct {
	Name   string
	Params []Param
	Ret    Type
	Body   []Stmt
}

// Program is a whole guest program; execution starts at the function named
// "main", whose int return value becomes the exit code.
type Program struct {
	Name  string
	Funcs []*Func
}

// Convenience constructors, so application code reads closer to source.

// I builds an int literal.
func I(v int64) Expr { return IntLit{V: v} }

// F builds a float literal.
func F(v float64) Expr { return FloatLit{V: v} }

// V reads a variable.
func V(name string) Expr { return VarRef{Name: name} }

// Add builds L + R.
func Add(l, r Expr) Expr { return Bin{Op: OpAdd, L: l, R: r} }

// Sub builds L - R.
func Sub(l, r Expr) Expr { return Bin{Op: OpSub, L: l, R: r} }

// Mul builds L * R.
func Mul(l, r Expr) Expr { return Bin{Op: OpMul, L: l, R: r} }

// Div builds L / R.
func Div(l, r Expr) Expr { return Bin{Op: OpDiv, L: l, R: r} }

// Mod builds L % R (ints only).
func Mod(l, r Expr) Expr { return Bin{Op: OpMod, L: l, R: r} }

// Eq builds L == R.
func Eq(l, r Expr) Expr { return Cmp{Op: CmpEq, L: l, R: r} }

// Ne builds L != R.
func Ne(l, r Expr) Expr { return Cmp{Op: CmpNe, L: l, R: r} }

// Lt builds L < R.
func Lt(l, r Expr) Expr { return Cmp{Op: CmpLt, L: l, R: r} }

// Le builds L <= R.
func Le(l, r Expr) Expr { return Cmp{Op: CmpLe, L: l, R: r} }

// Gt builds L > R.
func Gt(l, r Expr) Expr { return Cmp{Op: CmpGt, L: l, R: r} }

// Ge builds L >= R.
func Ge(l, r Expr) Expr { return Cmp{Op: CmpGe, L: l, R: r} }

// ToFloat converts an int expression to float.
func ToFloat(e Expr) Expr { return Cast{To: TFloat, E: e} }

// ToInt converts a float expression to int (truncating).
func ToInt(e Expr) Expr { return Cast{To: TInt, E: e} }

// At reads array element base[idx] as an int.
func At(base, idx Expr) Expr { return Index{Base: base, Idx: idx, Elem: TInt} }

// AtF reads array element base[idx] as a float.
func AtF(base, idx Expr) Expr { return Index{Base: base, Idx: idx, Elem: TFloat} }

// Call invokes a function in expression position.
func Call(name string, args ...Expr) Expr { return CallExpr{Name: name, Args: args} }

// Alloc allocates n 8-byte elements and yields the array base.
func Alloc(n Expr) Expr { return AllocExpr{N: n} }

// Let declares a variable.
func Let(name string, init Expr) Stmt { return Decl{Name: name, Init: init} }

// Set assigns to a variable.
func Set(name string, e Expr) Stmt { return Assign{Name: name, E: e} }

// SetAt stores val into base[idx].
func SetAt(base, idx, val Expr) Stmt { return Store{Base: base, Idx: idx, Val: val} }

// Block is a helper for building statement slices inline.
func Block(stmts ...Stmt) []Stmt { return stmts }
