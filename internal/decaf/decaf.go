// Package decaf implements the platform layer Chaser builds on, mirroring
// the DECAF whole-system analysis platform's plugin architecture: loadable
// plugins with init/cleanup lifecycles, a terminal command registry, virtual
// machine introspection (VMI) process-creation events, and global
// tainted-memory callbacks fanned out to every supervised guest.
//
// The correspondence to the paper's Fig. 4:
//
//	plugin_init()              -> Plugin.Init returning *Interface
//	fi_interface_st            -> Interface (terminal commands)
//	inject_fault command       -> Platform.Exec("inject_fault ...")
//	VMI_CREATEPROC_CB          -> RegisterProcCreateCB / CreateProcess
//	DECAF_READ_TAINTMEM_CB     -> RegisterReadTaintCB
//	DECAF_WRITE_TAINTMEM_CB    -> RegisterWriteTaintCB
package decaf

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"chaser/internal/isa"
	"chaser/internal/vm"
)

// ProcInfo describes a guest process observed through VMI.
type ProcInfo struct {
	PID     int
	Name    string
	Rank    int
	Machine *vm.Machine
}

// ProcCreateCB observes process creation (VMI_CREATEPROC_CB).
type ProcCreateCB func(info ProcInfo)

// MemTaintCB observes tainted memory reads/writes in any supervised guest.
type MemTaintCB func(info ProcInfo, ev vm.MemTaintEvent)

// SyscallCB observes guest syscalls in any supervised guest.
type SyscallCB func(info ProcInfo, m *vm.Machine, sys isa.Sys)

// Command is a terminal command exported by a plugin.
type Command struct {
	Name    string
	Usage   string
	Handler func(args []string) (string, error)
}

// Interface is what a plugin exports at load time (fi_interface_st).
type Interface struct {
	Name     string
	Commands []Command
}

// Plugin is a loadable analysis module.
type Plugin interface {
	// Init is called at load time; the returned Interface's commands are
	// registered with the platform terminal.
	Init(p *Platform) (*Interface, error)
	// Cleanup is called at unload time.
	Cleanup() error
}

// Platform is the DECAF-like host: it owns plugins, the command terminal,
// and the global callback registries, and it wires callbacks into guests as
// they are created.
type Platform struct {
	mu       sync.Mutex
	plugins  map[string]Plugin
	commands map[string]Command

	procCBs  []ProcCreateCB
	readCBs  []MemTaintCB
	writeCBs []MemTaintCB
	preCBs   []SyscallCB
	postCBs  []SyscallCB

	nextPID int
	procs   []ProcInfo
}

// NewPlatform creates an empty platform.
func NewPlatform() *Platform {
	return &Platform{
		plugins:  make(map[string]Plugin),
		commands: make(map[string]Command),
		nextPID:  100,
	}
}

// LoadPlugin initializes a plugin and registers its terminal commands.
func (p *Platform) LoadPlugin(pl Plugin) error {
	iface, err := pl.Init(p)
	if err != nil {
		return fmt.Errorf("decaf: plugin init: %w", err)
	}
	if iface == nil || iface.Name == "" {
		return fmt.Errorf("decaf: plugin returned no interface")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.plugins[iface.Name]; dup {
		return fmt.Errorf("decaf: plugin %q already loaded", iface.Name)
	}
	p.plugins[iface.Name] = pl
	for _, cmd := range iface.Commands {
		if _, dup := p.commands[cmd.Name]; dup {
			return fmt.Errorf("decaf: command %q already registered", cmd.Name)
		}
		p.commands[cmd.Name] = cmd
	}
	return nil
}

// UnloadPlugin runs a plugin's cleanup and removes it. Its commands remain
// unregistered.
func (p *Platform) UnloadPlugin(name string) error {
	p.mu.Lock()
	pl, ok := p.plugins[name]
	if ok {
		delete(p.plugins, name)
	}
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("decaf: plugin %q not loaded", name)
	}
	return pl.Cleanup()
}

// Exec runs one terminal command line (e.g. "inject_fault matvec fadd ...").
func (p *Platform) Exec(line string) (string, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", fmt.Errorf("decaf: empty command")
	}
	p.mu.Lock()
	cmd, ok := p.commands[fields[0]]
	p.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("decaf: unknown command %q", fields[0])
	}
	return cmd.Handler(fields[1:])
}

// Commands lists registered command names in sorted order.
func (p *Platform) Commands() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, 0, len(p.commands))
	for n := range p.commands {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RegisterProcCreateCB subscribes to process-creation VMI events.
func (p *Platform) RegisterProcCreateCB(cb ProcCreateCB) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.procCBs = append(p.procCBs, cb)
}

// RegisterReadTaintCB subscribes to tainted-memory reads in all guests.
func (p *Platform) RegisterReadTaintCB(cb MemTaintCB) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.readCBs = append(p.readCBs, cb)
}

// RegisterWriteTaintCB subscribes to tainted-memory writes in all guests.
func (p *Platform) RegisterWriteTaintCB(cb MemTaintCB) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.writeCBs = append(p.writeCBs, cb)
}

// RegisterPreSyscallCB subscribes to guest syscall entry (Chaser hooks
// MPI_Send here).
func (p *Platform) RegisterPreSyscallCB(cb SyscallCB) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.preCBs = append(p.preCBs, cb)
}

// RegisterPostSyscallCB subscribes to guest syscall return (Chaser hooks
// MPI_Recv here).
func (p *Platform) RegisterPostSyscallCB(cb SyscallCB) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.postCBs = append(p.postCBs, cb)
}

// CreateProcess attaches a machine to the platform: it assigns a PID if the
// machine has none, wires the global callback fan-outs into the machine's
// hooks, and fires the VMI process-creation event. It must be called before
// the machine starts running.
func (p *Platform) CreateProcess(m *vm.Machine) ProcInfo {
	p.mu.Lock()
	if m.PID == 0 {
		m.PID = p.nextPID
		p.nextPID++
	}
	info := ProcInfo{PID: m.PID, Name: m.Name, Rank: m.Rank, Machine: m}
	p.procs = append(p.procs, info)
	procCBs := append([]ProcCreateCB(nil), p.procCBs...)
	p.mu.Unlock()

	// Fire the VMI event first: plugins typically register their taint and
	// syscall callbacks from fi_creation_cb, and those must apply to this
	// process.
	for _, cb := range procCBs {
		cb(info)
	}

	// Snapshot the callback registries into the machine's hooks. The hot
	// paths (tainted loads/stores) then run lock- and allocation-free.
	// Callbacks registered after a process starts do not apply to it.
	p.mu.Lock()
	readCBs := append([]MemTaintCB(nil), p.readCBs...)
	writeCBs := append([]MemTaintCB(nil), p.writeCBs...)
	preCBs := append([]SyscallCB(nil), p.preCBs...)
	postCBs := append([]SyscallCB(nil), p.postCBs...)
	p.mu.Unlock()

	if len(readCBs) > 0 {
		m.Hooks.TaintedMemRead = func(ev vm.MemTaintEvent) {
			for _, cb := range readCBs {
				cb(info, ev)
			}
		}
	}
	if len(writeCBs) > 0 {
		m.Hooks.TaintedMemWrite = func(ev vm.MemTaintEvent) {
			for _, cb := range writeCBs {
				cb(info, ev)
			}
		}
	}
	if len(preCBs) > 0 {
		m.Hooks.PreSyscall = func(mm *vm.Machine, sys isa.Sys) {
			for _, cb := range preCBs {
				cb(info, mm, sys)
			}
		}
	}
	if len(postCBs) > 0 {
		m.Hooks.PostSyscall = func(mm *vm.Machine, sys isa.Sys) {
			for _, cb := range postCBs {
				cb(info, mm, sys)
			}
		}
	}
	return info
}

// Processes returns the processes created so far.
func (p *Platform) Processes() []ProcInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]ProcInfo(nil), p.procs...)
}
