package decaf

import (
	"errors"
	"strings"
	"testing"

	"chaser/internal/asm"
	"chaser/internal/isa"
	"chaser/internal/tcg"
	"chaser/internal/vm"
)

type fakePlugin struct {
	name      string
	initErr   error
	cleanedUp bool
	log       []string
}

func (f *fakePlugin) Init(p *Platform) (*Interface, error) {
	if f.initErr != nil {
		return nil, f.initErr
	}
	return &Interface{
		Name: f.name,
		Commands: []Command{{
			Name:  f.name + "_cmd",
			Usage: f.name + "_cmd <args>",
			Handler: func(args []string) (string, error) {
				f.log = append(f.log, strings.Join(args, " "))
				return "ok:" + strings.Join(args, ","), nil
			},
		}},
	}, nil
}

func (f *fakePlugin) Cleanup() error {
	f.cleanedUp = true
	return nil
}

func TestLoadPluginAndExec(t *testing.T) {
	p := NewPlatform()
	pl := &fakePlugin{name: "fi"}
	if err := p.LoadPlugin(pl); err != nil {
		t.Fatal(err)
	}
	out, err := p.Exec("fi_cmd matvec fadd 1000")
	if err != nil {
		t.Fatal(err)
	}
	if out != "ok:matvec,fadd,1000" {
		t.Errorf("out = %q", out)
	}
	if len(pl.log) != 1 || pl.log[0] != "matvec fadd 1000" {
		t.Errorf("log = %v", pl.log)
	}
	if got := p.Commands(); len(got) != 1 || got[0] != "fi_cmd" {
		t.Errorf("commands = %v", got)
	}
}

func TestLoadPluginErrors(t *testing.T) {
	p := NewPlatform()
	if err := p.LoadPlugin(&fakePlugin{name: "x", initErr: errors.New("boom")}); err == nil {
		t.Error("init error swallowed")
	}
	if err := p.LoadPlugin(&fakePlugin{name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := p.LoadPlugin(&fakePlugin{name: "a"}); err == nil {
		t.Error("duplicate plugin accepted")
	}
}

func TestUnloadPlugin(t *testing.T) {
	p := NewPlatform()
	pl := &fakePlugin{name: "u"}
	if err := p.LoadPlugin(pl); err != nil {
		t.Fatal(err)
	}
	if err := p.UnloadPlugin("u"); err != nil {
		t.Fatal(err)
	}
	if !pl.cleanedUp {
		t.Error("cleanup not called")
	}
	if err := p.UnloadPlugin("u"); err == nil {
		t.Error("double unload succeeded")
	}
}

func TestExecErrors(t *testing.T) {
	p := NewPlatform()
	if _, err := p.Exec(""); err == nil {
		t.Error("empty command accepted")
	}
	if _, err := p.Exec("nope"); err == nil {
		t.Error("unknown command accepted")
	}
}

func TestVMIProcessCreation(t *testing.T) {
	p := NewPlatform()
	var seen []ProcInfo
	p.RegisterProcCreateCB(func(info ProcInfo) { seen = append(seen, info) })

	prog, err := asm.Assemble("target_app", "main:\n hlt\n")
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(prog, vm.Config{})
	info := p.CreateProcess(m)
	if info.PID == 0 || info.Name != "target_app" {
		t.Errorf("info = %+v", info)
	}
	if len(seen) != 1 || seen[0].PID != info.PID {
		t.Errorf("seen = %+v", seen)
	}
	if got := p.Processes(); len(got) != 1 {
		t.Errorf("processes = %+v", got)
	}
	// PIDs are unique.
	m2 := vm.New(prog, vm.Config{})
	info2 := p.CreateProcess(m2)
	if info2.PID == info.PID {
		t.Error("duplicate PID")
	}
}

func TestTaintCallbacksFanOut(t *testing.T) {
	p := NewPlatform()
	var reads, writes int
	// Callbacks registered from within the proc-create callback must apply
	// (the fi_creation_cb pattern).
	p.RegisterProcCreateCB(func(info ProcInfo) {
		p.RegisterReadTaintCB(func(pi ProcInfo, ev vm.MemTaintEvent) {
			if pi.Name != "t" {
				t.Errorf("read cb proc = %+v", pi)
			}
			reads++
		})
		p.RegisterWriteTaintCB(func(pi ProcInfo, ev vm.MemTaintEvent) { writes++ })
	})

	prog, err := asm.Assemble("t", `
main:
    movi r1, 64
    syscall alloc
    movi r2, 5
    add r3, r2, r2
    st [r0+0], r3
    ld r4, [r0+0]
    hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(prog, vm.Config{})
	m.TaintEnabled = true
	// Seed taint on r2 before the add executes, via instrumentation.
	id := m.RegisterHelper(func(mm *vm.Machine, op *tcg.Op) {
		mm.Shadow.SetRegMask(tcg.GPR(isa.R2), 0xff)
	})
	m.Trans.AddHook(func(ins isa.Instr, pc uint64) []tcg.Op {
		if ins.Op == isa.OpAdd {
			return []tcg.Op{{Kind: tcg.KHelper, Helper: id}}
		}
		return nil
	})
	p.CreateProcess(m)
	if term := m.Run(); term.Reason != vm.ReasonExited {
		t.Fatalf("term = %v", term)
	}
	if reads != 1 || writes != 1 {
		t.Errorf("reads = %d, writes = %d; want 1, 1", reads, writes)
	}
}

func TestSyscallCallbacks(t *testing.T) {
	p := NewPlatform()
	var pre, post []isa.Sys
	p.RegisterPreSyscallCB(func(info ProcInfo, m *vm.Machine, sys isa.Sys) { pre = append(pre, sys) })
	p.RegisterPostSyscallCB(func(info ProcInfo, m *vm.Machine, sys isa.Sys) { post = append(post, sys) })

	prog, err := asm.Assemble("t", `
main:
    movi r1, 5
    syscall print_int
    movi r1, 0
    syscall exit
`)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(prog, vm.Config{})
	p.CreateProcess(m)
	if term := m.Run(); term.Reason != vm.ReasonExited {
		t.Fatalf("term = %v", term)
	}
	if len(pre) != 2 || pre[0] != isa.SysPrintInt || pre[1] != isa.SysExit {
		t.Errorf("pre = %v", pre)
	}
	// exit terminates before the post hook.
	if len(post) != 1 || post[0] != isa.SysPrintInt {
		t.Errorf("post = %v", post)
	}
}
