package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	for _, v := range []float64{0, 5, 9, 10, 99, 100, 500, 1000, 5000} {
		h.Add(v)
	}
	b := h.Buckets()
	if len(b) != 4 {
		t.Fatalf("buckets = %d", len(b))
	}
	wantCounts := []uint64{3, 2, 2, 2} // [<10, 10-100, 100-1000, >=1000]
	for i, want := range wantCounts {
		if b[i].Count != want {
			t.Errorf("bucket %d count = %d, want %d", i, b[i].Count, want)
		}
	}
	if h.Total() != 9 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Max() != 5000 {
		t.Errorf("max = %v", h.Max())
	}
}

func TestHistogramMeanQuantile(t *testing.T) {
	h := NewHistogram(50)
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if got := h.Mean(); got != 50.5 {
		t.Errorf("mean = %v", got)
	}
	if got := h.Quantile(0.5); got != 50 {
		t.Errorf("median = %v", got)
	}
	if got := h.Quantile(1.0); got != 100 {
		t.Errorf("p100 = %v", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := h.FractionBelow(51); got != 0.5 {
		t.Errorf("FractionBelow(51) = %v", got)
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := NewHistogram(10)
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.FractionBelow(5) != 0 {
		t.Error("empty histogram stats not zero")
	}
	if out := h.Render(20); !strings.Contains(out, "0") {
		t.Error("render of empty histogram broken")
	}
}

func TestRender(t *testing.T) {
	h := NewHistogram(10, 100)
	for i := 0; i < 50; i++ {
		h.Add(5)
	}
	h.Add(50)
	out := h.Render(20)
	if !strings.Contains(out, "####") {
		t.Errorf("render missing bars:\n%s", out)
	}
	if !strings.Contains(out, "[-inf, 10)") || !strings.Contains(out, "[100, inf)") {
		t.Errorf("render missing labels:\n%s", out)
	}
}

func TestRenderKLabels(t *testing.T) {
	h := NewHistogram(800000, 2500000)
	h.Add(100)
	out := h.Render(10)
	if !strings.Contains(out, "800k") || !strings.Contains(out, "2500k") {
		t.Errorf("k-suffix labels missing:\n%s", out)
	}
}

func TestPctAndRatio(t *testing.T) {
	if got := Pct(8977, 10000); got != "89.77%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(1, 0); got != "0.00%" {
		t.Errorf("Pct zero total = %q", got)
	}
	if got := Ratio(1, 4); got != 0.25 {
		t.Errorf("Ratio = %v", got)
	}
	if got := Ratio(1, 0); got != 0 {
		t.Errorf("Ratio zero total = %v", got)
	}
}

// Property: bucket counts always sum to the number of Adds, and every value
// lands in the bucket whose bounds contain it.
func TestHistogramInvariantQuick(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram(0, 10, 100)
		clean := 0
		for _, v := range vals {
			if math.IsNaN(v) {
				continue
			}
			h.Add(v)
			clean++
		}
		var sum uint64
		for _, b := range h.Buckets() {
			sum += b.Count
		}
		return sum == uint64(clean) && h.Total() == uint64(clean)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
