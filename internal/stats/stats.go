// Package stats provides the small statistical toolkit the campaign harness
// uses: fixed-bucket histograms (for the tainted read/write distributions of
// Figs. 8 and 9), summary statistics, and percentage formatting.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram counts values into half-open buckets [bound[i-1], bound[i]);
// values at or above the last bound fall into the overflow bucket.
type Histogram struct {
	bounds []float64
	counts []uint64
	total  uint64
	sum    float64
	max    float64
	values []float64 // retained for quantiles
}

// NewHistogram creates a histogram with the given ascending bucket bounds.
func NewHistogram(bounds ...float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Add records one value.
func (h *Histogram) Add(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v)
	// SearchFloat64s returns the first i with bounds[i] >= v; values equal
	// to a bound belong to the next bucket, so adjust.
	if idx < len(h.bounds) && h.bounds[idx] == v {
		idx++
	}
	h.counts[idx]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.values = append(h.values, v)
}

// Total returns the number of recorded values.
func (h *Histogram) Total() uint64 { return h.total }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max returns the largest recorded value.
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns the q-th quantile (0 <= q <= 1) by nearest-rank.
func (h *Histogram) Quantile(q float64) float64 {
	if len(h.values) == 0 {
		return 0
	}
	vals := append([]float64(nil), h.values...)
	sort.Float64s(vals)
	rank := int(math.Ceil(q*float64(len(vals)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(vals) {
		rank = len(vals) - 1
	}
	return vals[rank]
}

// Buckets returns (lower bound, upper bound, count) triples for rendering;
// the first bucket's lower bound is -Inf and the last's upper is +Inf.
func (h *Histogram) Buckets() []Bucket {
	out := make([]Bucket, len(h.counts))
	for i := range h.counts {
		lo := math.Inf(-1)
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := math.Inf(1)
		if i < len(h.bounds) {
			hi = h.bounds[i]
		}
		out[i] = Bucket{Lo: lo, Hi: hi, Count: h.counts[i]}
	}
	return out
}

// Bucket is one histogram bucket.
type Bucket struct {
	Lo, Hi float64
	Count  uint64
}

// FractionBelow returns the fraction of values strictly below x.
func (h *Histogram) FractionBelow(x float64) float64 {
	if len(h.values) == 0 {
		return 0
	}
	n := 0
	for _, v := range h.values {
		if v < x {
			n++
		}
	}
	return float64(n) / float64(len(h.values))
}

// Render draws a fixed-width ASCII histogram for terminal reports.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	var peak uint64
	for _, c := range h.counts {
		if c > peak {
			peak = c
		}
	}
	var sb strings.Builder
	for _, b := range h.Buckets() {
		bar := 0
		if peak > 0 {
			bar = int(float64(b.Count) / float64(peak) * float64(width))
		}
		label := fmt.Sprintf("[%s, %s)", fnum(b.Lo), fnum(b.Hi))
		fmt.Fprintf(&sb, "%-22s %8d %s\n", label, b.Count, strings.Repeat("#", bar))
	}
	return sb.String()
}

func fnum(v float64) string {
	switch {
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsInf(v, 1):
		return "inf"
	case v >= 1000 && v == math.Trunc(v):
		if k := v / 1000; k == math.Trunc(k) {
			return fmt.Sprintf("%gk", k)
		}
		return fmt.Sprintf("%g", v)
	default:
		return fmt.Sprintf("%g", v)
	}
}

// Pct formats a count as a percentage of total, like the paper's tables.
func Pct(count, total int) string {
	if total == 0 {
		return "0.00%"
	}
	return fmt.Sprintf("%.2f%%", 100*float64(count)/float64(total))
}

// Ratio returns count/total (0 when total is 0).
func Ratio(count, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(count) / float64(total)
}
