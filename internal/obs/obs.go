// Package obs is Chaser's telemetry subsystem: a dependency-free metrics
// registry (atomic counters, gauges, and fixed-bucket histograms) plus
// span-based tracing with a bounded in-memory recorder.
//
// The package is built around a "disabled is free" contract mirroring the
// paper's near-zero-overhead requirement for fault-injection measurement
// (Fig. 10): every instrument is nil-receiver safe, so components hold plain
// metric pointers and a disabled configuration (nil *Registry / nil *Tracer)
// degrades every operation to a nil check — no allocation, no atomic, no
// lock. TestObsDisabledNoAlloc and BenchmarkObsOverhead (repo root) enforce
// the contract with testing.AllocsPerRun.
//
// Exporters: Prometheus text format and a JSON snapshot for metrics
// (Registry.WritePrometheus / Registry.WriteJSON), and Chrome trace-event
// JSON for spans (Tracer.WriteChromeTrace), loadable in chrome://tracing or
// https://ui.perfetto.dev. See docs/OBSERVABILITY.md for the metric catalog
// and span naming conventions.
package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Registry is a named collection of metrics. Registration (Counter / Gauge /
// Histogram) takes a mutex; updates on the returned instruments are
// lock-free atomics. A nil *Registry is a valid "telemetry off" registry:
// it returns nil instruments whose methods all no-op.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// validName enforces the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]* without pulling in regexp.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		alpha := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':'
		if alpha {
			continue
		}
		if i > 0 && c >= '0' && c <= '9' {
			continue
		}
		return false
	}
	return true
}

func (r *Registry) check(name, kind string) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if _, ok := r.counts[name]; ok && kind != "counter" {
		panic(fmt.Sprintf("obs: %q already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		panic(fmt.Sprintf("obs: %q already registered as a gauge", name))
	}
	if _, ok := r.hists[name]; ok && kind != "histogram" {
		panic(fmt.Sprintf("obs: %q already registered as a histogram", name))
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Calls with the same name return the same instrument, so concurrent
// components share one counter. Nil registries return nil (a no-op counter).
// Panics on an invalid name or a name already registered as another kind.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.check(name, "counter")
	c := r.counts[name]
	if c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// Nil registries return nil (a no-op gauge).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.check(name, "gauge")
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the fixed-bucket histogram registered under name,
// creating it on first use; bounds are the inclusive upper bucket bounds in
// ascending order (an implicit +Inf bucket is appended). Bounds are only
// consulted at creation; later calls with the same name reuse the existing
// buckets. Nil registries return nil (a no-op histogram).
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.check(name, "histogram")
	h := r.hists[name]
	if h == nil {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
			}
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// sortedNames returns the registered metric names of one kind in order.
func sortedNames[T any](m map[string]T) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
