package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fakeClockTracer returns a tracer whose clock is advanced manually, making
// trace output byte-for-byte deterministic for the golden test.
func fakeClockTracer(max int) (*Tracer, func(d time.Duration)) {
	base := time.Unix(1000, 0)
	cur := base
	t := NewTracer(max)
	t.now = func() time.Time { return cur }
	t.start = base
	return t, func(d time.Duration) { cur = cur.Add(d) }
}

func TestSpanRecording(t *testing.T) {
	tr, advance := fakeClockTracer(0)
	sp := tr.StartSpanTID("core.run", 0)
	advance(5 * time.Millisecond)
	inner := tr.StartSpanTID("rank.run", 1)
	advance(2 * time.Millisecond)
	inner.End()
	sp.End()
	if tr.Len() != 2 {
		t.Fatalf("recorded %d spans, want 2", tr.Len())
	}
	if tr.events[0].name != "rank.run" || tr.events[0].duration != 2*time.Millisecond {
		t.Errorf("inner span = %+v", tr.events[0])
	}
	if tr.events[1].duration != 7*time.Millisecond {
		t.Errorf("outer span duration = %v, want 7ms", tr.events[1].duration)
	}
}

func TestSpanDrops(t *testing.T) {
	tr, _ := fakeClockTracer(2)
	for i := 0; i < 5; i++ {
		tr.StartSpan("s").End()
	}
	if tr.Len() != 2 || tr.Dropped() != 3 {
		t.Errorf("len=%d dropped=%d, want 2/3", tr.Len(), tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		OtherData map[string]uint64 `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.OtherData["droppedEvents"] != 3 {
		t.Errorf("droppedEvents = %d, want 3", out.OtherData["droppedEvents"])
	}
}

// TestChromeTraceGolden pins the exact trace-event JSON shape against a
// golden file (regenerate with `go test ./internal/obs -run Golden -update`).
func TestChromeTraceGolden(t *testing.T) {
	tr, advance := fakeClockTracer(0)
	world := tr.StartSpanTID("world.run", 0)
	advance(1500 * time.Microsecond)
	r1 := tr.StartSpanTID("rank.run", 1)
	r1.SetArg("rank", "1")
	advance(250 * time.Microsecond)
	tr.Instant("fault.injected", 1)
	advance(250 * time.Microsecond)
	r1.End()
	world.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	// Shape sanity independent of the exact bytes: valid JSON with the keys
	// Perfetto requires on every event.
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.TraceEvents) != 3 {
		t.Fatalf("events = %d, want 3", len(out.TraceEvents))
	}
	for _, ev := range out.TraceEvents {
		for _, k := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[k]; !ok {
				t.Errorf("event %v missing %q", ev, k)
			}
		}
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("ignored")
	sp.SetArg("k", "v")
	sp.End()
	tr.Instant("ignored", 0)
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer recorded something")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("nil tracer trace is not valid JSON")
	}
}
