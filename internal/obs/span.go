package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMaxSpans bounds the in-memory span recorder; spans ending beyond
// the cap are counted as dropped, never stored.
const DefaultMaxSpans = 1 << 16

// Tracer records spans into a bounded in-memory buffer and exports them as
// Chrome trace-event JSON. A nil *Tracer is the disabled path: StartSpan
// returns a nil *Span and every operation is a no-op nil check.
//
// Span naming convention (docs/OBSERVABILITY.md): dotted lowercase
// "<layer>.<operation>" — e.g. "core.run", "world.run", "rank.run",
// "campaign.golden", "campaign.run". The trace TID carries the MPI rank (or
// campaign worker index), so Perfetto renders one swimlane per rank.
type Tracer struct {
	start time.Time
	now   func() time.Time // test hook; defaults to time.Now

	mu      sync.Mutex
	max     int
	events  []spanEvent
	dropped atomic.Uint64
}

type spanEvent struct {
	name     string
	tid      int
	phase    byte // 'X' complete, 'i' instant
	start    time.Duration
	duration time.Duration
	args     map[string]string
}

// NewTracer creates a tracer storing at most maxSpans spans (<= 0 selects
// DefaultMaxSpans).
func NewTracer(maxSpans int) *Tracer {
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	t := &Tracer{max: maxSpans, now: time.Now}
	t.start = t.now()
	return t
}

// Span is one in-flight timed operation. End records it. A nil *Span (from
// a nil Tracer) no-ops everywhere.
type Span struct {
	t     *Tracer
	name  string
	tid   int
	start time.Duration
	args  map[string]string
}

// StartSpan begins a span on thread lane 0.
func (t *Tracer) StartSpan(name string) *Span { return t.StartSpanTID(name, 0) }

// StartSpanTID begins a span on the given thread lane (by convention the
// MPI rank or worker index).
func (t *Tracer) StartSpanTID(name string, tid int) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, tid: tid, start: t.now().Sub(t.start)}
}

// SetArg attaches a key/value annotation rendered in the trace viewer's
// argument pane.
func (s *Span) SetArg(key, value string) {
	if s == nil {
		return
	}
	if s.args == nil {
		s.args = make(map[string]string, 2)
	}
	s.args[key] = value
}

// End records the span into the tracer's buffer.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	end := t.now().Sub(t.start)
	t.record(spanEvent{
		name: s.name, tid: s.tid, phase: 'X',
		start: s.start, duration: end - s.start, args: s.args,
	})
}

// Instant records a zero-duration marker event on the given lane.
func (t *Tracer) Instant(name string, tid int) {
	if t == nil {
		return
	}
	t.record(spanEvent{name: name, tid: tid, phase: 'i', start: t.now().Sub(t.start)})
}

func (t *Tracer) record(ev spanEvent) {
	t.mu.Lock()
	if len(t.events) >= t.max {
		t.mu.Unlock()
		t.dropped.Add(1)
		return
	}
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Len returns the number of recorded spans (0 on a nil receiver).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many spans exceeded the recorder cap.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// chromeEvent is one entry of the Chrome trace-event JSON array
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
type chromeEvent struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"` // microseconds since trace start
	Dur   float64           `json:"dur"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"` // instant-event scope
	Args  map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container format, which viewers prefer
// over the bare array because it carries metadata.
type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]uint64 `json:"otherData,omitempty"`
}

// WriteChromeTrace serializes the recorded spans as Chrome trace-event JSON
// (object form). Load the file at chrome://tracing or ui.perfetto.dev. The
// dropped-span count, when non-zero, is carried in otherData.droppedEvents.
// A nil tracer writes an empty, still-loadable trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	if t != nil {
		t.mu.Lock()
		events := append([]spanEvent(nil), t.events...)
		t.mu.Unlock()
		micros := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
		for _, ev := range events {
			ce := chromeEvent{
				Name: ev.name, Phase: string(ev.phase), PID: 1, TID: ev.tid,
				TS: micros(ev.start), Dur: micros(ev.duration), Args: ev.args,
			}
			if ev.phase == 'i' {
				ce.Scope = "t"
			}
			out.TraceEvents = append(out.TraceEvents, ce)
		}
		if d := t.Dropped(); d > 0 {
			out.OtherData = map[string]uint64{"droppedEvents": d}
		}
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	return bw.Flush()
}
