package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Event is one structured run-lifecycle or propagation event flowing through
// a Sink. The payload is a fixed set of scalar fields rather than a map so
// that emitting an event never allocates: producers fill only the fields
// their event type defines and leave the rest zero.
type Event struct {
	// Seq is the sink-assigned, strictly increasing sequence number.
	Seq uint64 `json:"seq"`
	// UnixNano is the emission timestamp.
	UnixNano int64 `json:"ts"`
	// Type names the event ("run_started", "inject", "hub_publish", ...).
	// See docs/OBSERVABILITY.md for the event catalog.
	Type string `json:"type"`
	// Run is the campaign run index the event belongs to (-1 outside runs).
	Run int `json:"run"`
	// Rank is the MPI rank (-1 when not rank-scoped).
	Rank int `json:"rank"`
	// A and B are type-specific scalars (a PC and an instruction count, an
	// outcome code, a byte count — whatever the type defines).
	A uint64 `json:"a,omitempty"`
	B uint64 `json:"b,omitempty"`
	// Msg is an optional human-readable detail.
	Msg string `json:"msg,omitempty"`
}

// DefaultSinkCapacity bounds the in-memory event ring.
const DefaultSinkCapacity = 8192

// Sink is a bounded ring buffer of structured events, the streaming
// counterpart of the metrics Registry. Producers Emit; consumers page
// through with Since or block with WaitSince (the dashboard's /events feed).
//
// The contract mirrors the rest of the package: a nil *Sink is the disabled
// configuration, every method no-ops on it, and the disabled Emit path is a
// single nil check — no lock, no allocation (guarded by
// TestEventSinkDisabledNoAlloc). An enabled Emit takes one short mutex
// critical section and allocates nothing either: the ring storage is
// preallocated and old events are overwritten in place, with overwrites
// counted as drops.
type Sink struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // sequence number of the next event to be emitted
	// dropped counts events overwritten before any consumer could have seen
	// them relative to the ring head. Atomic so Dropped never takes the lock.
	dropped atomic.Uint64
	// wake is closed and replaced on every Emit; WaitSince blocks on it.
	wake chan struct{}
}

// NewSink creates a sink holding at most capacity events (<=0 selects
// DefaultSinkCapacity).
func NewSink(capacity int) *Sink {
	if capacity <= 0 {
		capacity = DefaultSinkCapacity
	}
	return &Sink{
		buf:  make([]Event, capacity),
		wake: make(chan struct{}),
	}
}

// Emit appends one event, stamping its sequence number and timestamp. When
// the ring is full the oldest event is overwritten and counted as dropped.
// Safe for concurrent use; a no-op on a nil sink.
func (s *Sink) Emit(typ string, run, rank int, a, b uint64, msg string) {
	if s == nil {
		return
	}
	now := time.Now().UnixNano()
	s.mu.Lock()
	seq := s.next
	s.next++
	if seq >= uint64(len(s.buf)) {
		s.dropped.Add(1)
	}
	s.buf[seq%uint64(len(s.buf))] = Event{
		Seq: seq, UnixNano: now, Type: typ, Run: run, Rank: rank, A: a, B: b, Msg: msg,
	}
	wake := s.wake
	s.wake = make(chan struct{})
	s.mu.Unlock()
	close(wake)
}

// Len returns how many events have ever been emitted (0 on a nil sink).
func (s *Sink) Len() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// Dropped returns how many events were overwritten before consumption.
func (s *Sink) Dropped() uint64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Since returns up to max events with Seq >= seq, plus the sequence number to
// pass on the next call. Events older than the ring's reach are skipped (the
// gap shows as non-contiguous Seq values). A nil sink returns nothing.
func (s *Sink) Since(seq uint64, max int) ([]Event, uint64) {
	if s == nil {
		return nil, seq
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if max <= 0 {
		max = len(s.buf)
	}
	oldest := uint64(0)
	if s.next > uint64(len(s.buf)) {
		oldest = s.next - uint64(len(s.buf))
	}
	if seq < oldest {
		seq = oldest
	}
	var out []Event
	for ; seq < s.next && len(out) < max; seq++ {
		out = append(out, s.buf[seq%uint64(len(s.buf))])
	}
	return out, seq
}

// WaitSince blocks until at least one event with Seq >= seq exists (returning
// immediately when one already does) or the timeout elapses, then behaves
// like Since. It is the long-poll primitive behind the dashboard's /events
// feed. A nil sink sleeps for the timeout and returns nothing, so a disabled
// feed degrades to an idle poller rather than a busy loop.
func (s *Sink) WaitSince(seq uint64, max int, timeout time.Duration) ([]Event, uint64) {
	if s == nil {
		time.Sleep(timeout)
		return nil, seq
	}
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		ready := s.next > seq
		wake := s.wake
		s.mu.Unlock()
		if ready {
			return s.Since(seq, max)
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, seq
		}
		t := time.NewTimer(remain)
		select {
		case <-wake:
			t.Stop()
		case <-t.C:
			return nil, seq
		}
	}
}
