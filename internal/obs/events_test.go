package obs

import (
	"sync"
	"testing"
	"time"
)

func TestSinkEmitSince(t *testing.T) {
	s := NewSink(8)
	for i := 0; i < 5; i++ {
		s.Emit("run_started", i, -1, uint64(i), 0, "")
	}
	evs, next := s.Since(0, 0)
	if len(evs) != 5 || next != 5 {
		t.Fatalf("Since(0) = %d events next=%d, want 5/5", len(evs), next)
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i) || ev.Run != i || ev.Type != "run_started" {
			t.Errorf("event %d = %+v", i, ev)
		}
		if ev.UnixNano == 0 {
			t.Errorf("event %d missing timestamp", i)
		}
	}
	// Paging: resume from the returned cursor.
	s.Emit("run_done", 5, -1, 0, 0, "")
	evs, next = s.Since(next, 0)
	if len(evs) != 1 || evs[0].Type != "run_done" || next != 6 {
		t.Fatalf("paged Since = %v next=%d", evs, next)
	}
}

func TestSinkOverwriteCountsDropped(t *testing.T) {
	s := NewSink(4)
	for i := 0; i < 10; i++ {
		s.Emit("e", i, -1, 0, 0, "")
	}
	if got := s.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6", got)
	}
	// Only the newest 4 remain; a stale cursor snaps forward to the oldest
	// retained event.
	evs, next := s.Since(0, 0)
	if len(evs) != 4 || evs[0].Seq != 6 || next != 10 {
		t.Fatalf("Since after wrap: %d events, first seq %d, next %d", len(evs), evs[0].Seq, next)
	}
	if s.Len() != 10 {
		t.Errorf("Len = %d, want 10", s.Len())
	}
}

func TestSinkSinceMax(t *testing.T) {
	s := NewSink(16)
	for i := 0; i < 10; i++ {
		s.Emit("e", i, -1, 0, 0, "")
	}
	evs, next := s.Since(0, 3)
	if len(evs) != 3 || next != 3 {
		t.Fatalf("Since max=3: %d events next=%d", len(evs), next)
	}
}

func TestSinkWaitSince(t *testing.T) {
	s := NewSink(8)
	// Already-available events return immediately.
	s.Emit("e", 0, -1, 0, 0, "")
	start := time.Now()
	evs, _ := s.WaitSince(0, 0, time.Second)
	if len(evs) != 1 || time.Since(start) > 500*time.Millisecond {
		t.Fatalf("WaitSince with ready event blocked (%v, %d events)", time.Since(start), len(evs))
	}
	// A waiter parked on a future sequence is woken by Emit.
	done := make(chan int, 1)
	go func() {
		evs, _ := s.WaitSince(1, 0, 5*time.Second)
		done <- len(evs)
	}()
	time.Sleep(10 * time.Millisecond)
	s.Emit("late", 1, -1, 0, 0, "")
	select {
	case n := <-done:
		if n != 1 {
			t.Fatalf("woken waiter got %d events, want 1", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitSince never woke")
	}
	// Timeout path returns empty without events.
	evs, next := s.WaitSince(99, 0, 20*time.Millisecond)
	if len(evs) != 0 || next != 99 {
		t.Fatalf("timed-out WaitSince = %v next=%d", evs, next)
	}
}

func TestSinkConcurrentEmit(t *testing.T) {
	s := NewSink(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Emit("e", w, i, 0, 0, "")
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Errorf("Len = %d, want 800", s.Len())
	}
	evs, _ := s.Since(0, 0)
	if len(evs) != 64 {
		t.Errorf("retained %d events, want ring capacity 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-contiguous retained seqs: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

// TestEventSinkDisabledNoAlloc pins the "disabled is free" contract for the
// event sink, like TestDisabledPathAllocFree does for metrics: every
// operation on a nil *Sink must be a nil check, nothing more.
func TestEventSinkDisabledNoAlloc(t *testing.T) {
	var s *Sink
	allocs := testing.AllocsPerRun(1000, func() {
		s.Emit("e", 1, 2, 3, 4, "msg")
		_ = s.Dropped()
		_ = s.Len()
		_, _ = s.Since(0, 10)
	})
	if allocs != 0 {
		t.Errorf("disabled sink allocates %.1f per op, want 0", allocs)
	}
}

// TestSinkEnabledEmitNoAlloc guards the enabled hot path: the ring storage is
// preallocated, so emitting into a warm sink must not allocate either (the
// transient wake channel is the one permitted allocation).
func TestSinkEnabledEmitNoAlloc(t *testing.T) {
	s := NewSink(32)
	s.Emit("warm", 0, 0, 0, 0, "")
	allocs := testing.AllocsPerRun(500, func() {
		s.Emit("e", 1, 2, 3, 4, "msg")
	})
	// One small allocation per Emit (the replacement wake channel) is the
	// accepted cost of the long-poll wakeup; anything beyond that is a ring
	// regression.
	if allocs > 1 {
		t.Errorf("enabled Emit allocates %.1f per event, want <= 1", allocs)
	}
}
