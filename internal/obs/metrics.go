package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. All methods are safe for
// concurrent use and no-op on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value (Prometheus gauges are doubles).
// All methods are safe for concurrent use and no-op on a nil receiver.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits of the value
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the value by d (CAS loop; contended adds retry).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax raises the gauge to v when v exceeds the current value — the
// high-water-mark operation (e.g. peak tainted bytes across a run).
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Buckets are defined by
// ascending inclusive upper bounds with an implicit +Inf bucket at the end.
// Observe is lock-free (one binary search + two atomic adds + one CAS loop
// for the sum). All methods no-op on a nil receiver.
type Histogram struct {
	bounds  []float64 // immutable after construction
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; bounds lists are short
	// (typically <= 12), so a linear scan is as fast and branch-predictable.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Bounds returns a copy of the upper bucket bounds (without +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// BucketCounts returns the per-bucket observation counts; the final entry is
// the +Inf bucket. Counts are non-cumulative (exporters cumulate).
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Standard bucket layouts for the repo's metric catalog.
var (
	// LatencyBuckets covers 1µs – 10s in decades, in seconds.
	LatencyBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}
	// SizeBuckets covers byte counts from 64B to 16MB.
	SizeBuckets = []float64{64, 1 << 10, 16 << 10, 256 << 10, 1 << 20, 16 << 20}
)
