package obs

import (
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if r.Counter("test_total") != c {
		t.Error("same name returned a different counter")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge")
	g.Set(1.5)
	g.Add(2.5)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %v, want 4", got)
	}
	g.SetMax(3) // below current: no change
	if got := g.Value(); got != 4 {
		t.Errorf("SetMax lowered the gauge to %v", got)
	}
	g.SetMax(10)
	if got := g.Value(); got != 10 {
		t.Errorf("SetMax = %v, want 10", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", 1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 50, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 5056.5 {
		t.Errorf("sum = %v, want 5056.5", h.Sum())
	}
	// Bounds are inclusive: 1 falls in the first bucket.
	want := []uint64{2, 1, 1, 1}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("buckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestNilInstrumentsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("anything")
	g := r.Gauge("anything")
	h := r.Histogram("anything", 1, 2)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	g.SetMax(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments must read as zero")
	}
	if h.Bounds() != nil || h.BucketCounts() != nil {
		t.Error("nil histogram must have no buckets")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
}

func TestDisabledPathAllocFree(t *testing.T) {
	var r *Registry
	var tr *Tracer
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(2)
		g.SetMax(9)
		h.Observe(0.5)
		sp := tr.StartSpanTID("s", 1)
		sp.SetArg("k", "v")
		sp.End()
		tr.Instant("i", 0)
	}); n != 0 {
		t.Fatalf("disabled telemetry allocated %v times per op, want 0", n)
	}
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9lives", "has space", "dash-ed", "ünicode"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q accepted", bad)
				}
			}()
			r.Counter(bad)
		}()
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual_use")
	defer func() {
		if recover() == nil {
			t.Error("gauge registration over a counter name accepted")
		}
	}()
	r.Gauge("dual_use")
}

// TestConcurrentRegistration exercises racing get-or-create registration and
// updates from many goroutines; run under -race (CI does).
func TestConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	names := []string{"shared_a_total", "shared_b_total", "shared_c_total"}
	var wg sync.WaitGroup
	const workers, iters = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter(names[i%len(names)]).Inc()
				r.Gauge("shared_gauge").SetMax(float64(i))
				r.Histogram("shared_seconds", LatencyBuckets...).Observe(float64(i) * 1e-6)
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for _, n := range names {
		total += r.Counter(n).Value()
	}
	if total != workers*iters {
		t.Errorf("counter total = %d, want %d", total, workers*iters)
	}
	if got := r.Histogram("shared_seconds").Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
	if got := r.Gauge("shared_gauge").Value(); got != iters-1 {
		t.Errorf("gauge max = %v, want %d", got, iters-1)
	}
}
