package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus serializes every registered metric in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative _bucket/_sum/_count series. Output is sorted by
// metric name so scrapes are diffable. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	bw := bufio.NewWriter(w)
	fnum := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, c := range snap.Counters {
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", c.Name, c.Name, c.Value)
	}
	for _, g := range snap.Gauges {
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", g.Name, g.Name, fnum(g.Value))
	}
	for _, h := range snap.Histograms {
		fmt.Fprintf(bw, "# TYPE %s histogram\n", h.Name)
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.Count
			le := "+Inf"
			if !b.Inf {
				le = fnum(b.UpperBound)
			}
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", h.Name, le, cum)
		}
		fmt.Fprintf(bw, "%s_sum %s\n", h.Name, fnum(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", h.Name, h.Count)
	}
	return bw.Flush()
}

// Snapshot is a point-in-time copy of a registry, the shared source for both
// exporters and for tests.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// CounterSnapshot is one counter's value.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeSnapshot is one gauge's value.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramSnapshot is one histogram's buckets and aggregates.
type HistogramSnapshot struct {
	Name    string           `json:"name"`
	Count   uint64           `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets []BucketSnapshot `json:"buckets"`
}

// BucketSnapshot is one non-cumulative histogram bucket; Inf marks the
// implicit +Inf bucket (UpperBound is meaningless there).
type BucketSnapshot struct {
	UpperBound float64 `json:"le"`
	Inf        bool    `json:"inf,omitempty"`
	Count      uint64  `json:"count"`
}

// Snapshot copies the registry's current state, sorted by metric name. A nil
// registry yields an empty (but non-nil-slice) snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   []CounterSnapshot{},
		Gauges:     []GaugeSnapshot{},
		Histograms: []HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range sortedNames(r.counts) {
		snap.Counters = append(snap.Counters, CounterSnapshot{Name: name, Value: r.counts[name].Value()})
	}
	for _, name := range sortedNames(r.gauges) {
		snap.Gauges = append(snap.Gauges, GaugeSnapshot{Name: name, Value: r.gauges[name].Value()})
	}
	for _, name := range sortedNames(r.hists) {
		h := r.hists[name]
		hs := HistogramSnapshot{Name: name, Count: h.Count(), Sum: h.Sum()}
		counts := h.BucketCounts()
		for i, b := range h.bounds {
			hs.Buckets = append(hs.Buckets, BucketSnapshot{UpperBound: b, Count: counts[i]})
		}
		hs.Buckets = append(hs.Buckets, BucketSnapshot{Inf: true, Count: counts[len(counts)-1]})
		snap.Histograms = append(snap.Histograms, hs)
	}
	return snap
}

// WriteJSON serializes a snapshot of the registry as indented JSON. A nil
// registry writes an empty snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
