package obs

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func populated() *Registry {
	r := NewRegistry()
	r.Counter("vm_instructions_total").Add(1234)
	r.Counter("mpi_messages_total").Add(7)
	r.Gauge("campaign_runs_per_second").Set(41.5)
	h := r.Histogram("tcg_translate_seconds", 1e-6, 1e-3, 1)
	h.Observe(5e-7)
	h.Observe(5e-4)
	h.Observe(0.5)
	h.Observe(7)
	return r
}

// Prometheus text exposition format, restricted to what this repo emits.
var (
	promComment = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
	promSample  = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="(\+Inf|[0-9.eE+-]+)"\})? (\S+)$`)
)

// TestPrometheusLint validates every exported line against the exposition
// format grammar: name syntax, label syntax, parseable values.
func TestPrometheusLint(t *testing.T) {
	var buf bytes.Buffer
	if err := populated().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) < 10 {
		t.Fatalf("suspiciously short exposition:\n%s", buf.String())
	}
	for _, line := range lines {
		if strings.HasPrefix(line, "#") {
			if !promComment.MatchString(line) {
				t.Errorf("bad comment line: %q", line)
			}
			continue
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("bad sample line: %q", line)
			continue
		}
		if _, err := strconv.ParseFloat(m[4], 64); err != nil {
			t.Errorf("unparseable value in %q: %v", line, err)
		}
	}
}

func TestPrometheusHistogramCumulative(t *testing.T) {
	var buf bytes.Buffer
	if err := populated().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`tcg_translate_seconds_bucket{le="1e-06"} 1`,
		`tcg_translate_seconds_bucket{le="0.001"} 2`,
		`tcg_translate_seconds_bucket{le="1"} 3`,
		`tcg_translate_seconds_bucket{le="+Inf"} 4`,
		`tcg_translate_seconds_count 4`,
		"vm_instructions_total 1234",
		"campaign_runs_per_second 41.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestJSONSnapshotRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := populated().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	byName := map[string]uint64{}
	for _, c := range snap.Counters {
		byName[c.Name] = c.Value
	}
	if byName["vm_instructions_total"] != 1234 || byName["mpi_messages_total"] != 7 {
		t.Errorf("counters = %+v", snap.Counters)
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Value != 41.5 {
		t.Errorf("gauges = %+v", snap.Gauges)
	}
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %+v", snap.Histograms)
	}
	h := snap.Histograms[0]
	if h.Count != 4 || len(h.Buckets) != 4 || !h.Buckets[3].Inf {
		t.Errorf("histogram snapshot = %+v", h)
	}
}

func TestSnapshotSorted(t *testing.T) {
	snap := populated().Snapshot()
	if len(snap.Counters) != 2 || snap.Counters[0].Name != "mpi_messages_total" {
		t.Errorf("counters not sorted: %+v", snap.Counters)
	}
}

func TestNilRegistryExports(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil prometheus export: err=%v len=%d", err, buf.Len())
	}
	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("nil JSON export invalid: %v", err)
	}
}
