// Package server implements chaserd, the crash-tolerant campaign control
// plane: an HTTP API that accepts experiment specs, splits each campaign
// into shards, persists every state transition in a CRC-framed JSONL
// write-ahead log, and schedules the shards across worker processes under
// expiring leases. Worker death, wedged workers, and chaserd restarts are
// routine, recoverable events: shards are re-enqueued with bounded retry
// and exponential backoff, resumed from their journals so no run executes
// twice in the merged summary, and quarantined when they poison every
// worker that touches them. Per-tenant namespaces carry quotas and
// token-bucket rate limits that degrade gracefully (HTTP 429 + Retry-After,
// mirroring the TaintHub's BusyError contract).
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"chaser/internal/apps"
	"chaser/internal/campaign"
)

// Spec is an experiment specification submitted to chaserd: one campaign
// against one registered application. The zero values of optional fields
// select defaults at submit time (see normalize).
type Spec struct {
	// Tenant is the namespace the campaign is accounted against (quotas,
	// rate limits). Empty selects "default".
	Tenant string `json:"tenant,omitempty"`
	// App names a registered guest application (apps.ByName).
	App string `json:"app"`
	// Runs is the number of injection runs.
	Runs int `json:"runs"`
	// Seed makes the campaign reproducible; together with App and Runs it
	// fully determines every run's injection point.
	Seed int64 `json:"seed"`
	// Bits is the number of bits flipped per injection (0 = 1).
	Bits int `json:"bits,omitempty"`
	// Shards is how many lease-scheduled slices the run index space is cut
	// into (0 = min(DefaultShards, Runs)).
	Shards int `json:"shards,omitempty"`
	// Trace enables propagation tracing on every run.
	Trace bool `json:"trace,omitempty"`
	// Parallel is the worker-process-local parallelism while executing one
	// shard (0 = GOMAXPROCS).
	Parallel int `json:"parallel,omitempty"`
	// RunTimeoutMs is the per-run wall-clock watchdog in milliseconds
	// (0 = none).
	RunTimeoutMs int64 `json:"run_timeout_ms,omitempty"`
}

// Decoder bounds. Submissions come from the network, so every dimension a
// spec can grow in is capped before any resource is committed to it.
const (
	// MaxSpecBytes caps one encoded spec (64 KiB is ~3 orders of magnitude
	// above any legitimate spec).
	MaxSpecBytes = 64 << 10
	// MaxRuns caps a single campaign's run count.
	MaxRuns = 1_000_000
	// MaxShards caps the shard fan-out of one campaign.
	MaxShards = 4096
	// MaxParallel caps per-shard worker parallelism.
	MaxParallel = 1024
	// MaxTenantLen caps the tenant name.
	MaxTenantLen = 64
	// DefaultShards is the shard count when the spec leaves it zero.
	DefaultShards = 4
)

// SpecSizeError reports a spec exceeding MaxSpecBytes (or the submitted
// limit). Mirrors the hub's FrameError: the payload is refused before it is
// fully buffered.
type SpecSizeError struct {
	Size  int // bytes seen before giving up (at least Limit+1)
	Limit int
}

func (e *SpecSizeError) Error() string {
	return fmt.Sprintf("server: spec over %d bytes (saw %d)", e.Limit, e.Size)
}

// SpecError reports a syntactically or semantically invalid spec. Field
// names the offending field ("json" for undecodable payloads).
type SpecError struct {
	Field  string
	Reason string
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("server: invalid spec: %s: %s", e.Field, e.Reason)
}

// DecodeSpec reads and validates one experiment spec from r, bounding the
// payload at limit bytes (<=0 selects MaxSpecBytes). It is the single entry
// point of the submission decoder — the FuzzDecodeSpec target guarantees
// malformed or oversized payloads surface as *SpecError / *SpecSizeError,
// never as a panic. App existence is not checked here (the registry is a
// submit-time concern); everything structural is.
func DecodeSpec(r io.Reader, limit int) (Spec, error) {
	if limit <= 0 {
		limit = MaxSpecBytes
	}
	raw, err := io.ReadAll(io.LimitReader(r, int64(limit)+1))
	if err != nil {
		return Spec{}, &SpecError{Field: "json", Reason: err.Error()}
	}
	if len(raw) > limit {
		return Spec{}, &SpecSizeError{Size: len(raw), Limit: limit}
	}
	var sp Spec
	if err := json.Unmarshal(raw, &sp); err != nil {
		return Spec{}, &SpecError{Field: "json", Reason: err.Error()}
	}
	if err := sp.validate(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// validate checks every structural bound. It never consults the app
// registry, so it is pure and fuzz-friendly.
func (sp Spec) validate() error {
	if sp.App == "" {
		return &SpecError{Field: "app", Reason: "required"}
	}
	if !wellFormedName(sp.App) {
		return &SpecError{Field: "app", Reason: "must be [a-z0-9_-], at most 64 chars"}
	}
	if sp.Tenant != "" && !wellFormedName(sp.Tenant) {
		return &SpecError{Field: "tenant", Reason: "must be [a-z0-9_-], at most 64 chars"}
	}
	if sp.Runs <= 0 || sp.Runs > MaxRuns {
		return &SpecError{Field: "runs", Reason: fmt.Sprintf("must be in [1, %d]", MaxRuns)}
	}
	if sp.Bits < 0 || sp.Bits > 64 {
		return &SpecError{Field: "bits", Reason: "must be in [0, 64]"}
	}
	if sp.Shards < 0 || sp.Shards > MaxShards {
		return &SpecError{Field: "shards", Reason: fmt.Sprintf("must be in [0, %d]", MaxShards)}
	}
	if sp.Parallel < 0 || sp.Parallel > MaxParallel {
		return &SpecError{Field: "parallel", Reason: fmt.Sprintf("must be in [0, %d]", MaxParallel)}
	}
	if sp.RunTimeoutMs < 0 {
		return &SpecError{Field: "run_timeout_ms", Reason: "must be >= 0"}
	}
	return nil
}

// wellFormedName bounds tenant and app names to a safe identifier charset
// (they appear in file paths and metrics).
func wellFormedName(s string) bool {
	if len(s) == 0 || len(s) > MaxTenantLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// normalize fills defaulted fields in, clamping the shard count to the run
// count so no shard is empty.
func (sp Spec) normalize() Spec {
	if sp.Tenant == "" {
		sp.Tenant = "default"
	}
	if sp.Bits == 0 {
		sp.Bits = 1
	}
	if sp.Shards == 0 {
		sp.Shards = DefaultShards
	}
	if sp.Shards > sp.Runs {
		sp.Shards = sp.Runs
	}
	return sp
}

// shardRange returns shard i's half-open run window. Runs are split into
// near-equal contiguous slices; the first Runs%Shards shards take one extra.
func (sp Spec) shardRange(i int) (lo, hi int) {
	per, extra := sp.Runs/sp.Shards, sp.Runs%sp.Shards
	lo = i*per + min(i, extra)
	hi = lo + per
	if i < extra {
		hi++
	}
	return lo, hi
}

// campaignConfig translates a spec into the campaign configuration every
// shard worker and the merge step share. The translation must be
// deterministic: workers and the merging scheduler each rebuild it
// independently and their summaries must agree bitwise.
func campaignConfig(sp Spec, app apps.App, nsBase int) campaign.Config {
	return campaign.Config{
		Name:             app.Name,
		Prog:             app.Prog,
		WorldSize:        app.WorldSize,
		Ops:              app.DefaultOps,
		TargetRank:       app.TargetRank,
		Runs:             sp.Runs,
		Bits:             sp.Bits,
		Seed:             sp.Seed,
		Trace:            sp.Trace,
		Parallel:         sp.Parallel,
		RunTimeout:       time.Duration(sp.RunTimeoutMs) * time.Millisecond,
		HubNamespaceBase: nsBase,
	}
}
