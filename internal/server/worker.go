package server

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"time"

	"chaser/internal/apps"
	"chaser/internal/campaign"
	"chaser/internal/obs"
	"chaser/internal/tainthub"
)

// Control is the worker's view of the scheduler: claim a shard, keep its
// lease alive, report the result. LocalControl binds it in-process (tests,
// single-binary mode); Client binds it over HTTP (the worker fleet).
type Control interface {
	// Claim requests work. (nil, nil) means none is currently available.
	Claim(worker string) (*Assignment, error)
	// Heartbeat extends the lease; ErrLeaseUnknown means it is gone and the
	// worker must abandon the shard.
	Heartbeat(token string) error
	// Complete reports successful shard execution.
	Complete(token string) error
	// Fail reports a shard execution error.
	Fail(token, reason string) error
}

// LocalControl adapts a Scheduler into a Control for in-process workers.
type LocalControl struct{ Sched *Scheduler }

func (l LocalControl) Claim(worker string) (*Assignment, error) { return l.Sched.Claim(worker) }
func (l LocalControl) Heartbeat(token string) error             { return l.Sched.Heartbeat(token) }
func (l LocalControl) Complete(token string) error              { return l.Sched.Complete(token) }
func (l LocalControl) Fail(token, reason string) error          { return l.Sched.Fail(token, reason) }

// WorkerConfig tunes one worker process.
type WorkerConfig struct {
	// Name identifies the worker in scheduler logs and shard status.
	Name string
	// Control is the scheduler binding (required).
	Control Control
	// PollInterval is the idle claim retry cadence (default 500ms).
	PollInterval time.Duration
	// IdleExit, when positive, stops the worker after that long without
	// claimable work (batch mode; 0 = run until Stop).
	IdleExit time.Duration
	// Obs receives worker telemetry (nil disables it).
	Obs *obs.Registry
	// Logf overrides the worker's logger (nil = log.Printf).
	Logf func(format string, args ...any)
	// RunShard overrides shard execution (tests stub it; nil = ExecuteShard).
	RunShard func(a *Assignment) error
}

// Worker claims shards from a Control and executes them until stopped. The
// failure contract is symmetrical with the scheduler's: any shard error —
// including a panic in the campaign engine — is reported via Fail so the
// scheduler can retry elsewhere or quarantine, and a lease the scheduler no
// longer recognizes makes the worker abandon the shard silently (its
// journal keeps the completed runs).
type Worker struct {
	cfg  WorkerConfig
	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewWorker builds a worker. Call Run (blocking) or Start (background).
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 500 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	// Jitter RNG seeded from the worker name: deterministic per worker but
	// decorrelated across a fleet, so heartbeats and claim retries never
	// phase-lock into a thundering herd against a freshly promoted leader.
	return &Worker{
		cfg:  cfg,
		stop: make(chan struct{}),
		rng:  rand.New(rand.NewSource(int64(siteHash(cfg.Name)))),
	}
}

// jitter scales base by a uniform draw from [lo, lo+spread).
func (w *Worker) jitter(base time.Duration, lo, spread float64) time.Duration {
	w.rngMu.Lock()
	f := lo + spread*w.rng.Float64()
	w.rngMu.Unlock()
	return time.Duration(float64(base) * f)
}

// Start runs the worker loop in the background.
func (w *Worker) Start() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		w.Run()
	}()
}

// Stop asks the worker to finish its current shard and exit; it returns
// after the loop has drained.
func (w *Worker) Stop() {
	w.once.Do(func() { close(w.stop) })
	w.wg.Wait()
}

// Run is the claim-execute loop. It returns when stopped, or — with
// IdleExit set — after the idle deadline passes with no claimable work.
func (w *Worker) Run() {
	idleSince := time.Now()
	for {
		select {
		case <-w.stop:
			return
		default:
		}
		a, err := w.cfg.Control.Claim(w.cfg.Name)
		if err != nil {
			w.cfg.Logf("%s: claim: %v", w.cfg.Name, err)
		}
		if a == nil {
			if w.cfg.IdleExit > 0 && time.Since(idleSince) >= w.cfg.IdleExit {
				w.cfg.Logf("%s: idle for %s; exiting", w.cfg.Name, w.cfg.IdleExit)
				return
			}
			select {
			case <-w.stop:
				return
			case <-time.After(w.jitter(w.cfg.PollInterval, 0.5, 1.0)):
			}
			continue
		}
		idleSince = time.Now()
		w.cfg.Obs.Counter("worker_shards_claimed_total").Inc()
		w.cfg.Logf("%s: claimed campaign %s shard %d (runs [%d,%d))",
			w.cfg.Name, a.Campaign, a.Shard, a.Lo, a.Hi)
		w.execute(a)
	}
}

// execute runs one assignment under a live lease, converting every failure
// mode — error return, panic, lost lease — into the right Control call.
func (w *Worker) execute(a *Assignment) {
	// Heartbeat at a third of the TTL so two beats can be lost before the
	// lease expires. lost is closed when the scheduler disowns the lease
	// (expired, or chaserd restarted): the shard's work is abandoned —
	// NOT completed — because another worker may already own it.
	lost := make(chan struct{})
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		interval := time.Duration(a.TTLMs) * time.Millisecond / 3
		if interval <= 0 {
			interval = time.Second
		}
		// Each beat lands at 0.7x-1.3x the base interval: the mean keeps
		// the two-missed-beats safety margin while a worker fleet spreads
		// its load over the window instead of beating in lockstep.
		timer := time.NewTimer(w.jitter(interval, 0.7, 0.6))
		defer timer.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-timer.C:
				timer.Reset(w.jitter(interval, 0.7, 0.6))
				if err := w.cfg.Control.Heartbeat(a.Token); err != nil {
					if errors.Is(err, ErrLeaseUnknown) {
						w.cfg.Logf("%s: lease for campaign %s shard %d gone; abandoning",
							w.cfg.Name, a.Campaign, a.Shard)
						w.cfg.Obs.Counter("worker_shards_abandoned_total").Inc()
						close(lost)
						return
					}
					w.cfg.Logf("%s: heartbeat: %v", w.cfg.Name, err)
				}
			}
		}
	}()

	err := w.runShard(a, lost)
	close(hbStop)
	hbWG.Wait()

	select {
	case <-lost:
		// Lease disowned mid-run: nothing to report; the journal keeps
		// whatever completed.
		return
	default:
	}
	if err != nil {
		if rerr := w.cfg.Control.Fail(a.Token, err.Error()); rerr != nil {
			if !errors.Is(rerr, ErrLeaseUnknown) {
				w.cfg.Logf("%s: fail report: %v", w.cfg.Name, rerr)
			}
			return
		}
		w.cfg.Obs.Counter("worker_shards_failed_total").Inc()
		return
	}
	if rerr := w.cfg.Control.Complete(a.Token); rerr != nil {
		if !errors.Is(rerr, ErrLeaseUnknown) {
			w.cfg.Logf("%s: complete report: %v", w.cfg.Name, rerr)
		}
		return
	}
	w.cfg.Obs.Counter("worker_shards_completed_total").Inc()
}

// runShard executes the assignment, converting panics into errors so a
// poisoned shard (one that crashes the engine deterministically) surfaces
// as bounded retries and quarantine instead of killing the worker fleet.
func (w *Worker) runShard(a *Assignment, lost <-chan struct{}) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	if w.cfg.RunShard != nil {
		return w.cfg.RunShard(a)
	}
	return ExecuteShard(a, lost, w.cfg.Obs)
}

// ExecuteShard runs one shard of a campaign: build the deterministic
// campaign config from the assignment, journal to the shard's stable path
// (resuming if a previous attempt left one — re-enqueued shards pick up
// where the dead worker stopped), and execute only the assigned run window.
// stop aborts execution early (lost lease, worker shutdown).
func ExecuteShard(a *Assignment, stop <-chan struct{}, reg *obs.Registry) error {
	app, err := apps.ByName(a.Spec.App)
	if err != nil {
		return err
	}
	cfg := campaignConfig(a.Spec, app, a.NSBase)
	cfg.Shard = &campaign.ShardRange{Lo: a.Lo, Hi: a.Hi}
	cfg.Stop = stop
	cfg.Obs = reg
	if _, err := os.Stat(a.Journal); err == nil {
		cfg.Resume = a.Journal
	} else {
		cfg.Journal = a.Journal
	}
	if a.Hub != "" {
		client, err := tainthub.DialConfig(a.Hub, tainthub.ClientConfig{MaxAttempts: 12})
		if err != nil {
			return fmt.Errorf("connecting to taint hub: %w", err)
		}
		defer client.Close()
		cfg.Hub = client
	}
	_, err = campaign.Run(cfg)
	if errors.Is(err, campaign.ErrInterrupted) {
		return fmt.Errorf("shard interrupted: %w", err)
	}
	return err
}
