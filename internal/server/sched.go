package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log"
	"sync"
	"time"

	"chaser/internal/apps"
	"chaser/internal/campaign"
	"chaser/internal/obs"
)

// Shard lifecycle. Pending shards sit in the scheduler's queue (with a
// not-before stamp implementing retry backoff); a worker's Claim moves one
// to Leased under an expiring lease; Complete moves it to Done. Three
// things send a Leased shard back to Pending: an explicit Fail from the
// worker, lease expiry (the worker died or wedged — detected by the expiry
// loop when heartbeats stop), and a chaserd restart (leases are volatile by
// design, see store.go). After MaxShardRetries requeues the shard is
// quarantined as poison and its campaign fails rather than looping a
// crashing workload through the worker fleet forever.
type shardState int

const (
	shardPending shardState = iota
	shardLeased
	shardDone
	shardQuarantined
)

func (s shardState) String() string {
	switch s {
	case shardPending:
		return "pending"
	case shardLeased:
		return "leased"
	case shardDone:
		return "done"
	case shardQuarantined:
		return "quarantined"
	}
	return fmt.Sprintf("shardstate(%d)", int(s))
}

// shard is one lease-scheduled slice of a campaign's run index space.
type shard struct {
	idx       int
	lo, hi    int
	state     shardState
	retries   int
	notBefore time.Time // backoff gate while pending
	lease     *lease
	lastErr   string
}

// lease is one worker's claim on one shard.
type lease struct {
	token   string
	cid     string
	shard   int
	worker  string
	expires time.Time
}

// Campaign status values.
const (
	StatusActive   = "active"
	StatusComplete = "complete"
	StatusFailed   = "failed"
)

// campaignState is the scheduler's view of one submitted campaign.
type campaignState struct {
	id     string
	tenant string
	spec   Spec
	hub    string
	nsBase int
	shards []*shard
	status string
	errMsg string
	// done is closed when the campaign reaches a terminal state; summary
	// long-polls block on it.
	done    chan struct{}
	report  string
	summary *campaign.Summary
}

func (c *campaignState) terminal() bool { return c.status != StatusActive }

// Assignment is everything a worker needs to execute one shard.
type Assignment struct {
	Campaign string `json:"campaign"`
	Shard    int    `json:"shard"`
	Lo       int    `json:"lo"`
	Hi       int    `json:"hi"`
	Spec     Spec   `json:"spec"`
	// Hub is the campaign's TaintHub address ("" = private in-process hubs);
	// NSBase offsets the run namespaces on it.
	Hub    string `json:"hub,omitempty"`
	NSBase int    `json:"ns_base,omitempty"`
	// Journal is the shard's run journal path (stable across re-enqueues).
	Journal string `json:"journal"`
	// Token authenticates heartbeat/complete/fail for this lease.
	Token string `json:"token"`
	// TTLMs is the lease duration; the worker must heartbeat well within it.
	TTLMs int64 `json:"ttl_ms"`
}

// ErrLeaseUnknown is returned for a token the scheduler does not recognize:
// the lease expired, was re-assigned, or belonged to a chaserd instance
// that has since restarted. The worker must abandon the shard.
var ErrLeaseUnknown = errors.New("server: unknown or expired lease")

// SchedConfig tunes the scheduler. The zero value selects production
// defaults; tests shrink the timings.
type SchedConfig struct {
	// LeaseTTL is how long a claim lives between heartbeats (default 15s).
	LeaseTTL time.Duration
	// ExpiryInterval is how often expired leases are collected (default
	// LeaseTTL/4).
	ExpiryInterval time.Duration
	// MaxShardRetries is how many requeues a shard gets before quarantine
	// (default 3).
	MaxShardRetries int
	// BackoffBase/BackoffMax shape the requeue backoff: base<<retries,
	// capped (defaults 250ms / 15s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Hubs lists TaintHub addresses; campaigns are assigned one by
	// consistent hash so hub capacity shards horizontally. Empty = private
	// in-process hubs per run.
	Hubs []string
	// DefaultShards overrides the spec-level default shard count for specs
	// that leave Shards zero (0 = DefaultShards const).
	DefaultShards int
	// Obs receives scheduler telemetry (nil disables it).
	Obs *obs.Registry
	// Logf overrides the scheduler's logger (nil = log.Printf).
	Logf func(format string, args ...any)
	// OnTerminal, when non-nil, is called (outside the scheduler lock) each
	// time a campaign reaches a terminal state; the server uses it to
	// release tenant quota.
	OnTerminal func(tenant string)
}

func (c SchedConfig) withDefaults() SchedConfig {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.ExpiryInterval <= 0 {
		c.ExpiryInterval = c.LeaseTTL / 4
	}
	if c.MaxShardRetries <= 0 {
		c.MaxShardRetries = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 250 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 15 * time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Scheduler owns campaign and shard state: submission, lease-based claim /
// heartbeat / complete / fail, lease expiry, requeue with backoff, poison
// quarantine, and the merge that turns a finished campaign's shard journals
// into its summary. All methods are safe for concurrent use.
type Scheduler struct {
	cfg   SchedConfig
	store *Store

	mu        sync.Mutex
	campaigns map[string]*campaignState
	order     []string // submission order, for fair claim scanning
	leases    map[string]*lease
	nextID    int
	nextToken int
	nextNS    int

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewScheduler builds a scheduler over an opened store, replaying the WAL
// records OpenStore returned. Recovered non-terminal campaigns have their
// unfinished shards re-enqueued (counted in server_shards_requeued_total —
// a restart is just a mass lease expiry).
func NewScheduler(store *Store, recs []walRecord, cfg SchedConfig) (*Scheduler, error) {
	s := &Scheduler{
		cfg:       cfg.withDefaults(),
		store:     store,
		campaigns: make(map[string]*campaignState),
		leases:    make(map[string]*lease),
		stop:      make(chan struct{}),
	}
	if err := s.replay(recs); err != nil {
		return nil, err
	}
	s.wg.Add(1)
	go s.expiryLoop()
	return s, nil
}

// replay rebuilds in-memory state from WAL records.
func (s *Scheduler) replay(recs []walRecord) error {
	for _, rec := range recs {
		switch rec.T {
		case "campaign":
			if rec.Spec == nil {
				return fmt.Errorf("server: wal: campaign record %s without spec", rec.C)
			}
			s.addCampaignLocked(rec.C, *rec.Spec, rec.Hub, rec.NSBase)
		case "done":
			if c := s.campaigns[rec.C]; c != nil && rec.Shard < len(c.shards) {
				c.shards[rec.Shard].state = shardDone
			}
		case "requeue":
			if c := s.campaigns[rec.C]; c != nil && rec.Shard < len(c.shards) {
				sh := c.shards[rec.Shard]
				sh.retries = rec.Retries
				sh.lastErr = rec.Reason
			}
		case "quarantine":
			if c := s.campaigns[rec.C]; c != nil && rec.Shard < len(c.shards) {
				sh := c.shards[rec.Shard]
				sh.state = shardQuarantined
				sh.lastErr = rec.Reason
			}
		case "complete":
			if c := s.campaigns[rec.C]; c != nil {
				c.status = StatusComplete
				// Startup compaction folds a terminal campaign down to its
				// campaign + terminal records, so the per-shard done records
				// may be gone: the terminal record implies all of them.
				for _, sh := range c.shards {
					sh.state = shardDone
				}
				close(c.done)
			}
		case "failed":
			if c := s.campaigns[rec.C]; c != nil {
				c.status = StatusFailed
				c.errMsg = rec.Err
				close(c.done)
			}
		default:
			// Unknown record types are skipped, not fatal: a newer chaserd
			// may have written records this build does not understand.
			s.cfg.Logf("chaserd: wal: skipping unknown record type %q", rec.T)
		}
	}
	// Count shards coming back from the dead: they were leased or pending
	// when the previous instance died and are pending again now.
	requeued := 0
	for _, c := range s.campaigns {
		if c.terminal() {
			continue
		}
		for _, sh := range c.shards {
			if sh.state == shardPending && sh.retries > 0 {
				requeued++
			}
		}
		// A recovered complete-but-unrecorded campaign (crash between the
		// last shard's done record and the complete record) merges now.
		s.maybeFinishLocked(c)
	}
	if requeued > 0 {
		s.cfg.Obs.Counter("server_shards_requeued_total").Add(uint64(requeued))
		s.cfg.Logf("chaserd: recovered %d requeued shards from the WAL", requeued)
	}
	return nil
}

// addCampaignLocked materializes campaign state (submission and replay
// share it). Callers hold s.mu or run before the scheduler is visible.
func (s *Scheduler) addCampaignLocked(id string, sp Spec, hub string, nsBase int) *campaignState {
	c := &campaignState{
		id:     id,
		tenant: sp.Tenant,
		spec:   sp,
		hub:    hub,
		nsBase: nsBase,
		status: StatusActive,
		done:   make(chan struct{}),
		shards: make([]*shard, sp.Shards),
	}
	for i := range c.shards {
		lo, hi := sp.shardRange(i)
		c.shards[i] = &shard{idx: i, lo: lo, hi: hi}
	}
	s.campaigns[id] = c
	s.order = append(s.order, id)
	// Track ID and namespace high-water marks so new submissions never
	// collide with recovered ones.
	var n int
	if _, err := fmt.Sscanf(id, "c%06d", &n); err == nil && n >= s.nextID {
		s.nextID = n + 1
	}
	if end := nsBase + sp.Runs; end > s.nextNS {
		s.nextNS = end
	}
	return c
}

// Submit validates the app, assigns the campaign an ID, a hub (consistent
// hash over the configured hub pool) and a hub namespace window, persists
// it, and enqueues its shards.
func (s *Scheduler) Submit(sp Spec) (string, error) {
	if sp.Shards == 0 && s.cfg.DefaultShards > 0 {
		sp.Shards = s.cfg.DefaultShards
	}
	sp = sp.normalize()
	if err := sp.validate(); err != nil {
		return "", err
	}
	if _, err := apps.ByName(sp.App); err != nil {
		return "", &SpecError{Field: "app", Reason: err.Error()}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id := fmt.Sprintf("c%06d", s.nextID)
	s.nextID++
	hub := ""
	if len(s.cfg.Hubs) > 0 {
		h := fnv.New32a()
		h.Write([]byte(id))
		hub = s.cfg.Hubs[int(h.Sum32())%len(s.cfg.Hubs)]
	}
	nsBase := s.nextNS
	if err := s.store.Append(walRecord{T: "campaign", C: id, Spec: &sp, Hub: hub, NSBase: nsBase}); err != nil {
		s.nextID-- // not persisted; reuse the ID
		return "", err
	}
	s.addCampaignLocked(id, sp, hub, nsBase)
	s.cfg.Obs.Counter("server_campaigns_submitted_total").Inc()
	s.cfg.Obs.Counter("server_shards_total").Add(uint64(sp.Shards))
	return id, nil
}

// Claim hands the longest-waiting eligible shard to a worker under a fresh
// lease. It returns (nil, nil) when nothing is currently claimable (all
// pending shards are backing off, or there is no work).
func (s *Scheduler) Claim(worker string) (*Assignment, error) {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range s.order {
		c := s.campaigns[id]
		if c.terminal() {
			continue
		}
		for _, sh := range c.shards {
			if sh.state != shardPending || now.Before(sh.notBefore) {
				continue
			}
			s.nextToken++
			l := &lease{
				token:   fmt.Sprintf("%s.%d.%d", c.id, sh.idx, s.nextToken),
				cid:     c.id,
				shard:   sh.idx,
				worker:  worker,
				expires: now.Add(s.cfg.LeaseTTL),
			}
			sh.state = shardLeased
			sh.lease = l
			s.leases[l.token] = l
			s.cfg.Obs.Counter("server_leases_granted_total").Inc()
			s.cfg.Obs.Gauge("server_leases_active").Set(float64(len(s.leases)))
			return &Assignment{
				Campaign: c.id,
				Shard:    sh.idx,
				Lo:       sh.lo,
				Hi:       sh.hi,
				Spec:     c.spec,
				Hub:      c.hub,
				NSBase:   c.nsBase,
				Journal:  s.store.JournalPath(c.id, sh.idx),
				Token:    l.token,
				TTLMs:    s.cfg.LeaseTTL.Milliseconds(),
			}, nil
		}
	}
	return nil, nil
}

// Heartbeat extends a lease to a full TTL from now.
func (s *Scheduler) Heartbeat(token string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.leases[token]
	if l == nil {
		return ErrLeaseUnknown
	}
	l.expires = time.Now().Add(s.cfg.LeaseTTL)
	return nil
}

// Complete marks a leased shard done. When it was the campaign's last open
// shard, the campaign's journals are merged into its summary.
func (s *Scheduler) Complete(token string) error {
	s.mu.Lock()
	l := s.leases[token]
	if l == nil {
		s.mu.Unlock()
		return ErrLeaseUnknown
	}
	c := s.campaigns[l.cid]
	sh := c.shards[l.shard]
	s.releaseLocked(l)
	sh.state = shardDone
	sh.lastErr = ""
	if err := s.store.Append(walRecord{T: "done", C: c.id, Shard: sh.idx}); err != nil {
		s.mu.Unlock()
		return err
	}
	s.cfg.Obs.Counter("server_shards_completed_total").Inc()
	terminal := s.maybeFinishLocked(c)
	tenant := c.tenant
	s.mu.Unlock()
	if terminal && s.cfg.OnTerminal != nil {
		s.cfg.OnTerminal(tenant)
	}
	return nil
}

// Fail reports a shard execution failure; the shard is re-enqueued with
// backoff or quarantined once its retry budget is spent.
func (s *Scheduler) Fail(token, reason string) error {
	s.mu.Lock()
	l := s.leases[token]
	if l == nil {
		s.mu.Unlock()
		return ErrLeaseUnknown
	}
	terminal, tenant := s.requeueLocked(l, reason), s.campaigns[l.cid].tenant
	s.mu.Unlock()
	if terminal && s.cfg.OnTerminal != nil {
		s.cfg.OnTerminal(tenant)
	}
	return nil
}

// releaseLocked drops a lease. Callers hold s.mu.
func (s *Scheduler) releaseLocked(l *lease) {
	delete(s.leases, l.token)
	if sh := s.campaigns[l.cid].shards[l.shard]; sh.lease == l {
		sh.lease = nil
	}
	s.cfg.Obs.Gauge("server_leases_active").Set(float64(len(s.leases)))
}

// requeueLocked sends a failed or expired shard back to the queue with
// exponential backoff, or quarantines it once retries are exhausted
// (failing its campaign). Returns whether the campaign reached a terminal
// state. Callers hold s.mu.
func (s *Scheduler) requeueLocked(l *lease, reason string) bool {
	c := s.campaigns[l.cid]
	sh := c.shards[l.shard]
	s.releaseLocked(l)
	sh.lastErr = reason
	if sh.retries >= s.cfg.MaxShardRetries {
		sh.state = shardQuarantined
		if err := s.store.Append(walRecord{T: "quarantine", C: c.id, Shard: sh.idx, Reason: reason}); err != nil {
			s.cfg.Logf("chaserd: wal: %v", err)
		}
		s.cfg.Obs.Counter("server_shards_quarantined_total").Inc()
		s.cfg.Logf("chaserd: campaign %s shard %d quarantined after %d attempts: %s",
			c.id, sh.idx, sh.retries+1, reason)
		return s.failCampaignLocked(c, fmt.Sprintf("shard %d quarantined: %s", sh.idx, reason))
	}
	sh.retries++
	backoff := s.cfg.BackoffBase << uint(sh.retries-1)
	if backoff <= 0 || backoff > s.cfg.BackoffMax {
		backoff = s.cfg.BackoffMax
	}
	sh.state = shardPending
	sh.notBefore = time.Now().Add(backoff)
	if err := s.store.Append(walRecord{T: "requeue", C: c.id, Shard: sh.idx, Retries: sh.retries, Reason: reason}); err != nil {
		s.cfg.Logf("chaserd: wal: %v", err)
	}
	s.cfg.Obs.Counter("server_shards_requeued_total").Inc()
	s.cfg.Logf("chaserd: campaign %s shard %d requeued (retry %d/%d, backoff %s): %s",
		c.id, sh.idx, sh.retries, s.cfg.MaxShardRetries, backoff, reason)
	return false
}

// failCampaignLocked moves a campaign to StatusFailed. Returns true when
// the campaign transitioned to a terminal state now. Callers hold s.mu.
func (s *Scheduler) failCampaignLocked(c *campaignState, msg string) bool {
	if c.terminal() {
		return false
	}
	c.status = StatusFailed
	c.errMsg = msg
	if err := s.store.Append(walRecord{T: "failed", C: c.id, Err: msg}); err != nil {
		s.cfg.Logf("chaserd: wal: %v", err)
	}
	close(c.done)
	return true
}

// maybeFinishLocked merges a campaign whose shards are all done. Returns
// whether the campaign reached a terminal state. Callers hold s.mu; the
// merge itself reads only immutable journal files and the campaign's spec,
// both safe under the lock (journals of done shards no longer change).
func (s *Scheduler) maybeFinishLocked(c *campaignState) bool {
	if c.terminal() {
		return false
	}
	for _, sh := range c.shards {
		if sh.state != shardDone {
			return false
		}
	}
	app, err := apps.ByName(c.spec.App)
	if err != nil {
		return s.failCampaignLocked(c, err.Error())
	}
	cfg := campaignConfig(c.spec, app, c.nsBase)
	cfg.Obs = s.cfg.Obs
	paths := make([]string, len(c.shards))
	for i := range c.shards {
		paths[i] = s.store.JournalPath(c.id, i)
	}
	sum, err := campaign.MergeJournals(cfg, s.cfg.Obs, paths...)
	if err != nil {
		return s.failCampaignLocked(c, fmt.Sprintf("merge: %v", err))
	}
	c.summary = sum
	c.report = sum.Report()
	if data, err := json.Marshal(struct {
		Report  string            `json:"report"`
		Summary *campaign.Summary `json:"summary"`
	}{c.report, sum}); err == nil {
		if werr := s.store.WriteSummary(c.id, data); werr != nil {
			s.cfg.Logf("chaserd: %v", werr)
		}
	}
	if err := s.store.Append(walRecord{T: "complete", C: c.id}); err != nil {
		s.cfg.Logf("chaserd: wal: %v", err)
	}
	c.status = StatusComplete
	close(c.done)
	s.cfg.Obs.Counter("server_campaigns_completed_total").Inc()
	s.cfg.Logf("chaserd: campaign %s complete (%d runs over %d shards)", c.id, c.spec.Runs, len(c.shards))
	return true
}

// expiryLoop collects dead leases: a worker that stopped heartbeating —
// killed, OOMed, wedged, partitioned — has its shard re-enqueued exactly as
// if it had reported failure. ZOFI's cheap-restart philosophy, applied to
// the scheduler: worker death is routine, not exceptional.
func (s *Scheduler) expiryLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.ExpiryInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.expireOnce(time.Now())
		}
	}
}

// expireOnce requeues every lease past its deadline (exposed for tests).
func (s *Scheduler) expireOnce(now time.Time) {
	var terminal []string
	s.mu.Lock()
	for _, l := range s.leases {
		if now.Before(l.expires) {
			continue
		}
		s.cfg.Obs.Counter("server_lease_expired_total").Inc()
		s.cfg.Logf("chaserd: lease %s (worker %s) expired; requeueing campaign %s shard %d",
			l.token, l.worker, l.cid, l.shard)
		if s.requeueLocked(l, fmt.Sprintf("lease expired (worker %s)", l.worker)) {
			terminal = append(terminal, s.campaigns[l.cid].tenant)
		}
	}
	s.mu.Unlock()
	if s.cfg.OnTerminal != nil {
		for _, tenant := range terminal {
			s.cfg.OnTerminal(tenant)
		}
	}
}

// Stop halts the expiry loop. It does not touch persisted state.
func (s *Scheduler) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// CampaignStatus is the JSON status of one campaign.
type CampaignStatus struct {
	ID     string        `json:"id"`
	Tenant string        `json:"tenant"`
	Spec   Spec          `json:"spec"`
	Hub    string        `json:"hub,omitempty"`
	Status string        `json:"status"`
	Err    string        `json:"err,omitempty"`
	Shards []ShardStatus `json:"shards"`
	// DoneRuns sums the run windows of completed shards — a cheap progress
	// proxy that needs no journal reads.
	DoneRuns  int `json:"done_runs"`
	TotalRuns int `json:"total_runs"`
}

// ShardStatus is the JSON status of one shard.
type ShardStatus struct {
	Shard   int    `json:"shard"`
	Lo      int    `json:"lo"`
	Hi      int    `json:"hi"`
	State   string `json:"state"`
	Retries int    `json:"retries,omitempty"`
	Worker  string `json:"worker,omitempty"`
	LastErr string `json:"last_err,omitempty"`
}

// statusLocked assembles a CampaignStatus. Callers hold s.mu.
func (c *campaignState) statusLocked() CampaignStatus {
	st := CampaignStatus{
		ID:     c.id,
		Tenant: c.tenant,
		Spec:   c.spec,
		Hub:    c.hub,
		Status: c.status,
		Err:    c.errMsg,
		Shards: make([]ShardStatus, len(c.shards)),

		TotalRuns: c.spec.Runs,
	}
	for i, sh := range c.shards {
		ss := ShardStatus{
			Shard: sh.idx, Lo: sh.lo, Hi: sh.hi,
			State: sh.state.String(), Retries: sh.retries, LastErr: sh.lastErr,
		}
		if sh.lease != nil {
			ss.Worker = sh.lease.worker
		}
		if sh.state == shardDone {
			st.DoneRuns += sh.hi - sh.lo
		}
		st.Shards[i] = ss
	}
	return st
}

// Status returns one campaign's status (nil when unknown).
func (s *Scheduler) Status(id string) *CampaignStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.campaigns[id]
	if c == nil {
		return nil
	}
	st := c.statusLocked()
	return &st
}

// List returns every campaign's status in submission order, optionally
// filtered by tenant.
func (s *Scheduler) List(tenant string) []CampaignStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]CampaignStatus, 0, len(s.order))
	for _, id := range s.order {
		c := s.campaigns[id]
		if tenant != "" && c.tenant != tenant {
			continue
		}
		out = append(out, c.statusLocked())
	}
	return out
}

// Done returns the campaign's terminal-state channel (nil when unknown).
func (s *Scheduler) Done(id string) <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.campaigns[id]; c != nil {
		return c.done
	}
	return nil
}

// ActiveByTenant counts non-terminal campaigns per tenant (quota recovery
// after a restart).
func (s *Scheduler) ActiveByTenant() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int)
	for _, c := range s.campaigns {
		if !c.terminal() {
			out[c.tenant]++
		}
	}
	return out
}
