package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// The control plane's durable state is a CRC-framed JSONL write-ahead log:
// one record per line, each line `%08x <json>\n` where the hex prefix is
// the IEEE CRC32 of the JSON payload. This combines the two idioms the rest
// of the tree already proved out — the campaign journal's append-only JSONL
// with torn-tail tolerance (PR 3) and the TaintHub WAL's CRC framing that
// distinguishes a torn tail from silent bit rot (PR 4). Every state
// transition (submit, shard done, requeue, quarantine, complete, fail) is
// one unbuffered O_APPEND write, so a chaserd killed at any instant loses
// at most the record being written; replaying the log on startup rebuilds
// the scheduler exactly, and shards that were mid-flight simply return to
// the pending queue (their run journals make the re-execution incremental).
//
// Leases are deliberately NOT in the WAL: a restarted chaserd voids every
// lease by construction. Surviving workers notice at their next heartbeat
// (unknown lease), abandon the shard, and re-claim; their journaled runs
// are not lost. Durable leases would buy nothing but recovery complexity.

// walRecord is one control-plane state transition.
type walRecord struct {
	// T is the record type: "campaign", "done", "requeue", "quarantine",
	// "complete", "failed".
	T string `json:"t"`
	// C is the campaign ID.
	C string `json:"c,omitempty"`
	// Shard is the shard index within the campaign.
	Shard int `json:"s,omitempty"`
	// Spec rides the "campaign" record.
	Spec *Spec `json:"spec,omitempty"`
	// Hub is the TaintHub address assigned to the campaign ("" = private
	// in-process hubs).
	Hub string `json:"hub,omitempty"`
	// NSBase is the campaign's hub namespace base.
	NSBase int `json:"ns_base,omitempty"`
	// Retries is the shard's requeue count ("requeue" records).
	Retries int `json:"retries,omitempty"`
	// Reason is why a shard was requeued or quarantined.
	Reason string `json:"reason,omitempty"`
	// Err is a campaign-level failure ("failed" records).
	Err string `json:"err,omitempty"`
}

// Store owns the control plane's on-disk layout:
//
//	<dir>/state.jsonl                    the WAL
//	<dir>/journals/<cid>-shard<N>.jsonl  per-shard run journals
//	<dir>/summaries/<cid>.json           merged campaign summaries
//
// Append is safe for concurrent use.
type Store struct {
	dir string

	mu sync.Mutex
	f  *os.File
}

var crcTable = crc32.IEEETable

// frameRecord encodes one WAL line.
func frameRecord(rec walRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(payload)+10)
	line = fmt.Appendf(line, "%08x ", crc32.Checksum(payload, crcTable))
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// parseLine decodes one WAL line, reporting ok=false for any damage (bad
// frame shape, CRC mismatch, undecodable JSON).
func parseLine(line []byte) (walRecord, bool) {
	var rec walRecord
	if len(line) < 10 || line[8] != ' ' {
		return rec, false
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return rec, false
	}
	payload := line[9:]
	if crc32.Checksum(payload, crcTable) != want {
		return rec, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, false
	}
	return rec, true
}

// OpenStore opens (creating if necessary) the store at dir, replays the
// WAL, truncates any torn or corrupt tail so later appends land after valid
// records only, and reopens the log for appending. The returned records are
// the valid prefix in append order.
func OpenStore(dir string) (*Store, []walRecord, error) {
	for _, sub := range []string{"", "journals", "summaries"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, nil, fmt.Errorf("server: store dir: %w", err)
		}
	}
	path := filepath.Join(dir, "state.jsonl")
	raw, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("server: read wal: %w", err)
	}
	var recs []walRecord
	valid := 0 // byte offset of the end of the last valid record
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		rec, ok := parseLine(line)
		if !ok {
			// Torn or corrupted tail: everything after the last valid record
			// is dropped. Records are single writes, so only the final line
			// can legitimately be damaged; anything else is treated the same
			// way — better to lose a suffix (shards re-enqueue, journals make
			// re-execution cheap) than to trust damaged state.
			break
		}
		recs = append(recs, rec)
		valid += len(line) + 1
	}
	if valid > len(raw) { // file did not end in '\n'
		valid = len(raw)
	}
	if valid < len(raw) {
		if err := os.Truncate(path, int64(valid)); err != nil {
			return nil, nil, fmt.Errorf("server: truncate torn wal tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("server: open wal: %w", err)
	}
	return &Store{dir: dir, f: f}, recs, nil
}

// Append durably records one state transition: a single write(2) of one
// CRC-framed line on an O_APPEND descriptor, so concurrent appends never
// interleave and a crash can only tear the final line.
func (s *Store) Append(rec walRecord) error {
	line, err := frameRecord(rec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("server: store closed")
	}
	if _, err := s.f.Write(line); err != nil {
		return fmt.Errorf("server: wal append: %w", err)
	}
	return nil
}

// JournalPath returns the run journal path for one shard of one campaign.
// The path is stable across re-enqueues and chaserd restarts — that
// stability is what lets a re-leased shard resume instead of re-executing.
func (s *Store) JournalPath(cid string, shard int) string {
	return filepath.Join(s.dir, "journals", fmt.Sprintf("%s-shard%04d.jsonl", cid, shard))
}

// SummaryPath returns the merged summary path for one campaign.
func (s *Store) SummaryPath(cid string) string {
	return filepath.Join(s.dir, "summaries", cid+".json")
}

// WriteSummary persists a campaign's merged summary with the
// temp+rename idiom: readers never observe a half-written file.
func (s *Store) WriteSummary(cid string, data []byte) error {
	path := s.SummaryPath(cid)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("server: write summary: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: write summary: %w", err)
	}
	return nil
}

// ReadSummary loads a campaign's merged summary ("" if absent).
func (s *Store) ReadSummary(cid string) ([]byte, error) {
	raw, err := os.ReadFile(s.SummaryPath(cid))
	if os.IsNotExist(err) {
		return nil, nil
	}
	return raw, err
}

// Close closes the WAL. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
