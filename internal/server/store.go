package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// The control plane's durable state is a CRC-framed JSONL write-ahead log:
// one record per line, each line `%08x <json>\n` where the hex prefix is
// the IEEE CRC32 of the JSON payload. This combines the two idioms the rest
// of the tree already proved out — the campaign journal's append-only JSONL
// with torn-tail tolerance (PR 3) and the TaintHub WAL's CRC framing that
// distinguishes a torn tail from silent bit rot (PR 4). Every state
// transition (submit, shard done, requeue, quarantine, complete, fail) is
// one unbuffered O_APPEND write, so a chaserd killed at any instant loses
// at most the record being written; replaying the log on startup rebuilds
// the scheduler exactly, and shards that were mid-flight simply return to
// the pending queue (their run journals make the re-execution incremental).
//
// The log is segmented: appends rotate to a fresh `wal/seg-NNNNNN.jsonl`
// once the active segment passes SegmentBytes, and startup compaction
// rewrites the log keeping only the `campaign` + terminal record of every
// finished campaign, so a long-lived chaserd's WAL stays proportional to
// its *active* state, not its history. Each open also assigns the log a
// fresh random identity and numbers the replayed+appended records 0..n —
// the (logID, seq) pair is the shipping cursor a hot-standby follower
// replicates from (see replica.go): any cursor bearing a different logID
// forces a full resync, which is always possible because the store keeps
// the whole logical log in memory (control-plane records are tiny).
//
// Leases are deliberately NOT in the WAL: a restarted chaserd voids every
// lease by construction. Surviving workers notice at their next heartbeat
// (unknown lease), abandon the shard, and re-claim; their journaled runs
// are not lost. Durable leases would buy nothing but recovery complexity.
// Failover inherits the same contract: a freshly promoted follower has no
// leases, which is exactly a restart.

// walRecord is one control-plane state transition.
type walRecord struct {
	// T is the record type: "campaign", "done", "requeue", "quarantine",
	// "complete", "failed".
	T string `json:"t"`
	// C is the campaign ID.
	C string `json:"c,omitempty"`
	// Shard is the shard index within the campaign.
	Shard int `json:"s,omitempty"`
	// Spec rides the "campaign" record.
	Spec *Spec `json:"spec,omitempty"`
	// Hub is the TaintHub address assigned to the campaign ("" = private
	// in-process hubs).
	Hub string `json:"hub,omitempty"`
	// NSBase is the campaign's hub namespace base.
	NSBase int `json:"ns_base,omitempty"`
	// Retries is the shard's requeue count ("requeue" records).
	Retries int `json:"retries,omitempty"`
	// Reason is why a shard was requeued or quarantined.
	Reason string `json:"reason,omitempty"`
	// Err is a campaign-level failure ("failed" records).
	Err string `json:"err,omitempty"`
	// Epoch is the fencing epoch of the leader that wrote the record (0 in
	// standalone mode). Replication rejects records from deposed epochs.
	Epoch uint64 `json:"e,omitempty"`
}

// StoreOptions tunes a Store beyond its directory.
type StoreOptions struct {
	// DataDir holds the run journals and merged summaries. In HA mode the
	// leader and follower each own a private WAL dir but must share DataDir
	// (workers write journals there and the merge reads them back, on
	// whichever node is leader at the time). Empty = the WAL dir itself.
	DataDir string
	// SegmentBytes is the WAL rotation threshold (default 1 MiB).
	SegmentBytes int64
	// Fsync syncs the active segment after every append. Off by default —
	// the WAL's loss unit is "records after the last flushed one", and every
	// record is re-derivable from worker journals — but HA deployments that
	// want the replication stream to never run ahead of the leader's disk
	// can turn it on.
	Fsync bool
	// Chaos arms fault injection at the store's chaos sites (nil = off).
	Chaos *Chaos
}

// Store owns one node's durable control-plane state:
//
//	<dir>/wal/seg-NNNNNN.jsonl               the segmented WAL
//	<data>/journals/<cid>-shard<N>.jsonl     per-shard run journals
//	<data>/summaries/<cid>.json              merged campaign summaries
//
// All methods are safe for concurrent use.
type Store struct {
	dir     string
	dataDir string
	opts    StoreOptions

	mu      sync.Mutex
	seg     *os.File
	segIdx  int
	segSize int64
	recs    []walRecord // the full logical log; a record's seq is its index
	logID   string
	epoch   uint64       // stamped on every local append
	guard   func() error // leadership check before local appends (nil = none)
	notify  chan struct{}
	closed  bool
}

var crcTable = crc32.IEEETable

// frameRecord encodes one WAL line.
func frameRecord(rec walRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(payload)+10)
	line = fmt.Appendf(line, "%08x ", crc32.Checksum(payload, crcTable))
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// parseLine decodes one WAL line, reporting ok=false for any damage (bad
// frame shape, CRC mismatch, undecodable JSON).
func parseLine(line []byte) (walRecord, bool) {
	var rec walRecord
	if len(line) < 10 || line[8] != ' ' {
		return rec, false
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return rec, false
	}
	payload := line[9:]
	if crc32.Checksum(payload, crcTable) != want {
		return rec, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, false
	}
	return rec, true
}

const (
	defaultSegmentBytes = 1 << 20
	segPattern          = "seg-%06d.jsonl"
)

func segName(i int) string { return fmt.Sprintf(segPattern, i) }

// newLogID derives a fresh log identity for this open. It only has to be
// unique across opens of stores a follower might ship from, so nanoseconds
// + pid is plenty.
func newLogID() string {
	return fmt.Sprintf("%x-%x", time.Now().UnixNano(), os.Getpid())
}

// OpenStore opens (creating if necessary) the store at dir, replays the
// WAL segments, truncates any torn or corrupt tail so later appends land
// after valid records only, compacts fully-terminal campaigns, and reopens
// the newest segment for appending. The returned records are the valid
// (compacted) log in append order.
func OpenStore(dir string, opts StoreOptions) (*Store, []walRecord, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	dataDir := opts.DataDir
	if dataDir == "" {
		dataDir = dir
	}
	walDir := filepath.Join(dir, "wal")
	for _, d := range []string{dir, dataDir, filepath.Join(dataDir, "journals"), filepath.Join(dataDir, "summaries")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, nil, fmt.Errorf("server: store dir: %w", err)
		}
	}
	if err := recoverCompaction(dir); err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("server: store dir: %w", err)
	}
	// Migrate the pre-segmentation layout: a single <dir>/state.jsonl
	// becomes the first segment.
	if old := filepath.Join(dir, "state.jsonl"); fileExists(old) {
		if err := os.Rename(old, filepath.Join(walDir, segName(0))); err != nil {
			return nil, nil, fmt.Errorf("server: migrate legacy wal: %w", err)
		}
	}

	recs, lastIdx, err := replaySegments(walDir)
	if err != nil {
		return nil, nil, err
	}
	s := &Store{
		dir:     dir,
		dataDir: dataDir,
		opts:    opts,
		segIdx:  lastIdx,
		recs:    recs,
		logID:   newLogID(),
		notify:  make(chan struct{}),
	}
	if compacted, ok := compactRecords(recs); ok {
		if err := s.rewrite(compacted); err != nil {
			return nil, nil, err
		}
		s.recs = compacted
	}
	if err := s.openActive(); err != nil {
		return nil, nil, err
	}
	return s, append([]walRecord(nil), s.recs...), nil
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// segIndices lists the segment indices present in walDir, sorted.
func segIndices(walDir string) ([]int, error) {
	ents, err := os.ReadDir(walDir)
	if err != nil {
		return nil, fmt.Errorf("server: read wal dir: %w", err)
	}
	var idx []int
	for _, e := range ents {
		var i int
		if _, err := fmt.Sscanf(e.Name(), segPattern, &i); err == nil {
			idx = append(idx, i)
		}
	}
	sort.Ints(idx)
	return idx, nil
}

// replaySegments replays every segment in order. The first damaged line
// anywhere ends the replay: the damaged segment is truncated at the damage
// and every later segment is deleted — records are single writes, so only
// the true tail can legitimately be torn; anything else is bit rot and
// nothing after it can be trusted. Returns the valid records and the index
// of the segment appends should continue in.
func replaySegments(walDir string) ([]walRecord, int, error) {
	idx, err := segIndices(walDir)
	if err != nil {
		return nil, 0, err
	}
	if len(idx) == 0 {
		return nil, 0, nil
	}
	var recs []walRecord
	for pos, i := range idx {
		path := filepath.Join(walDir, segName(i))
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, 0, fmt.Errorf("server: read wal segment: %w", err)
		}
		valid := 0 // byte offset of the end of the last valid record
		damaged := false
		sc := bufio.NewScanner(bytes.NewReader(raw))
		sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
		for sc.Scan() {
			line := sc.Bytes()
			rec, ok := parseLine(line)
			if !ok {
				damaged = true
				break
			}
			recs = append(recs, rec)
			valid += len(line) + 1
		}
		if valid > len(raw) { // file did not end in '\n'
			valid = len(raw)
		}
		if valid < len(raw) {
			damaged = true
			if err := os.Truncate(path, int64(valid)); err != nil {
				return nil, 0, fmt.Errorf("server: truncate torn wal tail: %w", err)
			}
		}
		if damaged {
			for _, j := range idx[pos+1:] {
				if err := os.Remove(filepath.Join(walDir, segName(j))); err != nil {
					return nil, 0, fmt.Errorf("server: drop post-damage segment: %w", err)
				}
			}
			return recs, i, nil
		}
	}
	return recs, idx[len(idx)-1], nil
}

// compactRecords drops the history of fully-terminal campaigns, keeping
// only their "campaign" record (which carries the spec, the ID high-water
// mark and the hub namespace window) and the terminal "complete"/"failed"
// record. Reports whether anything was dropped.
func compactRecords(recs []walRecord) ([]walRecord, bool) {
	terminal := make(map[string]bool)
	for _, rec := range recs {
		if rec.T == "complete" || rec.T == "failed" {
			terminal[rec.C] = true
		}
	}
	if len(terminal) == 0 {
		return recs, false
	}
	out := make([]walRecord, 0, len(recs))
	for _, rec := range recs {
		if terminal[rec.C] {
			switch rec.T {
			case "campaign", "complete", "failed":
			default:
				continue
			}
		}
		out = append(out, rec)
	}
	return out, len(out) < len(recs)
}

// rewrite atomically replaces the WAL with exactly recs, crash-safely:
// the new log is fully written and synced into wal.tmp, the old wal is
// parked at wal.old, wal.tmp renamed into place, wal.old removed. A crash
// in any window is repaired by recoverCompaction on the next open.
func (s *Store) rewrite(recs []walRecord) error {
	walDir := filepath.Join(s.dir, "wal")
	tmpDir := filepath.Join(s.dir, "wal.tmp")
	oldDir := filepath.Join(s.dir, "wal.old")
	if err := os.RemoveAll(tmpDir); err != nil {
		return fmt.Errorf("server: compact: %w", err)
	}
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return fmt.Errorf("server: compact: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(tmpDir, segName(0)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("server: compact: %w", err)
	}
	for _, rec := range recs {
		line, err := frameRecord(rec)
		if err != nil {
			f.Close()
			return fmt.Errorf("server: compact: %w", err)
		}
		if _, err := f.Write(line); err != nil {
			f.Close()
			return fmt.Errorf("server: compact: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("server: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("server: compact: %w", err)
	}
	if err := os.Rename(walDir, oldDir); err != nil {
		return fmt.Errorf("server: compact: %w", err)
	}
	if err := os.Rename(tmpDir, walDir); err != nil {
		return fmt.Errorf("server: compact: %w", err)
	}
	if err := os.RemoveAll(oldDir); err != nil {
		return fmt.Errorf("server: compact: %w", err)
	}
	s.segIdx = 0
	return nil
}

// recoverCompaction repairs a crash inside rewrite. Invariant: wal.tmp is
// only renamed to wal after it is complete, and wal is only renamed to
// wal.old after wal.tmp is complete — so whichever of the two survives
// intact wins.
func recoverCompaction(dir string) error {
	walDir := filepath.Join(dir, "wal")
	tmpDir := filepath.Join(dir, "wal.tmp")
	oldDir := filepath.Join(dir, "wal.old")
	switch {
	case fileExists(walDir):
		// wal is authoritative; any leftovers are pre-rename (tmp) or
		// post-rename (old) debris.
		os.RemoveAll(tmpDir)
		os.RemoveAll(oldDir)
	case fileExists(tmpDir):
		// Crashed between parking wal and installing wal.tmp: finish.
		if err := os.Rename(tmpDir, walDir); err != nil {
			return fmt.Errorf("server: finish interrupted compaction: %w", err)
		}
		os.RemoveAll(oldDir)
	case fileExists(oldDir):
		// wal.tmp vanished but wal.old remains — should be impossible with
		// the ordering above; restore the parked log rather than lose it.
		if err := os.Rename(oldDir, walDir); err != nil {
			return fmt.Errorf("server: restore parked wal: %w", err)
		}
	}
	return nil
}

// openActive opens the active segment for appending.
func (s *Store) openActive() error {
	path := filepath.Join(s.dir, "wal", segName(s.segIdx))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("server: open wal segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("server: stat wal segment: %w", err)
	}
	s.seg = f
	s.segSize = st.Size()
	return nil
}

// LogID identifies this open of the store; it changes on every OpenStore
// and Reset. Together with a record index it forms the shipping cursor.
func (s *Store) LogID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logID
}

// Seq returns the number of records in the logical log (the next seq).
func (s *Store) Seq() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Records returns a copy of the full logical log.
func (s *Store) Records() []walRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]walRecord(nil), s.recs...)
}

// SetEpoch stamps every subsequent local append with the given fencing
// epoch (a freshly promoted leader calls this before serving writes).
func (s *Store) SetEpoch(e uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch = e
}

// SetGuard installs the leadership check local appends must pass. The
// guard runs outside the store lock order concern (it may hit the fence
// file); a non-nil error fails the append with no bytes written.
func (s *Store) SetGuard(g func() error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.guard = g
}

// Append durably records one state transition: a single write(2) of one
// CRC-framed line on an O_APPEND descriptor, so concurrent appends never
// interleave and a crash can only tear the final line. Appends pass the
// leadership guard first — a deposed leader's writes fail here, with no
// bytes on disk — and rotate to a fresh segment past the size threshold.
func (s *Store) Append(rec walRecord) error {
	s.mu.Lock()
	guard := s.guard
	epoch := s.epoch
	s.mu.Unlock()
	// The guard may read the fence file; keep it outside the store lock so
	// a slow fence check cannot stall the replication tail.
	if guard != nil {
		if err := guard(); err != nil {
			return err
		}
	}
	rec.Epoch = epoch
	return s.append(rec)
}

// ApplyReplicated appends a record received from the replication stream,
// bypassing the leadership guard (followers are never leaders) and keeping
// the originating leader's epoch stamp.
func (s *Store) ApplyReplicated(rec walRecord) error {
	return s.append(rec)
}

func (s *Store) append(rec walRecord) error {
	line, err := frameRecord(rec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("server: store closed")
	}
	if s.segSize >= s.opts.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	off := s.segSize
	var n int
	if s.opts.Chaos.Hit(ChaosWALShortWrite) {
		// Injected short write(2): half the line lands, then the "error".
		n, _ = s.seg.Write(line[:len(line)/2])
		err = fmt.Errorf("server: wal append: %w", errChaosShortWrite)
	} else {
		n, err = s.seg.Write(line)
	}
	if err == nil && n < len(line) {
		err = fmt.Errorf("server: wal append: short write (%d of %d bytes)", n, len(line))
	}
	if err != nil {
		// Repair the torn line so later appends don't land after damage
		// (replay stops at the first damaged line, which would silently
		// discard them). O_APPEND writes at EOF, so truncating back to the
		// pre-write offset restores the segment exactly.
		if terr := s.seg.Truncate(off); terr != nil {
			return fmt.Errorf("server: wal append failed (%v) and segment unrepaired: %w", err, terr)
		}
		return err
	}
	if s.opts.Fsync {
		serr := s.seg.Sync()
		if s.opts.Chaos.Hit(ChaosWALFsync) {
			serr = errChaosFsync
		}
		if serr != nil {
			// The bytes are written; only durability is in doubt. Fail the
			// append (callers retry or surface the error) without admitting
			// the record to the logical log — replay after a real crash may
			// still see it, and every record type is idempotent to replay.
			return fmt.Errorf("server: wal fsync: %w", serr)
		}
	}
	s.segSize += int64(len(line))
	s.recs = append(s.recs, rec)
	close(s.notify)
	s.notify = make(chan struct{})
	return nil
}

// rotateLocked closes the active segment and starts the next one.
func (s *Store) rotateLocked() error {
	if err := s.seg.Close(); err != nil {
		return fmt.Errorf("server: rotate wal: %w", err)
	}
	s.segIdx++
	return s.openActive()
}

// SegmentIndex returns the active segment's index (observability, tests).
func (s *Store) SegmentIndex() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.segIdx
}

// WaitRecords returns the records from seq `from` on, blocking up to
// timeout for at least one to exist. A nil result means the timeout
// elapsed. This is the leader half of the shipping cursor: the replication
// handler parks here between appends.
func (s *Store) WaitRecords(from int, timeout time.Duration) []walRecord {
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil
		}
		if len(s.recs) > from {
			out := append([]walRecord(nil), s.recs[from:]...)
			s.mu.Unlock()
			return out
		}
		ch := s.notify
		s.mu.Unlock()
		wait := time.Until(deadline)
		if wait <= 0 {
			return nil
		}
		t := time.NewTimer(wait)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
			return nil
		}
	}
}

// Reset wipes the WAL and logical log and assigns a fresh log identity —
// the follower's answer to a shipping-cursor mismatch (new leader, or a
// leader that restarted and compacted). Journals and summaries are left
// alone: they are content-addressed by campaign and shard, and the rebuilt
// log re-references them.
func (s *Store) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("server: store closed")
	}
	if s.seg != nil {
		s.seg.Close()
		s.seg = nil
	}
	walDir := filepath.Join(s.dir, "wal")
	if err := os.RemoveAll(walDir); err != nil {
		return fmt.Errorf("server: reset wal: %w", err)
	}
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		return fmt.Errorf("server: reset wal: %w", err)
	}
	s.recs = nil
	s.segIdx = 0
	s.logID = newLogID()
	close(s.notify)
	s.notify = make(chan struct{})
	return s.openActive()
}

// JournalPath returns the run journal path for one shard of one campaign.
// The path is stable across re-enqueues, chaserd restarts and failovers —
// that stability is what lets a re-leased shard resume instead of
// re-executing (in HA mode, DataDir is shared between the peers).
func (s *Store) JournalPath(cid string, shard int) string {
	return filepath.Join(s.dataDir, "journals", fmt.Sprintf("%s-shard%04d.jsonl", cid, shard))
}

// SummaryPath returns the merged summary path for one campaign.
func (s *Store) SummaryPath(cid string) string {
	return filepath.Join(s.dataDir, "summaries", cid+".json")
}

// WriteSummary persists a campaign's merged summary with the
// temp+rename idiom: readers never observe a half-written file.
func (s *Store) WriteSummary(cid string, data []byte) error {
	path := s.SummaryPath(cid)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("server: write summary: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: write summary: %w", err)
	}
	return nil
}

// ReadSummary loads a campaign's merged summary ("" if absent).
func (s *Store) ReadSummary(cid string) ([]byte, error) {
	raw, err := os.ReadFile(s.SummaryPath(cid))
	if os.IsNotExist(err) {
		return nil, nil
	}
	return raw, err
}

// Close closes the WAL. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	close(s.notify)
	s.notify = make(chan struct{})
	if s.seg == nil {
		return nil
	}
	err := s.seg.Close()
	s.seg = nil
	return err
}
