package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	"chaser/internal/obs"
)

// ServerConfig wires one chaserd instance.
type ServerConfig struct {
	// Addr is the listen address (e.g. "127.0.0.1:7070"; ":0" for tests).
	Addr string
	// StoreDir is this node's private durable state directory (the WAL).
	StoreDir string
	// DataDir holds run journals and merged summaries. HA pairs must share
	// it (workers write journals there; whichever node is leader merges
	// them). Empty = StoreDir.
	DataDir string
	// Sched tunes the scheduler (Obs and OnTerminal are overwritten by the
	// server's own wiring).
	Sched SchedConfig
	// Tenants bounds per-tenant admission.
	Tenants TenantLimits
	// Obs is the metrics registry (nil allocates a private one).
	Obs *obs.Registry
	// Logf overrides the server logger (nil = log.Printf).
	Logf func(format string, args ...any)

	// FenceFile enables HA mode: the node contends for the lease in this
	// shared fencing file and serves as leader or hot-standby follower.
	FenceFile string
	// Peer is the other node's base URL — the follower's replication source
	// until the fence names a leader, and the redirect fallback.
	Peer string
	// AdvertiseURL is this node's externally reachable base URL, used as
	// its fence-holder identity and in redirects (default http://<Addr>).
	AdvertiseURL string
	// LeaderTTL is the fence lease duration (default 3s). A leader silent
	// this long is considered dead; the follower promotes within roughly
	// one TTL.
	LeaderTTL time.Duration
	// RolePreference biases startup contention: "leader" contends
	// immediately, "follower" waits one LeaderTTL first so a designated
	// leader wins the initial race. "" = contend immediately.
	RolePreference string
	// WALSegmentBytes overrides the WAL rotation threshold (0 = default).
	WALSegmentBytes int64
	// Fsync syncs the WAL on every append.
	Fsync bool
	// Chaos arms the self-chaos harness (nil = off).
	Chaos *Chaos
}

// Server is one chaserd instance: store + scheduler + tenant table behind
// the HTTP API. Construct with NewServer, serve with Start (or use
// Handler with a test server), stop with Shutdown.
//
// In HA mode the server is a role machine. As leader it owns a live
// scheduler and serves the full API plus the replication stream; as
// follower it owns no scheduler, continuously replays the leader's WAL
// into its own store, and answers API calls with 307 redirects to the
// leader. Promotion (fence lease acquired) builds a scheduler from the
// replicated store — semantically identical to a restart, so every lease
// of the dead leader is implicitly expired. Demotion (a renewal that finds
// a newer epoch) tears the scheduler down; the append guard has already
// fenced every write since the lease was lost.
type Server struct {
	cfg     ServerConfig
	reg     *obs.Registry
	store   *Store
	tenants *Tenants
	logf    func(format string, args ...any)
	chaos   *Chaos

	hsrv *http.Server
	ln   net.Listener

	fencer *Fencer // nil in standalone mode

	roleMu    sync.RWMutex
	leader    bool
	sched     *Scheduler  // non-nil iff leader (or standalone)
	repl      *replicator // non-nil iff HA follower
	leaderURL string      // best-known leader base URL
	advertise string

	haStop chan struct{}
	haOnce sync.Once
	haWG   sync.WaitGroup
}

// NewServer opens the store, replays the WAL, and wires the scheduler and
// tenant table. Tenant active-campaign counts are recovered from the
// replayed state so a restart cannot be used to dodge quotas. In HA mode
// the scheduler is not built yet: the node starts as a candidate and the
// role machine (Start) decides.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.StoreDir == "" {
		return nil, fmt.Errorf("server: StoreDir required")
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	if cfg.LeaderTTL <= 0 {
		cfg.LeaderTTL = 3 * time.Second
	}
	cfg.Chaos.SetObs(reg)
	store, recs, err := OpenStore(cfg.StoreDir, StoreOptions{
		DataDir:      cfg.DataDir,
		SegmentBytes: cfg.WALSegmentBytes,
		Fsync:        cfg.Fsync,
		Chaos:        cfg.Chaos,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		store:   store,
		tenants: NewTenants(cfg.Tenants),
		logf:    logf,
		chaos:   cfg.Chaos,
		haStop:  make(chan struct{}),
	}
	if cfg.FenceFile == "" {
		// Standalone: leader forever at epoch 0, exactly the pre-HA chaserd.
		sched, err := s.buildScheduler(recs)
		if err != nil {
			store.Close()
			return nil, err
		}
		s.leader = true
		s.sched = sched
		s.tenants.Restore(sched.ActiveByTenant())
	}
	return s, nil
}

// buildScheduler wires a scheduler over the store with the server's
// telemetry and tenant hooks.
func (s *Server) buildScheduler(recs []walRecord) (*Scheduler, error) {
	scfg := s.cfg.Sched
	scfg.Obs = s.reg
	if scfg.Logf == nil {
		scfg.Logf = s.logf
	}
	scfg.OnTerminal = s.tenants.Release
	return NewScheduler(s.store, recs, scfg)
}

// Handler returns the API handler (for tests via httptest.Server).
func (s *Server) Handler() http.Handler { return s.handler() }

// Scheduler exposes the scheduler (in-process workers, tests). It is nil
// while the node is an HA follower.
func (s *Server) Scheduler() *Scheduler { return s.currentSched() }

// Registry exposes the metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Store exposes the store (tests).
func (s *Server) Store() *Store { return s.store }

func (s *Server) currentSched() *Scheduler {
	s.roleMu.RLock()
	defer s.roleMu.RUnlock()
	return s.sched
}

// IsLeader reports whether this node currently serves writes.
func (s *Server) IsLeader() bool {
	s.roleMu.RLock()
	defer s.roleMu.RUnlock()
	return s.leader
}

// Epoch returns the node's current fencing epoch (0 standalone/follower).
func (s *Server) currentEpoch() uint64 {
	if s.fencer == nil {
		return 0
	}
	return s.fencer.Epoch()
}

// leaderHint returns the best-known leader base URL ("" = unknown).
func (s *Server) leaderHint() string {
	s.roleMu.RLock()
	defer s.roleMu.RUnlock()
	if s.leaderURL != "" {
		return s.leaderURL
	}
	return s.cfg.Peer
}

// Advertise returns this node's advertise URL ("" before Start).
func (s *Server) Advertise() string {
	s.roleMu.RLock()
	defer s.roleMu.RUnlock()
	return s.advertise
}

// Start listens on cfg.Addr and serves the API in the background. It
// returns once the listener is bound, so the caller can print the
// resolved address before any request arrives. In HA mode it also starts
// the role machine (fence contention, replication).
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	adv := s.cfg.AdvertiseURL
	if adv == "" {
		adv = "http://" + ln.Addr().String()
	}
	s.roleMu.Lock()
	s.advertise = adv
	if s.cfg.FenceFile == "" {
		s.leaderURL = adv
	}
	s.roleMu.Unlock()
	s.hsrv = &http.Server{
		Handler:           s.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		if err := s.hsrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.logf("chaserd: serve: %v", err)
		}
	}()
	if s.cfg.FenceFile != "" {
		s.fencer = NewFencer(s.cfg.FenceFile, adv, s.cfg.LeaderTTL, s.chaos.Clock(time.Now))
		s.reg.Gauge("server_role").Set(0)
		s.startReplicatorLocked()
		s.haWG.Add(1)
		go s.haLoop()
	}
	return nil
}

// startReplicatorLocked launches the follower's replication loop. Callers
// must not hold roleMu... it takes it itself.
func (s *Server) startReplicatorLocked() {
	repl := newReplicator(s.store, s.fencer, s.reg, s.logf, s.Advertise(), s.leaderHint)
	s.roleMu.Lock()
	s.repl = repl
	s.roleMu.Unlock()
	repl.start()
}

// haLoop is the role machine: contend for the fence while follower, renew
// while leader, demote on deposition.
func (s *Server) haLoop() {
	defer s.haWG.Done()
	rng := rand.New(rand.NewSource(int64(siteHash(s.Advertise()))))
	ttl := s.cfg.LeaderTTL
	if s.cfg.RolePreference == "follower" {
		// Give a designated leader one full TTL to claim first.
		if !s.haSleep(ttl) {
			return
		}
	}
	for {
		select {
		case <-s.haStop:
			return
		default:
		}
		if s.IsLeader() {
			if !s.haSleep(ttl / 3) {
				return
			}
			if err := s.fencer.Renew(); err != nil {
				s.logf("chaserd: deposed: %v", err)
				s.demote()
			}
			continue
		}
		epoch, acquired, prev, err := s.fencer.TryAcquire()
		if err != nil {
			s.logf("chaserd: fence: %v", err)
			s.haSleep(ttl / 2)
			continue
		}
		if !acquired {
			if prev.Holder != "" {
				s.roleMu.Lock()
				s.leaderURL = prev.Holder
				s.roleMu.Unlock()
			}
			// Poll again inside the TTL so promotion lands within ~one TTL
			// of the leader's death; jittered so two followers don't beat
			// in lockstep.
			s.haSleep(time.Duration(float64(ttl/4) * (0.75 + 0.5*rng.Float64())))
			continue
		}
		if err := s.promote(epoch, prev); err != nil {
			s.logf("chaserd: promotion failed: %v", err)
			s.fencer.Release()
			s.haSleep(ttl / 2)
		}
	}
}

// haSleep waits d, returning false if the role machine is stopping.
func (s *Server) haSleep(d time.Duration) bool {
	select {
	case <-s.haStop:
		return false
	case <-time.After(d):
		return true
	}
}

// promote turns the node into the leader at the given epoch: stop
// replicating, stamp and guard the store, and build a scheduler from the
// replicated log. No leases survive — a promotion is a restart, so every
// outstanding lease of the previous leader is implicitly expired and its
// shards re-enqueue (workers discover via 404 heartbeats and re-claim).
func (s *Server) promote(epoch uint64, prev fenceDoc) error {
	s.roleMu.Lock()
	repl := s.repl
	s.repl = nil
	s.roleMu.Unlock()
	if repl != nil {
		repl.halt()
	}
	s.store.SetEpoch(epoch)
	s.store.SetGuard(s.appendGuard)
	sched, err := s.buildScheduler(s.store.Records())
	if err != nil {
		return err
	}
	s.tenants.Restore(sched.ActiveByTenant())
	s.roleMu.Lock()
	s.leader = true
	s.sched = sched
	s.leaderURL = s.advertise
	s.roleMu.Unlock()
	s.reg.Gauge("server_role").Set(1)
	if prev.Epoch > 0 && prev.Holder != s.Advertise() {
		s.reg.Counter("server_failovers_total").Inc()
		s.logf("chaserd: promoted to leader at epoch %d (took over from %s, epoch %d)", epoch, prev.Holder, prev.Epoch)
	} else {
		s.logf("chaserd: leading at epoch %d", epoch)
	}
	return nil
}

// demote turns a deposed leader back into a follower: the scheduler (and
// with it every in-memory lease) is dropped, and the replicator resyncs
// the store from the new leader. The append guard has fenced all writes
// since the lease was lost, so nothing divergent is on disk.
func (s *Server) demote() {
	s.roleMu.Lock()
	if !s.leader {
		s.roleMu.Unlock()
		return
	}
	s.leader = false
	sched := s.sched
	s.sched = nil
	s.leaderURL = ""
	s.roleMu.Unlock()
	if sched != nil {
		sched.Stop()
	}
	s.reg.Gauge("server_role").Set(0)
	s.reg.Counter("server_demotions_total").Inc()
	s.startReplicatorLocked()
	s.logf("chaserd: demoted to follower")
}

// appendGuard validates the fence lease before every local WAL append.
// Rejections are the server_fenced_appends_total the acceptance criteria
// count: a deposed leader gets exactly zero writes through.
func (s *Server) appendGuard() error {
	if s.fencer == nil {
		return nil
	}
	if err := s.fencer.Validate(); err != nil {
		s.reg.Counter("server_fenced_appends_total").Inc()
		return err
	}
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown drains the HTTP server (bounded by ctx), stops the role
// machine and expiry loop, releases the fence lease (so a standby promotes
// immediately instead of waiting out the TTL), and closes the WAL.
// Campaign state is durable: a later NewServer over the same StoreDir
// resumes every active campaign.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	if s.hsrv != nil {
		err = s.hsrv.Shutdown(ctx)
	}
	s.stopRole(true)
	if cerr := s.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abort is Shutdown without draining — for tests simulating a crash. The
// fence lease is deliberately NOT released: the standby must notice the
// silence and wait out the TTL, exactly as after a kill -9.
func (s *Server) Abort() {
	if s.hsrv != nil {
		s.hsrv.Close()
	}
	s.stopRole(false)
	s.store.Close()
}

// stopRole halts the role machine, scheduler and replicator. release also
// gives up the fence lease (graceful shutdown only).
func (s *Server) stopRole(release bool) {
	s.haOnce.Do(func() { close(s.haStop) })
	s.haWG.Wait()
	s.roleMu.Lock()
	sched, repl := s.sched, s.repl
	s.sched, s.repl = nil, nil
	s.leader = false
	s.roleMu.Unlock()
	if sched != nil {
		sched.Stop()
	}
	if repl != nil {
		repl.halt()
	}
	if release && s.fencer != nil {
		if err := s.fencer.Release(); err != nil {
			s.logf("chaserd: fence release: %v", err)
		}
	}
}

// errNotLeader surfaces API calls that landed on a follower with no known
// leader to redirect to.
var errNotLeader = errors.New("server: not the leader")
