package server

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"chaser/internal/obs"
)

// ServerConfig wires one chaserd instance.
type ServerConfig struct {
	// Addr is the listen address (e.g. "127.0.0.1:7070"; ":0" for tests).
	Addr string
	// StoreDir is the durable state directory.
	StoreDir string
	// Sched tunes the scheduler (Obs and OnTerminal are overwritten by the
	// server's own wiring).
	Sched SchedConfig
	// Tenants bounds per-tenant admission.
	Tenants TenantLimits
	// Obs is the metrics registry (nil allocates a private one).
	Obs *obs.Registry
	// Logf overrides the server logger (nil = log.Printf).
	Logf func(format string, args ...any)
}

// Server is one chaserd instance: store + scheduler + tenant table behind
// the HTTP API. Construct with NewServer, serve with Start (or use
// Handler with a test server), stop with Shutdown.
type Server struct {
	cfg     ServerConfig
	reg     *obs.Registry
	store   *Store
	sched   *Scheduler
	tenants *Tenants
	logf    func(format string, args ...any)

	hsrv *http.Server
	ln   net.Listener
}

// NewServer opens the store, replays the WAL, and wires the scheduler and
// tenant table. Tenant active-campaign counts are recovered from the
// replayed state so a restart cannot be used to dodge quotas.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.StoreDir == "" {
		return nil, fmt.Errorf("server: StoreDir required")
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	store, recs, err := OpenStore(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	tenants := NewTenants(cfg.Tenants)
	scfg := cfg.Sched
	scfg.Obs = reg
	if scfg.Logf == nil {
		scfg.Logf = logf
	}
	scfg.OnTerminal = tenants.Release
	sched, err := NewScheduler(store, recs, scfg)
	if err != nil {
		store.Close()
		return nil, err
	}
	tenants.Restore(sched.ActiveByTenant())
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		store:   store,
		sched:   sched,
		tenants: tenants,
		logf:    logf,
	}
	return s, nil
}

// Handler returns the API handler (for tests via httptest.Server).
func (s *Server) Handler() http.Handler { return s.handler() }

// Scheduler exposes the scheduler (in-process workers, tests).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Registry exposes the metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Start listens on cfg.Addr and serves the API in the background. It
// returns once the listener is bound, so the caller can print the
// resolved address before any request arrives.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.hsrv = &http.Server{
		Handler:           s.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		if err := s.hsrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.logf("chaserd: serve: %v", err)
		}
	}()
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown drains the HTTP server (bounded by ctx), stops the expiry
// loop, and closes the WAL. Campaign state is durable: a later NewServer
// over the same StoreDir resumes every active campaign.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	if s.hsrv != nil {
		err = s.hsrv.Shutdown(ctx)
	}
	s.sched.Stop()
	if cerr := s.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abort is Shutdown without draining — for tests simulating a crash. The
// WAL descriptor is closed so the file can be reopened, but nothing is
// flushed or finalized beyond what Append already persisted (which, by
// design, is everything).
func (s *Server) Abort() {
	if s.hsrv != nil {
		s.hsrv.Close()
	}
	s.sched.Stop()
	s.store.Close()
}
