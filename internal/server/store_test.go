package server

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStoreTornTailTruncated: a crash mid-append leaves a torn final line;
// reopening must recover every complete record, truncate the tail, and
// keep accepting appends that a further reopen also recovers.
func TestStoreTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	store, recs, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh store replayed %d records", len(recs))
	}
	for i := 0; i < 3; i++ {
		if err := store.Append(walRecord{T: "done", C: "c000000", Shard: i}); err != nil {
			t.Fatal(err)
		}
	}
	store.Close()

	// Tear the tail the way a crash does: a partial line at EOF.
	path := filepath.Join(dir, "wal", "seg-000000.jsonl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`0123abcd {"t":"done","c":"c0000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	store2, recs2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != 3 {
		t.Fatalf("recovered %d records, want 3", len(recs2))
	}
	for i, rec := range recs2 {
		if rec.T != "done" || rec.Shard != i {
			t.Errorf("record %d = %+v", i, rec)
		}
	}
	// Appends after the truncation must land cleanly after the valid prefix.
	// (A non-terminal record: a terminal one would let startup compaction
	// legitimately fold the campaign down on the next open.)
	if err := store2.Append(walRecord{T: "done", C: "c000000", Shard: 3}); err != nil {
		t.Fatal(err)
	}
	store2.Close()
	_, recs3, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs3) != 4 || recs3[3].Shard != 3 {
		t.Fatalf("after post-truncation append: %d records, last %+v", len(recs3), recs3[len(recs3)-1])
	}
}

// TestStoreCorruptMiddleStopsReplay: silent bit rot inside the file (CRC
// mismatch on a non-final line) must stop replay at the damage rather than
// trust anything after it.
func TestStoreCorruptMiddleStopsReplay(t *testing.T) {
	dir := t.TempDir()
	store, _, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := store.Append(walRecord{T: "done", C: "c000000", Shard: i}); err != nil {
			t.Fatal(err)
		}
	}
	store.Close()
	path := filepath.Join(dir, "wal", "seg-000000.jsonl")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40 // flip a bit mid-file
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	store2, recs, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if len(recs) >= 3 {
		t.Fatalf("replay returned %d records across corruption, want a strict prefix", len(recs))
	}
	for i, rec := range recs {
		if rec.Shard != i {
			t.Errorf("prefix record %d = %+v", i, rec)
		}
	}
}

// TestStoreSummaryRoundTrip exercises the temp+rename summary store.
func TestStoreSummaryRoundTrip(t *testing.T) {
	store, _, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if raw, err := store.ReadSummary("c000000"); err != nil || raw != nil {
		t.Fatalf("absent summary: %q, %v", raw, err)
	}
	want := []byte(`{"report":"ok"}`)
	if err := store.WriteSummary("c000000", want); err != nil {
		t.Fatal(err)
	}
	got, err := store.ReadSummary("c000000")
	if err != nil || string(got) != string(want) {
		t.Fatalf("read summary: %q, %v", got, err)
	}
}
