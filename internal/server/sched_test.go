package server

import (
	"errors"
	"strings"
	"testing"
	"time"

	"chaser/internal/obs"
)

// testSched builds a scheduler over a fresh store with test-friendly
// timings: instant backoff, manual expiry (huge ExpiryInterval — tests call
// expireOnce directly for determinism).
func testSched(t *testing.T, mut func(*SchedConfig)) (*Scheduler, *obs.Registry) {
	t.Helper()
	store, recs, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg := SchedConfig{
		LeaseTTL:        100 * time.Millisecond,
		ExpiryInterval:  time.Hour,
		MaxShardRetries: 3,
		BackoffBase:     time.Nanosecond,
		Obs:             reg,
		Logf:            t.Logf,
	}
	if mut != nil {
		mut(&cfg)
	}
	sched, err := NewScheduler(store, recs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sched.Stop(); store.Close() })
	return sched, reg
}

func submitT(t *testing.T, s *Scheduler, sp Spec) string {
	t.Helper()
	id, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

var testSpec = Spec{App: "kmeans", Runs: 10, Seed: 7, Shards: 2}

// TestLeaseExpiryRequeuesShard claims a shard, lets the lease die without
// heartbeats, and expires it: the shard must return to the queue under the
// same journal path, the old token must be disowned, and
// server_lease_expired_total / server_shards_requeued_total must count it.
func TestLeaseExpiryRequeuesShard(t *testing.T) {
	sched, reg := testSched(t, nil)
	submitT(t, sched, testSpec)
	a, err := sched.Claim("w1")
	if err != nil || a == nil {
		t.Fatalf("claim: %v, %v", a, err)
	}
	sched.expireOnce(time.Now().Add(time.Second)) // past the 100ms TTL
	if got := reg.Counter("server_lease_expired_total").Value(); got != 1 {
		t.Errorf("server_lease_expired_total = %d, want 1", got)
	}
	if got := reg.Counter("server_shards_requeued_total").Value(); got != 1 {
		t.Errorf("server_shards_requeued_total = %d, want 1", got)
	}
	if err := sched.Heartbeat(a.Token); !errors.Is(err, ErrLeaseUnknown) {
		t.Errorf("heartbeat on expired lease: %v, want ErrLeaseUnknown", err)
	}
	if err := sched.Complete(a.Token); !errors.Is(err, ErrLeaseUnknown) {
		t.Errorf("complete on expired lease: %v, want ErrLeaseUnknown", err)
	}
	// The shard comes back (backoff is a nanosecond here) with the same
	// journal path — that stability is what makes the retry incremental.
	time.Sleep(time.Millisecond)
	b, err := sched.Claim("w2")
	if err != nil || b == nil {
		t.Fatalf("re-claim: %v, %v", b, err)
	}
	if b.Shard != a.Shard || b.Journal != a.Journal {
		t.Errorf("re-claimed shard %d journal %s, want shard %d journal %s",
			b.Shard, b.Journal, a.Shard, a.Journal)
	}
	if b.Token == a.Token {
		t.Error("re-claim reused the expired lease token")
	}
}

// TestHeartbeatKeepsLeaseAlive: a heartbeat resets the expiry clock, so a
// slow-but-alive worker survives sweeps that would have killed its lease.
func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	sched, reg := testSched(t, nil)
	submitT(t, sched, testSpec)
	a, _ := sched.Claim("w1")
	if err := sched.Heartbeat(a.Token); err != nil {
		t.Fatal(err)
	}
	sched.expireOnce(time.Now().Add(50 * time.Millisecond)) // within renewed TTL
	if got := reg.Counter("server_lease_expired_total").Value(); got != 0 {
		t.Errorf("lease expired despite heartbeat (count %d)", got)
	}
	if err := sched.Complete(a.Token); err != nil {
		t.Errorf("complete after heartbeat: %v", err)
	}
}

// TestFailBackoffGatesReclaim: a failed shard is not immediately claimable —
// exponential backoff holds it back, and the backoff grows per retry.
func TestFailBackoffGatesReclaim(t *testing.T) {
	sched, _ := testSched(t, func(c *SchedConfig) { c.BackoffBase = time.Hour })
	submitT(t, sched, Spec{App: "kmeans", Runs: 5, Seed: 7, Shards: 1})
	a, _ := sched.Claim("w1")
	if err := sched.Fail(a.Token, "boom"); err != nil {
		t.Fatal(err)
	}
	if b, _ := sched.Claim("w1"); b != nil {
		t.Errorf("claimed shard %d during backoff window", b.Shard)
	}
}

// TestPoisonShardQuarantine: a shard that fails on every attempt exhausts
// its retry budget, is quarantined, and fails its campaign — instead of
// cycling through the worker fleet forever.
func TestPoisonShardQuarantine(t *testing.T) {
	sched, reg := testSched(t, func(c *SchedConfig) { c.MaxShardRetries = 2 })
	id := submitT(t, sched, Spec{App: "kmeans", Runs: 5, Seed: 7, Shards: 1})
	for attempt := 0; ; attempt++ {
		if attempt > 10 {
			t.Fatal("campaign never reached a terminal state")
		}
		a, err := sched.Claim("w1")
		if err != nil {
			t.Fatal(err)
		}
		if a == nil {
			st := sched.Status(id)
			if st.Status == StatusFailed {
				break
			}
			time.Sleep(time.Millisecond) // nanosecond backoff still pending
			continue
		}
		if err := sched.Fail(a.Token, "panic: poisoned input"); err != nil {
			t.Fatal(err)
		}
	}
	st := sched.Status(id)
	if st.Status != StatusFailed || !strings.Contains(st.Err, "quarantined") {
		t.Errorf("status %q err %q, want failed with quarantine", st.Status, st.Err)
	}
	if st.Shards[0].State != "quarantined" {
		t.Errorf("shard state %q, want quarantined", st.Shards[0].State)
	}
	if got := reg.Counter("server_shards_quarantined_total").Value(); got != 1 {
		t.Errorf("server_shards_quarantined_total = %d, want 1", got)
	}
	select {
	case <-sched.Done(id):
	default:
		t.Error("done channel not closed for failed campaign")
	}
}

// TestWorkerPanicIsBoundedRetry runs a real Worker whose shard execution
// panics every time (a poison shard): the panic must be converted into Fail
// reports, retried the configured number of times, then quarantined — and
// the worker itself must survive every attempt.
func TestWorkerPanicIsBoundedRetry(t *testing.T) {
	sched, reg := testSched(t, func(c *SchedConfig) { c.MaxShardRetries = 2 })
	id := submitT(t, sched, Spec{App: "kmeans", Runs: 5, Seed: 7, Shards: 1})
	attempts := 0
	w := NewWorker(WorkerConfig{
		Name:         "panicky",
		Control:      LocalControl{Sched: sched},
		PollInterval: time.Millisecond,
		Logf:         t.Logf,
		RunShard: func(a *Assignment) error {
			attempts++
			panic("deterministic crash in the engine")
		},
	})
	w.Start()
	defer w.Stop()
	select {
	case <-sched.Done(id):
	case <-time.After(10 * time.Second):
		t.Fatal("campaign never reached a terminal state")
	}
	st := sched.Status(id)
	if st.Status != StatusFailed {
		t.Errorf("status %q, want failed", st.Status)
	}
	if !strings.Contains(st.Err, "panic") {
		t.Errorf("campaign error %q does not surface the panic", st.Err)
	}
	if attempts != 3 { // initial + MaxShardRetries
		t.Errorf("shard attempted %d times, want 3", attempts)
	}
	if got := reg.Counter("server_shards_quarantined_total").Value(); got != 1 {
		t.Errorf("server_shards_quarantined_total = %d, want 1", got)
	}
}

// TestWorkerAbandonsDisownedLease: when the scheduler no longer recognizes
// a worker's lease mid-run (expiry, chaserd restart), the worker must
// abandon the shard — reporting neither success nor failure — so the
// shard's new owner is undisturbed.
func TestWorkerAbandonsDisownedLease(t *testing.T) {
	sched, _ := testSched(t, func(c *SchedConfig) { c.LeaseTTL = 50 * time.Millisecond })
	id := submitT(t, sched, Spec{App: "kmeans", Runs: 5, Seed: 7, Shards: 1})
	reg := obs.NewRegistry()
	block := make(chan struct{})
	w := NewWorker(WorkerConfig{
		Name:         "wedged",
		Control:      LocalControl{Sched: sched},
		PollInterval: time.Millisecond,
		Obs:          reg,
		Logf:         t.Logf,
		RunShard: func(a *Assignment) error {
			sched.expireOnce(time.Now().Add(time.Minute)) // void the lease under it
			<-block                                       // wedge until the heartbeat notices
			return nil
		},
	})
	w.Start()
	deadline := time.Now().Add(10 * time.Second)
	for reg.Counter("worker_shards_abandoned_total").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never noticed the disowned lease")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(block)
	w.Stop()
	if got := reg.Counter("worker_shards_completed_total").Value(); got != 0 {
		t.Errorf("worker reported completion on a disowned lease (count %d)", got)
	}
	st := sched.Status(id)
	if st.Shards[0].State == "done" {
		t.Error("shard marked done by a disowned worker")
	}
}

// TestSchedulerRestartRecoversState replays the WAL into a fresh scheduler:
// done shards stay done, in-flight work returns to pending (counted as
// requeued), terminal campaigns stay terminal, and new submissions never
// collide with recovered IDs or hub namespace windows.
func TestSchedulerRestartRecoversState(t *testing.T) {
	dir := t.TempDir()
	store, recs, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg := SchedConfig{
		LeaseTTL: 100 * time.Millisecond, ExpiryInterval: time.Hour,
		BackoffBase: time.Nanosecond, Obs: reg, Logf: t.Logf,
	}
	s1, err := NewScheduler(store, recs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	id := submitT(t, s1, testSpec) // 2 shards
	a, _ := s1.Claim("w1")
	if err := s1.Complete(a.Token); err != nil {
		t.Fatal(err)
	}
	b, _ := s1.Claim("w1")
	if err := s1.Fail(b.Token, "interrupted"); err != nil { // leaves retries=1, pending
		t.Fatal(err)
	}
	s1.Stop()
	store.Close() // crash: leases and memory are gone, the WAL remains

	store2, recs2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reg2 := obs.NewRegistry()
	cfg.Obs = reg2
	s2, err := NewScheduler(store2, recs2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { s2.Stop(); store2.Close() }()
	st := s2.Status(id)
	if st == nil || st.Status != StatusActive {
		t.Fatalf("recovered campaign status = %+v, want active", st)
	}
	if st.Shards[a.Shard].State != "done" {
		t.Errorf("recovered shard %d state %q, want done", a.Shard, st.Shards[a.Shard].State)
	}
	if st.Shards[b.Shard].State != "pending" || st.Shards[b.Shard].Retries != 1 {
		t.Errorf("recovered shard %d = %+v, want pending with 1 retry", b.Shard, st.Shards[b.Shard])
	}
	if got := reg2.Counter("server_shards_requeued_total").Value(); got != 1 {
		t.Errorf("server_shards_requeued_total after restart = %d, want 1", got)
	}
	// A fresh submission must not collide with the recovered campaign.
	id2 := submitT(t, s2, testSpec)
	if id2 == id {
		t.Errorf("recovered scheduler reissued campaign ID %s", id)
	}
	if n := s2.ActiveByTenant()["default"]; n != 2 {
		t.Errorf("active campaigns for default tenant = %d, want 2", n)
	}
}
