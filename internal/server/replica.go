package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"chaser/internal/obs"
)

// WAL shipping. The leader exposes its logical log as a length-prefixed
// binary stream at /api/v1/replicate: the follower long-polls with its
// shipping cursor (logID, seq) and the leader answers with every record
// from that seq on, then holds the connection open, flushing new records
// as they are appended and keepalive frames while idle. Each frame is
//
//	u32 big-endian payload length | u32 big-endian IEEE CRC32 | payload
//
// where the payload is the JSON replFrame. The CRC makes a torn or
// bit-flipped frame detectable mid-stream (the follower drops the
// connection and re-pulls from its cursor — frames are idempotent to
// re-receive because the cursor only advances on apply), and the length
// prefix is bounded before any allocation, mirroring the TaintHub's
// FrameError contract.
//
// The stream carries the serving leader's current fencing epoch on every
// frame, and each record payload carries its writer's epoch. A follower
// rejects any frame whose stream epoch is below the highest epoch it has
// ever observed: a deposed leader that believes it still leads can
// therefore not ship one byte of state anywhere (counted in
// server_fenced_appends_total, alongside the leader-local append guard).

// maxReplFrame bounds one frame's payload before allocation.
const maxReplFrame = 1 << 20

// replFrame is the JSON payload of one replication frame. Rec is nil for
// keepalives.
type replFrame struct {
	// Seq is the log index of Rec (or the cursor high-water for keepalives).
	Seq int `json:"seq"`
	// Epoch is the serving leader's fencing epoch at send time.
	Epoch uint64 `json:"epoch"`
	// Rec is the shipped record (nil = keepalive).
	Rec *walRecord `json:"rec,omitempty"`
}

// ReplFrameError reports a structurally damaged replication frame: bad
// length, CRC mismatch, or undecodable payload.
type ReplFrameError struct{ Reason string }

func (e *ReplFrameError) Error() string {
	return "server: replication frame: " + e.Reason
}

// encodeFrame writes one frame.
func encodeFrame(w io.Writer, fr replFrame) error {
	payload, err := json.Marshal(fr)
	if err != nil {
		return err
	}
	if len(payload) > maxReplFrame {
		return &ReplFrameError{Reason: fmt.Sprintf("payload %d over %d", len(payload), maxReplFrame)}
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// decodeFrame reads one frame. io.EOF means a clean stream end at a frame
// boundary; io.ErrUnexpectedEOF a torn frame; *ReplFrameError structural
// damage. The length is validated before any payload allocation.
func decodeFrame(r io.Reader) (replFrame, error) {
	var fr replFrame
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return fr, io.EOF
		}
		return fr, io.ErrUnexpectedEOF
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n == 0 || n > maxReplFrame {
		return fr, &ReplFrameError{Reason: fmt.Sprintf("length %d out of (0, %d]", n, maxReplFrame)}
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return fr, io.ErrUnexpectedEOF
	}
	if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(hdr[4:8]) {
		return fr, &ReplFrameError{Reason: "crc mismatch"}
	}
	if err := json.Unmarshal(payload, &fr); err != nil {
		return fr, &ReplFrameError{Reason: "bad payload: " + err.Error()}
	}
	if fr.Seq < 0 {
		return fr, &ReplFrameError{Reason: "negative seq"}
	}
	return fr, nil
}

// Replication stream pacing. The connection window bounds how long one
// stream pins a connection (the follower reconnects seamlessly from its
// cursor); keepalives let the follower distinguish an idle leader from a
// dead one.
const (
	replStreamWindow      = 25 * time.Second
	replKeepaliveInterval = 2 * time.Second
)

// handleReplicate streams the leader's log to a follower. Only the leader
// serves it (the role wrapper 503s it on followers).
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	q := r.URL.Query()
	from, _ := strconv.Atoi(q.Get("from"))
	if from < 0 {
		from = 0
	}
	reset := q.Get("logid") != s.store.LogID()
	if reset {
		// The follower's cursor belongs to a different log (this leader
		// restarted and compacted, or is a different node): restart the
		// shipment from zero and tell the follower to wipe first.
		from = 0
		w.Header().Set("X-Chaser-Replication-Reset", "true")
		s.reg.Counter("server_repl_resets_total").Inc()
	}
	w.Header().Set("X-Chaser-Log-Id", s.store.LogID())
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	deadline := time.Now().Add(replStreamWindow)
	for time.Now().Before(deadline) {
		select {
		case <-r.Context().Done():
			return
		default:
		}
		recs := s.store.WaitRecords(from, replKeepaliveInterval)
		epoch := s.currentEpoch()
		if recs == nil {
			if err := encodeFrame(w, replFrame{Seq: from, Epoch: epoch}); err != nil {
				return
			}
			fl.Flush()
			continue
		}
		for i := range recs {
			if s.chaos.Hit(ChaosReplDropFrame) {
				// Drop the frame and sever: the follower's cursor has not
				// advanced, so the reconnect re-ships it. Nothing is lost.
				s.logf("chaserd: chaos: dropping replication frame seq %d and severing stream", from)
				return
			}
			fr := replFrame{Seq: from, Epoch: epoch, Rec: &recs[i]}
			if s.chaos.Hit(ChaosReplTearFrame) {
				// Send a torn prefix and sever: the follower must detect the
				// damage and recover by reconnecting from its cursor.
				var buf []byte
				bw := &sliceWriter{buf: &buf}
				if err := encodeFrame(bw, fr); err == nil && len(buf) > 1 {
					w.Write(buf[:len(buf)/2])
					fl.Flush()
				}
				s.logf("chaserd: chaos: tearing replication frame seq %d", from)
				return
			}
			if err := encodeFrame(w, fr); err != nil {
				return
			}
			from++
			s.reg.Counter("server_repl_frames_sent_total").Inc()
		}
		fl.Flush()
	}
}

// sliceWriter collects writes into a byte slice (chaos frame tearing).
type sliceWriter struct{ buf *[]byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	*s.buf = append(*s.buf, p...)
	return len(p), nil
}

// replicator is the follower half: it pulls the leader's stream and
// replays every record into the local store, maintaining the shipping
// cursor. It does not elect; the server's HA loop decides promotion and
// stops the replicator first.
type replicator struct {
	store  *Store
	fence  *Fencer
	reg    *obs.Registry
	logf   func(format string, args ...any)
	leader func() string // resolves the current leader's base URL ("" = unknown)
	self   string        // our own advertise URL (never replicate from ourselves)

	stop chan struct{}
	wg   sync.WaitGroup
	rng  *rand.Rand

	mu        sync.Mutex
	cursor    int
	leaderLog string // logID the cursor belongs to ("" = must resync)
	applied   uint64
}

func newReplicator(store *Store, fence *Fencer, reg *obs.Registry, logf func(string, ...any), self string, leader func() string) *replicator {
	return &replicator{
		store: store, fence: fence, reg: reg, logf: logf,
		leader: leader, self: self,
		stop: make(chan struct{}),
		rng:  rand.New(rand.NewSource(int64(siteHash(self)))),
	}
}

func (r *replicator) start() {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.run()
	}()
}

func (r *replicator) halt() {
	close(r.stop)
	r.wg.Wait()
}

// Applied returns how many records this replicator has applied (tests,
// metrics).
func (r *replicator) Applied() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

func (r *replicator) run() {
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		base := r.leader()
		if base == "" || base == r.self {
			r.sleep(250 * time.Millisecond)
			continue
		}
		if err := r.streamOnce(base); err != nil {
			r.reg.Counter("server_repl_reconnects_total").Inc()
			r.logf("chaserd: replication stream from %s: %v", base, err)
			r.sleep(200 * time.Millisecond)
		}
	}
}

// sleep waits with jitter (so a reconnecting pair doesn't beat in sync),
// returning early on stop.
func (r *replicator) sleep(base time.Duration) {
	d := time.Duration(float64(base) * (0.5 + r.rng.Float64()))
	select {
	case <-r.stop:
	case <-time.After(d):
	}
}

// streamOnce opens one replication stream and applies frames until the
// stream ends (window expiry, error, damage) or the replicator stops.
func (r *replicator) streamOnce(base string) error {
	r.mu.Lock()
	cursor, leaderLog := r.cursor, r.leaderLog
	r.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-r.stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	url := fmt.Sprintf("%s/api/v1/replicate?from=%d&logid=%s", base, cursor, leaderLog)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := replHTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	gotLog := resp.Header.Get("X-Chaser-Log-Id")
	if gotLog == "" {
		return fmt.Errorf("peer is not a replication source")
	}
	if resp.Header.Get("X-Chaser-Replication-Reset") == "true" || gotLog != leaderLog {
		// Shipping-cursor mismatch: wipe and resync from zero. The local
		// log's contents are either already represented in the leader's log
		// (it promoted from them) or belong to a deposed line of history.
		if err := r.store.Reset(); err != nil {
			return err
		}
		r.mu.Lock()
		r.cursor, r.leaderLog = 0, gotLog
		cursor = 0
		r.mu.Unlock()
		r.logf("chaserd: replication resync from %s (log %s)", base, gotLog)
	}

	// Watchdog: a silent stream (no frames, no keepalives) is a dead or
	// partitioned leader; sever and retry rather than hanging forever.
	watchdog := time.AfterFunc(3*replKeepaliveInterval, cancel)
	defer watchdog.Stop()

	for {
		fr, err := decodeFrame(resp.Body)
		if err == io.EOF {
			return nil // clean window end; reconnect from cursor
		}
		if err != nil {
			return err
		}
		watchdog.Reset(3 * replKeepaliveInterval)
		if max := r.fence.MaxSeen(); fr.Epoch < max {
			// A deposed leader is still streaming: refuse its state.
			r.reg.Counter("server_fenced_appends_total").Inc()
			return fmt.Errorf("stale leader: frame epoch %d < observed %d", fr.Epoch, max)
		}
		r.fence.noteEpoch(fr.Epoch)
		if fr.Rec == nil {
			continue // keepalive
		}
		switch {
		case fr.Seq < cursor:
			continue // duplicate (already applied); idempotent skip
		case fr.Seq > cursor:
			// A gap means the cursor and the stream disagree; force a full
			// resync next attempt.
			r.mu.Lock()
			r.leaderLog = ""
			r.mu.Unlock()
			return fmt.Errorf("replication gap: frame seq %d, cursor %d", fr.Seq, cursor)
		}
		if err := r.store.ApplyReplicated(*fr.Rec); err != nil {
			return err
		}
		cursor++
		r.mu.Lock()
		r.cursor = cursor
		r.applied++
		r.mu.Unlock()
		r.reg.Counter("server_repl_frames_applied_total").Inc()
	}
}

// replHTTPClient has no overall timeout (streams are long-lived); liveness
// is the keepalive watchdog's job.
var replHTTPClient = &http.Client{
	Transport: &http.Transport{ResponseHeaderTimeout: 10 * time.Second},
}
