package server

import (
	"fmt"
	"sync"
	"time"
)

// Per-tenant admission control. Every submission is accounted against a
// tenant namespace and passes two gates before the scheduler sees it: a
// token-bucket rate limit (smooths submission bursts) and an
// active-campaign quota (bounds how much of the worker fleet one tenant
// can hold at once). Both degrade gracefully rather than dropping
// connections: the HTTP layer maps their typed errors to 429 with a
// Retry-After header, mirroring the TaintHub's BusyError contract, so a
// well-behaved client backs off instead of hammering.

// TenantLimits bounds one tenant namespace. Zero values select defaults.
type TenantLimits struct {
	// MaxActive is the number of concurrently active (non-terminal)
	// campaigns a tenant may hold (default 8).
	MaxActive int
	// RatePerSec is the sustained submission rate (default 4/s).
	RatePerSec float64
	// Burst is the token-bucket depth (default 8).
	Burst int
}

func (l TenantLimits) withDefaults() TenantLimits {
	if l.MaxActive <= 0 {
		l.MaxActive = 8
	}
	if l.RatePerSec <= 0 {
		l.RatePerSec = 4
	}
	if l.Burst <= 0 {
		l.Burst = 8
	}
	return l
}

// ThrottleError reports a submission rejected by a tenant's rate limit.
type ThrottleError struct {
	Tenant     string
	RetryAfter time.Duration
}

func (e *ThrottleError) Error() string {
	return fmt.Sprintf("server: tenant %q over submission rate; retry after %s", e.Tenant, e.RetryAfter)
}

// QuotaError reports a submission rejected by a tenant's active-campaign
// quota. RetryAfter is advisory: the quota frees when a campaign finishes,
// not on a clock.
type QuotaError struct {
	Tenant     string
	Active     int
	Max        int
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("server: tenant %q at active-campaign quota (%d/%d)", e.Tenant, e.Active, e.Max)
}

// tenantState is one namespace's admission bookkeeping.
type tenantState struct {
	tokens float64   // token bucket level
	last   time.Time // last refill
	active int       // non-terminal campaigns
}

// Tenants is the admission-control table. All methods are safe for
// concurrent use.
type Tenants struct {
	limits TenantLimits

	mu sync.Mutex
	m  map[string]*tenantState
}

// NewTenants builds the table; every tenant shares one limit set.
func NewTenants(limits TenantLimits) *Tenants {
	return &Tenants{limits: limits.withDefaults(), m: make(map[string]*tenantState)}
}

func (t *Tenants) stateLocked(tenant string, now time.Time) *tenantState {
	ts := t.m[tenant]
	if ts == nil {
		ts = &tenantState{tokens: float64(t.limits.Burst), last: now}
		t.m[tenant] = ts
	}
	return ts
}

// Admit charges one submission against tenant's rate limit and quota,
// reserving an active-campaign slot on success. The caller must Release
// the slot if the submission subsequently fails, and when the campaign
// reaches a terminal state.
func (t *Tenants) Admit(tenant string) error {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	ts := t.stateLocked(tenant, now)
	// Refill, clamped to the bucket depth.
	ts.tokens += now.Sub(ts.last).Seconds() * t.limits.RatePerSec
	if max := float64(t.limits.Burst); ts.tokens > max {
		ts.tokens = max
	}
	ts.last = now
	if ts.tokens < 1 {
		wait := time.Duration((1 - ts.tokens) / t.limits.RatePerSec * float64(time.Second))
		if wait < time.Second {
			wait = time.Second // Retry-After is whole seconds; never advise 0
		}
		return &ThrottleError{Tenant: tenant, RetryAfter: wait}
	}
	if ts.active >= t.limits.MaxActive {
		return &QuotaError{Tenant: tenant, Active: ts.active, Max: t.limits.MaxActive, RetryAfter: 5 * time.Second}
	}
	ts.tokens--
	ts.active++
	return nil
}

// Release frees one of tenant's active-campaign slots (campaign reached a
// terminal state, or its submission failed after Admit).
func (t *Tenants) Release(tenant string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ts := t.m[tenant]; ts != nil && ts.active > 0 {
		ts.active--
	}
}

// Restore seeds active-campaign counts recovered from the WAL after a
// restart, without charging rate-limit tokens.
func (t *Tenants) Restore(active map[string]int) {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	for tenant, n := range active {
		t.stateLocked(tenant, now).active = n
	}
	// Tenants absent from the rebuilt view hold no slots. This matters on
	// re-promotion: a node that led before, demoted, and leads again must
	// not double-count campaigns it already admitted in its first term.
	for tenant, st := range t.m {
		if _, ok := active[tenant]; !ok {
			st.active = 0
		}
	}
}
