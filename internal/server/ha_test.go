package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"chaser/internal/apps"
	"chaser/internal/campaign"
	"chaser/internal/obs"
)

// TestStoreRotationAndStartupCompaction: a tiny segment threshold forces
// rotation mid-stream; reopening compacts the finished campaign down to its
// campaign + terminal records, folds the log back into one segment, and the
// active campaign's history survives untouched.
func TestStoreRotationAndStartupCompaction(t *testing.T) {
	dir := t.TempDir()
	store, _, err := OpenStore(dir, StoreOptions{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	seq := []walRecord{
		{T: "campaign", C: "c000001"},
		{T: "done", C: "c000001", Shard: 0},
		{T: "done", C: "c000001", Shard: 1},
		{T: "done", C: "c000001", Shard: 2},
		{T: "complete", C: "c000001"},
		{T: "campaign", C: "c000002"},
		{T: "done", C: "c000002", Shard: 0},
	}
	for _, rec := range seq {
		if err := store.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if store.SegmentIndex() == 0 {
		t.Fatal("no rotation despite 64-byte segment threshold")
	}
	store.Close()

	store2, recs, err := OpenStore(dir, StoreOptions{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	want := []walRecord{
		{T: "campaign", C: "c000001"},
		{T: "complete", C: "c000001"},
		{T: "campaign", C: "c000002"},
		{T: "done", C: "c000002", Shard: 0},
	}
	if len(recs) != len(want) {
		t.Fatalf("compacted log has %d records, want %d: %+v", len(recs), len(want), recs)
	}
	for i := range want {
		if recs[i].T != want[i].T || recs[i].C != want[i].C || recs[i].Shard != want[i].Shard {
			t.Errorf("compacted record %d = %+v, want %+v", i, recs[i], want[i])
		}
	}
	idx, err := segIndices(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 1 || idx[0] != 0 {
		t.Errorf("compaction left segments %v, want just [0]", idx)
	}
	store2.Close()

	// The compacted log replays identically on the next open (idempotent).
	store3, recs3, err := OpenStore(dir, StoreOptions{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer store3.Close()
	if len(recs3) != len(want) {
		t.Errorf("re-replay of compacted log: %d records, want %d", len(recs3), len(want))
	}
}

// TestCompactionCrashRecovery: a crash between parking the old WAL and
// installing the rewritten one leaves only wal.tmp; the next open must
// finish the rename and lose nothing.
func TestCompactionCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	store, _, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []walRecord{{T: "campaign", C: "c000001"}, {T: "done", C: "c000001"}} {
		if err := store.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	store.Close()
	// Simulate the crash window: the finished rewrite sits in wal.tmp and
	// the wal directory itself is gone.
	if err := os.Rename(filepath.Join(dir, "wal"), filepath.Join(dir, "wal.tmp")); err != nil {
		t.Fatal(err)
	}
	store2, recs, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if len(recs) != 2 || recs[0].T != "campaign" || recs[1].T != "done" {
		t.Fatalf("recovered %+v, want the 2 parked records", recs)
	}
}

// TestFencerDoublePromotionRace: two nodes racing for an expired lease must
// produce exactly one winner per round, at a strictly higher epoch each
// time — the flock-serialized read-modify-write is the whole guarantee.
func TestFencerDoublePromotionRace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fence")
	const ttl = 30 * time.Millisecond
	a := NewFencer(path, "A", ttl, nil)
	b := NewFencer(path, "B", ttl, nil)
	var lastEpoch uint64
	for round := 0; round < 8; round++ {
		type res struct {
			epoch uint64
			ok    bool
		}
		results := make([]res, 2)
		var wg sync.WaitGroup
		for i, f := range []*Fencer{a, b} {
			wg.Add(1)
			go func(i int, f *Fencer) {
				defer wg.Done()
				e, ok, _, err := f.TryAcquire()
				if err != nil {
					t.Errorf("round %d: acquire: %v", round, err)
				}
				results[i] = res{e, ok}
			}(i, f)
		}
		wg.Wait()
		winners := 0
		var won uint64
		for _, r := range results {
			if r.ok {
				winners++
				won = r.epoch
			}
		}
		if winners != 1 {
			t.Fatalf("round %d: %d winners, want exactly 1", round, winners)
		}
		if won <= lastEpoch {
			t.Fatalf("round %d: epoch %d not above previous %d", round, won, lastEpoch)
		}
		lastEpoch = won
		time.Sleep(ttl + 10*time.Millisecond) // let the lease expire
	}
	if a.MaxSeen() < lastEpoch-1 || b.MaxSeen() < lastEpoch-1 {
		t.Errorf("maxSeen did not track the races: A=%d B=%d last=%d", a.MaxSeen(), b.MaxSeen(), lastEpoch)
	}
}

// TestDeposedLeaderWritesAllFenced is the zero-stale-writes guarantee in
// miniature: once a new leader claims the fence, every append the deposed
// leader attempts fails with ErrFenced, none reaches the log, and the
// rejection count matches the attempt count exactly.
func TestDeposedLeaderWritesAllFenced(t *testing.T) {
	dir := t.TempDir()
	fencePath := filepath.Join(dir, "fence")
	const ttl = 50 * time.Millisecond
	a := NewFencer(fencePath, "A", ttl, nil)
	epochA, ok, _, err := a.TryAcquire()
	if err != nil || !ok {
		t.Fatalf("A acquire: ok=%v err=%v", ok, err)
	}
	store, _, err := OpenStore(filepath.Join(dir, "a"), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	store.SetEpoch(epochA)
	fenced := 0
	store.SetGuard(func() error {
		if err := a.Validate(); err != nil {
			fenced++
			return err
		}
		return nil
	})
	if err := store.Append(walRecord{T: "campaign", C: "c000001"}); err != nil {
		t.Fatalf("append under a live lease: %v", err)
	}

	// A goes silent past its TTL; B takes over at a higher epoch.
	time.Sleep(ttl + 20*time.Millisecond)
	b := NewFencer(fencePath, "B", ttl, nil)
	epochB, ok, prev, err := b.TryAcquire()
	if err != nil || !ok {
		t.Fatalf("B acquire: ok=%v err=%v", ok, err)
	}
	if epochB <= epochA || prev.Holder != "A" {
		t.Fatalf("B claimed epoch %d superseding %+v, want epoch > %d from A", epochB, prev, epochA)
	}

	// Deposed-but-alive A keeps trying to write: all fenced, zero bytes.
	seqBefore := store.Seq()
	const k = 5
	for i := 0; i < k; i++ {
		err := store.Append(walRecord{T: "done", C: "c000001", Shard: i})
		if !errors.Is(err, ErrFenced) {
			t.Fatalf("deposed append %d: %v, want ErrFenced", i, err)
		}
	}
	if fenced != k {
		t.Errorf("fenced rejections = %d, want %d (one per attempt)", fenced, k)
	}
	if got := store.Seq(); got != seqBefore {
		t.Errorf("deposed appends advanced the log %d -> %d; want none accepted", seqBefore, got)
	}
	if a.Epoch() != 0 {
		t.Errorf("A still believes it holds epoch %d after deposition", a.Epoch())
	}
}

// TestReplicationTornFrameDetected: a frame cut mid-payload must decode as
// io.ErrUnexpectedEOF (the follower severs and re-pulls), a bit-flipped
// payload as *ReplFrameError, and an intact stream ends in clean io.EOF.
func TestReplicationTornFrameDetected(t *testing.T) {
	rec := walRecord{T: "done", C: "c000001", Shard: 1, Epoch: 3}
	var first, both bytes.Buffer
	if err := encodeFrame(&first, replFrame{Seq: 0, Epoch: 3, Rec: &rec}); err != nil {
		t.Fatal(err)
	}
	both.Write(first.Bytes())
	if err := encodeFrame(&both, replFrame{Seq: 1, Epoch: 3, Rec: &rec}); err != nil {
		t.Fatal(err)
	}
	full := both.Bytes()

	// Intact stream: two frames, then clean EOF.
	r := bytes.NewReader(full)
	for i := 0; i < 2; i++ {
		fr, err := decodeFrame(r)
		if err != nil || fr.Seq != i {
			t.Fatalf("intact frame %d: seq=%d err=%v", i, fr.Seq, err)
		}
	}
	if _, err := decodeFrame(r); err != io.EOF {
		t.Fatalf("stream end: %v, want io.EOF", err)
	}

	// Torn mid-second-frame: first decodes, the tear is unmistakable.
	cut := len(first.Bytes()) + (len(full)-len(first.Bytes()))/2
	r = bytes.NewReader(full[:cut])
	if _, err := decodeFrame(r); err != nil {
		t.Fatalf("frame before the tear: %v", err)
	}
	if _, err := decodeFrame(r); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn frame: %v, want io.ErrUnexpectedEOF", err)
	}

	// Bit rot inside the payload: CRC catches it as structural damage.
	bad := append([]byte(nil), full...)
	bad[10] ^= 0x20
	var fe *ReplFrameError
	if _, err := decodeFrame(bytes.NewReader(bad)); !errors.As(err, &fe) {
		t.Fatalf("corrupt frame: %v, want *ReplFrameError", err)
	}
}

// TestFollowerRejectsStaleLeaderFrames: a follower that has observed epoch
// N refuses every frame from a stream claiming epoch < N — the deposed
// leader cannot ship one byte of state, and the refusal is counted in
// server_fenced_appends_total.
func TestFollowerRejectsStaleLeaderFrames(t *testing.T) {
	rec := walRecord{T: "campaign", C: "c000001", Epoch: 1}
	stale := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Chaser-Log-Id", "stale-log")
		w.WriteHeader(http.StatusOK)
		encodeFrame(w, replFrame{Seq: 0, Epoch: 1, Rec: &rec})
	}))
	defer stale.Close()

	store, _, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	reg := obs.NewRegistry()
	fence := NewFencer(filepath.Join(t.TempDir(), "fence"), "B", time.Second, nil)
	fence.noteEpoch(2) // the follower has already seen the new leader's epoch
	repl := newReplicator(store, fence, reg, t.Logf, "http://self", func() string { return stale.URL })

	err = repl.streamOnce(stale.URL)
	if err == nil || !strings.Contains(err.Error(), "stale leader") {
		t.Fatalf("streamOnce from a deposed leader: %v, want a stale-leader severance", err)
	}
	if store.Seq() != 0 {
		t.Errorf("stale frame was applied: log has %d records", store.Seq())
	}
	if got := reg.Counter("server_fenced_appends_total").Value(); got != 1 {
		t.Errorf("server_fenced_appends_total = %d, want 1", got)
	}
}

// TestHAFailoverCompletesCampaign is the HA acceptance test: a leader +
// hot-standby pair over a shared fence file and data dir, workers and
// client talking through the failover-aware Client, replication chaos
// armed on the leader. The leader is killed (no drain, no fence release)
// mid-campaign; the follower must promote within a few TTLs, finish the
// campaign, and produce a merged summary bitwise identical to an
// uninterrupted single-process run.
func TestHAFailoverCompletesCampaign(t *testing.T) {
	app, err := apps.ByName(acceptanceSpec.App)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := campaign.Run(campaignConfig(acceptanceSpec.normalize(), app, 0))
	if err != nil {
		t.Fatal(err)
	}

	base := t.TempDir()
	shared := filepath.Join(base, "data")
	fencePath := filepath.Join(base, "fence")
	const ttl = 500 * time.Millisecond
	chaos, err := ParseChaos("seed=11,rate=0.05,sites=repl.drop_frame+repl.tear_frame")
	if err != nil {
		t.Fatal(err)
	}

	mk := func(name, storeDir, role, peer string, chaos *Chaos) *Server {
		srv, err := NewServer(ServerConfig{
			Addr:           "127.0.0.1:0",
			StoreDir:       storeDir,
			DataDir:        shared,
			FenceFile:      fencePath,
			Peer:           peer,
			LeaderTTL:      ttl,
			RolePreference: role,
			Chaos:          chaos,
			Obs:            obs.NewRegistry(),
			Sched: SchedConfig{
				LeaseTTL:       150 * time.Millisecond,
				ExpiryInterval: 25 * time.Millisecond,
				BackoffBase:    time.Millisecond,
				Logf:           func(f string, a ...any) { t.Logf("["+name+"] "+f, a...) },
			},
			Logf: func(f string, a ...any) { t.Logf("["+name+"] "+f, a...) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		return srv
	}

	leader := mk("A", filepath.Join(base, "a"), "leader", "", chaos)
	defer leader.Abort()
	waitUntil(t, 5*time.Second, "initial leader election", leader.IsLeader)
	follower := mk("B", filepath.Join(base, "b"), "follower", leader.Advertise(), nil)
	defer follower.Abort()

	peers := leader.Addr() + "," + follower.Addr()
	cl := NewClient(peers)
	id, err := cl.Submit(acceptanceSpec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		w := NewWorker(WorkerConfig{
			Name:         fmt.Sprintf("ha-worker-%d", i),
			Control:      NewClient(peers),
			PollInterval: 5 * time.Millisecond,
			Logf:         t.Logf,
		})
		w.Start()
		defer w.Stop()
	}

	// Let the campaign get well underway (at least one shard done), then
	// kill the leader the hard way: no drain, fence lease NOT released.
	waitUntil(t, 60*time.Second, "mid-campaign progress", func() bool {
		st, err := cl.Status(id)
		return err == nil && st.DoneRuns >= 5
	})
	killedAt := time.Now()
	leader.Abort()

	waitUntil(t, 10*time.Second, "follower promotion", follower.IsLeader)
	promoteDelay := time.Since(killedAt)
	t.Logf("follower promoted %s after the kill (leader TTL %s)", promoteDelay, ttl)
	if promoteDelay > 4*ttl {
		t.Errorf("promotion took %s, want within ~%s (4x TTL ceiling)", promoteDelay, ttl)
	}

	doc, err := cl.WaitSummary(id)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(doc.Summary), wantJSON) {
		t.Errorf("post-failover summary diverges from uninterrupted baseline:\n%s\n%s", doc.Summary, wantJSON)
	}
	if doc.Report != baseline.Report() {
		t.Errorf("post-failover report diverges:\n%q\n%q", doc.Report, baseline.Report())
	}
	if got := follower.Registry().Counter("server_failovers_total").Value(); got < 1 {
		t.Errorf("server_failovers_total = %d on the new leader, want >= 1", got)
	}
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
