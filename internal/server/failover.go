package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"syscall"
	"time"
)

// Leader election and fencing. HA chaserd pairs share a tiny fence file —
// a lease: {epoch, holder, expires} — CRC-framed like every other durable
// byte in this tree. Whoever holds the live lease is leader; epochs are
// strictly monotonic, bumped on every acquisition, and every durable write
// the leader makes is stamped with its epoch. The fencing rules:
//
//  1. To lead, acquire the lease: allowed only when the current lease is
//     expired (or held by you). The new epoch is max(file, everything this
//     process ever saw)+1, so even a corrupted fence file cannot move
//     epochs backward.
//  2. To stay leader, renew before the lease expires. A renewal that finds
//     a different holder or a higher epoch means you were deposed: demote
//     immediately.
//  3. Every local WAL append first validates the lease (Validate). A
//     deposed leader's writes fail with ErrFenced before any byte lands —
//     no dual-leader writes, ever. Control-plane appends are rare, so the
//     extra fence read per append costs microseconds and buys the strict
//     "zero accepted writes from a deposed epoch" guarantee.
//  4. Replication consumers reject frames whose epoch is below the highest
//     epoch they have observed (replica.go) — the network-facing half of
//     the same rule.
//
// Mutual exclusion on the fence file itself is flock(2): read-modify-write
// cycles are serialized, so two candidates racing to acquire cannot both
// win one epoch (the loser sees the winner's record and observes). The
// file lives wherever both peers can reach it — for the single-machine
// deployments the tests and smokes exercise, any local path.

// ErrFenced fails a local append attempted without a live leader lease.
var ErrFenced = errors.New("server: append fenced: not the leader")

// ErrDeposed reports a renewal or validation that discovered a newer
// leader. The holder field names the usurper when known.
type DeposedError struct {
	Epoch  uint64 // our epoch
	Seen   uint64 // the newer epoch observed
	Holder string
}

func (e *DeposedError) Error() string {
	return fmt.Sprintf("server: deposed: epoch %d superseded by %d (holder %s)", e.Epoch, e.Seen, e.Holder)
}

// fenceDoc is the durable lease record.
type fenceDoc struct {
	Epoch   uint64 `json:"epoch"`
	Holder  string `json:"holder"`  // the leader's advertise URL
	Expires int64  `json:"expires"` // unix nanoseconds
}

// Fencer manages one node's view of the fence file. Safe for concurrent
// use; every operation opens, flocks, reads, optionally writes, and
// releases the file, so crashed holders never leave the fence wedged
// (flock dies with the process).
type Fencer struct {
	path string
	self string
	ttl  time.Duration
	now  func() time.Time

	mu      sync.Mutex
	epoch   uint64 // lease we hold (0 = not leader)
	maxSeen uint64 // highest epoch ever observed (monotonicity floor)
}

// NewFencer builds a fencer for one node. self is the node's advertise
// URL (it doubles as the holder identity in the fence file); now may be
// chaos-wrapped.
func NewFencer(path, self string, ttl time.Duration, now func() time.Time) *Fencer {
	if now == nil {
		now = time.Now
	}
	return &Fencer{path: path, self: self, ttl: ttl, now: now}
}

// withFence runs fn with the fence file exclusively locked, passing the
// current doc (zero doc if absent or damaged). If fn returns a non-nil
// doc, it is written back (truncate + write + sync) before unlock.
func (f *Fencer) withFence(fn func(cur fenceDoc) (*fenceDoc, error)) error {
	fd, err := os.OpenFile(f.path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("server: fence open: %w", err)
	}
	defer fd.Close()
	if err := syscall.Flock(int(fd.Fd()), syscall.LOCK_EX); err != nil {
		return fmt.Errorf("server: fence lock: %w", err)
	}
	defer syscall.Flock(int(fd.Fd()), syscall.LOCK_UN)
	raw, err := io.ReadAll(io.LimitReader(fd, 4096))
	if err != nil {
		return fmt.Errorf("server: fence read: %w", err)
	}
	// A damaged fence (torn write, bit rot) reads as the zero doc: the
	// lease is up for grabs, and epoch monotonicity survives via maxSeen.
	cur := parseFenceLine(raw)
	next, err := fn(cur)
	if err != nil {
		return err
	}
	if next == nil {
		return nil
	}
	line, err := frameFenceDoc(*next)
	if err != nil {
		return err
	}
	if err := fd.Truncate(0); err != nil {
		return fmt.Errorf("server: fence truncate: %w", err)
	}
	if _, err := fd.WriteAt(line, 0); err != nil {
		return fmt.Errorf("server: fence write: %w", err)
	}
	if err := fd.Sync(); err != nil {
		return fmt.Errorf("server: fence sync: %w", err)
	}
	return nil
}

// frameFenceDoc encodes a fence doc with the store's CRC line framing.
func frameFenceDoc(doc fenceDoc) ([]byte, error) {
	payload, err := json.Marshal(doc)
	if err != nil {
		return nil, err
	}
	return []byte(fmt.Sprintf("%08x %s\n", crc32.Checksum(payload, crcTable), payload)), nil
}

// parseFenceLine decodes a fence file's contents; damage yields the zero
// doc (lease up for grabs; see maxSeen for epoch safety).
func parseFenceLine(raw []byte) fenceDoc {
	line := bytes.TrimRight(raw, "\n")
	if len(line) < 10 || line[8] != ' ' {
		return fenceDoc{}
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return fenceDoc{}
	}
	payload := line[9:]
	if crc32.Checksum(payload, crcTable) != want {
		return fenceDoc{}
	}
	var doc fenceDoc
	if err := json.Unmarshal(payload, &doc); err != nil {
		return fenceDoc{}
	}
	return doc
}

// TryAcquire attempts to take the lease. It returns (epoch, true, prev) on
// success — the caller is now leader at that epoch, prev being the lease it
// superseded — or (0, false, cur) with the live lease it observed.
func (f *Fencer) TryAcquire() (uint64, bool, fenceDoc, error) {
	var granted uint64
	var observed fenceDoc
	err := f.withFence(func(cur fenceDoc) (*fenceDoc, error) {
		f.noteEpoch(cur.Epoch)
		now := f.now()
		observed = cur
		live := cur.Holder != "" && now.UnixNano() < cur.Expires
		if live && cur.Holder != f.self {
			return nil, nil
		}
		// Expired, unclaimed, or our own stale lease from a previous
		// incarnation: claim with a strictly higher epoch.
		next := f.floorEpoch(cur.Epoch) + 1
		granted = next
		doc := fenceDoc{Epoch: next, Holder: f.self, Expires: now.Add(f.ttl).UnixNano()}
		return &doc, nil
	})
	if err != nil {
		return 0, false, fenceDoc{}, err
	}
	if granted == 0 {
		return 0, false, observed, nil
	}
	f.mu.Lock()
	f.epoch = granted
	if granted > f.maxSeen {
		f.maxSeen = granted
	}
	f.mu.Unlock()
	return granted, true, observed, nil
}

// Is makes a deposition satisfy errors.Is(err, ErrFenced): both mean "you
// may not write".
func (e *DeposedError) Is(target error) bool { return target == ErrFenced }

// Renew extends the held lease. A fence showing another holder or epoch
// returns *DeposedError and drops leadership locally.
func (f *Fencer) Renew() error {
	f.mu.Lock()
	mine := f.epoch
	f.mu.Unlock()
	if mine == 0 {
		return ErrFenced
	}
	return f.withFence(func(cur fenceDoc) (*fenceDoc, error) {
		f.noteEpoch(cur.Epoch)
		if cur.Holder != f.self || cur.Epoch != mine {
			f.dropLease()
			return nil, &DeposedError{Epoch: mine, Seen: cur.Epoch, Holder: cur.Holder}
		}
		doc := cur
		doc.Expires = f.now().Add(f.ttl).UnixNano()
		return &doc, nil
	})
}

// Validate confirms the lease is still ours and live — called before every
// local WAL append. Failure means fenced: no write may proceed.
func (f *Fencer) Validate() error {
	f.mu.Lock()
	mine := f.epoch
	f.mu.Unlock()
	if mine == 0 {
		return ErrFenced
	}
	return f.withFence(func(cur fenceDoc) (*fenceDoc, error) {
		f.noteEpoch(cur.Epoch)
		if cur.Holder != f.self || cur.Epoch != mine {
			f.dropLease()
			return nil, &DeposedError{Epoch: mine, Seen: cur.Epoch, Holder: cur.Holder}
		}
		if f.now().UnixNano() >= cur.Expires {
			// Our own lease expired un-renewed (stalled process, frozen
			// clock). Nobody else claimed yet, but writing now would race
			// whoever does; fence ourselves.
			f.dropLease()
			return nil, ErrFenced
		}
		return nil, nil
	})
}

// Observe reads the current fence without contending.
func (f *Fencer) Observe() (fenceDoc, error) {
	var out fenceDoc
	err := f.withFence(func(cur fenceDoc) (*fenceDoc, error) {
		f.noteEpoch(cur.Epoch)
		out = cur
		return nil, nil
	})
	return out, err
}

// Release voluntarily gives the lease up (graceful shutdown): the expiry
// is zeroed so a standby promotes immediately instead of waiting a TTL.
func (f *Fencer) Release() error {
	f.mu.Lock()
	mine := f.epoch
	f.epoch = 0
	f.mu.Unlock()
	if mine == 0 {
		return nil
	}
	return f.withFence(func(cur fenceDoc) (*fenceDoc, error) {
		if cur.Holder != f.self || cur.Epoch != mine {
			return nil, nil // already superseded; nothing to release
		}
		doc := cur
		doc.Expires = 0
		return &doc, nil
	})
}

// Epoch returns the lease epoch this fencer holds (0 = not leader).
func (f *Fencer) Epoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// MaxSeen returns the highest epoch this fencer has ever observed.
func (f *Fencer) MaxSeen() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.maxSeen
}

func (f *Fencer) noteEpoch(e uint64) {
	f.mu.Lock()
	if e > f.maxSeen {
		f.maxSeen = e
	}
	f.mu.Unlock()
}

func (f *Fencer) floorEpoch(fileEpoch uint64) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.maxSeen > fileEpoch {
		return f.maxSeen
	}
	return fileEpoch
}

func (f *Fencer) dropLease() {
	f.mu.Lock()
	f.epoch = 0
	f.mu.Unlock()
}
