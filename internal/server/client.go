package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client talks to a chaserd over HTTP. It implements Control (for workers)
// and the submit/watch surface (for cmd/campaign). A zero HTTPClient uses a
// modest default timeout; long-poll calls override per-request.
type Client struct {
	// Base is the server address, e.g. "http://127.0.0.1:7070".
	Base string
	// HTTPClient overrides the transport (nil = 30s-timeout default).
	HTTPClient *http.Client
}

// NewClient builds a client for base ("host:port" or full URL).
func NewClient(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// RemoteError is a non-2xx response from chaserd, preserving the status
// code and any Retry-After hint so callers can implement the 429 contract.
type RemoteError struct {
	Status     int
	Msg        string
	RetryAfter time.Duration
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("chaserd: HTTP %d: %s", e.Status, e.Msg)
}

// do issues one request and decodes a JSON body into out (when non-nil).
func (c *Client) do(method, path string, body, out any) error {
	return c.doClient(c.http(), method, path, body, out)
}

func (c *Client) doClient(hc *http.Client, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusNoContent {
		return nil
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		re := &RemoteError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(raw))}
		var he httpError
		if json.Unmarshal(raw, &he) == nil && he.Error != "" {
			re.Msg = he.Error
		}
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			re.RetryAfter = time.Duration(ra) * time.Second
		}
		if resp.StatusCode == http.StatusNotFound && strings.Contains(re.Msg, "lease") {
			return fmt.Errorf("%w (%s)", ErrLeaseUnknown, re.Msg)
		}
		return re
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// Submit posts a spec, honoring 429 + Retry-After with bounded waiting
// (at most ~30s total) before giving up — the graceful-degradation side of
// the admission-control contract.
func (c *Client) Submit(sp Spec) (string, error) {
	var waited time.Duration
	for {
		var resp struct {
			ID string `json:"id"`
		}
		err := c.do(http.MethodPost, "/api/v1/campaigns", sp, &resp)
		if err == nil {
			return resp.ID, nil
		}
		var re *RemoteError
		if errors.As(err, &re) && re.Status == http.StatusTooManyRequests && waited < 30*time.Second {
			wait := re.RetryAfter
			if wait <= 0 {
				wait = time.Second
			}
			waited += wait
			time.Sleep(wait)
			continue
		}
		return "", err
	}
}

// Status fetches one campaign's status.
func (c *Client) Status(id string) (*CampaignStatus, error) {
	var st CampaignStatus
	if err := c.do(http.MethodGet, "/api/v1/campaigns/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// SummaryDoc is the stored summary document: the pre-rendered report text
// (histogram internals do not survive a JSON round trip, so the server
// renders the report at merge time) plus the raw summary JSON.
type SummaryDoc struct {
	Report  string          `json:"report"`
	Summary json.RawMessage `json:"summary"`
}

// WaitSummary long-polls until the campaign completes and returns its
// summary document. It re-polls indefinitely while the campaign is active;
// a failed campaign surfaces as the server's 409 error.
func (c *Client) WaitSummary(id string) (*SummaryDoc, error) {
	// Per-request timeout must exceed the server's long-poll cap (60s).
	hc := &http.Client{Timeout: 90 * time.Second}
	for {
		req, err := http.NewRequest(http.MethodGet, c.Base+"/api/v1/campaigns/"+id+"/summary?wait=30s", nil)
		if err != nil {
			return nil, err
		}
		resp, err := hc.Do(req)
		if err != nil {
			return nil, err
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var doc SummaryDoc
			if err := json.Unmarshal(raw, &doc); err != nil {
				return nil, fmt.Errorf("chaserd: bad summary document: %v", err)
			}
			return &doc, nil
		case http.StatusAccepted:
			continue // still running; poll again
		default:
			re := &RemoteError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(raw))}
			var he httpError
			if json.Unmarshal(raw, &he) == nil && he.Error != "" {
				re.Msg = he.Error
			}
			return nil, re
		}
	}
}

// Claim implements Control over HTTP. (nil, nil) mirrors the server's 204.
func (c *Client) Claim(worker string) (*Assignment, error) {
	req := struct {
		Worker string `json:"worker"`
	}{worker}
	var a Assignment
	err := c.do(http.MethodPost, "/api/v1/leases", req, &a)
	if err != nil {
		return nil, err
	}
	if a.Token == "" { // 204: no body was decoded
		return nil, nil
	}
	return &a, nil
}

// Heartbeat implements Control over HTTP.
func (c *Client) Heartbeat(token string) error {
	return c.do(http.MethodPost, "/api/v1/leases/"+token+"/heartbeat", struct{}{}, nil)
}

// Complete implements Control over HTTP.
func (c *Client) Complete(token string) error {
	return c.do(http.MethodPost, "/api/v1/leases/"+token+"/complete", struct{}{}, nil)
}

// Fail implements Control over HTTP.
func (c *Client) Fail(token, reason string) error {
	req := struct {
		Reason string `json:"reason"`
	}{reason}
	return c.do(http.MethodPost, "/api/v1/leases/"+token+"/fail", req, nil)
}
