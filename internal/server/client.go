package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Client talks to a chaserd over HTTP. It implements Control (for workers)
// and the submit/watch surface (for cmd/campaign). A zero HTTPClient uses a
// modest default timeout; long-poll calls override per-request.
//
// In HA deployments a client is built with the full peer list
// ("host:port,host:port"); it remembers which peer last served it (sticky),
// follows the follower's 307 redirects to the leader automatically, and on
// connection failure or 503 rotates through the remaining peers, honoring
// Retry-After, until the failover budget is spent. A request no peer would
// serve comes back as *FailoverError.
type Client struct {
	// Base is the preferred server address, e.g. "http://127.0.0.1:7070".
	Base string
	// Peers lists every known server (failover candidates, includes Base).
	Peers []string
	// HTTPClient overrides the transport (nil = 30s-timeout default).
	HTTPClient *http.Client
	// FailoverWait caps the total time spent cycling peers and sleeping on
	// Retry-After before a request fails with *FailoverError (default 30s).
	FailoverWait time.Duration

	mu     sync.Mutex
	sticky string // the peer (or redirect target) that last served us
}

// NewClient builds a client for base ("host:port" or full URL). A
// comma-separated list of addresses configures the HA peer set; the first
// entry is the initial preference.
func NewClient(base string) *Client {
	var peers []string
	for _, p := range strings.Split(base, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if !strings.Contains(p, "://") {
			p = "http://" + p
		}
		peers = append(peers, strings.TrimRight(p, "/"))
	}
	if len(peers) == 0 {
		peers = []string{"http://" + base}
	}
	return &Client{Base: peers[0], Peers: peers}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Client) failoverWait() time.Duration {
	if c.FailoverWait > 0 {
		return c.FailoverWait
	}
	return 30 * time.Second
}

// currentPeer returns the sticky peer, falling back to Base.
func (c *Client) currentPeer() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sticky != "" {
		return c.sticky
	}
	return c.Base
}

// noteServed records the address that actually served a response — after
// any redirects — so the next request goes straight to the leader.
func (c *Client) noteServed(resp *http.Response) {
	if resp.Request == nil || resp.Request.URL == nil {
		return
	}
	u := resp.Request.URL
	c.mu.Lock()
	c.sticky = u.Scheme + "://" + u.Host
	c.mu.Unlock()
}

// rotate advances the sticky peer past the one that just failed. If the
// failed address is not in Peers (a redirect target that died), fall back
// to the head of the peer list.
func (c *Client) rotate(from string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur := c.sticky; cur != "" && cur != from {
		return // another goroutine already moved on
	}
	for i, p := range c.Peers {
		if p == from {
			c.sticky = c.Peers[(i+1)%len(c.Peers)]
			return
		}
	}
	if len(c.Peers) > 0 {
		c.sticky = c.Peers[0]
	}
}

// RemoteError is a non-2xx response from chaserd, preserving the status
// code and any Retry-After hint so callers can implement the 429 contract.
type RemoteError struct {
	Status     int
	Msg        string
	RetryAfter time.Duration
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("chaserd: HTTP %d: %s", e.Status, e.Msg)
}

// FailoverError reports that no configured peer would serve a request
// within the failover budget: every one was down or leaderless.
type FailoverError struct {
	Peers  []string      // the peer set that was tried
	Waited time.Duration // total time spent before giving up
	Last   error         // the final per-peer failure
}

func (e *FailoverError) Error() string {
	return fmt.Sprintf("chaserd: no peer served the request after %s (peers %s): %v",
		e.Waited.Round(time.Millisecond), strings.Join(e.Peers, ", "), e.Last)
}

func (e *FailoverError) Unwrap() error { return e.Last }

// retryableAcross reports whether an error may be retried against another
// peer. A 503 (follower with no leader, or mid-demotion) is always safe:
// the server refused before touching state. Transport errors are safe for
// idempotent requests; for POSTs only failures that provably happened
// before the request was delivered (dial errors) qualify — a timeout after
// delivery might have been processed.
func retryableAcross(err error, idempotent bool) bool {
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Status == http.StatusServiceUnavailable
	}
	var ue *url.Error
	if !errors.As(err, &ue) {
		return false
	}
	if idempotent {
		return true
	}
	var oe *net.OpError
	if errors.As(ue, &oe) && oe.Op == "dial" {
		return true
	}
	return errors.Is(ue, syscall.ECONNREFUSED)
}

// retryDelay picks how long to sleep before the next peer attempt.
func retryDelay(err error) time.Duration {
	var re *RemoteError
	if errors.As(err, &re) && re.RetryAfter > 0 {
		return re.RetryAfter
	}
	return 250 * time.Millisecond
}

// do issues one request with failover and decodes a JSON body into out
// (when non-nil).
func (c *Client) do(method, path string, body, out any) error {
	return c.doClient(c.http(), method, path, body, out)
}

func (c *Client) doClient(hc *http.Client, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		payload = raw
	}
	idempotent := method == http.MethodGet
	var waited time.Duration
	for {
		peer := c.currentPeer()
		err := c.doOnce(hc, peer, method, path, payload, out)
		if err == nil || !retryableAcross(err, idempotent) {
			return err
		}
		wait := retryDelay(err)
		if waited+wait > c.failoverWait() {
			return &FailoverError{Peers: append([]string(nil), c.Peers...), Waited: waited, Last: err}
		}
		c.rotate(peer)
		time.Sleep(wait)
		waited += wait
	}
}

// doOnce issues one request against one peer. Transport failures surface
// as *url.Error, HTTP failures as *RemoteError (or ErrLeaseUnknown).
func (c *Client) doOnce(hc *http.Client, base, method, path string, payload []byte, out any) error {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequest(method, base+path, rd)
	if err != nil {
		return err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		re := &RemoteError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(raw))}
		var he httpError
		if json.Unmarshal(raw, &he) == nil && he.Error != "" {
			re.Msg = he.Error
		}
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			re.RetryAfter = time.Duration(ra) * time.Second
		}
		if resp.StatusCode == http.StatusNotFound && strings.Contains(re.Msg, "lease") {
			return fmt.Errorf("%w (%s)", ErrLeaseUnknown, re.Msg)
		}
		return re
	}
	c.noteServed(resp)
	if resp.StatusCode == http.StatusNoContent || out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// Submit posts a spec, honoring 429 + Retry-After with bounded waiting
// (at most ~30s total) before giving up — the graceful-degradation side of
// the admission-control contract. Failover across peers happens one layer
// down, with its own budget.
func (c *Client) Submit(sp Spec) (string, error) {
	var waited time.Duration
	for {
		var resp struct {
			ID string `json:"id"`
		}
		err := c.do(http.MethodPost, "/api/v1/campaigns", sp, &resp)
		if err == nil {
			return resp.ID, nil
		}
		var re *RemoteError
		if errors.As(err, &re) && re.Status == http.StatusTooManyRequests && waited < 30*time.Second {
			wait := re.RetryAfter
			if wait <= 0 {
				wait = time.Second
			}
			waited += wait
			time.Sleep(wait)
			continue
		}
		return "", err
	}
}

// Status fetches one campaign's status.
func (c *Client) Status(id string) (*CampaignStatus, error) {
	var st CampaignStatus
	if err := c.do(http.MethodGet, "/api/v1/campaigns/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// SummaryDoc is the stored summary document: the pre-rendered report text
// (histogram internals do not survive a JSON round trip, so the server
// renders the report at merge time) plus the raw summary JSON.
type SummaryDoc struct {
	Report  string          `json:"report"`
	Summary json.RawMessage `json:"summary"`
}

// WaitSummary long-polls until the campaign completes and returns its
// summary document. It re-polls indefinitely while the campaign is active
// and rides out failovers: the budget only counts consecutive failures, so
// a leader crash mid-watch costs one promotion, not the watch.
func (c *Client) WaitSummary(id string) (*SummaryDoc, error) {
	// Per-request timeout must exceed the server's long-poll cap (60s).
	hc := &http.Client{Timeout: 90 * time.Second}
	path := "/api/v1/campaigns/" + id + "/summary?wait=30s"
	var waited time.Duration
	for {
		peer := c.currentPeer()
		req, err := http.NewRequest(http.MethodGet, peer+path, nil)
		if err != nil {
			return nil, err
		}
		resp, err := hc.Do(req)
		if err != nil {
			wait := retryDelay(err)
			if waited+wait > c.failoverWait() {
				return nil, &FailoverError{Peers: append([]string(nil), c.Peers...), Waited: waited, Last: err}
			}
			c.rotate(peer)
			time.Sleep(wait)
			waited += wait
			continue
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			c.noteServed(resp)
			var doc SummaryDoc
			if err := json.Unmarshal(raw, &doc); err != nil {
				return nil, fmt.Errorf("chaserd: bad summary document: %v", err)
			}
			return &doc, nil
		case http.StatusAccepted:
			c.noteServed(resp)
			waited = 0 // the campaign is alive and being served
			continue
		case http.StatusServiceUnavailable, http.StatusNotFound:
			// 503: leaderless interregnum. 404: the new leader has not yet
			// replayed far enough to know the campaign (async replication
			// lag) — indistinguishable from a bad ID, so bound the retries.
			re := &RemoteError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(raw))}
			var he httpError
			if json.Unmarshal(raw, &he) == nil && he.Error != "" {
				re.Msg = he.Error
			}
			if ra, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil {
				re.RetryAfter = time.Duration(ra) * time.Second
			}
			wait := retryDelay(re)
			if waited+wait > c.failoverWait() {
				return nil, &FailoverError{Peers: append([]string(nil), c.Peers...), Waited: waited, Last: re}
			}
			if resp.StatusCode == http.StatusServiceUnavailable {
				c.rotate(peer)
			}
			time.Sleep(wait)
			waited += wait
		default:
			re := &RemoteError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(raw))}
			var he httpError
			if json.Unmarshal(raw, &he) == nil && he.Error != "" {
				re.Msg = he.Error
			}
			return nil, re
		}
	}
}

// Claim implements Control over HTTP. (nil, nil) mirrors the server's 204.
func (c *Client) Claim(worker string) (*Assignment, error) {
	req := struct {
		Worker string `json:"worker"`
	}{worker}
	var a Assignment
	err := c.do(http.MethodPost, "/api/v1/leases", req, &a)
	if err != nil {
		return nil, err
	}
	if a.Token == "" { // 204: no body was decoded
		return nil, nil
	}
	return &a, nil
}

// Heartbeat implements Control over HTTP.
func (c *Client) Heartbeat(token string) error {
	return c.do(http.MethodPost, "/api/v1/leases/"+token+"/heartbeat", struct{}{}, nil)
}

// Complete implements Control over HTTP.
func (c *Client) Complete(token string) error {
	return c.do(http.MethodPost, "/api/v1/leases/"+token+"/complete", struct{}{}, nil)
}

// Fail implements Control over HTTP.
func (c *Client) Fail(token, reason string) error {
	req := struct {
		Reason string `json:"reason"`
	}{reason}
	return c.do(http.MethodPost, "/api/v1/leases/"+token+"/fail", req, nil)
}
