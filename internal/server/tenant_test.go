package server

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestTenantQuota: the active-campaign quota admits up to MaxActive, then
// rejects with a QuotaError until a slot is released.
func TestTenantQuota(t *testing.T) {
	tn := NewTenants(TenantLimits{MaxActive: 2, RatePerSec: 1000, Burst: 100})
	if err := tn.Admit("a"); err != nil {
		t.Fatal(err)
	}
	if err := tn.Admit("a"); err != nil {
		t.Fatal(err)
	}
	err := tn.Admit("a")
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("third admit: %v, want QuotaError", err)
	}
	if qe.Active != 2 || qe.Max != 2 || qe.RetryAfter <= 0 {
		t.Errorf("QuotaError = %+v", qe)
	}
	// Tenants are independent namespaces.
	if err := tn.Admit("b"); err != nil {
		t.Errorf("tenant b blocked by tenant a's quota: %v", err)
	}
	tn.Release("a")
	if err := tn.Admit("a"); err != nil {
		t.Errorf("admit after release: %v", err)
	}
}

// TestTenantThrottle: the token bucket rejects a burst over its depth with
// a ThrottleError carrying a positive Retry-After.
func TestTenantThrottle(t *testing.T) {
	tn := NewTenants(TenantLimits{MaxActive: 100, RatePerSec: 0.001, Burst: 2})
	if err := tn.Admit("a"); err != nil {
		t.Fatal(err)
	}
	if err := tn.Admit("a"); err != nil {
		t.Fatal(err)
	}
	err := tn.Admit("a")
	var te *ThrottleError
	if !errors.As(err, &te) {
		t.Fatalf("burst-exhausted admit: %v, want ThrottleError", err)
	}
	if te.RetryAfter < time.Second {
		t.Errorf("RetryAfter = %s, want >= 1s", te.RetryAfter)
	}
}

// TestTenantRestore seeds recovered active counts without spending tokens.
func TestTenantRestore(t *testing.T) {
	tn := NewTenants(TenantLimits{MaxActive: 2, RatePerSec: 1000, Burst: 100})
	tn.Restore(map[string]int{"a": 2})
	var qe *QuotaError
	if err := tn.Admit("a"); !errors.As(err, &qe) {
		t.Fatalf("admit over restored quota: %v, want QuotaError", err)
	}
}

// TestSubmitOverQuotaReturns429 drives the admission-control contract end
// to end over HTTP: quota and rate rejections must surface as 429 with a
// Retry-After header, and a rejected submission must not leak a quota slot.
func TestSubmitOverQuotaReturns429(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Addr:     "127.0.0.1:0",
		StoreDir: t.TempDir(),
		Sched:    SchedConfig{ExpiryInterval: time.Hour, Logf: t.Logf},
		Tenants:  TenantLimits{MaxActive: 1, RatePerSec: 1000, Burst: 100},
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Abort()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/api/v1/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	spec := `{"tenant":"team-a","app":"kmeans","runs":10,"seed":1}`
	if resp := post(spec); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first submit: HTTP %d", resp.StatusCode)
	}
	resp := post(spec)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	// A bad spec from another tenant must not consume its quota slot.
	if resp := post(`{"tenant":"team-b","app":"no-such-app","runs":10,"seed":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown app: HTTP %d, want 400", resp.StatusCode)
	}
	if resp := post(`{"tenant":"team-b","app":"kmeans","runs":10,"seed":1}`); resp.StatusCode != http.StatusCreated {
		t.Fatalf("team-b submit after rejected spec: HTTP %d, want 201", resp.StatusCode)
	}
	// Oversized and malformed payloads map to their own statuses.
	if resp := post(strings.Repeat("x", MaxSpecBytes+1)); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized spec: HTTP %d, want 413", resp.StatusCode)
	}
	if resp := post(`{"app":`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed spec: HTTP %d, want 400", resp.StatusCode)
	}
}
