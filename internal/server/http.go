package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// HTTP surface of the control plane:
//
//	POST /api/v1/campaigns                     submit a spec    -> {"id": ...}
//	GET  /api/v1/campaigns[?tenant=T]          list statuses
//	GET  /api/v1/campaigns/{id}                one status
//	GET  /api/v1/campaigns/{id}/summary[?wait=30s]  merged summary (long-poll)
//	POST /api/v1/leases                        claim a shard    -> Assignment | 204
//	POST /api/v1/leases/{token}/heartbeat      extend the lease
//	POST /api/v1/leases/{token}/complete       report success
//	POST /api/v1/leases/{token}/fail           report failure   {"reason": ...}
//	GET  /api/v1/replicate?from=N&logid=L      WAL shipping stream (leader only)
//	GET  /metrics                              Prometheus text
//	GET  /healthz                              liveness + role + epoch
//
// Admission-control rejections surface as 429 + Retry-After (the hub's
// BusyError contract over HTTP); unknown leases as 404 so a worker can
// distinguish "abandon the shard" from transient transport errors.
//
// In HA mode only the leader serves the API. A follower answers every
// /api/v1/* call (except the replication stream, which it 503s) with a
// 307 redirect to the leader plus Retry-After, so clients and workers
// rediscover the leader without configuration; when no leader is known
// yet, it answers 503 + Retry-After and the client's failover retry does
// the rest. Every response carries X-Chaser-Epoch.

// httpError is the JSON error envelope.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, httpError{Error: err.Error()})
}

// schedOr503 fetches the live scheduler, answering 503 + Retry-After when
// this node has none (a demotion landed between the role middleware and the
// handler body). Callers must return immediately on nil.
func (s *Server) schedOr503(w http.ResponseWriter) *Scheduler {
	sched := s.currentSched()
	if sched == nil {
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, errNotLeader)
	}
	return sched
}

// handler builds the API mux over a scheduler, tenant table and store,
// wrapped in the role middleware that keeps follower nodes honest.
func (s *Server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/campaigns", s.handleCampaigns)
	mux.HandleFunc("/api/v1/campaigns/", s.handleCampaign)
	mux.HandleFunc("/api/v1/leases", s.handleLeases)
	mux.HandleFunc("/api/v1/leases/", s.handleLease)
	mux.HandleFunc("/api/v1/replicate", s.handleReplicate)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		role := "follower"
		if s.IsLeader() {
			role = "leader"
		}
		fmt.Fprintf(w, "ok role=%s epoch=%d\n", role, s.currentEpoch())
	})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Chaser-Epoch", strconv.FormatUint(s.currentEpoch(), 10))
		switch r.URL.Path {
		case "/metrics", "/healthz":
			mux.ServeHTTP(w, r)
			return
		}
		if s.IsLeader() {
			mux.ServeHTTP(w, r)
			return
		}
		// Follower: never serve state. The replication stream must come
		// from the leader (a follower relaying a follower could serve a
		// deposed line of history); everything else redirects.
		if r.URL.Path == "/api/v1/replicate" {
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable, errNotLeader)
			return
		}
		leader := s.leaderHint()
		if leader == "" || leader == s.Advertise() {
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable, errNotLeader)
			return
		}
		w.Header().Set("Retry-After", "1")
		http.Redirect(w, r, leader+r.URL.RequestURI(), http.StatusTemporaryRedirect)
	})
}

// handleCampaigns serves POST (submit) and GET (list) on /api/v1/campaigns.
func (s *Server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleSubmit(w, r)
	case http.MethodGet:
		sched := s.schedOr503(w)
		if sched == nil {
			return
		}
		writeJSON(w, http.StatusOK, sched.List(r.URL.Query().Get("tenant")))
	default:
		w.Header().Set("Allow", "GET, POST")
		writeErr(w, http.StatusMethodNotAllowed, errors.New("method not allowed"))
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	sp, err := DecodeSpec(r.Body, MaxSpecBytes)
	if err != nil {
		var sizeErr *SpecSizeError
		if errors.As(err, &sizeErr) {
			writeErr(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sp = sp.normalize()
	if err := s.tenants.Admit(sp.Tenant); err != nil {
		var thr *ThrottleError
		var quo *QuotaError
		var retryAfter time.Duration
		switch {
		case errors.As(err, &thr):
			retryAfter = thr.RetryAfter
			s.reg.Counter("server_throttled_total").Inc()
		case errors.As(err, &quo):
			retryAfter = quo.RetryAfter
			s.reg.Counter("server_quota_rejected_total").Inc()
		default:
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Retry-After", strconv.Itoa(int((retryAfter+time.Second-1)/time.Second)))
		writeErr(w, http.StatusTooManyRequests, err)
		return
	}
	sched := s.schedOr503(w)
	if sched == nil {
		s.tenants.Release(sp.Tenant)
		return
	}
	id, err := sched.Submit(sp)
	if err != nil {
		s.tenants.Release(sp.Tenant) // the admitted slot was never used
		var specErr *SpecError
		if errors.As(err, &specErr) {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": id})
}

// handleCampaign serves /api/v1/campaigns/{id} and .../{id}/summary.
func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		writeErr(w, http.StatusMethodNotAllowed, errors.New("method not allowed"))
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/campaigns/")
	id, sub, _ := strings.Cut(rest, "/")
	sched := s.schedOr503(w)
	if sched == nil {
		return
	}
	st := sched.Status(id)
	if st == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", id))
		return
	}
	switch sub {
	case "":
		writeJSON(w, http.StatusOK, st)
	case "summary":
		s.handleSummary(w, r, id)
	default:
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown resource %q", sub))
	}
}

// handleSummary serves the merged summary, optionally long-polling until
// the campaign reaches a terminal state (?wait=30s, capped at 60s so a
// watch client re-polls rather than pinning a connection forever).
func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request, id string) {
	sched := s.schedOr503(w)
	if sched == nil {
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		wait, err := time.ParseDuration(waitStr)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad wait %q: %v", waitStr, err))
			return
		}
		if wait > time.Minute {
			wait = time.Minute
		}
		done := sched.Done(id)
		if done != nil && wait > 0 {
			select {
			case <-done:
			case <-time.After(wait):
			case <-r.Context().Done():
				return
			}
		}
	}
	st := sched.Status(id)
	if st == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", id))
		return
	}
	switch st.Status {
	case StatusFailed:
		writeJSON(w, http.StatusConflict, httpError{Error: "campaign failed: " + st.Err})
	case StatusComplete:
		raw, err := s.store.ReadSummary(id)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		if raw == nil {
			writeErr(w, http.StatusInternalServerError, fmt.Errorf("summary for %s missing from store", id))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(raw)
	default:
		// Not done yet (long-poll timed out or wasn't requested).
		w.Header().Set("Retry-After", "2")
		writeJSON(w, http.StatusAccepted, st)
	}
}

// handleLeases serves POST /api/v1/leases (claim). 204 means no work.
func (s *Server) handleLeases(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeErr(w, http.StatusMethodNotAllowed, errors.New("method not allowed"))
		return
	}
	var req struct {
		Worker string `json:"worker"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad claim request: %v", err))
		return
	}
	sched := s.schedOr503(w)
	if sched == nil {
		return
	}
	a, err := sched.Claim(req.Worker)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if a == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, a)
}

// handleLease serves POST /api/v1/leases/{token}/{heartbeat|complete|fail}.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeErr(w, http.StatusMethodNotAllowed, errors.New("method not allowed"))
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/leases/")
	token, verb, ok := strings.Cut(rest, "/")
	if !ok || token == "" {
		writeErr(w, http.StatusNotFound, errors.New("expected /api/v1/leases/{token}/{verb}"))
		return
	}
	sched := s.schedOr503(w)
	if sched == nil {
		return
	}
	var err error
	switch verb {
	case "heartbeat":
		err = sched.Heartbeat(token)
	case "complete":
		err = sched.Complete(token)
	case "fail":
		var req struct {
			Reason string `json:"reason"`
		}
		if derr := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<10)).Decode(&req); derr != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad fail request: %v", derr))
			return
		}
		err = sched.Fail(token, req.Reason)
	default:
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown lease verb %q", verb))
		return
	}
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	case errors.Is(err, ErrLeaseUnknown):
		writeErr(w, http.StatusNotFound, err)
	default:
		writeErr(w, http.StatusInternalServerError, err)
	}
}
