package server

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeSpec drives arbitrary bytes through the submission decoder.
// Specs arrive from arbitrary HTTP clients, so the invariant mirrors the
// hub's FuzzDecodeRequest: garbage may produce *SpecError, oversized
// payloads *SpecSizeError — never a panic, never an untyped error, and an
// accepted spec must satisfy every structural bound the validator promises.
func FuzzDecodeSpec(f *testing.F) {
	f.Add([]byte(`{"app":"kmeans","runs":100,"seed":42}`))
	f.Add([]byte(`{"app":"matvec","runs":1,"seed":-1,"bits":64,"shards":4096,"trace":true}`))
	f.Add([]byte(`{"tenant":"team-a","app":"lud","runs":50,"seed":7,"parallel":8,"run_timeout_ms":1000}`))
	f.Add([]byte(`{"app":"","runs":0}`))
	f.Add([]byte(`{"app":"UPPER CASE","runs":10,"seed":1}`))
	f.Add([]byte(`{"app":"kmeans","runs":-5,"seed":1}`))
	f.Add([]byte(`{"app":"kmeans","runs":2000000,"seed":1}`))
	f.Add([]byte(`{"runs":"ten"}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{`))
	f.Add([]byte("\x00\xff\xfe"))
	f.Add([]byte(""))
	f.Add(bytes.Repeat([]byte("a"), 300))
	f.Fuzz(func(t *testing.T, data []byte) {
		// A tiny limit makes the oversize path reachable for the fuzzer
		// without multi-KiB inputs.
		sp, err := DecodeSpec(bytes.NewReader(data), 256)
		if err != nil {
			var se *SpecError
			var sze *SpecSizeError
			switch {
			case errors.As(err, &sze):
				if len(data) <= 256 {
					t.Fatalf("size error for %d-byte payload under the limit", len(data))
				}
			case errors.As(err, &se):
				// Malformed or structurally invalid: expected.
			default:
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Accepted: every validator bound must hold, and normalization must
		// be idempotent and keep the spec valid.
		if sp.Runs < 1 || sp.Runs > MaxRuns || sp.Shards < 0 || sp.Shards > MaxShards {
			t.Fatalf("accepted spec out of bounds: %+v", sp)
		}
		n := sp.normalize()
		if err := n.validate(); err != nil {
			t.Fatalf("normalized spec fails validation: %v", err)
		}
		if n.Shards < 1 || n.Shards > n.Runs {
			t.Fatalf("normalize produced bad shard count: %+v", n)
		}
		if n2 := n.normalize(); n2 != n {
			t.Fatalf("normalize not idempotent: %+v vs %+v", n, n2)
		}
		// Every shard window must be non-empty, contiguous and cover [0,Runs).
		prev := 0
		for i := 0; i < n.Shards; i++ {
			lo, hi := n.shardRange(i)
			if lo != prev || hi <= lo {
				t.Fatalf("shard %d window [%d,%d) breaks coverage at %d", i, lo, hi, prev)
			}
			prev = hi
		}
		if prev != n.Runs {
			t.Fatalf("shards cover [0,%d), want [0,%d)", prev, n.Runs)
		}
	})
}
