package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

// FuzzDecodeSpec drives arbitrary bytes through the submission decoder.
// Specs arrive from arbitrary HTTP clients, so the invariant mirrors the
// hub's FuzzDecodeRequest: garbage may produce *SpecError, oversized
// payloads *SpecSizeError — never a panic, never an untyped error, and an
// accepted spec must satisfy every structural bound the validator promises.
func FuzzDecodeSpec(f *testing.F) {
	f.Add([]byte(`{"app":"kmeans","runs":100,"seed":42}`))
	f.Add([]byte(`{"app":"matvec","runs":1,"seed":-1,"bits":64,"shards":4096,"trace":true}`))
	f.Add([]byte(`{"tenant":"team-a","app":"lud","runs":50,"seed":7,"parallel":8,"run_timeout_ms":1000}`))
	f.Add([]byte(`{"app":"","runs":0}`))
	f.Add([]byte(`{"app":"UPPER CASE","runs":10,"seed":1}`))
	f.Add([]byte(`{"app":"kmeans","runs":-5,"seed":1}`))
	f.Add([]byte(`{"app":"kmeans","runs":2000000,"seed":1}`))
	f.Add([]byte(`{"runs":"ten"}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{`))
	f.Add([]byte("\x00\xff\xfe"))
	f.Add([]byte(""))
	f.Add(bytes.Repeat([]byte("a"), 300))
	f.Fuzz(func(t *testing.T, data []byte) {
		// A tiny limit makes the oversize path reachable for the fuzzer
		// without multi-KiB inputs.
		sp, err := DecodeSpec(bytes.NewReader(data), 256)
		if err != nil {
			var se *SpecError
			var sze *SpecSizeError
			switch {
			case errors.As(err, &sze):
				if len(data) <= 256 {
					t.Fatalf("size error for %d-byte payload under the limit", len(data))
				}
			case errors.As(err, &se):
				// Malformed or structurally invalid: expected.
			default:
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Accepted: every validator bound must hold, and normalization must
		// be idempotent and keep the spec valid.
		if sp.Runs < 1 || sp.Runs > MaxRuns || sp.Shards < 0 || sp.Shards > MaxShards {
			t.Fatalf("accepted spec out of bounds: %+v", sp)
		}
		n := sp.normalize()
		if err := n.validate(); err != nil {
			t.Fatalf("normalized spec fails validation: %v", err)
		}
		if n.Shards < 1 || n.Shards > n.Runs {
			t.Fatalf("normalize produced bad shard count: %+v", n)
		}
		if n2 := n.normalize(); n2 != n {
			t.Fatalf("normalize not idempotent: %+v vs %+v", n, n2)
		}
		// Every shard window must be non-empty, contiguous and cover [0,Runs).
		prev := 0
		for i := 0; i < n.Shards; i++ {
			lo, hi := n.shardRange(i)
			if lo != prev || hi <= lo {
				t.Fatalf("shard %d window [%d,%d) breaks coverage at %d", i, lo, hi, prev)
			}
			prev = hi
		}
		if prev != n.Runs {
			t.Fatalf("shards cover [0,%d), want [0,%d)", prev, n.Runs)
		}
	})
}

// FuzzReplicaFrame drives arbitrary bytes through the replication frame
// decoder. Frames arrive over the network from whatever claims to be a
// leader, so the invariant mirrors decodeFrame's contract: clean boundary
// io.EOF, torn stream io.ErrUnexpectedEOF, structural damage
// *ReplFrameError — never a panic, never an untyped error, never an
// allocation driven by an unvalidated length. Every accepted frame must
// survive an encode/decode round trip.
func FuzzReplicaFrame(f *testing.F) {
	frame := func(fr replFrame) []byte {
		var buf bytes.Buffer
		if err := encodeFrame(&buf, fr); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	rec := walRecord{T: "done", C: "c000001", Shard: 2, Epoch: 7}
	valid := frame(replFrame{Seq: 5, Epoch: 7, Rec: &rec})
	f.Add(valid)
	f.Add(append(append([]byte(nil), valid...), frame(replFrame{Seq: 6, Epoch: 7})...))
	f.Add(valid[:len(valid)/2]) // torn mid-payload
	f.Add(valid[:6])            // torn mid-header
	f.Add([]byte{})
	// Zero-length and oversized length prefixes.
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	// Valid header, corrupted payload (CRC mismatch).
	corrupted := append([]byte(nil), valid...)
	corrupted[len(corrupted)-1] ^= 0x01
	f.Add(corrupted)
	// Valid CRC over a non-JSON payload.
	junk := []byte("not json at all")
	hdr := make([]byte, 8)
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(junk)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(junk, crcTable))
	f.Add(append(hdr, junk...))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			fr, err := decodeFrame(r)
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return
			}
			if err != nil {
				var fe *ReplFrameError
				if !errors.As(err, &fe) {
					t.Fatalf("untyped frame error: %v", err)
				}
				return
			}
			if fr.Seq < 0 {
				t.Fatalf("accepted frame with negative seq: %+v", fr)
			}
			var buf bytes.Buffer
			if err := encodeFrame(&buf, fr); err != nil {
				t.Fatalf("re-encode of accepted frame: %v", err)
			}
			fr2, err := decodeFrame(&buf)
			if err != nil || fr2.Seq != fr.Seq || fr2.Epoch != fr.Epoch || (fr2.Rec == nil) != (fr.Rec == nil) {
				t.Fatalf("round trip diverged: %+v -> %+v (%v)", fr, fr2, err)
			}
		}
	})
}
