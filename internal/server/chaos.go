package server

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"chaser/internal/obs"
)

// Self-chaos: Chaser injecting faults into Chaser. The control plane's
// whole job is surviving the fault classes the injectors study, so it gets
// the same treatment the guest programs do — a deterministic, seeded
// fault-point layer with named sites threaded through the store, the
// replication stream and the fencer. Armed via the -chaos flag or the
// CHASERD_CHAOS environment variable:
//
//	CHASERD_CHAOS="seed=42,rate=0.05,sites=wal.short_write+repl.drop_frame"
//
// Each site draws from its own deterministic sequence (seed ⊕ site hash ⊕
// per-site counter through a splitmix64 mix), so two runs with the same
// seed inject the same faults at the same decision points regardless of
// goroutine interleaving elsewhere.

// Chaos site names. The catalog is documented in docs/ROBUSTNESS.md.
const (
	// ChaosWALShortWrite makes a WAL append write only half its line and
	// report an error (a torn write(2); the store repairs by truncating).
	ChaosWALShortWrite = "wal.short_write"
	// ChaosWALFsync fails the fsync after an append (Fsync mode only).
	ChaosWALFsync = "wal.fsync"
	// ChaosReplDropFrame makes the leader drop a replication frame and
	// sever the stream (the follower re-pulls from its cursor).
	ChaosReplDropFrame = "repl.drop_frame"
	// ChaosReplTearFrame makes the leader send a prefix of a frame and
	// sever the stream (the follower sees a torn frame mid-stream).
	ChaosReplTearFrame = "repl.tear_frame"
	// ChaosClockFreeze freezes the fencer's clock for several reads, so a
	// live leader misses renewals and gets deposed while still running.
	ChaosClockFreeze = "clock.freeze"
)

var chaosSites = []string{
	ChaosWALShortWrite, ChaosWALFsync, ChaosReplDropFrame, ChaosReplTearFrame, ChaosClockFreeze,
}

var (
	errChaosShortWrite = errors.New("chaos: injected short write")
	errChaosFsync      = errors.New("chaos: injected fsync error")
)

// clockFreezeReads is how many consecutive clock reads a single
// clock.freeze hit pins to the frozen instant.
const clockFreezeReads = 16

// Chaos is a deterministic fault-point layer. The nil *Chaos is valid and
// injects nothing, so call sites need no guards.
type Chaos struct {
	seed  uint64
	rate  float64
	sites map[string]bool
	reg   *obs.Registry

	mu     sync.Mutex
	counts map[string]uint64
	// clock.freeze state: the pinned instant and reads remaining.
	frozenAt    time.Time
	frozenReads int
}

// ParseChaos builds a Chaos from its textual spec: comma-separated
// key=value pairs with keys seed (uint), rate (0..1, default 0.01) and
// sites ('+'-separated site names, or "all"). Empty spec = nil (disarmed).
func ParseChaos(spec string) (*Chaos, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	c := &Chaos{rate: 0.01, sites: make(map[string]bool), counts: make(map[string]uint64)}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("server: chaos: %q is not key=value", kv)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("server: chaos: bad seed %q", val)
			}
			c.seed = n
		case "rate":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return nil, fmt.Errorf("server: chaos: bad rate %q (want 0..1)", val)
			}
			c.rate = f
		case "sites":
			for _, site := range strings.Split(val, "+") {
				site = strings.TrimSpace(site)
				if site == "all" {
					for _, s := range chaosSites {
						c.sites[s] = true
					}
					continue
				}
				if !knownChaosSite(site) {
					return nil, fmt.Errorf("server: chaos: unknown site %q (have %s)", site, strings.Join(chaosSites, ", "))
				}
				c.sites[site] = true
			}
		default:
			return nil, fmt.Errorf("server: chaos: unknown key %q", key)
		}
	}
	if len(c.sites) == 0 {
		return nil, fmt.Errorf("server: chaos: no sites armed (sites=...)")
	}
	return c, nil
}

func knownChaosSite(site string) bool {
	for _, s := range chaosSites {
		if s == site {
			return true
		}
	}
	return false
}

// SetObs routes injection counts into a metrics registry
// (server_chaos_injected_total plus a per-site counter).
func (c *Chaos) SetObs(reg *obs.Registry) {
	if c != nil {
		c.reg = reg
	}
}

// splitmix64 is the same cheap avalanche mix the campaign RNG family uses.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func siteHash(site string) uint64 {
	var h uint64 = 1469598103934665603 // FNV-1a
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	return h
}

// Hit reports whether this occurrence of the named site should fault, and
// advances the site's deterministic sequence. Nil-safe; a disarmed site
// consumes nothing.
func (c *Chaos) Hit(site string) bool {
	if c == nil || !c.sites[site] {
		return false
	}
	c.mu.Lock()
	n := c.counts[site]
	c.counts[site] = n + 1
	c.mu.Unlock()
	draw := splitmix64(c.seed ^ siteHash(site) ^ n)
	hit := float64(draw>>11)/float64(1<<53) < c.rate
	if hit && c.reg != nil {
		c.reg.Counter("server_chaos_injected_total").Inc()
		c.reg.Counter("server_chaos_" + strings.ReplaceAll(site, ".", "_") + "_total").Inc()
	}
	return hit
}

// Clock wraps a time source with the clock.freeze site: when the site
// fires, the next clockFreezeReads reads all observe the frozen instant —
// long enough for a fence lease to expire under the leader while it
// believes no time has passed.
func (c *Chaos) Clock(base func() time.Time) func() time.Time {
	if c == nil || !c.sites[ChaosClockFreeze] {
		return base
	}
	return func() time.Time {
		c.mu.Lock()
		if c.frozenReads > 0 {
			c.frozenReads--
			t := c.frozenAt
			c.mu.Unlock()
			return t
		}
		c.mu.Unlock()
		now := base()
		if c.Hit(ChaosClockFreeze) {
			c.mu.Lock()
			c.frozenAt = now
			c.frozenReads = clockFreezeReads
			c.mu.Unlock()
		}
		return now
	}
}

// Injections reports how many decisions each armed site has made (tests).
func (c *Chaos) Injections() map[string]uint64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]uint64, len(c.counts))
	for k, v := range c.counts {
		out[k] = v
	}
	return out
}
