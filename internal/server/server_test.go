package server

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"chaser/internal/apps"
	"chaser/internal/campaign"
	"chaser/internal/obs"
)

// acceptanceSpec is the campaign the end-to-end test shards: small enough
// to finish fast, traced like the standalone robustness tests.
var acceptanceSpec = Spec{App: "kmeans", Runs: 15, Seed: 808, Bits: 1, Shards: 3, Trace: true, Parallel: 2}

func newTestServer(t *testing.T, dir string) *Server {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Addr:     "127.0.0.1:0",
		StoreDir: dir,
		Obs:      obs.NewRegistry(),
		Sched: SchedConfig{
			LeaseTTL:       150 * time.Millisecond,
			ExpiryInterval: 25 * time.Millisecond,
			BackoffBase:    time.Millisecond,
			Logf:           t.Logf,
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestCampaignSurvivesWorkerDeathAndServerRestart is the control plane's
// acceptance test. One campaign, sharded across workers over the real HTTP
// API, survives in sequence:
//
//  1. a worker dying mid-shard with runs journaled but unreported — its
//     lease expires and the shard is re-enqueued (kill -9 + wedged-worker
//     lease expiry, in one),
//  2. a second worker resuming that shard from its journal,
//  3. chaserd itself crashing (no drain) and restarting from the WAL,
//
// and the merged summary must be bitwise identical to an uninterrupted
// single-process campaign — no run double-counted, none lost.
func TestCampaignSurvivesWorkerDeathAndServerRestart(t *testing.T) {
	app, err := apps.ByName(acceptanceSpec.App)
	if err != nil {
		t.Fatal(err)
	}
	// The uninterrupted single-process truth. The first campaign on a fresh
	// store gets hub namespace base 0, so the configs match exactly.
	baseline, err := campaign.Run(campaignConfig(acceptanceSpec.normalize(), app, 0))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	srv1 := newTestServer(t, dir)
	cl := NewClient(srv1.Addr())
	id, err := cl.Submit(acceptanceSpec)
	if err != nil {
		t.Fatal(err)
	}

	// (1) A doomed worker claims a shard, executes only part of it (runs
	// land in the journal), then goes silent: no heartbeat, no report.
	doomed, err := cl.Claim("doomed")
	if err != nil || doomed == nil {
		t.Fatalf("doomed claim: %v, %v", doomed, err)
	}
	partial := *doomed
	partial.Hi = partial.Lo + 2 // die after 2 of the shard's 5 runs
	if err := ExecuteShard(&partial, nil, nil); err != nil {
		t.Fatalf("partial shard execution: %v", err)
	}

	// The scheduler must notice the dead lease on its own.
	reg1 := srv1.Registry()
	deadline := time.Now().Add(10 * time.Second)
	for reg1.Counter("server_lease_expired_total").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := reg1.Counter("server_shards_requeued_total").Value(); got == 0 {
		t.Error("server_shards_requeued_total = 0 after lease expiry")
	}

	// (2) A live worker re-claims the abandoned shard and resumes it from
	// the doomed worker's journal (same stable path).
	second, err := cl.Claim("second")
	if err != nil || second == nil {
		t.Fatalf("second claim: %v, %v", second, err)
	}
	if second.Shard != doomed.Shard || second.Journal != doomed.Journal {
		t.Fatalf("re-claim got shard %d (%s), want the abandoned shard %d (%s)",
			second.Shard, second.Journal, doomed.Shard, doomed.Journal)
	}
	if err := ExecuteShard(second, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := cl.Complete(second.Token); err != nil {
		t.Fatal(err)
	}

	// (3) chaserd crashes mid-campaign — two shards still pending — and a
	// new instance resumes from the WAL on a fresh port.
	srv1.Abort()
	srv2 := newTestServer(t, dir)
	defer srv2.Abort()
	cl2 := NewClient(srv2.Addr())
	st, err := cl2.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusActive || st.DoneRuns != 5 {
		t.Fatalf("recovered status %s with %d done runs, want active with 5", st.Status, st.DoneRuns)
	}

	// A worker fleet finishes the campaign over the restarted server.
	w := NewWorker(WorkerConfig{
		Name:         "finisher",
		Control:      NewClient(srv2.Addr()),
		PollInterval: 5 * time.Millisecond,
		Logf:         t.Logf,
	})
	w.Start()
	defer w.Stop()

	doc, err := cl2.WaitSummary(id)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(doc.Summary), wantJSON) {
		t.Errorf("merged summary diverges from uninterrupted baseline:\n%s\n%s", doc.Summary, wantJSON)
	}
	if doc.Report != baseline.Report() {
		t.Errorf("merged report diverges:\n%q\n%q", doc.Report, baseline.Report())
	}
}

// TestPoolWorkersCompleteCampaign is the happy path over LocalControl: a
// campaign sharded across two in-process workers produces the baseline
// summary, exercising Submit → Claim → Execute → Complete → merge without
// HTTP in the loop.
func TestPoolWorkersCompleteCampaign(t *testing.T) {
	app, err := apps.ByName(acceptanceSpec.App)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := campaign.Run(campaignConfig(acceptanceSpec.normalize(), app, 0))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Addr:     "127.0.0.1:0",
		StoreDir: t.TempDir(),
		Sched:    SchedConfig{ExpiryInterval: time.Hour, Logf: t.Logf},
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Abort()
	for i := 0; i < 2; i++ {
		w := NewWorker(WorkerConfig{
			Control:      LocalControl{Sched: srv.Scheduler()},
			PollInterval: 5 * time.Millisecond,
			Logf:         t.Logf,
		})
		w.Start()
		defer w.Stop()
	}
	id, err := srv.Scheduler().Submit(acceptanceSpec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-srv.Scheduler().Done(id):
	case <-time.After(60 * time.Second):
		t.Fatal("campaign did not complete")
	}
	raw, err := srv.store.ReadSummary(id)
	if err != nil || raw == nil {
		t.Fatalf("stored summary: %q, %v", raw, err)
	}
	var doc struct {
		Report  string          `json:"report"`
		Summary json.RawMessage `json:"summary"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(baseline)
	if !bytes.Equal(bytes.TrimSpace(doc.Summary), wantJSON) {
		t.Errorf("merged summary diverges from baseline")
	}
	if doc.Report != baseline.Report() {
		t.Errorf("merged report diverges from baseline")
	}
}
