package tainthub

import (
	"net"
	"sync/atomic"
	"testing"

	"chaser/internal/tainthub/codec"
)

// byteCountingProxy forwards TCP between the client and the hub server,
// counting bytes in both directions, so the benchmark can report real
// wire traffic per RPC rather than payload-size estimates.
type byteCountingProxy struct {
	lis   net.Listener
	bytes atomic.Int64
}

func newByteCountingProxy(t testing.TB, backend string) *byteCountingProxy {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &byteCountingProxy{lis: lis}
	go func() {
		for {
			in, err := lis.Accept()
			if err != nil {
				return
			}
			out, err := net.Dial("tcp", backend)
			if err != nil {
				in.Close()
				continue
			}
			pipe := func(dst, src net.Conn) {
				buf := make([]byte, 64<<10)
				for {
					n, err := src.Read(buf)
					if n > 0 {
						p.bytes.Add(int64(n))
						if _, werr := dst.Write(buf[:n]); werr != nil {
							break
						}
					}
					if err != nil {
						break
					}
				}
				dst.Close()
				src.Close()
			}
			go pipe(out, in)
			go pipe(in, out)
		}
	}()
	return p
}

// sparseBenchMasks builds the mask shape real campaigns publish: a few
// tainted bytes scattered through an otherwise clean 4 KiB message.
func sparseBenchMasks() []uint8 {
	masks := make([]uint8, 4096)
	for _, i := range []int{3, 64, 65, 66, 1500, 4090} {
		masks[i] = 0x80 >> (i % 8)
	}
	return masks
}

// BenchmarkHubWire measures hub RPC throughput and wire bytes per logical
// RPC. The json arm is the status quo before this codec existed: the JSON
// line protocol, one request per frame, one in flight per connection. The
// binary arm is the default configuration: compact binary codec with
// client-side batching and pipelining.
func BenchmarkHubWire(b *testing.B) {
	arms := []struct {
		name string
		cfg  ClientConfig
	}{
		{"json", ClientConfig{Wire: codec.FormatJSON, MaxBatch: 1, MaxInflight: 1}},
		{"binary", ClientConfig{Wire: codec.FormatBinary}},
	}
	masks := sparseBenchMasks()
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			srv, err := NewServerConfig(NewLocal(), "127.0.0.1:0", ServerConfig{Logf: func(string, ...any) {}})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			proxy := newByteCountingProxy(b, srv.Addr())
			defer proxy.lis.Close()
			c, err := DialConfig(proxy.lis.Addr().String(), arm.cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()

			var widx atomic.Uint64
			b.ResetTimer()
			b.SetParallelism(8)
			b.RunParallel(func(pb *testing.PB) {
				w := int(widx.Add(1))
				client := NewClientID()
				var seq uint64
				i := 0
				for pb.Next() {
					k := Key{Src: w, Dst: w + 1, Tag: i}
					seq++
					if err := c.Publish(ReqID{Client: client, Seq: seq}, k, uint64(i), masks); err != nil {
						b.Error(err)
						return
					}
					seq++
					if _, ok, err := c.Poll(ReqID{Client: client, Seq: seq}, k, uint64(i)); err != nil || !ok {
						b.Errorf("poll: ok=%v err=%v", ok, err)
						return
					}
					i++
				}
			})
			b.StopTimer()
			rpcs := float64(2 * b.N) // each iteration is publish + poll
			b.ReportMetric(rpcs/b.Elapsed().Seconds(), "rpcs/sec")
			b.ReportMetric(float64(proxy.bytes.Load())/rpcs, "wirebytes/rpc")
		})
	}
}
