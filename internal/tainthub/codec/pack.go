package codec

import (
	"encoding/binary"
	"errors"
)

// Varint and run-length packing primitives. The wire protocol, the WAL and
// snapshots all build their records from these, so one codec owns every
// byte the hub persists or transmits.

var errShortBuffer = errors.New("short buffer")

// AppendUvarint appends v in unsigned LEB128.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendSvarint appends v zig-zag encoded, so small negative ints (rank -1
// wildcards, negative tags) stay short.
func AppendSvarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// ConsumeUvarint decodes a uvarint from the front of b, returning the
// value and the rest.
func ConsumeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, b, errShortBuffer
	}
	return v, b[n:], nil
}

// ConsumeSvarint decodes a zig-zag varint from the front of b.
func ConsumeSvarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, b, errShortBuffer
	}
	return v, b[n:], nil
}

// Run-length mask encoding. Taint masks are overwhelmingly sparse — long
// zero stretches around short tainted spans, and tainted spans are usually
// solid 0xff runs — so the encoding is run-structured:
//
//	uvarint totalLen, then runs until totalLen bytes are produced:
//	  uvarint hdr, tag = hdr&3, runLen = hdr>>2
//	    tag 0: runLen zero bytes
//	    tag 1: runLen copies of the single byte that follows
//	    tag 2: runLen literal bytes follow
//
// A 64 MiB all-clean mask is 6 bytes; a solid tainted span is 2 bytes plus
// its value. Worst-case (incompressible) data costs a few header bytes per
// short run, bounded well under the base64 expansion it replaces.
const (
	rleZero    = 0
	rleRepeat  = 1
	rleLiteral = 2

	// minRepeatRun is the shortest identical-byte run worth a repeat run;
	// shorter ones ride in the surrounding literal.
	minRepeatRun = 4
)

// AppendMasks appends the RLE encoding of masks to b.
func AppendMasks(b []byte, masks []byte) []byte {
	b = AppendUvarint(b, uint64(len(masks)))
	i := 0
	litStart := -1
	flushLit := func(end int) {
		if litStart >= 0 {
			b = AppendUvarint(b, uint64(end-litStart)<<2|rleLiteral)
			b = append(b, masks[litStart:end]...)
			litStart = -1
		}
	}
	for i < len(masks) {
		j := i + 1
		for j < len(masks) && masks[j] == masks[i] {
			j++
		}
		run := j - i
		switch {
		case masks[i] == 0:
			flushLit(i)
			b = AppendUvarint(b, uint64(run)<<2|rleZero)
		case run >= minRepeatRun:
			flushLit(i)
			b = AppendUvarint(b, uint64(run)<<2|rleRepeat)
			b = append(b, masks[i])
		default:
			if litStart < 0 {
				litStart = i
			}
		}
		i = j
	}
	flushLit(len(masks))
	return b
}

// ConsumeMasks decodes an RLE mask block from the front of b. maxLen
// bounds the decoded size (a decompression-bomb guard: a few header bytes
// may not conjure gigabytes). A zero-length block decodes as nil, matching
// the JSON codec's omitempty round trip.
func ConsumeMasks(b []byte, maxLen int) ([]byte, []byte, error) {
	total, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, b, err
	}
	if maxLen >= 0 && total > uint64(maxLen) {
		return nil, b, errors.New("mask length over limit")
	}
	if total == 0 {
		return nil, b, nil
	}
	masks := make([]byte, total)
	off := uint64(0)
	for off < total {
		var hdr uint64
		hdr, b, err = ConsumeUvarint(b)
		if err != nil {
			return nil, b, err
		}
		run := hdr >> 2
		if run == 0 || run > total-off {
			return nil, b, errors.New("mask run overflows declared length")
		}
		switch hdr & 3 {
		case rleZero:
			// masks is zero-initialized
		case rleRepeat:
			if len(b) < 1 {
				return nil, b, errShortBuffer
			}
			v := b[0]
			b = b[1:]
			for i := uint64(0); i < run; i++ {
				masks[off+i] = v
			}
		case rleLiteral:
			if uint64(len(b)) < run {
				return nil, b, errShortBuffer
			}
			copy(masks[off:], b[:run])
			b = b[run:]
		default:
			return nil, b, errors.New("unknown mask run tag")
		}
		off += run
	}
	return masks, b, nil
}
