package codec

import (
	"bufio"
	"encoding/base64"
	"encoding/json"
	"errors"
	"io"
)

// The JSON codec is the original wire protocol: one request object per
// newline-terminated line, one response object per line, masks as base64
// strings ([]byte's native encoding/json representation, so the bytes on
// the wire are identical to the legacy hand-rolled encoding — the golden
// vector tests pin this). It survives as the compatibility option proving
// the Parser/Emitter abstraction and as the format old tooling speaks.

type jsonParser struct {
	br       *bufio.Reader
	maxFrame int
}

// readFrame reads one newline-terminated frame, failing with *FrameError
// once more than limit bytes accumulate without a newline. On overflow the
// remainder of the line has NOT been consumed; discardLine resyncs.
func (p *jsonParser) readFrame() ([]byte, error) {
	var buf []byte
	for {
		chunk, err := p.br.ReadSlice('\n')
		buf = append(buf, chunk...)
		if len(buf) > p.maxFrame {
			// Resync before surfacing the error: drain the rest of the
			// line so the caller can refuse the frame and keep the
			// connection. The drain runs chunk by chunk to the actual
			// newline — no arbitrary multiple of the frame limit that a
			// longer frame would overrun (desynchronizing the stream) or
			// that could overflow int on 32-bit platforms.
			size := len(buf)
			if err == bufio.ErrBufferFull {
				n, derr := p.discardLine()
				size += n
				if derr != nil {
					return nil, derr
				}
			}
			return nil, &FrameError{Size: size, Limit: p.maxFrame}
		}
		switch err {
		case nil:
			return buf, nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			if len(buf) > 0 {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, io.EOF
		default:
			return nil, err
		}
	}
}

// discardLine consumes the remainder of the current line in bounded
// chunks, returning how many bytes it dropped. A peer that never sends the
// newline is bounded by the connection's read deadline, not by a byte cap.
func (p *jsonParser) discardLine() (int, error) {
	var n int
	for {
		chunk, err := p.br.ReadSlice('\n')
		n += len(chunk)
		switch err {
		case nil:
			return n, nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			return n, io.ErrUnexpectedEOF
		default:
			return n, err
		}
	}
}

// classify maps a json.Unmarshal failure onto the codec's error taxonomy:
// undecodable base64 in a masks field is a *PayloadError (permanent,
// connection recoverable — the frame was fully consumed); anything else is
// malformed (connection unrecoverable).
func classifyJSON(err error) error {
	var b64 base64.CorruptInputError
	if errors.As(err, &b64) {
		return &PayloadError{Reason: err.Error()}
	}
	return err
}

func (p *jsonParser) ReadRequest() (Request, error) {
	line, err := p.readFrame()
	if err != nil {
		return Request{}, err
	}
	var req Request
	if err := json.Unmarshal(line, &req); err != nil {
		return Request{}, classifyJSON(err)
	}
	return req, nil
}

func (p *jsonParser) ReadResponse() (Response, error) {
	line, err := p.readFrame()
	if err != nil {
		return Response{}, err
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return Response{}, classifyJSON(err)
	}
	return resp, nil
}

type jsonEmitter struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

func newJSONEmitter(w io.Writer) *jsonEmitter {
	bw := bufio.NewWriter(w)
	return &jsonEmitter{bw: bw, enc: json.NewEncoder(bw)}
}

func (e *jsonEmitter) WriteRequest(req Request) error    { return e.enc.Encode(req) }
func (e *jsonEmitter) WriteResponse(resp Response) error { return e.enc.Encode(resp) }
func (e *jsonEmitter) Flush() error                      { return e.bw.Flush() }
