package codec

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
)

// The binary codec frames every message as
//
//	0xC7 | uvarint payloadLen | payload
//
// The magic byte can never begin a JSON request, so a server peeking one
// byte classifies the connection's format without consuming anything.
// Payloads are varint-packed records; masks are run-length encoded (see
// pack.go). Because the length is declared up front, an oversized frame is
// rejected before buffering and resync is exact: discard payloadLen bytes.

// BinaryMagic opens every binary frame.
const BinaryMagic = 0xC7

// Request payload op codes (first payload byte).
const (
	binOpPublish = 1
	binOpPoll    = 2
	binOpStats   = 3
	binOpBatch   = 4
)

// Response flag bits (first payload byte of a single response; a batch
// response payload starts with binRespBatch instead, which no flag
// combination of a single response reaches because bit 7 is reserved).
const (
	binFlagOK    = 1 << 0
	binFlagFound = 1 << 1
	binFlagBusy  = 1 << 2
	binFlagMasks = 1 << 3
	binFlagStats = 1 << 4
	binFlagErr   = 1 << 5

	binRespBatch = 1 << 7
)

// maxBatchEntries bounds a decoded batch's declared entry count before
// allocation; entries are at least two bytes each, so the frame limit
// bounds real batches far tighter.
const maxBatchEntries = 1 << 20

type binaryParser struct {
	br       *bufio.Reader
	maxFrame int
	scratch  []byte
}

// readFrame reads one length-prefixed frame into the reusable scratch
// buffer. Oversized frames are discarded exactly (the length is declared)
// and surface as *FrameError with the stream already resynchronized.
func (p *binaryParser) readFrame() ([]byte, error) {
	magic, err := p.br.ReadByte()
	if err != nil {
		return nil, err // io.EOF at a frame boundary is a clean disconnect
	}
	if magic != BinaryMagic {
		return nil, &MalformedError{Reason: "bad frame magic"}
	}
	n, err := binary.ReadUvarint(p.br)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, &MalformedError{Reason: "frame length", err: err}
	}
	if n == 0 {
		return nil, &MalformedError{Reason: "empty frame"}
	}
	if n > uint64(p.maxFrame) {
		// Exact resync: skip the declared payload. A peer lying about the
		// length is bounded by the connection's read deadline.
		if _, err := io.CopyN(io.Discard, p.br, int64(n)); err != nil {
			return nil, err
		}
		return nil, &FrameError{Size: int(n), Limit: p.maxFrame}
	}
	if uint64(cap(p.scratch)) < n {
		p.scratch = make([]byte, n)
	}
	buf := p.scratch[:n]
	if _, err := io.ReadFull(p.br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

func (p *binaryParser) ReadRequest() (Request, error) {
	buf, err := p.readFrame()
	if err != nil {
		return Request{}, err
	}
	req, rest, err := decodeRequestPayload(buf, p.maxFrame, true)
	if err != nil {
		return Request{}, err
	}
	if len(rest) != 0 {
		return Request{}, &MalformedError{Reason: "trailing bytes after request"}
	}
	return req, nil
}

func (p *binaryParser) ReadResponse() (Response, error) {
	buf, err := p.readFrame()
	if err != nil {
		return Response{}, err
	}
	resp, rest, err := decodeResponsePayload(buf, p.maxFrame, true)
	if err != nil {
		return Response{}, err
	}
	if len(rest) != 0 {
		return Response{}, &MalformedError{Reason: "trailing bytes after response"}
	}
	return resp, nil
}

func decodeRequestPayload(b []byte, maxMasks int, allowBatch bool) (Request, []byte, error) {
	var req Request
	if len(b) < 1 {
		return req, b, &MalformedError{Reason: "empty request payload"}
	}
	op := b[0]
	b = b[1:]
	switch op {
	case binOpStats:
		req.Op = OpStats
		return req, b, nil
	case binOpBatch:
		if !allowBatch {
			return req, b, &MalformedError{Reason: "nested batch"}
		}
		req.Op = OpBatch
		n, rest, err := ConsumeUvarint(b)
		if err != nil || n == 0 || n > maxBatchEntries {
			return req, b, &MalformedError{Reason: "batch count", err: err}
		}
		b = rest
		req.Batch = make([]Request, 0, n)
		for i := uint64(0); i < n; i++ {
			var sub Request
			var err error
			sub, b, err = decodeRequestPayload(b, maxMasks, false)
			if err != nil {
				return req, b, err
			}
			req.Batch = append(req.Batch, sub)
		}
		return req, b, nil
	case binOpPublish, binOpPoll:
		if op == binOpPublish {
			req.Op = OpPublish
		} else {
			req.Op = OpPoll
		}
		var err error
		if req.Client, req.Req, b, err = consumeReqID(b); err != nil {
			return req, b, &MalformedError{Reason: "request id", err: err}
		}
		if req.Src, req.Dst, req.Tag, req.NS, b, err = consumeKey(b); err != nil {
			return req, b, &MalformedError{Reason: "request key", err: err}
		}
		if req.Seq, b, err = ConsumeUvarint(b); err != nil {
			return req, b, &MalformedError{Reason: "request seq", err: err}
		}
		if op == binOpPublish {
			if req.Masks, b, err = ConsumeMasks(b, maxMasks); err != nil {
				// The frame was fully consumed; only the mask bytes are
				// unusable. Permanent and connection-recoverable.
				return req, b, &PayloadError{Reason: err.Error()}
			}
		}
		return req, b, nil
	}
	return req, b, &MalformedError{Reason: "unknown request op"}
}

func decodeResponsePayload(b []byte, maxMasks int, allowBatch bool) (Response, []byte, error) {
	var resp Response
	if len(b) < 1 {
		return resp, b, &MalformedError{Reason: "empty response payload"}
	}
	if b[0] == binRespBatch {
		if !allowBatch {
			return resp, b, &MalformedError{Reason: "nested batch response"}
		}
		b = b[1:]
		n, rest, err := ConsumeUvarint(b)
		if err != nil || n == 0 || n > maxBatchEntries {
			return resp, b, &MalformedError{Reason: "batch count", err: err}
		}
		b = rest
		resp.OK = true
		resp.Batch = make([]Response, 0, n)
		for i := uint64(0); i < n; i++ {
			var sub Response
			var err error
			sub, b, err = decodeResponsePayload(b, maxMasks, false)
			if err != nil {
				return resp, b, err
			}
			resp.Batch = append(resp.Batch, sub)
		}
		return resp, b, nil
	}
	flags := b[0]
	b = b[1:]
	if flags&^(binFlagOK|binFlagFound|binFlagBusy|binFlagMasks|binFlagStats|binFlagErr) != 0 {
		return resp, b, &MalformedError{Reason: "unknown response flags"}
	}
	resp.OK = flags&binFlagOK != 0
	resp.Found = flags&binFlagFound != 0
	resp.Busy = flags&binFlagBusy != 0
	var err error
	if resp.Client, resp.Req, b, err = consumeReqID(b); err != nil {
		return resp, b, &MalformedError{Reason: "response id", err: err}
	}
	if resp.Busy {
		var ra uint64
		if ra, b, err = ConsumeUvarint(b); err != nil {
			return resp, b, &MalformedError{Reason: "retry-after", err: err}
		}
		resp.RetryAfterMs = int64(ra)
	}
	if flags&binFlagMasks != 0 {
		if resp.Masks, b, err = ConsumeMasks(b, maxMasks); err != nil {
			return resp, b, &PayloadError{Reason: err.Error()}
		}
	}
	if flags&binFlagStats != 0 {
		var st Stats
		var pending uint64
		fields := []*uint64{&st.Published, &st.Polls, &st.Hits, &pending, &st.Evicted, &st.DedupHits, &st.Replayed}
		for _, f := range fields {
			if *f, b, err = ConsumeUvarint(b); err != nil {
				return resp, b, &MalformedError{Reason: "stats", err: err}
			}
		}
		st.Pending = int(pending)
		resp.Stats = &st
	}
	if flags&binFlagErr != 0 {
		if resp.Err, b, err = consumeString(b); err != nil {
			return resp, b, &MalformedError{Reason: "error text", err: err}
		}
		if resp.Code, b, err = consumeString(b); err != nil {
			return resp, b, &MalformedError{Reason: "error code", err: err}
		}
	}
	return resp, b, nil
}

func consumeReqID(b []byte) (client, req uint64, rest []byte, err error) {
	if client, b, err = ConsumeUvarint(b); err != nil {
		return 0, 0, b, err
	}
	if req, b, err = ConsumeUvarint(b); err != nil {
		return 0, 0, b, err
	}
	return client, req, b, nil
}

func consumeKey(b []byte) (src, dst, tag, ns int, rest []byte, err error) {
	vals := make([]int64, 4)
	for i := range vals {
		if vals[i], b, err = ConsumeSvarint(b); err != nil {
			return 0, 0, 0, 0, b, err
		}
	}
	return int(vals[0]), int(vals[1]), int(vals[2]), int(vals[3]), b, nil
}

func consumeString(b []byte) (string, []byte, error) {
	n, b, err := ConsumeUvarint(b)
	if err != nil {
		return "", b, err
	}
	if n > uint64(len(b)) {
		return "", b, errShortBuffer
	}
	return string(b[:n]), b[n:], nil
}

type binaryEmitter struct {
	bw      *bufio.Writer
	payload []byte // reusable payload scratch
	hdr     []byte
}

func newBinaryEmitter(w io.Writer) *binaryEmitter {
	return &binaryEmitter{bw: bufio.NewWriter(w), hdr: make([]byte, 0, 11)}
}

func (e *binaryEmitter) writeFrame(payload []byte) error {
	e.hdr = append(e.hdr[:0], BinaryMagic)
	e.hdr = AppendUvarint(e.hdr, uint64(len(payload)))
	if _, err := e.bw.Write(e.hdr); err != nil {
		return err
	}
	_, err := e.bw.Write(payload)
	return err
}

func (e *binaryEmitter) WriteRequest(req Request) error {
	b, err := appendRequestPayload(e.payload[:0], req, true)
	if err != nil {
		return err
	}
	e.payload = b
	return e.writeFrame(b)
}

func (e *binaryEmitter) WriteResponse(resp Response) error {
	b, err := appendResponsePayload(e.payload[:0], resp, true)
	if err != nil {
		return err
	}
	e.payload = b
	return e.writeFrame(b)
}

func (e *binaryEmitter) Flush() error { return e.bw.Flush() }

var errNestedBatch = errors.New("tainthub: batches do not nest")

func appendRequestPayload(b []byte, req Request, allowBatch bool) ([]byte, error) {
	switch req.Op {
	case OpStats:
		return append(b, binOpStats), nil
	case OpBatch:
		if !allowBatch {
			return b, errNestedBatch
		}
		b = append(b, binOpBatch)
		b = AppendUvarint(b, uint64(len(req.Batch)))
		var err error
		for _, sub := range req.Batch {
			if b, err = appendRequestPayload(b, sub, false); err != nil {
				return b, err
			}
		}
		return b, nil
	case OpPublish, OpPoll:
		if req.Op == OpPublish {
			b = append(b, binOpPublish)
		} else {
			b = append(b, binOpPoll)
		}
		b = AppendUvarint(b, req.Client)
		b = AppendUvarint(b, req.Req)
		b = AppendSvarint(b, int64(req.Src))
		b = AppendSvarint(b, int64(req.Dst))
		b = AppendSvarint(b, int64(req.Tag))
		b = AppendSvarint(b, int64(req.NS))
		b = AppendUvarint(b, req.Seq)
		if req.Op == OpPublish {
			b = AppendMasks(b, req.Masks)
		}
		return b, nil
	}
	return b, errors.New("tainthub: unknown request op " + req.Op)
}

func appendResponsePayload(b []byte, resp Response, allowBatch bool) ([]byte, error) {
	if resp.Batch != nil {
		if !allowBatch {
			return b, errNestedBatch
		}
		b = append(b, binRespBatch)
		b = AppendUvarint(b, uint64(len(resp.Batch)))
		var err error
		for _, sub := range resp.Batch {
			if b, err = appendResponsePayload(b, sub, false); err != nil {
				return b, err
			}
		}
		return b, nil
	}
	var flags byte
	if resp.OK {
		flags |= binFlagOK
	}
	if resp.Found {
		flags |= binFlagFound
	}
	if resp.Busy {
		flags |= binFlagBusy
	}
	if len(resp.Masks) > 0 {
		flags |= binFlagMasks
	}
	if resp.Stats != nil {
		flags |= binFlagStats
	}
	if resp.Err != "" || resp.Code != "" {
		flags |= binFlagErr
	}
	b = append(b, flags)
	b = AppendUvarint(b, resp.Client)
	b = AppendUvarint(b, resp.Req)
	if resp.Busy {
		b = AppendUvarint(b, uint64(resp.RetryAfterMs))
	}
	if len(resp.Masks) > 0 {
		b = AppendMasks(b, resp.Masks)
	}
	if resp.Stats != nil {
		st := resp.Stats
		for _, v := range []uint64{st.Published, st.Polls, st.Hits, uint64(st.Pending), st.Evicted, st.DedupHits, st.Replayed} {
			b = AppendUvarint(b, v)
		}
	}
	if flags&binFlagErr != 0 {
		b = appendString(b, resp.Err)
		b = appendString(b, resp.Code)
	}
	return b, nil
}

func appendString(b []byte, s string) []byte {
	b = AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}
