package codec

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// goldenRequests pins the JSON wire bytes for every request shape. These
// strings are the frozen legacy protocol: clients and servers from before
// the codec package emitted exactly these bytes, so any drift here is a
// wire-compatibility break, not a refactor.
var goldenRequests = []struct {
	name string
	req  Request
	json string
}{
	{
		name: "publish",
		req: Request{Op: OpPublish, Client: 7, Req: 9, Src: 1, Dst: 2, Tag: 3, NS: 4, Seq: 5,
			Masks: []byte{0xaa, 0x55}},
		json: `{"op":"publish","client":7,"req":9,"src":1,"dst":2,"tag":3,"ns":4,"seq":5,"masks":"qlU="}`,
	},
	{
		name: "publish-zero-id",
		req:  Request{Op: OpPublish, Src: 0, Dst: 1, Tag: 7, Seq: 0, Masks: []byte{0xab}},
		json: `{"op":"publish","src":0,"dst":1,"tag":7,"seq":0,"masks":"qw=="}`,
	},
	{
		name: "poll",
		req:  Request{Op: OpPoll, Client: 7, Req: 1, Src: 0, Dst: 1, Tag: 2, Seq: 0},
		json: `{"op":"poll","client":7,"req":1,"src":0,"dst":1,"tag":2,"seq":0}`,
	},
	{
		name: "poll-negative-key",
		req:  Request{Op: OpPoll, Client: 1, Req: 2, Src: -1, Dst: -2, Tag: -3, NS: -4, Seq: 8},
		json: `{"op":"poll","client":1,"req":2,"src":-1,"dst":-2,"tag":-3,"ns":-4,"seq":8}`,
	},
	{
		name: "stats",
		req:  Request{Op: OpStats},
		json: `{"op":"stats","src":0,"dst":0,"tag":0,"seq":0}`,
	},
	{
		name: "batch",
		req: Request{Op: OpBatch, Batch: []Request{
			{Op: OpPublish, Client: 3, Req: 1, Src: 0, Dst: 1, Tag: 2, Seq: 0, Masks: []byte{0xff, 0xff, 0xff, 0xff, 0xff}},
			{Op: OpPoll, Client: 3, Req: 2, Src: 1, Dst: 0, Tag: 2, Seq: 4},
		}},
		json: `{"op":"batch","src":0,"dst":0,"tag":0,"seq":0,"batch":[` +
			`{"op":"publish","client":3,"req":1,"src":0,"dst":1,"tag":2,"seq":0,"masks":"//////8="},` +
			`{"op":"poll","client":3,"req":2,"src":1,"dst":0,"tag":2,"seq":4}]}`,
	},
}

// goldenResponses pins the JSON wire bytes for every response shape.
var goldenResponses = []struct {
	name string
	resp Response
	json string
}{
	{
		name: "publish-ack",
		resp: Response{OK: true},
		json: `{"ok":true}`,
	},
	{
		name: "poll-hit",
		resp: Response{OK: true, Found: true, Masks: []byte{0xab, 0x00, 0xcd}},
		json: `{"ok":true,"found":true,"masks":"qwDN"}`,
	},
	{
		name: "poll-miss",
		resp: Response{OK: true},
		json: `{"ok":true}`,
	},
	{
		name: "stats",
		resp: Response{OK: true, Stats: &Stats{Published: 1, Polls: 2, Hits: 3, Pending: 4, Evicted: 5, DedupHits: 6, Replayed: 7}},
		json: `{"ok":true,"stats":{"Published":1,"Polls":2,"Hits":3,"Pending":4,"Evicted":5,"DedupHits":6,"Replayed":7}}`,
	},
	{
		name: "busy",
		resp: Response{Busy: true, RetryAfterMs: 50},
		json: `{"ok":false,"busy":true,"retry_after_ms":50}`,
	},
	{
		name: "error",
		resp: Response{Err: "unknown op \"x\""},
		json: `{"ok":false,"err":"unknown op \"x\""}`,
	},
	{
		name: "typed-error-with-echo",
		resp: Response{Err: "undecodable payload", Code: CodePayload, Client: 9, Req: 4},
		json: `{"ok":false,"err":"undecodable payload","code":"payload","client":9,"req":4}`,
	},
	{
		name: "batch",
		resp: Response{OK: true, Batch: []Response{
			{OK: true, Client: 3, Req: 1},
			{OK: true, Found: true, Masks: []byte{0x01}, Client: 3, Req: 2},
		}},
		json: `{"ok":true,"batch":[{"ok":true,"client":3,"req":1},{"ok":true,"found":true,"masks":"AQ==","client":3,"req":2}]}`,
	},
}

// TestGoldenRequestJSON pins every request shape's JSON wire bytes.
func TestGoldenRequestJSON(t *testing.T) {
	for _, g := range goldenRequests {
		t.Run(g.name, func(t *testing.T) {
			var buf bytes.Buffer
			e := NewEmitter(FormatJSON, &buf)
			if err := e.WriteRequest(g.req); err != nil {
				t.Fatal(err)
			}
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
			if got := strings.TrimRight(buf.String(), "\n"); got != g.json {
				t.Errorf("wire bytes drifted:\n got  %s\n want %s", got, g.json)
			}
			// And the parser must read those exact bytes back to the value.
			p := NewParser(FormatJSON, bufio.NewReader(strings.NewReader(g.json+"\n")), 1<<20)
			back, err := p.ReadRequest()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(back, g.req) {
				t.Errorf("json round trip:\n got  %+v\n want %+v", back, g.req)
			}
		})
	}
}

// TestGoldenResponseJSON pins every response shape's JSON wire bytes.
func TestGoldenResponseJSON(t *testing.T) {
	for _, g := range goldenResponses {
		t.Run(g.name, func(t *testing.T) {
			var buf bytes.Buffer
			e := NewEmitter(FormatJSON, &buf)
			if err := e.WriteResponse(g.resp); err != nil {
				t.Fatal(err)
			}
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
			if got := strings.TrimRight(buf.String(), "\n"); got != g.json {
				t.Errorf("wire bytes drifted:\n got  %s\n want %s", got, g.json)
			}
			p := NewParser(FormatJSON, bufio.NewReader(strings.NewReader(g.json+"\n")), 1<<20)
			back, err := p.ReadResponse()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(back, g.resp) {
				t.Errorf("json round trip:\n got  %+v\n want %+v", back, g.resp)
			}
		})
	}
}

// TestBinaryRoundTripMatchesJSON runs the same golden vectors through the
// binary codec and asserts both codecs converge on identical values — the
// substitution property that lets the formats interoperate behind one
// interface.
func TestBinaryRoundTripMatchesJSON(t *testing.T) {
	for _, g := range goldenRequests {
		t.Run("request/"+g.name, func(t *testing.T) {
			var buf bytes.Buffer
			e := NewEmitter(FormatBinary, &buf)
			if err := e.WriteRequest(g.req); err != nil {
				t.Fatal(err)
			}
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
			p := NewParser(FormatBinary, bufio.NewReader(&buf), 1<<20)
			back, err := p.ReadRequest()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(back, g.req) {
				t.Errorf("binary round trip:\n got  %+v\n want %+v", back, g.req)
			}
		})
	}
	for _, g := range goldenResponses {
		t.Run("response/"+g.name, func(t *testing.T) {
			var buf bytes.Buffer
			e := NewEmitter(FormatBinary, &buf)
			if err := e.WriteResponse(g.resp); err != nil {
				t.Fatal(err)
			}
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
			p := NewParser(FormatBinary, bufio.NewReader(&buf), 1<<20)
			back, err := p.ReadResponse()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(back, g.resp) {
				t.Errorf("binary round trip:\n got  %+v\n want %+v", back, g.resp)
			}
		})
	}
}

// TestBinaryCompactsSparseMasks: the motivating property — a sparse 4 KiB
// mask must shrink dramatically versus its base64 JSON form.
func TestBinaryCompactsSparseMasks(t *testing.T) {
	masks := make([]byte, 4096)
	for i := 128; i < 160; i++ {
		masks[i] = 0xff
	}
	req := Request{Op: OpPublish, Client: 1, Req: 1, Src: 0, Dst: 1, Tag: 2, Seq: 3, Masks: masks}

	var jbuf, bbuf bytes.Buffer
	je := NewEmitter(FormatJSON, &jbuf)
	be := NewEmitter(FormatBinary, &bbuf)
	if err := je.WriteRequest(req); err != nil {
		t.Fatal(err)
	}
	_ = je.Flush()
	if err := be.WriteRequest(req); err != nil {
		t.Fatal(err)
	}
	_ = be.Flush()
	if bbuf.Len()*10 > jbuf.Len() {
		t.Errorf("binary frame %d bytes vs json %d: want >=10x smaller for sparse masks", bbuf.Len(), jbuf.Len())
	}
}

// TestMasksRLERoundTrip drives the RLE coder over adversarial shapes.
func TestMasksRLERoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	random := make([]byte, 3000)
	rng.Read(random)
	alternating := make([]byte, 999)
	for i := range alternating {
		alternating[i] = byte(i % 2)
	}
	cases := [][]byte{
		nil,
		{},
		{0},
		{1},
		{0xff},
		make([]byte, 1<<16),              // all zero
		bytes.Repeat([]byte{0xab}, 4096), // solid repeat
		append(make([]byte, 100), 1, 2, 3),
		random,
		alternating,
		{1, 1, 1, 1, 0, 0, 2, 2, 2, 2, 2, 3},
	}
	for i, masks := range cases {
		enc := AppendMasks(nil, masks)
		dec, rest, err := ConsumeMasks(enc, 1<<20)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(rest) != 0 {
			t.Fatalf("case %d: %d trailing bytes", i, len(rest))
		}
		if len(masks) == 0 {
			if dec != nil {
				t.Fatalf("case %d: empty masks decoded non-nil", i)
			}
			continue
		}
		if !bytes.Equal(dec, masks) {
			t.Fatalf("case %d: round trip mismatch", i)
		}
	}
}

// TestMasksBombGuard: a declared length over the limit must be refused
// before allocation — a few header bytes may not conjure gigabytes.
func TestMasksBombGuard(t *testing.T) {
	enc := AppendUvarint(nil, 1<<40)
	if _, _, err := ConsumeMasks(enc, 1<<20); err == nil {
		t.Fatal("huge declared mask length accepted")
	}
	// A run overflowing the declared total is also refused.
	bad := AppendUvarint(nil, 4)             // total 4
	bad = AppendUvarint(bad, uint64(8)<<2|0) // zero run of 8
	if _, _, err := ConsumeMasks(bad, 1<<20); err == nil {
		t.Fatal("run overflowing declared length accepted")
	}
}

// TestDetect classifies streams by first byte without consuming it.
func TestDetect(t *testing.T) {
	br := bufio.NewReader(strings.NewReader(`{"op":"stats"}` + "\n"))
	if f, err := Detect(br); err != nil || f != FormatJSON {
		t.Fatalf("Detect(json) = %v, %v", f, err)
	}
	if _, err := NewParser(FormatJSON, br, 1<<10).ReadRequest(); err != nil {
		t.Fatalf("request consumed by Detect: %v", err)
	}

	var buf bytes.Buffer
	e := NewEmitter(FormatBinary, &buf)
	_ = e.WriteRequest(Request{Op: OpStats})
	_ = e.Flush()
	br = bufio.NewReader(&buf)
	if f, err := Detect(br); err != nil || f != FormatBinary {
		t.Fatalf("Detect(binary) = %v, %v", f, err)
	}
	if _, err := NewParser(FormatBinary, br, 1<<10).ReadRequest(); err != nil {
		t.Fatalf("request consumed by Detect: %v", err)
	}
}

// TestBinaryOversizedFrameResync: an oversized binary frame surfaces as
// *FrameError with the stream already resynchronized — the next frame
// parses cleanly.
func TestBinaryOversizedFrameResync(t *testing.T) {
	var buf bytes.Buffer
	e := NewEmitter(FormatBinary, &buf)
	big := Request{Op: OpPublish, Client: 1, Req: 1, Masks: make([]byte, 5000)}
	rng := rand.New(rand.NewSource(7))
	rng.Read(big.Masks) // incompressible, so the frame really is oversized
	if err := e.WriteRequest(big); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteRequest(Request{Op: OpStats}); err != nil {
		t.Fatal(err)
	}
	_ = e.Flush()

	p := NewParser(FormatBinary, bufio.NewReader(&buf), 1<<10)
	_, err := p.ReadRequest()
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("oversized frame error = %v, want *FrameError", err)
	}
	req, err := p.ReadRequest()
	if err != nil || req.Op != OpStats {
		t.Fatalf("stream desynchronized after oversized frame: %+v, %v", req, err)
	}
	if _, err := p.ReadRequest(); err != io.EOF {
		t.Fatalf("trailing read = %v, want io.EOF", err)
	}
}

// TestJSONOversizedFrameResync: same property for the JSON codec, with a
// frame far beyond the old 4×limit drain cap — the regression the
// bounded-chunk drain fixes.
func TestJSONOversizedFrameResync(t *testing.T) {
	limit := 1 << 10
	big := strings.Repeat("A", 10*limit) // 10x the limit: past the old 4x drain cap
	input := `{"op":"publish","masks":"` + big + `"}` + "\n" + `{"op":"stats"}` + "\n"
	p := NewParser(FormatJSON, bufio.NewReader(strings.NewReader(input)), limit)
	_, err := p.ReadRequest()
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("oversized frame error = %v, want *FrameError", err)
	}
	req, err := p.ReadRequest()
	if err != nil || req.Op != OpStats {
		t.Fatalf("stream desynchronized after oversized frame: %+v, %v", req, err)
	}
}

// TestJSONBadBase64IsPayloadError: undecodable base64 in a masks field is
// the typed permanent *PayloadError, not a generic malformed failure.
func TestJSONBadBase64IsPayloadError(t *testing.T) {
	input := `{"op":"publish","client":1,"req":1,"src":0,"dst":1,"tag":0,"seq":0,"masks":"!!not base64!!"}` + "\n"
	p := NewParser(FormatJSON, bufio.NewReader(strings.NewReader(input)), 1<<20)
	_, err := p.ReadRequest()
	var pe *PayloadError
	if !errors.As(err, &pe) {
		t.Fatalf("bad base64 error = %v, want *PayloadError", err)
	}
}

// FuzzBinaryDecode drives arbitrary bytes through the binary parser (both
// directions) and the RLE decoder: garbage must surface as errors, never
// panics or unbounded allocations.
func FuzzBinaryDecode(f *testing.F) {
	// Seed with well-formed frames of every shape.
	for _, g := range goldenRequests {
		var buf bytes.Buffer
		e := NewEmitter(FormatBinary, &buf)
		_ = e.WriteRequest(g.req)
		_ = e.Flush()
		f.Add(buf.Bytes())
	}
	for _, g := range goldenResponses {
		var buf bytes.Buffer
		e := NewEmitter(FormatBinary, &buf)
		_ = e.WriteResponse(g.resp)
		_ = e.Flush()
		f.Add(buf.Bytes())
	}
	f.Add([]byte{BinaryMagic})
	f.Add([]byte{BinaryMagic, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := NewParser(FormatBinary, bufio.NewReader(bytes.NewReader(data)), 1<<16)
		for i := 0; i < 64; i++ {
			if _, err := p.ReadRequest(); err != nil {
				var fe *FrameError
				var pe *PayloadError
				if errors.As(err, &fe) || errors.As(err, &pe) {
					continue // recoverable; the stream is resynced
				}
				break
			}
		}
		p = NewParser(FormatBinary, bufio.NewReader(bytes.NewReader(data)), 1<<16)
		for i := 0; i < 64; i++ {
			if _, err := p.ReadResponse(); err != nil {
				var fe *FrameError
				var pe *PayloadError
				if errors.As(err, &fe) || errors.As(err, &pe) {
					continue
				}
				break
			}
		}
		if masks, _, err := ConsumeMasks(data, 1<<16); err == nil && len(masks) > 1<<16 {
			t.Fatalf("RLE decoder exceeded its size bound: %d", len(masks))
		}
	})
}
