// Package codec defines the serialization layer shared by every place the
// TaintHub persists or transmits records: the TCP wire protocol, the
// write-ahead log, and snapshots. It exposes a small Parser/Emitter
// interface pair (the objconv idiom: the protocol logic programs against
// the pair, the format is an implementation detail) with two
// implementations:
//
//   - FormatJSON: the original newline-delimited JSON protocol with
//     base64-encoded masks, kept byte-compatible as the compatibility
//     option that proves the abstraction;
//   - FormatBinary: a compact length-prefixed binary format with
//     varint-packed record schemas and run-length-encoded taint masks,
//     the default for the heavy-traffic path.
//
// Parsers and Emitters are not safe for concurrent use; the hub's client
// and server each own one per connection direction.
package codec

import (
	"bufio"
	"fmt"
	"io"
)

// Format selects a wire codec.
type Format int

const (
	// FormatAuto means "no preference": servers autodetect per connection
	// from the first byte, clients use FormatBinary.
	FormatAuto Format = iota
	// FormatJSON is the legacy newline-delimited JSON protocol.
	FormatJSON
	// FormatBinary is the compact length-prefixed binary protocol.
	FormatBinary
)

// String returns the flag spelling of the format.
func (f Format) String() string {
	switch f {
	case FormatAuto:
		return "auto"
	case FormatJSON:
		return "json"
	case FormatBinary:
		return "binary"
	}
	return fmt.Sprintf("format(%d)", int(f))
}

// ParseFormat parses a -wire flag value.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "auto", "":
		return FormatAuto, nil
	case "json":
		return FormatJSON, nil
	case "binary":
		return FormatBinary, nil
	}
	return FormatAuto, fmt.Errorf("unknown wire format %q (want auto, json or binary)", s)
}

// Request ops. The names are part of the JSON wire format.
const (
	OpPublish = "publish"
	OpPoll    = "poll"
	OpStats   = "stats"
	// OpBatch carries many single-op requests in one frame; the response is
	// a batch of the same length in the same order. Batches do not nest.
	OpBatch = "batch"
)

// Request is one hub RPC as it crosses the wire. Masks carry raw mask
// bytes; the JSON codec base64-encodes them (matching the legacy wire
// bytes exactly), the binary codec run-length-encodes them.
type Request struct {
	Op     string    `json:"op"`
	Client uint64    `json:"client,omitempty"`
	Req    uint64    `json:"req,omitempty"`
	Src    int       `json:"src"`
	Dst    int       `json:"dst"`
	Tag    int       `json:"tag"`
	NS     int       `json:"ns,omitempty"`
	Seq    uint64    `json:"seq"`
	Masks  []byte    `json:"masks,omitempty"`
	Batch  []Request `json:"batch,omitempty"`
}

// Response is one hub reply. Client/Req echo the request's ReqID so a
// pipelined client can verify correlation; Code classifies errors so the
// retry layer can tell permanent failures from transient ones.
type Response struct {
	OK           bool       `json:"ok"`
	Found        bool       `json:"found,omitempty"`
	Masks        []byte     `json:"masks,omitempty"`
	Stats        *Stats     `json:"stats,omitempty"`
	Busy         bool       `json:"busy,omitempty"` // server over limits; retry after RetryAfterMs
	RetryAfterMs int64      `json:"retry_after_ms,omitempty"`
	Err          string     `json:"err,omitempty"`
	Code         string     `json:"code,omitempty"`
	Client       uint64     `json:"client,omitempty"`
	Req          uint64     `json:"req,omitempty"`
	Batch        []Response `json:"batch,omitempty"`
}

// Error codes carried in Response.Code.
const (
	// CodePayload marks a permanent error: the request's payload bytes can
	// never decode (or can never be accepted), so re-sending them is futile.
	CodePayload = "payload"
	// CodeFrame marks an oversized frame rejected before buffering.
	CodeFrame = "frame"
)

// Stats counts hub activity. It is aliased as tainthub.Stats; the field
// names are part of the JSON wire format.
type Stats struct {
	Published uint64 // tainted message statuses stored
	Polls     uint64 // total poll requests
	Hits      uint64 // polls that found a tainted status
	Pending   int    // statuses currently stored
	Evicted   uint64 // entries and reply caches dropped by TTL or pressure
	DedupHits uint64 // RPC replays served from the reply cache
	Replayed  uint64 // WAL records replayed at recovery (durable hubs)
}

// FrameError reports a frame exceeding the parser's limit — the wire-level
// DoS guard that rejects an oversized request before its payload is
// buffered. It is recoverable: the parser has already discarded the rest
// of the frame, so the stream is resynchronized on the next frame.
type FrameError struct {
	Size  int // bytes seen (or declared) before giving up
	Limit int
}

func (e *FrameError) Error() string {
	return fmt.Sprintf("tainthub: request frame over %d bytes (saw %d)", e.Limit, e.Size)
}

// PayloadError reports a structurally intact frame whose payload bytes can
// never decode (malformed base64, a corrupt RLE stream). It is permanent —
// retrying the same bytes cannot succeed — and recoverable: the frame was
// fully consumed, so the connection stays usable.
type PayloadError struct {
	Reason string
}

func (e *PayloadError) Error() string {
	return "tainthub: undecodable payload: " + e.Reason
}

// MalformedError reports a frame the parser cannot make sense of (garbage
// bytes, protocol drift). The stream position is unreliable afterwards;
// the connection should be dropped.
type MalformedError struct {
	Reason string
	err    error
}

func (e *MalformedError) Error() string {
	if e.err != nil {
		return "tainthub: malformed frame: " + e.Reason + ": " + e.err.Error()
	}
	return "tainthub: malformed frame: " + e.Reason
}

func (e *MalformedError) Unwrap() error { return e.err }

// Parser decodes protocol messages from a stream. Implementations bound
// every frame at the limit given to NewParser and guarantee that arbitrary
// input surfaces as an error, never a panic.
type Parser interface {
	// ReadRequest decodes the next request frame (server side).
	ReadRequest() (Request, error)
	// ReadResponse decodes the next response frame (client side).
	ReadResponse() (Response, error)
}

// Emitter encodes protocol messages onto a stream. Writes are buffered;
// Flush sends them. Batching writes many messages per Flush so one
// syscall (and one TCP segment train) carries many logical RPCs.
type Emitter interface {
	WriteRequest(Request) error
	WriteResponse(Response) error
	Flush() error
}

// NewParser returns a parser for an explicit format (FormatJSON or
// FormatBinary; FormatAuto is not valid here — use Detect first).
// maxFrame bounds one frame; larger frames fail with *FrameError.
func NewParser(f Format, br *bufio.Reader, maxFrame int) Parser {
	switch f {
	case FormatBinary:
		return &binaryParser{br: br, maxFrame: maxFrame}
	default:
		return &jsonParser{br: br, maxFrame: maxFrame}
	}
}

// NewEmitter returns an emitter writing format f to w through an internal
// buffer; call Flush to push frames out.
func NewEmitter(f Format, w io.Writer) Emitter {
	switch f {
	case FormatBinary:
		return newBinaryEmitter(w)
	default:
		return newJSONEmitter(w)
	}
}

// Detect peeks one byte to classify the connection's format without
// consuming it: binary frames always open with BinaryMagic, which can
// never begin a JSON request.
func Detect(br *bufio.Reader) (Format, error) {
	b, err := br.Peek(1)
	if err != nil {
		return FormatAuto, err
	}
	if b[0] == BinaryMagic {
		return FormatBinary, nil
	}
	return FormatJSON, nil
}
