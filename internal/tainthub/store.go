package tainthub

import "chaser/internal/obs"

// store is the hub state machine shared by Local (in-memory) and Durable
// (write-ahead logged): pending taint entries, per-namespace usage
// accounting, and the bounded per-client reply cache that makes retried
// destructive RPCs idempotent. Methods require external locking; the
// check/apply split lets Durable interpose its WAL append between deciding
// an operation is valid and mutating state.
type store struct {
	lim     Limits
	entries map[entryKey]entry
	ns      map[int]*nsUsage
	clients map[uint64]*clientCache
	stats   Stats
	// lastSweep throttles opportunistic TTL sweeps to one per TTL/4.
	lastSweep int64
	o         *hubObs
}

type entry struct {
	masks []uint8
	stamp int64 // unix nanos of the publish, for TTL eviction
}

type nsUsage struct {
	count int
	bytes int64
}

// cachedReply is a remembered RPC result: the zero value is a publish ack,
// found=true carries a consumed poll's masks.
type cachedReply struct {
	masks []uint8
	found bool
}

type clientCache struct {
	lastUse int64
	replies map[uint64]cachedReply
	order   []uint64 // req IDs in arrival order, for bounded FIFO eviction
}

// hubObs bundles the state machine's instruments; nil disables them.
type hubObs struct {
	evicted  *obs.Counter
	dedup    *obs.Counter
	replayed *obs.Counter
}

func newHubObs(reg *obs.Registry) *hubObs {
	if reg == nil {
		return nil
	}
	return &hubObs{
		evicted:  reg.Counter("tainthub_evicted_total"),
		dedup:    reg.Counter("tainthub_dedup_hits_total"),
		replayed: reg.Counter("tainthub_replayed_total"),
	}
}

func newStore(lim Limits, o *hubObs) store {
	return store{
		lim:     lim.withDefaults(),
		entries: make(map[entryKey]entry),
		ns:      make(map[int]*nsUsage),
		clients: make(map[uint64]*clientCache),
		o:       o,
	}
}

func (s *store) reset() {
	s.entries = make(map[entryKey]entry)
	s.ns = make(map[int]*nsUsage)
	s.clients = make(map[uint64]*clientCache)
	s.stats = Stats{}
}

// dedup reports whether id's operation already executed and returns the
// remembered reply. A zero client disables replay protection.
func (s *store) dedup(id ReqID, now int64) (cachedReply, bool) {
	if id.Client == 0 {
		return cachedReply{}, false
	}
	c := s.clients[id.Client]
	if c == nil {
		return cachedReply{}, false
	}
	c.lastUse = now
	rep, ok := c.replies[id.Seq]
	if ok {
		s.stats.DedupHits++
		if s.o != nil {
			s.o.dedup.Inc()
		}
	}
	return rep, ok
}

// remember caches id's reply for future replays, bounded per client and
// across clients.
func (s *store) remember(id ReqID, rep cachedReply, now int64) {
	if id.Client == 0 {
		return
	}
	c := s.clients[id.Client]
	if c == nil {
		c = &clientCache{replies: make(map[uint64]cachedReply)}
		s.clients[id.Client] = c
		if len(s.clients) > s.lim.MaxClients {
			s.evictOldestClient()
		}
	}
	c.lastUse = now
	if _, ok := c.replies[id.Seq]; !ok {
		c.order = append(c.order, id.Seq)
	}
	c.replies[id.Seq] = rep
	for len(c.order) > s.lim.ReplyCache {
		delete(c.replies, c.order[0])
		c.order = c.order[1:]
	}
}

// evictOldestClient drops the least recently active reply cache.
func (s *store) evictOldestClient() {
	var victim uint64
	var oldest int64
	first := true
	for id, c := range s.clients {
		if first || c.lastUse < oldest {
			victim, oldest, first = id, c.lastUse, false
		}
	}
	if !first {
		delete(s.clients, victim)
		s.stats.Evicted++
		if s.o != nil {
			s.o.evicted.Inc()
		}
	}
}

// checkPublish validates a publish against the memory limits without
// mutating anything.
func (s *store) checkPublish(k Key, masks []uint8) error {
	if s.lim.MaxPayload > 0 && len(masks) > s.lim.MaxPayload {
		return &PayloadError{Size: len(masks), Limit: s.lim.MaxPayload}
	}
	if s.lim.MaxPending <= 0 && s.lim.MaxPendingBytes <= 0 {
		return nil
	}
	u := s.ns[k.NS]
	if u == nil {
		return nil
	}
	if s.lim.MaxPending > 0 && u.count >= s.lim.MaxPending {
		return &BusyError{NS: k.NS, RetryAfter: s.lim.RetryAfter}
	}
	if s.lim.MaxPendingBytes > 0 && u.bytes+int64(len(masks)) > s.lim.MaxPendingBytes {
		return &BusyError{NS: k.NS, RetryAfter: s.lim.RetryAfter}
	}
	return nil
}

// applyPublish unconditionally stores an entry (callers ran checkPublish,
// or are replaying a WAL whose records passed it when first written).
func (s *store) applyPublish(k Key, seq uint64, masks []uint8, stamp int64) {
	cp := make([]uint8, len(masks))
	copy(cp, masks)
	ek := entryKey{k, seq}
	u := s.ns[k.NS]
	if u == nil {
		u = &nsUsage{}
		s.ns[k.NS] = u
	}
	if old, ok := s.entries[ek]; ok {
		u.count--
		u.bytes -= int64(len(old.masks))
	}
	s.entries[ek] = entry{masks: cp, stamp: stamp}
	u.count++
	u.bytes += int64(len(cp))
	s.stats.Published++
}

// applyConsume removes and returns an entry; it counts the poll either way
// (misses are not WAL-logged, so replayed polls are always hits).
func (s *store) applyConsume(k Key, seq uint64) ([]uint8, bool) {
	s.stats.Polls++
	ek := entryKey{k, seq}
	e, ok := s.entries[ek]
	if !ok {
		return nil, false
	}
	s.removeEntry(ek, e)
	s.stats.Hits++
	return e.masks, true
}

func (s *store) removeEntry(ek entryKey, e entry) {
	delete(s.entries, ek)
	if u := s.ns[ek.k.NS]; u != nil {
		u.count--
		u.bytes -= int64(len(e.masks))
		if u.count <= 0 && u.bytes <= 0 {
			delete(s.ns, ek.k.NS)
		}
	}
}

// maybeSweep runs a TTL sweep at most once per TTL/4 of traffic.
func (s *store) maybeSweep(now int64) {
	if s.lim.TTL <= 0 {
		return
	}
	if now-s.lastSweep < int64(s.lim.TTL)/4 {
		return
	}
	s.sweep(now)
}

// sweep evicts entries and idle reply caches older than the TTL.
func (s *store) sweep(now int64) int {
	s.lastSweep = now
	if s.lim.TTL <= 0 {
		return 0
	}
	cutoff := now - int64(s.lim.TTL)
	evicted := 0
	for ek, e := range s.entries {
		if e.stamp < cutoff {
			s.removeEntry(ek, e)
			evicted++
		}
	}
	for id, c := range s.clients {
		if c.lastUse < cutoff {
			delete(s.clients, id)
			evicted++
		}
	}
	if evicted > 0 {
		s.stats.Evicted += uint64(evicted)
		if s.o != nil {
			s.o.evicted.Add(uint64(evicted))
		}
	}
	return evicted
}

func (s *store) snapshotStats() Stats {
	st := s.stats
	st.Pending = len(s.entries)
	return st
}

// export serializes the full state for a snapshot covering WAL generation
// gen.
func (s *store) export(gen uint64) *snapshotRec {
	snap := &snapshotRec{Gen: gen, Stats: s.stats}
	snap.Entries = make([]snapEntryRec, 0, len(s.entries))
	for ek, e := range s.entries {
		snap.Entries = append(snap.Entries, snapEntryRec{
			K: ek.k, Seq: ek.seq, Masks: e.masks, Stamp: e.stamp,
		})
	}
	snap.Clients = make([]snapClientRec, 0, len(s.clients))
	for id, c := range s.clients {
		cr := snapClientRec{ID: id, LastUse: c.lastUse}
		for _, req := range c.order {
			rep := c.replies[req]
			cr.Reqs = append(cr.Reqs, snapReplyRec{Req: req, Masks: rep.masks, Found: rep.found})
		}
		snap.Clients = append(snap.Clients, cr)
	}
	return snap
}

// restore replaces the state with a decoded snapshot.
func (s *store) restore(snap *snapshotRec) {
	s.reset()
	s.stats = snap.Stats
	for _, er := range snap.Entries {
		s.applyPublish(er.K, er.Seq, er.Masks, er.Stamp)
	}
	// applyPublish counted the restored entries again; the snapshot's own
	// counters already include them.
	s.stats.Published = snap.Stats.Published
	for _, cr := range snap.Clients {
		c := &clientCache{lastUse: cr.LastUse, replies: make(map[uint64]cachedReply, len(cr.Reqs))}
		for _, rr := range cr.Reqs {
			c.replies[rr.Req] = cachedReply{masks: rr.Masks, found: rr.Found}
			c.order = append(c.order, rr.Req)
		}
		s.clients[cr.ID] = c
	}
}
