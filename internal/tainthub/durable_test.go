package tainthub

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"chaser/internal/obs"
)

func durablePath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "hub.wal")
}

// TestDurableRecoversFromWAL: state acknowledged before a hard crash (no
// final snapshot) must be fully reconstructed from the log alone.
func TestDurableRecoversFromWAL(t *testing.T) {
	path := durablePath(t)
	h, err := OpenDurable(path, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	kA := Key{Src: 0, Dst: 1, Tag: 2}
	kB := Key{Src: 1, Dst: 0, Tag: 2}
	if err := h.Publish(ReqID{Client: 1, Seq: 1}, kA, 0, []uint8{0xaa, 0x55}); err != nil {
		t.Fatal(err)
	}
	if err := h.Publish(ReqID{Client: 1, Seq: 2}, kB, 3, []uint8{0x01}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := h.Poll(ReqID{Client: 2, Seq: 1}, kB, 3); !ok {
		t.Fatal("poll before crash missed")
	}
	if err := h.Abandon(); err != nil { // kill -9: no final snapshot
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	h2, err := OpenDurable(path, DurableConfig{Obs: reg})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer h2.Close()
	if h2.RecoveredRecords() != 3 {
		t.Errorf("recovered %d records, want 3", h2.RecoveredRecords())
	}
	if got := reg.Counter("tainthub_replayed_total").Value(); got != 3 {
		t.Errorf("tainthub_replayed_total = %d, want 3", got)
	}
	st := h2.Stats()
	if st.Replayed != 3 || st.Pending != 1 {
		t.Errorf("stats after recovery = %+v", st)
	}
	// kA is still pending; kB was consumed before the crash and must stay
	// consumed (no resurrected taint).
	if masks, ok, _ := h2.Poll(ReqID{Client: 3, Seq: 1}, kA, 0); !ok || masks[0] != 0xaa || masks[1] != 0x55 {
		t.Errorf("kA after recovery: masks=%v ok=%v", masks, ok)
	}
	if _, ok, _ := h2.Poll(ReqID{Client: 3, Seq: 2}, kB, 3); ok {
		t.Error("consumed entry resurrected by replay")
	}
}

// TestDurableSnapshotTruncatesWAL: a snapshot must bound the log and
// recovery must compose snapshot + subsequent records.
func TestDurableSnapshotTruncatesWAL(t *testing.T) {
	path := durablePath(t)
	reg := obs.NewRegistry()
	h, err := OpenDurable(path, DurableConfig{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := h.Publish(ReqID{Client: 1, Seq: uint64(i + 1)}, Key{Src: 0, Dst: 1, Tag: i}, 0, []uint8{uint8(i)}); err != nil {
			t.Fatal(err)
		}
	}
	before := h.WALSize()
	if err := h.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if after := h.WALSize(); after >= before {
		t.Errorf("snapshot did not shrink WAL: %d -> %d", before, after)
	}
	if got := reg.Counter("tainthub_wal_snapshots_total").Value(); got != 1 {
		t.Errorf("tainthub_wal_snapshots_total = %d", got)
	}
	// One more mutation after the snapshot, then crash.
	if err := h.Publish(ReqID{Client: 1, Seq: 11}, Key{Src: 5, Dst: 6, Tag: 7}, 0, []uint8{0xff}); err != nil {
		t.Fatal(err)
	}
	if err := h.Abandon(); err != nil {
		t.Fatal(err)
	}

	h2, err := OpenDurable(path, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if h2.RecoveredRecords() != 1 {
		t.Errorf("replayed %d records, want 1 (rest from snapshot)", h2.RecoveredRecords())
	}
	if st := h2.Stats(); st.Pending != 11 || st.Published != 11 {
		t.Errorf("stats after snapshot+WAL recovery = %+v", st)
	}
	for i := 0; i < 10; i++ {
		if masks, ok, _ := h2.Poll(ReqID{Client: 2, Seq: uint64(i + 1)}, Key{Src: 0, Dst: 1, Tag: i}, 0); !ok || masks[0] != uint8(i) {
			t.Fatalf("entry %d lost across snapshot recovery", i)
		}
	}
	if masks, ok, _ := h2.Poll(ReqID{Client: 2, Seq: 11}, Key{Src: 5, Dst: 6, Tag: 7}, 0); !ok || masks[0] != 0xff {
		t.Error("post-snapshot entry lost")
	}
}

// TestDurableDedupSurvivesRestart: the reply cache is durable state — a
// client retrying a consumed poll against the *reborn* process must still
// get the original masks, not ok=false.
func TestDurableDedupSurvivesRestart(t *testing.T) {
	path := durablePath(t)
	h, err := OpenDurable(path, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	k := Key{Src: 0, Dst: 1, Tag: 2}
	id := ReqID{Client: 77, Seq: 5}
	if err := h.Publish(ReqID{Client: 77, Seq: 4}, k, 0, []uint8{0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	if masks, ok, _ := h.Poll(id, k, 0); !ok || masks[0] != 0xbe {
		t.Fatal("original poll failed")
	}
	if err := h.Abandon(); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	h2, err := OpenDurable(path, DurableConfig{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	// The retried poll carries the same ReqID; the entry itself is gone.
	masks, ok, err := h2.Poll(id, k, 0)
	if err != nil || !ok || masks[0] != 0xbe || masks[1] != 0xef {
		t.Fatalf("replayed poll across restart: masks=%v ok=%v err=%v", masks, ok, err)
	}
	if got := reg.Counter("tainthub_dedup_hits_total").Value(); got != 1 {
		t.Errorf("tainthub_dedup_hits_total = %d", got)
	}
	// A fresh poll (new ReqID) must still see the entry as consumed.
	if _, ok, _ := h2.Poll(ReqID{Client: 78, Seq: 1}, k, 0); ok {
		t.Error("dedup replay duplicated taint for a different request")
	}
}

// TestDurableTornTail: a torn final record (partial write at crash) is
// silently truncated; everything before it survives.
func TestDurableTornTail(t *testing.T) {
	path := durablePath(t)
	h, err := OpenDurable(path, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := h.Publish(ReqID{Client: 1, Seq: uint64(i + 1)}, Key{Src: 0, Dst: 1, Tag: i}, 0, []uint8{uint8(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Abandon(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record in half.
	if err := os.WriteFile(path, raw[:len(raw)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	h2, err := OpenDurable(path, DurableConfig{})
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	defer h2.Close()
	if h2.RecoveredRecords() != 4 {
		t.Errorf("recovered %d records, want 4 (last torn)", h2.RecoveredRecords())
	}
}

// TestDurableBitFlip: CRC framing catches a corrupted record; replay stops
// there instead of applying garbage.
func TestDurableBitFlip(t *testing.T) {
	path := durablePath(t)
	h, err := OpenDurable(path, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := h.Publish(ReqID{Client: 1, Seq: uint64(i + 1)}, Key{Src: 0, Dst: 1, Tag: i}, 0, []uint8{uint8(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Abandon(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-100] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	h2, err := OpenDurable(path, DurableConfig{})
	if err != nil {
		t.Fatalf("bit flip not tolerated: %v", err)
	}
	defer h2.Close()
	if n := h2.RecoveredRecords(); n >= 5 {
		t.Errorf("recovered %d records despite a flipped bit", n)
	}
}

// TestDurableCorruptSnapshotTyped: structural snapshot damage must surface
// as *CorruptError, not as a silent empty hub or an untyped failure.
func TestDurableCorruptSnapshotTyped(t *testing.T) {
	path := durablePath(t)
	h, err := OpenDurable(path, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Publish(ReqID{Client: 1, Seq: 1}, Key{Src: 0, Dst: 1}, 0, []uint8{1}); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil { // writes a final snapshot
		t.Fatal(err)
	}
	snap, err := os.ReadFile(path + ".snap")
	if err != nil {
		t.Fatal(err)
	}
	snap[len(snap)/2] ^= 0xff
	if err := os.WriteFile(path+".snap", snap, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenDurable(path, DurableConfig{})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("corrupt snapshot error = %v, want *CorruptError", err)
	}
}

// TestDurableStaleWALIgnored: a crash between snapshot rename and WAL
// truncation leaves a log whose generation predates the snapshot; replay
// must skip it or it would double-apply every record.
func TestDurableStaleWALIgnored(t *testing.T) {
	path := durablePath(t)
	h, err := OpenDurable(path, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Publish(ReqID{Client: 1, Seq: 1}, Key{Src: 0, Dst: 1}, 0, []uint8{7}); err != nil {
		t.Fatal(err)
	}
	// Save the generation-1 WAL, snapshot (which starts generation 2), then
	// put the old WAL back — exactly the state a crash mid-snapshot leaves.
	preSnap, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := h.Abandon(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, preSnap, 0o644); err != nil {
		t.Fatal(err)
	}
	h2, err := OpenDurable(path, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if h2.RecoveredRecords() != 0 {
		t.Errorf("stale WAL replayed %d records over its own snapshot", h2.RecoveredRecords())
	}
	if st := h2.Stats(); st.Pending != 1 || st.Published != 1 {
		t.Errorf("stats after stale-WAL recovery = %+v (double-applied?)", st)
	}
}

// TestDurableMissingSnapshotRefused: a WAL generations ahead of the
// snapshot means the pairing snapshot was lost; recovery must refuse
// rather than replay a suffix of history onto the wrong base.
func TestDurableMissingSnapshotRefused(t *testing.T) {
	path := durablePath(t)
	h, err := OpenDurable(path, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Publish(ReqID{Client: 1, Seq: 1}, Key{Src: 0, Dst: 1}, 0, []uint8{7}); err != nil {
		t.Fatal(err)
	}
	if err := h.Snapshot(); err != nil { // WAL is now generation 2
		t.Fatal(err)
	}
	if err := h.Abandon(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path + ".snap"); err != nil {
		t.Fatal(err)
	}
	_, err = OpenDurable(path, DurableConfig{})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("missing snapshot error = %v, want *CorruptError", err)
	}
}

// TestDurableClosedOps: operations after Close fail loudly instead of
// silently writing to a closed log.
func TestDurableClosedOps(t *testing.T) {
	path := durablePath(t)
	h, err := OpenDurable(path, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.Publish(ReqID{}, Key{}, 0, []uint8{1}); err == nil {
		t.Error("publish on closed hub succeeded")
	}
	if _, _, err := h.Poll(ReqID{}, Key{}, 0); err == nil {
		t.Error("poll on closed hub succeeded")
	}
	if err := h.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

// TestDurableConcurrentHammer races Publish/Poll/Stats/Snapshot across
// goroutines (run under -race in CI). Afterwards a recovery must account
// for every acknowledged publish: consumed or still pending, never lost.
func TestDurableConcurrentHammer(t *testing.T) {
	path := durablePath(t)
	h, err := OpenDurable(path, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := uint64(w + 1)
			for i := 0; i < perWorker; i++ {
				k := Key{Src: w, Dst: (w + 1) % workers, Tag: i}
				if err := h.Publish(ReqID{Client: client, Seq: uint64(2*i + 1)}, k, 0, []uint8{uint8(i)}); err != nil {
					t.Errorf("publish: %v", err)
					return
				}
				if i%2 == 0 {
					if _, ok, err := h.Poll(ReqID{Client: client, Seq: uint64(2*i + 2)}, k, 0); err != nil || !ok {
						t.Errorf("poll back own publish: ok=%v err=%v", ok, err)
						return
					}
				}
				_ = h.Stats()
			}
		}(w)
	}
	done := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-done:
				return
			default:
				if err := h.Snapshot(); err != nil {
					t.Errorf("snapshot: %v", err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()
	wg.Wait()
	close(done)
	<-snapDone
	st := h.Stats()
	if err := h.Abandon(); err != nil {
		t.Fatal(err)
	}

	h2, err := OpenDurable(path, DurableConfig{})
	if err != nil {
		t.Fatalf("recovery after hammer: %v", err)
	}
	defer h2.Close()
	st2 := h2.Stats()
	wantPending := workers * perWorker / 2 // odd i were never polled
	if st.Pending != wantPending || st2.Pending != wantPending {
		t.Errorf("pending = %d live / %d recovered, want %d", st.Pending, st2.Pending, wantPending)
	}
	if st2.Published != uint64(workers*perWorker) {
		t.Errorf("recovered published = %d, want %d", st2.Published, workers*perWorker)
	}
}
