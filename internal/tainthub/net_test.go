package tainthub

import (
	"bufio"
	"encoding/json"

	"net"
	"sync"
	"testing"
	"time"

	"chaser/internal/obs"
)

// fastRetry is a client config tuned so failure paths resolve in
// milliseconds instead of the production seconds.
func fastRetry(reg *obs.Registry) ClientConfig {
	return ClientConfig{
		DialTimeout: 2 * time.Second,
		RPCTimeout:  100 * time.Millisecond,
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
		Obs:         reg,
	}
}

// TestClientRPCTimeout verifies the satellite fix: a round trip against a
// server that accepts but never responds must fail within the RPC deadline
// instead of blocking forever.
func TestClientRPCTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // accept and go silent
		}
	}()

	reg := obs.NewRegistry()
	c, err := DialConfig(ln.Addr().String(), fastRetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	done := make(chan error, 1)
	go func() { done <- c.Publish(ReqID{}, Key{Src: 0, Dst: 1}, 0, []uint8{1}) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("publish against a mute server succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked past every RPC deadline: roundTrip ignores deadlines")
	}
	if got := reg.Counter("hub_rpc_retries_total").Value(); got != 2 {
		t.Errorf("hub_rpc_retries_total = %d, want 2 (3 attempts)", got)
	}
	if got := reg.Counter("hub_rpc_failures_total").Value(); got != 1 {
		t.Errorf("hub_rpc_failures_total = %d, want 1", got)
	}
}

// TestClientReconnect kills the server mid-session, restarts it on the same
// address with the same backing hub, and verifies the client transparently
// reconnects and completes the RPC.
func TestClientReconnect(t *testing.T) {
	hub := NewLocal()
	srv, err := NewServer(hub, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	reg := obs.NewRegistry()
	cfg := fastRetry(reg)
	cfg.MaxAttempts = 10
	c, err := DialConfig(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Publish(ReqID{}, Key{Src: 0, Dst: 1, Tag: 7}, 0, []uint8{0xaa}); err != nil {
		t.Fatal(err)
	}

	// Outage: the server dies and comes back on the same address, keeping
	// its state (as a restarted head-node hub would after reloading).
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := NewServer(hub, addr)
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer srv2.Close()

	masks, ok, err := c.Poll(ReqID{}, Key{Src: 0, Dst: 1, Tag: 7}, 0)
	if err != nil || !ok || masks[0] != 0xaa {
		t.Fatalf("poll after restart = %v, %v, %v", masks, ok, err)
	}
	if got := reg.Counter("hub_reconnects_total").Value(); got < 1 {
		t.Errorf("hub_reconnects_total = %d, want >= 1", got)
	}
}

// TestClientCloseIdempotent double-closes and then uses the client.
func TestClientCloseIdempotent(t *testing.T) {
	srv, err := NewServer(NewLocal(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(ReqID{}, Key{}, 0, nil); err == nil {
		t.Error("publish on a closed client succeeded")
	}
}

// TestServerCloseIdempotent closes a busy server from several goroutines at
// once; every Close must return and no serve goroutine may leak (the -race
// build of this test is the satellite's acceptance check).
func TestServerCloseIdempotent(t *testing.T) {
	srv, err := NewServer(NewLocal(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Busy clients hammering the server while it shuts down.
	var cwg sync.WaitGroup
	for i := 0; i < 4; i++ {
		cwg.Add(1)
		go func(i int) {
			defer cwg.Done()
			c, err := DialConfig(srv.Addr(), ClientConfig{MaxAttempts: 1, RPCTimeout: time.Second})
			if err != nil {
				return
			}
			defer c.Close()
			for j := 0; j < 100; j++ {
				if err := c.Publish(ReqID{}, Key{Src: i, Dst: j}, 0, []uint8{1}); err != nil {
					return // server went away: expected
				}
			}
		}(i)
	}

	time.Sleep(10 * time.Millisecond) // let some traffic flow
	var swg sync.WaitGroup
	for i := 0; i < 3; i++ {
		swg.Add(1)
		go func() {
			defer swg.Done()
			if err := srv.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	swg.Wait()
	cwg.Wait()
}

// TestServerDrainDeliversResponse verifies graceful drain: a request the
// server processed before Close gets its response even when Close lands
// immediately after — a retrying client must never see a consumed poll
// vanish.
func TestServerDrainDeliversResponse(t *testing.T) {
	for i := 0; i < 20; i++ {
		hub := NewLocal()
		srv, err := NewServer(hub, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		c, err := DialConfig(srv.Addr(), ClientConfig{MaxAttempts: 1, RPCTimeout: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		errCh := make(chan error, 1)
		go func() { errCh <- c.Publish(ReqID{}, Key{Src: 0, Dst: 1}, 0, []uint8{1}) }()
		srv.Close()
		// Either the publish lost the race (transport error, hub untouched)
		// or it won (response delivered, hub has the entry) — but it must
		// never succeed-without-response or hang.
		err = <-errCh
		if pending := hub.Stats().Pending; err == nil && pending != 1 {
			t.Fatalf("iteration %d: publish acked but hub has %d pending", i, pending)
		}
		c.Close()
	}
}

// TestServerIdleTimeout verifies that a silent connection is dropped once
// the configured idle deadline passes.
func TestServerIdleTimeout(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := NewServerConfig(NewLocal(), "127.0.0.1:0", ServerConfig{
		Obs:         reg,
		IdleTimeout: 50 * time.Millisecond,
		Logf:        func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server wrote to an idle connection")
	}
	if got := reg.Counter("tainthub_idle_disconnects_total").Value(); got != 1 {
		t.Errorf("tainthub_idle_disconnects_total = %d, want 1", got)
	}
}

// TestWireDedupAcrossRetry is the heart of the exactly-once guarantee: the
// server processes a destructive poll but the response is lost (connection
// severed before delivery); the retry — same ReqID, new connection — must
// return the original masks from the reply cache instead of ok=false.
func TestWireDedupAcrossRetry(t *testing.T) {
	reg := obs.NewRegistry()
	hub := NewLocalLimits(Limits{}, reg)
	srv, err := NewServer(hub, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if err := hub.Publish(ReqID{Client: 1, Seq: 1}, Key{Src: 0, Dst: 1, Tag: 2}, 0, []uint8{0xab}); err != nil {
		t.Fatal(err)
	}

	// First delivery: raw connection, send the poll, read the response to
	// be sure the server consumed the entry, then drop the connection as if
	// the response had been lost in flight.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	frame := `{"op":"poll","client":7,"req":1,"src":0,"dst":1,"tag":2,"seq":0}` + "\n"
	if _, err := conn.Write([]byte(frame)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if hub.Stats().Pending != 0 {
		t.Fatal("server did not consume the entry")
	}

	// Retry through the real client with the same ReqID.
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	masks, ok, err := c.Poll(ReqID{Client: 7, Seq: 1}, Key{Src: 0, Dst: 1, Tag: 2}, 0)
	if err != nil || !ok || masks[0] != 0xab {
		t.Fatalf("retried poll = %v, %v, %v; taint was silently dropped", masks, ok, err)
	}
	if got := reg.Counter("tainthub_dedup_hits_total").Value(); got != 1 {
		t.Errorf("tainthub_dedup_hits_total = %d, want 1", got)
	}
}

// TestWireBusyHonored: the client treats a busy response as retryable and
// waits out the server's retry-after hint; once capacity frees, the RPC
// succeeds without surfacing an error to the caller.
func TestWireBusyHonored(t *testing.T) {
	hub := NewLocalLimits(Limits{MaxPending: 1, RetryAfter: 5 * time.Millisecond}, nil)
	srv, err := NewServer(hub, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reg := obs.NewRegistry()
	cfg := fastRetry(reg)
	cfg.MaxAttempts = 20
	c, err := DialConfig(srv.Addr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	k := Key{Src: 0, Dst: 1}
	if err := c.Publish(ReqID{Client: 1, Seq: 1}, k, 0, []uint8{1}); err != nil {
		t.Fatal(err)
	}
	// The namespace is full; free it shortly after the publish starts
	// retrying against the busy signal.
	go func() {
		time.Sleep(20 * time.Millisecond)
		_, _, _ = hub.Poll(ReqID{Client: 9, Seq: 1}, k, 0)
	}()
	if err := c.Publish(ReqID{Client: 1, Seq: 2}, k, 1, []uint8{2}); err != nil {
		t.Fatalf("publish through transient busy: %v", err)
	}
	if got := reg.Counter("hub_rpc_retries_total").Value(); got == 0 {
		t.Error("busy response did not register as a retry")
	}
	if got := reg.Counter("hub_reconnects_total").Value(); got != 0 {
		t.Errorf("busy retry reconnected %d times; the connection was fine", got)
	}
}

// TestWireBusyExhaustsAttempts: a persistently busy server eventually
// surfaces as an RPC failure, not an infinite stall.
func TestWireBusyExhaustsAttempts(t *testing.T) {
	hub := NewLocalLimits(Limits{MaxPending: 1, RetryAfter: time.Millisecond}, nil)
	srv, err := NewServer(hub, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialConfig(srv.Addr(), fastRetry(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	k := Key{Src: 0, Dst: 1}
	if err := c.Publish(ReqID{Client: 1, Seq: 1}, k, 0, []uint8{1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(ReqID{Client: 1, Seq: 2}, k, 1, []uint8{2}); err == nil {
		t.Fatal("publish against a permanently busy hub succeeded")
	}
}

// TestWireFrameLimitResync: an oversized request is refused with an error
// response, counted as malformed, and the connection keeps working for
// subsequent well-formed frames.
func TestWireFrameLimitResync(t *testing.T) {
	reg := obs.NewRegistry()
	hub := NewLocal()
	srv, err := NewServerConfig(hub, "127.0.0.1:0", ServerConfig{
		Obs:           reg,
		MaxFrameBytes: 1 << 10,
		Logf:          func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))

	// An oversized frame (a legal JSON publish, just too big for the limit).
	big := make([]byte, 4<<10)
	for i := range big {
		big[i] = 'A'
	}
	if _, err := conn.Write([]byte(`{"op":"publish","masks":"` + string(big) + `"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := json.Unmarshal([]byte(line), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" {
		t.Fatalf("oversized frame not refused: %+v", resp)
	}
	if got := reg.Counter("tainthub_malformed_requests_total").Value(); got != 1 {
		t.Errorf("tainthub_malformed_requests_total = %d, want 1", got)
	}

	// The same connection must still serve a valid request.
	if _, err := conn.Write([]byte(`{"op":"stats"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	line, err = br.ReadString('\n')
	if err != nil {
		t.Fatalf("connection dead after oversized frame: %v", err)
	}
	resp = response{}
	if err := json.Unmarshal([]byte(line), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Stats == nil {
		t.Errorf("stats after resync = %+v", resp)
	}
}

// TestServerAbort: Abort must hard-stop the server (for crash drills) and
// leave clients to their retry logic against a replacement.
func TestServerAbort(t *testing.T) {
	hub := NewLocal()
	srv, err := NewServer(hub, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cfg := fastRetry(obs.NewRegistry())
	cfg.MaxAttempts = 10
	c, err := DialConfig(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv.Abort()
	srv2, err := NewServer(hub, addr)
	if err != nil {
		t.Fatalf("restart after abort: %v", err)
	}
	defer srv2.Close()
	if err := c.Publish(ReqID{Client: 1, Seq: 1}, Key{Src: 0, Dst: 1}, 0, []uint8{1}); err != nil {
		t.Fatalf("publish after abort+restart: %v", err)
	}
}
