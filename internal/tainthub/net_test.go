package tainthub

import (
	"net"
	"sync"
	"testing"
	"time"

	"chaser/internal/obs"
)

// fastRetry is a client config tuned so failure paths resolve in
// milliseconds instead of the production seconds.
func fastRetry(reg *obs.Registry) ClientConfig {
	return ClientConfig{
		DialTimeout: 2 * time.Second,
		RPCTimeout:  100 * time.Millisecond,
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
		Obs:         reg,
	}
}

// TestClientRPCTimeout verifies the satellite fix: a round trip against a
// server that accepts but never responds must fail within the RPC deadline
// instead of blocking forever.
func TestClientRPCTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // accept and go silent
		}
	}()

	reg := obs.NewRegistry()
	c, err := DialConfig(ln.Addr().String(), fastRetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	done := make(chan error, 1)
	go func() { done <- c.Publish(Key{Src: 0, Dst: 1}, 0, []uint8{1}) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("publish against a mute server succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked past every RPC deadline: roundTrip ignores deadlines")
	}
	if got := reg.Counter("hub_rpc_retries_total").Value(); got != 2 {
		t.Errorf("hub_rpc_retries_total = %d, want 2 (3 attempts)", got)
	}
	if got := reg.Counter("hub_rpc_failures_total").Value(); got != 1 {
		t.Errorf("hub_rpc_failures_total = %d, want 1", got)
	}
}

// TestClientReconnect kills the server mid-session, restarts it on the same
// address with the same backing hub, and verifies the client transparently
// reconnects and completes the RPC.
func TestClientReconnect(t *testing.T) {
	hub := NewLocal()
	srv, err := NewServer(hub, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	reg := obs.NewRegistry()
	cfg := fastRetry(reg)
	cfg.MaxAttempts = 10
	c, err := DialConfig(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Publish(Key{Src: 0, Dst: 1, Tag: 7}, 0, []uint8{0xaa}); err != nil {
		t.Fatal(err)
	}

	// Outage: the server dies and comes back on the same address, keeping
	// its state (as a restarted head-node hub would after reloading).
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := NewServer(hub, addr)
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer srv2.Close()

	masks, ok, err := c.Poll(Key{Src: 0, Dst: 1, Tag: 7}, 0)
	if err != nil || !ok || masks[0] != 0xaa {
		t.Fatalf("poll after restart = %v, %v, %v", masks, ok, err)
	}
	if got := reg.Counter("hub_reconnects_total").Value(); got < 1 {
		t.Errorf("hub_reconnects_total = %d, want >= 1", got)
	}
}

// TestClientCloseIdempotent double-closes and then uses the client.
func TestClientCloseIdempotent(t *testing.T) {
	srv, err := NewServer(NewLocal(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(Key{}, 0, nil); err == nil {
		t.Error("publish on a closed client succeeded")
	}
}

// TestServerCloseIdempotent closes a busy server from several goroutines at
// once; every Close must return and no serve goroutine may leak (the -race
// build of this test is the satellite's acceptance check).
func TestServerCloseIdempotent(t *testing.T) {
	srv, err := NewServer(NewLocal(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Busy clients hammering the server while it shuts down.
	var cwg sync.WaitGroup
	for i := 0; i < 4; i++ {
		cwg.Add(1)
		go func(i int) {
			defer cwg.Done()
			c, err := DialConfig(srv.Addr(), ClientConfig{MaxAttempts: 1, RPCTimeout: time.Second})
			if err != nil {
				return
			}
			defer c.Close()
			for j := 0; j < 100; j++ {
				if err := c.Publish(Key{Src: i, Dst: j}, 0, []uint8{1}); err != nil {
					return // server went away: expected
				}
			}
		}(i)
	}

	time.Sleep(10 * time.Millisecond) // let some traffic flow
	var swg sync.WaitGroup
	for i := 0; i < 3; i++ {
		swg.Add(1)
		go func() {
			defer swg.Done()
			if err := srv.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	swg.Wait()
	cwg.Wait()
}

// TestServerDrainDeliversResponse verifies graceful drain: a request the
// server processed before Close gets its response even when Close lands
// immediately after — a retrying client must never see a consumed poll
// vanish.
func TestServerDrainDeliversResponse(t *testing.T) {
	for i := 0; i < 20; i++ {
		hub := NewLocal()
		srv, err := NewServer(hub, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		c, err := DialConfig(srv.Addr(), ClientConfig{MaxAttempts: 1, RPCTimeout: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		errCh := make(chan error, 1)
		go func() { errCh <- c.Publish(Key{Src: 0, Dst: 1}, 0, []uint8{1}) }()
		srv.Close()
		// Either the publish lost the race (transport error, hub untouched)
		// or it won (response delivered, hub has the entry) — but it must
		// never succeed-without-response or hang.
		err = <-errCh
		if pending := hub.Stats().Pending; err == nil && pending != 1 {
			t.Fatalf("iteration %d: publish acked but hub has %d pending", i, pending)
		}
		c.Close()
	}
}

// TestServerIdleTimeout verifies that a silent connection is dropped once
// the configured idle deadline passes.
func TestServerIdleTimeout(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := NewServerConfig(NewLocal(), "127.0.0.1:0", ServerConfig{
		Obs:         reg,
		IdleTimeout: 50 * time.Millisecond,
		Logf:        func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server wrote to an idle connection")
	}
	if got := reg.Counter("tainthub_idle_disconnects_total").Value(); got != 1 {
		t.Errorf("tainthub_idle_disconnects_total = %d, want 1", got)
	}
}
