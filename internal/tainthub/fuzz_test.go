package tainthub

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"chaser/internal/tainthub/codec"
)

// FuzzDecodeRequest drives arbitrary bytes through the wire-protocol
// decoder and the request dispatcher, for both codecs. The server parses
// frames from arbitrary TCP peers, so the invariant is: garbage may
// produce errors and error responses, never a panic, and the recoverable
// (oversized frame, undecodable payload) vs fatal (malformed, disconnect)
// distinction must hold for every error the parser can produce.
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(`{"op":"publish","src":0,"dst":1,"tag":2,"seq":3,"masks":"qg=="}`))
	f.Add([]byte(`{"op":"poll","src":1,"dst":0,"tag":0,"seq":0}` + "\n" + `{"op":"stats"}`))
	f.Add([]byte(`{"op":"publish","client":7,"req":9,"masks":"!!not base64!!"}`))
	f.Add([]byte(`{"op":"bogus"}`))
	f.Add([]byte(`{"op":123}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{`))
	f.Add([]byte("\x00\xff\xfe"))
	f.Add([]byte(""))
	f.Add([]byte("\xc7\x02\x03\x01")) // binary magic + tiny frame
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, format := range []codec.Format{codec.FormatJSON, codec.FormatBinary} {
			s := &Server{hub: NewLocal(), maxFrame: 1 << 16, logf: func(string, ...any) {}}
			parser := codec.NewParser(format, bufio.NewReader(bytes.NewReader(data)), s.maxFrame)
			for i := 0; i < 64; i++ { // bounded: a frame is >= 1 byte
				req, err := parser.ReadRequest()
				if err != nil {
					var fe *codec.FrameError
					var pe *codec.PayloadError
					if errors.As(err, &fe) || errors.As(err, &pe) {
						continue // recoverable: the parser resynced the stream
					}
					_ = isMalformed(err)
					_ = isTimeout(err)
					break
				}
				resp := s.handle(req)
				if _, err := json.Marshal(resp); err != nil {
					t.Fatalf("dispatch produced unmarshalable response: %v", err)
				}
			}
		}
	})
}

// FuzzWALReplay opens a durable hub over arbitrary WAL and snapshot bytes.
// Crash recovery reads whatever a dead process left on disk, so the
// invariant is: torn tails, bit flips, and truncated snapshots may surface
// as *CorruptError or recover a prefix of the state — never panic, and
// never leave the reopened hub unusable when recovery claims success.
func FuzzWALReplay(f *testing.F) {
	// Seed with a well-formed pair produced by a real hub.
	seedDir := f.TempDir()
	seedPath := filepath.Join(seedDir, "seed.wal")
	h, err := OpenDurable(seedPath, DurableConfig{})
	if err != nil {
		f.Fatal(err)
	}
	id := ReqID{Client: 1, Seq: 1}
	if err := h.Publish(id, Key{Src: 0, Dst: 1, Tag: 2}, 0, []uint8{0xaa, 0x55}); err != nil {
		f.Fatal(err)
	}
	if err := h.Snapshot(); err != nil {
		f.Fatal(err)
	}
	if err := h.Publish(ReqID{Client: 1, Seq: 2}, Key{Src: 1, Dst: 0, Tag: 3}, 4, []uint8{1}); err != nil {
		f.Fatal(err)
	}
	if _, _, err := h.Poll(ReqID{Client: 2, Seq: 1}, Key{Src: 0, Dst: 1, Tag: 2}, 0); err != nil {
		f.Fatal(err)
	}
	if err := h.Abandon(); err != nil {
		f.Fatal(err)
	}
	wal, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	snap, err := os.ReadFile(seedPath + ".snap")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wal, snap)
	f.Add(wal[:len(wal)/2], snap)                  // torn WAL tail
	f.Add(wal, snap[:len(snap)/2])                 // truncated snapshot
	f.Add([]byte{}, snap)                          // missing WAL
	f.Add(wal, []byte{})                           // empty snapshot
	f.Add([]byte("garbage"), []byte("more trash")) // both corrupt

	f.Fuzz(func(t *testing.T, walBytes, snapBytes []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "hub.wal")
		if err := os.WriteFile(path, walBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if len(snapBytes) > 0 {
			if err := os.WriteFile(path+".snap", snapBytes, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		d, err := OpenDurable(path, DurableConfig{})
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("recovery failed with untyped error: %v", err)
			}
			return
		}
		// Recovery succeeded: the hub must be fully usable.
		k := Key{Src: 9, Dst: 8, Tag: 7}
		if err := d.Publish(ReqID{Client: 99, Seq: 1}, k, 0, []uint8{3}); err != nil {
			t.Fatalf("publish on recovered hub: %v", err)
		}
		if masks, ok, err := d.Poll(ReqID{Client: 99, Seq: 2}, k, 0); err != nil || !ok || masks[0] != 3 {
			t.Fatalf("poll on recovered hub: masks=%v ok=%v err=%v", masks, ok, err)
		}
		_ = d.Stats()
		if err := d.Close(); err != nil {
			t.Fatalf("close recovered hub: %v", err)
		}
		// And a second recovery from its own output must succeed cleanly.
		d2, err := OpenDurable(path, DurableConfig{})
		if err != nil {
			t.Fatalf("reopen after clean close: %v", err)
		}
		_ = d2.Abandon()
	})
}
