package tainthub

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzDecodeRequest drives arbitrary bytes through the wire-protocol
// decoder and the request dispatcher. The server parses frames from
// arbitrary TCP peers, so the invariant is: garbage may produce errors and
// error responses, never a panic, and the malformed/disconnect distinction
// must hold for every error the decoder can produce.
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(`{"op":"publish","src":0,"dst":1,"tag":2,"seq":3,"masks":"qg=="}`))
	f.Add([]byte(`{"op":"poll","src":1,"dst":0,"tag":0,"seq":0}` + "\n" + `{"op":"stats"}`))
	f.Add([]byte(`{"op":"publish","masks":"!!not base64!!"}`))
	f.Add([]byte(`{"op":"bogus"}`))
	f.Add([]byte(`{"op":123}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{`))
	f.Add([]byte("\x00\xff\xfe"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		s := &Server{hub: NewLocal(), logf: func(string, ...any) {}}
		dec := json.NewDecoder(bytes.NewReader(data))
		for i := 0; i < 64; i++ { // bounded: a frame is >= 2 bytes
			req, err := decodeRequest(dec)
			if err != nil {
				_ = isMalformed(err)
				_ = isTimeout(err)
				return
			}
			resp := s.dispatch(req)
			if _, err := json.Marshal(resp); err != nil {
				t.Fatalf("dispatch produced unmarshalable response: %v", err)
			}
		}
	})
}
