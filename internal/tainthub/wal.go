package tainthub

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Write-ahead log: every mutation of a Durable hub (publish, consumed
// poll) is appended as one CRC-framed record before it is applied, so a
// hard crash (kill -9) loses nothing that was acknowledged. The frame is
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// written with a single write(2), so a crash can only tear the final
// record; replay stops at the first frame whose length or checksum does
// not hold and truncates the tail. The first record is always a header
// carrying the WAL generation, which pairs the file with the snapshot it
// extends (see durable.go for the recovery protocol).

const (
	walMagic   = 0x4c415743 // "CWAL" little-endian
	walVersion = 1

	walRecHeader  = 1
	walRecPublish = 2
	walRecConsume = 3

	// maxWALPayload rejects absurd length fields before allocating: real
	// payloads are bounded by the MPI hook's 64 MiB message cap plus a few
	// fixed fields.
	maxWALPayload = 80 << 20
)

// CorruptError reports an unrecoverable WAL or snapshot file: not a torn
// tail (those are silently truncated) but structural damage — a bad magic,
// a checksum failure in a snapshot, or a WAL generation with no matching
// snapshot. Recovery refuses to guess at state.
type CorruptError struct {
	File   string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("tainthub: %s: %s", e.File, e.Reason)
}

var le = binary.LittleEndian

// walWriter appends framed records to an open WAL file. Each append is a
// single unbuffered write, so acknowledged records survive process death
// without fsync (fsync happens at snapshots and close, bounding loss on
// power failure, not on kill -9).
type walWriter struct {
	f   *os.File
	off int64
}

// append frames and writes one payload, returning the bytes written.
func (w *walWriter) append(payload []byte) (int, error) {
	frame := make([]byte, 8+len(payload))
	le.PutUint32(frame[0:4], uint32(len(payload)))
	le.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	n, err := w.f.Write(frame)
	w.off += int64(n)
	if err != nil {
		return n, fmt.Errorf("tainthub: wal append: %w", err)
	}
	return len(frame), nil
}

func encodeWALHeader(gen uint64) []byte {
	b := make([]byte, 1+4+1+8)
	b[0] = walRecHeader
	le.PutUint32(b[1:5], walMagic)
	b[5] = walVersion
	le.PutUint64(b[6:14], gen)
	return b
}

func decodeWALHeader(p []byte) (gen uint64, err error) {
	if len(p) != 14 || p[0] != walRecHeader {
		return 0, errors.New("bad header record")
	}
	if le.Uint32(p[1:5]) != walMagic {
		return 0, errors.New("bad magic")
	}
	if p[5] != walVersion {
		return 0, fmt.Errorf("unsupported WAL version %d", p[5])
	}
	return le.Uint64(p[6:14]), nil
}

// walMutation is one replayable publish or consume record.
type walMutation struct {
	kind  byte
	id    ReqID
	k     Key
	seq   uint64
	stamp int64   // publish only
	masks []uint8 // publish only
}

const walMutFixed = 1 + 8 + 8 + 4*8 + 8 // kind, client, req, key, seq

func encodeWALPublish(id ReqID, k Key, seq uint64, stamp int64, masks []uint8) []byte {
	b := make([]byte, walMutFixed+8+len(masks))
	b[0] = walRecPublish
	putWALCommon(b, id, k, seq)
	le.PutUint64(b[walMutFixed:], uint64(stamp))
	copy(b[walMutFixed+8:], masks)
	return b
}

func encodeWALConsume(id ReqID, k Key, seq uint64) []byte {
	b := make([]byte, walMutFixed)
	b[0] = walRecConsume
	putWALCommon(b, id, k, seq)
	return b
}

func putWALCommon(b []byte, id ReqID, k Key, seq uint64) {
	le.PutUint64(b[1:], id.Client)
	le.PutUint64(b[9:], id.Seq)
	le.PutUint64(b[17:], uint64(int64(k.Src)))
	le.PutUint64(b[25:], uint64(int64(k.Dst)))
	le.PutUint64(b[33:], uint64(int64(k.Tag)))
	le.PutUint64(b[41:], uint64(int64(k.NS)))
	le.PutUint64(b[49:], seq)
}

func decodeWALMutation(p []byte) (walMutation, error) {
	var m walMutation
	if len(p) < walMutFixed {
		return m, errors.New("short mutation record")
	}
	m.kind = p[0]
	m.id = ReqID{Client: le.Uint64(p[1:]), Seq: le.Uint64(p[9:])}
	m.k = Key{
		Src: int(int64(le.Uint64(p[17:]))),
		Dst: int(int64(le.Uint64(p[25:]))),
		Tag: int(int64(le.Uint64(p[33:]))),
		NS:  int(int64(le.Uint64(p[41:]))),
	}
	m.seq = le.Uint64(p[49:])
	switch m.kind {
	case walRecPublish:
		if len(p) < walMutFixed+8 {
			return m, errors.New("short publish record")
		}
		m.stamp = int64(le.Uint64(p[walMutFixed:]))
		m.masks = append([]uint8(nil), p[walMutFixed+8:]...)
	case walRecConsume:
		if len(p) != walMutFixed {
			return m, errors.New("oversized consume record")
		}
	default:
		return m, fmt.Errorf("unknown record kind %d", m.kind)
	}
	return m, nil
}

// scanWAL reads the log from the start: the header record (if any), then
// every intact mutation, calling apply for each. It returns the header
// generation, whether a header was present, and the offset just past the
// last intact record — the caller truncates there, so a torn or
// bit-flipped tail can never be replayed or appended after.
func scanWAL(f *os.File, apply func(walMutation)) (gen uint64, hasHeader bool, goodOff int64, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, false, 0, err
	}
	var off int64
	hdr := make([]byte, 8)
	first := true
	for {
		if _, rerr := io.ReadFull(f, hdr); rerr != nil {
			return gen, hasHeader, off, nil // clean EOF or torn frame header
		}
		n := le.Uint32(hdr[0:4])
		if n == 0 || n > maxWALPayload {
			return gen, hasHeader, off, nil // corrupt length: stop, truncate
		}
		payload := make([]byte, n)
		if _, rerr := io.ReadFull(f, payload); rerr != nil {
			return gen, hasHeader, off, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != le.Uint32(hdr[4:8]) {
			return gen, hasHeader, off, nil // bit flip: stop, truncate
		}
		if first {
			first = false
			g, herr := decodeWALHeader(payload)
			if herr != nil {
				return 0, false, 0, &CorruptError{File: f.Name(), Reason: "wal header: " + herr.Error()}
			}
			gen, hasHeader = g, true
			off += int64(8 + n)
			continue
		}
		m, merr := decodeWALMutation(payload)
		if merr != nil {
			return gen, hasHeader, off, nil // undecodable record: stop, truncate
		}
		if apply != nil {
			apply(m)
		}
		off += int64(8 + n)
	}
}
