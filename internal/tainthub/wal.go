package tainthub

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"chaser/internal/tainthub/codec"
)

// Write-ahead log: every mutation of a Durable hub (publish, consumed
// poll) is appended as one CRC-framed record before it is applied, so a
// hard crash (kill -9) loses nothing that was acknowledged. The frame is
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// written with a single write(2), so a crash can only tear the final
// record; replay stops at the first frame whose length or checksum does
// not hold and truncates the tail. The first record is always a header
// carrying the WAL generation, which pairs the file with the snapshot it
// extends (see durable.go for the recovery protocol).
//
// Record payloads are versioned by the header. Version 1 used fixed
// 8-byte-field layouts; version 2 (current) packs fields with the codec
// package's varints and run-length-encodes masks — the same primitives the
// wire protocol uses, so one codec owns every persisted byte. Version-1
// logs are still replayed; recovery then rotates them to a fresh
// version-2 log via a snapshot, so appends never mix versions.

const (
	walMagic   = 0x4c415743 // "CWAL" little-endian
	walVersion = 2

	walRecHeader  = 1
	walRecPublish = 2
	walRecConsume = 3

	// maxWALPayload rejects absurd length fields before allocating: real
	// payloads are bounded by the MPI hook's 64 MiB message cap plus a few
	// fixed fields.
	maxWALPayload = 80 << 20
)

// CorruptError reports an unrecoverable WAL or snapshot file: not a torn
// tail (those are silently truncated) but structural damage — a bad magic,
// a checksum failure in a snapshot, or a WAL generation with no matching
// snapshot. Recovery refuses to guess at state.
type CorruptError struct {
	File   string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("tainthub: %s: %s", e.File, e.Reason)
}

var le = binary.LittleEndian

// walWriter appends framed records to an open WAL file. Each append is a
// single unbuffered write, so acknowledged records survive process death
// without fsync (fsync happens at snapshots and close, bounding loss on
// power failure, not on kill -9).
type walWriter struct {
	f   *os.File
	off int64
}

// append frames and writes one payload, returning the bytes written.
func (w *walWriter) append(payload []byte) (int, error) {
	frame := make([]byte, 8+len(payload))
	le.PutUint32(frame[0:4], uint32(len(payload)))
	le.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	n, err := w.f.Write(frame)
	w.off += int64(n)
	if err != nil {
		return n, fmt.Errorf("tainthub: wal append: %w", err)
	}
	return len(frame), nil
}

func encodeWALHeader(gen uint64) []byte {
	b := make([]byte, 1+4+1+8)
	b[0] = walRecHeader
	le.PutUint32(b[1:5], walMagic)
	b[5] = walVersion
	le.PutUint64(b[6:14], gen)
	return b
}

// decodeWALHeader validates the header record and returns the generation
// and payload version. Unknown versions are refused — silently misreading
// a future layout would resurrect or drop taint.
func decodeWALHeader(p []byte) (gen uint64, version byte, err error) {
	if len(p) != 14 || p[0] != walRecHeader {
		return 0, 0, errors.New("bad header record")
	}
	if le.Uint32(p[1:5]) != walMagic {
		return 0, 0, errors.New("bad magic")
	}
	version = p[5]
	if version == 0 || version > walVersion {
		return 0, 0, fmt.Errorf("unsupported WAL version %d", version)
	}
	return le.Uint64(p[6:14]), version, nil
}

// walMutation is one replayable publish or consume record.
type walMutation struct {
	kind  byte
	id    ReqID
	k     Key
	seq   uint64
	stamp int64   // publish only
	masks []uint8 // publish only
}

// walMutFixedV1 is the version-1 fixed prefix: kind, client, req, key, seq.
const walMutFixedV1 = 1 + 8 + 8 + 4*8 + 8

func encodeWALPublish(id ReqID, k Key, seq uint64, stamp int64, masks []uint8) []byte {
	b := appendWALCommon(make([]byte, 0, 48+len(masks)/4), walRecPublish, id, k, seq)
	b = codec.AppendSvarint(b, stamp)
	return codec.AppendMasks(b, masks)
}

func encodeWALConsume(id ReqID, k Key, seq uint64) []byte {
	return appendWALCommon(make([]byte, 0, 48), walRecConsume, id, k, seq)
}

func appendWALCommon(b []byte, kind byte, id ReqID, k Key, seq uint64) []byte {
	b = append(b, kind)
	b = codec.AppendUvarint(b, id.Client)
	b = codec.AppendUvarint(b, id.Seq)
	b = codec.AppendSvarint(b, int64(k.Src))
	b = codec.AppendSvarint(b, int64(k.Dst))
	b = codec.AppendSvarint(b, int64(k.Tag))
	b = codec.AppendSvarint(b, int64(k.NS))
	return codec.AppendUvarint(b, seq)
}

// decodeWALMutation decodes one mutation record in the given payload
// version (from the WAL header).
func decodeWALMutation(p []byte, version byte) (walMutation, error) {
	if version == 1 {
		return decodeWALMutationV1(p)
	}
	var m walMutation
	if len(p) < 1 {
		return m, errors.New("empty mutation record")
	}
	m.kind = p[0]
	b := p[1:]
	var err error
	if m.id.Client, b, err = codec.ConsumeUvarint(b); err != nil {
		return m, err
	}
	if m.id.Seq, b, err = codec.ConsumeUvarint(b); err != nil {
		return m, err
	}
	key := []*int{&m.k.Src, &m.k.Dst, &m.k.Tag, &m.k.NS}
	for _, f := range key {
		var v int64
		if v, b, err = codec.ConsumeSvarint(b); err != nil {
			return m, err
		}
		*f = int(v)
	}
	if m.seq, b, err = codec.ConsumeUvarint(b); err != nil {
		return m, err
	}
	switch m.kind {
	case walRecPublish:
		if m.stamp, b, err = codec.ConsumeSvarint(b); err != nil {
			return m, err
		}
		if m.masks, b, err = codec.ConsumeMasks(b, maxWALPayload); err != nil {
			return m, err
		}
	case walRecConsume:
	default:
		return m, fmt.Errorf("unknown record kind %d", m.kind)
	}
	if len(b) != 0 {
		return m, errors.New("trailing bytes in mutation record")
	}
	return m, nil
}

// decodeWALMutationV1 reads the legacy fixed-field layout, kept so a log
// written before the codec migration still replays.
func decodeWALMutationV1(p []byte) (walMutation, error) {
	var m walMutation
	if len(p) < walMutFixedV1 {
		return m, errors.New("short mutation record")
	}
	m.kind = p[0]
	m.id = ReqID{Client: le.Uint64(p[1:]), Seq: le.Uint64(p[9:])}
	m.k = Key{
		Src: int(int64(le.Uint64(p[17:]))),
		Dst: int(int64(le.Uint64(p[25:]))),
		Tag: int(int64(le.Uint64(p[33:]))),
		NS:  int(int64(le.Uint64(p[41:]))),
	}
	m.seq = le.Uint64(p[49:])
	switch m.kind {
	case walRecPublish:
		if len(p) < walMutFixedV1+8 {
			return m, errors.New("short publish record")
		}
		m.stamp = int64(le.Uint64(p[walMutFixedV1:]))
		m.masks = append([]uint8(nil), p[walMutFixedV1+8:]...)
	case walRecConsume:
		if len(p) != walMutFixedV1 {
			return m, errors.New("oversized consume record")
		}
	default:
		return m, fmt.Errorf("unknown record kind %d", m.kind)
	}
	return m, nil
}

// scanWAL reads the log from the start: the header record (if any), then
// every intact mutation, calling apply for each. It returns the header
// generation and payload version, whether a header was present, and the
// offset just past the last intact record — the caller truncates there, so
// a torn or bit-flipped tail can never be replayed or appended after.
func scanWAL(f *os.File, apply func(walMutation)) (gen uint64, version byte, hasHeader bool, goodOff int64, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, false, 0, err
	}
	var off int64
	hdr := make([]byte, 8)
	first := true
	for {
		if _, rerr := io.ReadFull(f, hdr); rerr != nil {
			return gen, version, hasHeader, off, nil // clean EOF or torn frame header
		}
		n := le.Uint32(hdr[0:4])
		if n == 0 || n > maxWALPayload {
			return gen, version, hasHeader, off, nil // corrupt length: stop, truncate
		}
		payload := make([]byte, n)
		if _, rerr := io.ReadFull(f, payload); rerr != nil {
			return gen, version, hasHeader, off, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != le.Uint32(hdr[4:8]) {
			return gen, version, hasHeader, off, nil // bit flip: stop, truncate
		}
		if first {
			first = false
			g, v, herr := decodeWALHeader(payload)
			if herr != nil {
				return 0, 0, false, 0, &CorruptError{File: f.Name(), Reason: "wal header: " + herr.Error()}
			}
			gen, version, hasHeader = g, v, true
			off += int64(8 + n)
			continue
		}
		m, merr := decodeWALMutation(payload, version)
		if merr != nil {
			return gen, version, hasHeader, off, nil // undecodable record: stop, truncate
		}
		if apply != nil {
			apply(m)
		}
		off += int64(8 + n)
	}
}
