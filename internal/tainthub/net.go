package tainthub

import (
	"bufio"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"chaser/internal/obs"
)

// The wire protocol is newline-delimited JSON over TCP: one request object
// per line, one response object per line. It is deliberately simple — the
// hub runs on the head node and handles a few messages per guest send/recv.

type request struct {
	Op    string `json:"op"` // "publish", "poll", "stats"
	Src   int    `json:"src"`
	Dst   int    `json:"dst"`
	Tag   int    `json:"tag"`
	NS    int    `json:"ns,omitempty"`
	Seq   uint64 `json:"seq"`
	Masks string `json:"masks,omitempty"` // base64
}

type response struct {
	OK    bool   `json:"ok"`
	Found bool   `json:"found,omitempty"`
	Masks string `json:"masks,omitempty"`
	Stats *Stats `json:"stats,omitempty"`
	Err   string `json:"err,omitempty"`
}

// serverObs bundles the server's instruments; nil when no registry is
// attached.
type serverObs struct {
	requests  *obs.Counter
	malformed *obs.Counter
	publishes *obs.Counter
	polls     *obs.Counter
	pollHits  *obs.Counter
	pollMiss  *obs.Counter
	rpcLat    *obs.Histogram
}

func newServerObs(reg *obs.Registry) *serverObs {
	if reg == nil {
		return nil
	}
	return &serverObs{
		requests:  reg.Counter("tainthub_requests_total"),
		malformed: reg.Counter("tainthub_malformed_requests_total"),
		publishes: reg.Counter("tainthub_publishes_total"),
		polls:     reg.Counter("tainthub_polls_total"),
		pollHits:  reg.Counter("tainthub_poll_hits_total"),
		pollMiss:  reg.Counter("tainthub_poll_misses_total"),
		rpcLat:    reg.Histogram("tainthub_rpc_seconds", obs.LatencyBuckets...),
	}
}

// Server exposes a hub over TCP.
type Server struct {
	hub  Hub
	ln   net.Listener
	wg   sync.WaitGroup
	obs  *serverObs
	logf func(format string, args ...any)

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// NewServer starts serving hub on addr (e.g. "127.0.0.1:0"). Use Addr to
// discover the bound address.
func NewServer(hub Hub, addr string) (*Server, error) {
	return NewServerObs(hub, addr, nil)
}

// NewServerObs is NewServer with a metrics registry attached (nil disables
// telemetry).
func NewServerObs(hub Hub, addr string, reg *obs.Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tainthub: listen: %w", err)
	}
	s := &Server{
		hub:   hub,
		ln:    ln,
		obs:   newServerObs(reg),
		logf:  log.Printf,
		conns: make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and all its connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			if isMalformed(err) {
				// A garbage request is a signal (corrupted client, stray
				// connection, protocol drift) — count it, log it, tell the
				// peer, and drop the connection: the decoder's framing is
				// unrecoverable after a syntax error.
				if s.obs != nil {
					s.obs.malformed.Inc()
				}
				s.logf("tainthub: malformed request from %s: %v", conn.RemoteAddr(), err)
				_ = enc.Encode(response{Err: "malformed request: " + err.Error()})
			}
			return
		}
		resp := s.handle(req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// isMalformed distinguishes a garbage request from an ordinary disconnect
// (EOF, closed connection, reset).
func isMalformed(err error) bool {
	var syn *json.SyntaxError
	var typ *json.UnmarshalTypeError
	return errors.As(err, &syn) || errors.As(err, &typ) || errors.Is(err, io.ErrUnexpectedEOF)
}

func (s *Server) handle(req request) response {
	var t0 time.Time
	if s.obs != nil {
		s.obs.requests.Inc()
		t0 = time.Now()
	}
	resp := s.dispatch(req)
	if s.obs != nil {
		s.obs.rpcLat.Observe(time.Since(t0).Seconds())
	}
	return resp
}

func (s *Server) dispatch(req request) response {
	k := Key{Src: req.Src, Dst: req.Dst, Tag: req.Tag, NS: req.NS}
	switch req.Op {
	case "publish":
		masks, err := base64.StdEncoding.DecodeString(req.Masks)
		if err != nil {
			if s.obs != nil {
				s.obs.malformed.Inc()
			}
			s.logf("tainthub: publish with undecodable masks (src=%d dst=%d tag=%d)", req.Src, req.Dst, req.Tag)
			return response{Err: "bad masks encoding"}
		}
		if err := s.hub.Publish(k, req.Seq, masks); err != nil {
			return response{Err: err.Error()}
		}
		if s.obs != nil {
			s.obs.publishes.Inc()
		}
		return response{OK: true}
	case "poll":
		masks, found, err := s.hub.Poll(k, req.Seq)
		if err != nil {
			return response{Err: err.Error()}
		}
		if s.obs != nil {
			s.obs.polls.Inc()
			if found {
				s.obs.pollHits.Inc()
			} else {
				s.obs.pollMiss.Inc()
			}
		}
		return response{OK: true, Found: found, Masks: base64.StdEncoding.EncodeToString(masks)}
	case "stats":
		st := s.hub.Stats()
		return response{OK: true, Stats: &st}
	}
	if s.obs != nil {
		s.obs.malformed.Inc()
	}
	s.logf("tainthub: unknown op %q", req.Op)
	return response{Err: fmt.Sprintf("unknown op %q", req.Op)}
}

// Client is a Hub backed by a remote Server. It is safe for concurrent use;
// requests are serialized over one connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

var _ Hub = (*Client)(nil)

// Dial connects to a hub server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tainthub: dial %s: %w", addr, err)
	}
	return &Client{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		enc:  json.NewEncoder(conn),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req request) (response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return response{}, fmt.Errorf("tainthub: send: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return response{}, fmt.Errorf("tainthub: recv: %w", err)
	}
	if resp.Err != "" {
		return response{}, errors.New("tainthub: " + resp.Err)
	}
	return resp, nil
}

// Publish implements Hub.
func (c *Client) Publish(k Key, seq uint64, masks []uint8) error {
	_, err := c.roundTrip(request{
		Op: "publish", Src: k.Src, Dst: k.Dst, Tag: k.Tag, NS: k.NS, Seq: seq,
		Masks: base64.StdEncoding.EncodeToString(masks),
	})
	return err
}

// Poll implements Hub.
func (c *Client) Poll(k Key, seq uint64) ([]uint8, bool, error) {
	resp, err := c.roundTrip(request{Op: "poll", Src: k.Src, Dst: k.Dst, Tag: k.Tag, NS: k.NS, Seq: seq})
	if err != nil {
		return nil, false, err
	}
	if !resp.Found {
		return nil, false, nil
	}
	masks, err := base64.StdEncoding.DecodeString(resp.Masks)
	if err != nil {
		return nil, false, fmt.Errorf("tainthub: bad masks in response: %w", err)
	}
	return masks, true, nil
}

// Stats implements Hub.
func (c *Client) Stats() Stats {
	resp, err := c.roundTrip(request{Op: "stats"})
	if err != nil || resp.Stats == nil {
		return Stats{}
	}
	return *resp.Stats
}
