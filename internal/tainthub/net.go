package tainthub

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"chaser/internal/obs"
	"chaser/internal/tainthub/codec"
)

// The wire protocol is one request frame / one response frame over TCP,
// serialized by the codec package: either the legacy newline-delimited JSON
// format or the compact length-prefixed binary format (the default). The
// server autodetects the format per connection from the first byte; the
// client pipelines requests over one connection and coalesces concurrent
// calls into batch frames, so one round trip carries many logical RPCs.

// FrameError re-exports the codec type: a request frame exceeding the
// server's limit — the wire-level DoS guard that rejects an oversized
// Publish before its payload is buffered. It is recoverable: the codec has
// already resynchronized the stream past the refused frame.
type FrameError = codec.FrameError

// response aliases the wire response; tests build and decode it directly.
type response = codec.Response

// serverObs bundles the server's instruments; nil when no registry is
// attached.
type serverObs struct {
	requests  *obs.Counter
	malformed *obs.Counter
	publishes *obs.Counter
	polls     *obs.Counter
	pollHits  *obs.Counter
	pollMiss  *obs.Counter
	idleDrops *obs.Counter
	rpcLat    *obs.Histogram
}

func newServerObs(reg *obs.Registry) *serverObs {
	if reg == nil {
		return nil
	}
	return &serverObs{
		requests:  reg.Counter("tainthub_requests_total"),
		malformed: reg.Counter("tainthub_malformed_requests_total"),
		publishes: reg.Counter("tainthub_publishes_total"),
		polls:     reg.Counter("tainthub_polls_total"),
		pollHits:  reg.Counter("tainthub_poll_hits_total"),
		pollMiss:  reg.Counter("tainthub_poll_misses_total"),
		idleDrops: reg.Counter("tainthub_idle_disconnects_total"),
		rpcLat:    reg.Histogram("tainthub_rpc_seconds", obs.LatencyBuckets...),
	}
}

// ServerConfig tunes a hub server beyond the defaults.
type ServerConfig struct {
	// Obs, when non-nil, receives server telemetry.
	Obs *obs.Registry
	// IdleTimeout disconnects a client whose connection stays silent for
	// this long (0 = never). Dead campaign workers then cannot pin server
	// resources forever.
	IdleTimeout time.Duration
	// MaxFrameBytes caps one request frame; larger frames are rejected with
	// *FrameError before the payload is buffered (default 96 MiB — a 64 MiB
	// mask payload base64-expands to ~85 MiB plus JSON overhead).
	MaxFrameBytes int
	// Wire pins the wire format. FormatAuto (the default) detects the
	// format per connection from its first byte; a pinned format refuses
	// connections speaking the other one.
	Wire codec.Format
	// Logf overrides the server's logger (nil = log.Printf).
	Logf func(format string, args ...any)
}

// defaultMaxFrame bounds a request frame when ServerConfig.MaxFrameBytes
// is zero.
const defaultMaxFrame = 96 << 20

// Server exposes a hub over TCP.
type Server struct {
	hub      Hub
	ln       net.Listener
	wg       sync.WaitGroup
	obs      *serverObs
	idle     time.Duration
	maxFrame int
	wire     codec.Format
	logf     func(format string, args ...any)

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// NewServer starts serving hub on addr (e.g. "127.0.0.1:0"). Use Addr to
// discover the bound address.
func NewServer(hub Hub, addr string) (*Server, error) {
	return NewServerConfig(hub, addr, ServerConfig{})
}

// NewServerObs is NewServer with a metrics registry attached (nil disables
// telemetry).
func NewServerObs(hub Hub, addr string, reg *obs.Registry) (*Server, error) {
	return NewServerConfig(hub, addr, ServerConfig{Obs: reg})
}

// NewServerConfig is NewServer with full tuning.
func NewServerConfig(hub Hub, addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tainthub: listen: %w", err)
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	maxFrame := cfg.MaxFrameBytes
	if maxFrame <= 0 {
		maxFrame = defaultMaxFrame
	}
	s := &Server{
		hub:      hub,
		ln:       ln,
		obs:      newServerObs(cfg.Obs),
		idle:     cfg.IdleTimeout,
		maxFrame: maxFrame,
		wire:     cfg.Wire,
		logf:     logf,
		conns:    make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server: it stops accepting, wakes every connection
// blocked in a read, lets in-flight requests finish and their responses
// flush, and waits for all serve goroutines to drain. It is idempotent and
// safe to call concurrently.
//
// The drain is graceful on purpose: a request the server has processed
// always gets its response delivered, so a retrying client never re-issues
// an RPC whose side effect (a consumed poll) already happened.
func (s *Server) Close() error {
	s.mu.Lock()
	wasClosed := s.closed
	s.closed = true
	for c := range s.conns {
		// Wake blocked decodes without closing the connection mid-write;
		// each serve goroutine closes its own connection as it drains.
		_ = c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	var err error
	if !wasClosed {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

// Abort stops the server abruptly: connections are hard-closed with
// responses potentially unsent, exactly as a process crash would leave
// them. Clients see transport errors and retry against the replacement
// server, which is what the exactly-once reply cache exists for. Tests
// and crash drills use it; production shutdown wants Close.
func (s *Server) Abort() {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	_ = s.ln.Close()
	s.wg.Wait()
}

func (s *Server) closing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	if s.idle > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(s.idle))
	}
	format := s.wire
	if format == codec.FormatAuto {
		// Peek the first byte to classify the connection's format without
		// consuming it; the binary magic can never begin a JSON request.
		f, err := codec.Detect(br)
		if err != nil {
			switch {
			case s.closing():
			case isTimeout(err):
				if s.obs != nil {
					s.obs.idleDrops.Inc()
				}
				s.logf("tainthub: disconnecting idle client %s", conn.RemoteAddr())
			}
			return
		}
		format = f
	}
	parser := codec.NewParser(format, br, s.maxFrame)
	emitter := codec.NewEmitter(format, conn)
	for {
		if s.closing() {
			return
		}
		if s.idle > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.idle))
		}
		req, err := parser.ReadRequest()
		if err != nil {
			var fe *codec.FrameError
			var pe *codec.PayloadError
			switch {
			case s.closing():
				// Shutdown woke the read; drain silently.
			case isTimeout(err):
				if s.obs != nil {
					s.obs.idleDrops.Inc()
				}
				s.logf("tainthub: disconnecting idle client %s", conn.RemoteAddr())
			case errors.As(err, &fe):
				// Oversized frame: count it with the malformed requests,
				// refuse it, but keep the connection — the codec has already
				// resynchronized the stream past the refused frame (the JSON
				// parser drains to the actual newline, the binary parser
				// skips the declared length).
				if s.obs != nil {
					s.obs.malformed.Inc()
				}
				s.logf("tainthub: oversized request from %s: %v", conn.RemoteAddr(), err)
				if werr := writeResponse(emitter, response{Err: err.Error(), Code: codec.CodeFrame}); werr == nil {
					continue
				}
			case errors.As(err, &pe):
				// The frame was structurally sound but its payload can never
				// decode (bad base64, corrupt RLE). Permanent for the sender,
				// recoverable for the connection: the frame was fully
				// consumed, so refuse it with a typed code and keep reading.
				if s.obs != nil {
					s.obs.malformed.Inc()
				}
				s.logf("tainthub: undecodable payload from %s: %v", conn.RemoteAddr(), err)
				if werr := writeResponse(emitter, response{Err: err.Error(), Code: codec.CodePayload}); werr == nil {
					continue
				}
			case isMalformed(err):
				// A garbage request is a signal (corrupted client, stray
				// connection, protocol drift) — count it, log it, tell the
				// peer, and drop the connection: the stream position is
				// unreliable after a framing error.
				if s.obs != nil {
					s.obs.malformed.Inc()
				}
				s.logf("tainthub: malformed request from %s: %v", conn.RemoteAddr(), err)
				_ = writeResponse(emitter, response{Err: "malformed request: " + err.Error()})
			}
			return
		}
		resp := s.handle(req)
		if writeResponse(emitter, resp) != nil {
			return
		}
	}
}

// writeResponse emits one response frame and pushes it onto the wire.
func writeResponse(e codec.Emitter, resp codec.Response) error {
	if err := e.WriteResponse(resp); err != nil {
		return err
	}
	return e.Flush()
}

// isMalformed distinguishes a garbage request from an ordinary disconnect
// (EOF, closed connection, reset).
func isMalformed(err error) bool {
	var syn *json.SyntaxError
	var typ *json.UnmarshalTypeError
	var mal *codec.MalformedError
	return errors.As(err, &syn) || errors.As(err, &typ) || errors.As(err, &mal) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}

// isTimeout reports whether err is a network deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// handle dispatches one request frame. A batch frame fans out to its
// entries — each is a full logical RPC with its own ReqID, metrics, and
// response slot; the batch reply preserves order.
func (s *Server) handle(req codec.Request) codec.Response {
	if req.Op == codec.OpBatch {
		if len(req.Batch) == 0 {
			if s.obs != nil {
				s.obs.malformed.Inc()
			}
			return response{Err: "empty batch"}
		}
		out := make([]codec.Response, len(req.Batch))
		for i := range req.Batch {
			out[i] = s.handleOne(req.Batch[i])
		}
		return codec.Response{OK: true, Batch: out}
	}
	return s.handleOne(req)
}

func (s *Server) handleOne(req codec.Request) codec.Response {
	var t0 time.Time
	if s.obs != nil {
		s.obs.requests.Inc()
		t0 = time.Now()
	}
	resp := s.dispatch(req)
	// Echo the ReqID so a pipelined client can verify correlation.
	resp.Client = req.Client
	resp.Req = req.Req
	if s.obs != nil {
		s.obs.rpcLat.Observe(time.Since(t0).Seconds())
	}
	return resp
}

// hubError maps a hub-level error onto the wire: a *BusyError becomes a
// retryable busy response carrying the backoff hint, a *PayloadError
// (masks over the hub's payload limit) is refused with the permanent
// payload code so clients stop retrying bytes that can never be accepted,
// anything else is a plain application error.
func (s *Server) hubError(err error) codec.Response {
	var be *BusyError
	if errors.As(err, &be) {
		return response{Busy: true, RetryAfterMs: int64(be.RetryAfter / time.Millisecond)}
	}
	var pe *PayloadError
	if errors.As(err, &pe) {
		if s.obs != nil {
			s.obs.malformed.Inc()
		}
		s.logf("tainthub: rejected oversized payload: %v", pe)
		return response{Err: err.Error(), Code: codec.CodePayload}
	}
	return response{Err: err.Error()}
}

func (s *Server) dispatch(req codec.Request) codec.Response {
	k := Key{Src: req.Src, Dst: req.Dst, Tag: req.Tag, NS: req.NS}
	id := ReqID{Client: req.Client, Seq: req.Req}
	switch req.Op {
	case codec.OpPublish:
		if err := s.hub.Publish(id, k, req.Seq, req.Masks); err != nil {
			return s.hubError(err)
		}
		if s.obs != nil {
			s.obs.publishes.Inc()
		}
		return response{OK: true}
	case codec.OpPoll:
		masks, found, err := s.hub.Poll(id, k, req.Seq)
		if err != nil {
			return s.hubError(err)
		}
		if s.obs != nil {
			s.obs.polls.Inc()
			if found {
				s.obs.pollHits.Inc()
			} else {
				s.obs.pollMiss.Inc()
			}
		}
		return response{OK: true, Found: found, Masks: masks}
	case codec.OpStats:
		st := s.hub.Stats()
		return response{OK: true, Stats: &st}
	case codec.OpBatch:
		return response{Err: "batches do not nest"}
	}
	if s.obs != nil {
		s.obs.malformed.Inc()
	}
	s.logf("tainthub: unknown op %q", req.Op)
	return response{Err: fmt.Sprintf("unknown op %q", req.Op)}
}

// ClientConfig tunes the hardened TCP hub client. The zero value selects
// sane production defaults; see the field comments.
type ClientConfig struct {
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// RPCTimeout bounds one request/response round trip; a stalled or dead
	// server surfaces as an error instead of hanging the caller forever
	// (default 10s).
	RPCTimeout time.Duration
	// MaxAttempts is the total number of tries per RPC including the
	// first; 1 disables retry (default 4).
	MaxAttempts int
	// BackoffBase is the delay before the first retry; each further retry
	// doubles it, capped at BackoffMax, with ±50% jitter so a fleet of
	// campaign workers does not thundering-herd a restarting hub
	// (defaults 10ms / 1s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Wire selects the wire format. FormatAuto (the default) speaks binary;
	// FormatJSON speaks the legacy protocol to old servers.
	Wire codec.Format
	// MaxBatch caps how many concurrent calls coalesce into one batch
	// frame; 1 disables batching (default 64).
	MaxBatch int
	// MaxBatchBytes caps the estimated payload of one batch frame, so a few
	// huge publishes do not ride in one frame near the server's limit
	// (default 1 MiB).
	MaxBatchBytes int
	// MaxInflight caps pipelined request frames awaiting responses on one
	// connection (default 64).
	MaxInflight int
	// Obs, when non-nil, receives client telemetry: hub_rpc_retries_total,
	// hub_reconnects_total, hub_rpc_failures_total.
	Obs *obs.Registry
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 10 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 1 << 20
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	return c
}

var errClientClosed = errors.New("tainthub: client closed")

// call is one in-flight RPC. state is a claim token: whoever flips it from
// 0 to 1 — the session's reader delivering a response, or the caller
// rescuing itself after the session died — owns the call's outcome. The
// token is what lets callers abandon a dead session without any drain
// handshake with its goroutines.
type call struct {
	req   codec.Request
	resp  codec.Response
	state atomic.Int32 // 0 pending, 1 claimed
	done  chan struct{}
}

// deliver hands the call its response unless the caller already claimed it
// back.
func (c *call) deliver(resp codec.Response) {
	if c.state.CompareAndSwap(0, 1) {
		c.resp = resp
		close(c.done)
	}
}

// claim returns true when the caller now owns the call: no response was
// delivered, and none will be.
func (c *call) claim() bool { return c.state.CompareAndSwap(0, 1) }

// session is one pipelined connection: a writer goroutine coalesces queued
// calls into frames, a reader goroutine correlates response frames back to
// call groups in FIFO order (the server processes one connection's frames
// sequentially, so frame order is response order; the echoed ReqID
// cross-checks it). Any transport error fails the whole session; callers
// notice via the done channel and retry on a fresh one.
type session struct {
	conn     net.Conn
	parser   codec.Parser
	emit     codec.Emitter
	sendq    chan *call
	inflight chan []*call // frame groups awaiting responses, FIFO

	failOnce sync.Once
	err      error
	done     chan struct{}
}

// fail terminates the session exactly once: records the reason, wakes every
// waiter, and closes the connection (unblocking both goroutines).
func (s *session) fail(err error) {
	s.failOnce.Do(func() {
		s.err = err
		close(s.done)
		_ = s.conn.Close()
	})
}

// failure returns the terminal error; only valid after done is closed.
func (s *session) failure() error { return s.err }

// reqSize estimates a request's frame contribution for batch sizing.
func reqSize(req codec.Request) int { return len(req.Masks) + 64 }

// writeLoop drains the send queue, opportunistically coalescing whatever
// calls are already waiting into one batch frame. Under light load every
// frame carries one call (no added latency); under concurrency one frame
// (and one syscall) carries up to maxBatch logical RPCs.
func (s *session) writeLoop(maxBatch, maxBatchBytes int) {
	for {
		var first *call
		select {
		case <-s.done:
			return
		case first = <-s.sendq:
		}
		group := []*call{first}
		size := reqSize(first.req)
		for len(group) < maxBatch && size < maxBatchBytes {
			var next *call
			select {
			case next = <-s.sendq:
			default:
			}
			if next == nil {
				break
			}
			group = append(group, next)
			size += reqSize(next.req)
		}
		// Publish the group to the reader before the bytes hit the wire, so
		// the response can never arrive before its group is known.
		select {
		case s.inflight <- group:
		case <-s.done:
			return
		}
		var err error
		if len(group) == 1 {
			err = s.emit.WriteRequest(group[0].req)
		} else {
			batch := make([]codec.Request, len(group))
			for i, c := range group {
				batch[i] = c.req
			}
			err = s.emit.WriteRequest(codec.Request{Op: codec.OpBatch, Batch: batch})
		}
		if err == nil {
			err = s.emit.Flush()
		}
		if err != nil {
			s.fail(fmt.Errorf("tainthub: send: %w", err))
			return
		}
	}
}

// readLoop pops the oldest unanswered group, reads its response frame, and
// distributes the replies.
func (s *session) readLoop() {
	for {
		var group []*call
		select {
		case <-s.done:
			return
		case group = <-s.inflight:
		}
		resp, err := s.parser.ReadResponse()
		if err != nil {
			s.fail(fmt.Errorf("tainthub: recv: %w", err))
			return
		}
		if !s.deliverGroup(group, resp) {
			return
		}
	}
}

func (s *session) deliverGroup(group []*call, resp codec.Response) bool {
	switch {
	case len(group) == 1 && resp.Batch == nil:
		if !echoMatches(group[0].req, resp) {
			s.fail(errors.New("tainthub: response correlation mismatch"))
			return false
		}
		group[0].deliver(resp)
	case resp.Batch != nil && len(resp.Batch) == len(group):
		for i := range group {
			if !echoMatches(group[i].req, resp.Batch[i]) {
				s.fail(errors.New("tainthub: response correlation mismatch"))
				return false
			}
		}
		for i, c := range group {
			c.deliver(resp.Batch[i])
		}
	case resp.Batch == nil && resp.Err != "":
		// The server refused the whole frame (oversized, undecodable);
		// every call aboard gets the refusal.
		for _, c := range group {
			c.deliver(resp)
		}
	default:
		s.fail(fmt.Errorf("tainthub: response shape mismatch (%d calls, %d replies)",
			len(group), len(resp.Batch)))
		return false
	}
	return true
}

// echoMatches cross-checks the server's ReqID echo against the call. A zero
// echo (zero-ReqID ops, error replies, legacy servers) is accepted — the
// FIFO order is then the only correlation, which is how the protocol worked
// before the echo existed.
func echoMatches(req codec.Request, resp codec.Response) bool {
	if resp.Client == 0 && resp.Req == 0 {
		return true
	}
	return resp.Client == req.Client && resp.Req == req.Req
}

// Client is a Hub backed by a remote Server. It is safe for concurrent
// use; concurrent calls are pipelined over one connection and coalesced
// into batch frames. Transport failures are retried with exponential
// backoff and a transparent reconnect; server-reported application errors
// are returned immediately.
type Client struct {
	addr string
	cfg  ClientConfig
	wire codec.Format

	obsRetries    *obs.Counter
	obsReconnects *obs.Counter
	obsFailures   *obs.Counter

	mu        sync.Mutex
	closed    bool
	sess      *session
	connected bool // a session existed before, so the next dial is a reconnect
}

var _ Hub = (*Client)(nil)

// Dial connects to a hub server with default hardening (see ClientConfig).
func Dial(addr string) (*Client, error) {
	return DialConfig(addr, ClientConfig{})
}

// DialConfig connects to a hub server with explicit tuning. The initial
// connection is attempted once, eagerly, so a bad address fails fast;
// later transport failures reconnect transparently inside the retry loop.
func DialConfig(addr string, cfg ClientConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	wire := cfg.Wire
	if wire == codec.FormatAuto {
		wire = codec.FormatBinary
	}
	c := &Client{addr: addr, cfg: cfg, wire: wire}
	if reg := cfg.Obs; reg != nil {
		c.obsRetries = reg.Counter("hub_rpc_retries_total")
		c.obsReconnects = reg.Counter("hub_reconnects_total")
		c.obsFailures = reg.Counter("hub_rpc_failures_total")
	}
	if _, err := c.session(); err != nil {
		return nil, err
	}
	return c, nil
}

// session returns the live session, dialing a fresh one if the previous
// died (or none exists yet).
func (c *Client) session() (*session, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errClientClosed
	}
	if c.sess != nil {
		select {
		case <-c.sess.done:
			c.sess = nil // dead; replace
		default:
			return c.sess, nil
		}
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("tainthub: dial %s: %w", c.addr, err)
	}
	s := &session{
		conn:     conn,
		parser:   codec.NewParser(c.wire, bufio.NewReaderSize(conn, 64<<10), defaultMaxFrame),
		emit:     codec.NewEmitter(c.wire, conn),
		sendq:    make(chan *call, c.cfg.MaxBatch),
		inflight: make(chan []*call, c.cfg.MaxInflight),
		done:     make(chan struct{}),
	}
	go s.writeLoop(c.cfg.MaxBatch, c.cfg.MaxBatchBytes)
	go s.readLoop()
	if c.connected {
		c.obsReconnects.Inc()
	}
	c.connected = true
	c.sess = s
	return s, nil
}

// Close closes the connection. It is idempotent; RPCs issued afterwards
// fail without reconnecting.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.sess != nil {
		c.sess.fail(errClientClosed)
		c.sess = nil
	}
	return nil
}

// backoff returns the sleep before retry number `attempt` (1-based):
// exponential from BackoffBase, capped at BackoffMax, with ±50% jitter.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BackoffBase << uint(attempt-1)
	if d <= 0 || d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

func (c *Client) roundTrip(req codec.Request) (codec.Response, error) {
	var lastErr error
	var retryAfter time.Duration
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.obsRetries.Inc()
			d := c.backoff(attempt)
			if retryAfter > d {
				d = retryAfter
			}
			time.Sleep(d)
			retryAfter = 0
		}
		s, err := c.session()
		if err != nil {
			if errors.Is(err, errClientClosed) {
				return codec.Response{}, err
			}
			lastErr = err
			continue
		}
		resp, err := c.attempt(s, req)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.Busy {
			// The server is over its pending limits: honor its retry-after
			// hint (the connection is fine, so no reconnect).
			retryAfter = time.Duration(resp.RetryAfterMs) * time.Millisecond
			lastErr = &BusyError{NS: req.NS, RetryAfter: retryAfter}
			continue
		}
		if resp.Err != "" {
			// The server processed the request and reported an application
			// error; retrying would only repeat it. Payload refusals come
			// back as the typed permanent error.
			if resp.Code == codec.CodePayload {
				return codec.Response{}, &codec.PayloadError{Reason: resp.Err}
			}
			return codec.Response{}, errors.New("tainthub: " + resp.Err)
		}
		return resp, nil
	}
	c.obsFailures.Inc()
	return codec.Response{}, fmt.Errorf("tainthub: rpc failed after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// attempt runs one try of the RPC through a session: enqueue the call, wait
// for its response, the session's death, or the RPC deadline — whichever
// comes first. On death or timeout the caller claims the call back (unless
// a response won the race) and the retry loop takes over.
func (c *Client) attempt(s *session, req codec.Request) (codec.Response, error) {
	cl := &call{req: req, done: make(chan struct{})}
	select {
	case s.sendq <- cl:
	case <-s.done:
		return codec.Response{}, s.failure()
	}
	timer := time.NewTimer(c.cfg.RPCTimeout)
	defer timer.Stop()
	select {
	case <-cl.done:
		return cl.resp, nil
	case <-timer.C:
		s.fail(fmt.Errorf("tainthub: rpc timed out after %v", c.cfg.RPCTimeout))
	case <-s.done:
	}
	if cl.claim() {
		return codec.Response{}, s.failure()
	}
	// A response was delivered concurrently with the session dying; take it.
	<-cl.done
	return cl.resp, nil
}

// Publish implements Hub. The ReqID rides every retry of the same logical
// publish, so the server's reply cache makes re-sends idempotent.
func (c *Client) Publish(id ReqID, k Key, seq uint64, masks []uint8) error {
	_, err := c.roundTrip(codec.Request{
		Op: codec.OpPublish, Client: id.Client, Req: id.Seq,
		Src: k.Src, Dst: k.Dst, Tag: k.Tag, NS: k.NS, Seq: seq,
		Masks: masks,
	})
	return err
}

// Poll implements Hub. Because Poll is destructive, the ReqID is what
// keeps a retry after a lost response from silently dropping taint: the
// server replays the original masks from its reply cache.
func (c *Client) Poll(id ReqID, k Key, seq uint64) ([]uint8, bool, error) {
	resp, err := c.roundTrip(codec.Request{
		Op: codec.OpPoll, Client: id.Client, Req: id.Seq,
		Src: k.Src, Dst: k.Dst, Tag: k.Tag, NS: k.NS, Seq: seq,
	})
	if err != nil {
		return nil, false, err
	}
	if !resp.Found {
		return nil, false, nil
	}
	return resp.Masks, true, nil
}

// Stats implements Hub.
func (c *Client) Stats() Stats {
	resp, err := c.roundTrip(codec.Request{Op: codec.OpStats})
	if err != nil || resp.Stats == nil {
		return Stats{}
	}
	return *resp.Stats
}
