package tainthub

import (
	"bufio"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"sync"
	"time"

	"chaser/internal/obs"
)

// The wire protocol is newline-delimited JSON over TCP: one request object
// per line, one response object per line. It is deliberately simple — the
// hub runs on the head node and handles a few messages per guest send/recv.

type request struct {
	Op     string `json:"op"` // "publish", "poll", "stats"
	Client uint64 `json:"client,omitempty"`
	Req    uint64 `json:"req,omitempty"`
	Src    int    `json:"src"`
	Dst    int    `json:"dst"`
	Tag    int    `json:"tag"`
	NS     int    `json:"ns,omitempty"`
	Seq    uint64 `json:"seq"`
	Masks  string `json:"masks,omitempty"` // base64
}

type response struct {
	OK           bool   `json:"ok"`
	Found        bool   `json:"found,omitempty"`
	Masks        string `json:"masks,omitempty"`
	Stats        *Stats `json:"stats,omitempty"`
	Busy         bool   `json:"busy,omitempty"` // server over limits; retry after RetryAfterMs
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
	Err          string `json:"err,omitempty"`
}

// FrameError reports a request line exceeding the server's frame limit —
// the wire-level DoS guard that rejects an oversized Publish before its
// payload is even buffered. Unlike a JSON syntax error it is recoverable:
// the server discards the rest of the line and keeps the connection.
type FrameError struct {
	Size  int // bytes seen before giving up
	Limit int
}

func (e *FrameError) Error() string {
	return fmt.Sprintf("tainthub: request frame over %d bytes (saw %d)", e.Limit, e.Size)
}

// readFrame reads one newline-terminated frame, failing with *FrameError
// once more than limit bytes accumulate without a newline.
func readFrame(br *bufio.Reader, limit int) ([]byte, error) {
	var buf []byte
	for {
		chunk, err := br.ReadSlice('\n')
		buf = append(buf, chunk...)
		if len(buf) > limit {
			return nil, &FrameError{Size: len(buf), Limit: limit}
		}
		switch err {
		case nil:
			return buf, nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			if len(buf) > 0 {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, io.EOF
		default:
			return nil, err
		}
	}
}

// discardFrame skips the remainder of an oversized line so the connection
// can resync on the next frame. It gives up (returning false) after max
// further bytes — a peer streaming garbage without newlines gets dropped.
func discardFrame(br *bufio.Reader, max int) bool {
	var n int
	for {
		chunk, err := br.ReadSlice('\n')
		n += len(chunk)
		if err == nil {
			return true
		}
		if err != bufio.ErrBufferFull || n > max {
			return false
		}
	}
}

// decodeRequest reads and parses the next request frame from the stream,
// bounding the frame at limit bytes. It is the single entry point of the
// wire-protocol decoder — the fuzz target guaranteeing malformed frames
// surface as errors, never panics.
func decodeRequest(br *bufio.Reader, limit int) (request, error) {
	line, err := readFrame(br, limit)
	if err != nil {
		return request{}, err
	}
	var req request
	if err := json.Unmarshal(line, &req); err != nil {
		return request{}, err
	}
	return req, nil
}

// serverObs bundles the server's instruments; nil when no registry is
// attached.
type serverObs struct {
	requests  *obs.Counter
	malformed *obs.Counter
	publishes *obs.Counter
	polls     *obs.Counter
	pollHits  *obs.Counter
	pollMiss  *obs.Counter
	idleDrops *obs.Counter
	rpcLat    *obs.Histogram
}

func newServerObs(reg *obs.Registry) *serverObs {
	if reg == nil {
		return nil
	}
	return &serverObs{
		requests:  reg.Counter("tainthub_requests_total"),
		malformed: reg.Counter("tainthub_malformed_requests_total"),
		publishes: reg.Counter("tainthub_publishes_total"),
		polls:     reg.Counter("tainthub_polls_total"),
		pollHits:  reg.Counter("tainthub_poll_hits_total"),
		pollMiss:  reg.Counter("tainthub_poll_misses_total"),
		idleDrops: reg.Counter("tainthub_idle_disconnects_total"),
		rpcLat:    reg.Histogram("tainthub_rpc_seconds", obs.LatencyBuckets...),
	}
}

// ServerConfig tunes a hub server beyond the defaults.
type ServerConfig struct {
	// Obs, when non-nil, receives server telemetry.
	Obs *obs.Registry
	// IdleTimeout disconnects a client whose connection stays silent for
	// this long (0 = never). Dead campaign workers then cannot pin server
	// resources forever.
	IdleTimeout time.Duration
	// MaxFrameBytes caps one request line; larger frames are rejected with
	// *FrameError before the payload is buffered (default 96 MiB — a 64 MiB
	// mask payload base64-expands to ~85 MiB plus JSON overhead).
	MaxFrameBytes int
	// Logf overrides the server's logger (nil = log.Printf).
	Logf func(format string, args ...any)
}

// defaultMaxFrame bounds a request line when ServerConfig.MaxFrameBytes
// is zero.
const defaultMaxFrame = 96 << 20

// Server exposes a hub over TCP.
type Server struct {
	hub      Hub
	ln       net.Listener
	wg       sync.WaitGroup
	obs      *serverObs
	idle     time.Duration
	maxFrame int
	logf     func(format string, args ...any)

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// NewServer starts serving hub on addr (e.g. "127.0.0.1:0"). Use Addr to
// discover the bound address.
func NewServer(hub Hub, addr string) (*Server, error) {
	return NewServerConfig(hub, addr, ServerConfig{})
}

// NewServerObs is NewServer with a metrics registry attached (nil disables
// telemetry).
func NewServerObs(hub Hub, addr string, reg *obs.Registry) (*Server, error) {
	return NewServerConfig(hub, addr, ServerConfig{Obs: reg})
}

// NewServerConfig is NewServer with full tuning.
func NewServerConfig(hub Hub, addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tainthub: listen: %w", err)
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	maxFrame := cfg.MaxFrameBytes
	if maxFrame <= 0 {
		maxFrame = defaultMaxFrame
	}
	s := &Server{
		hub:      hub,
		ln:       ln,
		obs:      newServerObs(cfg.Obs),
		idle:     cfg.IdleTimeout,
		maxFrame: maxFrame,
		logf:     logf,
		conns:    make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server: it stops accepting, wakes every connection
// blocked in a read, lets in-flight requests finish and their responses
// flush, and waits for all serve goroutines to drain. It is idempotent and
// safe to call concurrently.
//
// The drain is graceful on purpose: a request the server has processed
// always gets its response delivered, so a retrying client never re-issues
// an RPC whose side effect (a consumed poll) already happened.
func (s *Server) Close() error {
	s.mu.Lock()
	wasClosed := s.closed
	s.closed = true
	for c := range s.conns {
		// Wake blocked decodes without closing the connection mid-write;
		// each serve goroutine closes its own connection as it drains.
		_ = c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	var err error
	if !wasClosed {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

// Abort stops the server abruptly: connections are hard-closed with
// responses potentially unsent, exactly as a process crash would leave
// them. Clients see transport errors and retry against the replacement
// server, which is what the exactly-once reply cache exists for. Tests
// and crash drills use it; production shutdown wants Close.
func (s *Server) Abort() {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	_ = s.ln.Close()
	s.wg.Wait()
}

func (s *Server) closing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	br := bufio.NewReader(conn)
	enc := json.NewEncoder(conn)
	for {
		if s.closing() {
			return
		}
		if s.idle > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.idle))
		}
		req, err := decodeRequest(br, s.maxFrame)
		if err != nil {
			var fe *FrameError
			switch {
			case s.closing():
				// Shutdown woke the read; drain silently.
			case isTimeout(err):
				if s.obs != nil {
					s.obs.idleDrops.Inc()
				}
				s.logf("tainthub: disconnecting idle client %s", conn.RemoteAddr())
			case errors.As(err, &fe):
				// Oversized frame: count it with the malformed requests,
				// refuse it, but keep the connection — line framing lets us
				// resync by discarding the rest of the line (bounded, so a
				// newline-free garbage stream still gets dropped).
				if s.obs != nil {
					s.obs.malformed.Inc()
				}
				s.logf("tainthub: oversized request from %s: %v", conn.RemoteAddr(), err)
				if encErr := enc.Encode(response{Err: err.Error()}); encErr == nil && discardFrame(br, 4*s.maxFrame) {
					continue
				}
			case isMalformed(err):
				// A garbage request is a signal (corrupted client, stray
				// connection, protocol drift) — count it, log it, tell the
				// peer, and drop the connection: the decoder's framing is
				// unrecoverable after a syntax error.
				if s.obs != nil {
					s.obs.malformed.Inc()
				}
				s.logf("tainthub: malformed request from %s: %v", conn.RemoteAddr(), err)
				_ = enc.Encode(response{Err: "malformed request: " + err.Error()})
			}
			return
		}
		resp := s.handle(req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// isMalformed distinguishes a garbage request from an ordinary disconnect
// (EOF, closed connection, reset).
func isMalformed(err error) bool {
	var syn *json.SyntaxError
	var typ *json.UnmarshalTypeError
	return errors.As(err, &syn) || errors.As(err, &typ) || errors.Is(err, io.ErrUnexpectedEOF)
}

// isTimeout reports whether err is a network deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func (s *Server) handle(req request) response {
	var t0 time.Time
	if s.obs != nil {
		s.obs.requests.Inc()
		t0 = time.Now()
	}
	resp := s.dispatch(req)
	if s.obs != nil {
		s.obs.rpcLat.Observe(time.Since(t0).Seconds())
	}
	return resp
}

// hubError maps a hub-level error onto the wire: a *BusyError becomes a
// retryable busy response carrying the backoff hint, a *PayloadError
// counts as a malformed request (the DoS-guard satellite), anything else
// is a plain application error.
func (s *Server) hubError(err error) response {
	var be *BusyError
	if errors.As(err, &be) {
		return response{Busy: true, RetryAfterMs: int64(be.RetryAfter / time.Millisecond), Err: ""}
	}
	var pe *PayloadError
	if errors.As(err, &pe) {
		if s.obs != nil {
			s.obs.malformed.Inc()
		}
		s.logf("tainthub: rejected oversized payload: %v", pe)
	}
	return response{Err: err.Error()}
}

func (s *Server) dispatch(req request) response {
	k := Key{Src: req.Src, Dst: req.Dst, Tag: req.Tag, NS: req.NS}
	id := ReqID{Client: req.Client, Seq: req.Req}
	switch req.Op {
	case "publish":
		masks, err := base64.StdEncoding.DecodeString(req.Masks)
		if err != nil {
			if s.obs != nil {
				s.obs.malformed.Inc()
			}
			s.logf("tainthub: publish with undecodable masks (src=%d dst=%d tag=%d)", req.Src, req.Dst, req.Tag)
			return response{Err: "bad masks encoding"}
		}
		if err := s.hub.Publish(id, k, req.Seq, masks); err != nil {
			return s.hubError(err)
		}
		if s.obs != nil {
			s.obs.publishes.Inc()
		}
		return response{OK: true}
	case "poll":
		masks, found, err := s.hub.Poll(id, k, req.Seq)
		if err != nil {
			return s.hubError(err)
		}
		if s.obs != nil {
			s.obs.polls.Inc()
			if found {
				s.obs.pollHits.Inc()
			} else {
				s.obs.pollMiss.Inc()
			}
		}
		return response{OK: true, Found: found, Masks: base64.StdEncoding.EncodeToString(masks)}
	case "stats":
		st := s.hub.Stats()
		return response{OK: true, Stats: &st}
	}
	if s.obs != nil {
		s.obs.malformed.Inc()
	}
	s.logf("tainthub: unknown op %q", req.Op)
	return response{Err: fmt.Sprintf("unknown op %q", req.Op)}
}

// ClientConfig tunes the hardened TCP hub client. The zero value selects
// sane production defaults; see the field comments.
type ClientConfig struct {
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// RPCTimeout bounds one request/response round trip; a stalled or dead
	// server surfaces as an error instead of hanging the caller forever
	// (default 10s).
	RPCTimeout time.Duration
	// MaxAttempts is the total number of tries per RPC including the
	// first; 1 disables retry (default 4).
	MaxAttempts int
	// BackoffBase is the delay before the first retry; each further retry
	// doubles it, capped at BackoffMax, with ±50% jitter so a fleet of
	// campaign workers does not thundering-herd a restarting hub
	// (defaults 10ms / 1s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Obs, when non-nil, receives client telemetry: hub_rpc_retries_total,
	// hub_reconnects_total, hub_rpc_failures_total.
	Obs *obs.Registry
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 10 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = time.Second
	}
	return c
}

// Client is a Hub backed by a remote Server. It is safe for concurrent
// use; requests are serialized over one connection. Transport failures are
// retried with exponential backoff and a transparent reconnect;
// server-reported application errors are returned immediately.
type Client struct {
	addr string
	cfg  ClientConfig

	obsRetries    *obs.Counter
	obsReconnects *obs.Counter
	obsFailures   *obs.Counter

	mu     sync.Mutex
	closed bool
	conn   net.Conn
	dec    *json.Decoder
	enc    *json.Encoder
}

var _ Hub = (*Client)(nil)

// Dial connects to a hub server with default hardening (see ClientConfig).
func Dial(addr string) (*Client, error) {
	return DialConfig(addr, ClientConfig{})
}

// DialConfig connects to a hub server with explicit tuning. The initial
// connection is attempted once, eagerly, so a bad address fails fast;
// later transport failures reconnect transparently inside the retry loop.
func DialConfig(addr string, cfg ClientConfig) (*Client, error) {
	c := &Client{addr: addr, cfg: cfg.withDefaults()}
	if reg := c.cfg.Obs; reg != nil {
		c.obsRetries = reg.Counter("hub_rpc_retries_total")
		c.obsReconnects = reg.Counter("hub_reconnects_total")
		c.obsFailures = reg.Counter("hub_rpc_failures_total")
	}
	if err := c.connectLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// connectLocked (re)establishes the connection. Callers hold c.mu except
// during construction.
func (c *Client) connectLocked() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("tainthub: dial %s: %w", c.addr, err)
	}
	c.conn = conn
	c.dec = json.NewDecoder(bufio.NewReader(conn))
	c.enc = json.NewEncoder(conn)
	return nil
}

// dropLocked tears down a broken connection so the next attempt redials.
func (c *Client) dropLocked() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
		c.dec = nil
		c.enc = nil
	}
}

// Close closes the connection. It is idempotent; RPCs issued afterwards
// fail without reconnecting.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.dropLocked()
	return nil
}

// backoff returns the sleep before retry number `attempt` (1-based):
// exponential from BackoffBase, capped at BackoffMax, with ±50% jitter.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BackoffBase << uint(attempt-1)
	if d <= 0 || d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

func (c *Client) roundTrip(req request) (response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	var retryAfter time.Duration
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if c.closed {
			return response{}, errors.New("tainthub: client closed")
		}
		if attempt > 0 {
			c.obsRetries.Inc()
			d := c.backoff(attempt)
			if retryAfter > d {
				d = retryAfter
			}
			time.Sleep(d)
			retryAfter = 0
		}
		if c.conn == nil {
			if err := c.connectLocked(); err != nil {
				lastErr = err
				continue
			}
			c.obsReconnects.Inc()
		}
		resp, err := c.attempt(req)
		if err != nil {
			lastErr = err
			c.dropLocked()
			continue
		}
		if resp.Busy {
			// The server is over its pending limits: honor its retry-after
			// hint (the connection is fine, so no reconnect).
			retryAfter = time.Duration(resp.RetryAfterMs) * time.Millisecond
			lastErr = &BusyError{NS: req.NS, RetryAfter: retryAfter}
			continue
		}
		if resp.Err != "" {
			// The server processed the request and reported an application
			// error; retrying would only repeat it.
			return response{}, errors.New("tainthub: " + resp.Err)
		}
		return resp, nil
	}
	c.obsFailures.Inc()
	return response{}, fmt.Errorf("tainthub: rpc failed after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// attempt performs one request/response exchange under the RPC deadline.
func (c *Client) attempt(req request) (response, error) {
	_ = c.conn.SetDeadline(time.Now().Add(c.cfg.RPCTimeout))
	if err := c.enc.Encode(req); err != nil {
		return response{}, fmt.Errorf("tainthub: send: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return response{}, fmt.Errorf("tainthub: recv: %w", err)
	}
	_ = c.conn.SetDeadline(time.Time{})
	return resp, nil
}

// Publish implements Hub. The ReqID rides every retry of the same logical
// publish, so the server's reply cache makes re-sends idempotent.
func (c *Client) Publish(id ReqID, k Key, seq uint64, masks []uint8) error {
	_, err := c.roundTrip(request{
		Op: "publish", Client: id.Client, Req: id.Seq,
		Src: k.Src, Dst: k.Dst, Tag: k.Tag, NS: k.NS, Seq: seq,
		Masks: base64.StdEncoding.EncodeToString(masks),
	})
	return err
}

// Poll implements Hub. Because Poll is destructive, the ReqID is what
// keeps a retry after a lost response from silently dropping taint: the
// server replays the original masks from its reply cache.
func (c *Client) Poll(id ReqID, k Key, seq uint64) ([]uint8, bool, error) {
	resp, err := c.roundTrip(request{
		Op: "poll", Client: id.Client, Req: id.Seq,
		Src: k.Src, Dst: k.Dst, Tag: k.Tag, NS: k.NS, Seq: seq,
	})
	if err != nil {
		return nil, false, err
	}
	if !resp.Found {
		return nil, false, nil
	}
	masks, err := base64.StdEncoding.DecodeString(resp.Masks)
	if err != nil {
		return nil, false, fmt.Errorf("tainthub: bad masks in response: %w", err)
	}
	return masks, true, nil
}

// Stats implements Hub.
func (c *Client) Stats() Stats {
	resp, err := c.roundTrip(request{Op: "stats"})
	if err != nil || resp.Stats == nil {
		return Stats{}
	}
	return *resp.Stats
}
