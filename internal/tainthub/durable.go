package tainthub

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"chaser/internal/obs"
	"chaser/internal/tainthub/codec"
)

// Durable is a Local hub whose every mutation is written ahead to a log,
// with periodic snapshots bounding replay time and disk use. A Durable
// hub killed with SIGKILL and reopened on the same path recovers the
// exact pending-taint state and reply caches it had, so an in-flight
// campaign's retried RPCs still dedup correctly against the reborn
// process.
//
// Recovery protocol. The snapshot at path+".snap" carries generation S;
// the WAL header carries generation W. A snapshot written at generation S
// always starts a fresh WAL with header S+1, so on open:
//
//	W == S+1 → normal: restore snapshot, replay WAL, truncate its torn tail
//	W <= S   → stale WAL from before the latest snapshot survived a crash
//	           between rename(snap) and truncate(wal): ignore it
//	W >  S+1 → the snapshot pairing this WAL was lost: refuse (CorruptError)
//	no WAL / torn header → restore snapshot alone, start WAL fresh at S+1
type Durable struct {
	mu     sync.Mutex
	st     store
	path   string // WAL path; snapshot lives at path+".snap"
	w      walWriter
	gen    uint64 // generation of the current WAL
	closed bool

	walRecords *obs.Counter // tainthub_wal_records_total
	walBytes   *obs.Counter // tainthub_wal_bytes_total
	snapshots  *obs.Counter // tainthub_wal_snapshots_total

	// Replayed / RecoveredBytes describe the last open, for operator logs.
	recoveredRecords int
}

var _ Hub = (*Durable)(nil)

// DurableConfig configures OpenDurable. The zero value is usable.
type DurableConfig struct {
	Limits Limits
	// Obs, when set, receives tainthub_wal_records_total,
	// tainthub_wal_bytes_total, tainthub_wal_snapshots_total,
	// tainthub_replayed_total and the shared hub counters.
	Obs *obs.Registry
}

// snapshot records. Field names are part of the legacy gob on-disk format;
// the current format encodes them with the codec package's varint/RLE
// primitives.
type snapshotRec struct {
	Gen     uint64
	Stats   Stats
	Entries []snapEntryRec
	Clients []snapClientRec
}

type snapEntryRec struct {
	K     Key
	Seq   uint64
	Masks []uint8
	Stamp int64
}

type snapClientRec struct {
	ID      uint64
	LastUse int64
	Reqs    []snapReplyRec
}

type snapReplyRec struct {
	Req   uint64
	Masks []uint8
	Found bool
}

const (
	snapMagicGob = 0x50414e43 // "CNAP" little-endian: legacy gob payload
	snapMagic    = 0x32504e43 // "CNP2" little-endian: versioned binary payload
	snapVersion  = 1          // of the binary payload layout
)

// encodeSnapshotPayload packs a snapshot with the codec primitives:
// varint-packed fields, run-length-encoded masks — the same encoding the
// wire and the WAL use.
func encodeSnapshotPayload(snap *snapshotRec) []byte {
	b := codec.AppendUvarint(nil, snap.Gen)
	st := snap.Stats
	for _, v := range []uint64{st.Published, st.Polls, st.Hits, uint64(st.Pending), st.Evicted, st.DedupHits, st.Replayed} {
		b = codec.AppendUvarint(b, v)
	}
	b = codec.AppendUvarint(b, uint64(len(snap.Entries)))
	for _, e := range snap.Entries {
		b = codec.AppendSvarint(b, int64(e.K.Src))
		b = codec.AppendSvarint(b, int64(e.K.Dst))
		b = codec.AppendSvarint(b, int64(e.K.Tag))
		b = codec.AppendSvarint(b, int64(e.K.NS))
		b = codec.AppendUvarint(b, e.Seq)
		b = codec.AppendSvarint(b, e.Stamp)
		b = codec.AppendMasks(b, e.Masks)
	}
	b = codec.AppendUvarint(b, uint64(len(snap.Clients)))
	for _, c := range snap.Clients {
		b = codec.AppendUvarint(b, c.ID)
		b = codec.AppendSvarint(b, c.LastUse)
		b = codec.AppendUvarint(b, uint64(len(c.Reqs)))
		for _, r := range c.Reqs {
			b = codec.AppendUvarint(b, r.Req)
			if r.Found {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
			b = codec.AppendMasks(b, r.Masks)
		}
	}
	return b
}

func decodeSnapshotPayload(b []byte) (*snapshotRec, error) {
	var snap snapshotRec
	var err error
	if snap.Gen, b, err = codec.ConsumeUvarint(b); err != nil {
		return nil, err
	}
	var pending uint64
	stats := []*uint64{
		&snap.Stats.Published, &snap.Stats.Polls, &snap.Stats.Hits, &pending,
		&snap.Stats.Evicted, &snap.Stats.DedupHits, &snap.Stats.Replayed,
	}
	for _, f := range stats {
		if *f, b, err = codec.ConsumeUvarint(b); err != nil {
			return nil, err
		}
	}
	snap.Stats.Pending = int(pending)
	n, b, err := codec.ConsumeUvarint(b)
	if err != nil || n > maxSnapItems {
		return nil, fmt.Errorf("entry count: %w", orCorrupt(err))
	}
	snap.Entries = make([]snapEntryRec, 0, n)
	for i := uint64(0); i < n; i++ {
		var e snapEntryRec
		key := []*int{&e.K.Src, &e.K.Dst, &e.K.Tag, &e.K.NS}
		for _, f := range key {
			var v int64
			if v, b, err = codec.ConsumeSvarint(b); err != nil {
				return nil, err
			}
			*f = int(v)
		}
		if e.Seq, b, err = codec.ConsumeUvarint(b); err != nil {
			return nil, err
		}
		if e.Stamp, b, err = codec.ConsumeSvarint(b); err != nil {
			return nil, err
		}
		if e.Masks, b, err = codec.ConsumeMasks(b, maxWALPayload); err != nil {
			return nil, err
		}
		snap.Entries = append(snap.Entries, e)
	}
	if n, b, err = codec.ConsumeUvarint(b); err != nil || n > maxSnapItems {
		return nil, fmt.Errorf("client count: %w", orCorrupt(err))
	}
	snap.Clients = make([]snapClientRec, 0, n)
	for i := uint64(0); i < n; i++ {
		var c snapClientRec
		if c.ID, b, err = codec.ConsumeUvarint(b); err != nil {
			return nil, err
		}
		if c.LastUse, b, err = codec.ConsumeSvarint(b); err != nil {
			return nil, err
		}
		var nr uint64
		if nr, b, err = codec.ConsumeUvarint(b); err != nil || nr > maxSnapItems {
			return nil, fmt.Errorf("reply count: %w", orCorrupt(err))
		}
		c.Reqs = make([]snapReplyRec, 0, nr)
		for j := uint64(0); j < nr; j++ {
			var r snapReplyRec
			if r.Req, b, err = codec.ConsumeUvarint(b); err != nil {
				return nil, err
			}
			if len(b) < 1 {
				return nil, errors.New("short reply record")
			}
			r.Found = b[0] != 0
			b = b[1:]
			if r.Masks, b, err = codec.ConsumeMasks(b, maxWALPayload); err != nil {
				return nil, err
			}
			c.Reqs = append(c.Reqs, r)
		}
		snap.Clients = append(snap.Clients, c)
	}
	if len(b) != 0 {
		return nil, errors.New("trailing bytes after snapshot payload")
	}
	return &snap, nil
}

// maxSnapItems bounds declared collection sizes before allocation.
const maxSnapItems = 1 << 26

// orCorrupt keeps error wrapping total when a count check fails on a
// bounds violation rather than a decode error.
func orCorrupt(err error) error {
	if err != nil {
		return err
	}
	return errors.New("over limit")
}

// writeSnapshot atomically replaces path with the encoded snapshot:
// magic + version + u32 length + u32 CRC + binary payload, written to a
// temp file, fsynced, and renamed over the target. The version byte is the
// refusal hook: a future layout change bumps it, and old code refuses the
// file with *CorruptError instead of silently misdecoding it.
func writeSnapshot(path string, snap *snapshotRec) error {
	payload := encodeSnapshotPayload(snap)
	hdr := make([]byte, 13)
	le.PutUint32(hdr[0:4], snapMagic)
	hdr[4] = snapVersion
	le.PutUint32(hdr[5:9], uint32(len(payload)))
	le.PutUint32(hdr[9:13], crc32.ChecksumIEEE(payload))

	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(hdr); err != nil {
		tmp.Close()
		return err
	}
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// loadSnapshot reads a snapshot; a missing file returns (nil, nil). Any
// structural damage is a *CorruptError — a half-written snapshot cannot
// exist (writes go through rename), so damage means real corruption and
// silently starting empty would resurrect consumed taint. Both the current
// versioned binary format and the legacy gob format are readable; an
// unknown version byte is refused.
func loadSnapshot(path string) (*snapshotRec, error) {
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(raw) >= 4 && le.Uint32(raw[0:4]) == snapMagicGob {
		return loadSnapshotGob(path, raw)
	}
	if len(raw) < 13 || le.Uint32(raw[0:4]) != snapMagic {
		return nil, &CorruptError{File: path, Reason: "bad snapshot magic"}
	}
	if v := raw[4]; v != snapVersion {
		return nil, &CorruptError{File: path, Reason: fmt.Sprintf("unsupported snapshot version %d (have %d)", v, snapVersion)}
	}
	n := le.Uint32(raw[5:9])
	if int(n) != len(raw)-13 {
		return nil, &CorruptError{File: path, Reason: fmt.Sprintf("snapshot length %d != payload %d", n, len(raw)-13)}
	}
	payload := raw[13:]
	if crc32.ChecksumIEEE(payload) != le.Uint32(raw[9:13]) {
		return nil, &CorruptError{File: path, Reason: "snapshot checksum mismatch"}
	}
	snap, err := decodeSnapshotPayload(payload)
	if err != nil {
		return nil, &CorruptError{File: path, Reason: "snapshot decode: " + err.Error()}
	}
	return snap, nil
}

// loadSnapshotGob reads the pre-codec format: gob payload behind a
// magic + u32 length + u32 CRC header, with no version byte — the gap
// that motivated the versioned format.
func loadSnapshotGob(path string, raw []byte) (*snapshotRec, error) {
	if len(raw) < 12 {
		return nil, &CorruptError{File: path, Reason: "truncated snapshot header"}
	}
	n := le.Uint32(raw[4:8])
	if int(n) != len(raw)-12 {
		return nil, &CorruptError{File: path, Reason: fmt.Sprintf("snapshot length %d != payload %d", n, len(raw)-12)}
	}
	payload := raw[12:]
	if crc32.ChecksumIEEE(payload) != le.Uint32(raw[8:12]) {
		return nil, &CorruptError{File: path, Reason: "snapshot checksum mismatch"}
	}
	var snap snapshotRec
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return nil, &CorruptError{File: path, Reason: "snapshot decode: " + err.Error()}
	}
	return &snap, nil
}

// OpenDurable opens (or creates) a durable hub persisted at path (the
// write-ahead log; the paired snapshot lives at path+".snap"). Existing
// state is recovered per the generation protocol above. Structural
// corruption — as opposed to an ordinary torn tail — returns *CorruptError.
func OpenDurable(path string, cfg DurableConfig) (*Durable, error) {
	d := &Durable{
		st:   newStore(cfg.Limits, newHubObs(cfg.Obs)),
		path: path,
	}
	if cfg.Obs != nil {
		d.walRecords = cfg.Obs.Counter("tainthub_wal_records_total")
		d.walBytes = cfg.Obs.Counter("tainthub_wal_bytes_total")
		d.snapshots = cfg.Obs.Counter("tainthub_wal_snapshots_total")
	}

	snap, err := loadSnapshot(path + ".snap")
	if err != nil {
		return nil, err
	}
	var snapGen uint64
	if snap != nil {
		d.st.restore(snap)
		snapGen = snap.Gen
	}

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	// First pass: header + offsets only, so a stale WAL is never applied.
	walGen, walVer, hasHeader, goodOff, err := scanWAL(f, nil)
	if err != nil {
		f.Close()
		return nil, err
	}
	switch {
	case !hasHeader:
		// Empty or torn-before-header WAL: nothing to replay.
		goodOff = 0
	case walGen == snapGen+1:
		// Normal pairing: replay the log on top of the snapshot. Entries
		// keep their original publish stamps (so orphans re-evict after
		// recovery), but reply caches are touched at recovery time so an
		// in-flight client's retries still dedup.
		now := time.Now().UnixNano()
		var replayed int
		if _, _, _, _, err := scanWAL(f, func(m walMutation) {
			replayed++
			switch m.kind {
			case walRecPublish:
				d.st.applyPublish(m.k, m.seq, m.masks, m.stamp)
				d.st.remember(m.id, cachedReply{}, now)
			case walRecConsume:
				masks, _ := d.st.applyConsume(m.k, m.seq)
				d.st.remember(m.id, cachedReply{masks: masks, found: true}, now)
			}
		}); err != nil {
			f.Close()
			return nil, err
		}
		d.recoveredRecords = replayed
		d.st.stats.Replayed += uint64(replayed)
		if d.st.o != nil && replayed > 0 {
			d.st.o.replayed.Add(uint64(replayed))
		}
	case walGen <= snapGen:
		// Stale log from before the snapshot: drop it entirely.
		goodOff = 0
	default: // walGen > snapGen+1
		f.Close()
		return nil, &CorruptError{
			File:   path,
			Reason: fmt.Sprintf("wal generation %d but snapshot generation %d: missing snapshot", walGen, snapGen),
		}
	}

	// Truncate any torn/stale tail and position for appends.
	if err := f.Truncate(goodOff); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(goodOff, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	d.w = walWriter{f: f, off: goodOff}
	d.gen = snapGen + 1
	if goodOff == 0 {
		if _, err := d.w.append(encodeWALHeader(d.gen)); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	} else if walVer != walVersion {
		// The recovered log speaks an older record layout. Appends use the
		// current one, and a log must never mix versions — so fold the
		// replayed state into a fresh snapshot and rotate to a new log with
		// a current-version header.
		if err := d.snapshotLocked(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return d, nil
}

// RecoveredRecords reports how many WAL records were replayed when this
// hub was opened (for operator startup logs).
func (d *Durable) RecoveredRecords() int { return d.recoveredRecords }

var errHubClosed = errors.New("tainthub: durable hub is closed")

func (d *Durable) logMutation(payload []byte) error {
	n, err := d.w.append(payload)
	if err != nil {
		return err
	}
	if d.walRecords != nil {
		d.walRecords.Inc()
		d.walBytes.Add(uint64(n))
	}
	return nil
}

// Publish implements Hub: the record is in the WAL before the ack.
func (d *Durable) Publish(id ReqID, k Key, seq uint64, masks []uint8) error {
	now := time.Now().UnixNano()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errHubClosed
	}
	d.st.maybeSweep(now)
	if _, dup := d.st.dedup(id, now); dup {
		return nil
	}
	if err := d.st.checkPublish(k, masks); err != nil {
		return err
	}
	if err := d.logMutation(encodeWALPublish(id, k, seq, now, masks)); err != nil {
		return err
	}
	d.st.applyPublish(k, seq, masks, now)
	d.st.remember(id, cachedReply{}, now)
	return nil
}

// Poll implements Hub: a consuming poll is in the WAL before the masks
// are returned; misses are not logged (a replayed retry re-polling the
// then-current state is a valid linearization).
func (d *Durable) Poll(id ReqID, k Key, seq uint64) ([]uint8, bool, error) {
	now := time.Now().UnixNano()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, false, errHubClosed
	}
	d.st.maybeSweep(now)
	if rep, dup := d.st.dedup(id, now); dup {
		return rep.masks, rep.found, nil
	}
	if _, present := d.st.entries[entryKey{k, seq}]; !present {
		d.st.stats.Polls++
		return nil, false, nil
	}
	if err := d.logMutation(encodeWALConsume(id, k, seq)); err != nil {
		return nil, false, err
	}
	masks, _ := d.st.applyConsume(k, seq)
	d.st.remember(id, cachedReply{masks: masks, found: true}, now)
	return masks, true, nil
}

// Stats implements Hub.
func (d *Durable) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.st.snapshotStats()
}

// Sweep evicts entries and reply caches older than the configured TTL.
func (d *Durable) Sweep() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0
	}
	return d.st.sweep(time.Now().UnixNano())
}

// WALSize returns the current log size in bytes (exported as the
// tainthub_wal_size_bytes gauge by cmd/tainthub).
func (d *Durable) WALSize() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.w.off
}

// Snapshot persists the full state to path+".snap" and truncates the WAL,
// bounding recovery time. The lock is held across the entire sequence —
// encode, rename, truncate, new header — so a crash at any point leaves
// either the old (snapshot, log) pair or the new one, never a mix the
// generation check can't classify.
func (d *Durable) Snapshot() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errHubClosed
	}
	return d.snapshotLocked()
}

func (d *Durable) snapshotLocked() error {
	d.st.sweep(time.Now().UnixNano())
	if err := writeSnapshot(d.path+".snap", d.st.export(d.gen)); err != nil {
		return err
	}
	// The snapshot at generation d.gen covers everything in the log; a
	// crash before the truncate leaves a WAL with gen <= snapshot gen,
	// which recovery ignores as stale.
	if err := d.w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := d.w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	d.w.off = 0
	d.gen++
	if _, err := d.w.append(encodeWALHeader(d.gen)); err != nil {
		return err
	}
	if err := d.w.f.Sync(); err != nil {
		return err
	}
	if d.snapshots != nil {
		d.snapshots.Inc()
	}
	return nil
}

// Close takes a final snapshot and releases the log. The hub rejects all
// operations afterwards.
func (d *Durable) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	err := d.snapshotLocked()
	d.closed = true
	if cerr := d.w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abandon releases the log WITHOUT a final snapshot, leaving the on-disk
// state exactly as a kill -9 would. It exists so tests and crash drills
// can exercise WAL replay deterministically.
func (d *Durable) Abandon() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	return d.w.f.Close()
}
