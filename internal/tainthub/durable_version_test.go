package tainthub

import (
	"bytes"
	"encoding/gob"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestSnapshotUnknownVersionRefused is the satellite-3 regression test:
// the snapshot header carries a format-version byte, and a version this
// build does not know must be refused with *CorruptError — silently
// misdecoding a future layout would resurrect or drop consumed taint.
func TestSnapshotUnknownVersionRefused(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hub.wal")
	d, err := OpenDurable(path, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Publish(ReqID{Client: 1, Seq: 1}, Key{Src: 0, Dst: 1, Tag: 2}, 0, []uint8{0xaa}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	snapPath := path + ".snap"
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if raw[4] != snapVersion {
		t.Fatalf("snapshot version byte = %d, want %d", raw[4], snapVersion)
	}
	raw[4] = 99 // a future format this build has never heard of
	if err := os.WriteFile(snapPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenDurable(path, DurableConfig{})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("open with unknown snapshot version = %v, want *CorruptError", err)
	}
	if !strings.Contains(ce.Reason, "version 99") {
		t.Errorf("refusal reason %q does not name the offending version", ce.Reason)
	}
}

// TestLegacyGobSnapshotReadable: a snapshot written by the pre-codec gob
// format (magic "CNAP", no version byte) must still restore, so upgrading
// the binary does not orphan persisted campaign state.
func TestLegacyGobSnapshotReadable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hub.wal")

	now := time.Now().UnixNano()
	snap := &snapshotRec{
		Gen:   3,
		Stats: Stats{Published: 2, Polls: 1, Hits: 1, Pending: 1},
		Entries: []snapEntryRec{
			{K: Key{Src: 0, Dst: 1, Tag: 2}, Seq: 5, Masks: []uint8{0xaa, 0x55}, Stamp: now},
		},
		Clients: []snapClientRec{
			{ID: 7, LastUse: now, Reqs: []snapReplyRec{{Req: 4, Masks: []uint8{0xaa, 0x55}, Found: true}}},
		},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	payload := buf.Bytes()
	hdr := make([]byte, 12)
	le.PutUint32(hdr[0:4], snapMagicGob)
	le.PutUint32(hdr[4:8], uint32(len(payload)))
	le.PutUint32(hdr[8:12], crc32.ChecksumIEEE(payload))
	if err := os.WriteFile(path+".snap", append(hdr, payload...), 0o644); err != nil {
		t.Fatal(err)
	}

	d, err := OpenDurable(path, DurableConfig{})
	if err != nil {
		t.Fatalf("open over legacy gob snapshot: %v", err)
	}
	defer d.Close()
	// The restored entry must be pollable…
	masks, ok, err := d.Poll(ReqID{Client: 9, Seq: 1}, Key{Src: 0, Dst: 1, Tag: 2}, 5)
	if err != nil || !ok || len(masks) != 2 || masks[0] != 0xaa {
		t.Fatalf("poll restored entry = %v, %v, %v", masks, ok, err)
	}
	// …and the restored reply cache must still dedup the old client's retry.
	cached, found, err := d.Poll(ReqID{Client: 7, Seq: 4}, Key{Src: 99, Dst: 99, Tag: 99}, 0)
	if err != nil || !found || len(cached) != 2 {
		t.Fatalf("dedup from restored reply cache = %v, %v, %v", cached, found, err)
	}
}

// TestWALv1ReplayAndRotation: a version-1 WAL (fixed 8-byte field layout,
// pre-codec) must replay, and recovery must then rotate it — fold the
// state into a snapshot and restart the log with a current-version header —
// so current-version appends never land in an old-format log.
func TestWALv1ReplayAndRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hub.wal")

	frame := func(payload []byte) []byte {
		b := make([]byte, 8+len(payload))
		le.PutUint32(b[0:4], uint32(len(payload)))
		le.PutUint32(b[4:8], crc32.ChecksumIEEE(payload))
		copy(b[8:], payload)
		return b
	}
	// v1 header: kind, magic, version=1, gen=1 (no snapshot → first gen).
	hdr := make([]byte, 14)
	hdr[0] = walRecHeader
	le.PutUint32(hdr[1:5], walMagic)
	hdr[5] = 1
	le.PutUint64(hdr[6:14], 1)
	// v1 publish: fixed prefix, u64 stamp, raw masks.
	pub := make([]byte, walMutFixedV1+8, walMutFixedV1+8+2)
	pub[0] = walRecPublish
	le.PutUint64(pub[1:], 11)                                        // client
	le.PutUint64(pub[9:], 1)                                         // req
	le.PutUint64(pub[17:], 3)                                        // src
	le.PutUint64(pub[25:], 4)                                        // dst
	le.PutUint64(pub[33:], 5)                                        // tag
	le.PutUint64(pub[41:], 0)                                        // ns
	le.PutUint64(pub[49:], 6)                                        // seq
	le.PutUint64(pub[walMutFixedV1:], uint64(time.Now().UnixNano())) // stamp
	pub = append(pub, 0xde, 0xad)

	var log []byte
	log = append(log, frame(hdr)...)
	log = append(log, frame(pub)...)
	if err := os.WriteFile(path, log, 0o644); err != nil {
		t.Fatal(err)
	}

	d, err := OpenDurable(path, DurableConfig{})
	if err != nil {
		t.Fatalf("open over v1 WAL: %v", err)
	}
	if d.RecoveredRecords() != 1 {
		t.Errorf("replayed %d records, want 1", d.RecoveredRecords())
	}
	// Rotation must have produced a current-version snapshot + fresh log.
	if _, err := os.Stat(path + ".snap"); err != nil {
		t.Fatalf("no snapshot after v1 rotation: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	gen, ver, hasHeader, _, err := scanWAL(f, nil)
	f.Close()
	if err != nil || !hasHeader {
		t.Fatalf("scan rotated WAL: hasHeader=%v err=%v", hasHeader, err)
	}
	if ver != walVersion {
		t.Errorf("rotated WAL version = %d, want %d", ver, walVersion)
	}
	if gen < 2 {
		t.Errorf("rotated WAL generation = %d, want >= 2", gen)
	}
	// The replayed entry survives through the rotation and a reopen.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(path, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	masks, ok, err := d2.Poll(ReqID{Client: 20, Seq: 1}, Key{Src: 3, Dst: 4, Tag: 5}, 6)
	if err != nil || !ok || len(masks) != 2 || masks[0] != 0xde || masks[1] != 0xad {
		t.Fatalf("poll after v1 migration = %v, %v, %v", masks, ok, err)
	}
}
