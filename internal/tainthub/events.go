package tainthub

import (
	"fmt"

	"chaser/internal/obs"
)

// eventsHub decorates a Hub with structured event emission: one event per
// logical Publish/Poll, feeding the campaign observatory's live /events feed.
// Metrics (counts) live in the hub's registry instrumentation; events carry
// the per-message detail (flow key, sequence, tainted byte count).
type eventsHub struct {
	h    Hub
	sink *obs.Sink
}

// WithEvents wraps h so every Publish and Poll also emits a structured event
// into sink. A nil sink (or nil hub) returns h unchanged — the disabled
// configuration costs nothing.
func WithEvents(h Hub, sink *obs.Sink) Hub {
	if h == nil || sink == nil {
		return h
	}
	return &eventsHub{h: h, sink: sink}
}

func flowLabel(k Key, seq uint64) string {
	return fmt.Sprintf("%d->%d tag %d seq %d", k.Src, k.Dst, k.Tag, seq)
}

func taintedCount(masks []uint8) uint64 {
	var n uint64
	for _, m := range masks {
		if m != 0 {
			n++
		}
	}
	return n
}

// Publish implements Hub.
func (e *eventsHub) Publish(id ReqID, k Key, seq uint64, masks []uint8) error {
	err := e.h.Publish(id, k, seq, masks)
	typ := "hub_publish"
	if err != nil {
		typ = "hub_publish_error"
	}
	e.sink.Emit(typ, -1, k.Src, seq, taintedCount(masks), flowLabel(k, seq))
	return err
}

// Poll implements Hub.
func (e *eventsHub) Poll(id ReqID, k Key, seq uint64) ([]uint8, bool, error) {
	masks, ok, err := e.h.Poll(id, k, seq)
	typ := "hub_poll_miss"
	switch {
	case err != nil:
		typ = "hub_poll_error"
	case ok:
		typ = "hub_poll_hit"
	}
	e.sink.Emit(typ, -1, k.Dst, seq, taintedCount(masks), flowLabel(k, seq))
	return masks, ok, err
}

// Stats implements Hub.
func (e *eventsHub) Stats() Stats { return e.h.Stats() }
