// Package tainthub implements the TaintHub: the central service that stores
// and shares the taint status of MPI messages between Chaser instances
// supervising different ranks (Fig. 5 of the paper).
//
// When a hooked MPI_Send observes a tainted buffer, Chaser publishes the
// message's per-byte taint masks keyed by (source, dest, tag) plus a
// per-key sequence number; when the matching MPI_Recv completes on the
// receiving rank, Chaser polls the hub and re-marks the taint locally so
// propagation continues across the process boundary. Clean messages are
// never published — the receiver's poll simply comes back empty, which is
// what keeps the tracing overhead low.
//
// Two implementations are provided: Local (in-process, for single-host
// worlds and tests) and a TCP Server/Client pair (the head-node deployment
// of the paper's testbed).
package tainthub

import "sync"

// Key identifies a message flow between two ranks. NS is a namespace
// discriminator allowing many concurrent campaigns (each a separate run of
// the same ranks and tags) to share one hub without collisions; see
// WithNamespace.
type Key struct {
	Src int
	Dst int
	Tag int
	NS  int
}

// Hub is the interface Chaser uses to coordinate message taint.
type Hub interface {
	// Publish records the taint masks of the seq-th message (0-based,
	// counted per key) sent on the given flow.
	Publish(k Key, seq uint64, masks []uint8) error
	// Poll retrieves and removes the taint masks of the seq-th message of
	// the flow. ok is false when that message was never published (clean).
	Poll(k Key, seq uint64) (masks []uint8, ok bool, err error)
	// Stats returns a snapshot of hub activity.
	Stats() Stats
}

// Stats counts hub activity.
type Stats struct {
	Published uint64 // tainted message statuses stored
	Polls     uint64 // total poll requests
	Hits      uint64 // polls that found a tainted status
	Pending   int    // statuses currently stored
}

type entryKey struct {
	k   Key
	seq uint64
}

// Local is an in-process hub. The zero value is not ready; use NewLocal.
type Local struct {
	mu      sync.Mutex
	entries map[entryKey][]uint8
	stats   Stats
}

var _ Hub = (*Local)(nil)

// NewLocal creates an empty in-process hub.
func NewLocal() *Local {
	return &Local{entries: make(map[entryKey][]uint8)}
}

// Publish implements Hub.
func (l *Local) Publish(k Key, seq uint64, masks []uint8) error {
	cp := make([]uint8, len(masks))
	copy(cp, masks)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries[entryKey{k, seq}] = cp
	l.stats.Published++
	return nil
}

// Poll implements Hub.
func (l *Local) Poll(k Key, seq uint64) ([]uint8, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats.Polls++
	ek := entryKey{k, seq}
	masks, ok := l.entries[ek]
	if !ok {
		return nil, false, nil
	}
	delete(l.entries, ek)
	l.stats.Hits++
	return masks, true, nil
}

// Stats implements Hub.
func (l *Local) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.Pending = len(l.entries)
	return s
}

// Reset clears all stored statuses and statistics (between campaign runs).
func (l *Local) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = make(map[entryKey][]uint8)
	l.stats = Stats{}
}

// namespaced stamps a fixed namespace onto every key, so concurrent runs
// sharing one hub (e.g. a parallel campaign against a head-node TaintHub
// server) stay isolated from each other.
type namespaced struct {
	hub Hub
	ns  int
}

var _ Hub = namespaced{}

// WithNamespace returns a view of hub whose keys live in namespace ns.
func WithNamespace(hub Hub, ns int) Hub {
	return namespaced{hub: hub, ns: ns}
}

// Publish implements Hub.
func (n namespaced) Publish(k Key, seq uint64, masks []uint8) error {
	k.NS = n.ns
	return n.hub.Publish(k, seq, masks)
}

// Poll implements Hub.
func (n namespaced) Poll(k Key, seq uint64) ([]uint8, bool, error) {
	k.NS = n.ns
	return n.hub.Poll(k, seq)
}

// Stats implements Hub (shared across namespaces).
func (n namespaced) Stats() Stats { return n.hub.Stats() }
