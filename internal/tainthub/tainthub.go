// Package tainthub implements the TaintHub: the central service that stores
// and shares the taint status of MPI messages between Chaser instances
// supervising different ranks (Fig. 5 of the paper).
//
// When a hooked MPI_Send observes a tainted buffer, Chaser publishes the
// message's per-byte taint masks keyed by (source, dest, tag) plus a
// per-key sequence number; when the matching MPI_Recv completes on the
// receiving rank, Chaser polls the hub and re-marks the taint locally so
// propagation continues across the process boundary. Clean messages are
// never published — the receiver's poll simply comes back empty, which is
// what keeps the tracing overhead low.
//
// Because Poll is destructive (it consumes the stored status), every RPC
// carries a ReqID: a (client, sequence) stamp minted once per logical
// operation and reused verbatim across transport retries. Each hub keeps a
// bounded per-client reply cache, so a retried Poll whose original response
// was lost returns the original masks instead of ok=false — exactly-once
// semantics over an at-least-once transport.
//
// Three implementations are provided: Local (in-process, for single-host
// worlds and tests), Durable (Local plus a write-ahead log and snapshots,
// surviving process death), and a TCP Server/Client pair (the head-node
// deployment of the paper's testbed).
package tainthub

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"chaser/internal/obs"
	"chaser/internal/tainthub/codec"
)

// Key identifies a message flow between two ranks. NS is a namespace
// discriminator allowing many concurrent campaigns (each a separate run of
// the same ranks and tags) to share one hub without collisions; see
// WithNamespace.
type Key struct {
	Src int
	Dst int
	Tag int
	NS  int
}

// ReqID identifies one logical hub RPC for exactly-once replay protection.
// Client is a process-unique caller identity (see NewClientID); Seq
// increases monotonically per client and is minted once per logical
// operation — a transport retry of the same operation re-sends the same
// ReqID, so the hub can serve the original reply instead of re-executing a
// destructive Poll. The zero ReqID disables replay protection for that
// call (used by tooling that never retries).
type ReqID struct {
	Client uint64
	Seq    uint64
}

var (
	// clientIDBase is random per process (the global math/rand source is
	// randomly seeded), making client identities unique across restarted
	// campaign processes sharing one hub; the odd multiplier spreads the
	// per-process counter over the full 64-bit space.
	clientIDBase = rand.Uint64() | 1
	clientIDSeq  atomic.Uint64
)

// NewClientID returns a hub client identity that is unique within this
// process and, with overwhelming probability, across processes. Core mints
// one per supervised run.
func NewClientID() uint64 {
	for {
		if id := clientIDBase + clientIDSeq.Add(1)*0x9e3779b97f4a7c15; id != 0 {
			return id
		}
	}
}

// Hub is the interface Chaser uses to coordinate message taint.
type Hub interface {
	// Publish records the taint masks of the seq-th message (0-based,
	// counted per key) sent on the given flow. Republishing under the same
	// ReqID is a no-op (the original ack is replayed).
	Publish(id ReqID, k Key, seq uint64, masks []uint8) error
	// Poll retrieves and removes the taint masks of the seq-th message of
	// the flow. ok is false when that message was never published (clean).
	// Re-polling under the same ReqID returns the original masks.
	Poll(id ReqID, k Key, seq uint64) (masks []uint8, ok bool, err error)
	// Stats returns a snapshot of hub activity.
	Stats() Stats
}

// Stats counts hub activity. It is defined in the codec package (its
// fields cross the wire and live in snapshots) and aliased here as the
// public name.
type Stats = codec.Stats

// BusyError reports that a namespace is at its pending-entry or byte
// limit. The caller should wait RetryAfter and retry — the TCP client does
// so transparently.
type BusyError struct {
	NS         int
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("tainthub: namespace %d over pending limit, retry after %s", e.NS, e.RetryAfter)
}

// PayloadError reports a Publish whose masks exceed the hub's payload
// limit. It is permanent: retrying the same payload cannot succeed.
type PayloadError struct {
	Size  int
	Limit int
}

func (e *PayloadError) Error() string {
	return fmt.Sprintf("tainthub: payload %d bytes exceeds limit %d", e.Size, e.Limit)
}

// Limits bounds a hub's memory. The zero value means "no entry/byte/TTL
// limits" with default reply-cache sizing — the right call for private
// in-process hubs; shared head-node deployments should set explicit caps.
type Limits struct {
	// MaxPending caps stored entries per namespace (0 = unlimited). A
	// Publish over the cap fails with *BusyError.
	MaxPending int
	// MaxPendingBytes caps stored mask bytes per namespace (0 = unlimited).
	MaxPendingBytes int64
	// MaxPayload caps one Publish's mask bytes (0 = unlimited). Oversized
	// publishes fail with *PayloadError.
	MaxPayload int
	// TTL evicts entries and idle reply caches older than this (0 = never).
	// Crashed ranks leak orphaned entries; TTL is what stops Stats().Pending
	// from growing without bound across a long multi-campaign deployment.
	TTL time.Duration
	// RetryAfter is the backoff hint in BusyError (default 50ms).
	RetryAfter time.Duration
	// ReplyCache is the number of replies remembered per client for replay
	// protection (default 256).
	ReplyCache int
	// MaxClients caps tracked reply caches; the least recently active
	// client is evicted past it (default 4096).
	MaxClients int
}

func (l Limits) withDefaults() Limits {
	if l.RetryAfter <= 0 {
		l.RetryAfter = 50 * time.Millisecond
	}
	if l.ReplyCache <= 0 {
		l.ReplyCache = 256
	}
	if l.MaxClients <= 0 {
		l.MaxClients = 4096
	}
	return l
}

type entryKey struct {
	k   Key
	seq uint64
}

// Local is an in-process hub. The zero value is not ready; use NewLocal.
type Local struct {
	mu sync.Mutex
	st store
}

var _ Hub = (*Local)(nil)

// NewLocal creates an empty in-process hub with no limits.
func NewLocal() *Local {
	return NewLocalLimits(Limits{}, nil)
}

// NewLocalLimits creates an in-process hub with explicit memory bounds and
// optional telemetry (tainthub_evicted_total, tainthub_dedup_hits_total).
func NewLocalLimits(lim Limits, reg *obs.Registry) *Local {
	return &Local{st: newStore(lim, newHubObs(reg))}
}

// Publish implements Hub.
func (l *Local) Publish(id ReqID, k Key, seq uint64, masks []uint8) error {
	now := time.Now().UnixNano()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.st.maybeSweep(now)
	if _, dup := l.st.dedup(id, now); dup {
		return nil
	}
	if err := l.st.checkPublish(k, masks); err != nil {
		return err
	}
	l.st.applyPublish(k, seq, masks, now)
	l.st.remember(id, cachedReply{}, now)
	return nil
}

// Poll implements Hub.
func (l *Local) Poll(id ReqID, k Key, seq uint64) ([]uint8, bool, error) {
	now := time.Now().UnixNano()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.st.maybeSweep(now)
	if rep, dup := l.st.dedup(id, now); dup {
		return rep.masks, rep.found, nil
	}
	masks, ok := l.st.applyConsume(k, seq)
	if !ok {
		return nil, false, nil
	}
	l.st.remember(id, cachedReply{masks: masks, found: true}, now)
	return masks, true, nil
}

// Stats implements Hub.
func (l *Local) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st.snapshotStats()
}

// Sweep evicts entries and reply caches older than the configured TTL and
// returns how many were dropped. Eviction also happens opportunistically
// during normal traffic; Sweep exists for idle hubs and tests.
func (l *Local) Sweep() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st.sweep(time.Now().UnixNano())
}

// Reset clears all stored statuses and statistics (between campaign runs).
func (l *Local) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.st.reset()
}

// namespaced stamps a fixed namespace onto every key, so concurrent runs
// sharing one hub (e.g. a parallel campaign against a head-node TaintHub
// server) stay isolated from each other.
type namespaced struct {
	hub Hub
	ns  int
}

var _ Hub = namespaced{}

// WithNamespace returns a view of hub whose keys live in namespace ns.
func WithNamespace(hub Hub, ns int) Hub {
	return namespaced{hub: hub, ns: ns}
}

// Publish implements Hub.
func (n namespaced) Publish(id ReqID, k Key, seq uint64, masks []uint8) error {
	k.NS = n.ns
	return n.hub.Publish(id, k, seq, masks)
}

// Poll implements Hub.
func (n namespaced) Poll(id ReqID, k Key, seq uint64) ([]uint8, bool, error) {
	k.NS = n.ns
	return n.hub.Poll(id, k, seq)
}

// Stats implements Hub (shared across namespaces).
func (n namespaced) Stats() Stats { return n.hub.Stats() }
