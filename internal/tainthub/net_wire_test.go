package tainthub

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"chaser/internal/obs"
	"chaser/internal/tainthub/codec"
)

// TestWireJSONClientCompat pins the compatibility path: a client speaking
// the legacy JSON format against an autodetecting server behaves exactly
// like the binary default.
func TestWireJSONClientCompat(t *testing.T) {
	for _, wire := range []codec.Format{codec.FormatJSON, codec.FormatBinary} {
		t.Run(wire.String(), func(t *testing.T) {
			hub := NewLocal()
			srv, err := NewServer(hub, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			c, err := DialConfig(srv.Addr(), ClientConfig{Wire: wire})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			k := Key{Src: 0, Dst: 1, Tag: 7}
			if err := c.Publish(ReqID{Client: 1, Seq: 1}, k, 0, []uint8{0xaa, 0x00, 0x55}); err != nil {
				t.Fatal(err)
			}
			masks, ok, err := c.Poll(ReqID{Client: 1, Seq: 2}, k, 0)
			if err != nil || !ok || len(masks) != 3 || masks[0] != 0xaa || masks[2] != 0x55 {
				t.Fatalf("poll = %v, %v, %v", masks, ok, err)
			}
			if st := c.Stats(); st.Published != 1 || st.Polls != 1 || st.Hits != 1 {
				t.Fatalf("stats = %+v", st)
			}
		})
	}
}

// TestWirePinnedServerRejectsMismatch: a server pinned to one format drops
// connections speaking the other instead of misparsing them.
func TestWirePinnedServerRejectsMismatch(t *testing.T) {
	hub := NewLocal()
	srv, err := NewServerConfig(hub, "127.0.0.1:0", ServerConfig{
		Wire: codec.FormatBinary,
		Logf: func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialConfig(srv.Addr(), ClientConfig{
		Wire: codec.FormatJSON, MaxAttempts: 2,
		RPCTimeout: time.Second, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Publish(ReqID{Client: 1, Seq: 1}, Key{Src: 0, Dst: 1}, 0, []uint8{1}); err == nil {
		t.Fatal("JSON publish accepted by a binary-pinned server")
	}
	// And the matching format still works.
	c2, err := DialConfig(srv.Addr(), ClientConfig{Wire: codec.FormatBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Publish(ReqID{Client: 1, Seq: 2}, Key{Src: 0, Dst: 1}, 0, []uint8{1}); err != nil {
		t.Fatal(err)
	}
}

// TestWireFrameLimitResyncBeyondOldCap is the satellite-1 regression test:
// a frame far beyond the old 4×maxFrame drain cap must still be refused
// with the connection resynchronized — the old discard gave up mid-line,
// desynchronizing the stream after the error reply.
func TestWireFrameLimitResyncBeyondOldCap(t *testing.T) {
	reg := obs.NewRegistry()
	limit := 1 << 10
	srv, err := NewServerConfig(NewLocal(), "127.0.0.1:0", ServerConfig{
		Obs:           reg,
		MaxFrameBytes: limit,
		Logf:          func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))

	// 10x the limit — past the old 4x drain cap.
	big := make([]byte, 10*limit)
	for i := range big {
		big[i] = 'A'
	}
	if _, err := conn.Write([]byte(`{"op":"publish","masks":"` + string(big) + `"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := json.Unmarshal([]byte(line), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" || resp.Code != codec.CodeFrame {
		t.Fatalf("oversized frame reply = %+v, want frame-coded error", resp)
	}
	// The connection must have resynced to the next frame boundary.
	if _, err := conn.Write([]byte(`{"op":"stats"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	line, err = br.ReadString('\n')
	if err != nil {
		t.Fatalf("connection dead after oversized frame: %v", err)
	}
	resp = response{}
	if err := json.Unmarshal([]byte(line), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Stats == nil {
		t.Errorf("stats after resync = %+v", resp)
	}
}

// TestWireBadBase64TypedAndRecoverable is the satellite-2 regression test:
// malformed base64 in a publish gets a payload-coded error reply, the
// connection survives, and the real client surfaces it as the typed
// permanent *codec.PayloadError without burning retry budget.
func TestWireBadBase64TypedAndRecoverable(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := NewServerConfig(NewLocal(), "127.0.0.1:0", ServerConfig{
		Obs:  reg,
		Logf: func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte(`{"op":"publish","client":1,"req":1,"src":0,"dst":1,"tag":0,"seq":0,"masks":"!!not base64!!"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := json.Unmarshal([]byte(line), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" || resp.Code != codec.CodePayload {
		t.Fatalf("bad base64 reply = %+v, want payload-coded error", resp)
	}
	if got := reg.Counter("tainthub_malformed_requests_total").Value(); got != 1 {
		t.Errorf("tainthub_malformed_requests_total = %d, want 1", got)
	}
	// The connection survives the refused frame.
	if _, err := conn.Write([]byte(`{"op":"stats"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("connection dead after payload error: %v", err)
	}
}

// TestWirePayloadLimitNoRetryBudget: a publish over the hub's payload
// limit must come back as the typed permanent error on the first attempt —
// zero transport retries — because re-sending bytes that can never be
// accepted only burns backoff budget.
func TestWirePayloadLimitNoRetryBudget(t *testing.T) {
	hub := NewLocalLimits(Limits{MaxPayload: 4}, nil)
	srv, err := NewServerConfig(hub, "127.0.0.1:0", ServerConfig{Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reg := obs.NewRegistry()
	c, err := DialConfig(srv.Addr(), fastRetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Publish(ReqID{Client: 1, Seq: 1}, Key{Src: 0, Dst: 1}, 0, make([]uint8, 64))
	var pe *codec.PayloadError
	if !errors.As(err, &pe) {
		t.Fatalf("oversized publish error = %v, want *codec.PayloadError", err)
	}
	if got := reg.Counter("hub_rpc_retries_total").Value(); got != 0 {
		t.Errorf("hub_rpc_retries_total = %d: retried a permanent payload error", got)
	}
}

// TestWireBatchRPC exercises the server's batch dispatch directly: one
// frame carrying many ops returns one batch reply preserving order, with
// every sub-response echoing its ReqID.
func TestWireBatchRPC(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := NewServerConfig(NewLocal(), "127.0.0.1:0", ServerConfig{Obs: reg, Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))

	frame := `{"op":"batch","batch":[` +
		`{"op":"publish","client":5,"req":1,"src":0,"dst":1,"tag":2,"seq":0,"masks":"qg=="},` +
		`{"op":"poll","client":5,"req":2,"src":0,"dst":1,"tag":2,"seq":0},` +
		`{"op":"stats","client":5,"req":3}]}` + "\n"
	if _, err := conn.Write([]byte(frame)); err != nil {
		t.Fatal(err)
	}
	var resp response
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(line), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || len(resp.Batch) != 3 {
		t.Fatalf("batch reply = %+v", resp)
	}
	if !resp.Batch[0].OK || resp.Batch[0].Req != 1 {
		t.Errorf("publish sub-reply = %+v", resp.Batch[0])
	}
	if !resp.Batch[1].OK || !resp.Batch[1].Found || len(resp.Batch[1].Masks) != 1 || resp.Batch[1].Masks[0] != 0xaa || resp.Batch[1].Req != 2 {
		t.Errorf("poll sub-reply = %+v", resp.Batch[1])
	}
	if !resp.Batch[2].OK || resp.Batch[2].Stats == nil || resp.Batch[2].Req != 3 {
		t.Errorf("stats sub-reply = %+v", resp.Batch[2])
	}
	// Each batched op counts as a logical request.
	if got := reg.Counter("tainthub_requests_total").Value(); got != 3 {
		t.Errorf("tainthub_requests_total = %d, want 3", got)
	}
}

// TestWirePipelinedConcurrency hammers one client from many goroutines:
// concurrent calls coalesce into batch frames and pipeline over one
// connection, and every logical RPC must still complete with its own
// correct result (the ReqID echo check would fail the session on any
// cross-wiring).
func TestWirePipelinedConcurrency(t *testing.T) {
	hub := NewLocal()
	srv, err := NewServer(hub, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const workers = 16
	const perWorker = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := NewClientID()
			var seq uint64
			for i := 0; i < perWorker; i++ {
				k := Key{Src: w, Dst: w + 1, Tag: i}
				want := []uint8{uint8(w), uint8(i), 0, 0, uint8(w ^ i)}
				seq++
				if err := c.Publish(ReqID{Client: client, Seq: seq}, k, 0, want); err != nil {
					errs <- fmt.Errorf("worker %d publish %d: %w", w, i, err)
					return
				}
				seq++
				got, ok, err := c.Poll(ReqID{Client: client, Seq: seq}, k, 0)
				if err != nil || !ok {
					errs <- fmt.Errorf("worker %d poll %d: ok=%v err=%w", w, i, ok, err)
					return
				}
				for j := range want {
					if got[j] != want[j] {
						errs <- fmt.Errorf("worker %d op %d: cross-wired response %v != %v", w, i, got, want)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := hub.Stats(); st.Published != workers*perWorker || st.Hits != workers*perWorker {
		t.Fatalf("stats after hammer = %+v", st)
	}
}
