package tainthub

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestLocalPublishPoll(t *testing.T) {
	h := NewLocal()
	k := Key{Src: 0, Dst: 1, Tag: 5}
	masks := []uint8{0, 0xff, 0x01}
	if err := h.Publish(k, 0, masks); err != nil {
		t.Fatal(err)
	}
	got, ok, err := h.Poll(k, 0)
	if err != nil || !ok {
		t.Fatalf("Poll = %v, %v, %v", got, ok, err)
	}
	for i := range masks {
		if got[i] != masks[i] {
			t.Errorf("mask[%d] = %#x, want %#x", i, got[i], masks[i])
		}
	}
	// Poll removes.
	if _, ok, _ := h.Poll(k, 0); ok {
		t.Error("second poll found the status again")
	}
}

func TestLocalCleanMessagePollMisses(t *testing.T) {
	h := NewLocal()
	if _, ok, err := h.Poll(Key{Src: 1, Dst: 0, Tag: 2}, 7); ok || err != nil {
		t.Errorf("poll of unpublished = %v, %v", ok, err)
	}
}

func TestLocalSequencing(t *testing.T) {
	// Message 0 clean (unpublished), message 1 tainted: the receiver's poll
	// for seq 0 must miss and seq 1 must hit.
	h := NewLocal()
	k := Key{Src: 0, Dst: 1, Tag: 0}
	if err := h.Publish(k, 1, []uint8{0xaa}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := h.Poll(k, 0); ok {
		t.Error("seq 0 poll hit a seq 1 status")
	}
	got, ok, _ := h.Poll(k, 1)
	if !ok || got[0] != 0xaa {
		t.Errorf("seq 1 poll = %v, %v", got, ok)
	}
}

func TestLocalKeysAreIndependent(t *testing.T) {
	h := NewLocal()
	_ = h.Publish(Key{Src: 0, Dst: 1, Tag: 1}, 0, []uint8{1})
	if _, ok, _ := h.Poll(Key{Src: 0, Dst: 1, Tag: 2}, 0); ok {
		t.Error("poll with different tag hit")
	}
	if _, ok, _ := h.Poll(Key{Src: 0, Dst: 2, Tag: 1}, 0); ok {
		t.Error("poll with different dst hit")
	}
	if _, ok, _ := h.Poll(Key{Src: 0, Dst: 1, Tag: 1}, 0); !ok {
		t.Error("correct key missed")
	}
}

func TestLocalStatsAndReset(t *testing.T) {
	h := NewLocal()
	_ = h.Publish(Key{Src: 0, Dst: 1, Tag: 0}, 0, []uint8{1})
	_ = h.Publish(Key{Src: 0, Dst: 2, Tag: 0}, 0, []uint8{1})
	_, _, _ = h.Poll(Key{Src: 0, Dst: 1, Tag: 0}, 0)
	_, _, _ = h.Poll(Key{Src: 9, Dst: 9, Tag: 9}, 0)
	s := h.Stats()
	if s.Published != 2 || s.Polls != 2 || s.Hits != 1 || s.Pending != 1 {
		t.Errorf("stats = %+v", s)
	}
	h.Reset()
	s = h.Stats()
	if s.Published != 0 || s.Pending != 0 {
		t.Errorf("stats after reset = %+v", s)
	}
}

func TestLocalPublishCopiesMasks(t *testing.T) {
	h := NewLocal()
	masks := []uint8{1, 2, 3}
	_ = h.Publish(Key{}, 0, masks)
	masks[0] = 99
	got, _, _ := h.Poll(Key{}, 0)
	if got[0] != 1 {
		t.Error("hub aliases caller's mask slice")
	}
}

// Property: publish/poll round-trips arbitrary masks for arbitrary keys.
func TestLocalRoundTripQuick(t *testing.T) {
	h := NewLocal()
	f := func(src, dst uint8, tag uint16, seq uint64, masks []uint8) bool {
		k := Key{Src: int(src), Dst: int(dst), Tag: int(tag)}
		if err := h.Publish(k, seq, masks); err != nil {
			return false
		}
		got, ok, err := h.Poll(k, seq)
		if err != nil || !ok || len(got) != len(masks) {
			return false
		}
		for i := range masks {
			if got[i] != masks[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTCPServerClient(t *testing.T) {
	srv, err := NewServer(NewLocal(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	k := Key{Src: 2, Dst: 3, Tag: 9}
	masks := []uint8{0xde, 0xad, 0, 0xef}
	if err := c.Publish(k, 4, masks); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Poll(k, 4)
	if err != nil || !ok {
		t.Fatalf("Poll = %v %v %v", got, ok, err)
	}
	for i := range masks {
		if got[i] != masks[i] {
			t.Errorf("mask[%d] = %#x, want %#x", i, got[i], masks[i])
		}
	}
	if _, ok, err := c.Poll(k, 4); ok || err != nil {
		t.Errorf("re-poll = %v, %v", ok, err)
	}
	st := c.Stats()
	if st.Published != 1 || st.Hits != 1 {
		t.Errorf("remote stats = %+v", st)
	}
}

func TestTCPMultipleClients(t *testing.T) {
	srv, err := NewServer(NewLocal(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Four "ranks" publish and poll concurrently, like a real campaign.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			k := Key{Src: r, Dst: (r + 1) % 4, Tag: 0}
			for seq := uint64(0); seq < 50; seq++ {
				if err := c.Publish(k, seq, []uint8{uint8(r), uint8(seq)}); err != nil {
					errs <- err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for r := 0; r < 4; r++ {
		k := Key{Src: r, Dst: (r + 1) % 4, Tag: 0}
		for seq := uint64(0); seq < 50; seq++ {
			masks, ok, err := c.Poll(k, seq)
			if err != nil || !ok {
				t.Fatalf("poll r=%d seq=%d: %v %v", r, seq, ok, err)
			}
			if masks[0] != uint8(r) || masks[1] != uint8(seq) {
				t.Fatalf("masks = %v", masks)
			}
		}
	}
}

func TestDialError(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestNamespacedIsolation(t *testing.T) {
	base := NewLocal()
	a := WithNamespace(base, 1)
	b := WithNamespace(base, 2)
	k := Key{Src: 0, Dst: 1, Tag: 5}
	if err := a.Publish(k, 0, []uint8{0xaa}); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(k, 0, []uint8{0xbb}); err != nil {
		t.Fatal(err)
	}
	// Each namespace sees only its own status.
	got, ok, _ := b.Poll(k, 0)
	if !ok || got[0] != 0xbb {
		t.Errorf("ns b = %v, %v", got, ok)
	}
	got, ok, _ = a.Poll(k, 0)
	if !ok || got[0] != 0xaa {
		t.Errorf("ns a = %v, %v", got, ok)
	}
	// A third namespace sees nothing.
	if _, ok, _ := WithNamespace(base, 3).Poll(k, 0); ok {
		t.Error("empty namespace polled a status")
	}
	// Stats are shared across namespaces.
	if st := a.Stats(); st.Published != 2 {
		t.Errorf("shared stats = %+v", st)
	}
}

func TestNamespacedOverTCP(t *testing.T) {
	srv, err := NewServer(NewLocal(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	k := Key{Src: 0, Dst: 1, Tag: 9}
	if err := WithNamespace(c, 7).Publish(k, 3, []uint8{1}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := WithNamespace(c, 8).Poll(k, 3); ok {
		t.Error("cross-namespace hit over TCP")
	}
	if _, ok, _ := WithNamespace(c, 7).Poll(k, 3); !ok {
		t.Error("same-namespace miss over TCP")
	}
}
