package tainthub

import (
	"errors"
	"time"

	"chaser/internal/obs"

	"sync"
	"testing"
	"testing/quick"
)

func TestLocalPublishPoll(t *testing.T) {
	h := NewLocal()
	k := Key{Src: 0, Dst: 1, Tag: 5}
	masks := []uint8{0, 0xff, 0x01}
	if err := h.Publish(ReqID{}, k, 0, masks); err != nil {
		t.Fatal(err)
	}
	got, ok, err := h.Poll(ReqID{}, k, 0)
	if err != nil || !ok {
		t.Fatalf("Poll = %v, %v, %v", got, ok, err)
	}
	for i := range masks {
		if got[i] != masks[i] {
			t.Errorf("mask[%d] = %#x, want %#x", i, got[i], masks[i])
		}
	}
	// Poll removes.
	if _, ok, _ := h.Poll(ReqID{}, k, 0); ok {
		t.Error("second poll found the status again")
	}
}

func TestLocalCleanMessagePollMisses(t *testing.T) {
	h := NewLocal()
	if _, ok, err := h.Poll(ReqID{}, Key{Src: 1, Dst: 0, Tag: 2}, 7); ok || err != nil {
		t.Errorf("poll of unpublished = %v, %v", ok, err)
	}
}

func TestLocalSequencing(t *testing.T) {
	// Message 0 clean (unpublished), message 1 tainted: the receiver's poll
	// for seq 0 must miss and seq 1 must hit.
	h := NewLocal()
	k := Key{Src: 0, Dst: 1, Tag: 0}
	if err := h.Publish(ReqID{}, k, 1, []uint8{0xaa}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := h.Poll(ReqID{}, k, 0); ok {
		t.Error("seq 0 poll hit a seq 1 status")
	}
	got, ok, _ := h.Poll(ReqID{}, k, 1)
	if !ok || got[0] != 0xaa {
		t.Errorf("seq 1 poll = %v, %v", got, ok)
	}
}

func TestLocalKeysAreIndependent(t *testing.T) {
	h := NewLocal()
	_ = h.Publish(ReqID{}, Key{Src: 0, Dst: 1, Tag: 1}, 0, []uint8{1})
	if _, ok, _ := h.Poll(ReqID{}, Key{Src: 0, Dst: 1, Tag: 2}, 0); ok {
		t.Error("poll with different tag hit")
	}
	if _, ok, _ := h.Poll(ReqID{}, Key{Src: 0, Dst: 2, Tag: 1}, 0); ok {
		t.Error("poll with different dst hit")
	}
	if _, ok, _ := h.Poll(ReqID{}, Key{Src: 0, Dst: 1, Tag: 1}, 0); !ok {
		t.Error("correct key missed")
	}
}

func TestLocalStatsAndReset(t *testing.T) {
	h := NewLocal()
	_ = h.Publish(ReqID{}, Key{Src: 0, Dst: 1, Tag: 0}, 0, []uint8{1})
	_ = h.Publish(ReqID{}, Key{Src: 0, Dst: 2, Tag: 0}, 0, []uint8{1})
	_, _, _ = h.Poll(ReqID{}, Key{Src: 0, Dst: 1, Tag: 0}, 0)
	_, _, _ = h.Poll(ReqID{}, Key{Src: 9, Dst: 9, Tag: 9}, 0)
	s := h.Stats()
	if s.Published != 2 || s.Polls != 2 || s.Hits != 1 || s.Pending != 1 {
		t.Errorf("stats = %+v", s)
	}
	h.Reset()
	s = h.Stats()
	if s.Published != 0 || s.Pending != 0 {
		t.Errorf("stats after reset = %+v", s)
	}
}

func TestLocalPublishCopiesMasks(t *testing.T) {
	h := NewLocal()
	masks := []uint8{1, 2, 3}
	_ = h.Publish(ReqID{}, Key{}, 0, masks)
	masks[0] = 99
	got, _, _ := h.Poll(ReqID{}, Key{}, 0)
	if got[0] != 1 {
		t.Error("hub aliases caller's mask slice")
	}
}

// Property: publish/poll round-trips arbitrary masks for arbitrary keys.
func TestLocalRoundTripQuick(t *testing.T) {
	h := NewLocal()
	f := func(src, dst uint8, tag uint16, seq uint64, masks []uint8) bool {
		k := Key{Src: int(src), Dst: int(dst), Tag: int(tag)}
		if err := h.Publish(ReqID{}, k, seq, masks); err != nil {
			return false
		}
		got, ok, err := h.Poll(ReqID{}, k, seq)
		if err != nil || !ok || len(got) != len(masks) {
			return false
		}
		for i := range masks {
			if got[i] != masks[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTCPServerClient(t *testing.T) {
	srv, err := NewServer(NewLocal(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	k := Key{Src: 2, Dst: 3, Tag: 9}
	masks := []uint8{0xde, 0xad, 0, 0xef}
	if err := c.Publish(ReqID{}, k, 4, masks); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Poll(ReqID{}, k, 4)
	if err != nil || !ok {
		t.Fatalf("Poll = %v %v %v", got, ok, err)
	}
	for i := range masks {
		if got[i] != masks[i] {
			t.Errorf("mask[%d] = %#x, want %#x", i, got[i], masks[i])
		}
	}
	if _, ok, err := c.Poll(ReqID{}, k, 4); ok || err != nil {
		t.Errorf("re-poll = %v, %v", ok, err)
	}
	st := c.Stats()
	if st.Published != 1 || st.Hits != 1 {
		t.Errorf("remote stats = %+v", st)
	}
}

func TestTCPMultipleClients(t *testing.T) {
	srv, err := NewServer(NewLocal(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Four "ranks" publish and poll concurrently, like a real campaign.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			k := Key{Src: r, Dst: (r + 1) % 4, Tag: 0}
			for seq := uint64(0); seq < 50; seq++ {
				if err := c.Publish(ReqID{}, k, seq, []uint8{uint8(r), uint8(seq)}); err != nil {
					errs <- err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for r := 0; r < 4; r++ {
		k := Key{Src: r, Dst: (r + 1) % 4, Tag: 0}
		for seq := uint64(0); seq < 50; seq++ {
			masks, ok, err := c.Poll(ReqID{}, k, seq)
			if err != nil || !ok {
				t.Fatalf("poll r=%d seq=%d: %v %v", r, seq, ok, err)
			}
			if masks[0] != uint8(r) || masks[1] != uint8(seq) {
				t.Fatalf("masks = %v", masks)
			}
		}
	}
}

func TestDialError(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestNamespacedIsolation(t *testing.T) {
	base := NewLocal()
	a := WithNamespace(base, 1)
	b := WithNamespace(base, 2)
	k := Key{Src: 0, Dst: 1, Tag: 5}
	if err := a.Publish(ReqID{}, k, 0, []uint8{0xaa}); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(ReqID{}, k, 0, []uint8{0xbb}); err != nil {
		t.Fatal(err)
	}
	// Each namespace sees only its own status.
	got, ok, _ := b.Poll(ReqID{}, k, 0)
	if !ok || got[0] != 0xbb {
		t.Errorf("ns b = %v, %v", got, ok)
	}
	got, ok, _ = a.Poll(ReqID{}, k, 0)
	if !ok || got[0] != 0xaa {
		t.Errorf("ns a = %v, %v", got, ok)
	}
	// A third namespace sees nothing.
	if _, ok, _ := WithNamespace(base, 3).Poll(ReqID{}, k, 0); ok {
		t.Error("empty namespace polled a status")
	}
	// Stats are shared across namespaces.
	if st := a.Stats(); st.Published != 2 {
		t.Errorf("shared stats = %+v", st)
	}
}

func TestNamespacedOverTCP(t *testing.T) {
	srv, err := NewServer(NewLocal(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	k := Key{Src: 0, Dst: 1, Tag: 9}
	if err := WithNamespace(c, 7).Publish(ReqID{}, k, 3, []uint8{1}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := WithNamespace(c, 8).Poll(ReqID{}, k, 3); ok {
		t.Error("cross-namespace hit over TCP")
	}
	if _, ok, _ := WithNamespace(c, 7).Poll(ReqID{}, k, 3); !ok {
		t.Error("same-namespace miss over TCP")
	}
}

// TestLocalIdempotentPoll: the in-process hub honors ReqID replay the same
// way the TCP server does — a repeated destructive Poll under one ReqID
// returns the original masks instead of ok=false.
func TestLocalIdempotentPoll(t *testing.T) {
	reg := obs.NewRegistry()
	h := NewLocalLimits(Limits{}, reg)
	k := Key{Src: 0, Dst: 1, Tag: 2}
	if err := h.Publish(ReqID{Client: 1, Seq: 1}, k, 0, []uint8{0xaa}); err != nil {
		t.Fatal(err)
	}
	id := ReqID{Client: 1, Seq: 2}
	if masks, ok, _ := h.Poll(id, k, 0); !ok || masks[0] != 0xaa {
		t.Fatal("first poll failed")
	}
	masks, ok, err := h.Poll(id, k, 0)
	if err != nil || !ok || masks[0] != 0xaa {
		t.Fatalf("retried poll = %v, %v, %v; want original masks", masks, ok, err)
	}
	if got := h.Stats().DedupHits; got != 1 {
		t.Errorf("DedupHits = %d, want 1", got)
	}
	if got := reg.Counter("tainthub_dedup_hits_total").Value(); got != 1 {
		t.Errorf("tainthub_dedup_hits_total = %d", got)
	}
	// A different ReqID sees the consumed state.
	if _, ok, _ := h.Poll(ReqID{Client: 1, Seq: 3}, k, 0); ok {
		t.Error("fresh poll resurrected consumed taint")
	}
}

// TestLocalIdempotentPublish: a replayed publish is acked without storing
// a duplicate entry.
func TestLocalIdempotentPublish(t *testing.T) {
	h := NewLocal()
	id := ReqID{Client: 9, Seq: 1}
	k := Key{Src: 0, Dst: 1}
	for i := 0; i < 3; i++ {
		if err := h.Publish(id, k, 0, []uint8{1}); err != nil {
			t.Fatal(err)
		}
	}
	if st := h.Stats(); st.Published != 1 || st.Pending != 1 || st.DedupHits != 2 {
		t.Errorf("stats after replayed publish = %+v", st)
	}
}

// TestLocalBusyLimit: a namespace over MaxPending refuses publishes with a
// retryable *BusyError carrying the backoff hint; other namespaces are
// unaffected, and consuming frees capacity.
func TestLocalBusyLimit(t *testing.T) {
	h := NewLocalLimits(Limits{MaxPending: 2, RetryAfter: 7 * time.Millisecond}, nil)
	k := Key{Src: 0, Dst: 1, NS: 1}
	for i := 0; i < 2; i++ {
		if err := h.Publish(ReqID{}, k, uint64(i), []uint8{1}); err != nil {
			t.Fatal(err)
		}
	}
	err := h.Publish(ReqID{}, k, 2, []uint8{1})
	var be *BusyError
	if !errors.As(err, &be) {
		t.Fatalf("over-limit publish error = %v, want *BusyError", err)
	}
	if be.NS != 1 || be.RetryAfter != 7*time.Millisecond {
		t.Errorf("BusyError = %+v", be)
	}
	// Another namespace still has room.
	if err := h.Publish(ReqID{}, Key{Src: 0, Dst: 1, NS: 2}, 0, []uint8{1}); err != nil {
		t.Errorf("other namespace rejected: %v", err)
	}
	// Consuming an entry frees capacity.
	if _, ok, _ := h.Poll(ReqID{}, k, 0); !ok {
		t.Fatal("poll missed")
	}
	if err := h.Publish(ReqID{}, k, 2, []uint8{1}); err != nil {
		t.Errorf("publish after freeing capacity: %v", err)
	}
}

// TestLocalByteLimit: MaxPendingBytes is enforced per namespace.
func TestLocalByteLimit(t *testing.T) {
	h := NewLocalLimits(Limits{MaxPendingBytes: 10}, nil)
	k := Key{Src: 0, Dst: 1}
	if err := h.Publish(ReqID{}, k, 0, make([]uint8, 8)); err != nil {
		t.Fatal(err)
	}
	var be *BusyError
	if err := h.Publish(ReqID{}, k, 1, make([]uint8, 8)); !errors.As(err, &be) {
		t.Fatalf("over byte limit error = %v, want *BusyError", err)
	}
}

// TestLocalPayloadLimit: an oversized single publish is rejected with the
// permanent *PayloadError, not the retryable busy signal.
func TestLocalPayloadLimit(t *testing.T) {
	h := NewLocalLimits(Limits{MaxPayload: 4}, nil)
	err := h.Publish(ReqID{}, Key{}, 0, make([]uint8, 5))
	var pe *PayloadError
	if !errors.As(err, &pe) {
		t.Fatalf("oversized publish error = %v, want *PayloadError", err)
	}
	if pe.Size != 5 || pe.Limit != 4 {
		t.Errorf("PayloadError = %+v", pe)
	}
}

// TestLocalTTLEviction: orphaned entries (their rank crashed and will
// never poll) age out, so Pending stops growing across campaigns.
func TestLocalTTLEviction(t *testing.T) {
	reg := obs.NewRegistry()
	h := NewLocalLimits(Limits{TTL: time.Hour}, reg)
	if err := h.Publish(ReqID{}, Key{Src: 0, Dst: 1}, 0, []uint8{1}); err != nil {
		t.Fatal(err)
	}
	if n := h.Sweep(); n != 0 {
		t.Errorf("fresh entry swept (%d evicted)", n)
	}
	// Age the entry past the TTL by rewriting its stamp.
	h.mu.Lock()
	for ek, e := range h.st.entries {
		e.stamp -= int64(2 * time.Hour)
		h.st.entries[ek] = e
	}
	h.mu.Unlock()
	if n := h.Sweep(); n != 1 {
		t.Fatalf("swept %d entries, want 1", n)
	}
	st := h.Stats()
	if st.Pending != 0 || st.Evicted != 1 {
		t.Errorf("stats after sweep = %+v", st)
	}
	if got := reg.Counter("tainthub_evicted_total").Value(); got != 1 {
		t.Errorf("tainthub_evicted_total = %d", got)
	}
}

// TestLocalReplyCacheBounded: the per-client reply cache is FIFO-bounded,
// so an immortal client cannot grow hub memory without limit.
func TestLocalReplyCacheBounded(t *testing.T) {
	h := NewLocalLimits(Limits{ReplyCache: 4}, nil)
	for i := 0; i < 10; i++ {
		_ = h.Publish(ReqID{Client: 1, Seq: uint64(i + 1)}, Key{Tag: i}, 0, []uint8{1})
	}
	h.mu.Lock()
	n := len(h.st.clients[1].replies)
	h.mu.Unlock()
	if n != 4 {
		t.Errorf("reply cache holds %d entries, want 4", n)
	}
	// The oldest request ID is forgotten: replaying it re-executes (and the
	// re-execution is a harmless duplicate-publish overwrite).
	if err := h.Publish(ReqID{Client: 1, Seq: 1}, Key{Tag: 0}, 0, []uint8{1}); err != nil {
		t.Fatal(err)
	}
	if st := h.Stats(); st.DedupHits != 0 {
		t.Errorf("evicted request still deduped: %+v", st)
	}
}
