package campaign

import (
	"fmt"
	"time"

	"chaser/internal/core"
	"chaser/internal/isa"
	"chaser/internal/trace"
)

// TimelineConfig parameterizes a single traced injection run whose
// tainted-bytes-vs-time curve reproduces Fig. 7.
type TimelineConfig struct {
	Prog      *isa.Program
	WorldSize int
	Ops       []isa.Op
	// N is the execution count at which to inject.
	N uint64
	// Bits flipped at injection (ignored when Inj is set).
	Bits int
	// Inj overrides the default operand injector, e.g. to pin an exact
	// corruption mask for a reproducible case study.
	Inj  core.Injector
	Seed int64
	// SampleInterval in instructions (0 = the paper's 100K).
	SampleInterval uint64
	TargetRank     int
}

// Timeline runs one traced injection and returns the tainted-bytes samples
// in execution order, together with the classified outcome.
func Timeline(cfg TimelineConfig) ([]trace.TimelinePoint, *core.RunResult, error) {
	world := cfg.WorldSize
	if world == 0 {
		world = 1
	}
	res, err := core.Run(core.RunConfig{
		Prog:           cfg.Prog,
		WorldSize:      world,
		SampleInterval: cfg.SampleInterval,
		Spec: &core.Spec{
			Target:     cfg.Prog.Name,
			Ops:        cfg.Ops,
			TargetRank: cfg.TargetRank,
			Cond:       core.Deterministic{N: cfg.N},
			Bits:       cfg.Bits,
			Inj:        cfg.Inj,
			Seed:       cfg.Seed,
			Trace:      true,
		},
	})
	if err != nil {
		return nil, nil, err
	}
	return res.Trace.Timeline(), res, nil
}

// OverheadConfig parameterizes the Fig. 10 performance-overhead experiment.
type OverheadConfig struct {
	Prog      *isa.Program
	WorldSize int
	Ops       []isa.Op
	// N is the execution count at which the identity injection fires
	// (the paper uses "after it has been executed 1000 times").
	N          uint64
	Reps       int // timing repetitions per configuration
	Seed       int64
	TargetRank int
}

// OverheadResult reports wall-clock per-run times for the four
// configurations of Fig. 10. Injection uses the identity injector so every
// configuration executes identical guest work.
type OverheadResult struct {
	Baseline       time.Duration // no injection, no tracing
	InjectOnly     time.Duration // injection, no tracing
	TraceOnly      time.Duration // no injection, tracing enabled
	InjectAndTrace time.Duration // injection + tracing
}

// InjectOverheadPct returns the injection-only overhead over baseline (%).
func (o OverheadResult) InjectOverheadPct() float64 {
	return pctOver(o.InjectOnly, o.Baseline)
}

// TraceOverheadPct returns the tracing overhead over baseline (%).
func (o OverheadResult) TraceOverheadPct() float64 {
	return pctOver(o.InjectAndTrace, o.InjectOnly)
}

func pctOver(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return 100 * (float64(a) - float64(b)) / float64(b)
}

// MeasureOverhead times the four Fig. 10 configurations and returns mean
// per-run durations.
func MeasureOverhead(cfg OverheadConfig) (OverheadResult, error) {
	if cfg.Reps <= 0 {
		cfg.Reps = 3
	}
	world := cfg.WorldSize
	if world == 0 {
		world = 1
	}
	timeIt := func(spec *core.Spec) (time.Duration, error) {
		var total time.Duration
		for i := 0; i < cfg.Reps; i++ {
			start := time.Now()
			res, err := core.Run(core.RunConfig{Prog: cfg.Prog, WorldSize: world, Spec: spec})
			if err != nil {
				return 0, err
			}
			for r, t := range res.Terms {
				if t.Abnormal() {
					return 0, fmt.Errorf("campaign: overhead run rank %d: %s", r, t)
				}
			}
			total += time.Since(start)
		}
		return total / time.Duration(cfg.Reps), nil
	}
	mkSpec := func(inject, traceOn bool) *core.Spec {
		if !inject && !traceOn {
			return nil
		}
		cond := core.Condition(core.Deterministic{N: cfg.N})
		if !inject {
			// Tracing-only: arm with a condition that never fires so the
			// instrumentation and taint machinery are active but no fault
			// is placed.
			cond = core.Deterministic{N: 1 << 62}
		}
		return &core.Spec{
			Target:     cfg.Prog.Name,
			Ops:        cfg.Ops,
			TargetRank: cfg.TargetRank,
			Cond:       cond,
			Inj:        core.IdentityInjector{Bits: 8},
			Seed:       cfg.Seed,
			Trace:      traceOn,
		}
	}
	var out OverheadResult
	var err error
	if out.Baseline, err = timeIt(nil); err != nil {
		return out, err
	}
	if out.InjectOnly, err = timeIt(mkSpec(true, false)); err != nil {
		return out, err
	}
	if out.TraceOnly, err = timeIt(mkSpec(false, true)); err != nil {
		return out, err
	}
	if out.InjectAndTrace, err = timeIt(mkSpec(true, true)); err != nil {
		return out, err
	}
	return out, nil
}
