package campaign

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteOutcomesCSV writes one row per run (requires Config.KeepRunOutcomes)
// with the injection record and classified outcome — the raw material for
// external statistical analysis of a campaign.
func (s *Summary) WriteOutcomesCSV(w io.Writer) error {
	if s.Outcomes == nil {
		return fmt.Errorf("campaign: no per-run outcomes (set Config.KeepRunOutcomes)")
	}
	cw := csv.NewWriter(w)
	header := []string{
		"run", "outcome", "term_class", "root_rank", "opcode", "exec_count",
		"target", "mask", "before", "after", "propagated",
		"tainted_reads", "tainted_writes",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, o := range s.Outcomes {
		row := []string{
			strconv.Itoa(i),
			o.Outcome.String(),
			o.Term.String(),
			strconv.Itoa(o.RootRank),
			"", "", "", "", "", "",
			strconv.FormatBool(o.Propagated),
			strconv.FormatUint(o.TaintedReads, 10),
			strconv.FormatUint(o.TaintedWrites, 10),
		}
		if len(o.Records) > 0 {
			r := o.Records[0]
			row[4] = r.GuestOpS
			row[5] = strconv.FormatUint(r.ExecCount, 10)
			row[6] = r.Target
			row[7] = fmt.Sprintf("%#x", r.Mask)
			row[8] = fmt.Sprintf("%#x", r.Before)
			row[9] = fmt.Sprintf("%#x", r.After)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
