package campaign

import (
	"testing"

	"chaser/internal/apps"
	"chaser/internal/core"
	"chaser/internal/isa"
	"chaser/internal/tcg"
)

// hdrInjector corrupts the value register of the store that writes the
// worker-1 row count into Matvec's work header, reproducing the paper's
// rare "slave node failed" mechanism deterministically: the corrupted
// header propagates to the worker and kills it there.
type hdrInjector struct {
	hdrSlot uint64 // guest address of hdr[1]
	mask    uint64
}

func (h hdrInjector) Inject(ctx *core.Context) (core.InjectionRecord, error) {
	if ctx.Instr.Op != isa.OpSt {
		return core.InjectionRecord{}, core.ErrDeclined
	}
	// The store's effective address is base register + displacement.
	addr := ctx.Machine.GPR(ctx.Instr.Rs1) + uint64(ctx.Instr.Imm)
	if addr != h.hdrSlot {
		return core.InjectionRecord{}, core.ErrDeclined
	}
	reg := tcg.GPR(ctx.Instr.Rs2) // the store's value register
	before, after := core.CorruptRegister(ctx.Machine, reg, h.mask, ctx.Trace)
	return core.InjectionRecord{
		Rank: ctx.Machine.Rank, PC: ctx.Op.GuestPC, GuestOp: ctx.Instr.Op,
		GuestOpS: ctx.Instr.Op.String(), ExecCount: ctx.ExecCount,
		Target: "reg " + reg.String(), Mask: h.mask, Before: before, After: after,
	}, nil
}

// matvecHdrAddr computes the guest address of hdr[1] on the master: the
// fourth heap allocation after x (n), a (n*n), and b (n).
func matvecHdrAddr(n uint64) uint64 {
	return isa.HeapBase + 8*(n+n*n+n) + 8 // hdr[1]
}

func TestSlaveNodeFailureMechanism(t *testing.T) {
	app, err := apps.ByName("matvec")
	if err != nil {
		t.Fatal(err)
	}
	n := uint64(apps.DefaultMatvecN)
	golden, err := core.Golden(app.Prog, app.WorldSize, 0)
	if err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name     string
		mask     uint64
		wantTerm TermClass
	}{
		// A high-bit flip makes the worker's row count astronomically
		// large: the worker's allocation fails with an OS exception.
		{"huge rows kills worker with OOM", 1 << 40, TermSlaveNode},
		// Flipping rows 8 -> 0 makes the worker receive fewer elements
		// than the master sends: truncation detected by MPI on the worker.
		{"shrunk rows trips MPI truncation on worker", 1 << 3, TermSlaveNode},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := core.Run(core.RunConfig{
				Prog:      app.Prog,
				WorldSize: app.WorldSize,
				Spec: &core.Spec{
					Target:     app.Prog.Name,
					Ops:        []isa.Op{isa.OpSt},
					TargetRank: 0,
					Cond:       core.Group{Start: 1, Every: 1}, // offer every st
					Inj: hdrInjector{
						hdrSlot: matvecHdrAddr(n),
						mask:    tt.mask,
					},
					Seed:  1,
					Trace: true,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Injected() {
				t.Fatal("header store never hit")
			}
			out := Classify(res, golden.Outputs, 0)
			if out.Outcome != OutcomeTerminated {
				t.Fatalf("outcome = %v (terms: %v)", out.Outcome, res.Terms)
			}
			if out.Term != tt.wantTerm {
				t.Fatalf("term = %v, want %v (terms: %v)", out.Term, tt.wantTerm, res.Terms)
			}
			if out.RootRank == 0 {
				t.Error("root rank is the master; fatal event should be on a worker")
			}
			if !out.SlaveTermOS && !out.SlaveTermMPI {
				t.Error("slave breakdown flags not set")
			}
		})
	}
}
