package campaign

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chaser/internal/apps"
	"chaser/internal/core"
	"chaser/internal/obs"
	"chaser/internal/tainthub"
)

// summariesEqual compares two summaries through their canonical JSON form
// (covers every count, breakdown and histogram the export exposes).
func summariesEqual(t *testing.T, a, b *Summary) {
	t.Helper()
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Errorf("summaries diverge:\n%s\n%s", aj, bj)
	}
}

func kmeansConfig(t *testing.T) Config {
	t.Helper()
	app, err := apps.ByName("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
		Ops: app.DefaultOps, TargetRank: 0,
		Runs: 15, Bits: 1, Seed: 808, Trace: true, Parallel: 4,
		KeepRunOutcomes: true,
	}
}

// TestJournalResumeSkipsCompletedRuns journals a full campaign, then
// resumes from the finished journal: every run must be served from the
// journal (none re-executed) and the summary must be byte-identical.
func TestJournalResumeSkipsCompletedRuns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	cfg := kmeansConfig(t)
	cfg.Journal = path
	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	rcfg := cfg
	rcfg.Journal = ""
	rcfg.Resume = path
	rcfg.Obs = reg
	res, err := Run(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	summariesEqual(t, full, res)
	if got := reg.Counter("campaign_resumed_runs_total").Value(); got != uint64(cfg.Runs) {
		t.Errorf("campaign_resumed_runs_total = %d, want %d", got, cfg.Runs)
	}
	if got := reg.Counter("campaign_runs_started_total").Value(); got != 0 {
		t.Errorf("%d runs re-executed on a complete journal", got)
	}
	// Per-run outcomes survive the JSON round trip, including the injected
	// opcode the per-op breakdown keys on.
	for i := range full.Outcomes {
		f, r := full.Outcomes[i], res.Outcomes[i]
		if f.Outcome != r.Outcome || f.Term != r.Term || f.InjectedOp() != r.InjectedOp() {
			t.Errorf("run %d: %v/%v/%q != %v/%v/%q",
				i, f.Outcome, f.Term, f.InjectedOp(), r.Outcome, r.Term, r.InjectedOp())
		}
	}
}

// TestJournalTornTail simulates a crash mid-append: the journal loses half
// of its final line. Resume must tolerate it, re-run only the torn run,
// and reproduce the uninterrupted summary; afterwards the compacted file
// must parse cleanly end to end.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	cfg := kmeansConfig(t)
	cfg.Journal = path
	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	rcfg := cfg
	rcfg.Journal = ""
	rcfg.Resume = path
	reg := obs.NewRegistry()
	rcfg.Obs = reg
	res, err := Run(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	summariesEqual(t, full, res)
	if got := reg.Counter("campaign_resumed_runs_total").Value(); got != uint64(cfg.Runs-1) {
		t.Errorf("resumed %d runs, want %d (one torn)", got, cfg.Runs-1)
	}

	// The compaction + append must leave a fully parseable file.
	_, done, err := readBackJournal(t, path, cfg)
	if err != nil {
		t.Fatalf("journal unreadable after resume: %v", err)
	}
	if len(done) != cfg.Runs {
		t.Errorf("journal holds %d runs after resume, want %d", len(done), cfg.Runs)
	}
}

func readBackJournal(t *testing.T, path string, cfg Config) (*Journal, map[int]RunOutcome, error) {
	t.Helper()
	j, done, err := ResumeJournal(path, cfg)
	if j != nil {
		j.Close()
	}
	return j, done, err
}

// TestJournalHeaderMismatch: a journal from a different campaign must be
// rejected, not silently merged.
func TestJournalHeaderMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	cfg := kmeansConfig(t)
	cfg.Runs = 3
	cfg.Journal = path
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Journal = ""
	bad.Resume = path
	bad.Seed++
	if _, err := Run(bad); err == nil {
		t.Error("journal with different seed accepted")
	}
	if _, _, err := ResumeJournal(filepath.Join(t.TempDir(), "absent.jsonl"), cfg); err == nil {
		t.Error("missing journal accepted")
	}
}

// TestCampaignInterruptAndResume is the checkpoint acceptance test: a
// campaign interrupted mid-flight (the SIGINT path minus the signal
// plumbing) and resumed from its journal must produce exactly the summary
// of an uninterrupted campaign.
func TestCampaignInterruptAndResume(t *testing.T) {
	cfg := kmeansConfig(t)
	cfg.Runs = 40
	cfg.Parallel = 2
	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "run.jsonl")
	interrupted := false
	for attempt := 0; attempt < 5 && !interrupted; attempt++ {
		stop := make(chan struct{})
		var once sync.Once
		icfg := cfg
		icfg.Journal = path
		icfg.Stop = stop
		icfg.ProgressInterval = time.Millisecond
		icfg.Progress = func(p ProgressInfo) {
			if p.Done >= 2 {
				once.Do(func() { close(stop) })
			}
		}
		_, err := Run(icfg)
		switch {
		case errors.Is(err, ErrInterrupted):
			interrupted = true
		case err == nil:
			// The whole campaign outran the interrupt; try again.
		default:
			t.Fatal(err)
		}
	}
	if !interrupted {
		t.Fatal("campaign never interrupted across 5 attempts")
	}

	rcfg := cfg
	rcfg.Resume = path
	res, err := Run(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	summariesEqual(t, full, res)
}

// panicHub blows up on every taint exchange, modeling a simulator bug that
// fires inside rank goroutines (the hooks run on the rank's own stack).
type panicHub struct{}

func (panicHub) Publish(tainthub.ReqID, tainthub.Key, uint64, []uint8) error {
	panic("injected test panic: publish")
}
func (panicHub) Poll(tainthub.ReqID, tainthub.Key, uint64) ([]uint8, bool, error) {
	panic("injected test panic: poll")
}
func (panicHub) Stats() tainthub.Stats { return tainthub.Stats{} }

// TestCampaignPanicIsolation: a panic inside single runs (down in the rank
// goroutines) must cost exactly those runs — recorded as
// OutcomeSimCrash — while the campaign completes and classifies the rest.
func TestCampaignPanicIsolation(t *testing.T) {
	app, err := apps.ByName("matvec")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sum, err := Run(Config{
		Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
		Ops: app.DefaultOps, TargetRank: app.TargetRank,
		Runs: 10, Bits: 1, Seed: 4242, Trace: true, Parallel: 2,
		Hub: panicHub{}, Obs: reg, KeepRunOutcomes: true,
	})
	if err != nil {
		t.Fatalf("campaign died instead of isolating the panic: %v", err)
	}
	if sum.SimCrash == 0 {
		t.Fatal("no run ever reached the panicking hub")
	}
	if got := reg.Counter("campaign_runs_panic_total").Value(); got != uint64(sum.SimCrash) {
		t.Errorf("campaign_runs_panic_total = %d, SimCrash = %d", got, sum.SimCrash)
	}
	crashes := 0
	for i, o := range sum.Outcomes {
		if o.Outcome == 0 {
			t.Errorf("run %d has no outcome", i)
		}
		if o.Outcome == OutcomeSimCrash {
			crashes++
			if o.PanicMsg == "" {
				t.Errorf("run %d: crash without panic message", i)
			}
		}
	}
	if crashes != sum.SimCrash {
		t.Errorf("outcome list has %d crashes, summary says %d", crashes, sum.SimCrash)
	}
}

// outageHub delegates to a TCP hub client and, at the Nth call, kills and
// restarts the server — deterministically placing a full hub outage in the
// middle of the campaign.
type outageHub struct {
	inner tainthub.Hub
	calls atomic.Int64
	at    int64
	once  sync.Once
	blast func()
}

func (o *outageHub) maybeBlast() {
	if o.calls.Add(1) == o.at {
		o.once.Do(o.blast)
	}
}

func (o *outageHub) Publish(id tainthub.ReqID, k tainthub.Key, seq uint64, masks []uint8) error {
	o.maybeBlast()
	return o.inner.Publish(id, k, seq, masks)
}

func (o *outageHub) Poll(id tainthub.ReqID, k tainthub.Key, seq uint64) ([]uint8, bool, error) {
	o.maybeBlast()
	return o.inner.Poll(id, k, seq)
}

func (o *outageHub) Stats() tainthub.Stats {
	o.maybeBlast()
	return o.inner.Stats()
}

// TestCampaignSurvivesHubOutage is the hub-outage acceptance test: the
// TaintHub server is killed and restarted mid-campaign; client retries and
// reconnects must carry every run through, and the summary must equal the
// uninterrupted (private-hub) campaign's.
func TestCampaignSurvivesHubOutage(t *testing.T) {
	app, err := apps.ByName("matvec")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
		Ops: app.DefaultOps, TargetRank: app.TargetRank,
		Runs: 40, Bits: 1, Seed: 4242, Trace: true, Parallel: 4,
	}
	baseline, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	local := tainthub.NewLocal()
	srv, err := tainthub.NewServer(local, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	defer func() { srv.Close() }()

	reg := obs.NewRegistry()
	client, err := tainthub.DialConfig(addr, tainthub.ClientConfig{
		RPCTimeout:  5 * time.Second,
		MaxAttempts: 20,
		BackoffBase: time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		Obs:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	hub := &outageHub{inner: client, at: 5, blast: func() {
		// Graceful close drains in-flight requests (their responses are
		// delivered), then the server restarts on the same address with the
		// same backing state — a head-node hub bouncing mid-campaign.
		if err := srv.Close(); err != nil {
			t.Errorf("outage close: %v", err)
		}
		for i := 0; ; i++ {
			s2, err := tainthub.NewServer(local, addr)
			if err == nil {
				srv = s2
				return
			}
			if i >= 100 {
				t.Errorf("could not rebind %s: %v", addr, err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}}

	ocfg := cfg
	ocfg.Hub = hub
	outage, err := Run(ocfg)
	if err != nil {
		t.Fatalf("campaign failed across the hub outage: %v", err)
	}
	summariesEqual(t, baseline, outage)
	if hub.calls.Load() < hub.at {
		t.Fatalf("outage never triggered (%d hub calls)", hub.calls.Load())
	}
	if got := reg.Counter("hub_reconnects_total").Value(); got < 1 {
		t.Errorf("hub_reconnects_total = %d, want >= 1", got)
	}
}

// crashOnPublishHub triggers its blast at the Nth Publish — counting
// publishes, not all calls, guarantees the WAL holds durable records when
// the crash lands, whatever the poll/publish interleaving.
type crashOnPublishHub struct {
	inner tainthub.Hub
	pubs  atomic.Int64
	at    int64
	once  sync.Once
	blast func()
}

func (h *crashOnPublishHub) Publish(id tainthub.ReqID, k tainthub.Key, seq uint64, masks []uint8) error {
	if h.pubs.Add(1) == h.at {
		h.once.Do(h.blast)
	}
	return h.inner.Publish(id, k, seq, masks)
}

func (h *crashOnPublishHub) Poll(id tainthub.ReqID, k tainthub.Key, seq uint64) ([]uint8, bool, error) {
	return h.inner.Poll(id, k, seq)
}

func (h *crashOnPublishHub) Stats() tainthub.Stats { return h.inner.Stats() }

// TestCampaignSurvivesHubCrashDurable is the durability acceptance test
// (the tentpole's big claim): mid-campaign, the TaintHub is killed the
// hard way — server hard-aborted with responses in flight, hub abandoned
// with no final snapshot, exactly what kill -9 leaves behind — and a
// *fresh* hub process recovers from WAL+snapshot on the same address. The
// campaign runs under HubFailRun, so any lost or duplicated taint record
// fails a run loudly; the summary must be bitwise identical to an
// uninterrupted private-hub campaign.
func TestCampaignSurvivesHubCrashDurable(t *testing.T) {
	app, err := apps.ByName("matvec")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
		Ops: app.DefaultOps, TargetRank: app.TargetRank,
		Runs: 40, Bits: 1, Seed: 4242, Trace: true, Parallel: 4,
	}
	baseline, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(t.TempDir(), "hub.wal")
	reg := obs.NewRegistry()
	durable, err := tainthub.OpenDurable(walPath, tainthub.DurableConfig{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := tainthub.NewServer(durable, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	defer func() { srv.Close(); durable.Close() }()

	client, err := tainthub.DialConfig(addr, tainthub.ClientConfig{
		RPCTimeout:  5 * time.Second,
		MaxAttempts: 20,
		BackoffBase: time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		Obs:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	hub := &crashOnPublishHub{inner: client, at: 3, blast: func() {
		// Pin durable state that provably predates the crash: concurrent
		// campaign publishes may still be in flight when the blast fires, so
		// without this the WAL could legitimately be empty and the replayed
		// assertion below would race.
		if err := durable.Publish(tainthub.ReqID{Client: 555, Seq: 1},
			tainthub.Key{Src: 0, Dst: 1, Tag: 1, NS: 999999}, 0, []uint8{0xee}); err != nil {
			t.Errorf("sentinel publish: %v", err)
		}
		// The crash: connections are severed with responses possibly
		// undelivered, and the hub is dropped without a final snapshot.
		srv.Abort()
		if err := durable.Abandon(); err != nil {
			t.Errorf("abandon: %v", err)
		}
		// The replacement process: cold recovery from WAL+snapshot.
		reborn, err := tainthub.OpenDurable(walPath, tainthub.DurableConfig{Obs: reg})
		if err != nil {
			t.Errorf("recovery: %v", err)
			return
		}
		durable = reborn
		for i := 0; ; i++ {
			s2, err := tainthub.NewServer(reborn, addr)
			if err == nil {
				srv = s2
				return
			}
			if i >= 100 {
				t.Errorf("could not rebind %s: %v", addr, err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}}

	ccfg := cfg
	ccfg.Hub = hub
	ccfg.HubPolicy = core.HubFailRun
	crashed, err := Run(ccfg)
	if err != nil {
		t.Fatalf("campaign failed across the hub crash: %v", err)
	}
	summariesEqual(t, baseline, crashed)
	if hub.pubs.Load() < hub.at {
		t.Fatalf("crash never triggered (%d publishes)", hub.pubs.Load())
	}
	// Zero lost or duplicated taint, asserted via the durability counters:
	// the reborn process rebuilt its state from disk...
	if got := reg.Counter("tainthub_replayed_total").Value(); got == 0 {
		t.Error("tainthub_replayed_total = 0: recovery replayed nothing")
	}
	// ...and the retried RPCs were absorbed by the reply cache rather than
	// re-executed (retries whose original landed before the crash).
	if got := reg.Counter("hub_rpc_retries_total").Value(); got == 0 {
		t.Error("hub_rpc_retries_total = 0: the crash was invisible to the client")
	}

	// Explicit exactly-once check against the recovered hub: a destructive
	// poll retried under the same ReqID returns the original masks.
	k := tainthub.Key{Src: 0, Dst: 1, Tag: 99, NS: 12345}
	if err := client.Publish(tainthub.ReqID{Client: 424242, Seq: 1}, k, 0, []uint8{0xcd}); err != nil {
		t.Fatal(err)
	}
	id := tainthub.ReqID{Client: 424242, Seq: 2}
	if masks, ok, _ := client.Poll(id, k, 0); !ok || masks[0] != 0xcd {
		t.Fatal("poll against recovered hub missed")
	}
	masks, ok, err := client.Poll(id, k, 0)
	if err != nil || !ok || masks[0] != 0xcd {
		t.Fatalf("replayed poll = %v, %v, %v; destructive retry dropped taint", masks, ok, err)
	}
	if got := reg.Counter("tainthub_dedup_hits_total").Value(); got == 0 {
		t.Error("tainthub_dedup_hits_total = 0: reply cache never used")
	}
}
