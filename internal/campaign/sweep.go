package campaign

import (
	"fmt"
	"strings"

	"chaser/internal/stats"
)

// SweepResult pairs a flipped-bit count with its campaign summary.
type SweepResult struct {
	Bits    int
	Summary *Summary
}

// BitSweep runs the same campaign at several per-injection bit counts —
// the paper's "the faults are x bits flipped within the operand" parameter
// — quantifying how fault magnitude shifts the outcome distribution
// (single-bit flips are often benign; multi-bit flips crash or corrupt).
//
// The golden run is identical for every bit count, so the campaign baseline
// — golden execution counts, the derived instruction budget, and the shared
// translation base cache — is computed once and reused for every entry.
func BitSweep(cfg Config, bitCounts []int) ([]SweepResult, error) {
	base, err := prepare(cfg)
	if err != nil {
		return nil, fmt.Errorf("campaign: sweep golden run: %w", err)
	}
	out := make([]SweepResult, 0, len(bitCounts))
	for _, bits := range bitCounts {
		c := cfg
		c.Bits = bits
		c.Name = fmt.Sprintf("%s/bits=%d", cfg.Name, bits)
		// A sweep reuses one Config for several campaigns; a single journal
		// path cannot checkpoint them all, so journaling is per-campaign
		// only.
		c.Journal, c.Resume = "", ""
		// Sweep entries draw identical task lists (tasks depend on seed and
		// baseline, not bits), so fork-point snapshots cached in the shared
		// baseline are hit by every entry after the first.
		c.forkShared = true
		sum, err := runPrepared(c, base)
		if err != nil {
			return nil, fmt.Errorf("campaign: sweep bits=%d: %w", bits, err)
		}
		out = append(out, SweepResult{Bits: bits, Summary: sum})
	}
	return out, nil
}

// SweepTable renders the sweep as one row per bit count.
func SweepTable(results []SweepResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s %10s %10s %10s %10s\n",
		"bits", "benign", "sdc", "detected", "terminated")
	for _, r := range results {
		s := r.Summary
		fmt.Fprintf(&sb, "%-6d %10s %10s %10s %10s\n",
			r.Bits,
			stats.Pct(s.Benign, s.Injected),
			stats.Pct(s.SDC, s.Injected),
			stats.Pct(s.Detected, s.Injected),
			stats.Pct(s.Terminated, s.Injected))
	}
	return sb.String()
}
