package campaign

import (
	"testing"

	"chaser/internal/apps"
	"chaser/internal/vm"
)

// TestTimelineDefaultSampleInterval pins the SampleInterval=0 contract: zero
// selects the vm's default (the paper's 100K instructions), so an explicit
// default-interval run must produce the identical curve.
func TestTimelineDefaultSampleInterval(t *testing.T) {
	app, err := apps.ByName("clamr")
	if err != nil {
		t.Fatal(err)
	}
	base := TimelineConfig{
		Prog: app.Prog, WorldSize: 1, Ops: app.DefaultOps,
		N: 200, Bits: 1, Seed: 6,
	}
	implicit := base // SampleInterval left zero
	explicit := base
	explicit.SampleInterval = vm.DefaultSampleInterval

	implPoints, implRes, err := Timeline(implicit)
	if err != nil {
		t.Fatal(err)
	}
	explPoints, _, err := Timeline(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if !implRes.Injected() {
		t.Fatal("no injection")
	}
	if len(implPoints) != len(explPoints) {
		t.Fatalf("default-interval curve has %d points, explicit 100K has %d",
			len(implPoints), len(explPoints))
	}
	for i := range implPoints {
		if implPoints[i] != explPoints[i] {
			t.Errorf("point %d differs: %+v vs %+v", i, implPoints[i], explPoints[i])
		}
	}
	// Every sample must land on the default-interval grid.
	for _, p := range implPoints {
		if p.Instrs%vm.DefaultSampleInterval != 0 {
			t.Errorf("sample at %d instrs is off the %d-instruction grid",
				p.Instrs, uint64(vm.DefaultSampleInterval))
		}
	}
}

// TestTimelineInjectionBeyondEnd runs a timeline whose trigger count exceeds
// the program's total executions of the targeted ops: the fault never fires,
// the run completes cleanly, and the curve stays empty (no taint to sample).
func TestTimelineInjectionBeyondEnd(t *testing.T) {
	app, err := apps.ByName("clamr")
	if err != nil {
		t.Fatal(err)
	}
	points, res, err := Timeline(TimelineConfig{
		Prog: app.Prog, WorldSize: 1, Ops: app.DefaultOps,
		N: 1 << 60, Bits: 1, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected() {
		t.Fatalf("injection fired at execution %d of an op executed far fewer times", uint64(1)<<60)
	}
	for r, term := range res.Terms {
		if term.Abnormal() {
			t.Errorf("rank %d terminated abnormally without an injection: %s", r, term)
		}
	}
	// The sampler still fires on its grid (tracing is armed), but with no
	// fault there is never a tainted byte to report.
	for _, p := range points {
		if p.TaintedBytes != 0 {
			t.Errorf("uninjected run reports %d tainted bytes at %d instrs",
				p.TaintedBytes, p.Instrs)
		}
	}
	if out := Classify(res, res.Outputs, 0); out.Outcome != OutcomeNoInjection {
		t.Errorf("classified %s, want no-injection", out.Outcome)
	}
}

// TestTimelineTargetRankOutOfWorld points the injector at a rank that does
// not exist: no machine is armed, so the run is effectively golden — it must
// complete normally with no injection rather than error or crash.
func TestTimelineTargetRankOutOfWorld(t *testing.T) {
	app, err := apps.ByName("clamr")
	if err != nil {
		t.Fatal(err)
	}
	points, res, err := Timeline(TimelineConfig{
		Prog: app.Prog, WorldSize: 1, Ops: app.DefaultOps,
		N: 200, Bits: 1, Seed: 6, TargetRank: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected() {
		t.Fatalf("injected on rank %d with a world of 1", res.Records[0].Rank)
	}
	for r, term := range res.Terms {
		if term.Abnormal() {
			t.Errorf("rank %d terminated abnormally: %s", r, term)
		}
	}
	for _, p := range points {
		if p.TaintedBytes != 0 {
			t.Errorf("unarmed world reports %d tainted bytes at %d instrs",
				p.TaintedBytes, p.Instrs)
		}
	}
}
