package campaign

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"chaser/internal/apps"
	"chaser/internal/isa"
	"chaser/internal/tainthub"
)

func TestCampaignConfigErrors(t *testing.T) {
	app, err := apps.ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(Config{Prog: app.Prog, Runs: 1}); err == nil {
		t.Error("config without ops accepted")
	}
	if _, err := Run(Config{
		Prog: app.Prog, Runs: 1, Ops: []isa.Op{isa.OpFDiv}, TargetRank: 0, Name: "bfs",
	}); err == nil {
		t.Error("targeting an op the app never executes must fail")
	}
}

func TestCampaignBFS(t *testing.T) {
	app, err := apps.ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Run(Config{
		Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
		Ops: app.DefaultOps, TargetRank: 0,
		Runs: 60, Bits: 1, Seed: 1001, KeepRunOutcomes: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Injected != 60 {
		t.Errorf("injected = %d, want 60 (injection points come from golden profile)", sum.Injected)
	}
	total := sum.Benign + sum.SDC + sum.Detected + sum.Terminated
	if total != sum.Injected {
		t.Errorf("outcome sum %d != injected %d", total, sum.Injected)
	}
	// cmp faults must produce a mix: at least two distinct outcomes.
	kinds := 0
	for _, n := range []int{sum.Benign, sum.SDC, sum.Terminated} {
		if n > 0 {
			kinds++
		}
	}
	if kinds < 2 {
		t.Errorf("outcome distribution degenerate: %+v", sum)
	}
	if len(sum.Outcomes) != 60 {
		t.Errorf("outcomes kept = %d", len(sum.Outcomes))
	}
	if !strings.Contains(sum.Report(), "benign") {
		t.Error("report missing fields")
	}
}

func TestCampaignReproducible(t *testing.T) {
	app, err := apps.ByName("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Summary {
		s, err := Run(Config{
			Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
			Ops: app.DefaultOps, TargetRank: 0,
			Runs: 20, Bits: 1, Seed: 777, Parallel: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(), run()
	if a.Benign != b.Benign || a.SDC != b.SDC || a.Terminated != b.Terminated || a.Detected != b.Detected {
		t.Errorf("campaign not reproducible: %+v vs %+v", a, b)
	}
}

func TestCampaignMatvecTerminationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rank campaign")
	}
	app, err := apps.ByName("matvec")
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Run(Config{
		Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
		Ops: app.DefaultOps, TargetRank: app.TargetRank,
		Runs: 120, Bits: 1, Seed: 2024, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Terminated == 0 {
		t.Fatal("no terminated runs: mov/ld/st faults must crash sometimes")
	}
	// Table III shape: OS exceptions dominate terminations.
	if sum.TermOS <= sum.TermMPI+sum.TermSlave {
		t.Errorf("OS exceptions (%d) should dominate MPI (%d) + slave (%d)",
			sum.TermOS, sum.TermMPI, sum.TermSlave)
	}
	tbl := sum.TerminationTable()
	for _, want := range []string{"OS Exceptions", "MPI error detected", "Slave Node failed", "Propagation"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}

func TestCampaignCLAMRDetectsFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("long campaign")
	}
	app, err := apps.ByName("clamr")
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Run(Config{
		Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
		Ops: app.DefaultOps, TargetRank: 0,
		Runs: 60, Bits: 1, Seed: 555,
	})
	if err != nil {
		t.Fatal(err)
	}
	// CLAMR's checker must catch a meaningful share of FP faults.
	if sum.Detected == 0 {
		t.Errorf("mass-conservation checker never fired: %+v", sum)
	}
	if sum.Benign == 0 {
		t.Errorf("no benign runs (mantissa flips should often vanish): %+v", sum)
	}
}

func TestCampaignTraceHistograms(t *testing.T) {
	app, err := apps.ByName("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Run(Config{
		Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
		Ops: app.DefaultOps, TargetRank: 0,
		Runs: 30, Bits: 1, Seed: 31, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.ReadsHist.Total() != 30 || sum.WritesHist.Total() != 30 {
		t.Errorf("histogram totals = %d/%d", sum.ReadsHist.Total(), sum.WritesHist.Total())
	}
	if sum.ReadsHist.Max() == 0 {
		t.Error("no run had any tainted reads — tracing broken?")
	}
	rep := sum.MemOpsReport()
	for _, want := range []string{"Fig. 8", "Fig. 9", "read-heavy"} {
		if !strings.Contains(rep, want) {
			t.Errorf("mem ops report missing %q", want)
		}
	}
}

func TestTimelineFig7(t *testing.T) {
	app, err := apps.ByName("clamr")
	if err != nil {
		t.Fatal(err)
	}
	points, res, err := Timeline(TimelineConfig{
		Prog: app.Prog, WorldSize: 1, Ops: app.DefaultOps,
		N: 200, Bits: 1, Seed: 6, SampleInterval: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Injected() {
		t.Fatal("no injection")
	}
	if len(points) < 5 {
		t.Fatalf("timeline too short: %d points", len(points))
	}
	// Samples are ordered by instruction count.
	for i := 1; i < len(points); i++ {
		if points[i].Instrs <= points[i-1].Instrs {
			t.Errorf("timeline not monotone at %d", i)
		}
	}
}

func TestMeasureOverheadFig10(t *testing.T) {
	app, err := apps.ByName("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureOverhead(OverheadConfig{
		Prog: app.Prog, WorldSize: 1, Ops: app.DefaultOps,
		N: 1000, Reps: 2, Seed: 44,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline <= 0 || res.InjectOnly <= 0 || res.TraceOnly <= 0 || res.InjectAndTrace <= 0 {
		t.Fatalf("non-positive timings: %+v", res)
	}
	// The Fig. 10 shape (tracing >> injection) is asserted by the benchmark
	// harness where timings are amplified; under unit-test conditions —
	// especially -race — scheduler noise swamps sub-millisecond runs, so
	// only sanity-level bounds are checked here.
	if res.InjectAndTrace < res.Baseline/4 {
		t.Errorf("tracing run implausibly fast: %+v", res)
	}
}

func TestBitSweep(t *testing.T) {
	app, err := apps.ByName("clamr")
	if err != nil {
		t.Fatal(err)
	}
	results, err := BitSweep(Config{
		Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
		Ops: app.DefaultOps, TargetRank: 0,
		Runs: 40, Seed: 99,
	}, []int{1, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	// Wider flips must not be MORE benign than single-bit flips.
	b1 := results[0].Summary.Benign
	b16 := results[1].Summary.Benign
	if b16 > b1 {
		t.Errorf("benign(16 bits)=%d > benign(1 bit)=%d", b16, b1)
	}
	tbl := SweepTable(results)
	for _, want := range []string{"bits", "benign", "terminated"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}

func TestSummaryJSON(t *testing.T) {
	app, err := apps.ByName("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Run(Config{
		Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
		Ops: app.DefaultOps, TargetRank: 0,
		Runs: 15, Bits: 1, Seed: 8, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round trip: %v\n%s", err, data)
	}
	if back["name"] != "kmeans" {
		t.Errorf("name = %v", back["name"])
	}
	if int(back["runs"].(float64)) != 15 {
		t.Errorf("runs = %v", back["runs"])
	}
	reads, ok := back["tainted_reads"].(map[string]any)
	if !ok {
		t.Fatalf("no tainted_reads in %s", data)
	}
	if _, ok := reads["buckets"].([]any); !ok {
		t.Error("no histogram buckets")
	}
}

func TestCampaignSharedHub(t *testing.T) {
	// A whole parallel campaign sharing one TCP TaintHub: namespacing must
	// keep concurrent runs isolated, and results must match a campaign run
	// with private hubs.
	srv, err := tainthub.NewServer(tainthub.NewLocal(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := tainthub.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	app, err := apps.ByName("matvec")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
		Ops: app.DefaultOps, TargetRank: app.TargetRank,
		Runs: 40, Bits: 1, Seed: 4242, Trace: true, Parallel: 4,
	}
	private, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shared := cfg
	shared.Hub = client
	sharedSum, err := Run(shared)
	if err != nil {
		t.Fatal(err)
	}
	if private.Benign != sharedSum.Benign || private.SDC != sharedSum.SDC ||
		private.Terminated != sharedSum.Terminated ||
		private.PropagatedRuns != sharedSum.PropagatedRuns {
		t.Errorf("shared-hub campaign diverged:\nprivate: %+v\nshared:  %+v", private, sharedSum)
	}
	if client.Stats().Polls == 0 {
		t.Error("shared hub never used")
	}
}

func TestPerOpcodeBreakdown(t *testing.T) {
	app, err := apps.ByName("lud")
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Run(Config{
		Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
		Ops: app.DefaultOps, TargetRank: 0,
		Runs: 60, Bits: 1, Seed: 3030,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.PerOp) < 2 {
		t.Fatalf("per-op map too small: %v", sum.PerOp)
	}
	total := 0
	for op, oo := range sum.PerOp {
		n := oo.Benign + oo.SDC + oo.Detected + oo.Terminated
		if n == 0 {
			t.Errorf("opcode %q with zero runs", op)
		}
		total += n
	}
	if total != sum.Injected {
		t.Errorf("per-op totals %d != injected %d", total, sum.Injected)
	}
	rep := sum.PerOpReport()
	for _, want := range []string{"opcode", "benign", "ld"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestWriteOutcomesCSV(t *testing.T) {
	app, err := apps.ByName("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Run(Config{
		Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
		Ops: app.DefaultOps, TargetRank: 0,
		Runs: 12, Bits: 1, Seed: 6, Trace: true, KeepRunOutcomes: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := sum.WriteOutcomesCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 { // header + 12 runs
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][1] != "outcome" || rows[0][4] != "opcode" {
		t.Errorf("header = %v", rows[0])
	}
	seenOpcode := false
	for _, row := range rows[1:] {
		if row[4] != "" {
			seenOpcode = true
		}
		if row[1] == "" {
			t.Errorf("empty outcome in %v", row)
		}
	}
	if !seenOpcode {
		t.Error("no injection opcodes recorded")
	}
	// Without KeepRunOutcomes, the export refuses.
	bare, err := Run(Config{
		Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
		Ops: app.DefaultOps, TargetRank: 0, Runs: 3, Bits: 1, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := bare.WriteOutcomesCSV(&buf); err == nil {
		t.Error("export without outcomes succeeded")
	}
}
