package campaign

import (
	"encoding/json"

	"chaser/internal/stats"
)

// summaryJSON is the serialized form of a Summary, designed for external
// plotting/analysis tools.
type summaryJSON struct {
	Name     string `json:"name"`
	Runs     int    `json:"runs"`
	Injected int    `json:"injected"`

	Benign     int `json:"benign"`
	SDC        int `json:"sdc"`
	Detected   int `json:"detected"`
	Terminated int `json:"terminated"`

	TermOS      int `json:"term_os"`
	TermMPI     int `json:"term_mpi"`
	TermSlave   int `json:"term_slave"`
	TermHang    int `json:"term_hang"`
	TermTimeout int `json:"term_timeout"`

	SimCrash int `json:"sim_crash"`

	PropagatedRuns int `json:"propagated_runs"`
	PropSlaveOS    int `json:"prop_slave_os"`
	PropSlaveMPI   int `json:"prop_slave_mpi"`

	ReadOnlyRuns  int `json:"read_only_runs"`
	WriteOnlyRuns int `json:"write_only_runs"`
	ReadHeavyRuns int `json:"read_heavy_runs"`

	Reads  *histJSON `json:"tainted_reads,omitempty"`
	Writes *histJSON `json:"tainted_writes,omitempty"`
}

type histJSON struct {
	Total   uint64       `json:"total"`
	Mean    float64      `json:"mean"`
	Max     float64      `json:"max"`
	P50     float64      `json:"p50"`
	P95     float64      `json:"p95"`
	Buckets []bucketJSON `json:"buckets"`
}

type bucketJSON struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Count uint64  `json:"count"`
}

func histToJSON(h *stats.Histogram) *histJSON {
	if h == nil || h.Total() == 0 {
		return nil
	}
	out := &histJSON{
		Total: h.Total(),
		Mean:  h.Mean(),
		Max:   h.Max(),
		P50:   h.Quantile(0.5),
		P95:   h.Quantile(0.95),
	}
	for _, b := range h.Buckets() {
		out.Buckets = append(out.Buckets, bucketJSON{Lo: b.Lo, Hi: b.Hi, Count: b.Count})
	}
	return out
}

// MarshalJSON serializes the summary for external tools. Infinite bucket
// bounds are encoded as +/-1e308 (JSON has no infinity).
func (s *Summary) MarshalJSON() ([]byte, error) {
	j := summaryJSON{
		Name: s.Name, Runs: s.Runs, Injected: s.Injected,
		Benign: s.Benign, SDC: s.SDC, Detected: s.Detected, Terminated: s.Terminated,
		TermOS: s.TermOS, TermMPI: s.TermMPI, TermSlave: s.TermSlave, TermHang: s.TermHang,
		TermTimeout: s.TermTimeout, SimCrash: s.SimCrash,
		PropagatedRuns: s.PropagatedRuns, PropSlaveOS: s.PropSlaveOS, PropSlaveMPI: s.PropSlaveMPI,
		ReadOnlyRuns: s.ReadOnlyRuns, WriteOnlyRuns: s.WriteOnlyRuns, ReadHeavyRuns: s.ReadHeavyRuns,
		Reads:  histToJSON(s.ReadsHist),
		Writes: histToJSON(s.WritesHist),
	}
	clampInf := func(h *histJSON) {
		if h == nil {
			return
		}
		for i := range h.Buckets {
			if h.Buckets[i].Lo < -1e308 {
				h.Buckets[i].Lo = -1e308
			}
			if h.Buckets[i].Hi > 1e308 {
				h.Buckets[i].Hi = 1e308
			}
		}
	}
	clampInf(j.Reads)
	clampInf(j.Writes)
	return json.Marshal(j)
}
