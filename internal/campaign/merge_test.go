package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"chaser/internal/obs"
)

// runShard executes one shard window of cfg, journaling to path.
func runShard(t *testing.T, cfg Config, lo, hi int, path string) {
	t.Helper()
	cfg.Shard = &ShardRange{Lo: lo, Hi: hi}
	cfg.Journal = path
	if _, err := Run(cfg); err != nil {
		t.Fatalf("shard [%d,%d): %v", lo, hi, err)
	}
}

// TestMergeJournalsMatchesSingleProcess splits one campaign into three
// shard journals and merges them: the summary must be bitwise identical to
// the uninterrupted single-process campaign's.
func TestMergeJournalsMatchesSingleProcess(t *testing.T) {
	dir := t.TempDir()
	cfg := kmeansConfig(t)
	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	paths := []string{
		filepath.Join(dir, "shard0.jsonl"),
		filepath.Join(dir, "shard1.jsonl"),
		filepath.Join(dir, "shard2.jsonl"),
	}
	runShard(t, cfg, 0, 5, paths[0])
	runShard(t, cfg, 5, 10, paths[1])
	runShard(t, cfg, 10, 15, paths[2])
	merged, err := MergeJournals(cfg, nil, paths...)
	if err != nil {
		t.Fatal(err)
	}
	summariesEqual(t, full, merged)
}

// TestMergeJournalsDedupesOverlap merges journals with overlapping run
// windows — what re-enqueued shards leave behind when a dead worker's
// partial journal survives alongside the retry's complete one. Overlapping
// indices must be deduplicated (counted in campaign_runs_deduped_total),
// and the summary must still match the uninterrupted campaign exactly.
func TestMergeJournalsDedupesOverlap(t *testing.T) {
	dir := t.TempDir()
	cfg := kmeansConfig(t)
	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	runShard(t, cfg, 0, 10, a)
	runShard(t, cfg, 5, 15, b) // runs 5-9 journaled twice
	reg := obs.NewRegistry()
	merged, err := MergeJournals(cfg, reg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	summariesEqual(t, full, merged)
	if got := reg.Counter("campaign_runs_deduped_total").Value(); got != 5 {
		t.Errorf("campaign_runs_deduped_total = %d, want 5", got)
	}
}

// TestMergeJournalsMissingRunsFails refuses to summarize a campaign whose
// journals leave a hole in the run index space.
func TestMergeJournalsMissingRunsFails(t *testing.T) {
	dir := t.TempDir()
	cfg := kmeansConfig(t)
	a := filepath.Join(dir, "a.jsonl")
	runShard(t, cfg, 0, 10, a) // runs 10-14 never executed
	if _, err := MergeJournals(cfg, nil, a); err == nil {
		t.Fatal("merge of a partial campaign succeeded; want missing-runs error")
	}
}

// TestMergeJournalsRejectsForeignJournal refuses journals written by a
// different campaign configuration.
func TestMergeJournalsRejectsForeignJournal(t *testing.T) {
	dir := t.TempDir()
	cfg := kmeansConfig(t)
	a := filepath.Join(dir, "a.jsonl")
	runShard(t, cfg, 0, 15, a)
	other := cfg
	other.Seed++
	if _, err := MergeJournals(other, nil, a); err == nil {
		t.Fatal("merge accepted a journal from a different campaign")
	}
}

// TestResumeDedupesDuplicateEntries resumes from a journal whose entries
// repeat indices — what a worker that lost its lease but kept appending
// leaves behind. The duplicates must be dropped deterministically (first
// occurrence wins), counted in campaign_runs_deduped_total, and the
// resumed summary must still match the uninterrupted campaign exactly.
func TestResumeDedupesDuplicateEntries(t *testing.T) {
	dir := t.TempDir()
	cfg := kmeansConfig(t)
	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "run.jsonl")
	runShard(t, cfg, 0, 15, path)
	// Re-append the journal's last three entry lines verbatim.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n"))
	dupe := lines[len(lines)-3:]
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range dupe {
		if _, err := f.Write(append(bytes.TrimSuffix(l, []byte("\n")), '\n')); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	reg := obs.NewRegistry()
	cfg2 := cfg
	cfg2.Resume = path
	cfg2.Obs = reg
	res, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	summariesEqual(t, full, res)
	if got := reg.Counter("campaign_runs_deduped_total").Value(); got != 3 {
		t.Errorf("campaign_runs_deduped_total = %d, want 3", got)
	}
}
