package campaign

import (
	"errors"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"chaser/internal/apps"
	"chaser/internal/obs"
)

// siteFor picks a mid-execution single injection site for cfg's target rank
// from the golden baseline, the configuration where fork-point multiplexing
// pays off most.
func siteFor(t *testing.T, cfg Config) uint64 {
	t.Helper()
	base, err := prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := base.totals[cfg.TargetRank] / 2
	if n == 0 {
		n = 1
	}
	return n
}

// TestCampaignForkMatchesScratch is the campaign-level fork differential: a
// pinned-site campaign run with fork-point multiplexing must produce exactly
// the summary and per-run outcomes of the same campaign with forking
// disabled, while actually forking (one prefix run, every injection run
// forked).
func TestCampaignForkMatchesScratch(t *testing.T) {
	cfg := kmeansConfig(t)
	cfg.InjectExec = siteFor(t, cfg)

	scfg := cfg
	scfg.NoFork = true
	scratch, err := Run(scfg)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	fcfg := cfg
	fcfg.Obs = reg
	forked, err := Run(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	summariesEqual(t, scratch, forked)
	if !reflect.DeepEqual(scratch.Outcomes, forked.Outcomes) {
		t.Error("per-run outcomes diverge between forked and scratch campaigns")
	}
	if got := reg.Counter("campaign_prefix_runs_total").Value(); got != 1 {
		t.Errorf("campaign_prefix_runs_total = %d, want 1 (single pinned site)", got)
	}
	fr := reg.Counter("campaign_forked_runs_total").Value()
	fb := reg.Counter("campaign_fork_fallbacks_total").Value()
	if fr+fb != uint64(cfg.Runs) {
		t.Errorf("forked (%d) + fallbacks (%d) != runs (%d)", fr, fb, cfg.Runs)
	}
	if fr == 0 {
		t.Error("no runs actually forked")
	}
	if hw := reg.Gauge("campaign_snapshot_cache_bytes_high_water").Value(); hw <= 0 {
		t.Errorf("snapshot cache high water = %v, want > 0", hw)
	}
}

// TestCampaignForkMatchesScratchMPI runs the fork differential over a real
// MPI world (matvec, 4 ranks): pausing the world at the fork site freezes
// rank machines mid-conversation and the in-flight message queues with them.
func TestCampaignForkMatchesScratchMPI(t *testing.T) {
	app, err := apps.ByName("matvec")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
		Ops: app.DefaultOps, TargetRank: 0,
		Runs: 10, Bits: 1, Seed: 424, Trace: true, Parallel: 4,
		KeepRunOutcomes: true,
	}
	cfg.InjectExec = siteFor(t, cfg)

	scfg := cfg
	scfg.NoFork = true
	scratch, err := Run(scfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	fcfg := cfg
	fcfg.Obs = reg
	forked, err := Run(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	summariesEqual(t, scratch, forked)
	if !reflect.DeepEqual(scratch.Outcomes, forked.Outcomes) {
		t.Error("per-run outcomes diverge between forked and scratch MPI campaigns")
	}
	fr := reg.Counter("campaign_forked_runs_total").Value()
	fb := reg.Counter("campaign_fork_fallbacks_total").Value()
	if fr+fb != uint64(cfg.Runs) {
		t.Errorf("forked (%d) + fallbacks (%d) != runs (%d)", fr, fb, cfg.Runs)
	}
	if fr == 0 {
		t.Error("no MPI runs actually forked")
	}
}

// TestCampaignForkConcurrent exercises the snapshot cache's singleflight
// under a worker pool racing to the same fork point: exactly one prefix run,
// and the summary still matches scratch.
func TestCampaignForkConcurrent(t *testing.T) {
	cfg := kmeansConfig(t)
	cfg.InjectExec = siteFor(t, cfg)
	cfg.Runs = 12
	cfg.Parallel = 8

	scfg := cfg
	scfg.NoFork = true
	scratch, err := Run(scfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	fcfg := cfg
	fcfg.Obs = reg
	forked, err := Run(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	summariesEqual(t, scratch, forked)
	if got := reg.Counter("campaign_prefix_runs_total").Value(); got != 1 {
		t.Errorf("campaign_prefix_runs_total = %d, want 1 (singleflight)", got)
	}
}

// TestBitSweepForkShared: sweep entries draw identical task lists, so the
// snapshots built for the first entry are cache hits for every later one —
// and the sweep's results must be identical to a no-fork sweep's.
func TestBitSweepForkShared(t *testing.T) {
	cfg := kmeansConfig(t)
	cfg.Runs = 6
	bitCounts := []int{1, 2, 4}

	scfg := cfg
	scfg.NoFork = true
	scratch, err := BitSweep(scfg, bitCounts)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	fcfg := cfg
	fcfg.Obs = reg
	forked, err := BitSweep(fcfg, bitCounts)
	if err != nil {
		t.Fatal(err)
	}
	if len(scratch) != len(forked) {
		t.Fatalf("sweep lengths differ: %d vs %d", len(scratch), len(forked))
	}
	for i := range scratch {
		if scratch[i].Bits != forked[i].Bits {
			t.Fatalf("entry %d: bits %d vs %d", i, scratch[i].Bits, forked[i].Bits)
		}
		summariesEqual(t, scratch[i].Summary, forked[i].Summary)
	}
	// Each distinct site costs one prefix run; all later lookups (across
	// entries, and within one when sites collide) must hit the cache.
	prefixes := reg.Counter("campaign_prefix_runs_total").Value()
	if prefixes > uint64(cfg.Runs) {
		t.Errorf("%d prefix runs for at most %d distinct sites", prefixes, cfg.Runs)
	}
	if hits := reg.Counter("campaign_snapshot_cache_hits_total").Value(); hits == 0 {
		t.Error("no snapshot cache hits across sweep entries")
	}
}

// TestCampaignForkCacheEviction squeezes the snapshot cache to one byte: the
// LRU must evict down to a single resident snapshot while every run still
// classifies identically (evicted snapshots are rebuilt or runs fall back).
func TestCampaignForkCacheEviction(t *testing.T) {
	cfg := kmeansConfig(t)
	cfg.Runs = 6
	cfg.SnapshotCacheBytes = 1

	scfg := cfg
	scfg.NoFork = true
	scratch, err := BitSweep(scfg, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	fcfg := cfg
	fcfg.Obs = reg
	forked, err := BitSweep(fcfg, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range scratch {
		summariesEqual(t, scratch[i].Summary, forked[i].Summary)
	}
	if ev := reg.Counter("campaign_snapshot_evictions_total").Value(); ev == 0 {
		t.Error("a 1-byte cache evicted nothing")
	}
}

// TestCampaignForkInterruptAndResume is the forked flavor of the checkpoint
// acceptance test: a pinned-site (forking) campaign interrupted mid-flight
// and resumed from its journal must reproduce the uninterrupted summary
// bitwise.
func TestCampaignForkInterruptAndResume(t *testing.T) {
	cfg := kmeansConfig(t)
	cfg.Runs = 40
	cfg.Parallel = 2
	cfg.InjectExec = siteFor(t, cfg)
	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "run.jsonl")
	interrupted := false
	for attempt := 0; attempt < 5 && !interrupted; attempt++ {
		stop := make(chan struct{})
		var once sync.Once
		icfg := cfg
		icfg.Journal = path
		icfg.Stop = stop
		icfg.ProgressInterval = time.Millisecond
		icfg.Progress = func(p ProgressInfo) {
			if p.Done >= 2 {
				once.Do(func() { close(stop) })
			}
		}
		_, err := Run(icfg)
		switch {
		case errors.Is(err, ErrInterrupted):
			interrupted = true
		case err == nil:
			// The whole campaign outran the interrupt; try again.
		default:
			t.Fatal(err)
		}
	}
	if !interrupted {
		t.Fatal("campaign never interrupted across 5 attempts")
	}

	rcfg := cfg
	rcfg.Resume = path
	res, err := Run(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	summariesEqual(t, full, res)
}

// TestJournalSiteMismatch: a pinned-site campaign's journal must not resume
// a sampling campaign (and vice versa) — their injection points differ.
func TestJournalSiteMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	cfg := kmeansConfig(t)
	cfg.Runs = 3
	cfg.InjectExec = siteFor(t, cfg)
	cfg.Journal = path
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Journal = ""
	bad.Resume = path
	bad.InjectExec = 0
	if _, err := Run(bad); err == nil {
		t.Error("pinned-site journal resumed a sampling campaign")
	}
}

// TestCampaignInjectExecValidation: a pinned site beyond the golden
// execution count must fail up front, not silently never inject.
func TestCampaignInjectExecValidation(t *testing.T) {
	cfg := kmeansConfig(t)
	cfg.InjectExec = 1 << 60
	if _, err := Run(cfg); err == nil {
		t.Error("absurd InjectExec accepted")
	}
}
