package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Checkpoint/resume. A campaign journal is an append-only JSONL file: one
// header line describing the campaign, then one line per completed run in
// completion order. Workers append entries as runs finish, so a campaign
// killed at any moment (SIGINT, OOM, power loss) loses at most the runs
// that were still in flight; resuming re-executes only those. Because every
// run's injection point and seed are derived deterministically from
// Config.Seed, the re-executed runs produce the same outcomes they would
// have, and a resumed campaign's summary is identical to an uninterrupted
// one.

// journalVersion is bumped when the line format changes incompatibly.
const journalVersion = 1

// journalHeader is the first line of a journal. It pins the campaign
// parameters that determine per-run outcomes, so a resume with a different
// configuration is rejected instead of silently producing a lying summary.
type journalHeader struct {
	V     int    `json:"v"`
	Name  string `json:"name"`
	Runs  int    `json:"runs"`
	Seed  int64  `json:"seed"`
	Bits  int    `json:"bits"`
	World int    `json:"world"`
	Trace bool   `json:"trace"`
	// Site pins Config.InjectExec: a pinned-site campaign draws different
	// injection points than a sampling one, so resuming across the two must
	// be rejected. Journals from before this field decode as 0, matching
	// only campaigns without InjectExec — exactly the ones that wrote them.
	Site uint64 `json:"site,omitempty"`
}

func headerFor(cfg Config) journalHeader {
	world := cfg.WorldSize
	if world == 0 {
		world = 1
	}
	bits := cfg.Bits
	if bits == 0 {
		bits = 1
	}
	return journalHeader{
		V:     journalVersion,
		Name:  cfg.Name,
		Runs:  cfg.Runs,
		Seed:  cfg.Seed,
		Bits:  bits,
		World: world,
		Trace: cfg.Trace,
		Site:  cfg.InjectExec,
	}
}

// journalEntry is one completed run.
type journalEntry struct {
	Idx     int        `json:"idx"`
	Outcome RunOutcome `json:"outcome"`
}

// Journal is the open, append side of a campaign journal. Append is safe
// for concurrent use by campaign workers.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// CreateJournal starts a fresh journal at path (truncating any existing
// file) and writes the header.
func CreateJournal(path string, cfg Config) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: create journal: %w", err)
	}
	line, err := json.Marshal(headerFor(cfg))
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: write journal header: %w", err)
	}
	return &Journal{f: f}, nil
}

// readJournal reads one journal file: the header, the valid entries in file
// order with duplicate indices dropped deterministically (first occurrence
// wins — every occurrence of an index describes the same deterministic run,
// so the earliest append is the canonical one), and the number of duplicate
// entries dropped. A torn final line from a crash mid-append is tolerated:
// reading stops there and the torn run simply counts as incomplete.
func readJournal(path string) (journalHeader, []journalEntry, int, error) {
	var hdr journalHeader
	raw, err := os.ReadFile(path)
	if err != nil {
		return hdr, nil, 0, fmt.Errorf("campaign: read journal: %w", err)
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	if !sc.Scan() {
		return hdr, nil, 0, fmt.Errorf("campaign: journal %s: empty file", path)
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return hdr, nil, 0, fmt.Errorf("campaign: journal %s: bad header: %w", path, err)
	}
	seen := make(map[int]bool)
	var valid []journalEntry
	dupes := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			// A torn tail from a crash mid-append. Entries are written with
			// a single O_APPEND write each, so only the final line can be
			// incomplete; stop here and let the caller re-run the rest.
			break
		}
		if e.Idx < 0 || e.Idx >= hdr.Runs {
			return hdr, nil, 0, fmt.Errorf("campaign: journal %s: entry index %d out of range [0,%d)", path, e.Idx, hdr.Runs)
		}
		if seen[e.Idx] {
			dupes++
			continue
		}
		seen[e.Idx] = true
		valid = append(valid, e)
	}
	if err := sc.Err(); err != nil {
		return hdr, nil, 0, fmt.Errorf("campaign: journal %s: %w", path, err)
	}
	return hdr, valid, dupes, nil
}

// ResumeJournal reopens an existing journal for a resumed campaign. It
// validates the header against cfg (same campaign parameters, or the
// resumed summary would lie), reads the completed entries — tolerating a
// torn final line from a crash mid-append and deduplicating re-journaled
// runs (counted as campaign_runs_deduped_total on cfg.Obs) — compacts the
// file so the torn tail cannot corrupt later reads, and reopens it for
// appending. The returned map holds the outcomes of already-finished runs
// by index.
func ResumeJournal(path string, cfg Config) (*Journal, map[int]RunOutcome, error) {
	hdr, valid, dupes, err := readJournal(path)
	if err != nil {
		return nil, nil, err
	}
	if want := headerFor(cfg); hdr != want {
		return nil, nil, fmt.Errorf(
			"campaign: journal %s was written by a different campaign (journal %+v, config %+v)",
			path, hdr, want)
	}
	if dupes > 0 && cfg.Obs != nil {
		cfg.Obs.Counter("campaign_runs_deduped_total").Add(uint64(dupes))
	}
	done := make(map[int]RunOutcome, len(valid))
	for _, e := range valid {
		done[e.Idx] = e.Outcome
	}

	// Compact before appending: rewrite header + valid entries to a temp
	// file and rename it over the journal, so a torn tail never sits in the
	// middle of the file once new entries land after it.
	tmp := path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: compact journal: %w", err)
	}
	w := bufio.NewWriter(tf)
	enc := json.NewEncoder(w)
	if err := enc.Encode(hdr); err == nil {
		for _, e := range valid {
			if err = enc.Encode(e); err != nil {
				break
			}
		}
	}
	if err == nil {
		err = w.Flush()
	}
	if cerr := tf.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return nil, nil, fmt.Errorf("campaign: compact journal: %w", err)
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: reopen journal: %w", err)
	}
	return &Journal{f: f}, done, nil
}

// Append records one completed run. The whole line is issued as a single
// write on an O_APPEND descriptor, so concurrent appends never interleave
// and a crash can only tear the final line.
func (j *Journal) Append(idx int, o RunOutcome) error {
	line, err := json.Marshal(journalEntry{Idx: idx, Outcome: o})
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("campaign: journal closed")
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("campaign: journal append: %w", err)
	}
	return nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return ""
	}
	return filepath.Clean(j.f.Name())
}

// Close flushes and closes the journal file. Idempotent.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
