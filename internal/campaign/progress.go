package campaign

import (
	"sync/atomic"
	"time"

	"chaser/internal/obs"
)

// ProgressInfo is a snapshot of a running campaign, delivered to
// Config.Progress at every reporting interval and once more when the
// campaign finishes.
type ProgressInfo struct {
	Done    int
	Total   int
	Elapsed time.Duration
	// RunsPerSec is the campaign-wide completion rate so far.
	RunsPerSec float64

	Benign     int
	SDC        int
	Detected   int
	Terminated int
}

// tally is the campaign's shared live state: workers increment it as runs
// classify, the progress reporter and the metrics flush read it.
type tally struct {
	done       atomic.Int64
	benign     atomic.Int64
	sdc        atomic.Int64
	detected   atomic.Int64
	terminated atomic.Int64
}

func (t *tally) record(o Outcome) {
	t.done.Add(1)
	switch o {
	case OutcomeBenign:
		t.benign.Add(1)
	case OutcomeSDC:
		t.sdc.Add(1)
	case OutcomeDetected:
		t.detected.Add(1)
	case OutcomeTerminated:
		t.terminated.Add(1)
	}
}

func (t *tally) snapshot(total int, elapsed time.Duration) ProgressInfo {
	done := int(t.done.Load())
	rps := 0.0
	if s := elapsed.Seconds(); s > 0 {
		rps = float64(done) / s
	}
	return ProgressInfo{
		Done:       done,
		Total:      total,
		Elapsed:    elapsed,
		RunsPerSec: rps,
		Benign:     int(t.benign.Load()),
		SDC:        int(t.sdc.Load()),
		Detected:   int(t.detected.Load()),
		Terminated: int(t.terminated.Load()),
	}
}

// flushObs publishes the campaign's final tallies into the registry.
func (t *tally) flushObs(reg *obs.Registry, elapsed time.Duration) {
	if reg == nil {
		return
	}
	reg.Counter("campaign_runs_completed_total").Add(uint64(t.done.Load()))
	reg.Counter("campaign_runs_benign_total").Add(uint64(t.benign.Load()))
	reg.Counter("campaign_runs_sdc_total").Add(uint64(t.sdc.Load()))
	reg.Counter("campaign_runs_detected_total").Add(uint64(t.detected.Load()))
	reg.Counter("campaign_runs_terminated_total").Add(uint64(t.terminated.Load()))
	if s := elapsed.Seconds(); s > 0 {
		reg.Gauge("campaign_runs_per_second").Set(float64(t.done.Load()) / s)
	}
}
