package campaign

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"chaser/internal/apps"
	"chaser/internal/core"
	"chaser/internal/obs"
	"chaser/internal/trace"
)

// TestObservatoryCampaign drives a real traced campaign through an
// instrumented Observatory and exercises every dashboard endpoint.
func TestObservatoryCampaign(t *testing.T) {
	app, err := apps.ByName("matvec")
	if err != nil {
		t.Fatal(err)
	}
	o := NewObservatory(obs.NewRegistry(), obs.NewSink(8192), 16)
	cfg := o.Instrument(Config{
		Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
		Ops: app.DefaultOps, TargetRank: app.TargetRank,
		Runs: 12, Bits: 1, Seed: 42, Trace: true, Parallel: 4,
		ProgressInterval: time.Millisecond,
	})
	sum, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o.Finish()

	snap := o.Snapshot()
	if snap.Name != app.Name || !snap.Finished {
		t.Errorf("snapshot name/finished = %q/%v", snap.Name, snap.Finished)
	}
	if snap.Done != 12 || snap.Remaining != 0 {
		t.Errorf("done/remaining = %d/%d, want 12/0", snap.Done, snap.Remaining)
	}
	outcomeSum := 0
	for _, n := range snap.Outcomes {
		outcomeSum += n
	}
	if outcomeSum+snap.SimCrashes != sum.Runs {
		t.Errorf("taxonomy sums to %d (+%d crashes), want %d", outcomeSum, snap.SimCrashes, sum.Runs)
	}
	if len(snap.Heatmap) == 0 {
		t.Error("no heatmap entries after an injected campaign")
	}
	heatRuns := 0
	for _, h := range snap.Heatmap {
		if h.App != app.Name || h.Op == "" {
			t.Errorf("heatmap entry missing identity: %+v", h)
		}
		heatRuns += h.Runs
	}
	if heatRuns != 12 {
		t.Errorf("heatmap covers %d runs, want 12", heatRuns)
	}
	if snap.RetainedRuns == 0 {
		t.Error("no provenance graphs retained from a traced campaign")
	}
	if snap.EventsEmitted == 0 {
		t.Error("no events emitted")
	}

	srv := httptest.NewServer(o)
	defer srv.Close()

	getJSON := func(path string, v any) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
	}

	var progress Snapshot
	getJSON("/progress", &progress)
	if progress.Done != 12 {
		t.Errorf("/progress done = %d, want 12", progress.Done)
	}

	var runs struct {
		Runs []struct {
			ID      int    `json:"id"`
			Outcome string `json:"outcome"`
			Nodes   int    `json:"nodes"`
		} `json:"runs"`
	}
	getJSON("/runs", &runs)
	if len(runs.Runs) == 0 {
		t.Fatal("/runs empty")
	}
	id := runs.Runs[0].ID

	resp, err := http.Get(srv.URL + "/runs/" + itoa(id) + "/provenance.json")
	if err != nil {
		t.Fatal(err)
	}
	g, err := trace.ReadGraph(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("provenance.json unreadable: %v", err)
	}
	if len(g.Nodes) != runs.Runs[0].Nodes {
		t.Errorf("served graph has %d nodes, listing says %d", len(g.Nodes), runs.Runs[0].Nodes)
	}

	resp, err = http.Get(srv.URL + "/runs/" + itoa(id) + "/provenance.dot")
	if err != nil {
		t.Fatal(err)
	}
	dot := readAll(t, resp)
	if !strings.Contains(dot, "digraph") {
		t.Errorf("provenance.dot is not DOT: %.80s", dot)
	}

	resp, err = http.Get(srv.URL + "/runs/9999/provenance.json")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown run id: got %s, want 404", resp.Status)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := readAll(t, resp)
	if !strings.Contains(metrics, "campaign_runs_completed_total") {
		t.Error("/metrics missing campaign counters")
	}

	var events struct {
		Events []obs.Event `json:"events"`
		Next   uint64      `json:"next"`
	}
	getJSON("/events", &events)
	if len(events.Events) == 0 || events.Next == 0 {
		t.Errorf("/events returned %d events, next=%d", len(events.Events), events.Next)
	}
	sawRunDone := false
	for _, ev := range events.Events {
		if ev.Type == "run_done" {
			sawRunDone = true
		}
	}
	if !sawRunDone {
		t.Error("/events has no run_done marker")
	}

	resp, err = http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	index := readAll(t, resp)
	if !strings.Contains(index, "/progress") {
		t.Error("index page missing endpoint links")
	}
}

// TestObservatorySSE checks the /events server-sent-events stream delivers
// buffered events.
func TestObservatorySSE(t *testing.T) {
	sink := obs.NewSink(64)
	sink.Emit("inject", 0, 1, 0x400, 0, "fadd reg f2")
	o := NewObservatory(nil, sink, 0)
	srv := httptest.NewServer(o)
	defer srv.Close()

	req, err := http.NewRequest("GET", srv.URL+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var data string
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			data = rest
			break
		}
	}
	var ev obs.Event
	if err := json.Unmarshal([]byte(data), &ev); err != nil {
		t.Fatalf("SSE payload not an event: %v (%q)", err, data)
	}
	if ev.Type != "inject" || ev.Rank != 1 {
		t.Errorf("streamed event = %+v", ev)
	}
}

// TestObservatoryRetention pins the eviction policy: routine runs are evicted
// before interesting ones (SDC/propagated), and a routine run arriving at a
// store full of interesting graphs is not retained at all.
func TestObservatoryRetention(t *testing.T) {
	o := NewObservatory(nil, nil, 2)
	res := func() *core.RunResult {
		return &core.RunResult{
			Trace:   trace.NewCollector(),
			Records: []core.InjectionRecord{{Rank: 0, PC: 0x100, GuestOpS: "fadd", Target: "reg f1"}},
		}
	}
	benign := RunOutcome{Outcome: OutcomeBenign, Records: res().Records}
	sdc := RunOutcome{Outcome: OutcomeSDC, Records: res().Records}

	o.ObserveRun("t", 0, 0, benign, res())
	o.ObserveRun("t", 1, 0, benign, res())
	o.ObserveRun("t", 2, 0, sdc, res()) // evicts the oldest routine run (id 0)
	o.mu.Lock()
	_, has0 := o.runs[0]
	_, has1 := o.runs[1]
	_, has2 := o.runs[2]
	o.mu.Unlock()
	if has0 || !has1 || !has2 {
		t.Errorf("after first eviction: has0=%v has1=%v has2=%v, want routine id 0 gone", has0, has1, has2)
	}

	o.ObserveRun("t", 3, 0, sdc, res()) // evicts the remaining routine run (id 1)
	o.ObserveRun("t", 4, 0, benign, res())
	o.mu.Lock()
	n := len(o.runs)
	_, has4 := o.runs[4]
	o.mu.Unlock()
	if n != 2 || has4 {
		t.Errorf("routine run retained over interesting ones: len=%d has4=%v", n, has4)
	}

	// A sim crash (nil result) and an untraced run must not panic or retain.
	o.ObserveRun("t", 5, 0, RunOutcome{Outcome: OutcomeSimCrash}, nil)
	o.ObserveRun("t", 6, 0, benign, &core.RunResult{})
	snap := o.Snapshot()
	if snap.SimCrashes != 1 {
		t.Errorf("sim crashes = %d, want 1", snap.SimCrashes)
	}
	if snap.RetainedRuns != 2 {
		t.Errorf("retained = %d, want 2", snap.RetainedRuns)
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	return sb.String()
}
