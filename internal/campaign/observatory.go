package campaign

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"chaser/internal/core"
	"chaser/internal/obs"
	"chaser/internal/trace"
)

// Observatory is the live campaign dashboard backend: it observes runs as
// they classify, retains a bounded set of provenance graphs (preferring the
// interesting runs — SDCs and cross-rank propagations), aggregates an
// opcode × injection-site heatmap, and serves everything over HTTP.
//
// Wiring: pass the Observatory's registry and sink to the campaign (or let
// Instrument do it), point Config.RunObserver at ObserveRun and chain
// Config.Progress through ObserveProgress, then mount the Observatory itself
// (it is an http.Handler) on a listener. Endpoints:
//
//	/              tiny HTML index linking everything below
//	/metrics       Prometheus text exposition of the registry
//	/progress      JSON: runs done/remaining, outcome taxonomy, heatmap
//	/runs          JSON: the retained runs and their provenance stats
//	/runs/<id>/provenance.json
//	/runs/<id>/provenance.dot
//	/events        event feed: JSON long-poll (?since=N&wait=5s) or SSE
//	               (Accept: text/event-stream, or ?stream=sse)
//
// All methods are safe for concurrent use; campaign workers call ObserveRun
// while HTTP handlers read.
type Observatory struct {
	reg       *obs.Registry
	sink      *obs.Sink
	maxGraphs int

	// done is closed by Shutdown; SSE streams and long-polls select on it so
	// a draining http.Server.Shutdown is never pinned by a live dashboard
	// client.
	done     chan struct{}
	downOnce sync.Once

	mu       sync.Mutex
	name     string
	total    int
	start    time.Time
	last     ProgressInfo
	finished bool
	observed int
	crashes  int
	terms    map[string]int
	heat     map[SiteKey]*SiteCell
	nextID   int
	runs     map[int]*runRecord
	order    []int // retained run IDs, oldest first (eviction order)
}

// DefaultMaxGraphs bounds the provenance graphs an Observatory retains.
const DefaultMaxGraphs = 64

// SiteKey identifies one injection site of the heatmap: the opcode the fault
// hit, on which rank, at which guest PC.
type SiteKey struct {
	App  string `json:"app"`
	Op   string `json:"op"`
	Rank int    `json:"rank"`
	PC   uint64 `json:"pc"`
}

// SiteCell tallies the outcomes of every observed run that injected at one
// site.
type SiteCell struct {
	Runs       int `json:"runs"`
	Benign     int `json:"benign"`
	SDC        int `json:"sdc"`
	Detected   int `json:"detected"`
	Terminated int `json:"terminated"`
	Propagated int `json:"propagated"`
}

// runRecord is one retained run with its provenance graph.
type runRecord struct {
	ID          int    `json:"id"`
	Campaign    string `json:"campaign"`
	Idx         int    `json:"idx"`
	Rank        int    `json:"rank"`
	Outcome     string `json:"outcome"`
	Term        string `json:"term,omitempty"`
	Op          string `json:"op,omitempty"`
	PC          uint64 `json:"pc,omitempty"`
	Propagated  bool   `json:"propagated"`
	Nodes       int    `json:"nodes"`
	CrossEdges  int    `json:"cross_rank_edges"`
	interesting bool
	graph       *trace.Graph
}

// NewObservatory creates an observatory around the given registry and event
// sink (either may be nil: the corresponding endpoints serve empty data).
// maxGraphs bounds the retained provenance graphs (<=0 selects
// DefaultMaxGraphs).
func NewObservatory(reg *obs.Registry, sink *obs.Sink, maxGraphs int) *Observatory {
	if maxGraphs <= 0 {
		maxGraphs = DefaultMaxGraphs
	}
	return &Observatory{
		reg: reg, sink: sink, maxGraphs: maxGraphs,
		done:  make(chan struct{}),
		terms: make(map[string]int),
		heat:  make(map[SiteKey]*SiteCell),
		runs:  make(map[int]*runRecord),
		start: time.Now(),
	}
}

// Shutdown tells every streaming handler (SSE, long-poll) to finish its
// response, so a subsequent http.Server.Shutdown drains instead of waiting
// out clients that would otherwise hold their connections open forever.
// Idempotent and safe to call concurrently with handlers.
func (o *Observatory) Shutdown() {
	o.downOnce.Do(func() { close(o.done) })
}

// Registry returns the observatory's metrics registry (may be nil).
func (o *Observatory) Registry() *obs.Registry { return o.reg }

// Sink returns the observatory's event sink (may be nil).
func (o *Observatory) Sink() *obs.Sink { return o.sink }

// Instrument wires the observatory into one campaign config: telemetry
// registry and event sink (unless the config brings its own), the run
// observer, and a progress hook chained before any existing one. It also
// registers the campaign's name and run count for /progress.
func (o *Observatory) Instrument(cfg Config) Config {
	if cfg.Obs == nil {
		cfg.Obs = o.reg
	}
	if cfg.Events == nil {
		cfg.Events = o.sink
	}
	prevProgress := cfg.Progress
	cfg.Progress = func(p ProgressInfo) {
		o.ObserveProgress(p)
		if prevProgress != nil {
			prevProgress(p)
		}
	}
	prevObserver := cfg.RunObserver
	cfg.RunObserver = func(idx, rank int, out RunOutcome, res *core.RunResult) {
		o.ObserveRun(cfg.Name, idx, rank, out, res)
		if prevObserver != nil {
			prevObserver(idx, rank, out, res)
		}
	}
	o.Begin(cfg.Name, cfg.Runs)
	return cfg
}

// Begin registers a campaign about to run. Aggregates (heatmap, retained
// runs) are cumulative across campaigns; only the name/total/progress state
// resets.
func (o *Observatory) Begin(name string, total int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.name = name
	o.total = total
	o.last = ProgressInfo{Total: total}
	o.finished = false
	o.start = time.Now()
}

// Finish marks the current campaign complete.
func (o *Observatory) Finish() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.finished = true
}

// ObserveProgress records a live progress snapshot (chain it into
// Config.Progress).
func (o *Observatory) ObserveProgress(p ProgressInfo) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.last = p
}

// ObserveRun ingests one classified run (wire it as Config.RunObserver,
// currying the campaign name). res is nil when the simulator crashed on the
// run; traced results with injection records feed the heatmap and — when the
// run is interesting or the store has room — the provenance graph store.
func (o *Observatory) ObserveRun(name string, idx, rank int, out RunOutcome, res *core.RunResult) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.observed++
	switch out.Outcome {
	case OutcomeSimCrash:
		o.crashes++
	case OutcomeTerminated:
		o.terms[out.Term.String()]++
	}
	rec := &runRecord{
		Campaign: name, Idx: idx, Rank: rank,
		Outcome:    out.Outcome.String(),
		Propagated: out.Propagated,
	}
	if out.Outcome == OutcomeTerminated {
		rec.Term = out.Term.String()
	}
	if len(out.Records) > 0 {
		r0 := out.Records[0]
		rec.Op, rec.PC = r0.GuestOpS, r0.PC
		k := SiteKey{App: name, Op: r0.GuestOpS, Rank: r0.Rank, PC: r0.PC}
		c := o.heat[k]
		if c == nil {
			c = &SiteCell{}
			o.heat[k] = c
		}
		c.Runs++
		switch out.Outcome {
		case OutcomeBenign:
			c.Benign++
		case OutcomeSDC:
			c.SDC++
		case OutcomeDetected:
			c.Detected++
		case OutcomeTerminated:
			c.Terminated++
		}
		if out.Propagated {
			c.Propagated++
		}
	}
	if res == nil || res.Trace == nil || len(res.Records) == 0 {
		return
	}
	rec.interesting = out.Outcome == OutcomeSDC || out.Propagated
	if len(o.order) >= o.maxGraphs && !rec.interesting {
		// The store is full and this run is routine; building its graph
		// would be wasted work.
		if !o.hasEvictable() {
			return
		}
	}
	g := res.Provenance()
	rec.Nodes, rec.CrossEdges = len(g.Nodes), g.CrossRankEdges
	rec.graph = g
	o.retain(rec)
}

// hasEvictable reports whether a routine retained run exists to evict.
// Callers hold o.mu.
func (o *Observatory) hasEvictable() bool {
	for _, id := range o.order {
		if !o.runs[id].interesting {
			return true
		}
	}
	return false
}

// retain stores one run's graph, evicting the oldest routine run when full
// (the oldest interesting one when everything retained is interesting).
// Callers hold o.mu.
func (o *Observatory) retain(rec *runRecord) {
	if len(o.order) >= o.maxGraphs {
		evict := -1
		for i, id := range o.order {
			if !o.runs[id].interesting {
				evict = i
				break
			}
		}
		if evict == -1 {
			if !rec.interesting {
				return
			}
			evict = 0
		}
		delete(o.runs, o.order[evict])
		o.order = append(o.order[:evict], o.order[evict+1:]...)
	}
	rec.ID = o.nextID
	o.nextID++
	o.runs[rec.ID] = rec
	o.order = append(o.order, rec.ID)
}

// HeatEntry is one row of the /progress heatmap.
type HeatEntry struct {
	SiteKey
	SiteCell
}

// Snapshot is the /progress payload.
type Snapshot struct {
	Name       string  `json:"name"`
	Total      int     `json:"total"`
	Done       int     `json:"done"`
	Remaining  int     `json:"remaining"`
	ElapsedSec float64 `json:"elapsed_sec"`
	RunsPerSec float64 `json:"runs_per_sec"`
	Finished   bool    `json:"finished"`

	// Outcome taxonomy of the current campaign (includes resumed runs).
	Outcomes map[string]int `json:"outcomes"`
	// Terminations breaks terminated runs down (observed runs, cumulative).
	Terminations map[string]int `json:"terminations"`
	SimCrashes   int            `json:"sim_crashes"`

	EventsEmitted uint64 `json:"events_emitted"`
	EventsDropped uint64 `json:"events_dropped"`

	Heatmap      []HeatEntry `json:"heatmap"`
	RetainedRuns int         `json:"retained_runs"`

	// Fork reports fork-point run multiplexing activity (zero-valued when
	// the campaign runs with NoFork or unshareable sites).
	Fork ForkStats `json:"fork"`
}

// ForkStats is the fork-point multiplexing section of /progress, read from
// the metrics registry.
type ForkStats struct {
	// PrefixRuns counts golden prefixes executed (one per distinct fork
	// site that entered the snapshot cache).
	PrefixRuns uint64 `json:"prefix_runs"`
	// ForkedRuns counts injection runs resumed from a cached snapshot
	// instead of replaying the prefix.
	ForkedRuns uint64 `json:"forked_runs"`
	// Fallbacks counts runs that fell back to from-scratch execution after
	// a failed prefix or fork.
	Fallbacks uint64 `json:"fallbacks"`
	// CacheHits/CacheMisses count snapshot-cache lookups; hits measure
	// fork-point reuse across runs (and across BitSweep entries).
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// CacheBytes is the resident snapshot-cache size; CacheHighWater its
	// peak.
	CacheBytes     int64 `json:"cache_bytes"`
	CacheHighWater int64 `json:"cache_high_water_bytes"`
}

// Snapshot assembles the current /progress payload.
func (o *Observatory) Snapshot() Snapshot {
	o.mu.Lock()
	defer o.mu.Unlock()
	p := o.last
	elapsed := p.Elapsed
	if elapsed == 0 {
		elapsed = time.Since(o.start)
	}
	s := Snapshot{
		Name:       o.name,
		Total:      o.total,
		Done:       p.Done,
		Remaining:  o.total - p.Done,
		ElapsedSec: elapsed.Seconds(),
		RunsPerSec: p.RunsPerSec,
		Finished:   o.finished,
		Outcomes: map[string]int{
			"benign":     p.Benign,
			"sdc":        p.SDC,
			"detected":   p.Detected,
			"terminated": p.Terminated,
		},
		Terminations:  make(map[string]int, len(o.terms)),
		SimCrashes:    o.crashes,
		EventsEmitted: o.sink.Len(),
		EventsDropped: o.sink.Dropped(),
		Heatmap:       make([]HeatEntry, 0, len(o.heat)),
		RetainedRuns:  len(o.runs),
		Fork: ForkStats{
			PrefixRuns:     o.reg.Counter("campaign_prefix_runs_total").Value(),
			ForkedRuns:     o.reg.Counter("campaign_forked_runs_total").Value(),
			Fallbacks:      o.reg.Counter("campaign_fork_fallbacks_total").Value(),
			CacheHits:      o.reg.Counter("campaign_snapshot_cache_hits_total").Value(),
			CacheMisses:    o.reg.Counter("campaign_snapshot_cache_misses_total").Value(),
			CacheBytes:     int64(o.reg.Gauge("campaign_snapshot_cache_bytes").Value()),
			CacheHighWater: int64(o.reg.Gauge("campaign_snapshot_cache_bytes_high_water").Value()),
		},
	}
	for k, v := range o.terms {
		s.Terminations[k] = v
	}
	for k, c := range o.heat {
		s.Heatmap = append(s.Heatmap, HeatEntry{SiteKey: k, SiteCell: *c})
	}
	sort.Slice(s.Heatmap, func(i, j int) bool {
		a, b := s.Heatmap[i], s.Heatmap[j]
		if a.Runs != b.Runs {
			return a.Runs > b.Runs
		}
		if a.App != b.App {
			return a.App < b.App
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.PC < b.PC
	})
	return s
}

// ServeHTTP implements the dashboard. Mount the observatory on a listener
// (http.ListenAndServe(addr, o)) or under a mux of your own.
func (o *Observatory) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/":
		o.handleIndex(w, r)
	case r.URL.Path == "/metrics":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		o.reg.WritePrometheus(w)
	case r.URL.Path == "/progress":
		writeJSON(w, o.Snapshot())
	case r.URL.Path == "/runs":
		o.handleRuns(w, r)
	case strings.HasPrefix(r.URL.Path, "/runs/"):
		o.handleRun(w, r)
	case r.URL.Path == "/events":
		o.handleEvents(w, r)
	default:
		http.NotFound(w, r)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (o *Observatory) handleIndex(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	o.mu.Lock()
	name := o.name
	o.mu.Unlock()
	fmt.Fprintf(w, `<!DOCTYPE html>
<title>chaser campaign observatory</title>
<h1>campaign observatory — %s</h1>
<ul>
<li><a href="/progress">/progress</a> — runs done/remaining, outcome taxonomy, injection-site heatmap</li>
<li><a href="/metrics">/metrics</a> — Prometheus metrics</li>
<li><a href="/runs">/runs</a> — retained runs (provenance at /runs/&lt;id&gt;/provenance.{json,dot})</li>
<li><a href="/events">/events</a> — event feed (?since=N&amp;wait=5s long-poll, ?stream=sse)</li>
</ul>
`, name)
}

func (o *Observatory) handleRuns(w http.ResponseWriter, _ *http.Request) {
	o.mu.Lock()
	list := make([]*runRecord, 0, len(o.order))
	for _, id := range o.order {
		list = append(list, o.runs[id])
	}
	o.mu.Unlock()
	sort.Slice(list, func(i, j int) bool { return list[i].ID < list[j].ID })
	writeJSON(w, map[string]any{"runs": list})
}

func (o *Observatory) handleRun(w http.ResponseWriter, r *http.Request) {
	parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/runs/"), "/")
	if len(parts) != 2 {
		http.NotFound(w, r)
		return
	}
	id, err := strconv.Atoi(parts[0])
	if err != nil {
		http.NotFound(w, r)
		return
	}
	o.mu.Lock()
	rec := o.runs[id]
	o.mu.Unlock()
	if rec == nil || rec.graph == nil {
		http.NotFound(w, r)
		return
	}
	// The graph is immutable once built, so serving outside the lock is safe.
	switch parts[1] {
	case "provenance.json":
		w.Header().Set("Content-Type", "application/json")
		rec.graph.WriteJSON(w)
	case "provenance.dot":
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		rec.graph.WriteDOT(w)
	default:
		http.NotFound(w, r)
	}
}

// maxEventWait caps the /events long-poll duration so an abandoned poller
// cannot pin a handler goroutine for long.
const maxEventWait = 30 * time.Second

func (o *Observatory) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	since, _ := strconv.ParseUint(q.Get("since"), 10, 64)
	if q.Get("stream") == "sse" || strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		o.serveSSE(w, r, since)
		return
	}
	var wait time.Duration
	if s := q.Get("wait"); s != "" {
		wait, _ = time.ParseDuration(s)
		if wait > maxEventWait {
			wait = maxEventWait
		}
	}
	var evs []obs.Event
	var next uint64
	if wait > 0 {
		evs, next = o.waitEvents(r, since, 1024, wait)
	} else {
		evs, next = o.sink.Since(since, 1024)
	}
	if evs == nil {
		evs = []obs.Event{}
	}
	writeJSON(w, map[string]any{
		"events":  evs,
		"next":    next,
		"dropped": o.sink.Dropped(),
	})
}

// waitEvents is a drainable WaitSince: it waits up to `wait` for events past
// seq, but returns early when the request is cancelled or the observatory
// shuts down, so long-polls cannot pin a draining server for the full wait.
func (o *Observatory) waitEvents(r *http.Request, seq uint64, max int, wait time.Duration) ([]obs.Event, uint64) {
	deadline := time.Now().Add(wait)
	for {
		slice := time.Until(deadline)
		if slice <= 0 {
			return o.sink.Since(seq, max)
		}
		if slice > 250*time.Millisecond {
			slice = 250 * time.Millisecond
		}
		evs, next := o.sink.WaitSince(seq, max, slice)
		if len(evs) > 0 {
			return evs, next
		}
		select {
		case <-o.done:
			return evs, next
		case <-r.Context().Done():
			return evs, next
		default:
		}
	}
}

// serveSSE streams events as server-sent events until the client
// disconnects or the observatory shuts down.
func (o *Observatory) serveSSE(w http.ResponseWriter, r *http.Request, since uint64) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	seq := since
	for {
		// The one-second timeout doubles as the disconnect-check interval:
		// a dead sink (nil) degrades to an idle poller, see obs.WaitSince.
		evs, next := o.sink.WaitSince(seq, 256, time.Second)
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "data: %s\n\n", data)
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		seq = next
		select {
		case <-o.done:
			// Shutdown: finish the stream so the server can drain.
			return
		case <-r.Context().Done():
			return
		default:
		}
	}
}
