package campaign

import (
	"strings"
	"testing"

	"chaser/internal/core"
	"chaser/internal/trace"
	"chaser/internal/vm"
)

func injected() []core.InjectionRecord {
	return []core.InjectionRecord{{Rank: 0, Target: "reg r1", Mask: 1}}
}

func mkRes(terms []vm.Termination, outputs [][]byte, recs []core.InjectionRecord) *core.RunResult {
	return &core.RunResult{
		Terms:   terms,
		Outputs: outputs,
		Records: recs,
		Trace:   trace.NewCollector(),
	}
}

func exited() vm.Termination { return vm.Termination{Reason: vm.ReasonExited} }

func TestClassifyBenignAndSDC(t *testing.T) {
	golden := [][]byte{{1, 2, 3}}
	same := mkRes([]vm.Termination{exited()}, [][]byte{{1, 2, 3}}, injected())
	if got := Classify(same, golden, 0); got.Outcome != OutcomeBenign {
		t.Errorf("benign = %v", got.Outcome)
	}
	diff := mkRes([]vm.Termination{exited()}, [][]byte{{1, 2, 4}}, injected())
	if got := Classify(diff, golden, 0); got.Outcome != OutcomeSDC {
		t.Errorf("sdc = %v", got.Outcome)
	}
}

func TestClassifyNoInjection(t *testing.T) {
	res := mkRes([]vm.Termination{exited()}, [][]byte{{}}, nil)
	if got := Classify(res, [][]byte{{}}, 0); got.Outcome != OutcomeNoInjection {
		t.Errorf("outcome = %v", got.Outcome)
	}
}

func TestClassifyDetected(t *testing.T) {
	res := mkRes([]vm.Termination{{Reason: vm.ReasonAssert, Code: 200}}, [][]byte{nil}, injected())
	if got := Classify(res, [][]byte{nil}, 0); got.Outcome != OutcomeDetected {
		t.Errorf("outcome = %v", got.Outcome)
	}
}

func TestClassifyTerminations(t *testing.T) {
	golden := [][]byte{nil, nil}
	tests := []struct {
		name     string
		terms    []vm.Termination
		wantTerm TermClass
		wantRoot int
	}{
		{
			"os exception on master",
			[]vm.Termination{
				{Reason: vm.ReasonSignal, Signal: vm.SIGSEGV},
				{Reason: vm.ReasonMPIError, Msg: "peer rank 0 terminated: killed"},
			},
			TermOS, 0,
		},
		{
			"mpi error on master",
			[]vm.Termination{
				{Reason: vm.ReasonMPIError, Msg: "MPI_Send: invalid rank 99"},
				{Reason: vm.ReasonMPIError, Msg: "peer rank 0 terminated: x"},
			},
			TermMPI, 0,
		},
		{
			"hang on master",
			[]vm.Termination{
				{Reason: vm.ReasonBudget},
				{Reason: vm.ReasonMPIError, Msg: "peer rank 0 terminated: x"},
			},
			TermHang, 0,
		},
		{
			"slave node failed (os)",
			[]vm.Termination{
				{Reason: vm.ReasonMPIError, Msg: "peer rank 1 terminated: killed"},
				{Reason: vm.ReasonSignal, Signal: vm.SIGSEGV},
			},
			TermSlaveNode, 1,
		},
		{
			"slave node failed (mpi)",
			[]vm.Termination{
				{Reason: vm.ReasonMPIError, Msg: "peer rank 1 terminated: x"},
				{Reason: vm.ReasonMPIError, Msg: "MPI_Recv: message truncated"},
			},
			TermSlaveNode, 1,
		},
		{
			"deadlock",
			[]vm.Termination{
				{Reason: vm.ReasonMPIError, Msg: "deadlock detected: all live ranks blocked in MPI"},
				{Reason: vm.ReasonMPIError, Msg: "deadlock detected: all live ranks blocked in MPI"},
			},
			TermMPI, 0,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res := mkRes(tt.terms, [][]byte{nil, nil}, injected())
			got := Classify(res, golden, 0)
			if got.Outcome != OutcomeTerminated {
				t.Fatalf("outcome = %v", got.Outcome)
			}
			if got.Term != tt.wantTerm {
				t.Errorf("term = %v, want %v", got.Term, tt.wantTerm)
			}
			if got.RootRank != tt.wantRoot {
				t.Errorf("root = %d, want %d", got.RootRank, tt.wantRoot)
			}
		})
	}
}

func TestClassifyTimeout(t *testing.T) {
	// The watchdog interrupts every rank at once, so all ranks carry
	// ReasonTimeout and the root falls on rank 0 regardless of the target.
	timeoutTerms := []vm.Termination{
		{Reason: vm.ReasonTimeout, Msg: "wall-clock deadline 5ms exceeded"},
		{Reason: vm.ReasonTimeout, Msg: "wall-clock deadline 5ms exceeded"},
	}
	for _, target := range []int{0, 1} {
		res := mkRes(timeoutTerms, [][]byte{nil, nil}, injected())
		got := Classify(res, [][]byte{nil, nil}, target)
		if got.Outcome != OutcomeTerminated {
			t.Fatalf("target %d: outcome = %v", target, got.Outcome)
		}
		// The slavefail interaction: with target 1 the root rank (0)
		// differs from the target, which must NOT be read as slave-node
		// propagation — the watchdog, not the fault, killed rank 0.
		if got.Term != TermTimeout {
			t.Errorf("target %d: term = %v, want %v", target, got.Term, TermTimeout)
		}
		if got.SlaveTermOS || got.SlaveTermMPI {
			t.Errorf("target %d: timeout set slave flags", target)
		}
	}
	// A genuine slave-node failure alongside is still classified as such:
	// only timeouts reroute.
	res := mkRes([]vm.Termination{
		{Reason: vm.ReasonMPIError, Msg: "peer rank 1 terminated: killed"},
		{Reason: vm.ReasonSignal, Signal: vm.SIGSEGV},
	}, [][]byte{nil, nil}, injected())
	if got := Classify(res, [][]byte{nil, nil}, 0); got.Term != TermSlaveNode {
		t.Errorf("slave classification regressed: %v", got.Term)
	}
}

func TestSummarizeSimCrash(t *testing.T) {
	outcomes := []RunOutcome{
		{Outcome: OutcomeBenign, Records: injected()},
		{Outcome: OutcomeSimCrash, RootRank: -1, PanicMsg: "mpi: rank 0: boom"},
		{Outcome: OutcomeTerminated, Term: TermTimeout, Records: injected()},
	}
	s := summarize(Config{Name: "x"}, outcomes)
	if s.SimCrash != 1 {
		t.Errorf("SimCrash = %d", s.SimCrash)
	}
	if s.Injected != 2 {
		t.Errorf("Injected = %d (crashes must not count as injected)", s.Injected)
	}
	if s.Benign != 1 || s.Terminated != 1 || s.TermTimeout != 1 {
		t.Errorf("tallies = %+v", s)
	}
	rep := s.Report()
	for _, want := range []string{"simulator crashes", "timeout"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestClassifySlaveBreakdownFlags(t *testing.T) {
	res := mkRes([]vm.Termination{
		{Reason: vm.ReasonMPIError, Msg: "peer rank 1 terminated: x"},
		{Reason: vm.ReasonSignal, Signal: vm.SIGSEGV},
	}, [][]byte{nil, nil}, injected())
	res.Trace.AddCrossRank(trace.CrossRankRecord{Src: 0, Dst: 1})
	got := Classify(res, [][]byte{nil, nil}, 0)
	if !got.Propagated {
		t.Error("propagation not detected")
	}
	if !got.SlaveTermOS || got.SlaveTermMPI {
		t.Errorf("slave flags = os:%v mpi:%v", got.SlaveTermOS, got.SlaveTermMPI)
	}
}

func TestClassifyCountsTaintOps(t *testing.T) {
	res := mkRes([]vm.Termination{exited()}, [][]byte{{1}}, injected())
	res.Trace.AddEvent(trace.Event{Rank: 0, Write: false})
	res.Trace.AddEvent(trace.Event{Rank: 0, Write: true})
	res.Trace.AddEvent(trace.Event{Rank: 1, Write: false})
	got := Classify(res, [][]byte{{1}}, 0)
	if got.TaintedReads != 2 || got.TaintedWrites != 1 {
		t.Errorf("taint ops = %d/%d", got.TaintedReads, got.TaintedWrites)
	}
}

func TestOutcomeAndTermClassNames(t *testing.T) {
	outs := map[Outcome]string{
		OutcomeBenign: "benign", OutcomeSDC: "sdc", OutcomeDetected: "detected",
		OutcomeTerminated: "terminated", OutcomeNoInjection: "no-injection",
		OutcomeSimCrash: "crash(simulator)",
	}
	for o, want := range outs {
		if o.String() != want {
			t.Errorf("Outcome(%d) = %q, want %q", o, o.String(), want)
		}
	}
	if Outcome(99).String() == "" {
		t.Error("unknown outcome empty")
	}
	terms := map[TermClass]string{
		TermNone: "none", TermOS: "os-exception", TermMPI: "mpi-error",
		TermSlaveNode: "slave-node-failed", TermHang: "hang",
		TermTimeout: "timeout",
	}
	for tc, want := range terms {
		if tc.String() != want {
			t.Errorf("TermClass(%d) = %q, want %q", tc, tc.String(), want)
		}
	}
	if TermClass(99).String() == "" {
		t.Error("unknown term class empty")
	}
}

func TestOverheadPercentages(t *testing.T) {
	r := OverheadResult{Baseline: 100, InjectOnly: 110, TraceOnly: 120, InjectAndTrace: 132}
	if got := r.InjectOverheadPct(); got < 9.9 || got > 10.1 {
		t.Errorf("InjectOverheadPct = %v", got)
	}
	if got := r.TraceOverheadPct(); got < 19.9 || got > 20.1 {
		t.Errorf("TraceOverheadPct = %v", got)
	}
	if (OverheadResult{}).InjectOverheadPct() != 0 {
		t.Error("zero baseline not handled")
	}
}
