package campaign

import (
	"reflect"
	"testing"

	"chaser/internal/apps"
	"chaser/internal/obs"
)

// TestSharedCacheIdenticalOutcomes pins the tentpole's correctness bar: a
// campaign with the shared base cache must classify every run exactly as the
// pre-shared-cache (private translator) behaviour does — same seeds, same
// outcome counts — while doing a fraction of the translation work.
func TestSharedCacheIdenticalOutcomes(t *testing.T) {
	app, err := apps.ByName("clamr")
	if err != nil {
		t.Fatal(err)
	}
	runMode := func(private bool) (*Summary, *obs.Registry) {
		reg := obs.NewRegistry()
		sum, err := Run(Config{
			Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
			// The paper's overhead methodology targets FP arithmetic; those
			// opcodes concentrate in few blocks, which is exactly the case
			// JIT instrumentation (and the shared cache) is built for.
			Ops: app.DefaultOps, TargetRank: 0,
			Runs: 40, Bits: 1, Seed: 4242, Parallel: 4,
			NoSharedCache: private,
			Obs:           reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sum, reg
	}
	shared, sharedReg := runMode(false)
	private, privateReg := runMode(true)
	if !reflect.DeepEqual(shared, private) {
		t.Errorf("summaries diverge:\nshared : %+v\nprivate: %+v", shared, private)
	}

	st := sharedReg.Counter("tcg_translations_total").Value()
	pt := privateReg.Counter("tcg_translations_total").Value()
	if st == 0 || pt == 0 {
		t.Fatalf("translation counters empty: shared=%d private=%d", st, pt)
	}
	if pt < 5*st {
		t.Errorf("translation work: shared=%d private=%d, want >= 5x reduction", st, pt)
	}
	if sharedReg.Counter("tcg_base_hits_total").Value() == 0 {
		t.Error("shared campaign never hit the base cache")
	}
	if sharedReg.Gauge("campaign_base_cache_blocks").Value() == 0 {
		t.Error("campaign_base_cache_blocks gauge not set")
	}
}

// TestBitSweepGoldenRunsOnce asserts the sweep memoization: the golden run
// (identical for every bit count) executes exactly once per sweep, and the
// sweep's per-entry summaries still match standalone campaigns.
func TestBitSweepGoldenRunsOnce(t *testing.T) {
	app, err := apps.ByName("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg := Config{
		Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
		Ops: app.DefaultOps, TargetRank: 0,
		Runs: 12, Seed: 99, Parallel: 4,
		Obs: reg,
	}
	bitCounts := []int{1, 4, 16}
	results, err := BitSweep(cfg, bitCounts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(bitCounts) {
		t.Fatalf("results = %d, want %d", len(results), len(bitCounts))
	}
	if n := reg.Counter("campaign_golden_runs_total").Value(); n != 1 {
		t.Errorf("golden runs = %d, want 1 (memoized across sweep entries)", n)
	}

	// Sweep entries must equal the standalone campaign at each bit count.
	for i, bits := range bitCounts {
		c := cfg
		c.Obs = nil
		c.Bits = bits
		c.Name = results[i].Summary.Name
		standalone, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(results[i].Summary, standalone) {
			t.Errorf("bits=%d: sweep summary diverges from standalone campaign", bits)
		}
	}
}
