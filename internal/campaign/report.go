package campaign

import (
	"fmt"
	"sort"
	"strings"

	"chaser/internal/stats"
)

// Report renders a Fig. 6-style outcome summary.
func (s *Summary) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %d runs (%d injected) ===\n", s.Name, s.Runs, s.Injected)
	fmt.Fprintf(&sb, "  benign:     %6d  (%s)\n", s.Benign, stats.Pct(s.Benign, s.Injected))
	fmt.Fprintf(&sb, "  sdc:        %6d  (%s)\n", s.SDC, stats.Pct(s.SDC, s.Injected))
	if s.Detected > 0 {
		fmt.Fprintf(&sb, "  detected:   %6d  (%s)\n", s.Detected, stats.Pct(s.Detected, s.Injected))
	}
	fmt.Fprintf(&sb, "  terminated: %6d  (%s)\n", s.Terminated, stats.Pct(s.Terminated, s.Injected))
	if s.TermTimeout > 0 {
		fmt.Fprintf(&sb, "    of which wall-clock timeouts: %d\n", s.TermTimeout)
	}
	if s.SimCrash > 0 {
		fmt.Fprintf(&sb, "  simulator crashes (excluded from taxonomy): %d\n", s.SimCrash)
	}
	return sb.String()
}

// PerOpReport renders the per-opcode outcome breakdown sorted by opcode.
func (s *Summary) PerOpReport() string {
	ops := make([]string, 0, len(s.PerOp))
	for op := range s.PerOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: outcomes by injected opcode ===\n", s.Name)
	fmt.Fprintf(&sb, "%-8s %8s %8s %8s %10s %10s %10s\n",
		"opcode", "runs", "benign", "sdc", "detected", "terminated", "propagated")
	for _, op := range ops {
		oo := s.PerOp[op]
		total := oo.Benign + oo.SDC + oo.Detected + oo.Terminated
		fmt.Fprintf(&sb, "%-8s %8d %8d %8d %10d %10d %10d\n",
			op, total, oo.Benign, oo.SDC, oo.Detected, oo.Terminated, oo.Propagated)
	}
	return sb.String()
}

// TerminationTable renders the Table III breakdown: the share of
// OS-exception, MPI-error and slave-node terminations over all terminated
// runs, plus the slave-side breakdown over the propagation subset.
func (s *Summary) TerminationTable() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: termination breakdown (Table III) ===\n", s.Name)
	fmt.Fprintf(&sb, "%-14s %-16s %-20s %-18s\n", "Tests", "OS Exceptions", "MPI error detected", "Slave Node failed")
	fmt.Fprintf(&sb, "%-14s %-16s %-20s %-18s\n", "Total",
		stats.Pct(s.TermOS, s.Terminated),
		stats.Pct(s.TermMPI+s.TermHang, s.Terminated),
		stats.Pct(s.TermSlave, s.Terminated))
	propSlaveTotal := s.PropSlaveOS + s.PropSlaveMPI
	fmt.Fprintf(&sb, "%-14s %-16s %-20s %-18s\n", "Propagation",
		stats.Pct(s.PropSlaveOS, propSlaveTotal),
		stats.Pct(s.PropSlaveMPI, propSlaveTotal),
		"-")
	fmt.Fprintf(&sb, "(terminated=%d, propagated runs=%d, slave failures in propagation=%d)\n",
		s.Terminated, s.PropagatedRuns, propSlaveTotal)
	return sb.String()
}

// MemOpsReport renders the Figs. 8/9 distributions: tainted memory reads
// and writes per run, plus the read-only/write-only/read-heavy accounting
// of Section IV-C.
func (s *Summary) MemOpsReport() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: tainted memory reads per run (Fig. 8) ===\n", s.Name)
	sb.WriteString(s.ReadsHist.Render(40))
	fmt.Fprintf(&sb, "max=%.0f mean=%.1f p50=%.0f p95=%.0f\n",
		s.ReadsHist.Max(), s.ReadsHist.Mean(), s.ReadsHist.Quantile(0.5), s.ReadsHist.Quantile(0.95))
	fmt.Fprintf(&sb, "=== %s: tainted memory writes per run (Fig. 9) ===\n", s.Name)
	sb.WriteString(s.WritesHist.Render(40))
	fmt.Fprintf(&sb, "max=%.0f mean=%.1f p50=%.0f p95=%.0f\n",
		s.WritesHist.Max(), s.WritesHist.Mean(), s.WritesHist.Quantile(0.5), s.WritesHist.Quantile(0.95))
	fmt.Fprintf(&sb, "read-heavy runs: %d (%s), read-only: %d (%s), write-only: %d (%s)\n",
		s.ReadHeavyRuns, stats.Pct(s.ReadHeavyRuns, s.Injected),
		s.ReadOnlyRuns, stats.Pct(s.ReadOnlyRuns, s.Injected),
		s.WriteOnlyRuns, stats.Pct(s.WriteOnlyRuns, s.Injected))
	return sb.String()
}
