package campaign

import (
	"fmt"
	"sort"

	"chaser/internal/obs"
)

// Shard journal merging. A sharded campaign (the chaserd control plane)
// splits one run index space across workers, each journaling its shard to
// its own file. Re-enqueued shards — a worker died, its lease expired, a
// wedged worker kept appending after losing its lease — can leave two
// journals covering overlapping run indices. Because every run is a pure
// function of the campaign seed and the golden baseline, every record of an
// index describes the same outcome; the merge dedupes them deterministically
// instead of double-counting, and the merged summary is bitwise identical to
// an uninterrupted single-process campaign's.

// Summarize aggregates classified run outcomes exactly as Run does,
// enabling out-of-process summary reconstruction from merged journals.
// outcomes must be ordered by run index.
func Summarize(cfg Config, outcomes []RunOutcome) *Summary {
	return summarize(cfg, outcomes)
}

// MergeJournals reads one or more shard journals of a single campaign and
// reconstructs the campaign summary. Every journal's header must match cfg
// (the same validation a resume performs). Overlapping run indices — within
// one journal or across journals — are deduplicated deterministically: paths
// are processed in sorted order and the first occurrence of an index wins;
// each duplicate increments campaign_runs_deduped_total on reg. Torn final
// lines are tolerated per journal. An index no journal covers makes the
// merge fail: a summary over a partial campaign would lie.
func MergeJournals(cfg Config, reg *obs.Registry, paths ...string) (*Summary, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("campaign: merge: no journals")
	}
	sorted := append([]string(nil), paths...)
	sort.Strings(sorted)
	want := headerFor(cfg)
	outcomes := make([]RunOutcome, want.Runs)
	seen := make([]bool, want.Runs)
	dupes := 0
	for _, path := range sorted {
		hdr, entries, fileDupes, err := readJournal(path)
		if err != nil {
			return nil, err
		}
		if hdr != want {
			return nil, fmt.Errorf(
				"campaign: journal %s was written by a different campaign (journal %+v, config %+v)",
				path, hdr, want)
		}
		dupes += fileDupes
		for _, e := range entries {
			if seen[e.Idx] {
				dupes++
				continue
			}
			seen[e.Idx] = true
			outcomes[e.Idx] = e.Outcome
		}
	}
	missing := 0
	for _, ok := range seen {
		if !ok {
			missing++
		}
	}
	if missing > 0 {
		return nil, fmt.Errorf("campaign: merge: %d of %d runs missing from %d journals", missing, want.Runs, len(paths))
	}
	if dupes > 0 {
		reg.Counter("campaign_runs_deduped_total").Add(uint64(dupes))
	}
	return summarize(cfg, outcomes), nil
}
