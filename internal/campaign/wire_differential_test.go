package campaign

import (
	"testing"

	"chaser/internal/apps"
	"chaser/internal/tainthub"
	"chaser/internal/tainthub/codec"
)

// TestCampaignWireDifferential runs the same campaign twice against one
// TaintHub server — once over the legacy JSON wire, once over the compact
// binary wire — and requires the rendered campaign summaries to be
// bitwise identical. The codec must be invisible to every result the tool
// reports: outcome classification, propagation counts, per-op breakdowns.
func TestCampaignWireDifferential(t *testing.T) {
	srv, err := tainthub.NewServer(tainthub.NewLocal(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	app, err := apps.ByName("matvec")
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Name: app.Name, Prog: app.Prog, WorldSize: app.WorldSize,
		Ops: app.DefaultOps, TargetRank: app.TargetRank,
		Runs: 40, Bits: 1, Seed: 4242, Trace: true, Parallel: 4,
	}

	reports := make(map[codec.Format]string)
	for i, wire := range []codec.Format{codec.FormatJSON, codec.FormatBinary} {
		client, err := tainthub.DialConfig(srv.Addr(), tainthub.ClientConfig{Wire: wire})
		if err != nil {
			t.Fatal(err)
		}
		cfg := base
		cfg.Hub = client
		// Disjoint namespace ranges so the two arms cannot see each other's
		// taint on the shared server.
		cfg.HubNamespaceBase = i * (base.Runs + 1)
		sum, err := Run(cfg)
		if err != nil {
			client.Close()
			t.Fatalf("%s-wire campaign: %v", wire, err)
		}
		if client.Stats().Polls == 0 {
			t.Errorf("%s-wire campaign never used the hub", wire)
		}
		client.Close()
		reports[wire] = sum.Report() + sum.PerOpReport() + sum.TerminationTable()
	}
	if reports[codec.FormatJSON] != reports[codec.FormatBinary] {
		t.Errorf("wire format changed campaign results:\n-- json --\n%s\n-- binary --\n%s",
			reports[codec.FormatJSON], reports[codec.FormatBinary])
	}
}
