package campaign

import (
	"container/list"
	"sync"

	"chaser/internal/core"
	"chaser/internal/obs"
)

// DefaultSnapshotCacheBytes caps the fork-point snapshot cache when the
// config leaves SnapshotCacheBytes zero.
const DefaultSnapshotCacheBytes = 256 << 20

// snapKey identifies one fork point: the injected rank and the dynamic
// execution count of the targeted ops at which the world pauses.
type snapKey struct {
	rank int
	n    uint64
}

// snapEntry is one cache slot. ready is closed once the build completes;
// waiters block on it (singleflight: concurrent workers needing the same
// fork point run the prefix once). A failed build is cached negatively
// (ws == nil, err != nil) so a site that cannot pause — e.g. one that lands
// mid-MPI-progress — is not retried by every task that shares it.
type snapEntry struct {
	ready chan struct{}
	ws    *core.WorldSnapshot
	err   error
	bytes int64
	elem  *list.Element
}

// snapCache is a byte-capped LRU of world snapshots keyed by fork point. It
// is owned by the campaign baseline, so BitSweep entries — which share the
// task list and therefore the fork points — reuse snapshots across the whole
// sweep.
type snapCache struct {
	mu      sync.Mutex
	cap     int64
	bytes   int64
	entries map[snapKey]*snapEntry
	lru     *list.List // front = most recently used; values are snapKey

	gaugeBytes *obs.Gauge
	gaugeHigh  *obs.Gauge
	hits       *obs.Counter
	misses     *obs.Counter
	evictions  *obs.Counter
}

func newSnapCache(capBytes int64, reg *obs.Registry) *snapCache {
	if capBytes == 0 {
		capBytes = DefaultSnapshotCacheBytes
	}
	return &snapCache{
		cap:        capBytes,
		entries:    make(map[snapKey]*snapEntry),
		lru:        list.New(),
		gaugeBytes: reg.Gauge("campaign_snapshot_cache_bytes"),
		gaugeHigh:  reg.Gauge("campaign_snapshot_cache_bytes_high_water"),
		hits:       reg.Counter("campaign_snapshot_cache_hits_total"),
		misses:     reg.Counter("campaign_snapshot_cache_misses_total"),
		evictions:  reg.Counter("campaign_snapshot_evictions_total"),
	}
}

// get returns the snapshot for key, building it at most once per residency
// via build. The returned snapshot stays valid even if evicted afterwards
// (snapshots are immutable; eviction only drops the cache's reference).
func (c *snapCache) get(key snapKey, build func() (*core.WorldSnapshot, error)) (*core.WorldSnapshot, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		c.hits.Inc()
		<-e.ready
		return e.ws, e.err
	}
	e := &snapEntry{ready: make(chan struct{})}
	e.elem = c.lru.PushFront(key)
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Inc()

	ws, err := build()
	c.mu.Lock()
	e.ws, e.err = ws, err
	if ws != nil {
		e.bytes = ws.Bytes()
		c.bytes += e.bytes
		c.evict()
	}
	c.gaugeBytes.Set(float64(c.bytes))
	c.gaugeHigh.SetMax(float64(c.bytes))
	c.mu.Unlock()
	close(e.ready)
	return ws, err
}

// evict drops least-recently-used completed entries until the cache fits its
// cap, sparing in-flight builds (their size is unknown) and always keeping
// at least one completed snapshot resident so a single oversized world still
// multiplexes. Callers hold c.mu.
func (c *snapCache) evict() {
	for c.bytes > c.cap {
		evicted := false
		for el := c.lru.Back(); el != nil; el = el.Prev() {
			key := el.Value.(snapKey)
			e := c.entries[key]
			select {
			case <-e.ready:
			default:
				continue // still building
			}
			if e.bytes == 0 {
				continue // negative entry, nothing to reclaim
			}
			if c.lruResident() <= 1 {
				return
			}
			c.lru.Remove(el)
			delete(c.entries, key)
			c.bytes -= e.bytes
			c.evictions.Inc()
			evicted = true
			break
		}
		if !evicted {
			return
		}
	}
}

// lruResident counts completed positive entries. Callers hold c.mu.
func (c *snapCache) lruResident() int {
	n := 0
	for _, e := range c.entries {
		select {
		case <-e.ready:
			if e.bytes > 0 {
				n++
			}
		default:
		}
	}
	return n
}
