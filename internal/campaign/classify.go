// Package campaign implements statistical fault-injection campaigns: golden
// runs, randomized injection-point selection, parallel execution, and the
// outcome classification of the paper's evaluation — benign / silent data
// corruption / detected / terminated, with the terminated class broken down
// into OS exceptions, MPI-runtime errors, slave-node failures, and hangs
// (Fig. 6, Table III).
package campaign

import (
	"bytes"
	"fmt"
	"strings"

	"chaser/internal/core"
	"chaser/internal/vm"
)

// Outcome is the paper's top-level failure classification.
type Outcome int

// Outcomes.
const (
	// OutcomeBenign: output files compare bit-wise equal to the golden run.
	OutcomeBenign Outcome = iota + 1
	// OutcomeSDC: the run completed but its output differs from golden.
	OutcomeSDC
	// OutcomeDetected: a program-level checker caught the fault (CLAMR's
	// mass-conservation assertion).
	OutcomeDetected
	// OutcomeTerminated: the application crashed or was killed.
	OutcomeTerminated
	// OutcomeNoInjection: the fault never fired (diagnostic; should not
	// occur when injection points come from golden-run profiles).
	OutcomeNoInjection
	// OutcomeSimCrash: the simulator itself panicked during the run — a
	// tool bug, not a guest outcome. Isolated per-run so the rest of the
	// campaign proceeds; the panic message is retained for triage.
	//
	// New outcomes are appended here: the resume journal serializes the
	// numeric values, so reordering would misread old journals.
	OutcomeSimCrash
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case OutcomeBenign:
		return "benign"
	case OutcomeSDC:
		return "sdc"
	case OutcomeDetected:
		return "detected"
	case OutcomeTerminated:
		return "terminated"
	case OutcomeNoInjection:
		return "no-injection"
	case OutcomeSimCrash:
		return "crash(simulator)"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// TermClass breaks down terminated runs (Table III).
type TermClass int

// Termination classes.
const (
	TermNone TermClass = iota
	// TermOS: an OS exception such as SIGSEGV killed a rank.
	TermOS
	// TermMPI: the MPI runtime detected an error.
	TermMPI
	// TermSlaveNode: the fatal event occurred on a non-injected (slave)
	// rank — the fault propagated from the master and killed a peer.
	TermSlaveNode
	// TermHang: the run exceeded its instruction budget (supervisor kill).
	TermHang
	// TermTimeout: the run exceeded its wall-clock deadline (watchdog
	// kill). Distinct from TermHang: the guest burned real time, not
	// instructions. Appended for journal value stability (see Outcome).
	TermTimeout
)

// String returns the class name.
func (t TermClass) String() string {
	switch t {
	case TermNone:
		return "none"
	case TermOS:
		return "os-exception"
	case TermMPI:
		return "mpi-error"
	case TermSlaveNode:
		return "slave-node-failed"
	case TermHang:
		return "hang"
	case TermTimeout:
		return "timeout"
	}
	return fmt.Sprintf("termclass(%d)", int(t))
}

// RunOutcome is the classified result of one injection run.
type RunOutcome struct {
	Outcome Outcome
	Term    TermClass
	// RootRank is the rank where the fatal event originated (-1 if none).
	RootRank int
	// RootReason is that rank's own termination reason.
	RootReason vm.Reason
	// SlaveTermOS/SlaveTermMPI refine slave-node failures: what killed the
	// slave (Table III's propagation subset row).
	SlaveTermOS  bool
	SlaveTermMPI bool
	// Propagated reports whether taint crossed a rank boundary (tracing
	// runs only).
	Propagated bool
	// TaintedReads/TaintedWrites total the tainted memory operations across
	// all ranks (tracing runs only; Figs. 8 and 9).
	TaintedReads  uint64
	TaintedWrites uint64
	// Records are the injections performed.
	Records []core.InjectionRecord
	// PanicMsg carries the recovered panic text when Outcome is
	// OutcomeSimCrash (first line only; the full stack goes to the log).
	PanicMsg string `json:",omitempty"`
}

// InjectedOp returns the guest opcode of the first injection ("" if none),
// for per-opcode outcome breakdowns.
func (o *RunOutcome) InjectedOp() string {
	if len(o.Records) == 0 {
		return ""
	}
	return o.Records[0].GuestOpS
}

// isPeerAbort reports whether a termination is a secondary abort caused by
// another rank's failure rather than a local root cause.
func isPeerAbort(t vm.Termination) bool {
	return t.Reason == vm.ReasonMPIError &&
		(strings.Contains(t.Msg, "peer rank") || strings.Contains(t.Msg, "deadlock detected"))
}

// Classify reduces a run result to the paper's outcome taxonomy. targetRank
// is the rank that was injected into; goldenOutputs are the per-rank output
// files of the golden run.
func Classify(res *core.RunResult, goldenOutputs [][]byte, targetRank int) RunOutcome {
	out := RunOutcome{RootRank: -1, Records: res.Records}
	if res.Trace != nil {
		out.Propagated = res.Trace.Propagated()
		out.TaintedReads = res.Trace.TotalReads()
		out.TaintedWrites = res.Trace.TotalWrites()
	}
	if !res.Injected() {
		out.Outcome = OutcomeNoInjection
		return out
	}

	// Find the root cause: an abnormal termination that is not a secondary
	// peer abort. Deadlocks mark every rank as aborted; they fall through
	// to the deadlock case below.
	anyAbnormal := false
	for r, t := range res.Terms {
		if !t.Abnormal() {
			continue
		}
		anyAbnormal = true
		if isPeerAbort(t) {
			continue
		}
		if out.RootRank == -1 {
			out.RootRank = r
			out.RootReason = t.Reason
		}
	}

	switch {
	case !anyAbnormal:
		// Ran to completion: compare outputs bit-wise against golden.
		for r := range res.Outputs {
			if !bytes.Equal(res.Outputs[r], goldenOutputs[r]) {
				out.Outcome = OutcomeSDC
				return out
			}
		}
		out.Outcome = OutcomeBenign
		return out

	case out.RootRank == -1:
		// Every abnormal rank is a secondary abort: a fault-induced
		// deadlock detected and resolved by the MPI runtime.
		out.Outcome = OutcomeTerminated
		out.Term = TermMPI
		out.RootRank = targetRank
		out.RootReason = vm.ReasonMPIError
		return out
	}

	root := res.Terms[out.RootRank]
	if root.Reason == vm.ReasonAssert {
		// The application's own checker caught the fault.
		out.Outcome = OutcomeDetected
		return out
	}

	out.Outcome = OutcomeTerminated
	switch {
	case root.Reason == vm.ReasonTimeout:
		// The watchdog interrupts every rank at once, so the root rank is
		// arbitrary (usually rank 0); classify before the slave-node check
		// or a timeout on a rank != target would masquerade as propagation.
		out.Term = TermTimeout
	case out.RootRank != targetRank:
		// The fatal event surfaced on a rank that was never injected: the
		// corruption crossed the process boundary first.
		out.Term = TermSlaveNode
		out.SlaveTermOS = root.Reason == vm.ReasonSignal
		out.SlaveTermMPI = root.Reason == vm.ReasonMPIError
	case root.Reason == vm.ReasonSignal:
		out.Term = TermOS
	case root.Reason == vm.ReasonBudget:
		out.Term = TermHang
	default:
		out.Term = TermMPI
	}
	return out
}
