package campaign

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"time"

	"chaser/internal/core"
	"chaser/internal/isa"
	"chaser/internal/obs"
	"chaser/internal/stats"
	"chaser/internal/tainthub"
	"chaser/internal/tcg"
)

// Config parameterizes a fault-injection campaign against one application.
type Config struct {
	// Name identifies the application (used for Spec.Target and reports).
	Name string
	// Prog is the guest program; WorldSize its rank count.
	Prog      *isa.Program
	WorldSize int
	// Ops are the targeted instruction opcodes.
	Ops []isa.Op
	// TargetRank restricts injection to one rank; -1 picks a random rank
	// per run.
	TargetRank int
	// Runs is the number of injection runs (one fault per run).
	Runs int
	// Bits is the number of bits flipped per injection.
	Bits int
	// Seed makes the whole campaign reproducible.
	Seed int64
	// Trace enables propagation tracing on every run (needed for the
	// propagation figures and Table III's propagation subset; adds
	// overhead).
	Trace bool
	// Parallel is the worker count (0 = GOMAXPROCS).
	Parallel int
	// MaxInstructions caps each rank per run (0 = 64x the golden run,
	// bounding fault-induced loops).
	MaxInstructions uint64
	// RunTimeout is the per-run wall-clock watchdog (0 = none): injection
	// runs exceeding it are killed and classified TermTimeout. It
	// complements MaxInstructions — an instruction budget cannot catch a
	// run that stalls without retiring instructions. The golden run is
	// never subject to it (a dead golden run must fail the campaign).
	RunTimeout time.Duration
	// HubPolicy selects how runs treat TaintHub failures after the
	// client's retries are exhausted (default core.HubDegrade).
	HubPolicy core.HubPolicy
	// Journal, when non-empty, writes an append-only JSONL checkpoint of
	// completed run outcomes to this path (see journal.go); a killed
	// campaign can then be resumed.
	Journal string
	// Resume, when non-empty, resumes from the journal at this path:
	// already-completed runs are loaded instead of re-executed and new
	// completions are appended to the same file. Takes precedence over
	// Journal.
	Resume string
	// Stop, when non-nil, interrupts the campaign when closed: no new runs
	// start, in-flight runs finish (and are journaled), and Run returns
	// ErrInterrupted.
	Stop <-chan struct{}
	// Shard, when non-nil, restricts execution to run indices in [Lo, Hi).
	// The task list is still derived for all cfg.Runs runs — every shard of
	// a campaign computes the identical list from the seed and baseline —
	// but only the shard's slice is executed, journaled, and summarized.
	// Shard journals share the full campaign's header, so MergeJournals can
	// validate and merge them back into the uninterrupted summary.
	Shard *ShardRange
	// HubNamespaceBase offsets every run's namespace on the shared Hub, so
	// concurrent campaigns multiplexed onto one hub (the chaserd control
	// plane) cannot collide: run idx uses namespace HubNamespaceBase+idx.
	HubNamespaceBase int
	// KeepRunOutcomes retains each run's classified outcome in the summary.
	KeepRunOutcomes bool
	// Hub, when set, is shared by every run (e.g. a TCP client to a
	// head-node TaintHub); each run gets its own namespace on it. Nil runs
	// use private in-process hubs.
	Hub tainthub.Hub
	// NoSharedCache disables the campaign-wide translation base cache,
	// reverting to a private translator per machine per run (the behaviour
	// before the shared cache existed). Outcomes are identical either way —
	// only the translation work differs — so this exists solely for the
	// ablation benchmark.
	NoSharedCache bool
	// NoFastPath disables the vm's taint-free fast interpreter loop in every
	// run. Like NoSharedCache, outcomes are identical either way — this is
	// the ablation switch for the dual-loop benchmark.
	NoFastPath bool
	// InjectExec, when > 0, pins every run's injection point to this dynamic
	// execution count of the targeted ops instead of drawing one per run —
	// the paper's single-site methodology ("after it is executed n times"),
	// where only the flipped bits and seed vary across runs. Single-site
	// campaigns are where fork-point multiplexing pays off most: the golden
	// prefix up to the site runs once and every run forks from it.
	InjectExec uint64
	// NoFork disables fork-point run multiplexing, replaying the golden
	// prefix from scratch in every run. Outcomes are bitwise identical either
	// way — this is the ablation switch for the fork benchmark.
	NoFork bool
	// SnapshotCacheBytes caps the resident bytes of cached world snapshots
	// (0 = DefaultSnapshotCacheBytes). Least-recently-used snapshots are
	// evicted when new fork points push the cache over the cap.
	SnapshotCacheBytes int64
	// forkShared marks a campaign whose injection sites recur across sibling
	// campaigns sharing one baseline (BitSweep entries draw identical task
	// lists), making cached snapshots profitable even without InjectExec.
	// With unique random sites, a prefix run costs as much as the full run
	// it would save, so plain campaigns only fork when InjectExec pins the
	// site.
	forkShared bool
	// Obs, when non-nil, receives campaign telemetry and is threaded through
	// every run's layers (vm, mpi, injector). Nil disables it.
	Obs *obs.Registry
	// Events, when non-nil, receives structured lifecycle events from every
	// run's layers (injections, taint births, hub traffic, terminations) plus
	// the campaign's own run_done markers. Nil disables them.
	Events *obs.Sink
	// RunObserver, when non-nil, is called from the worker goroutine after
	// each freshly executed run is classified, with the run's task index, the
	// injected rank, the classified outcome, and the full run result (nil
	// when the simulator crashed on that run). Resumed (journaled) runs are
	// not re-observed — their results no longer exist. The Observatory uses
	// this hook to retain provenance graphs and build its heatmap.
	RunObserver func(idx, rank int, out RunOutcome, res *core.RunResult)
	// Tracer, when non-nil, records spans: campaign.golden, then one
	// campaign.run span per injection run (thread id = worker).
	Tracer *obs.Tracer
	// Progress, when non-nil, is called every ProgressInterval with a live
	// snapshot, and once more on completion.
	Progress func(ProgressInfo)
	// ProgressInterval defaults to one second.
	ProgressInterval time.Duration
}

// Summary aggregates a campaign.
type Summary struct {
	Name     string
	Runs     int
	Injected int

	Benign     int
	SDC        int
	Detected   int
	Terminated int
	// SimCrash counts runs the simulator itself crashed on (isolated
	// panics) — tool failures, not guest outcomes, reported separately so
	// they cannot skew the paper's taxonomy.
	SimCrash int

	TermOS      int
	TermMPI     int
	TermSlave   int
	TermHang    int
	TermTimeout int

	// Propagation subset (tracing campaigns): runs where taint crossed
	// ranks, and what killed the slave when one died.
	PropagatedRuns int
	PropSlaveOS    int
	PropSlaveMPI   int

	// Distributions of tainted memory operations per run (tracing
	// campaigns; Figs. 8 and 9).
	ReadsHist  *stats.Histogram
	WritesHist *stats.Histogram

	// ReadOnlyRuns / WriteOnlyRuns / ReadHeavyRuns mirror the paper's
	// Section IV-C accounting over runs with any taint activity.
	ReadOnlyRuns  int
	WriteOnlyRuns int
	ReadHeavyRuns int

	// PerOp breaks outcomes down by the opcode the fault actually hit —
	// the "relationship between injection points and the propagation of
	// faults" analysis of Section IV-C.
	PerOp map[string]*OpOutcomes

	Outcomes []RunOutcome // populated when Config.KeepRunOutcomes
}

// OpOutcomes tallies outcomes for one injected opcode.
type OpOutcomes struct {
	Benign, SDC, Detected, Terminated int
	Propagated                        int
}

// baseline is the injection-independent state of a campaign: the shared
// translation base cache (warmed by the golden run), the golden result, and
// the quantities derived from it. It depends on the program, world size,
// instruction budget and targeted ops — but not on the fault magnitude — so
// BitSweep computes it once and reuses it for every bit count.
type baseline struct {
	cache    *tcg.BaseCache
	golden   *core.RunResult
	maxInstr uint64
	// totals are the per-rank golden execution counts of the targeted ops;
	// injection points are drawn from them.
	totals []uint64
	world  int
	// snaps caches world snapshots by fork point for run multiplexing. Owned
	// by the baseline so BitSweep entries share it.
	snaps *snapCache
}

// prepare executes the golden run (building and warming the shared base
// cache unless cfg.NoSharedCache) and derives the campaign baseline.
func prepare(cfg Config) (*baseline, error) {
	if cfg.Prog == nil || cfg.Runs <= 0 {
		return nil, fmt.Errorf("campaign: need a program and a positive run count")
	}
	if len(cfg.Ops) == 0 {
		return nil, fmt.Errorf("campaign: no target opcodes")
	}
	world := cfg.WorldSize
	if world == 0 {
		world = 1
	}
	var cache *tcg.BaseCache
	if !cfg.NoSharedCache {
		cache = tcg.NewBaseCache(cfg.Prog)
	}
	cfg.Obs.Counter("campaign_golden_runs_total").Inc()
	gsp := cfg.Tracer.StartSpan("campaign.golden")
	golden, err := core.Run(core.RunConfig{
		Prog:            cfg.Prog,
		WorldSize:       world,
		BaseCache:       cache,
		MaxInstructions: cfg.MaxInstructions,
		NoFastPath:      cfg.NoFastPath,
		Obs:             cfg.Obs,
		Tracer:          cfg.Tracer,
		Events:          cfg.Events,
	})
	gsp.End()
	if err != nil {
		return nil, fmt.Errorf("campaign: golden run: %w", err)
	}
	for r, t := range golden.Terms {
		if t.Abnormal() {
			return nil, fmt.Errorf("campaign: golden run failed on rank %d: %s", r, t)
		}
	}
	maxInstr := cfg.MaxInstructions
	if maxInstr == 0 {
		var peak uint64
		for _, c := range golden.Counters {
			if c.Instructions > peak {
				peak = c.Instructions
			}
		}
		maxInstr = peak * 64
	}

	// Injection points are drawn from the golden execution counts of the
	// targeted ops on each rank.
	totals := make([]uint64, world)
	for r := 0; r < world; r++ {
		for _, op := range cfg.Ops {
			totals[r] += golden.Counters[r].PerOp[op]
		}
	}
	if cfg.TargetRank >= 0 && totals[cfg.TargetRank] == 0 {
		return nil, fmt.Errorf("campaign: rank %d never executes %v", cfg.TargetRank, cfg.Ops)
	}
	return &baseline{
		cache:    cache,
		golden:   golden,
		maxInstr: maxInstr,
		totals:   totals,
		world:    world,
		snaps:    newSnapCache(cfg.SnapshotCacheBytes, cfg.Obs),
	}, nil
}

// ErrInterrupted is returned by Run when cfg.Stop closed before all runs
// finished. Runs completed up to that point are in the journal (when one
// was configured) and the campaign can be resumed from it.
var ErrInterrupted = errors.New("campaign: interrupted")

// ShardRange restricts a campaign to the run indices in [Lo, Hi).
type ShardRange struct {
	Lo, Hi int
}

// bounds returns the effective [lo, hi) execution window for cfg.
func (cfg Config) bounds() (lo, hi int, err error) {
	if cfg.Shard == nil {
		return 0, cfg.Runs, nil
	}
	s := *cfg.Shard
	if s.Lo < 0 || s.Hi > cfg.Runs || s.Lo >= s.Hi {
		return 0, 0, fmt.Errorf("campaign: shard [%d,%d) out of range for %d runs", s.Lo, s.Hi, cfg.Runs)
	}
	return s.Lo, s.Hi, nil
}

// Run executes the campaign: one golden run, then cfg.Runs injection runs
// in parallel, each flipping cfg.Bits bits at a uniformly random execution
// of a targeted instruction (chosen from the golden run's execution counts,
// like the paper's "after it is executed n times" methodology). Every run
// shares the base translation cache warmed by the golden run, so after
// warm-up only the blocks an injector instruments are ever retranslated.
func Run(cfg Config) (*Summary, error) {
	base, err := prepare(cfg)
	if err != nil {
		return nil, err
	}
	return runPrepared(cfg, base)
}

// runPrepared executes the injection runs of a campaign against a prepared
// baseline. cfg must agree with the baseline on program, world size, ops and
// instruction budget (BitSweep varies only the fault magnitude and name).
func runPrepared(cfg Config, base *baseline) (*Summary, error) {
	world, golden, totals, maxInstr := base.world, base.golden, base.totals, base.maxInstr
	bits := cfg.Bits
	if bits == 0 {
		bits = 1
	}
	shardLo, shardHi, err := cfg.bounds()
	if err != nil {
		return nil, err
	}
	shardRuns := shardHi - shardLo

	start := time.Now()
	workers := cfg.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type task struct {
		idx  int
		rank int
		n    uint64
		seed int64
	}
	tasks := make([]task, cfg.Runs)
	seedRng := rand.New(rand.NewSource(cfg.Seed))
	for i := range tasks {
		rank := cfg.TargetRank
		if rank < 0 {
			rank = seedRng.Intn(world)
			for totals[rank] == 0 { // skip ranks that never run the ops
				rank = seedRng.Intn(world)
			}
		}
		n := cfg.InjectExec
		if n == 0 {
			n = 1 + uint64(seedRng.Int63n(int64(totals[rank])))
		} else if n > totals[rank] {
			return nil, fmt.Errorf("campaign: InjectExec %d exceeds rank %d's %d golden executions of %v",
				n, rank, totals[rank], cfg.Ops)
		}
		tasks[i] = task{
			idx:  i,
			rank: rank,
			n:    n,
			seed: cfg.Seed + int64(i)*7919,
		}
	}

	// Checkpoint/resume: every run's task above is a pure function of
	// cfg.Seed and the golden baseline, so skipping journaled runs and
	// re-executing only the missing ones reproduces the uninterrupted
	// campaign exactly.
	var journal *Journal
	resumed := map[int]RunOutcome{}
	switch {
	case cfg.Resume != "":
		var err error
		journal, resumed, err = ResumeJournal(cfg.Resume, cfg)
		if err != nil {
			return nil, err
		}
	case cfg.Journal != "":
		var err error
		journal, err = CreateJournal(cfg.Journal, cfg)
		if err != nil {
			return nil, err
		}
	}
	if journal != nil {
		defer journal.Close()
	}

	var live tally
	reportStop := make(chan struct{})
	var reportWG sync.WaitGroup
	if cfg.Progress != nil {
		interval := cfg.ProgressInterval
		if interval <= 0 {
			interval = time.Second
		}
		reportWG.Add(1)
		go func() {
			defer reportWG.Done()
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for {
				select {
				case <-reportStop:
					return
				case <-ticker.C:
					cfg.Progress(live.snapshot(shardRuns, time.Since(start)))
					if cfg.Obs != nil {
						cfg.Obs.Gauge("campaign_runs_per_second").
							Set(live.snapshot(shardRuns, time.Since(start)).RunsPerSec)
					}
				}
			}
		}()
	}

	outcomes := make([]RunOutcome, cfg.Runs)
	errs := make([]error, cfg.Runs)
	for idx, o := range resumed {
		if idx < shardLo || idx >= shardHi {
			// A re-enqueued shard can inherit a journal holding entries from
			// outside its window (another shard appended to the same file, or
			// the window changed); they merge later, but this shard neither
			// re-executes nor summarizes them.
			continue
		}
		outcomes[idx] = o
		live.record(o.Outcome)
		if cfg.Obs != nil {
			cfg.Obs.Counter("campaign_resumed_runs_total").Inc()
		}
	}

	// Fork-point multiplexing pays only when injection sites repeat: a
	// prefix run costs as much as the full run it replaces, so it must be
	// amortized across forks. Sites repeat when InjectExec pins one site for
	// the whole campaign, or across BitSweep entries (forkShared), whose
	// task lists — derived from seed and baseline alone — are identical for
	// every bit count and hit the shared baseline cache.
	useFork := !cfg.NoFork && (cfg.InjectExec > 0 || cfg.forkShared)

	// runOne executes and classifies one injection run. A panic anywhere
	// below (the vm, the translator, the taint engine, a hook — including
	// panics captured inside rank goroutines and re-raised by World.Run) is
	// recovered here and isolated as OutcomeSimCrash: one lost data point,
	// not a lost campaign.
	runOne := func(tk task) (out RunOutcome, res *core.RunResult, err error) {
		defer func() {
			if r := recover(); r != nil {
				msg := fmt.Sprintf("%v", r)
				if i := strings.IndexByte(msg, '\n'); i >= 0 {
					msg = msg[:i]
				}
				out = RunOutcome{Outcome: OutcomeSimCrash, RootRank: -1, PanicMsg: msg}
				res = nil
				err = nil
				if cfg.Obs != nil {
					cfg.Obs.Counter("campaign_runs_panic_total").Inc()
				}
			}
		}()
		var hub tainthub.Hub
		if cfg.Hub != nil {
			hub = tainthub.WithNamespace(cfg.Hub, cfg.HubNamespaceBase+tk.idx)
		}
		rc := core.RunConfig{
			Prog:            cfg.Prog,
			WorldSize:       world,
			BaseCache:       base.cache,
			Hub:             hub,
			MaxInstructions: maxInstr,
			Timeout:         cfg.RunTimeout,
			HubPolicy:       cfg.HubPolicy,
			NoFastPath:      cfg.NoFastPath,
			Obs:             cfg.Obs,
			Events:          cfg.Events,
			Spec: &core.Spec{
				Target:     cfg.Prog.Name,
				Ops:        cfg.Ops,
				TargetRank: tk.rank,
				Cond:       core.Deterministic{N: tk.n},
				Bits:       bits,
				Seed:       tk.seed,
				Trace:      cfg.Trace,
			},
		}
		if useFork {
			// The snapshot depends only on the fork site (injector RNGs draw
			// nothing before the trigger), so the first task to reach a site
			// builds it and every later task forks from it. Any failure —
			// unpausable site, stale snapshot, resume mismatch — falls back
			// to a from-scratch run, which is bitwise identical.
			ws, ferr := base.snaps.get(snapKey{rank: tk.rank, n: tk.n}, func() (*core.WorldSnapshot, error) {
				cfg.Obs.Counter("campaign_prefix_runs_total").Inc()
				return core.PrefixRun(rc, core.ForkSite{Rank: tk.rank, N: tk.n})
			})
			if ferr == nil {
				if res, err = core.RunForked(rc, ws); err == nil {
					cfg.Obs.Counter("campaign_forked_runs_total").Inc()
					return Classify(res, golden.Outputs, tk.rank), res, nil
				}
			}
			cfg.Obs.Counter("campaign_fork_fallbacks_total").Inc()
		}
		res, err = core.Run(rc)
		if err != nil {
			return RunOutcome{}, nil, err
		}
		return Classify(res, golden.Outputs, tk.rank), res, nil
	}

	var wg sync.WaitGroup
	ch := make(chan task)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for tk := range ch {
				if cfg.Obs != nil {
					cfg.Obs.Counter("campaign_runs_started_total").Inc()
				}
				rsp := cfg.Tracer.StartSpanTID("campaign.run", worker)
				out, res, err := runOne(tk)
				if err != nil {
					rsp.SetArg("error", err.Error())
					rsp.End()
					errs[tk.idx] = err
					continue
				}
				outcomes[tk.idx] = out
				live.record(out.Outcome)
				cfg.Events.Emit("run_done", tk.idx, tk.rank,
					uint64(out.Outcome), uint64(out.Term), out.Outcome.String())
				if cfg.RunObserver != nil {
					cfg.RunObserver(tk.idx, tk.rank, out, res)
				}
				if cfg.Obs != nil && out.Term == TermTimeout {
					cfg.Obs.Counter("campaign_runs_timeout_total").Inc()
				}
				if journal != nil {
					if jerr := journal.Append(tk.idx, out); jerr != nil {
						errs[tk.idx] = jerr
					}
				}
				rsp.SetArg("outcome", out.Outcome.String())
				rsp.End()
			}
		}(w)
	}
	interrupted := false
feed:
	for _, tk := range tasks {
		if tk.idx < shardLo || tk.idx >= shardHi {
			continue // another shard's run
		}
		if _, ok := resumed[tk.idx]; ok {
			continue // already journaled; outcome loaded above
		}
		// A nil Stop channel never receives, so the select degenerates to a
		// plain send.
		select {
		case <-cfg.Stop:
			interrupted = true
			break feed
		case ch <- tk:
		}
	}
	close(ch)
	wg.Wait()
	if cfg.Progress != nil {
		close(reportStop)
		reportWG.Wait()
		cfg.Progress(live.snapshot(shardRuns, time.Since(start)))
	}
	live.flushObs(cfg.Obs, time.Since(start))
	if cfg.Obs != nil && base.cache != nil {
		cfg.Obs.Gauge("campaign_base_cache_blocks").Set(float64(base.cache.Len()))
	}
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("campaign: run failed: %w", err)
		}
	}
	if interrupted {
		return nil, ErrInterrupted
	}
	return summarize(cfg, outcomes[shardLo:shardHi]), nil
}

func summarize(cfg Config, outcomes []RunOutcome) *Summary {
	s := &Summary{
		Name:       cfg.Name,
		Runs:       len(outcomes),
		ReadsHist:  stats.NewHistogram(10, 100, 1000, 10_000, 100_000, 1_000_000),
		WritesHist: stats.NewHistogram(10, 100, 1000, 10_000, 100_000, 1_000_000),
		PerOp:      make(map[string]*OpOutcomes),
	}
	for _, o := range outcomes {
		if o.Outcome == OutcomeSimCrash {
			// Tool failures are accounted separately: they are not guest
			// outcomes and must not enter Injected or the per-op breakdown.
			s.SimCrash++
			continue
		}
		if o.Outcome != OutcomeNoInjection {
			s.Injected++
		}
		if op := o.InjectedOp(); op != "" {
			oo := s.PerOp[op]
			if oo == nil {
				oo = &OpOutcomes{}
				s.PerOp[op] = oo
			}
			switch o.Outcome {
			case OutcomeBenign:
				oo.Benign++
			case OutcomeSDC:
				oo.SDC++
			case OutcomeDetected:
				oo.Detected++
			case OutcomeTerminated:
				oo.Terminated++
			}
			if o.Propagated {
				oo.Propagated++
			}
		}
		switch o.Outcome {
		case OutcomeBenign:
			s.Benign++
		case OutcomeSDC:
			s.SDC++
		case OutcomeDetected:
			s.Detected++
		case OutcomeTerminated:
			s.Terminated++
			switch o.Term {
			case TermOS:
				s.TermOS++
			case TermMPI:
				s.TermMPI++
			case TermSlaveNode:
				s.TermSlave++
			case TermHang:
				s.TermHang++
			case TermTimeout:
				s.TermTimeout++
			}
		}
		if o.Propagated {
			s.PropagatedRuns++
			if o.Term == TermSlaveNode {
				if o.SlaveTermOS {
					s.PropSlaveOS++
				}
				if o.SlaveTermMPI {
					s.PropSlaveMPI++
				}
			}
		}
		if cfg.Trace {
			s.ReadsHist.Add(float64(o.TaintedReads))
			s.WritesHist.Add(float64(o.TaintedWrites))
			switch {
			case o.TaintedReads > 0 && o.TaintedWrites == 0:
				s.ReadOnlyRuns++
			case o.TaintedWrites > 0 && o.TaintedReads == 0:
				s.WriteOnlyRuns++
			case o.TaintedReads > o.TaintedWrites:
				s.ReadHeavyRuns++
			}
		}
	}
	if cfg.KeepRunOutcomes {
		s.Outcomes = outcomes
	}
	return s
}
