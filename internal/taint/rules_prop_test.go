package taint

import (
	"math"
	"math/rand"
	"testing"

	"chaser/internal/tcg"
)

// Property: the taint rules are sound with respect to the engine's concrete
// semantics. For any operands and shadow masks, flipping a *tainted* input
// bit must only ever change result bits *inside* the mask the rule computed
// for the original operands. This catches the shift-relocation bug class
// wholesale: a rule that points taint at the wrong output bits fails the
// moment a flip lands outside them.
//
// The concrete functions below mirror internal/vm's execTB cases exactly;
// compare kinds are excluded because their flags output lives in a separate
// register with its own (deliberately coarse) CompareMask convention.

// evalBinary applies the engine semantics of a two-operand kind. ok=false
// means the operands trap (division by zero) and the trial must be skipped.
func evalBinary(kind tcg.Kind, a, b uint64) (uint64, bool) {
	switch kind {
	case tcg.KAnd:
		return a & b, true
	case tcg.KOr:
		return a | b, true
	case tcg.KXor:
		return a ^ b, true
	case tcg.KAdd:
		return a + b, true
	case tcg.KSub:
		return a - b, true
	case tcg.KMul:
		return a * b, true
	case tcg.KDiv:
		x, y := int64(a), int64(b)
		if y == 0 {
			return 0, false
		}
		if x == math.MinInt64 && y == -1 {
			return uint64(x), true
		}
		return uint64(x / y), true
	case tcg.KMod:
		x, y := int64(a), int64(b)
		if y == 0 {
			return 0, false
		}
		if x == math.MinInt64 && y == -1 {
			return 0, true
		}
		return uint64(x % y), true
	case tcg.KShl:
		if b >= 64 {
			return 0, true
		}
		return a << b, true
	case tcg.KShr:
		if b >= 64 {
			return 0, true
		}
		return a >> b, true
	case tcg.KFAdd:
		return math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b)), true
	case tcg.KFSub:
		return math.Float64bits(math.Float64frombits(a) - math.Float64frombits(b)), true
	case tcg.KFMul:
		return math.Float64bits(math.Float64frombits(a) * math.Float64frombits(b)), true
	case tcg.KFDiv:
		return math.Float64bits(math.Float64frombits(a) / math.Float64frombits(b)), true
	}
	return 0, false
}

func evalImmBinary(kind tcg.Kind, a uint64, imm int64) uint64 {
	switch kind {
	case tcg.KAddI, tcg.KLdD, tcg.KStD:
		// KLdD/KStD compute the address temp exactly like the KAddI they
		// replaced; the rule under test is their temp-register mask.
		return a + uint64(imm)
	case tcg.KMulI:
		return a * uint64(imm)
	}
	return 0
}

func evalUnary(kind tcg.Kind, a uint64) uint64 {
	switch kind {
	case tcg.KMov:
		return a
	case tcg.KNot:
		return ^a
	case tcg.KFNeg:
		return math.Float64bits(-math.Float64frombits(a))
	case tcg.KCvtIF:
		return math.Float64bits(float64(int64(a)))
	case tcg.KCvtFI:
		f := math.Float64frombits(a)
		switch {
		case math.IsNaN(f):
			return 0
		case f >= math.MaxInt64:
			return uint64(math.MaxInt64)
		case f <= math.MinInt64:
			return 1 << 63
		default:
			return uint64(int64(f))
		}
	}
	return 0
}

// checkFlips verifies every single-bit flip of the tainted input bits against
// the computed result mask. eval returns ok=false to skip a flipped operand
// that traps.
func checkFlips(t *testing.T, kind tcg.Kind, label string, base uint64, tainted uint64,
	mask uint64, orig uint64, eval func(flipped uint64) (uint64, bool)) {
	t.Helper()
	for bit := 0; bit < 64; bit++ {
		if tainted&(1<<bit) == 0 {
			continue
		}
		res, ok := eval(base ^ (1 << bit))
		if !ok {
			continue
		}
		if diff := (res ^ orig) &^ mask; diff != 0 {
			t.Fatalf("%v: flipping %s bit %d changed result bits %#x outside mask %#x",
				kind, label, bit, diff, mask)
		}
	}
}

func TestBinaryMaskSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	kinds := []tcg.Kind{
		tcg.KAnd, tcg.KOr, tcg.KXor, tcg.KAdd, tcg.KSub,
		tcg.KMul, tcg.KDiv, tcg.KMod, tcg.KShl, tcg.KShr,
		tcg.KFAdd, tcg.KFSub, tcg.KFMul, tcg.KFDiv,
	}
	for _, kind := range kinds {
		for trial := 0; trial < 300; trial++ {
			a, b := rng.Uint64(), rng.Uint64()
			if kind == tcg.KShl || kind == tcg.KShr {
				// Exercise in-range, boundary, and far out-of-range amounts.
				switch trial % 4 {
				case 0:
					b = rng.Uint64() & 63
				case 1:
					b = 63 + rng.Uint64()%4 // straddles the 64 boundary
				case 2:
					b = 1 << (32 + rng.Uint64()%16)
				}
			}
			m1, m2 := rng.Uint64(), rng.Uint64()
			if trial%3 == 0 {
				m2 = 0 // exercise the precise shift-relocation arm
			}
			orig, ok := evalBinary(kind, a, b)
			if !ok {
				continue
			}
			mask := BinaryMask(kind, m1, m2, b)
			checkFlips(t, kind, "A1", a, m1, mask, orig, func(fa uint64) (uint64, bool) {
				return evalBinary(kind, fa, b)
			})
			checkFlips(t, kind, "A2", b, m2, mask, orig, func(fb uint64) (uint64, bool) {
				return evalBinary(kind, a, fb)
			})
		}
	}
}

func TestImmBinaryMaskSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	kinds := []tcg.Kind{tcg.KAddI, tcg.KMulI, tcg.KLdD, tcg.KStD}
	for _, kind := range kinds {
		for trial := 0; trial < 300; trial++ {
			a := rng.Uint64()
			imm := int64(rng.Uint64())
			if trial%4 == 0 {
				imm = 0
			}
			m1 := rng.Uint64()
			orig := evalImmBinary(kind, a, imm)
			mask := ImmBinaryMask(kind, m1, imm)
			checkFlips(t, kind, "A1", a, m1, mask, orig, func(fa uint64) (uint64, bool) {
				return evalImmBinary(kind, fa, imm), true
			})
		}
	}
}

func TestUnaryMaskSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	kinds := []tcg.Kind{tcg.KMov, tcg.KNot, tcg.KFNeg, tcg.KCvtIF, tcg.KCvtFI}
	for _, kind := range kinds {
		for trial := 0; trial < 300; trial++ {
			a := rng.Uint64()
			m1 := rng.Uint64()
			orig := evalUnary(kind, a)
			mask := UnaryMask(kind, m1)
			checkFlips(t, kind, "A1", a, m1, mask, orig, func(fa uint64) (uint64, bool) {
				return evalUnary(kind, fa), true
			})
		}
	}
}
