package taint

import (
	"math/bits"

	"chaser/internal/tcg"
)

// This file defines the per-micro-op taint propagation rules. They follow
// DECAF's bitwise discipline for logical operations and use conservative
// carry/diffusion smearing for arithmetic, plus the floating-point extension
// described in the paper (any tainted input bit diffuses through the whole
// result, since FP rounding mixes mantissa and exponent).

// smearUp taints every bit at or above the lowest tainted input bit,
// modelling carry propagation in add/sub.
func smearUp(mask uint64) uint64 {
	if mask == 0 {
		return 0
	}
	low := uint(bits.TrailingZeros64(mask))
	return ^uint64(0) << low
}

// smearAll taints the full word when any input bit is tainted, modelling
// multiplicative/float diffusion.
func smearAll(mask uint64) uint64 {
	if mask == 0 {
		return 0
	}
	return ^uint64(0)
}

// BinaryMask computes the result shadow mask of a two-operand micro-op from
// its operand masks. shift is the runtime shift amount for KShl/KShr (used
// to relocate the mask precisely when the amount itself is untainted).
func BinaryMask(kind tcg.Kind, m1, m2 uint64, shift uint64) uint64 {
	switch kind {
	case tcg.KAnd, tcg.KOr, tcg.KXor:
		return m1 | m2
	case tcg.KAdd, tcg.KSub:
		return smearUp(m1 | m2)
	case tcg.KMul, tcg.KDiv, tcg.KMod:
		return smearAll(m1 | m2)
	case tcg.KShl:
		if m2 != 0 {
			return smearAll(m1 | m2)
		}
		if shift >= 64 {
			// The engine defines out-of-range shifts as a constant 0 result;
			// masking the amount with &63 here would leave phantom taint on
			// that constant.
			return 0
		}
		return m1 << shift
	case tcg.KShr:
		if m2 != 0 {
			return smearAll(m1 | m2)
		}
		if shift >= 64 {
			return 0
		}
		return m1 >> shift
	case tcg.KFAdd, tcg.KFSub, tcg.KFMul, tcg.KFDiv:
		return smearAll(m1 | m2)
	}
	return smearAll(m1 | m2)
}

// ImmBinaryMask computes the result mask for immediate-operand micro-ops
// (the immediate is a constant and contributes no taint).
func ImmBinaryMask(kind tcg.Kind, m1 uint64, imm int64) uint64 {
	switch kind {
	case tcg.KAddI:
		return smearUp(m1)
	case tcg.KMulI:
		return smearAll(m1)
	case tcg.KLdD, tcg.KStD:
		// Fused base+displacement addressing: the address temporary inherits
		// the base register's taint exactly as the unfused sequence computed
		// it — identity copy for a zero displacement (the peephole would have
		// rewritten that KAddI to KMov), carry smear otherwise.
		if imm == 0 {
			return m1
		}
		return smearUp(m1)
	}
	return smearAll(m1)
}

// UnaryMask computes the result mask for one-operand micro-ops.
func UnaryMask(kind tcg.Kind, m1 uint64) uint64 {
	switch kind {
	case tcg.KMov, tcg.KNot:
		return m1
	case tcg.KFNeg:
		// Negation flips only the sign bit; taint is preserved bit-for-bit
		// and the sign bit becomes tainted if anything is.
		if m1 == 0 {
			return 0
		}
		return m1 | 1<<63
	case tcg.KCvtIF, tcg.KCvtFI:
		return smearAll(m1)
	}
	return smearAll(m1)
}

// CompareMask computes the flags-register mask for compare micro-ops: the
// flags value is data-dependent on any tainted input bit.
func CompareMask(m1, m2 uint64) uint64 {
	if m1|m2 == 0 {
		return 0
	}
	// Flags hold -1/0/+1; conservatively taint the low two bits and sign.
	return 0x3 | 1<<63
}
