package taint

import (
	"testing"
	"testing/quick"

	"chaser/internal/tcg"
)

func TestRegMasks(t *testing.T) {
	s := NewShadow()
	if s.AnyRegTainted() {
		t.Error("fresh shadow has tainted regs")
	}
	s.SetRegMask(tcg.GPR0+3, 1<<5)
	if got := s.RegMask(tcg.GPR0 + 3); got != 1<<5 {
		t.Errorf("RegMask = %#x", got)
	}
	if !s.AnyRegTainted() {
		t.Error("AnyRegTainted = false after SetRegMask")
	}
	s.Reset()
	if s.AnyRegTainted() || s.TaintedBytes() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestMemMask8(t *testing.T) {
	s := NewShadow()
	const addr = 0x2000_0123
	s.SetMemMask8(addr, 0x80)
	if got := s.MemMask8(addr); got != 0x80 {
		t.Errorf("MemMask8 = %#x", got)
	}
	if got := s.TaintedBytes(); got != 1 {
		t.Errorf("TaintedBytes = %d, want 1", got)
	}
	// Overwriting with another non-zero mask keeps count at 1.
	s.SetMemMask8(addr, 0x01)
	if got := s.TaintedBytes(); got != 1 {
		t.Errorf("TaintedBytes after overwrite = %d, want 1", got)
	}
	s.SetMemMask8(addr, 0)
	if got := s.TaintedBytes(); got != 0 {
		t.Errorf("TaintedBytes after clear = %d, want 0", got)
	}
	if got := s.MemMask8(addr); got != 0 {
		t.Errorf("MemMask8 after clear = %#x", got)
	}
	// Clearing an untouched address allocates nothing and stays at zero.
	s.SetMemMask8(0x5000_0000, 0)
	if len(s.pages) != 0 {
		t.Errorf("pages = %d, want 0 (zero-store must not allocate)", len(s.pages))
	}
}

func TestMemMask64RoundTrip(t *testing.T) {
	s := NewShadow()
	const addr = 0x2000_0000
	const mask = uint64(0xdead_beef_cafe_0102)
	s.SetMemMask64(addr, mask)
	if got := s.MemMask64(addr); got != mask {
		t.Errorf("MemMask64 = %#x, want %#x", got, mask)
	}
	// Byte layout is little-endian: byte 0 carries bits 0-7.
	if got := s.MemMask8(addr); got != 0x02 {
		t.Errorf("byte0 mask = %#x, want 0x02", got)
	}
	if got := s.MemMask8(addr + 7); got != 0xde {
		t.Errorf("byte7 mask = %#x, want 0xde", got)
	}
	// 7 of 8 bytes have non-zero masks? 0xde,0xad,0xbe,0xef,0xca,0xfe,0x01,0x02: all 8.
	if got := s.TaintedBytes(); got != 8 {
		t.Errorf("TaintedBytes = %d, want 8", got)
	}
	s.SetMemMask64(addr, 0)
	if got := s.TaintedBytes(); got != 0 {
		t.Errorf("TaintedBytes after clear = %d", got)
	}
}

func TestMemMask64CrossesPages(t *testing.T) {
	s := NewShadow()
	addr := uint64(0x2000_1000 - 4) // straddles a page boundary
	s.SetMemMask64(addr, ^uint64(0))
	if got := s.MemMask64(addr); got != ^uint64(0) {
		t.Errorf("cross-page MemMask64 = %#x", got)
	}
	if got := s.TaintedBytes(); got != 8 {
		t.Errorf("TaintedBytes = %d", got)
	}
}

func TestMemRangeHelpers(t *testing.T) {
	s := NewShadow()
	base := uint64(0x3000_0000)
	masks := []uint8{0, 1, 0, 0xff, 0}
	s.SetMemRangeMasks(base, masks)
	if !s.MemRangeTainted(base, 5) {
		t.Error("MemRangeTainted = false")
	}
	if s.MemRangeTainted(base+4, 1) {
		t.Error("untainted tail reported tainted")
	}
	got := s.MemRangeMasks(base, 5)
	for i := range masks {
		if got[i] != masks[i] {
			t.Errorf("mask[%d] = %#x, want %#x", i, got[i], masks[i])
		}
	}
	if got := s.TaintedBytes(); got != 2 {
		t.Errorf("TaintedBytes = %d, want 2", got)
	}
	s.ClearMemRange(base, 5)
	if s.MemRangeTainted(base, 5) || s.TaintedBytes() != 0 {
		t.Error("ClearMemRange did not clear")
	}
}

func TestTaintedAddrs(t *testing.T) {
	s := NewShadow()
	for _, a := range []uint64{0x9000, 0x2000, 0x2005, 0x1_0000} {
		s.SetMemMask8(a, 1)
	}
	addrs := s.TaintedAddrs(0)
	want := []uint64{0x2000, 0x2005, 0x9000, 0x1_0000}
	if len(addrs) != len(want) {
		t.Fatalf("addrs = %v", addrs)
	}
	for i := range want {
		if addrs[i] != want[i] {
			t.Errorf("addrs[%d] = %#x, want %#x", i, addrs[i], want[i])
		}
	}
	if got := s.TaintedAddrs(2); len(got) != 2 {
		t.Errorf("limited addrs = %v", got)
	}
}

// Property: tainted-byte accounting matches a brute-force recount after an
// arbitrary sequence of mask stores.
func TestTaintedBytesInvariantQuick(t *testing.T) {
	f := func(ops []struct {
		Off  uint16
		Mask uint8
	}) bool {
		s := NewShadow()
		ref := make(map[uint64]uint8)
		base := uint64(0x2000_0000)
		for _, op := range ops {
			addr := base + uint64(op.Off)
			s.SetMemMask8(addr, op.Mask)
			if op.Mask == 0 {
				delete(ref, addr)
			} else {
				ref[addr] = op.Mask
			}
		}
		if int(s.TaintedBytes()) != len(ref) {
			return false
		}
		for a, m := range ref {
			if s.MemMask8(a) != m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func allFrom(n uint) uint64 { return ^uint64(0) << n }

func TestSmearRules(t *testing.T) {
	tests := []struct {
		name string
		kind tcg.Kind
		m1   uint64
		m2   uint64
		sh   uint64
		want uint64
	}{
		{"xor union", tcg.KXor, 0x0f, 0xf0, 0, 0xff},
		{"and union", tcg.KAnd, 1 << 3, 0, 0, 1 << 3},
		{"add carries up", tcg.KAdd, 1 << 4, 0, 0, allFrom(4)},
		{"sub carries up", tcg.KSub, 0, 1 << 10, 0, allFrom(10)},
		{"add clean", tcg.KAdd, 0, 0, 0, 0},
		{"mul smears all", tcg.KMul, 1 << 63, 0, 0, ^uint64(0)},
		{"div smears all", tcg.KDiv, 0, 1, 0, ^uint64(0)},
		{"shl shifts mask", tcg.KShl, 1 << 2, 0, 3, 1 << 5},
		{"shr shifts mask", tcg.KShr, 1 << 5, 0, 3, 1 << 2},
		{"shl tainted amount", tcg.KShl, 1, 1, 0, ^uint64(0)},
		{"fadd smears", tcg.KFAdd, 1 << 52, 0, 0, ^uint64(0)},
		{"fdiv clean", tcg.KFDiv, 0, 0, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := BinaryMask(tt.kind, tt.m1, tt.m2, tt.sh); got != tt.want {
				t.Errorf("BinaryMask = %#x, want %#x", got, tt.want)
			}
		})
	}
}

func TestImmAndUnaryMasks(t *testing.T) {
	if got := ImmBinaryMask(tcg.KAddI, 1<<8, 42); got != allFrom(8) {
		t.Errorf("KAddI = %#x", got)
	}
	if got := ImmBinaryMask(tcg.KMulI, 1, 3); got != ^uint64(0) {
		t.Errorf("KMulI = %#x", got)
	}
	if got := ImmBinaryMask(tcg.KAddI, 0, 42); got != 0 {
		t.Errorf("clean KAddI = %#x", got)
	}
	if got := UnaryMask(tcg.KMov, 0xabc); got != 0xabc {
		t.Errorf("KMov = %#x", got)
	}
	if got := UnaryMask(tcg.KNot, 0xabc); got != 0xabc {
		t.Errorf("KNot = %#x", got)
	}
	if got := UnaryMask(tcg.KFNeg, 0); got != 0 {
		t.Errorf("clean KFNeg = %#x", got)
	}
	if got := UnaryMask(tcg.KFNeg, 1); got != 1|1<<63 {
		t.Errorf("KFNeg = %#x", got)
	}
	if got := UnaryMask(tcg.KCvtIF, 2); got != ^uint64(0) {
		t.Errorf("KCvtIF = %#x", got)
	}
}

func TestCompareMask(t *testing.T) {
	if got := CompareMask(0, 0); got != 0 {
		t.Errorf("clean compare = %#x", got)
	}
	if got := CompareMask(1<<7, 0); got == 0 {
		t.Error("tainted compare produced clean flags")
	}
}

// Property: no rule conjures taint from fully clean inputs, and every rule
// output is monotone in its inputs (adding input taint never removes output
// taint for the same kind).
func TestNoTaintFromCleanQuick(t *testing.T) {
	kinds := []tcg.Kind{
		tcg.KAdd, tcg.KSub, tcg.KMul, tcg.KDiv, tcg.KMod, tcg.KAnd, tcg.KOr,
		tcg.KXor, tcg.KShl, tcg.KShr, tcg.KFAdd, tcg.KFSub, tcg.KFMul, tcg.KFDiv,
	}
	for _, k := range kinds {
		if got := BinaryMask(k, 0, 0, 13); got != 0 {
			t.Errorf("%v produced taint from clean inputs: %#x", k, got)
		}
	}
	f := func(m1, m2 uint64, extra uint64, sh uint8, kidx uint8) bool {
		k := kinds[int(kidx)%len(kinds)]
		base := BinaryMask(k, m1, m2, uint64(sh))
		wider := BinaryMask(k, m1|extra, m2, uint64(sh))
		return base&^wider == 0 || (k == tcg.KShl || k == tcg.KShr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
