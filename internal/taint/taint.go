// Package taint implements DECAF-style lightweight bitwise dynamic taint
// analysis for the Chaser virtual machine.
//
// Taint is tracked at bit granularity: every micro-register carries a 64-bit
// shadow mask and every guest memory byte carries an 8-bit shadow mask, so an
// injected single-bit flip starts life as a single shadow bit and widens only
// as the fault propagates. Propagation rules are enforced per TCG micro-op
// (see rules.go), including the floating-point extension the paper adds on
// top of DECAF's integer rules.
package taint

import (
	"sort"

	"chaser/internal/tcg"
)

// PageSize is the granularity of shadow-memory allocation.
const PageSize = 4096

type shadowPage struct {
	masks [PageSize]uint8
	// count is the number of bytes in this page with a non-zero mask,
	// maintained incrementally so tainted-byte sampling (paper Fig. 7) is
	// O(1) per query.
	count int
}

// Shadow holds the complete taint state of one guest process: shadow
// registers and shadow memory.
//
// The zero value is not ready for use; call NewShadow.
type Shadow struct {
	regs  [tcg.NumMRegs]uint64
	pages map[uint64]*shadowPage
	// liveRegs counts micro-registers with a non-zero mask, maintained
	// incrementally by SetRegMask so Live is O(1) — it gates the execution
	// engine's fast path at every TB entry.
	liveRegs int
	// taintedBytes is the global count of guest memory bytes whose shadow
	// mask is non-zero; highWater is its per-run peak (telemetry).
	taintedBytes int64
	highWater    int64
	// onFirstTaint fires once per clean→live transition (the taint birth the
	// provenance layer dates a fault's life from). The check lives inside the
	// transition branches of SetRegMask/SetMemMask8, so the propagation hot
	// paths pay nothing for it while taint is already live.
	onFirstTaint func()
}

// NewShadow creates an empty taint state.
func NewShadow() *Shadow {
	return &Shadow{pages: make(map[uint64]*shadowPage)}
}

// Reset clears all taint.
func (s *Shadow) Reset() {
	s.regs = [tcg.NumMRegs]uint64{}
	s.pages = make(map[uint64]*shadowPage)
	s.liveRegs = 0
	s.taintedBytes = 0
	s.highWater = 0
}

// Clone returns a deep copy of the taint state: shadow registers, shadow
// pages, and the incrementally maintained counts. The onFirstTaint callback
// is NOT copied — it closes over the originating machine, and a forked
// machine installs its own. Fork-point snapshots use Clone so forks mutate
// taint independently of the captured prefix.
func (s *Shadow) Clone() *Shadow {
	cp := &Shadow{
		regs:         s.regs,
		pages:        make(map[uint64]*shadowPage, len(s.pages)),
		liveRegs:     s.liveRegs,
		taintedBytes: s.taintedBytes,
		highWater:    s.highWater,
	}
	for base, p := range s.pages {
		pp := *p
		cp.pages[base] = &pp
	}
	return cp
}

// OnFirstTaint installs a callback invoked whenever the shadow transitions
// from completely clean to live (including again after a Reset or a full
// decay back to clean). A nil callback disables the notification.
func (s *Shadow) OnFirstTaint(fn func()) { s.onFirstTaint = fn }

// RegMask returns the shadow mask of a micro-register.
func (s *Shadow) RegMask(r tcg.MReg) uint64 { return s.regs[r] }

// SetRegMask replaces the shadow mask of a micro-register.
func (s *Shadow) SetRegMask(r tcg.MReg, mask uint64) {
	switch prev := s.regs[r]; {
	case prev == 0 && mask != 0:
		s.liveRegs++
		if s.liveRegs == 1 && s.taintedBytes == 0 && s.onFirstTaint != nil {
			s.onFirstTaint()
		}
	case prev != 0 && mask == 0:
		s.liveRegs--
	}
	s.regs[r] = mask
}

// Live reports whether any taint exists anywhere — registers or memory. It
// is the O(1) emptiness check the execution engine performs at TB entry to
// select its taint-free fast loop (DECAF++-style elastic tainting: a run with
// taint enabled but nothing yet tainted pays nothing for the machinery).
func (s *Shadow) Live() bool {
	return s.liveRegs > 0 || s.taintedBytes > 0
}

// AnyRegTainted reports whether any guest-visible register carries taint.
func (s *Shadow) AnyRegTainted() bool {
	for _, m := range s.regs {
		if m != 0 {
			return true
		}
	}
	return false
}

// TaintedBytes returns the number of guest memory bytes currently tainted.
// This is the quantity sampled every 100K instructions for the paper's
// tainted-bytes-in-propagation curves.
func (s *Shadow) TaintedBytes() int64 { return s.taintedBytes }

// HighWater returns the peak tainted-byte count observed since creation (or
// the last Reset) — the fault's maximum memory footprint.
func (s *Shadow) HighWater() int64 { return s.highWater }

func (s *Shadow) page(addr uint64) (*shadowPage, uint64) {
	base := addr &^ (PageSize - 1)
	return s.pages[base], addr - base
}

func (s *Shadow) pageAlloc(addr uint64) (*shadowPage, uint64) {
	base := addr &^ (PageSize - 1)
	p := s.pages[base]
	if p == nil {
		p = &shadowPage{}
		s.pages[base] = p
	}
	return p, addr - base
}

// MemMask8 returns the shadow mask of one guest byte.
func (s *Shadow) MemMask8(addr uint64) uint8 {
	p, off := s.page(addr)
	if p == nil {
		return 0
	}
	return p.masks[off]
}

// SetMemMask8 replaces the shadow mask of one guest byte.
func (s *Shadow) SetMemMask8(addr uint64, mask uint8) {
	if mask == 0 {
		// Avoid allocating a page just to store zeros.
		p, off := s.page(addr)
		if p == nil {
			return
		}
		if p.masks[off] != 0 {
			p.masks[off] = 0
			p.count--
			s.taintedBytes--
			if p.count == 0 {
				delete(s.pages, addr&^(PageSize-1))
			}
		}
		return
	}
	p, off := s.pageAlloc(addr)
	if p.masks[off] == 0 {
		p.count++
		s.taintedBytes++
		if s.taintedBytes == 1 && s.liveRegs == 0 && s.onFirstTaint != nil {
			s.onFirstTaint()
		}
		if s.taintedBytes > s.highWater {
			s.highWater = s.taintedBytes
		}
	}
	p.masks[off] = mask
}

// MemMask64 assembles the 64-bit shadow mask of eight consecutive guest
// bytes at addr (little-endian: byte i supplies mask bits [8i, 8i+8)).
func (s *Shadow) MemMask64(addr uint64) uint64 {
	if s.taintedBytes == 0 {
		return 0
	}
	if off := addr & (PageSize - 1); off <= PageSize-8 {
		// Fast path: all eight bytes in one page.
		p, _ := s.page(addr)
		if p == nil {
			return 0
		}
		var mask uint64
		for i := uint64(0); i < 8; i++ {
			mask |= uint64(p.masks[off+i]) << (8 * i)
		}
		return mask
	}
	var mask uint64
	for i := uint64(0); i < 8; i++ {
		if m := s.MemMask8(addr + i); m != 0 {
			mask |= uint64(m) << (8 * i)
		}
	}
	return mask
}

// SetMemMask64 distributes a 64-bit register shadow mask across eight
// consecutive guest bytes.
func (s *Shadow) SetMemMask64(addr uint64, mask uint64) {
	if mask == 0 && s.taintedBytes == 0 {
		return
	}
	for i := uint64(0); i < 8; i++ {
		s.SetMemMask8(addr+i, uint8(mask>>(8*i)))
	}
}

// ClearMemRange removes taint from [addr, addr+n).
func (s *Shadow) ClearMemRange(addr, n uint64) {
	for i := uint64(0); i < n; i++ {
		s.SetMemMask8(addr+i, 0)
	}
}

// MemRangeTainted reports whether any byte in [addr, addr+n) is tainted.
func (s *Shadow) MemRangeTainted(addr, n uint64) bool {
	for i := uint64(0); i < n; i++ {
		if s.MemMask8(addr+i) != 0 {
			return true
		}
	}
	return false
}

// MemRangeMasks copies the per-byte shadow masks of [addr, addr+n). The
// result is the taint-status payload Chaser publishes to the TaintHub for an
// outgoing MPI message buffer.
func (s *Shadow) MemRangeMasks(addr, n uint64) []uint8 {
	out := make([]uint8, n)
	for i := uint64(0); i < n; i++ {
		out[i] = s.MemMask8(addr + i)
	}
	return out
}

// SetMemRangeMasks applies per-byte shadow masks to [addr, addr+len(masks)).
// This is how a receiving rank re-marks taint retrieved from the TaintHub.
func (s *Shadow) SetMemRangeMasks(addr uint64, masks []uint8) {
	for i, m := range masks {
		s.SetMemMask8(addr+uint64(i), m)
	}
}

// TaintedAddrs returns up to limit tainted byte addresses in ascending
// order (limit <= 0 means no limit). Intended for debugging and tests.
func (s *Shadow) TaintedAddrs(limit int) []uint64 {
	bases := make([]uint64, 0, len(s.pages))
	for b := range s.pages {
		bases = append(bases, b)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	var out []uint64
	for _, b := range bases {
		p := s.pages[b]
		for off, m := range p.masks {
			if m != 0 {
				out = append(out, b+uint64(off))
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}
