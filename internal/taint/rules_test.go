package taint

import (
	"testing"

	"chaser/internal/tcg"
)

// TestShiftMaskOutOfRangeAmount is the regression test for the shift-taint
// relocation bug: the engine defines shifts with an amount >= 64 as a
// constant 0 result, so no input taint can reach it. The old rule masked the
// amount with &63, leaving sa=64 "shifting" the mask by zero — phantom taint
// on an untainted constant.
func TestShiftMaskOutOfRangeAmount(t *testing.T) {
	var m1 uint64 = 0x0000_00ff_0000_0001
	cases := []struct {
		kind tcg.Kind
		sa   uint64
		want uint64
	}{
		// In range: the mask relocates exactly with the data.
		{tcg.KShl, 63, m1 << 63},
		{tcg.KShr, 63, m1 >> 63},
		// Out of range: the result is the constant 0 — no taint survives.
		{tcg.KShl, 64, 0},
		{tcg.KShr, 64, 0},
		{tcg.KShl, 65, 0},
		{tcg.KShr, 65, 0},
		{tcg.KShl, 1 << 32, 0},
		{tcg.KShr, 1 << 32, 0},
	}
	for _, tc := range cases {
		if got := BinaryMask(tc.kind, m1, 0, tc.sa); got != tc.want {
			t.Errorf("BinaryMask(%v, %#x, 0, %d) = %#x, want %#x",
				tc.kind, m1, tc.sa, got, tc.want)
		}
	}
	// A tainted shift amount still smears regardless of its runtime value.
	for _, kind := range []tcg.Kind{tcg.KShl, tcg.KShr} {
		if got := BinaryMask(kind, m1, 1, 64); got != ^uint64(0) {
			t.Errorf("BinaryMask(%v) with tainted amount = %#x, want all-ones", kind, got)
		}
		if got := BinaryMask(kind, 0, 1, 2); got != ^uint64(0) {
			t.Errorf("BinaryMask(%v) amount-only taint = %#x, want all-ones", kind, got)
		}
	}
}

// TestFusedAddressingMask: the fused load/store kinds give the address temp
// exactly the mask the unfused sequence computed — identity for a zero
// displacement (the peephole's KMov), carry smear otherwise.
func TestFusedAddressingMask(t *testing.T) {
	const m = 0x0f0
	for _, kind := range []tcg.Kind{tcg.KLdD, tcg.KStD} {
		if got := ImmBinaryMask(kind, m, 0); got != m {
			t.Errorf("ImmBinaryMask(%v, %#x, 0) = %#x, want identity", kind, m, got)
		}
		if got, want := ImmBinaryMask(kind, m, 8), smearUp(m); got != want {
			t.Errorf("ImmBinaryMask(%v, %#x, 8) = %#x, want %#x", kind, m, got, want)
		}
		if got := ImmBinaryMask(kind, 0, 8); got != 0 {
			t.Errorf("ImmBinaryMask(%v, 0, 8) = %#x, want 0", kind, got)
		}
	}
}
