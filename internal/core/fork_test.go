package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"chaser/internal/isa"
	"chaser/internal/vm"
)

// normalizeCounters zeroes the translation-block cache statistics, the one
// part of Counters outside the fork bitwise contract: a forked run starts
// with a cold chain table and splits the fork-point block, so block counts
// differ while instruction-level state is identical. None of them feed
// outcome classification.
func normalizeCounters(cs []vm.Counters) []vm.Counters {
	out := append([]vm.Counters(nil), cs...)
	for i := range out {
		out[i].TBsExecuted = 0
		out[i].ChainedTBs = 0
		out[i].FastPathTBs = 0
	}
	return out
}

// traceSummary collapses a propagation trace to its order-independent
// aggregates (the parts classification and reporting consume). Event order
// interleaves nondeterministically across rank goroutines even between two
// from-scratch runs, so the full event list is not comparable bitwise.
type traceSummary struct {
	Reads, Writes uint64
	CrossRank     int
	Sends         int
	Outputs       int
	Propagated    bool
	Samples       int
}

func summarize(r *RunResult) traceSummary {
	return traceSummary{
		Reads:      r.Trace.TotalReads(),
		Writes:     r.Trace.TotalWrites(),
		CrossRank:  len(r.Trace.CrossRank()),
		Sends:      len(r.Trace.Sends()),
		Outputs:    len(r.Trace.Outputs()),
		Propagated: r.Trace.Propagated(),
		Samples:    len(r.Trace.Timeline()),
	}
}

func compareRuns(t *testing.T, label string, scratch, forked *RunResult) {
	t.Helper()
	if !reflect.DeepEqual(scratch.Terms, forked.Terms) {
		t.Errorf("%s: terms differ:\n scratch %v\n forked  %v", label, scratch.Terms, forked.Terms)
	}
	if !reflect.DeepEqual(scratch.Outputs, forked.Outputs) {
		t.Errorf("%s: outputs differ", label)
	}
	if !reflect.DeepEqual(scratch.Consoles, forked.Consoles) {
		t.Errorf("%s: consoles differ", label)
	}
	if !reflect.DeepEqual(scratch.Records, forked.Records) {
		t.Errorf("%s: injection records differ:\n scratch %v\n forked  %v",
			label, scratch.Records, forked.Records)
	}
	sc := normalizeCounters(scratch.Counters)
	fc := normalizeCounters(forked.Counters)
	if !reflect.DeepEqual(sc, fc) {
		for r := range sc {
			if sc[r] != fc[r] {
				t.Errorf("%s: rank %d counters differ:\n scratch instrs=%d sys=%d taintR=%d taintW=%d\n forked  instrs=%d sys=%d taintR=%d taintW=%d",
					label, r,
					sc[r].Instructions, sc[r].Syscalls, sc[r].TaintedMemReads, sc[r].TaintedMemWrites,
					fc[r].Instructions, fc[r].Syscalls, fc[r].TaintedMemReads, fc[r].TaintedMemWrites)
				if sc[r].PerOp != fc[r].PerOp {
					for op := range sc[r].PerOp {
						if sc[r].PerOp[op] != fc[r].PerOp[op] {
							t.Errorf("%s: rank %d op %s: scratch %d forked %d",
								label, r, isa.Op(op), sc[r].PerOp[op], fc[r].PerOp[op])
						}
					}
				}
			}
		}
	}
	if s, f := summarize(scratch), summarize(forked); s != f {
		t.Errorf("%s: trace summaries differ:\n scratch %+v\n forked  %+v", label, s, f)
	}
}

// TestForkedRunMatchesScratch is the fork-vs-scratch differential: for a
// range of fork sites, seeds and trace modes, a run resumed from a world
// snapshot must be bitwise identical to a from-scratch run of the same spec —
// terminations, outputs, consoles, injection records, per-rank counters
// (modulo TB cache statistics) and the taint summary.
func TestForkedRunMatchesScratch(t *testing.T) {
	prog := crossProg(t)
	for _, trace := range []bool{false, true} {
		for _, site := range []ForkSite{{Rank: 0, N: 1}, {Rank: 0, N: 3}, {Rank: 0, N: 8}} {
			for _, seed := range []int64{11, 23} {
				spec := &Spec{
					Target: "cross_app", Ops: []isa.Op{isa.OpFAdd},
					TargetRank: site.Rank,
					Cond:       Deterministic{N: site.N},
					Bits:       2, Trace: trace, Seed: seed,
				}
				cfg := RunConfig{Prog: prog, WorldSize: 2, Spec: spec}
				label := fmt.Sprintf("trace=%v site=%+v seed=%d", trace, site, seed)

				scratch, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s: scratch: %v", label, err)
				}
				ws, err := PrefixRun(cfg, site)
				if err != nil {
					t.Fatalf("%s: prefix: %v", label, err)
				}
				forked, err := RunForked(cfg, ws)
				if err != nil {
					t.Fatalf("%s: forked: %v", label, err)
				}
				if !forked.Injected() {
					t.Fatalf("%s: forked run did not inject", label)
				}
				compareRuns(t, label, scratch, forked)
			}
		}
	}
}

// TestForkedRunsShareOneSnapshot forks many differently seeded runs from a
// single snapshot concurrently: copy-on-write pages and cloned injector
// state must keep every fork independent, and each must still match its own
// from-scratch twin.
func TestForkedRunsShareOneSnapshot(t *testing.T) {
	prog := crossProg(t)
	site := ForkSite{Rank: 0, N: 5}
	mkSpec := func(seed int64) *Spec {
		return &Spec{
			Target: "cross_app", Ops: []isa.Op{isa.OpFAdd},
			TargetRank: site.Rank, Cond: Deterministic{N: site.N},
			Bits: 1, Trace: true, Seed: seed,
		}
	}
	ws, err := PrefixRun(RunConfig{Prog: prog, WorldSize: 2, Spec: mkSpec(0)}, site)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	forked := make([]*RunResult, len(seeds))
	errs := make([]error, len(seeds))
	var wg sync.WaitGroup
	for i, seed := range seeds {
		wg.Add(1)
		go func(i int, seed int64) {
			defer wg.Done()
			forked[i], errs[i] = RunForked(
				RunConfig{Prog: prog, WorldSize: 2, Spec: mkSpec(seed)}, ws)
		}(i, seed)
	}
	wg.Wait()
	for i, seed := range seeds {
		if errs[i] != nil {
			t.Fatalf("seed %d: %v", seed, errs[i])
		}
		scratch, err := Run(RunConfig{Prog: prog, WorldSize: 2, Spec: mkSpec(seed)})
		if err != nil {
			t.Fatal(err)
		}
		compareRuns(t, fmt.Sprintf("seed=%d", seed), scratch, forked[i])
	}
}

// TestPrefixRunRejectsInvalidSites covers the fallback conditions: sites out
// of range, sites that never fire, and mismatched fork specs.
func TestPrefixRunRejectsInvalidSites(t *testing.T) {
	prog := crossProg(t)
	spec := &Spec{
		Target: "cross_app", Ops: []isa.Op{isa.OpFAdd},
		TargetRank: 0, Cond: Deterministic{N: 1}, Bits: 1, Seed: 1,
	}
	cfg := RunConfig{Prog: prog, WorldSize: 2, Spec: spec}

	if _, err := PrefixRun(cfg, ForkSite{Rank: 7, N: 1}); err == nil {
		t.Error("rank out of range accepted")
	}
	if _, err := PrefixRun(cfg, ForkSite{Rank: 0, N: 0}); err == nil {
		t.Error("zero N accepted")
	}
	// The targeted op executes only 8 times on rank 0; a later site must
	// fail (the world runs to completion without pausing).
	if _, err := PrefixRun(cfg, ForkSite{Rank: 0, N: 99999}); err == nil {
		t.Error("unreachable site accepted")
	}

	ws, err := PrefixRun(cfg, ForkSite{Rank: 0, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	bad := *spec
	bad.Cond = Deterministic{N: 3}
	if _, err := RunForked(RunConfig{Prog: prog, WorldSize: 2, Spec: &bad}, ws); err == nil {
		t.Error("mismatched condition accepted")
	}
	bad2 := *spec
	bad2.TargetRank = 1
	if _, err := RunForked(RunConfig{Prog: prog, WorldSize: 2, Spec: &bad2}, ws); err == nil {
		t.Error("mismatched target rank accepted")
	}
}

// TestForkWithPreTerminatedRank pauses on the receiving rank after the
// sender may already have exited cleanly: the snapshot then restores rank 0
// pre-terminated (or paused — both must reproduce the scratch run).
func TestForkWithPreTerminatedRank(t *testing.T) {
	prog := crossProg(t)
	site := ForkSite{Rank: 1, N: 1}
	spec := &Spec{
		Target: "cross_app", Ops: []isa.Op{isa.OpFMul},
		TargetRank: 1, Cond: Deterministic{N: site.N},
		Bits: 2, Trace: true, Seed: 31,
	}
	cfg := RunConfig{Prog: prog, WorldSize: 2, Spec: spec}
	scratch, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := PrefixRun(cfg, site)
	if err != nil {
		t.Fatal(err)
	}
	forked, err := RunForked(cfg, ws)
	if err != nil {
		t.Fatal(err)
	}
	compareRuns(t, "pre-terminated", scratch, forked)
}
