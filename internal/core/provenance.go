package core

import (
	"strconv"
	"strings"

	"chaser/internal/trace"
)

// Sites converts injection records into the neutral provenance roots the
// trace package consumes (trace cannot import core). Memory-target records
// ("mem 0x...") carry the corrupted address so the graph builder can seed its
// byte-writer map.
func Sites(records []InjectionRecord) []trace.InjectionSite {
	out := make([]trace.InjectionSite, len(records))
	for i, r := range records {
		s := trace.InjectionSite{
			Rank:      r.Rank,
			PC:        r.PC,
			InstrNum:  r.InstrNum,
			ExecCount: r.ExecCount,
			Op:        r.GuestOpS,
			Mask:      r.Mask,
			Target:    r.Target,
		}
		if rest, ok := strings.CutPrefix(r.Target, "mem "); ok {
			if addr, err := strconv.ParseUint(rest, 0, 64); err == nil {
				s.MemAddr = addr
			}
		}
		out[i] = s
	}
	return out
}

// Provenance builds the run's fault-propagation DAG from its propagation log
// and injection records. The graph is empty when the run traced nothing.
func (r *RunResult) Provenance() *trace.Graph {
	return trace.BuildGraph(r.Trace, Sites(r.Records))
}
