package core

import (
	"fmt"

	"chaser/internal/decaf"
	"chaser/internal/isa"
	"chaser/internal/mpi"
	"chaser/internal/tainthub"
	"chaser/internal/trace"
	"chaser/internal/vm"
)

// Fork-point run multiplexing: every run of a fault-injection sweep executes
// the same golden prefix up to its injection trigger, then diverges. Instead
// of replaying that prefix per run, PrefixRun executes it once — pausing the
// whole world at the trigger — and captures a WorldSnapshot; RunForked then
// resumes any number of injected continuations from it via copy-on-write
// machine snapshots. A forked run is bitwise equivalent to a from-scratch
// run (registers, memory, counters, outputs, taint) except for translation-
// block cache statistics (TBsExecuted/ChainedTBs/FastPathTBs), which depend
// on block boundaries and chain-table warmth and appear in no outcome
// classification.

// ForkSite identifies an injection trigger: the site.N-th dynamic execution
// of a targeted instruction on rank site.Rank.
type ForkSite struct {
	Rank int
	N    uint64
}

// resumeState carries the per-rank injector bookkeeping captured at a fork
// point into forked runs: the target's dynamic execution count and every
// rank's per-flow MPI sequence numbers. Maps are cloned per fork at process
// creation (concurrent forks must not share them).
type resumeState struct {
	execCount []uint64
	sendSeq   []map[tainthub.Key]uint64
	recvSeq   []map[tainthub.Key]uint64
}

func cloneSeqMap(src map[tainthub.Key]uint64) map[tainthub.Key]uint64 {
	out := make(map[tainthub.Key]uint64, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}

// WorldSnapshot is a complete MPI world paused at a fork site: one machine
// snapshot per rank, the in-flight message queues, injector resume state,
// and the taint timeline accumulated so far. It is immutable and shareable
// across any number of concurrent RunForked calls.
type WorldSnapshot struct {
	prog      *isa.Program
	worldSize int
	site      ForkSite
	machines  []*vm.Snapshot
	mailboxes [][]mpi.Message
	pendings  [][]mpi.Message
	resume    *resumeState
	samples   []trace.TimelinePoint
	bytes     int64
}

// Site returns the fork site the snapshot was captured at.
func (ws *WorldSnapshot) Site() ForkSite { return ws.site }

// Bytes returns the approximate resident size of the snapshot (page data,
// console/output copies, queued message payloads), the quantity snapshot
// caches account against their memory cap.
func (ws *WorldSnapshot) Bytes() int64 { return ws.bytes }

// errPaused is returned by the pause injector so the Chaser records nothing
// and detaches nothing: the pause is infrastructure, not an injection.
var errPaused = fmt.Errorf("core: fork-point pause")

// pauseInjector suspends the machine at the trigger instead of corrupting
// it. The helper runs in front of the target instruction, so the pause pc is
// the instruction's own address and resuming re-executes it — at which point
// the forked run's real injector fires with the identical dynamic context.
type pauseInjector struct{}

func (pauseInjector) Inject(ctx *Context) (InjectionRecord, error) {
	ctx.Machine.PauseAt(ctx.Op.GuestPC)
	return InjectionRecord{}, errPaused
}

// PrefixRun executes the golden prefix of cfg up to the fork site and
// captures the paused world. cfg.Spec supplies the target application, the
// targeted opcodes and the Trace flag; its condition, injector and seed are
// ignored (the prefix is uninjected, and injector RNGs draw nothing before
// the trigger, so one snapshot serves tasks with any seed).
//
// PrefixRun fails — and the caller falls back to from-scratch execution —
// when the site never fires, a rank terminates abnormally before it, the
// wall-clock deadline expires, or the pause lands inside an MPI call that
// had already made externally visible progress (World.PauseDirty).
func PrefixRun(cfg RunConfig, site ForkSite) (*WorldSnapshot, error) {
	if cfg.Prog == nil {
		return nil, fmt.Errorf("core: prefix run has no program")
	}
	if cfg.Spec == nil {
		return nil, fmt.Errorf("core: prefix run has no spec")
	}
	size := cfg.WorldSize
	if size == 0 {
		size = 1
	}
	if site.Rank < 0 || site.Rank >= size {
		return nil, fmt.Errorf("core: fork site rank %d out of world [0,%d)", site.Rank, size)
	}
	if site.N == 0 {
		return nil, fmt.Errorf("core: fork site N must be >= 1")
	}

	prefix := cfg
	prefix.Spec = &Spec{
		Target:     cfg.Spec.Target,
		Ops:        cfg.Spec.Ops,
		TargetRank: site.Rank,
		Cond:       Deterministic{N: site.N},
		Inj:        pauseInjector{},
		Trace:      cfg.Spec.Trace,
	}
	// The prefix publishes nothing (no taint exists before the trigger), so
	// a private hub keeps per-run namespaced hubs identical to from-scratch
	// runs; events and tracing belong to real runs only.
	prefix.Hub = nil
	prefix.Events = nil
	prefix.Tracer = nil
	prefix.ExecTraceDepth = 0

	platform := decaf.NewPlatform()
	ch := New(Options{Obs: prefix.Obs})
	if err := platform.LoadPlugin(ch); err != nil {
		return nil, err
	}
	ch.Arm(prefix.Spec)
	world, err := newSessionWorld(prefix, size, platform, nil)
	if err != nil {
		return nil, err
	}
	stopWatchdog := armTimeout(world, prefix.Timeout)
	terms := world.Run()
	stopWatchdog()

	if world.PauseDirty() {
		return nil, fmt.Errorf("core: fork site (rank %d, n %d) paused mid-MPI-progress", site.Rank, site.N)
	}
	if terms[site.Rank].Reason != vm.ReasonPaused {
		return nil, fmt.Errorf("core: fork site (rank %d, n %d) did not pause: target %s",
			site.Rank, site.N, terms[site.Rank])
	}
	for r, t := range terms {
		if t.Reason != vm.ReasonPaused && !(t.Reason == vm.ReasonExited && !t.Abnormal()) {
			return nil, fmt.Errorf("core: rank %d ended abnormally before fork site: %s", r, t)
		}
	}
	st := ch.armed[world.Machine(site.Rank)]
	if st == nil || st.execCount != site.N {
		return nil, fmt.Errorf("core: fork site trigger mismatch (helper count %v, want %d)",
			stateCount(st), site.N)
	}

	ws := &WorldSnapshot{
		prog:      cfg.Prog,
		worldSize: size,
		site:      site,
		machines:  make([]*vm.Snapshot, size),
		resume: &resumeState{
			execCount: make([]uint64, size),
			sendSeq:   make([]map[tainthub.Key]uint64, size),
			recvSeq:   make([]map[tainthub.Key]uint64, size),
		},
	}
	for r := 0; r < size; r++ {
		m := world.Machine(r)
		snap, err := m.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("core: rank %d: %w", r, err)
		}
		ws.machines[r] = snap
		ws.bytes += snap.Bytes()

		rst := ch.armed[m]
		ws.resume.execCount[r] = rst.execCount
		ws.resume.sendSeq[r] = cloneSeqMap(rst.sendSeq)
		ws.resume.recvSeq[r] = cloneSeqMap(rst.recvSeq)
		// The pause rewound the helper's trigger execution on the target: the
		// re-executed instruction re-counts it.
		if r == site.Rank {
			ws.resume.execCount[r]--
		}
		// A pause that interrupted a blocked MPI_Send rewinds the syscall, but
		// its pre-syscall hook already advanced the flow's sequence number
		// (the hook runs before the send blocks). Undo it — replicating the
		// hook's own validity guard — so the re-executed send re-numbers the
		// flow identically to a from-scratch run.
		if cfg.Spec.Trace && snap.PausedIn() == isa.SysMPISend {
			count := int64(snap.GPR(isa.R2))
			dtype := isa.Datatype(snap.GPR(isa.R3))
			if count >= 0 && dtype.Valid() && count*dtype.Size() <= maxHookedMessageBytes {
				key := tainthub.Key{
					Src: r,
					Dst: int(int64(snap.GPR(isa.R4))),
					Tag: int(int64(snap.GPR(isa.R5))),
				}
				ws.resume.sendSeq[r][key]--
			}
		}
	}
	ws.mailboxes, ws.pendings = world.QueueSnapshot()
	for r := range ws.mailboxes {
		for _, msg := range ws.mailboxes[r] {
			ws.bytes += int64(len(msg.Data))
		}
		for _, msg := range ws.pendings[r] {
			ws.bytes += int64(len(msg.Data))
		}
	}
	// Keep only timeline points the restored counters have already passed:
	// a sample scheduled between a rewound syscall's first and second
	// retirement would otherwise appear twice.
	for _, p := range ch.collector.Timeline() {
		if p.Rank >= 0 && p.Rank < size &&
			p.Instrs <= ws.machines[p.Rank].Counters().Instructions {
			ws.samples = append(ws.samples, p)
		}
	}
	return ws, nil
}

func stateCount(st *armState) interface{} {
	if st == nil {
		return "unarmed"
	}
	return st.execCount
}

// RunForked executes one injected continuation from a world snapshot. The
// spec must trigger at the snapshot's fork site (same target rank, a
// deterministic condition with the same N); everything else — injector,
// bits, seed, tracing — varies freely across forks of one snapshot.
func RunForked(cfg RunConfig, ws *WorldSnapshot) (*RunResult, error) {
	if ws == nil {
		return nil, fmt.Errorf("core: nil world snapshot")
	}
	if cfg.Prog != ws.prog {
		return nil, fmt.Errorf("core: snapshot belongs to a different program")
	}
	size := cfg.WorldSize
	if size == 0 {
		size = 1
	}
	if size != ws.worldSize {
		return nil, fmt.Errorf("core: world size %d != snapshot world %d", size, ws.worldSize)
	}
	if cfg.Spec == nil {
		return nil, fmt.Errorf("core: forked run has no spec")
	}
	if cfg.Spec.TargetRank != ws.site.Rank {
		return nil, fmt.Errorf("core: spec targets rank %d, snapshot paused rank %d",
			cfg.Spec.TargetRank, ws.site.Rank)
	}
	if d, ok := cfg.Spec.Cond.(Deterministic); !ok || d.N != ws.site.N {
		return nil, fmt.Errorf("core: spec condition %v does not match fork site n=%d",
			cfg.Spec.Cond, ws.site.N)
	}
	spec := *cfg.Spec
	spec.resume = ws.resume
	cfg.Spec = &spec
	return execute(cfg, ws)
}
