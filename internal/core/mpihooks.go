package core

import (
	"fmt"

	"chaser/internal/decaf"
	"chaser/internal/isa"
	"chaser/internal/tainthub"
	"chaser/internal/tcg"
	"chaser/internal/trace"
	"chaser/internal/vm"
)

// Cross-rank taint coordination (Fig. 5): Chaser hooks the MPI message
// functions, extracts the message information from the guest's argument
// registers, and shares taint status through the TaintHub.
//
// Sender side (before MPI_Send executes): extract (buf, count, datatype,
// dest, tag); when the buffer is tainted, publish (ID, taint status) to the
// hub, where ID is (src, dest, tag) plus a per-flow sequence number.
//
// Receiver side (after MPI_Recv returns): extract (buf, count, datatype,
// source, tag), poll the hub; when a status exists, mark the received bytes
// tainted so propagation continues in this rank.

// maxHookedMessageBytes bounds the taint scan of MPI buffers: anything
// larger is a fault-corrupted count the runtime will reject, so scanning
// (or allocating masks for) it would only burn memory.
const maxHookedMessageBytes = 64 << 20

// HubPolicy selects how a run treats TaintHub failures (an unreachable or
// erroring hub after the client's own retries are exhausted).
type HubPolicy int

const (
	// HubDegrade (the default) drops the taint of the affected message and
	// keeps running: the guest's execution is unchanged, only propagation
	// visibility degrades. Every degradation increments
	// core_hub_degraded_total.
	HubDegrade HubPolicy = iota
	// HubFailRun fails the whole run with an error once it completes, so a
	// campaign (or its operator) can tell degraded tracing from sound
	// tracing.
	HubFailRun
)

// String returns the policy name.
func (p HubPolicy) String() string {
	switch p {
	case HubDegrade:
		return "degrade"
	case HubFailRun:
		return "fail"
	}
	return fmt.Sprintf("hubpolicy(%d)", int(p))
}

func (c *Chaser) state(m *vm.Machine) *armState {
	// armed is fully populated before guests start running; reads here are
	// concurrent but the map is no longer written.
	return c.armed[m]
}

func (c *Chaser) preSyscall(info decaf.ProcInfo, m *vm.Machine, sys isa.Sys) {
	if sys != isa.SysMPISend {
		return
	}
	st := c.state(m)
	if st == nil || !st.spec.Trace {
		return
	}
	buf := m.GPR(isa.R1)
	count := int64(m.GPR(isa.R2))
	dtype := isa.Datatype(m.GPR(isa.R3))
	dest := int(int64(m.GPR(isa.R4)))
	tag := int(int64(m.GPR(isa.R5)))
	if count < 0 || !dtype.Valid() || count*dtype.Size() > maxHookedMessageBytes {
		return // the runtime will reject this send
	}
	key := tainthub.Key{Src: m.Rank, Dst: dest, Tag: tag}
	seq := st.sendSeq[key]
	st.sendSeq[key]++

	n := uint64(count) * uint64(dtype.Size())
	if m.Shadow.TaintedBytes() == 0 || !m.Shadow.MemRangeTainted(buf, n) {
		// Not tainted: simply return without any hub traffic.
		return
	}
	masks := m.Shadow.MemRangeMasks(buf, n)
	if err := c.hub.Publish(c.hubReqID(), key, seq, masks); err != nil {
		// Hub unavailable: tracing degrades, execution continues. The
		// degradation is counted and retained for the HubFailRun policy.
		c.hubFailure("publish", err)
		return
	}
}

func (c *Chaser) postSyscall(info decaf.ProcInfo, m *vm.Machine, sys isa.Sys) {
	st := c.state(m)
	if st == nil || !st.spec.Trace {
		return
	}
	if sys == isa.SysMPISend {
		// A send that completed with tainted envelope metadata (count,
		// destination or tag computed from corrupted values) propagates the
		// fault's effect across ranks even when the payload is clean.
		sh := m.Shadow
		meta := sh.RegMask(tcg.GPR(isa.R2)) | sh.RegMask(tcg.GPR(isa.R4)) | sh.RegMask(tcg.GPR(isa.R5))
		if meta != 0 {
			c.collector.AddCrossRank(trace.CrossRankRecord{
				Src:  m.Rank,
				Dst:  int(int64(m.GPR(isa.R4))),
				Tag:  int(int64(m.GPR(isa.R5))),
				Meta: true,
			})
		}
		return
	}
	if sys != isa.SysMPIRecv {
		return
	}
	buf := m.GPR(isa.R1)
	count := int64(m.GPR(isa.R2))
	dtype := isa.Datatype(m.GPR(isa.R3))
	source := int(int64(m.GPR(isa.R4)))
	tag := int(int64(m.GPR(isa.R5)))
	if count < 0 || !dtype.Valid() || count*dtype.Size() > maxHookedMessageBytes {
		return
	}
	key := tainthub.Key{Src: source, Dst: m.Rank, Tag: tag}
	seq := st.recvSeq[key]
	st.recvSeq[key]++

	masks, found, err := c.hub.Poll(c.hubReqID(), key, seq)
	if err != nil {
		c.hubFailure("poll", err)
		return
	}
	if !found {
		return // clean message
	}
	m.Shadow.SetMemRangeMasks(buf, masks)
	tainted := 0
	for _, mk := range masks {
		if mk != 0 {
			tainted++
		}
	}
	c.collector.AddCrossRank(trace.CrossRankRecord{
		Src: source, Dst: m.Rank, Tag: tag, Seq: seq, TaintedBytes: tainted,
	})
}
