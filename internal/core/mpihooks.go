package core

import (
	"fmt"

	"chaser/internal/decaf"
	"chaser/internal/isa"
	"chaser/internal/tainthub"
	"chaser/internal/tcg"
	"chaser/internal/trace"
	"chaser/internal/vm"
)

// Cross-rank taint coordination (Fig. 5): Chaser hooks the MPI message
// functions, extracts the message information from the guest's argument
// registers, and shares taint status through the TaintHub.
//
// Sender side (before MPI_Send executes): extract (buf, count, datatype,
// dest, tag); when the buffer is tainted, publish (ID, taint status) to the
// hub, where ID is (src, dest, tag) plus a per-flow sequence number.
//
// Receiver side (after MPI_Recv returns): extract (buf, count, datatype,
// source, tag), poll the hub; when a status exists, mark the received bytes
// tainted so propagation continues in this rank.

// maxHookedMessageBytes bounds the taint scan of MPI buffers: anything
// larger is a fault-corrupted count the runtime will reject, so scanning
// (or allocating masks for) it would only burn memory.
const maxHookedMessageBytes = 64 << 20

// HubPolicy selects how a run treats TaintHub failures (an unreachable or
// erroring hub after the client's own retries are exhausted).
type HubPolicy int

const (
	// HubDegrade (the default) drops the taint of the affected message and
	// keeps running: the guest's execution is unchanged, only propagation
	// visibility degrades. Every degradation increments
	// core_hub_degraded_total.
	HubDegrade HubPolicy = iota
	// HubFailRun fails the whole run with an error once it completes, so a
	// campaign (or its operator) can tell degraded tracing from sound
	// tracing.
	HubFailRun
)

// String returns the policy name.
func (p HubPolicy) String() string {
	switch p {
	case HubDegrade:
		return "degrade"
	case HubFailRun:
		return "fail"
	}
	return fmt.Sprintf("hubpolicy(%d)", int(p))
}

func (c *Chaser) state(m *vm.Machine) *armState {
	// armed is fully populated before guests start running; reads here are
	// concurrent but the map is no longer written.
	return c.armed[m]
}

func (c *Chaser) preSyscall(info decaf.ProcInfo, m *vm.Machine, sys isa.Sys) {
	if sys != isa.SysMPISend {
		return
	}
	st := c.state(m)
	if st == nil || !st.spec.Trace {
		return
	}
	buf := m.GPR(isa.R1)
	count := int64(m.GPR(isa.R2))
	dtype := isa.Datatype(m.GPR(isa.R3))
	dest := int(int64(m.GPR(isa.R4)))
	tag := int(int64(m.GPR(isa.R5)))
	if count < 0 || !dtype.Valid() || count*dtype.Size() > maxHookedMessageBytes {
		return // the runtime will reject this send
	}
	key := tainthub.Key{Src: m.Rank, Dst: dest, Tag: tag}
	seq := st.sendSeq[key]
	st.sendSeq[key]++

	n := uint64(count) * uint64(dtype.Size())
	if m.Shadow.TaintedBytes() == 0 || !m.Shadow.MemRangeTainted(buf, n) {
		// Not tainted: simply return without any hub traffic.
		return
	}
	masks := m.Shadow.MemRangeMasks(buf, n)
	if err := c.hub.Publish(c.hubReqID(), key, seq, masks); err != nil {
		// Hub unavailable: tracing degrades, execution continues. The
		// degradation is counted and retained for the HubFailRun policy.
		c.hubFailure("publish", err)
		return
	}
	tainted := 0
	for _, mk := range masks {
		if mk != 0 {
			tainted++
		}
	}
	// The publish side of the provenance graph's cross-rank edge: the
	// matching Poll's CrossRankRecord shares (Src, Dst, Tag, Seq).
	c.collector.AddSend(trace.SendRecord{
		Src: m.Rank, Dst: dest, Tag: tag, Seq: seq,
		Buf: buf, Len: int(n), TaintedBytes: tainted,
		EIP: m.PC(), InstrNum: m.Counters().Instructions,
	})
}

func (c *Chaser) postSyscall(info decaf.ProcInfo, m *vm.Machine, sys isa.Sys) {
	st := c.state(m)
	if st == nil || !st.spec.Trace {
		return
	}
	if sys == isa.SysMPISend {
		// A send that completed with tainted envelope metadata (count,
		// destination or tag computed from corrupted values) propagates the
		// fault's effect across ranks even when the payload is clean.
		sh := m.Shadow
		meta := sh.RegMask(tcg.GPR(isa.R2)) | sh.RegMask(tcg.GPR(isa.R4)) | sh.RegMask(tcg.GPR(isa.R5))
		if meta != 0 {
			c.collector.AddCrossRank(trace.CrossRankRecord{
				Src:  m.Rank,
				Dst:  int(int64(m.GPR(isa.R4))),
				Tag:  int(int64(m.GPR(isa.R5))),
				Meta: true,
				EIP:  m.PC(), InstrNum: m.Counters().Instructions,
			})
		}
		return
	}
	if sys == isa.SysOutInt || sys == isa.SysOutFloat || sys == isa.SysOutBytes {
		c.outputTaint(m, sys)
		return
	}
	if sys != isa.SysMPIRecv {
		return
	}
	buf := m.GPR(isa.R1)
	count := int64(m.GPR(isa.R2))
	dtype := isa.Datatype(m.GPR(isa.R3))
	source := int(int64(m.GPR(isa.R4)))
	tag := int(int64(m.GPR(isa.R5)))
	if count < 0 || !dtype.Valid() || count*dtype.Size() > maxHookedMessageBytes {
		return
	}
	key := tainthub.Key{Src: source, Dst: m.Rank, Tag: tag}
	seq := st.recvSeq[key]
	st.recvSeq[key]++

	masks, found, err := c.hub.Poll(c.hubReqID(), key, seq)
	if err != nil {
		c.hubFailure("poll", err)
		return
	}
	if !found {
		return // clean message
	}
	m.Shadow.SetMemRangeMasks(buf, masks)
	tainted := 0
	for _, mk := range masks {
		if mk != 0 {
			tainted++
		}
	}
	c.collector.AddCrossRank(trace.CrossRankRecord{
		Src: source, Dst: m.Rank, Tag: tag, Seq: seq, TaintedBytes: tainted,
		EIP: m.PC(), InstrNum: m.Counters().Instructions,
		Buf: buf, Len: len(masks),
	})
}

// outputTaint records tainted bytes flowing into the guest's output file —
// the sink nodes of the provenance graph, where a propagated fault becomes
// observable corruption. Called after the output syscall appended its bytes,
// so the file offset is the current length minus the written count.
func (c *Chaser) outputTaint(m *vm.Machine, sys isa.Sys) {
	if !m.Shadow.Live() {
		return
	}
	var masks []uint8
	var buf uint64
	n := 8
	switch sys {
	case isa.SysOutInt:
		regMask := m.Shadow.RegMask(tcg.GPR(isa.R1))
		if regMask == 0 {
			return
		}
		masks = make([]uint8, 8)
		for i := range masks {
			masks[i] = uint8(regMask >> (8 * i))
		}
	case isa.SysOutFloat:
		regMask := m.Shadow.RegMask(tcg.FPR(isa.F1))
		if regMask == 0 {
			return
		}
		masks = make([]uint8, 8)
		for i := range masks {
			masks[i] = uint8(regMask >> (8 * i))
		}
	case isa.SysOutBytes:
		addr := m.GPR(isa.R1)
		cnt := m.GPR(isa.R2)
		if cnt == 0 || cnt > maxHookedMessageBytes || !m.Shadow.MemRangeTainted(addr, cnt) {
			return
		}
		masks = m.Shadow.MemRangeMasks(addr, cnt)
		buf = addr
		n = int(cnt)
	}
	offset := m.OutputLen() - n
	if offset < 0 {
		// The append was rejected (output file at its cap); there is no file
		// range to attribute the taint to.
		return
	}
	rec := trace.OutputRecord{
		Rank: m.Rank, Offset: offset, Len: n, Buf: buf, Masks: masks,
		EIP: m.PC(), InstrNum: m.Counters().Instructions,
	}
	c.collector.AddOutput(rec)
	c.events.Emit("output_tainted", -1, m.Rank, uint64(offset), uint64(rec.TaintedBytes()), "")
}
