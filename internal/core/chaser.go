package core

import (
	"fmt"
	"math/bits"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"chaser/internal/decaf"
	"chaser/internal/isa"
	"chaser/internal/obs"
	"chaser/internal/tainthub"
	"chaser/internal/tcg"
	"chaser/internal/trace"
	"chaser/internal/vm"
)

// Spec is a complete fault-injection command (the paper's fi_cmds_st): what
// application to inject into, which instructions, when, and how.
type Spec struct {
	// Target is the guest process name to inject into ("what application").
	Target string
	// Ops are the targeted instruction opcodes ("when to inject" is checked
	// only in front of these).
	Ops []isa.Op
	// TargetRank restricts injection to one MPI rank; -1 targets all ranks.
	TargetRank int
	// Cond decides when to inject (defaults to Deterministic{N: 1}).
	Cond Condition
	// Inj performs the corruption (defaults to OperandInjector{Bits: Bits}).
	Inj Injector
	// Bits is the number of bits the default injector flips.
	Bits int
	// MaxInjections bounds how many faults fire in one run (default 1; the
	// group model typically raises it).
	MaxInjections int
	// Seed makes runs reproducible; each rank derives its RNG from it.
	Seed int64
	// Trace enables fault-propagation tracing (taint tracking, the
	// propagation log, and TaintHub coordination).
	Trace bool

	// resume carries per-rank injector bookkeeping into a forked run
	// (fork-point multiplexing); set only by RunForked, never by callers.
	resume *resumeState
}

// Validate reports configuration errors a campaign would otherwise only
// hit at arm time.
func (s *Spec) Validate() error {
	if s.Target == "" {
		return fmt.Errorf("core: spec has no target application")
	}
	if len(s.Ops) == 0 {
		return fmt.Errorf("core: spec targets no instructions")
	}
	for _, op := range s.Ops {
		if !op.Valid() {
			return fmt.Errorf("core: spec targets invalid opcode %d", uint8(op))
		}
	}
	if s.Bits < 0 || s.Bits > 64 {
		return fmt.Errorf("core: bit count %d out of [0,64]", s.Bits)
	}
	if s.MaxInjections < 0 {
		return fmt.Errorf("core: negative MaxInjections")
	}
	if p, ok := s.Cond.(Probabilistic); ok && (p.P < 0 || p.P > 1) {
		return fmt.Errorf("core: probability %v out of [0,1]", p.P)
	}
	return nil
}

func (s *Spec) withDefaults() *Spec {
	out := *s
	if out.Cond == nil {
		out.Cond = Deterministic{N: 1}
	}
	if out.Inj == nil {
		out.Inj = OperandInjector{Bits: out.Bits}
	}
	if out.MaxInjections == 0 {
		out.MaxInjections = 1
	}
	return &out
}

func (s *Spec) targetsOp(op isa.Op) bool {
	for _, o := range s.Ops {
		if o == op {
			return true
		}
	}
	return false
}

// Chaser is the fault-injection plugin. Load it into a decaf.Platform, arm
// it with a Spec (programmatically via Arm or through the inject_fault
// terminal command), then create the target processes.
type Chaser struct {
	platform *decaf.Platform
	hub      tainthub.Hub

	// hubClient identifies this Chaser to the hub; hubReq mints one request
	// ID per logical Publish/Poll. Together they let the hub dedup transport
	// retries of destructive operations (exactly-once semantics).
	hubClient uint64
	hubReq    atomic.Uint64

	mu      sync.Mutex
	spec    *Spec
	records []InjectionRecord
	hubErr  error // first hub failure observed by the MPI hooks

	collector *trace.Collector
	events    *obs.Sink

	// Injection telemetry (nil without a registry; all uses are nil-safe).
	obsArmed    *obs.Counter
	obsFired    *obs.Counter
	obsBits     *obs.Counter
	obsHubFails *obs.Counter

	// armed maps machines to their per-rank injection state. It is written
	// only during process creation (before guests run) and read without
	// locking afterwards.
	armed map[*vm.Machine]*armState
}

type armState struct {
	ch        *Chaser
	m         *vm.Machine
	spec      *Spec
	rng       *rand.Rand
	execCount uint64
	injected  int
	detached  bool

	sendSeq map[tainthub.Key]uint64
	recvSeq map[tainthub.Key]uint64
}

var _ decaf.Plugin = (*Chaser)(nil)

// Options parameterize Chaser construction.
type Options struct {
	// Hub coordinates cross-rank message taint; nil creates a private
	// in-process hub.
	Hub tainthub.Hub
	// MaxTraceEvents caps the in-memory propagation log (0 = default).
	MaxTraceEvents int
	// Obs, when non-nil, receives injection telemetry (injectors armed,
	// faults fired, bits flipped).
	Obs *obs.Registry
	// Events, when non-nil, receives structured propagation events (faults
	// fired, taint births, hub publishes/polls). Nil disables them.
	Events *obs.Sink
}

// New creates an unarmed Chaser.
func New(opts Options) *Chaser {
	hub := opts.Hub
	if hub == nil {
		hub = tainthub.NewLocal()
	}
	// The wrapper turns every logical Publish/Poll into a structured event;
	// with a nil sink WithEvents returns the hub unchanged.
	hub = tainthub.WithEvents(hub, opts.Events)
	maxEv := opts.MaxTraceEvents
	if maxEv == 0 {
		maxEv = trace.DefaultMaxEvents
	}
	return &Chaser{
		hub:         hub,
		hubClient:   tainthub.NewClientID(),
		collector:   trace.NewCollectorCap(maxEv),
		events:      opts.Events,
		obsArmed:    opts.Obs.Counter("core_injectors_armed_total"),
		obsFired:    opts.Obs.Counter("core_faults_fired_total"),
		obsBits:     opts.Obs.Counter("core_bits_flipped_total"),
		obsHubFails: opts.Obs.Counter("core_hub_degraded_total"),
		armed:       make(map[*vm.Machine]*armState),
	}
}

// Init implements decaf.Plugin (plugin_init): it exports the inject_fault
// terminal command and registers the process-creation callback that arms
// target processes, plus the taint and MPI-syscall callbacks used for
// propagation tracing.
func (c *Chaser) Init(p *decaf.Platform) (*decaf.Interface, error) {
	c.platform = p
	p.RegisterProcCreateCB(c.creationCB)
	p.RegisterReadTaintCB(func(info decaf.ProcInfo, ev vm.MemTaintEvent) {
		c.collector.AddEvent(memEvent(info, ev, false))
	})
	p.RegisterWriteTaintCB(func(info decaf.ProcInfo, ev vm.MemTaintEvent) {
		c.collector.AddEvent(memEvent(info, ev, true))
	})
	p.RegisterPreSyscallCB(c.preSyscall)
	p.RegisterPostSyscallCB(c.postSyscall)
	return &decaf.Interface{
		Name: "chaser",
		Commands: []decaf.Command{
			{
				Name:    "inject_fault",
				Usage:   "inject_fault <app> <ops> <prob p|det n|group start:every> <bits> [trace] [rank=K]",
				Handler: c.injectFaultCmd,
			},
			{
				Name:    "chaser_status",
				Usage:   "chaser_status",
				Handler: c.statusCmd,
			},
		},
	}, nil
}

// statusCmd reports the armed spec, performed injections, propagation
// counters, and hub activity.
func (c *Chaser) statusCmd(_ []string) (string, error) {
	c.mu.Lock()
	spec := c.spec
	nRec := len(c.records)
	recs := append([]InjectionRecord(nil), c.records...)
	c.mu.Unlock()

	var sb strings.Builder
	if spec == nil {
		sb.WriteString("spec: (not armed)\n")
	} else {
		ops := make([]string, len(spec.Ops))
		for i, op := range spec.Ops {
			ops[i] = op.String()
		}
		fmt.Fprintf(&sb, "spec: target=%s ops=%s cond=%v bits=%d trace=%v rank=%d\n",
			spec.Target, strings.Join(ops, ","), spec.Cond, spec.Bits, spec.Trace, spec.TargetRank)
	}
	fmt.Fprintf(&sb, "injections: %d\n", nRec)
	for _, r := range recs {
		fmt.Fprintf(&sb, "  %s\n", r)
	}
	fmt.Fprintf(&sb, "propagation: %d tainted reads, %d tainted writes, %d cross-rank messages\n",
		c.collector.TotalReads(), c.collector.TotalWrites(), len(c.collector.CrossRank()))
	hs := c.hub.Stats()
	fmt.Fprintf(&sb, "tainthub: published=%d polls=%d hits=%d pending=%d\n",
		hs.Published, hs.Polls, hs.Hits, hs.Pending)
	return sb.String(), nil
}

// Cleanup implements decaf.Plugin.
func (c *Chaser) Cleanup() error { return nil }

func memEvent(info decaf.ProcInfo, ev vm.MemTaintEvent, write bool) trace.Event {
	return trace.Event{
		Rank:     info.Rank,
		Write:    write,
		EIP:      ev.EIP,
		VAddr:    ev.VAddr,
		PAddr:    ev.PAddr,
		Value:    ev.Value,
		Mask:     ev.Mask,
		InstrNum: ev.InstrNum,
		Size:     ev.Size,
		Region:   ev.Region,
	}
}

// Arm installs a spec. Processes created afterwards whose name matches
// spec.Target are instrumented.
func (c *Chaser) Arm(spec *Spec) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.spec = spec.withDefaults()
}

// Spec returns the armed spec, or nil.
func (c *Chaser) Spec() *Spec {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.spec
}

// Records returns the injections performed so far.
func (c *Chaser) Records() []InjectionRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]InjectionRecord(nil), c.records...)
}

// Trace returns the propagation-trace collector.
func (c *Chaser) Trace() *trace.Collector { return c.collector }

// Hub returns the TaintHub in use.
func (c *Chaser) Hub() tainthub.Hub { return c.hub }

// HubErr returns the first TaintHub failure observed by the MPI hooks, or
// nil. Under the default HubDegrade policy the failure only degrades
// tracing; under HubFailRun the session turns it into a run error.
func (c *Chaser) HubErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hubErr
}

// hubFailure records one degraded hub interaction: the taint of a message
// is dropped, the degradation is counted, and the first error is retained
// for the HubFailRun policy.
func (c *Chaser) hubFailure(op string, err error) {
	c.obsHubFails.Inc()
	c.mu.Lock()
	if c.hubErr == nil {
		c.hubErr = fmt.Errorf("%s: %w", op, err)
	}
	c.mu.Unlock()
}

// hubReqID mints the ReqID for one logical hub operation. The MPI hooks
// stamp it once per Publish/Poll; the TCP client re-sends it verbatim on
// every transport retry, which is what lets the hub dedup.
func (c *Chaser) hubReqID() tainthub.ReqID {
	return tainthub.ReqID{Client: c.hubClient, Seq: c.hubReq.Add(1)}
}

// creationCB is fi_creation_cb: called for every created process; arms the
// injector when the process is the designated target.
func (c *Chaser) creationCB(info decaf.ProcInfo) {
	c.mu.Lock()
	spec := c.spec
	c.mu.Unlock()
	if spec == nil {
		return
	}
	m := info.Machine
	traceOn := spec.Trace
	if traceOn {
		// Tracing must be on for every rank so incoming tainted messages
		// keep propagating (the "incoming errors behave like injected
		// errors and manifest locally again" requirement).
		m.TaintEnabled = true
		rank := info.Rank
		m.Hooks.Sample = func(instrs uint64, taintedBytes int64) {
			c.collector.AddSample(trace.TimelinePoint{
				Rank: rank, Instrs: instrs, TaintedBytes: taintedBytes,
			})
		}
		if c.events != nil {
			m.Shadow.OnFirstTaint(func() {
				c.events.Emit("taint_seed", -1, rank, m.PC(), 0, "")
			})
		}
	}
	st := &armState{
		ch:      c,
		m:       m,
		spec:    spec,
		rng:     rand.New(rand.NewSource(spec.Seed*1000003 + int64(info.Rank))),
		sendSeq: make(map[tainthub.Key]uint64),
		recvSeq: make(map[tainthub.Key]uint64),
	}
	if rs := spec.resume; rs != nil && info.Rank < len(rs.execCount) {
		// A forked run resumes mid-execution: restore the injector's dynamic
		// counters so the trigger fires at the same global execution count a
		// from-scratch run would see. The RNG needs no restoration — a
		// deterministic condition draws nothing before the trigger, so the
		// fresh stream above is positioned exactly as in a full run. Maps are
		// cloned: concurrent forks share one snapshot.
		st.execCount = rs.execCount[info.Rank]
		st.sendSeq = cloneSeqMap(rs.sendSeq[info.Rank])
		st.recvSeq = cloneSeqMap(rs.recvSeq[info.Rank])
	}
	c.mu.Lock()
	c.armed[m] = st
	c.mu.Unlock()

	if m.Name != spec.Target {
		return
	}
	if spec.TargetRank >= 0 && info.Rank != spec.TargetRank {
		return
	}

	// Register the fault_injector helper and instrument only the targeted
	// instructions (just-in-time fault injection, Fig. 3).
	c.obsArmed.Inc()
	helperID := m.RegisterHelper(st.faultInjector)
	m.Trans.AddHook(func(ins isa.Instr, pc uint64) []tcg.Op {
		if st.detached || !spec.targetsOp(ins.Op) {
			return nil
		}
		return []tcg.Op{{Kind: tcg.KHelper, Helper: helperID}}
	})
	// Flush the code translation cache to trigger the next round of binary
	// code translation with the injector in place.
	m.Trans.Flush()
}

// faultInjector runs before every targeted instruction: it updates the
// executed counter, checks the injection condition, and performs the
// injection when the condition is met.
func (st *armState) faultInjector(m *vm.Machine, op *tcg.Op) {
	if st.detached {
		return
	}
	st.execCount++
	if !st.spec.Cond.ShouldInject(st.execCount, st.rng) {
		return
	}
	ins, ok := m.Prog.InstrAt(op.GuestPC)
	if !ok {
		return
	}
	ctx := &Context{
		Machine:   m,
		Op:        op,
		Instr:     ins,
		ExecCount: st.execCount,
		Rng:       st.rng,
		Trace:     st.spec.Trace,
	}
	rec, err := st.spec.Inj.Inject(ctx)
	if err != nil {
		// The injection itself failed (e.g. corrupting unmapped memory);
		// record nothing and keep running.
		return
	}
	st.ch.mu.Lock()
	st.ch.records = append(st.ch.records, rec)
	st.ch.mu.Unlock()
	st.ch.events.Emit("inject", -1, rec.Rank, rec.PC, rec.Mask,
		rec.GuestOpS+" "+rec.Target)
	st.ch.obsFired.Inc()
	st.ch.obsBits.Add(uint64(bits.OnesCount64(rec.Mask)))
	st.injected++
	if st.injected >= st.spec.MaxInjections {
		// fi_clean_cb: stop screening and detach the injector.
		st.detached = true
	}
}

// injectFaultCmd parses the inject_fault terminal command.
func (c *Chaser) injectFaultCmd(args []string) (string, error) {
	if len(args) < 4 {
		return "", fmt.Errorf("usage: inject_fault <app> <ops> <prob p|det n|group s:e> <bits> [trace] [rank=K]")
	}
	spec := &Spec{Target: args[0], TargetRank: -1}
	for _, name := range strings.Split(args[1], ",") {
		op := isa.OpByName(name)
		if op == isa.OpInvalid {
			return "", fmt.Errorf("inject_fault: unknown opcode %q", name)
		}
		spec.Ops = append(spec.Ops, op)
	}
	rest := args[2:]
	switch rest[0] {
	case "prob":
		p, err := strconv.ParseFloat(rest[1], 64)
		if err != nil || p < 0 || p > 1 {
			return "", fmt.Errorf("inject_fault: bad probability %q", rest[1])
		}
		spec.Cond = Probabilistic{P: p}
		rest = rest[2:]
	case "det":
		n, err := strconv.ParseUint(rest[1], 10, 64)
		if err != nil || n == 0 {
			return "", fmt.Errorf("inject_fault: bad execution count %q", rest[1])
		}
		spec.Cond = Deterministic{N: n}
		rest = rest[2:]
	case "group":
		se := strings.SplitN(rest[1], ":", 2)
		if len(se) != 2 {
			return "", fmt.Errorf("inject_fault: group wants start:every")
		}
		start, err1 := strconv.ParseUint(se[0], 10, 64)
		every, err2 := strconv.ParseUint(se[1], 10, 64)
		if err1 != nil || err2 != nil {
			return "", fmt.Errorf("inject_fault: bad group %q", rest[1])
		}
		spec.Cond = Group{Start: start, Every: every}
		spec.MaxInjections = 1 << 30
		rest = rest[2:]
	default:
		return "", fmt.Errorf("inject_fault: unknown model %q", rest[0])
	}
	if len(rest) < 1 {
		return "", fmt.Errorf("inject_fault: missing bit count")
	}
	bits, err := strconv.Atoi(rest[0])
	if err != nil || bits < 1 || bits > 64 {
		return "", fmt.Errorf("inject_fault: bad bit count %q", rest[0])
	}
	spec.Bits = bits
	for _, extra := range rest[1:] {
		switch {
		case extra == "trace":
			spec.Trace = true
		case strings.HasPrefix(extra, "rank="):
			r, err := strconv.Atoi(strings.TrimPrefix(extra, "rank="))
			if err != nil {
				return "", fmt.Errorf("inject_fault: bad rank %q", extra)
			}
			spec.TargetRank = r
		default:
			return "", fmt.Errorf("inject_fault: unknown option %q", extra)
		}
	}
	c.Arm(spec)
	return fmt.Sprintf("armed: target=%s ops=%v cond=%v bits=%d trace=%v rank=%d",
		spec.Target, args[1], spec.Cond, spec.Bits, spec.Trace, spec.TargetRank), nil
}
