// Package core implements Chaser itself: a fine-grained, accountable,
// flexible, and efficient soft-error fault injection and propagation-tracing
// framework, built as a plugin on the decaf platform.
//
//   - Fine-grained: faults target a designated application, instruction
//     opcode, and injection condition (execution count, probability, group).
//   - Accountable: every injection is recorded, and propagation is traced
//     through bitwise taint — locally via tainted-memory callbacks and across
//     MPI ranks via the TaintHub.
//   - Flexible: fault models and injectors are small interfaces; the three
//     models of Table I ship built in, and new injectors take ~100 lines
//     (see internal/injectors and Table II's harness).
//   - Efficient: only targeted instructions are instrumented, by inserting a
//     helper call into their translated micro-ops at translation time
//     (Fig. 3); untargeted code runs at full speed.
package core

import (
	"fmt"
	"math/rand"
)

// Condition decides when a fault fires (the paper's fi_trigger_st). It is
// consulted immediately before every execution of a targeted instruction
// with the 1-based execution count n.
type Condition interface {
	ShouldInject(n uint64, rng *rand.Rand) bool
}

// Probabilistic is Table I's probabilistic fault model: the injection
// location is drawn from a predefined probability per execution.
type Probabilistic struct {
	// P is the per-execution injection probability in [0, 1].
	P float64
}

// ShouldInject implements Condition.
func (p Probabilistic) ShouldInject(_ uint64, rng *rand.Rand) bool {
	return rng.Float64() < p.P
}

// String describes the model.
func (p Probabilistic) String() string { return fmt.Sprintf("probabilistic(p=%g)", p.P) }

// Deterministic is Table I's deterministic fault model: the injection
// location is the exact predefined execution count.
type Deterministic struct {
	// N is the execution count at which to inject (1-based).
	N uint64
}

// ShouldInject implements Condition.
func (d Deterministic) ShouldInject(n uint64, _ *rand.Rand) bool {
	return n == d.N
}

// String describes the model.
func (d Deterministic) String() string { return fmt.Sprintf("deterministic(n=%d)", d.N) }

// Group is Table I's group fault model: multiple faults are injected, one
// every Every executions starting at Start.
type Group struct {
	Start uint64 // first execution to inject at (1-based)
	Every uint64 // injection period; 0 means every execution
}

// ShouldInject implements Condition.
func (g Group) ShouldInject(n uint64, _ *rand.Rand) bool {
	if n < g.Start {
		return false
	}
	if g.Every <= 1 {
		return true
	}
	return (n-g.Start)%g.Every == 0
}

// String describes the model.
func (g Group) String() string { return fmt.Sprintf("group(start=%d,every=%d)", g.Start, g.Every) }
