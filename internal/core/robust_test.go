package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"chaser/internal/isa"
	"chaser/internal/lang"
	"chaser/internal/obs"
	"chaser/internal/tainthub"
	"chaser/internal/vm"
)

// spinProg runs a very long compute loop: wall-clock fodder for the
// watchdog.
func spinProg(t *testing.T) *isa.Program {
	t.Helper()
	I, V, B := lang.I, lang.V, lang.Block
	prog, err := lang.Compile(&lang.Program{Name: "spin", Funcs: []*lang.Func{{
		Name: "main",
		Body: B(
			lang.Let("s", I(0)),
			lang.For{Var: "i", From: I(0), To: I(1 << 40), Body: B(
				lang.Set("s", lang.Add(V("s"), I(1))),
			)},
		),
	}}})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestRunWallClockTimeout: the watchdog must kill a run that burns real
// time, yielding ReasonTimeout — distinct from the instruction-budget
// ReasonBudget a spinning hang produces.
func TestRunWallClockTimeout(t *testing.T) {
	res, err := Run(RunConfig{
		Prog:            spinProg(t),
		WorldSize:       1,
		MaxInstructions: 1 << 40, // the budget must NOT fire first
		Timeout:         2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	term := res.Terms[0]
	if term.Reason != vm.ReasonTimeout {
		t.Fatalf("reason = %v, want timeout (%v)", term.Reason, term)
	}
	if !term.Abnormal() {
		t.Error("timeout termination not abnormal")
	}
	if !strings.Contains(term.String(), "timeout") {
		t.Errorf("termination string %q lacks 'timeout'", term.String())
	}
}

// errHub fails every operation, simulating a head-node hub that is down
// for longer than the client's whole retry budget.
type errHub struct{}

func (errHub) Publish(tainthub.ReqID, tainthub.Key, uint64, []uint8) error {
	return fmt.Errorf("hub down")
}
func (errHub) Poll(tainthub.ReqID, tainthub.Key, uint64) ([]uint8, bool, error) {
	return nil, false, fmt.Errorf("hub down")
}
func (errHub) Stats() tainthub.Stats { return tainthub.Stats{} }

// tracedRecvConfig builds a run whose target rank performs an MPI recv
// with tracing on, forcing a hub Poll from inside the syscall hook.
func tracedRecvConfig(t *testing.T, hub tainthub.Hub, policy HubPolicy, reg *obs.Registry) RunConfig {
	t.Helper()
	return RunConfig{
		Prog:      crossProg(t),
		WorldSize: 2,
		Hub:       hub,
		HubPolicy: policy,
		Obs:       reg,
		Spec: &Spec{
			Target: "cross_app", Ops: []isa.Op{isa.OpFMul},
			TargetRank: 1,
			Cond:       Deterministic{N: 1},
			Bits:       1, Trace: true, Seed: 7,
		},
	}
}

// TestHubPolicyDegrade: with the default policy, a dead hub degrades
// tracing (counted) but the run itself succeeds.
func TestHubPolicyDegrade(t *testing.T) {
	reg := obs.NewRegistry()
	res, err := Run(tracedRecvConfig(t, errHub{}, HubDegrade, reg))
	if err != nil {
		t.Fatalf("degrade policy failed the run: %v", err)
	}
	for r, term := range res.Terms {
		if term.Abnormal() {
			t.Errorf("rank %d terminated abnormally under degrade: %v", r, term)
		}
	}
	if got := reg.Counter("core_hub_degraded_total").Value(); got == 0 {
		t.Error("degradation not counted")
	}
}

// TestHubPolicyFailRun: the strict policy must surface the degradation as
// a run error so campaigns can tell unsound tracing from sound tracing.
func TestHubPolicyFailRun(t *testing.T) {
	_, err := Run(tracedRecvConfig(t, errHub{}, HubFailRun, obs.NewRegistry()))
	if err == nil {
		t.Fatal("HubFailRun swallowed a hub failure")
	}
	if !strings.Contains(err.Error(), "taint hub failed") {
		t.Errorf("error %q does not name the hub failure", err)
	}
}

// TestHubPolicyStrings pins the flag-facing names.
func TestHubPolicyStrings(t *testing.T) {
	if HubDegrade.String() != "degrade" || HubFailRun.String() != "fail" {
		t.Errorf("policy names = %q/%q", HubDegrade, HubFailRun)
	}
	if HubPolicy(9).String() == "" {
		t.Error("unknown policy empty")
	}
}
