package core

import (
	"bytes"
	"testing"

	"chaser/internal/isa"
	"chaser/internal/obs"
)

// TestBlamePathCrossRankSDC is the end-to-end accountability check: a fault
// injected into rank 0's fadd propagates through the TaintHub into rank 1 and
// corrupts its output file; the provenance DAG's blame-path query from a
// corrupted output byte must walk back — across the stitched cross-rank
// edge — to the recorded injection site.
func TestBlamePathCrossRankSDC(t *testing.T) {
	prog := crossProg(t)
	golden, err := Golden(prog, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunConfig{
		Prog:      prog,
		WorldSize: 2,
		Spec: &Spec{
			Target: "cross_app", Ops: []isa.Op{isa.OpFAdd},
			TargetRank: 0,
			Cond:       Deterministic{N: 4},
			Bits:       1, Trace: true, Seed: 11,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Injected() {
		t.Fatal("no injection")
	}
	// Rank 1's output must differ from the golden run (SDC) — find the first
	// corrupted byte.
	if bytes.Equal(res.Outputs[1], golden.Outputs[1]) {
		t.Fatal("rank 1 output matches golden; no SDC to blame")
	}
	corrupt := -1
	for i := range res.Outputs[1] {
		if i >= len(golden.Outputs[1]) || res.Outputs[1][i] != golden.Outputs[1][i] {
			corrupt = i
			break
		}
	}
	if corrupt < 0 {
		t.Fatal("no corrupted byte located")
	}

	g := res.Provenance()
	if g.CrossRankEdges == 0 {
		t.Fatal("provenance graph has no cross-rank edge")
	}
	if g.Truncated {
		t.Error("provenance graph truncated on a small run")
	}
	path, ok := g.BlamePath(1, corrupt)
	if !ok {
		t.Fatalf("blame path from rank 1 output byte %d did not reach an injection; path = %+v",
			corrupt, path)
	}
	root := path[0]
	site := res.Records[0]
	if root.Rank != site.Rank || root.EIP != site.PC {
		t.Errorf("blame root = rank %d eip %#x, want the recorded injection rank %d pc %#x",
			root.Rank, root.EIP, site.Rank, site.PC)
	}
	// The path must traverse the message boundary.
	crossed := false
	for _, e := range g.Edges {
		if e.Kind != "message" {
			continue
		}
		for i := 0; i+1 < len(path); i++ {
			if path[i].ID == e.From && path[i+1].ID == e.To {
				crossed = true
			}
		}
	}
	if !crossed {
		t.Errorf("blame path does not use a cross-rank message edge: %+v", path)
	}
	// Both exports render the graph.
	var dot, js bytes.Buffer
	if err := g.WriteDOT(&dot); err != nil || dot.Len() == 0 {
		t.Errorf("DOT export failed: %v", err)
	}
	if err := g.WriteJSON(&js); err != nil || js.Len() == 0 {
		t.Errorf("JSON export failed: %v", err)
	}
}

// TestRunEmitsLifecycleEvents checks the event-sink wiring across the stack:
// one traced SDC run must surface the injection, the taint birth, the hub
// publish/poll pair, the tainted output write, and every rank termination.
func TestRunEmitsLifecycleEvents(t *testing.T) {
	sink := obs.NewSink(1024)
	_, err := Run(RunConfig{
		Prog:      crossProg(t),
		WorldSize: 2,
		Events:    sink,
		Spec: &Spec{
			Target: "cross_app", Ops: []isa.Op{isa.OpFAdd},
			TargetRank: 0,
			Cond:       Deterministic{N: 4},
			Bits:       1, Trace: true, Seed: 11,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	evs, _ := sink.Since(0, 0)
	byType := map[string]int{}
	for _, ev := range evs {
		byType[ev.Type]++
	}
	for _, want := range []string{
		"inject", "taint_seed", "hub_publish", "hub_poll_hit", "output_tainted", "rank_term",
	} {
		if byType[want] == 0 {
			t.Errorf("no %q event emitted; got %v", want, byType)
		}
	}
	if byType["rank_term"] != 2 {
		t.Errorf("rank_term events = %d, want one per rank", byType["rank_term"])
	}
	if sink.Dropped() != 0 {
		t.Errorf("sink dropped %d events on a small run", sink.Dropped())
	}
}

// TestSitesMemTarget checks the InjectionRecord → InjectionSite conversion
// parses memory targets so the graph builder can seed byte provenance.
func TestSitesMemTarget(t *testing.T) {
	sites := Sites([]InjectionRecord{
		{Rank: 1, PC: 0x400, Target: "mem 0x20001000", Mask: 4},
		{Rank: 0, PC: 0x404, Target: "reg r3", Mask: 1},
	})
	if sites[0].MemAddr != 0x20001000 {
		t.Errorf("mem target addr = %#x, want 0x20001000", sites[0].MemAddr)
	}
	if sites[1].MemAddr != 0 {
		t.Errorf("reg target got mem addr %#x", sites[1].MemAddr)
	}
}
