package core

import (
	"errors"
	"fmt"
	"math/rand"

	"chaser/internal/isa"
	"chaser/internal/tcg"
	"chaser/internal/vm"
)

// Context is handed to an Injector when its condition fires: the machine,
// the targeted instruction (both its micro-op and decoded guest form), the
// execution count that triggered, and a deterministic per-rank RNG.
type Context struct {
	Machine   *vm.Machine
	Op        *tcg.Op
	Instr     isa.Instr
	ExecCount uint64
	Rng       *rand.Rand
	// Trace marks whether propagation tracing is active; corruption helpers
	// seed taint only when it is.
	Trace bool
}

// InjectionRecord documents one performed injection (accountability).
type InjectionRecord struct {
	Rank      int    `json:"rank"`
	PC        uint64 `json:"pc"`
	GuestOp   isa.Op `json:"-"`
	GuestOpS  string `json:"op"`
	ExecCount uint64 `json:"exec_count"`
	InstrNum  uint64 `json:"instr_num"`
	Target    string `json:"target"` // "reg r3", "reg f1", "mem 0x..."
	Mask      uint64 `json:"mask"`
	Before    uint64 `json:"before"`
	After     uint64 `json:"after"`
}

// String renders the record for logs.
func (r InjectionRecord) String() string {
	return fmt.Sprintf("rank %d: %s @ %#x exec#%d %s mask=%#x %#x -> %#x",
		r.Rank, r.GuestOpS, r.PC, r.ExecCount, r.Target, r.Mask, r.Before, r.After)
}

// ErrDeclined lets an Injector turn down an injection opportunity: the
// attempt is not recorded and does not count against Spec.MaxInjections.
// Custom injectors use it to wait for a specific dynamic context (a
// particular effective address, register value, etc.) beyond what the
// Condition can express.
var ErrDeclined = errors.New("core: injection declined")

// Injector performs the actual corruption (the "how to inject" interface).
// Implementations use CorruptRegister / CorruptMemory or manipulate the
// machine directly, and return a record of what they did. Returning an
// error (conventionally ErrDeclined) skips the opportunity.
type Injector interface {
	Inject(ctx *Context) (InjectionRecord, error)
}

// RandomBitMask returns a mask with exactly `bits` distinct random bits set
// (bits is clamped to [1, 64]).
func RandomBitMask(bits int, rng *rand.Rand) uint64 {
	if bits < 1 {
		bits = 1
	}
	if bits > 64 {
		bits = 64
	}
	var mask uint64
	for count := 0; count < bits; {
		b := uint(rng.Intn(64))
		if mask&(1<<b) == 0 {
			mask |= 1 << b
			count++
		}
	}
	return mask
}

// CorruptRegister XOR-flips mask bits in a micro-register and, when tracing,
// marks the flipped bits tainted. It returns the before/after values.
// This is the exported CORRUPT_REGISTER capability.
func CorruptRegister(m *vm.Machine, reg tcg.MReg, mask uint64, trace bool) (before, after uint64) {
	before = m.Reg(reg)
	after = before ^ mask
	m.SetReg(reg, after)
	if trace {
		m.Shadow.SetRegMask(reg, m.Shadow.RegMask(reg)|mask)
	}
	return before, after
}

// CorruptMemory XOR-flips mask bits in the 64-bit word at addr and, when
// tracing, marks the flipped bits tainted. This is the exported
// CORRUPT_MEMORY capability. It fails when addr is unmapped.
func CorruptMemory(m *vm.Machine, addr uint64, mask uint64, trace bool) (before, after uint64, err error) {
	before, err = m.Mem.Read64(addr)
	if err != nil {
		return 0, 0, fmt.Errorf("core: corrupt memory: %w", err)
	}
	after = before ^ mask
	if err := m.Mem.Write64(addr, after); err != nil {
		return 0, 0, fmt.Errorf("core: corrupt memory: %w", err)
	}
	if trace {
		m.Shadow.SetMemMask64(addr, m.Shadow.MemMask64(addr)|mask)
	}
	return before, after, nil
}

// OperandRegs returns the micro-registers holding the source operands of a
// guest instruction — the candidates operand-level injectors corrupt.
func OperandRegs(ins isa.Instr) []tcg.MReg { return sourceRegs(ins) }

// sourceRegs returns the micro-registers holding the source operands of a
// guest instruction — the candidates the default injector corrupts.
func sourceRegs(ins isa.Instr) []tcg.MReg {
	g, f := tcg.GPR, tcg.FPR
	switch ins.Op {
	case isa.OpMov, isa.OpNot, isa.OpAddI, isa.OpMulI:
		return []tcg.MReg{g(ins.Rs1)}
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpMod,
		isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr:
		return []tcg.MReg{g(ins.Rs1), g(ins.Rs2)}
	case isa.OpFMov, isa.OpFNeg:
		return []tcg.MReg{f(ins.Rs1)}
	case isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv:
		return []tcg.MReg{f(ins.Rs1), f(ins.Rs2)}
	case isa.OpCvtIF:
		return []tcg.MReg{g(ins.Rs1)}
	case isa.OpCvtFI:
		return []tcg.MReg{f(ins.Rs1)}
	case isa.OpLd, isa.OpLdB, isa.OpFLd:
		return []tcg.MReg{g(ins.Rs1)} // base address register
	case isa.OpSt, isa.OpStB:
		return []tcg.MReg{g(ins.Rs1), g(ins.Rs2)} // base and value
	case isa.OpFSt:
		return []tcg.MReg{g(ins.Rs1), f(ins.Rs2)}
	case isa.OpCmp:
		return []tcg.MReg{g(ins.Rs1), g(ins.Rs2)}
	case isa.OpCmpI:
		return []tcg.MReg{g(ins.Rs1)}
	case isa.OpFCmp:
		return []tcg.MReg{f(ins.Rs1), f(ins.Rs2)}
	case isa.OpPush:
		return []tcg.MReg{g(ins.Rs1)}
	case isa.OpFPush:
		return []tcg.MReg{f(ins.Rs1)}
	}
	return nil
}

// OperandInjector is the default fault injector: it flips Bits random bits
// in one randomly chosen source operand of the targeted instruction,
// immediately before the instruction executes. For loads, the memory word
// being read is itself a source operand (like the memory operand of an x86
// mov) and is corrupted with the same probability as the address register.
type OperandInjector struct {
	// Bits is the number of bits to flip per injection (default 1).
	Bits int
}

var _ Injector = OperandInjector{}

// Inject implements Injector.
func (o OperandInjector) Inject(ctx *Context) (InjectionRecord, error) {
	bits := o.Bits
	if bits == 0 {
		bits = 1
	}
	mask := RandomBitMask(bits, ctx.Rng)
	rec := InjectionRecord{
		Rank:      ctx.Machine.Rank,
		PC:        ctx.Op.GuestPC,
		GuestOp:   ctx.Instr.Op,
		GuestOpS:  ctx.Instr.Op.String(),
		ExecCount: ctx.ExecCount,
		InstrNum:  ctx.Machine.Counters().Instructions,
		Mask:      mask,
	}

	// Loads read a memory operand: corrupt the in-memory source word half
	// the time, the address register otherwise.
	ins := ctx.Instr
	isLoad := ins.Op == isa.OpLd || ins.Op == isa.OpFLd || ins.Op == isa.OpLdB
	if isLoad && ctx.Rng.Intn(2) == 0 {
		addr := ctx.Machine.GPR(ins.Rs1) + uint64(ins.Imm)
		if before, after, err := CorruptMemory(ctx.Machine, addr, mask, ctx.Trace); err == nil {
			rec.Target = fmt.Sprintf("mem %#x", addr)
			rec.Before, rec.After = before, after
			return rec, nil
		}
		// The effective address is unmapped (e.g. the base register was
		// wild already); fall through to register corruption.
	}

	srcs := sourceRegs(ins)
	var reg tcg.MReg
	if len(srcs) > 0 {
		reg = srcs[ctx.Rng.Intn(len(srcs))]
	} else {
		// Instructions without register sources (movi, branches): corrupt a
		// random general-purpose register, modelling a datapath upset.
		reg = tcg.GPR(isa.Reg(ctx.Rng.Intn(isa.NumRegs)))
	}
	before, after := CorruptRegister(ctx.Machine, reg, mask, ctx.Trace)
	rec.Target = "reg " + reg.String()
	rec.Before, rec.After = before, after
	return rec, nil
}

// IdentityInjector is the overhead-measurement injector of Section IV-D: it
// "injects the original values" — i.e. performs every step of a real
// injection, including taint seeding when tracing, but flips no bits, so
// application behaviour is unchanged and performance comparisons are fair.
type IdentityInjector struct {
	// Bits sizes the taint mask that a real injection would have used.
	Bits int
}

var _ Injector = IdentityInjector{}

// Inject implements Injector.
func (o IdentityInjector) Inject(ctx *Context) (InjectionRecord, error) {
	bits := o.Bits
	if bits == 0 {
		bits = 1
	}
	srcs := sourceRegs(ctx.Instr)
	var reg tcg.MReg
	if len(srcs) > 0 {
		reg = srcs[ctx.Rng.Intn(len(srcs))]
	} else {
		reg = tcg.GPR(isa.Reg(ctx.Rng.Intn(isa.NumRegs)))
	}
	mask := RandomBitMask(bits, ctx.Rng)
	before := ctx.Machine.Reg(reg)
	ctx.Machine.SetReg(reg, before) // write the original value back
	if ctx.Trace {
		sh := ctx.Machine.Shadow
		sh.SetRegMask(reg, sh.RegMask(reg)|mask)
	}
	return InjectionRecord{
		Rank:      ctx.Machine.Rank,
		PC:        ctx.Op.GuestPC,
		GuestOp:   ctx.Instr.Op,
		GuestOpS:  ctx.Instr.Op.String(),
		ExecCount: ctx.ExecCount,
		InstrNum:  ctx.Machine.Counters().Instructions,
		Target:    "reg " + reg.String() + " (identity)",
		Mask:      mask,
		Before:    before,
		After:     before,
	}, nil
}
