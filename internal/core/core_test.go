package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"chaser/internal/asm"
	"chaser/internal/decaf"
	"chaser/internal/isa"
	"chaser/internal/lang"
	"chaser/internal/tcg"
	"chaser/internal/vm"
)

func TestFaultModels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))

	det := Deterministic{N: 5}
	for n := uint64(1); n <= 10; n++ {
		if got := det.ShouldInject(n, rng); got != (n == 5) {
			t.Errorf("det(%d) = %v", n, got)
		}
	}

	grp := Group{Start: 4, Every: 3}
	wantFire := map[uint64]bool{4: true, 7: true, 10: true}
	for n := uint64(1); n <= 11; n++ {
		if got := grp.ShouldInject(n, rng); got != wantFire[n] {
			t.Errorf("group(%d) = %v", n, got)
		}
	}
	dense := Group{Start: 2, Every: 0}
	if dense.ShouldInject(1, rng) || !dense.ShouldInject(2, rng) || !dense.ShouldInject(3, rng) {
		t.Error("group with every=0 should fire on every execution from start")
	}

	// Probabilistic: empirical frequency near p.
	p := Probabilistic{P: 0.3}
	hits := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if p.ShouldInject(uint64(i), rng) {
			hits++
		}
	}
	freq := float64(hits) / trials
	if freq < 0.25 || freq > 0.35 {
		t.Errorf("probabilistic frequency = %v, want ~0.3", freq)
	}

	if !strings.Contains(det.String(), "5") || !strings.Contains(grp.String(), "4") ||
		!strings.Contains(p.String(), "0.3") {
		t.Error("model String() forms wrong")
	}
}

func TestRandomBitMask(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, bits := range []int{1, 2, 8, 64} {
		mask := RandomBitMask(bits, rng)
		if got := popcount(mask); got != bits {
			t.Errorf("RandomBitMask(%d) has %d bits", bits, got)
		}
	}
	if popcount(RandomBitMask(0, rng)) != 1 {
		t.Error("bits<1 not clamped to 1")
	}
	if popcount(RandomBitMask(99, rng)) != 64 {
		t.Error("bits>64 not clamped to 64")
	}
}

func popcount(v uint64) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Property: RandomBitMask always returns the requested popcount.
func TestRandomBitMaskQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(bits uint8) bool {
		b := int(bits%64) + 1
		return popcount(RandomBitMask(b, rng)) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCorruptRegisterAndMemory(t *testing.T) {
	prog, err := asm.Assemble("t", "main:\n movi r1, 64\n syscall alloc\n hlt\n")
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(prog, vm.Config{})
	m.TaintEnabled = true
	if term := m.Run(); term.Reason != vm.ReasonExited {
		t.Fatal(term)
	}

	m.SetGPR(isa.R3, 0xff00)
	before, after := CorruptRegister(m, tcg.GPR(isa.R3), 0x0ff0, true)
	if before != 0xff00 || after != 0xf0f0 {
		t.Errorf("CorruptRegister = %#x -> %#x", before, after)
	}
	if m.GPR(isa.R3) != 0xf0f0 {
		t.Error("register not updated")
	}
	if m.Shadow.RegMask(tcg.GPR(isa.R3)) != 0x0ff0 {
		t.Error("register taint not seeded")
	}

	addr := isa.HeapBase
	if err := m.Mem.Write64(addr, 0x1111); err != nil {
		t.Fatal(err)
	}
	b, a, err := CorruptMemory(m, addr, 0x00ff, true)
	if err != nil || b != 0x1111 || a != 0x11ee {
		t.Errorf("CorruptMemory = %#x -> %#x, %v", b, a, err)
	}
	if got, _ := m.Mem.Read64(addr); got != 0x11ee {
		t.Error("memory not updated")
	}
	if m.Shadow.MemMask64(addr) != 0x00ff {
		t.Error("memory taint not seeded")
	}
	if _, _, err := CorruptMemory(m, 0x50, 1, false); err == nil {
		t.Error("corrupting unmapped memory succeeded")
	}
}

// fpProg executes fadd exactly 4 times with observable results.
func fpProg(t *testing.T) *isa.Program {
	t.Helper()
	prog, err := lang.Compile(&lang.Program{Name: "fp_app", Funcs: []*lang.Func{{
		Name: "main",
		Body: lang.Block(
			lang.Let("s", lang.F(0)),
			lang.For{Var: "i", From: lang.I(0), To: lang.I(4), Body: lang.Block(
				lang.Set("s", lang.Add(V_("s"), lang.F(1.5))),
			)},
			lang.OutFloat{E: V_("s")},
		),
	}}})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func V_(n string) lang.Expr { return lang.V(n) }

func TestDeterministicInjectionFires(t *testing.T) {
	res, err := Run(RunConfig{
		Prog: fpProg(t),
		Spec: &Spec{
			Target: "fp_app",
			Ops:    []isa.Op{isa.OpFAdd},
			Cond:   Deterministic{N: 3},
			Bits:   2,
			Seed:   42,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Injected() {
		t.Fatal("no injection performed")
	}
	if len(res.Records) != 1 {
		t.Fatalf("records = %d, want 1 (detach after MaxInjections)", len(res.Records))
	}
	rec := res.Records[0]
	if rec.ExecCount != 3 || rec.GuestOp != isa.OpFAdd {
		t.Errorf("record = %+v", rec)
	}
	if popcount(rec.Mask) != 2 {
		t.Errorf("mask popcount = %d, want 2", popcount(rec.Mask))
	}
	if rec.Before == rec.After {
		t.Error("injection did not change the value")
	}
	if !strings.Contains(rec.String(), "fadd") {
		t.Errorf("record string = %q", rec.String())
	}
}

func TestInjectionIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) InjectionRecord {
		res, err := Run(RunConfig{
			Prog: fpProg(t),
			Spec: &Spec{Target: "fp_app", Ops: []isa.Op{isa.OpFAdd},
				Cond: Deterministic{N: 2}, Bits: 3, Seed: seed},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) != 1 {
			t.Fatal("no injection")
		}
		return res.Records[0]
	}
	a1, a2 := run(7), run(7)
	if a1.Mask != a2.Mask || a1.Target != a2.Target {
		t.Error("same seed produced different injections")
	}
	b := run(8)
	if a1.Mask == b.Mask && a1.Target == b.Target {
		t.Error("different seeds produced identical injections (suspicious)")
	}
}

func TestGroupInjectsMultiple(t *testing.T) {
	res, err := Run(RunConfig{
		Prog: fpProg(t),
		Spec: &Spec{
			Target: "fp_app", Ops: []isa.Op{isa.OpFAdd},
			Cond: Group{Start: 1, Every: 1}, MaxInjections: 1 << 30,
			Bits: 1, Seed: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 4 {
		t.Fatalf("records = %d, want 4 (every fadd)", len(res.Records))
	}
}

func TestUntargetedProcessNotInstrumented(t *testing.T) {
	res, err := Run(RunConfig{
		Prog: fpProg(t),
		Spec: &Spec{Target: "other_app", Ops: []isa.Op{isa.OpFAdd},
			Cond: Deterministic{N: 1}, Bits: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected() {
		t.Error("injection fired in non-target process")
	}
	if res.Terms[0].Reason != vm.ReasonExited {
		t.Errorf("term = %v", res.Terms[0])
	}
}

func TestIdentityInjectorKeepsBehaviour(t *testing.T) {
	golden, err := Golden(fpProg(t), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunConfig{
		Prog: fpProg(t),
		Spec: &Spec{
			Target: "fp_app", Ops: []isa.Op{isa.OpFAdd},
			Cond: Deterministic{N: 2}, Inj: IdentityInjector{Bits: 8},
			Trace: true, Seed: 5,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Injected() {
		t.Fatal("identity injection did not fire")
	}
	if string(res.Outputs[0]) != string(golden.Outputs[0]) {
		t.Error("identity injection changed the output")
	}
	rec := res.Records[0]
	if rec.Before != rec.After {
		t.Error("identity injection changed a value")
	}
	// But it seeds taint, so tracing has work to do.
	if res.Trace.TotalReads()+res.Trace.TotalWrites() == 0 {
		t.Error("identity injection with tracing produced no taint activity")
	}
}

func TestTracingProducesEventsAndSamples(t *testing.T) {
	res, err := Run(RunConfig{
		Prog: fpProg(t),
		Spec: &Spec{
			Target: "fp_app", Ops: []isa.Op{isa.OpFAdd},
			Cond: Deterministic{N: 1}, Bits: 4, Trace: true, Seed: 9,
		},
		SampleInterval: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Injected() {
		t.Fatal("no injection")
	}
	// The corrupted sum is stored to the stack slot each iteration: tainted
	// writes and reads must appear.
	if res.Trace.TotalWrites() == 0 {
		t.Error("no tainted writes traced")
	}
	if res.Trace.TotalReads() == 0 {
		t.Error("no tainted reads traced")
	}
	evs := res.Trace.Events()
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	for _, ev := range evs {
		if ev.Mask == 0 || ev.EIP == 0 {
			t.Errorf("bad event %+v", ev)
		}
	}
	if len(res.Trace.Timeline()) == 0 {
		t.Error("no timeline samples")
	}
}

func TestInjectFaultTerminalCommand(t *testing.T) {
	platform := decaf.NewPlatform()
	ch := New(Options{})
	if err := platform.LoadPlugin(ch); err != nil {
		t.Fatal(err)
	}
	out, err := platform.Exec("inject_fault fp_app fadd,fmul det 100 2 trace rank=0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "armed") {
		t.Errorf("out = %q", out)
	}
	spec := ch.Spec()
	if spec == nil {
		t.Fatal("no spec armed")
	}
	if spec.Target != "fp_app" || len(spec.Ops) != 2 || spec.Bits != 2 ||
		!spec.Trace || spec.TargetRank != 0 {
		t.Errorf("spec = %+v", spec)
	}
	if d, ok := spec.Cond.(Deterministic); !ok || d.N != 100 {
		t.Errorf("cond = %+v", spec.Cond)
	}
}

func TestInjectFaultCommandErrors(t *testing.T) {
	platform := decaf.NewPlatform()
	ch := New(Options{})
	if err := platform.LoadPlugin(ch); err != nil {
		t.Fatal(err)
	}
	bad := []string{
		"inject_fault",
		"inject_fault app",
		"inject_fault app bogusop det 1 1",
		"inject_fault app fadd det 0 1",
		"inject_fault app fadd prob 2.0 1",
		"inject_fault app fadd nosuch 1 1",
		"inject_fault app fadd group 5 1",
		"inject_fault app fadd det 5 99",
		"inject_fault app fadd det 5 1 wat",
		"inject_fault app fadd det 5 1 rank=x",
		"inject_fault app fadd det 5",
	}
	for _, cmd := range bad {
		if _, err := platform.Exec(cmd); err == nil {
			t.Errorf("command %q accepted", cmd)
		}
	}
	// Valid prob and group forms are accepted.
	for _, cmd := range []string{
		"inject_fault app fadd prob 0.001 1",
		"inject_fault app fadd group 10:5 1",
	} {
		if _, err := platform.Exec(cmd); err != nil {
			t.Errorf("command %q rejected: %v", cmd, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(RunConfig{}); err == nil {
		t.Error("Run without program succeeded")
	}
}

func TestRegisterFileInjector(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	prog, err := asm.Assemble("t", "main:\n movi r1, 64\n syscall alloc\n hlt\n")
	if err != nil {
		t.Fatal(err)
	}
	files := []struct {
		file RegisterFile
		gpr  bool
		fpr  bool
	}{{GPRFile, true, false}, {FPRFile, false, true}, {BothFiles, true, true}}
	for _, tt := range files {
		sawGPR, sawFPR := false, false
		for trial := 0; trial < 40; trial++ {
			m := vm.New(prog, vm.Config{})
			ctx := &Context{
				Machine: m,
				Op:      &tcg.Op{GuestPC: isa.CodeBase, GuestOp: isa.OpMovI},
				Instr:   isa.Instr{Op: isa.OpMovI},
				Rng:     rng,
			}
			rec, err := RegisterFileInjector{Bits: 2, File: tt.file}.Inject(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if popcount(rec.Mask) != 2 {
				t.Errorf("mask popcount = %d", popcount(rec.Mask))
			}
			if rec.Before^rec.After != rec.Mask {
				t.Error("record inconsistent")
			}
			if strings.Contains(rec.Target, "regfile f") {
				sawFPR = true
			} else if strings.Contains(rec.Target, "regfile r") {
				sawGPR = true
			}
		}
		if sawGPR != tt.gpr && tt.gpr {
			t.Errorf("file %v never hit a GPR", tt.file)
		}
		if sawFPR != tt.fpr && tt.fpr {
			t.Errorf("file %v never hit an FPR", tt.file)
		}
		if !tt.gpr && sawGPR {
			t.Errorf("file %v hit a GPR", tt.file)
		}
		if !tt.fpr && sawFPR {
			t.Errorf("file %v hit an FPR", tt.file)
		}
	}
}

func TestRegisterFileInjectorEndToEnd(t *testing.T) {
	res, err := Run(RunConfig{
		Prog: fpProg(t),
		Spec: &Spec{
			Target: "fp_app", Ops: []isa.Op{isa.OpFAdd},
			Cond: Deterministic{N: 2},
			Inj:  RegisterFileInjector{Bits: 1, File: FPRFile},
			Seed: 21, Trace: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("records = %d", len(res.Records))
	}
	if !strings.HasPrefix(res.Records[0].Target, "regfile f") {
		t.Errorf("target = %q", res.Records[0].Target)
	}
}

func TestChaserStatusCommand(t *testing.T) {
	platform := decaf.NewPlatform()
	ch := New(Options{})
	if err := platform.LoadPlugin(ch); err != nil {
		t.Fatal(err)
	}
	out, err := platform.Exec("chaser_status")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "not armed") {
		t.Errorf("unarmed status = %q", out)
	}
	if _, err := platform.Exec("inject_fault fp_app fadd det 2 1 trace"); err != nil {
		t.Fatal(err)
	}
	out, err = platform.Exec("chaser_status")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"target=fp_app", "injections: 0", "tainthub:"} {
		if !strings.Contains(out, want) {
			t.Errorf("status missing %q:\n%s", want, out)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	good := &Spec{Target: "app", Ops: []isa.Op{isa.OpFAdd}, Bits: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []*Spec{
		{Ops: []isa.Op{isa.OpFAdd}},                                           // no target
		{Target: "app"},                                                       // no ops
		{Target: "app", Ops: []isa.Op{isa.Op(200)}},                           // invalid op
		{Target: "app", Ops: []isa.Op{isa.OpFAdd}, Bits: 99},                  // bits
		{Target: "app", Ops: []isa.Op{isa.OpFAdd}, MaxInjections: -1},         // negative
		{Target: "app", Ops: []isa.Op{isa.OpFAdd}, Cond: Probabilistic{P: 2}}, // bad p
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	// Run rejects invalid specs up front.
	if _, err := Run(RunConfig{Prog: fpProg(t), Spec: &Spec{Target: "x"}}); err == nil {
		t.Error("Run accepted an invalid spec")
	}
}

func TestTranslationFlushMidRun(t *testing.T) {
	// A helper that flushes the translation cache mid-run must not break
	// execution: the currently executing block stays valid and subsequent
	// blocks retranslate.
	prog, err := asm.Assemble("t", `
main:
    movi r1, 0
    movi r2, 20
loop:
    add r1, r1, r2
    addi r2, r2, -1
    cmpi r2, 0
    jg loop
    hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(prog, vm.Config{})
	flushes := 0
	id := m.RegisterHelper(func(mm *vm.Machine, op *tcg.Op) {
		flushes++
		mm.Trans.Flush()
	})
	m.Trans.AddHook(func(ins isa.Instr, pc uint64) []tcg.Op {
		if ins.Op == isa.OpAdd {
			return []tcg.Op{{Kind: tcg.KHelper, Helper: id}}
		}
		return nil
	})
	term := m.Run()
	if term.Reason != vm.ReasonExited {
		t.Fatalf("term = %v", term)
	}
	if flushes != 20 {
		t.Errorf("flushes = %d, want 20", flushes)
	}
	// Sum 20+19+...+1 = 210.
	if got := m.GPR(isa.R1); got != 210 {
		t.Errorf("sum = %d, want 210", got)
	}
}

func TestRegionAwareTraceEvents(t *testing.T) {
	res, err := Run(RunConfig{
		Prog: fpProg(t),
		Spec: &Spec{
			Target: "fp_app", Ops: []isa.Op{isa.OpFAdd},
			Cond: Deterministic{N: 1}, Bits: 4, Trace: true, Seed: 9,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	regions := res.Trace.Regions()
	if len(regions) == 0 {
		t.Fatal("no region counts recorded")
	}
	// fp_app keeps its accumulator in a stack slot.
	if rc, ok := regions["stack"]; !ok || rc.Reads+rc.Writes == 0 {
		t.Errorf("regions = %+v, want stack activity", regions)
	}
	for _, ev := range res.Trace.Events() {
		if ev.Region == "" {
			t.Errorf("event without region: %+v", ev)
		}
	}
}

func TestTargetAllRanksInstrumentation(t *testing.T) {
	// TargetRank -1 instruments every rank; the Group condition then fires
	// on each rank independently (seeded per rank).
	I, V, B := lang.I, lang.V, lang.Block
	prog, err := lang.Compile(&lang.Program{Name: "all_ranks", Funcs: []*lang.Func{{
		Name: "main",
		Body: B(
			lang.Let("s", lang.F(0)),
			lang.For{Var: "i", From: I(0), To: I(3), Body: B(
				lang.Set("s", lang.Add(V("s"), lang.F(1))),
			)},
			lang.OutFloat{E: V("s")},
		),
	}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunConfig{
		Prog:      prog,
		WorldSize: 3,
		Spec: &Spec{
			Target: "all_ranks", Ops: []isa.Op{isa.OpFAdd},
			TargetRank: -1,
			Cond:       Deterministic{N: 2},
			Inj:        IdentityInjector{Bits: 1},
			Seed:       5,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ranksHit := map[int]bool{}
	for _, rec := range res.Records {
		ranksHit[rec.Rank] = true
	}
	if len(ranksHit) != 3 {
		t.Errorf("injections on %d ranks, want all 3: %v", len(ranksHit), res.Records)
	}
}
