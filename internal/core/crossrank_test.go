package core

import (
	"testing"

	"chaser/internal/isa"
	"chaser/internal/lang"
	"chaser/internal/tainthub"
	"chaser/internal/vm"
)

// crossProg: rank 0 computes a float sum (fadd), sends it to rank 1; rank 1
// accumulates the received values into its own memory and outputs them.
// With a fault injected into rank 0's fadd and tracing enabled, the taint
// must cross the rank boundary through the TaintHub and keep propagating in
// rank 1.
func crossProg(t *testing.T) *isa.Program {
	t.Helper()
	I, V, B := lang.I, lang.V, lang.Block
	prog, err := lang.Compile(&lang.Program{Name: "cross_app", Funcs: []*lang.Func{{
		Name: "main",
		Body: B(
			lang.Let("buf", lang.Alloc(I(1))),
			lang.If{
				Cond: lang.Eq(lang.RankExpr{}, I(0)),
				Then: B(
					lang.Let("s", lang.F(0)),
					lang.For{Var: "i", From: I(0), To: I(8), Body: B(
						lang.Set("s", lang.Add(V("s"), lang.F(0.25))),
					)},
					lang.SetAt(V("buf"), I(0), V("s")),
					lang.MPISend{Buf: V("buf"), Count: I(1), Dtype: int64(isa.TypeFloat64),
						Dest: I(1), Tag: I(3)},
				),
				Else: B(
					lang.MPIRecv{Buf: V("buf"), Count: I(1), Dtype: int64(isa.TypeFloat64),
						Source: I(0), Tag: I(3)},
					// Use the received value locally so taint keeps moving.
					lang.Let("v", lang.AtF(V("buf"), I(0))),
					lang.Let("w", lang.Mul(V("v"), lang.F(2))),
					lang.SetAt(V("buf"), I(0), V("w")),
					lang.OutFloat{E: lang.AtF(V("buf"), I(0))},
				),
			},
		),
	}}})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestCrossRankPropagationViaLocalHub(t *testing.T) {
	res, err := Run(RunConfig{
		Prog:      crossProg(t),
		WorldSize: 2,
		Spec: &Spec{
			Target: "cross_app", Ops: []isa.Op{isa.OpFAdd},
			TargetRank: 0,
			Cond:       Deterministic{N: 4},
			Bits:       1, Trace: true, Seed: 11,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Injected() {
		t.Fatal("no injection on rank 0")
	}
	if res.Records[0].Rank != 0 {
		t.Fatalf("injection on rank %d, want 0", res.Records[0].Rank)
	}
	if !res.Trace.Propagated() {
		t.Fatal("taint did not cross rank boundary")
	}
	cross := res.Trace.CrossRank()
	if cross[0].Src != 0 || cross[0].Dst != 1 || cross[0].Tag != 3 {
		t.Errorf("cross record = %+v", cross[0])
	}
	if cross[0].TaintedBytes == 0 {
		t.Error("cross record has no tainted bytes")
	}
	// Rank 1 must have local tainted activity after the message arrived.
	if res.Trace.Reads(1) == 0 {
		t.Error("no tainted reads on rank 1")
	}
	if res.Trace.Writes(1) == 0 {
		t.Error("no tainted writes on rank 1")
	}
	// Hub stats reflect the publish/poll.
	if res.HubStats.Published == 0 || res.HubStats.Hits == 0 {
		t.Errorf("hub stats = %+v", res.HubStats)
	}
}

func TestCrossRankPropagationViaTCPHub(t *testing.T) {
	srv, err := tainthub.NewServer(tainthub.NewLocal(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := tainthub.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	res, err := Run(RunConfig{
		Prog:      crossProg(t),
		WorldSize: 2,
		Hub:       client,
		Spec: &Spec{
			Target: "cross_app", Ops: []isa.Op{isa.OpFAdd},
			TargetRank: 0,
			Cond:       Deterministic{N: 2},
			Bits:       2, Trace: true, Seed: 13,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Injected() || !res.Trace.Propagated() {
		t.Fatal("propagation through TCP hub failed")
	}
	st := client.Stats()
	if st.Published == 0 || st.Hits == 0 {
		t.Errorf("remote hub stats = %+v", st)
	}
}

func TestCleanRunNoHubTraffic(t *testing.T) {
	// Tracing enabled but no injection: sends are clean, so the hub must
	// see no publishes (the efficiency property of the TaintHub design).
	res, err := Run(RunConfig{
		Prog:      crossProg(t),
		WorldSize: 2,
		Spec: &Spec{
			Target: "cross_app", Ops: []isa.Op{isa.OpFAdd},
			TargetRank: 0,
			Cond:       Deterministic{N: 99999}, // never fires
			Bits:       1, Trace: true, Seed: 17,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected() {
		t.Fatal("unexpected injection")
	}
	if res.HubStats.Published != 0 {
		t.Errorf("clean run published %d statuses", res.HubStats.Published)
	}
	if res.Trace.Propagated() {
		t.Error("clean run reported propagation")
	}
	for r, term := range res.Terms {
		if term.Reason != vm.ReasonExited {
			t.Errorf("rank %d: %v", r, term)
		}
	}
}

func TestUntraceedRunSkipsHub(t *testing.T) {
	// Trace disabled: even a tainting injection produces no hub traffic and
	// no taint tracking at all.
	res, err := Run(RunConfig{
		Prog:      crossProg(t),
		WorldSize: 2,
		Spec: &Spec{
			Target: "cross_app", Ops: []isa.Op{isa.OpFAdd},
			TargetRank: 0,
			Cond:       Deterministic{N: 1},
			Bits:       1, Trace: false, Seed: 19,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Injected() {
		t.Fatal("no injection")
	}
	if res.HubStats.Polls != 0 || res.HubStats.Published != 0 {
		t.Errorf("hub used without tracing: %+v", res.HubStats)
	}
	if res.Trace.TotalReads()+res.Trace.TotalWrites() != 0 {
		t.Error("taint events recorded without tracing")
	}
}
