package core

import (
	"fmt"
	"time"

	"chaser/internal/decaf"
	"chaser/internal/isa"
	"chaser/internal/mpi"
	"chaser/internal/obs"
	"chaser/internal/tainthub"
	"chaser/internal/tcg"
	"chaser/internal/trace"
	"chaser/internal/vm"
)

// RunConfig describes one supervised execution: a guest program, a world
// size, and optionally a fault-injection spec (nil runs the golden,
// uninstrumented configuration).
type RunConfig struct {
	Prog      *isa.Program
	WorldSize int
	Spec      *Spec
	// BaseCache, when non-nil, is the shared translation cache every rank of
	// this run draws clean blocks from. Campaigns build one per program and
	// reuse it across all runs; nil gives each machine a private cache.
	BaseCache *tcg.BaseCache
	// Hub overrides the TaintHub (e.g. a TCP client to a shared head-node
	// hub); nil uses a private in-process hub.
	Hub tainthub.Hub
	// MaxInstructions caps each rank (0 = vm default).
	MaxInstructions uint64
	// Timeout is the wall-clock deadline for the whole run (0 = none). When
	// it expires every rank is terminated with vm.ReasonTimeout — the
	// watchdog companion to MaxInstructions, catching hangs that burn real
	// time rather than instructions.
	Timeout time.Duration
	// HubPolicy selects how TaintHub failures are handled (default
	// HubDegrade: continue untainted, counting the degradation).
	HubPolicy HubPolicy
	// SampleInterval for the tainted-bytes timeline (0 = vm default,
	// 100K instructions as in the paper).
	SampleInterval uint64
	// ExecTraceDepth enables per-rank execution-trace ring buffers of this
	// many entries (0 = disabled) for post-mortem analysis of crashes.
	ExecTraceDepth int
	// NoFastPath disables the vm's taint-free fast interpreter loop on every
	// rank — an ablation switch for benchmarks and differential tests only.
	NoFastPath bool
	// Obs, when non-nil, receives telemetry from every layer of the run
	// (vm, tcg, taint, mpi, injector). Nil disables telemetry.
	Obs *obs.Registry
	// Tracer, when non-nil, records spans for the run and its ranks.
	Tracer *obs.Tracer
	// Events, when non-nil, receives structured run-lifecycle and
	// propagation events from every layer (vm terminations, taint births,
	// injections, hub traffic, world aborts). Nil disables them.
	Events *obs.Sink
}

// RunResult is everything observable from one supervised execution.
type RunResult struct {
	// Terms are the per-rank terminations.
	Terms []vm.Termination
	// Outputs are the per-rank output files (bit-compared for SDC).
	Outputs [][]byte
	// Consoles are the per-rank console texts.
	Consoles []string
	// Counters are the per-rank execution statistics.
	Counters []vm.Counters
	// Records are the injections performed.
	Records []InjectionRecord
	// Trace is the propagation log (empty unless Spec.Trace).
	Trace *trace.Collector
	// ExecTraces are the per-rank instruction-trace tails (empty unless
	// RunConfig.ExecTraceDepth was set).
	ExecTraces []string
	// HubStats snapshots TaintHub activity for this run.
	HubStats tainthub.Stats
}

// Injected reports whether at least one fault was injected.
func (r *RunResult) Injected() bool { return len(r.Records) > 0 }

// FirstAbnormal returns the lowest rank with an abnormal termination, or -1.
func (r *RunResult) FirstAbnormal() int {
	for i, t := range r.Terms {
		if t.Abnormal() {
			return i
		}
	}
	return -1
}

// Run executes one supervised run: it builds a decaf platform, loads a
// Chaser armed with cfg.Spec, creates the world (firing VMI events that arm
// the injector on target ranks), runs all ranks, and gathers results.
func Run(cfg RunConfig) (*RunResult, error) {
	return execute(cfg, nil)
}

// newSessionWorld builds the MPI world for a run. With a non-nil snapshot
// the machines are resumed from it (fork-point multiplexing) and the
// in-flight message queues are preloaded; otherwise the machines start
// fresh at the program entry.
func newSessionWorld(cfg RunConfig, size int, platform *decaf.Platform, snap *WorldSnapshot) (*mpi.World, error) {
	mcfg := mpi.Config{
		Size: size,
		Machine: func(rank int) vm.Config {
			return vm.Config{
				MaxInstructions: cfg.MaxInstructions,
				SampleInterval:  cfg.SampleInterval,
				BaseCache:       cfg.BaseCache,
				Obs:             cfg.Obs,
				NoFastPath:      cfg.NoFastPath,
				Events:          cfg.Events,
			}
		},
		Setup: func(rank int, m *vm.Machine) {
			if cfg.ExecTraceDepth > 0 {
				m.EnableExecTrace(cfg.ExecTraceDepth)
			}
			platform.CreateProcess(m)
		},
		Obs:    cfg.Obs,
		Tracer: cfg.Tracer,
		Events: cfg.Events,
	}
	if snap != nil {
		mcfg.NewMachine = func(rank int, mc vm.Config) *vm.Machine {
			return vm.NewFromSnapshot(cfg.Prog, snap.machines[rank], mc)
		}
		// Message values are copied into the new world's queues; payload
		// bytes stay shared read-only with the snapshot.
		mcfg.Mailboxes = snap.mailboxes
		mcfg.Pendings = snap.pendings
	}
	return mpi.NewWorld(cfg.Prog, mcfg)
}

// armTimeout installs the wall-clock watchdog; the returned stop function is
// safe to call whether or not the deadline fired. The watchdog fires at most
// once per world (Interrupt is once-guarded), so a run that crashes or
// completes first wins.
func armTimeout(world *mpi.World, deadline time.Duration) func() {
	if deadline <= 0 {
		return func() {}
	}
	watchdog := time.AfterFunc(deadline, func() {
		world.Interrupt(vm.Termination{
			Reason: vm.ReasonTimeout,
			Msg:    fmt.Sprintf("wall-clock deadline %s exceeded", deadline),
		})
	})
	return func() { watchdog.Stop() }
}

func execute(cfg RunConfig, snap *WorldSnapshot) (*RunResult, error) {
	if cfg.Prog == nil {
		return nil, fmt.Errorf("core: no program")
	}
	size := cfg.WorldSize
	if size == 0 {
		size = 1
	}
	sp := cfg.Tracer.StartSpan("core.run")
	defer sp.End()
	platform := decaf.NewPlatform()
	ch := New(Options{Hub: cfg.Hub, Obs: cfg.Obs, Events: cfg.Events})
	if err := platform.LoadPlugin(ch); err != nil {
		return nil, err
	}
	if cfg.Spec != nil {
		if err := cfg.Spec.Validate(); err != nil {
			return nil, err
		}
		ch.Arm(cfg.Spec)
	}
	if snap != nil {
		// Seed the propagation timeline with the prefix's samples so the
		// forked run's curve spans the whole execution, as a from-scratch
		// run's would.
		for _, p := range snap.samples {
			ch.collector.AddSample(p)
		}
	}
	world, err := newSessionWorld(cfg, size, platform, snap)
	if err != nil {
		return nil, err
	}
	stopWatchdog := armTimeout(world, cfg.Timeout)
	defer stopWatchdog()
	wsp := cfg.Tracer.StartSpan("world.run")
	terms := world.Run()
	wsp.End()
	if cfg.HubPolicy == HubFailRun {
		if herr := ch.HubErr(); herr != nil {
			return nil, fmt.Errorf("core: taint hub failed (HubFailRun policy): %w", herr)
		}
	}

	res := &RunResult{
		Terms:    terms,
		Outputs:  make([][]byte, size),
		Consoles: make([]string, size),
		Counters: make([]vm.Counters, size),
		Records:  ch.Records(),
		Trace:    ch.Trace(),
		HubStats: ch.Hub().Stats(),
	}
	if cfg.ExecTraceDepth > 0 {
		res.ExecTraces = make([]string, size)
	}
	for r := 0; r < size; r++ {
		m := world.Machine(r)
		res.Outputs[r] = m.Output()
		res.Consoles[r] = m.Console()
		res.Counters[r] = m.Counters()
		if cfg.ExecTraceDepth > 0 {
			res.ExecTraces[r] = m.FormatExecTrace()
		}
	}
	return res, nil
}

// Golden runs the program uninstrumented and returns the result; campaigns
// compare injection runs against it.
func Golden(prog *isa.Program, worldSize int, maxInstr uint64) (*RunResult, error) {
	return Run(RunConfig{Prog: prog, WorldSize: worldSize, MaxInstructions: maxInstr})
}
