package core

import (
	"chaser/internal/isa"
	"chaser/internal/tcg"
)

// RegisterFileInjector models a transient upset in the register file itself
// — the fault model of the paper's CLAMR case study ("injecting random
// transient errors into registers"): when the condition fires, a random
// register from the configured file (GPRs, FPRs, or both) is corrupted,
// regardless of whether the triggering instruction uses it. Faults in dead
// registers are naturally benign, which is part of what the case study
// measures.
type RegisterFileInjector struct {
	// Bits is the number of bits to flip (default 1).
	Bits int
	// File selects which register file to target.
	File RegisterFile
}

// RegisterFile selects injection targets for RegisterFileInjector.
type RegisterFile int

// Register files.
const (
	// BothFiles draws uniformly from the 32 GPR+FPR registers.
	BothFiles RegisterFile = iota
	// GPRFile targets general-purpose registers only.
	GPRFile
	// FPRFile targets floating-point registers only (the CLAMR study).
	FPRFile
)

var _ Injector = RegisterFileInjector{}

// Inject implements Injector.
func (r RegisterFileInjector) Inject(ctx *Context) (InjectionRecord, error) {
	bits := r.Bits
	if bits == 0 {
		bits = 1
	}
	var reg tcg.MReg
	switch r.File {
	case GPRFile:
		reg = tcg.GPR(isa.Reg(ctx.Rng.Intn(isa.NumRegs)))
	case FPRFile:
		reg = tcg.FPR(isa.Reg(ctx.Rng.Intn(isa.NumRegs)))
	default:
		n := ctx.Rng.Intn(2 * isa.NumRegs)
		if n < isa.NumRegs {
			reg = tcg.GPR(isa.Reg(n))
		} else {
			reg = tcg.FPR(isa.Reg(n - isa.NumRegs))
		}
	}
	mask := RandomBitMask(bits, ctx.Rng)
	before, after := CorruptRegister(ctx.Machine, reg, mask, ctx.Trace)
	return InjectionRecord{
		Rank:      ctx.Machine.Rank,
		PC:        ctx.Op.GuestPC,
		GuestOp:   ctx.Instr.Op,
		GuestOpS:  ctx.Instr.Op.String(),
		ExecCount: ctx.ExecCount,
		InstrNum:  ctx.Machine.Counters().Instructions,
		Target:    "regfile " + reg.String(),
		Mask:      mask,
		Before:    before,
		After:     after,
	}, nil
}
